// E8 — paper Sec. 5: the Women in Computing Day survey.
//
// The human study cannot be rerun; the module simulates the cohort (see
// DESIGN.md) and tallies it with the same code path real response sheets
// would take. The table prints paper-vs-measured for every published
// percentage.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "survey/survey.hpp"

namespace {

using namespace psnap::survey;

void printReproduction() {
  std::printf("# E8 / Sec. 5 — WCD survey (simulated cohort, n=100)\n");
  auto cohort = generateCohort(100, Targets::paper2016(), 2016);
  std::printf("%s\n", comparisonTable(Targets::paper2016(), tally(cohort))
                          .c_str());
}

void BM_GenerateCohort(benchmark::State& state) {
  const auto n = size_t(state.range(0));
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generateCohort(n, Targets::paper2016(), seed++));
  }
  state.SetItemsProcessed(state.iterations() * int64_t(n));
}
BENCHMARK(BM_GenerateCohort)->Arg(100)->Arg(10000);

void BM_Tally(benchmark::State& state) {
  auto cohort =
      generateCohort(size_t(state.range(0)), Targets::paper2016(), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tally(cohort));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Tally)->Arg(100)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
