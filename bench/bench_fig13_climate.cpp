// E5 — paper Fig. 13 / Figs. 18-20 / Listings 6-7: the climate MapReduce
// and its OpenMP code generation.
//
// Reproduction:
//   * the mapReduce block converts °F→°C and averages, matching the plain
//     C++ reference mean exactly;
//   * the per-decade series shows the warming drift the classroom
//     exercise asks students to observe;
//   * the generated OpenMP program (Listings 6-7) compiles with
//     gcc -fopenmp and agrees with both (float precision).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "blocks/builder.hpp"
#include "codegen/programs.hpp"
#include "codegen/toolchain.hpp"
#include "core/parallel_blocks.hpp"
#include "data/climate.hpp"
#include "sched/thread_manager.hpp"
#include "support/strings.hpp"

namespace {

using namespace psnap;
using namespace psnap::build;

const vm::PrimitiveTable& prims() {
  static const vm::PrimitiveTable table = core::fullPrimitiveTable();
  return table;
}

blocks::BlockPtr climateMapper() {
  return ring(listOf(
      {In("avgC"), In(quotient(product(5, difference(empty(), 32)), 9))}));
}

blocks::BlockPtr climateReducer() {
  return ring(quotient(combineUsing(empty(), ring(sum(empty(), empty()))),
                       lengthOf(empty())));
}

void printReproduction() {
  std::printf("# E5 / Fig. 13 — climate mapReduce (F->C average)\n");
  data::ClimateConfig config;
  config.stations = 4;
  config.firstYear = 1950;
  config.lastYear = 2009;
  auto records = data::generateClimate(config);
  double reference = data::referenceMeanCelsius(records);

  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
  blocks::Value v = tm.evaluate(
      mapReduce(climateMapper(), climateReducer(),
                In(blocks::Value(data::toFahrenheitList(records)))),
      blocks::Environment::make());
  double blockMean = v.asList()->item(1).asList()->item(2).asNumber();
  std::printf("#   records: %zu   block mean C: %.6f   reference: %.6f   %s\n",
              records.size(), blockMean, reference,
              std::abs(blockMean - reference) < 1e-9 ? "MATCH" : "MISMATCH");

  std::printf("#\n#   per-decade mean C (warming-trend exercise):\n");
  auto yearly = data::referenceYearlyMeanCelsius(records);
  for (size_t start = 0; start + 10 <= yearly.size(); start += 10) {
    double sum = 0;
    for (size_t i = start; i < start + 10; ++i) sum += yearly[i].second;
    std::printf("#   %d-%d  %7.3f C\n", yearly[start].first,
                yearly[start + 9].first, sum / 10.0);
  }

  if (codegen::Toolchain::compilerAvailable()) {
    auto mapRing =
        tm.evaluate(ring(quotient(product(5, difference(empty(), 32)), 9)),
                    blocks::Environment::make())
            .asRing();
    auto reduceRing =
        tm.evaluate(climateReducer(), blocks::Environment::make()).asRing();
    codegen::Toolchain tc;
    auto run = tc.compileAndRun(
        codegen::mapReduceOpenMP(mapRing, reduceRing), "climate", true,
        data::toKvpText(records, "avgC"), "OMP_NUM_THREADS=4");
    double openmpMean = 0;
    auto fields = strings::splitWhitespace(run.output);
    if (fields.size() == 2) strings::parseNumber(fields[1], openmpMean);
    std::printf(
        "#\n#   generated OpenMP binary (Listings 6-7): %.4f C  (%s)\n",
        openmpMean,
        std::abs(openmpMean - reference) < 0.05 ? "agrees" : "disagrees");
  }
  std::printf("\n");
}

void BM_ClimateMapReduceBlock(benchmark::State& state) {
  data::ClimateConfig config;
  config.stations = size_t(state.range(0));
  config.firstYear = 1950;
  config.lastYear = 2009;
  auto records = data::generateClimate(config);
  auto list = data::toFahrenheitList(records);
  for (auto _ : state) {
    sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
    blocks::Value v = tm.evaluate(
        mapReduce(climateMapper(), climateReducer(),
                  In(blocks::Value(list))),
        blocks::Environment::make());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * int64_t(records.size()));
}
BENCHMARK(BM_ClimateMapReduceBlock)->Arg(1)->Arg(4)->Arg(16);

void BM_ClimateReference(benchmark::State& state) {
  data::ClimateConfig config;
  config.stations = size_t(state.range(0));
  config.firstYear = 1950;
  config.lastYear = 2009;
  auto records = data::generateClimate(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::referenceMeanCelsius(records));
  }
  state.SetItemsProcessed(state.iterations() * int64_t(records.size()));
}
BENCHMARK(BM_ClimateReference)->Arg(4)->Arg(16);

void BM_ClimateGeneration(benchmark::State& state) {
  data::ClimateConfig config;
  config.stations = size_t(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::generateClimate(config));
  }
}
BENCHMARK(BM_ClimateGeneration)->Arg(4)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
