// Serving-layer benchmark: one SessionServer hosting a 10k-tenant mixed
// storm (concession / wordcount / climate, cycled per session index), all
// admitted before the first frame so the whole population is concurrently
// live, then run to completion. Emitted as BENCH_serve.json:
//
//   * sessions / completed / failed / shed / output_ok — outcome ledger
//     (the run is only meaningful when completed == sessions and every
//     completed session's self-check passed);
//   * frame_p50_ms / frame_p99_ms — per-server-frame wall latency
//     percentiles (a frame grants every live tenant one slice, so this
//     is the tail of "how long until each tenant runs again");
//   * fairness_spread — max over workload labels of max/min frames
//     granted to sessions of that label (equal workloads ⇒ equal need;
//     round-robin should keep this ≤ 2.0, acceptance threshold);
//   * sessions_per_s — end-to-end completion throughput.
//
// Usage: bench_serve [--sessions N] [--quick] [--out FILE.json]
// `--quick` runs 300 sessions (CI smoke); the default is 10'000.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "scenarios/serve.hpp"
#include "serve/session_server.hpp"

namespace {

using psnap::serve::ServerConfig;
using psnap::serve::SessionRecord;
using psnap::serve::SessionServer;
using psnap::serve::SessionState;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * double(samples.size() - 1);
  const size_t lo = size_t(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - double(lo);
  return samples[lo] * (1 - frac) + samples[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  size_t sessions = 10'000;
  std::string outPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      sessions = 300;
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = size_t(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions N] [--quick] [--out FILE.json]\n",
                   argv[0]);
      return 2;
    }
  }

  ServerConfig config;
  config.maxSessions = sessions;  // the whole storm is concurrently live
  config.maxWorkers = 2;          // per-tenant logical width (shared pool)
  SessionServer server(config);

  const auto startAdmit = Clock::now();
  for (size_t i = 0; i < sessions; ++i) {
    server.admit(psnap::scenarios::serveMixedWorkload(i));
  }
  const double admitSeconds = secondsSince(startAdmit);
  const size_t peakConcurrent = server.activeSessions();

  const auto startRun = Clock::now();
  const uint64_t frames = server.runUntilQuiet();
  const double runSeconds = secondsSince(startRun);

  // Outcome ledger + per-label slice counts for the fairness spread.
  size_t completed = 0, failed = 0, shed = 0, outputOk = 0;
  std::map<std::string, std::vector<uint64_t>> slicesByLabel;
  for (const SessionRecord& record : server.records()) {
    switch (record.state) {
      case SessionState::Completed:
        ++completed;
        if (record.outputOk) ++outputOk;
        // Group by workload kind: labels carry generator parameters
        // after a ':' ("wordcount:24:7"), and fairness compares equals.
        slicesByLabel[record.label.substr(0, record.label.find(':'))]
            .push_back(record.framesRun);
        break;
      case SessionState::Failed:
        ++failed;
        break;
      case SessionState::Shed:
        ++shed;
        break;
      case SessionState::Active:
      case SessionState::Drained:
        break;
    }
  }
  double fairness = 0;
  for (const auto& [label, slices] : slicesByLabel) {
    fairness = std::max(fairness, SessionServer::fairnessSpread(slices));
  }

  const double p50 = percentile(server.frameSeconds(), 0.50) * 1e3;
  const double p99 = percentile(server.frameSeconds(), 0.99) * 1e3;
  const double perSecond =
      runSeconds > 0 ? double(completed) / runSeconds : 0;

  std::printf("# bench_serve — %zu mixed sessions, all concurrent\n",
              sessions);
  std::printf("#   peak concurrent: %zu\n", peakConcurrent);
  std::printf("#   admitted in %.3fs, ran %llu frames in %.3fs\n",
              admitSeconds, static_cast<unsigned long long>(frames),
              runSeconds);
  std::printf("#   completed %zu (output ok %zu), failed %zu, shed %zu\n",
              completed, outputOk, failed, shed);
  std::printf("#   frame latency p50 %.3fms  p99 %.3fms\n", p50, p99);
  std::printf("#   fairness spread (max over labels) %.3f\n", fairness);
  std::printf("#   throughput %.1f sessions/s\n", perSecond);

  const bool pass = completed == sessions && outputOk == completed &&
                    fairness > 0 && fairness <= 2.0;
  std::printf("#   acceptance: %s\n", pass ? "PASS" : "FAIL");

  if (!outPath.empty()) {
    FILE* f = std::fopen(outPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_serve\",\n");
    std::fprintf(f, "  \"sessions\": %zu,\n", sessions);
    std::fprintf(f, "  \"peak_concurrent\": %zu,\n", peakConcurrent);
    std::fprintf(f, "  \"completed\": %zu,\n", completed);
    std::fprintf(f, "  \"output_ok\": %zu,\n", outputOk);
    std::fprintf(f, "  \"failed\": %zu,\n", failed);
    std::fprintf(f, "  \"shed\": %zu,\n", shed);
    std::fprintf(f, "  \"frames\": %llu,\n",
                 static_cast<unsigned long long>(frames));
    std::fprintf(f, "  \"admit_seconds\": %.3f,\n", admitSeconds);
    std::fprintf(f, "  \"run_seconds\": %.3f,\n", runSeconds);
    std::fprintf(f, "  \"frame_p50_ms\": %.3f,\n", p50);
    std::fprintf(f, "  \"frame_p99_ms\": %.3f,\n", p99);
    std::fprintf(f, "  \"fairness_spread\": %.3f,\n", fairness);
    std::fprintf(f, "  \"sessions_per_s\": %.1f,\n", perSecond);
    std::fprintf(f, "  \"acceptance\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
  }
  return pass ? 0 : 1;
}
