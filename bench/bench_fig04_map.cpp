// E1 — paper Fig. 4: the sequential `map` block.
//
// Reproduction: map ((  ) × 10) over (3 7 8) reports (30 70 80).
// Benchmark: interpreter throughput of the sequential map over growing
// lists (the baseline the parallel blocks are compared against).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "sched/thread_manager.hpp"

namespace {

using namespace psnap;
using namespace psnap::build;

const vm::PrimitiveTable& prims() {
  static const vm::PrimitiveTable table = core::fullPrimitiveTable();
  return table;
}

void printReproduction() {
  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
  blocks::Value v = tm.evaluate(
      mapOver(ring(product(empty(), 10)), listOf({3, 7, 8})),
      blocks::Environment::make());
  std::printf("# E1 / Fig. 4 — sequential map block\n");
  std::printf("#   map (( ) x 10) over (3 7 8)  ->  %s   (paper: 30 70 80)\n\n",
              v.display().c_str());
}

void BM_SequentialMap(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
    blocks::Value v = tm.evaluate(
        mapOver(ring(product(empty(), 10)), numbersFromTo(1, n)),
        blocks::Environment::make());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SequentialMap)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

// The same computation as a plain C++ loop: the interpreter-overhead
// baseline.
void BM_NativeMapBaseline(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<double> input(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) input[size_t(i)] = double(i + 1);
  for (auto _ : state) {
    std::vector<double> out(input.size());
    for (size_t i = 0; i < input.size(); ++i) out[i] = input[i] * 10;
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NativeMapBaseline)->Arg(1000)->Arg(10000);

// HOF composition: keep + map pipelines, exercising ring-call overhead.
void BM_KeepMapPipeline(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
    blocks::Value v = tm.evaluate(
        mapOver(ring(product(empty(), 2)),
                keepFrom(ring(greaterThan(empty(), n / 2)),
                         numbersFromTo(1, n))),
        blocks::Environment::make());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KeepMapPipeline)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
