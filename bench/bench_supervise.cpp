// Supervision benchmark: what does checkpointing cost on the fault-free
// path, and how fast does a cold successor come back? Three measurements,
// emitted as BENCH_supervise.json:
//
//   * baseline — the same recoverable mixed storm with supervision off
//     (no checkpoint dir): run_seconds and frame p50/p99 to compare
//     against;
//   * intervals — the storm re-run under checkpointIntervalFrames of
//     4, 16, and 64: run_seconds, frame percentiles, checkpoint ledger
//     (written / skipped / failures), and overhead_pct vs the baseline.
//     Writes ride the worker pool, so the frame path should show only
//     the capture + fingerprint cost;
//   * recovery — a victim server checkpoints a population and drains;
//     a successor then recoverSessions() over the directory. Reported:
//     recover_seconds (disk → re-admitted, per-session amortized),
//     first_frame_ms (recovery to the first served frame), and whether
//     every recovered session completed with its self-check intact.
//
// Usage: bench_supervise [--sessions N] [--quick] [--out FILE.json]
// `--quick` runs 200 sessions (CI smoke); the default is 2'000.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "scenarios/serve.hpp"
#include "serve/session_server.hpp"

namespace {

namespace fs = std::filesystem;
using psnap::serve::ServerConfig;
using psnap::serve::SessionRecord;
using psnap::serve::SessionServer;
using psnap::serve::SessionState;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * double(samples.size() - 1);
  const size_t lo = size_t(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - double(lo);
  return samples[lo] * (1 - frac) + samples[hi] * frac;
}

/// One full storm run: admit `sessions` recoverable workloads, run to
/// completion, tally the outcome and the checkpoint ledger.
struct StormResult {
  double runSeconds = 0;
  double p50Ms = 0;
  double p99Ms = 0;
  size_t completed = 0;
  size_t outputOk = 0;
  uint64_t checkpointsWritten = 0;
  uint64_t checkpointsSkipped = 0;
  uint64_t checkpointFailures = 0;
};

StormResult runStorm(size_t sessions, const std::string& checkpointDir,
                     uint64_t intervalFrames) {
  ServerConfig config;
  config.maxSessions = sessions;
  config.maxWorkers = 2;
  config.checkpointDir = checkpointDir;
  config.checkpointIntervalFrames = intervalFrames;
  SessionServer server(config);
  for (size_t i = 0; i < sessions; ++i) {
    server.admit(psnap::scenarios::serveMixedRecoverableWorkload(i));
  }
  const auto start = Clock::now();
  server.runUntilQuiet();
  StormResult result;
  result.runSeconds = secondsSince(start);
  result.p50Ms = percentile(server.frameSeconds(), 0.50) * 1e3;
  result.p99Ms = percentile(server.frameSeconds(), 0.99) * 1e3;
  for (const SessionRecord& record : server.records()) {
    if (record.state == SessionState::Completed) {
      ++result.completed;
      if (record.outputOk) ++result.outputOk;
    }
  }
  result.checkpointsWritten = server.metrics().checkpointsWritten;
  result.checkpointsSkipped = server.metrics().checkpointsSkipped;
  result.checkpointFailures = server.metrics().checkpointFailures;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  size_t sessions = 2'000;
  std::string outPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      sessions = 200;
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = size_t(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions N] [--quick] [--out FILE.json]\n",
                   argv[0]);
      return 2;
    }
  }

  const fs::path dirBase =
      fs::temp_directory_path() /
      ("psnap-bench-supervise-" + std::to_string(size_t(::getpid())));
  fs::remove_all(dirBase);

  std::printf("# bench_supervise — %zu recoverable mixed sessions\n",
              sessions);

  // Unmeasured warmup: fault the worker pool and allocator caches in
  // before the first timed run, so the baseline is not the cold one.
  runStorm(std::min<size_t>(sessions, 200), "", 32);

  // Baseline: supervision off — the frame path never touches the
  // checkpoint machinery.
  const StormResult baseline = runStorm(sessions, "", 32);
  std::printf("#   baseline (off):     %.3fs  p50 %.3fms  p99 %.3fms\n",
              baseline.runSeconds, baseline.p50Ms, baseline.p99Ms);

  // The same storm under three checkpoint cadences.
  const uint64_t kIntervals[] = {4, 16, 64};
  StormResult supervised[3];
  for (size_t i = 0; i < 3; ++i) {
    const fs::path dir = dirBase / ("interval-" + std::to_string(kIntervals[i]));
    fs::create_directories(dir);
    supervised[i] = runStorm(sessions, dir.string(), kIntervals[i]);
    const double overhead =
        baseline.runSeconds > 0
            ? (supervised[i].runSeconds / baseline.runSeconds - 1.0) * 100.0
            : 0;
    std::printf(
        "#   interval %-2llu:        %.3fs  p50 %.3fms  p99 %.3fms  "
        "wrote %llu skipped %llu failed %llu  overhead %+.1f%%\n",
        static_cast<unsigned long long>(kIntervals[i]),
        supervised[i].runSeconds, supervised[i].p50Ms, supervised[i].p99Ms,
        static_cast<unsigned long long>(supervised[i].checkpointsWritten),
        static_cast<unsigned long long>(supervised[i].checkpointsSkipped),
        static_cast<unsigned long long>(supervised[i].checkpointFailures),
        overhead);
  }

  // Recovery latency: checkpoint a population, drain, cold-start a
  // successor over the directory.
  const size_t recoverPopulation = std::max<size_t>(sessions / 4, 50);
  const fs::path recoverDir = dirBase / "recovery";
  fs::create_directories(recoverDir);
  size_t drained = 0;
  {
    ServerConfig config;
    config.maxSessions = recoverPopulation;
    config.maxWorkers = 2;
    config.checkpointDir = recoverDir.string();
    config.checkpointIntervalFrames = 4;
    SessionServer victim(config);
    for (size_t i = 0; i < recoverPopulation; ++i) {
      victim.admit(psnap::scenarios::serveMixedRecoverableWorkload(i));
    }
    // A few frames so the population makes progress; the sessions that
    // finish inside this window complete normally (their checkpoints are
    // reclaimed) — only the still-running remainder is drained and owed
    // a recovery.
    for (int frame = 0; frame < 6; ++frame) victim.runFrame();
    drained = victim.drain();
  }
  size_t recovered = 0;
  size_t recoveredCompleted = 0;
  size_t recoveredOutputOk = 0;
  double recoverSeconds = 0;
  double firstFrameMs = 0;
  {
    ServerConfig config;
    config.maxSessions = recoverPopulation;
    config.maxWorkers = 2;
    config.checkpointDir = recoverDir.string();
    SessionServer successor(config);
    const auto recoverStart = Clock::now();
    recovered =
        successor.recoverSessions(psnap::scenarios::serveRecoveryFactory)
            .size();
    recoverSeconds = secondsSince(recoverStart);
    const auto frameStart = Clock::now();
    successor.runFrame();
    firstFrameMs = secondsSince(frameStart) * 1e3;
    successor.runUntilQuiet();
    for (const SessionRecord& record : successor.records()) {
      if (record.state == SessionState::Completed) {
        ++recoveredCompleted;
        if (record.outputOk) ++recoveredOutputOk;
      }
    }
  }
  const double recoverMsPerSession =
      recovered > 0 ? recoverSeconds * 1e3 / double(recovered) : 0;
  std::printf(
      "#   recovery: %zu drained, %zu recovered in %.3fs (%.3fms each), "
      "first frame %.3fms, completed %zu (output ok %zu)\n",
      drained, recovered, recoverSeconds, recoverMsPerSession, firstFrameMs,
      recoveredCompleted, recoveredOutputOk);

  // Acceptance: every run completes every session with its self-check
  // intact, no checkpoint write ever fails, and the successor resumes
  // the full drained population.
  bool pass = baseline.completed == sessions &&
              baseline.outputOk == sessions && drained > 0 &&
              recovered == drained && recoveredCompleted == recovered &&
              recoveredOutputOk == recovered;
  for (const StormResult& r : supervised) {
    pass = pass && r.completed == sessions && r.outputOk == sessions &&
           r.checkpointFailures == 0;
  }
  std::printf("#   acceptance: %s\n", pass ? "PASS" : "FAIL");

  if (!outPath.empty()) {
    FILE* f = std::fopen(outPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_supervise\",\n");
    std::fprintf(f, "  \"sessions\": %zu,\n", sessions);
    std::fprintf(f, "  \"baseline_run_seconds\": %.3f,\n",
                 baseline.runSeconds);
    std::fprintf(f, "  \"baseline_frame_p50_ms\": %.3f,\n", baseline.p50Ms);
    std::fprintf(f, "  \"baseline_frame_p99_ms\": %.3f,\n", baseline.p99Ms);
    std::fprintf(f, "  \"intervals\": [\n");
    for (size_t i = 0; i < 3; ++i) {
      const double overhead =
          baseline.runSeconds > 0
              ? (supervised[i].runSeconds / baseline.runSeconds - 1.0) * 100.0
              : 0;
      std::fprintf(
          f,
          "    {\"interval_frames\": %llu, \"run_seconds\": %.3f, "
          "\"frame_p50_ms\": %.3f, \"frame_p99_ms\": %.3f, "
          "\"checkpoints_written\": %llu, \"checkpoints_skipped\": %llu, "
          "\"checkpoint_failures\": %llu, \"overhead_pct\": %.1f}%s\n",
          static_cast<unsigned long long>(kIntervals[i]),
          supervised[i].runSeconds, supervised[i].p50Ms, supervised[i].p99Ms,
          static_cast<unsigned long long>(supervised[i].checkpointsWritten),
          static_cast<unsigned long long>(supervised[i].checkpointsSkipped),
          static_cast<unsigned long long>(supervised[i].checkpointFailures),
          overhead, i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"drained_sessions\": %zu,\n", drained);
    std::fprintf(f, "  \"recover_sessions\": %zu,\n", recovered);
    std::fprintf(f, "  \"recover_seconds\": %.3f,\n", recoverSeconds);
    std::fprintf(f, "  \"recover_ms_per_session\": %.3f,\n",
                 recoverMsPerSession);
    std::fprintf(f, "  \"first_frame_ms\": %.3f,\n", firstFrameMs);
    std::fprintf(f, "  \"recovered_completed\": %zu,\n", recoveredCompleted);
    std::fprintf(f, "  \"recovered_output_ok\": %zu,\n", recoveredOutputOk);
    std::fprintf(f, "  \"acceptance\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
  }
  fs::remove_all(dirBase);
  return pass ? 0 : 1;
}
