// A1 — ablation: cooperative-scheduler behaviour vs load and slice budget.
//
// The paper's environment interleaves all active scripts on one thread;
// this bench measures (a) frame cost as the number of concurrent scripts
// grows, (b) the effect of the per-process step budget on progress per
// frame, and (c) the cost the interference model adds.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "sched/thread_manager.hpp"

namespace {

using namespace psnap;
using namespace psnap::build;

const vm::PrimitiveTable& prims() {
  static const vm::PrimitiveTable table = core::fullPrimitiveTable();
  return table;
}

void printReproduction() {
  std::printf("# A1 — scheduler ablation: fairness across loads\n");
  std::printf("#   scripts  frames-for-each-to-tick-100x\n");
  for (int scripts : {1, 4, 16, 64}) {
    sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
    auto env = blocks::Environment::make();
    for (int i = 0; i < scripts; ++i) {
      env->declare("n" + std::to_string(i), blocks::Value(0));
      tm.spawnScript(
          scriptOf({repeat(100, scriptOf({changeVar(
                        "n" + std::to_string(i), 1)}))}),
          env);
    }
    uint64_t frames = tm.runUntilIdle();
    // Round-robin fairness: everyone finishes in ~the same frame count
    // regardless of how many scripts run concurrently.
    std::printf("#   %7d  %llu\n", scripts, (unsigned long long)frames);
  }
  std::printf("\n");
}

void BM_FramesUnderLoad(benchmark::State& state) {
  const auto scripts = state.range(0);
  for (auto _ : state) {
    sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
    auto env = blocks::Environment::make();
    env->declare("n", blocks::Value(0));
    for (int64_t i = 0; i < scripts; ++i) {
      tm.spawnScript(scriptOf({repeat(50, scriptOf({changeVar("n", 1)}))}),
                     env);
    }
    tm.runUntilIdle();
    benchmark::DoNotOptimize(env->get("n"));
  }
  state.SetItemsProcessed(state.iterations() * scripts * 50);
}
BENCHMARK(BM_FramesUnderLoad)->Arg(1)->Arg(8)->Arg(64);

void BM_SliceBudget(benchmark::State& state) {
  // A tiny step budget forces mid-expression preemption; throughput drops
  // but progress stays correct.
  const auto budget = state.range(0);
  for (auto _ : state) {
    sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
    tm.setSliceSteps(size_t(budget));
    auto env = blocks::Environment::make();
    env->declare("n", blocks::Value(0));
    tm.spawnScript(scriptOf({repeat(100, scriptOf({changeVar("n", 1)}))}),
                   env);
    tm.runUntilIdle();
    benchmark::DoNotOptimize(env->get("n"));
  }
  state.counters["slice_steps"] = double(budget);
}
BENCHMARK(BM_SliceBudget)->Arg(8)->Arg(64)->Arg(1 << 20);

void BM_InterferenceOverhead(benchmark::State& state) {
  const auto period = state.range(0);
  for (auto _ : state) {
    sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
    if (period > 0) {
      tm.setInterference({uint64_t(period), 4});
    }
    tm.spawnScript(scriptOf({busyWork(200)}), blocks::Environment::make());
    benchmark::DoNotOptimize(tm.runUntilIdle());
  }
  state.counters["period"] = double(period);
}
BENCHMARK(BM_InterferenceOverhead)->Arg(0)->Arg(3)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
