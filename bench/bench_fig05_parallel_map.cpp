// E2 — paper Fig. 5/6: the parallelMap block.
//
// Reproduction: parallel map ((  ) × 10) over 1..1000 reports 10,20,…
// (Fig. 6's input/output columns), with the worker-count slot honoured
// and defaulting to 4.
//
// Measurement: this host has a single CPU core, so wall-clock time cannot
// show parallel speedup; the *virtual makespan* (max items processed by
// any one worker, unit cost per item) carries the paper's speedup shape:
// makespan ≈ ceil(n / workers).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "core/pure_eval.hpp"
#include "sched/thread_manager.hpp"
#include "workers/parallel.hpp"

namespace {

using namespace psnap;
using namespace psnap::build;

const vm::PrimitiveTable& prims() {
  static const vm::PrimitiveTable table = core::fullPrimitiveTable();
  return table;
}

void printReproduction() {
  std::printf("# E2 / Fig. 5-6 — parallelMap block\n");
  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
  blocks::Value v = tm.evaluate(
      parallelMap(ring(product(empty(), 10)), numbersFromTo(1, 1000)),
      blocks::Environment::make());
  std::printf("#   input 1..10   -> 1 2 3 4 5 6 7 8 9 10\n#   output 1..10 ->");
  for (size_t i = 1; i <= 10; ++i) {
    std::printf(" %s", v.asList()->item(i).display().c_str());
  }
  std::printf("   (paper Fig. 6: 10 20 ... 100)\n");

  // Worker sweep in virtual makespan (n = 1000 unit-cost items).
  std::printf("#\n#   workers  virtual-makespan  ideal ceil(n/w)  speedup\n");
  auto fn = core::compileUnary(
      tm.evaluate(ring(product(empty(), 10)), blocks::Environment::make())
          .asRing());
  std::vector<blocks::Value> input;
  for (int i = 1; i <= 1000; ++i) input.emplace_back(i);
  uint64_t serial = 0;
  for (size_t w : {1u, 2u, 4u, 8u, 16u}) {
    workers::Parallel job(input,
                          {.maxWorkers = w,
                           .distribution = workers::Distribution::Contiguous});
    job.map(fn);
    job.wait();
    uint64_t makespan = job.virtualMakespan();
    if (w == 1) serial = makespan;
    std::printf("#   %7zu  %16llu  %15zu  %6.2fx\n", w,
                (unsigned long long)makespan, (1000 + w - 1) / w,
                double(serial) / double(makespan));
  }
  std::printf("\n");
}

/// Full block-level parallelMap through the scheduler (includes compile,
/// ship, poll).
void BM_ParallelMapBlock(benchmark::State& state) {
  const auto n = state.range(0);
  const auto workerCount = state.range(1);
  for (auto _ : state) {
    sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
    blocks::Value v = tm.evaluate(
        parallelMap(ring(product(empty(), 10)), numbersFromTo(1, n),
                    In(double(workerCount))),
        blocks::Environment::make());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["workers"] = double(workerCount);
}
BENCHMARK(BM_ParallelMapBlock)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({10000, 4});

/// The raw Parallel.js-analog facade (no interpreter in the loop).
void BM_ParallelFacade(benchmark::State& state) {
  const auto n = state.range(0);
  const auto workerCount = state.range(1);
  std::vector<blocks::Value> input;
  for (int64_t i = 1; i <= n; ++i) input.emplace_back(double(i));
  for (auto _ : state) {
    workers::Parallel job(input, {.maxWorkers = size_t(workerCount)});
    job.map([](const blocks::Value& v) {
      return blocks::Value(v.asNumber() * 10);
    });
    job.wait();
    benchmark::DoNotOptimize(job.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["workers"] = double(workerCount);
}
BENCHMARK(BM_ParallelFacade)->Args({10000, 1})->Args({10000, 4});

/// Sequential map block at the same sizes: the Fig. 4 baseline for the
/// crossover comparison.
void BM_SequentialBaseline(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
    blocks::Value v = tm.evaluate(
        mapOver(ring(product(empty(), 10)), numbersFromTo(1, n)),
        blocks::Environment::make());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SequentialBaseline)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
