// Completion-driven async benchmark. Two claims from the scheduler
// refactor are measured end to end and emitted as BENCH_async.json:
//
//   * wakeup latency — a process parked on `await` resumes via the
//     completion callback + wake hub, not a per-frame poll. Measured as
//     wall time from the operation's settle to the awaiting process
//     finishing its resumed slice, over many launch/await rounds;
//     acceptance is p99 below one parked frame period — the scheduler's
//     hub-wait bound (ThreadManager::parkedWaitBound), the cadence at
//     which a parked scheduler would re-check anyway with no notify at
//     all. Beating it proves the wake is delivered by the completion
//     callback, not by the wait timing out.
//   * parked frame accounting — frames executed while the only live
//     process was parked must be zero: the scheduler sleeps on the hub,
//     it does not spin (frames_while_parked, totalled over rounds).
//
// Plus the pipelined mapReduce: the chained map→shuffle→reduce engine
// runs J concurrent wordcount jobs through the shared pool with no phase
// barriers; every output must be byte-identical to the sequential
// reference, and the concurrent makespan is compared against running the
// same jobs back-to-back (pipeline_speedup).
//
// Usage: bench_async [--quick] [--out FILE.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blocks/builder.hpp"
#include "blocks/future.hpp"
#include "core/parallel_blocks.hpp"
#include "mapreduce/engine.hpp"
#include "sched/thread_manager.hpp"

namespace {

using namespace psnap::build;
using psnap::blocks::BlockRegistry;
using psnap::blocks::Environment;
using psnap::blocks::FuturePtr;
using psnap::blocks::List;
using psnap::blocks::ListPtr;
using psnap::blocks::Value;
using psnap::sched::ThreadManager;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * double(samples.size() - 1);
  const size_t lo = size_t(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - double(lo);
  return samples[lo] * (1 - frac) + samples[hi] * frac;
}

/// The 26-word vocabulary the wordcount rounds cycle through.
const char* kWords[] = {
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
    "oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
    "victor", "whiskey", "xray", "yankee", "zulu"};

ListPtr wordList(size_t n) {
  auto list = List::make();
  for (size_t i = 0; i < n; ++i) {
    // Stride by a co-prime so equal words are scattered, not clustered.
    list->add(Value(std::string(kWords[(i * 7) % 26])));
  }
  return list;
}

}  // namespace

int main(int argc, char** argv) {
  size_t wakeupRounds = 300;
  size_t mapItems = 30'000;
  size_t words = 4'000;
  size_t jobs = 8;
  std::string outPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      wakeupRounds = 40;
      mapItems = 8'000;
      words = 1'200;
      jobs = 4;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE.json]\n",
                   argv[0]);
      return 2;
    }
  }

  auto prims = psnap::core::fullPrimitiveTable();

  // --- wakeup latency + parked frame accounting --------------------------
  // framePeriodMs is read off the live scheduler once a process is
  // actually parked: the bound every hub wait uses, i.e. how long a wake
  // could take if nothing notified the hub.
  double framePeriodMs = 0;
  std::vector<double> wakeups;
  uint64_t framesWhileParked = 0;
  for (size_t round = 0; round < wakeupRounds; ++round) {
    ThreadManager tm(&BlockRegistry::standard(), &prims);
    auto env = Environment::make();
    env->declare("f", Value());
    env->declare("result", Value());
    tm.spawnScript(
        scriptOf({setVar("f", launchParallelMap(
                                  ring(product(empty(), 3)),
                                  numbersFromTo(1, double(mapItems)), 4)),
                  setVar("result", awaitValue(getVar("f")))}),
        env);
    // Launch and park happen in the process's first slice; f is set by
    // the same slice that parks.
    for (int guard = 0; !env->get("f").isFuture() && guard < 8; ++guard) {
      tm.runFrame();
    }
    if (!env->get("f").isFuture()) {
      std::fprintf(stderr, "round %zu: launch never produced a future\n",
                   round);
      return 1;
    }
    if (round == 0) framePeriodMs = tm.parkedWaitBound() * 1e3;
    std::atomic<Clock::time_point> settledAt{Clock::now()};
    env->get("f").asFuture()->onSettle(
        [&settledAt] { settledAt.store(Clock::now()); });
    const uint64_t executed = tm.runUntilIdle();
    const double wakeup = secondsSince(settledAt.load());
    if (env->get("result").isNothing() ||
        env->get("result").asList()->length() != mapItems) {
      std::fprintf(stderr, "round %zu: wrong map result\n", round);
      return 1;
    }
    wakeups.push_back(wakeup);
    // One frame resumes and finishes the woken process; anything beyond
    // it would be a frame burned while the process was parked.
    framesWhileParked += executed > 1 ? executed - 1 : 0;
  }
  const double wakeupP50 = percentile(wakeups, 0.50) * 1e3;
  const double wakeupP99 = percentile(wakeups, 0.99) * 1e3;

  // --- pipelined mapReduce wordcount -------------------------------------
  auto input = wordList(words);
  psnap::mr::MapFn one = [](const Value&) { return Value(1); };
  psnap::mr::ReduceFn count = [](const ListPtr& values) {
    return Value(values->length());
  };
  const std::string reference =
      psnap::mr::run(input, one, count, {.sequential = true})->display();

  // Back-to-back baseline: the same jobs, one pipeline at a time.
  const auto serialStart = Clock::now();
  bool wordcountOk = true;
  for (size_t j = 0; j < jobs; ++j) {
    auto out = psnap::mr::run(input, one, count, {.workers = 4});
    wordcountOk = wordcountOk && out->display() == reference;
  }
  const double serialSeconds = secondsSince(serialStart);

  // Concurrent: all J chained pipelines in flight at once; stages
  // interleave freely on the shared pool (no phase barriers to align).
  const auto pipeStart = Clock::now();
  std::vector<std::unique_ptr<psnap::mr::Job>> inflight;
  inflight.reserve(jobs);
  for (size_t j = 0; j < jobs; ++j) {
    inflight.push_back(std::make_unique<psnap::mr::Job>(
        input, one, count, psnap::mr::Options{.workers = 4}));
  }
  for (auto& job : inflight) {
    while (!job->resolved()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    wordcountOk = wordcountOk && !job->failed() &&
                  job->result()->display() == reference;
  }
  const double pipeSeconds = secondsSince(pipeStart);
  const double speedup = pipeSeconds > 0 ? serialSeconds / pipeSeconds : 0;

  std::printf("# bench_async — completion-driven scheduling\n");
  std::printf("#   parked frame period (hub-wait bound): %.1fms\n",
              framePeriodMs);
  std::printf("#   wakeup latency p50 %.4fms  p99 %.4fms  (%zu rounds)\n",
              wakeupP50, wakeupP99, wakeupRounds);
  std::printf("#   frames while parked (total over rounds): %llu\n",
              static_cast<unsigned long long>(framesWhileParked));
  std::printf("#   wordcount %zu jobs x %zu words: %s\n", jobs, words,
              wordcountOk ? "byte-identical" : "MISMATCH");
  std::printf("#   pipelined %.3fs vs back-to-back %.3fs (speedup %.2fx)\n",
              pipeSeconds, serialSeconds, speedup);

  const bool pass =
      wordcountOk && framesWhileParked == 0 && wakeupP99 < framePeriodMs;
  std::printf("#   acceptance: %s\n", pass ? "PASS" : "FAIL");

  if (!outPath.empty()) {
    FILE* f = std::fopen(outPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_async\",\n");
    std::fprintf(f, "  \"wakeup_rounds\": %zu,\n", wakeupRounds);
    std::fprintf(f, "  \"frame_period_ms\": %.4f,\n", framePeriodMs);
    std::fprintf(f, "  \"wakeup_p50_ms\": %.4f,\n", wakeupP50);
    std::fprintf(f, "  \"wakeup_p99_ms\": %.4f,\n", wakeupP99);
    std::fprintf(f, "  \"frames_while_parked\": %llu,\n",
                 static_cast<unsigned long long>(framesWhileParked));
    std::fprintf(f, "  \"wordcount_jobs\": %zu,\n", jobs);
    std::fprintf(f, "  \"wordcount_words\": %zu,\n", words);
    std::fprintf(f, "  \"wordcount_ok\": %s,\n",
                 wordcountOk ? "true" : "false");
    std::fprintf(f, "  \"pipelined_seconds\": %.3f,\n", pipeSeconds);
    std::fprintf(f, "  \"serial_seconds\": %.3f,\n", serialSeconds);
    std::fprintf(f, "  \"pipeline_speedup\": %.2f,\n", speedup);
    std::fprintf(f, "  \"acceptance\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
  }
  return pass ? 0 : 1;
}
