// E4 — paper Figs. 11/12: word count with the mapReduce block.
//
// Reproduction: the sorted (word, count) list of Fig. 12 over the demo
// sentence, verified against a plain-C++ reference count.
// Benchmark: MapReduce engine throughput, parallel vs sequential, over
// Zipf corpora of growing size.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "data/corpus.hpp"
#include "mapreduce/engine.hpp"
#include "sched/thread_manager.hpp"

namespace {

using namespace psnap;
using namespace psnap::build;

const vm::PrimitiveTable& prims() {
  static const vm::PrimitiveTable table = core::fullPrimitiveTable();
  return table;
}

void printReproduction() {
  std::printf("# E4 / Fig. 11-12 — word count mapReduce\n");
  const std::string text = data::sampleSentence();
  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
  blocks::Value v = tm.evaluate(
      mapReduce(ring(In(1.0)), ring(lengthOf(empty())),
                splitText(text, "whitespace")),
      blocks::Environment::make());
  auto reference = data::referenceWordCount(text);
  std::printf("#   input: \"%s\"\n#   word        count  (reference)\n",
              text.c_str());
  bool match = v.asList()->length() == reference.size();
  for (const blocks::Value& pair : v.asList()->items()) {
    const std::string word = pair.asList()->item(1).asText();
    const size_t count = size_t(pair.asList()->item(2).asNumber());
    const size_t expected = reference.count(word) ? reference.at(word) : 0;
    match = match && count == expected;
    std::printf("#   %-10s %6zu  (%zu)\n", word.c_str(), count, expected);
  }
  std::printf("#   result %s the reference count\n\n",
              match ? "MATCHES" : "DIFFERS FROM");
}

blocks::ListPtr corpusList(size_t words) {
  auto list = blocks::List::make();
  for (const std::string& w :
       data::tokenize(data::generateText(words, 50, 99))) {
    list->add(blocks::Value(w));
  }
  return list;
}

mr::MapFn constOne() {
  return [](const blocks::Value&) { return blocks::Value(1); };
}
mr::ReduceFn countValues() {
  return [](const blocks::ListPtr& values) {
    return blocks::Value(values->length());
  };
}

void BM_WordCountEngineParallel(benchmark::State& state) {
  auto input = corpusList(size_t(state.range(0)));
  mr::Stats stats;
  for (auto _ : state) {
    auto result = mr::run(input, constOne(), countValues(), {.workers = 4},
                          &stats);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["distinct_keys"] = double(stats.distinctKeys);
  state.counters["map_makespan"] = double(stats.mapMakespan);
}
BENCHMARK(BM_WordCountEngineParallel)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void BM_WordCountEngineSequential(benchmark::State& state) {
  auto input = corpusList(size_t(state.range(0)));
  for (auto _ : state) {
    auto result =
        mr::run(input, constOne(), countValues(), {.sequential = true});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WordCountEngineSequential)->Arg(1000)->Arg(10000)->Arg(100000);

/// The whole block path: split + mapReduce block through the scheduler.
void BM_WordCountBlock(benchmark::State& state) {
  const std::string text =
      data::generateText(size_t(state.range(0)), 50, 99);
  for (auto _ : state) {
    sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims());
    blocks::Value v = tm.evaluate(
        mapReduce(ring(In(1.0)), ring(lengthOf(empty())),
                  splitText(text, "whitespace")),
        blocks::Environment::make());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WordCountBlock)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
