// A2 — ablation: worker-pool distribution strategies.
//
// The paper's Parallel.js workers "systematically process the remaining
// elements" (dynamic self-scheduling). This ablation compares that
// default against static contiguous and block-cyclic assignment:
//
//   * the reproduction table is a deterministic simulation in *weighted
//     virtual time* (each item has a known cost; workers complete work at
//     unit speed), which isolates the balance effect from the host's
//     single CPU core;
//   * the google-benchmark section measures the real threaded facade.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <queue>
#include <vector>

#include "workers/parallel.hpp"

namespace {

using psnap::blocks::Value;
using psnap::workers::Distribution;
using psnap::workers::Parallel;
using psnap::workers::ParallelOptions;

std::vector<double> uniformCosts(size_t n) {
  return std::vector<double>(n, 1.0);
}

/// Front-loaded imbalance: the first half of the items cost 9 units.
std::vector<double> skewedCosts(size_t n) {
  std::vector<double> out(n, 1.0);
  for (size_t i = 0; i < n / 2; ++i) out[i] = 9.0;
  return out;
}

/// Deterministic virtual-time makespan of a distribution policy.
double simulateMakespan(const std::vector<double>& costs,
                        Distribution distribution, size_t workerCount,
                        size_t chunk) {
  const size_t n = costs.size();
  std::vector<double> load(workerCount, 0.0);
  switch (distribution) {
    case Distribution::Contiguous: {
      const size_t per = (n + workerCount - 1) / workerCount;
      for (size_t i = 0; i < n; ++i) load[std::min(i / per, workerCount - 1)] += costs[i];
      break;
    }
    case Distribution::BlockCyclic: {
      for (size_t i = 0; i < n; ++i) {
        load[(i / chunk) % workerCount] += costs[i];
      }
      break;
    }
    case Distribution::Dynamic: {
      // Self-scheduling: the earliest-free worker grabs the next chunk.
      std::priority_queue<double, std::vector<double>,
                          std::greater<double>> free;
      for (size_t w = 0; w < workerCount; ++w) free.push(0.0);
      for (size_t begin = 0; begin < n; begin += chunk) {
        double at = free.top();
        free.pop();
        for (size_t i = begin; i < std::min(begin + chunk, n); ++i) {
          at += costs[i];
        }
        free.push(at);
      }
      double makespan = 0;
      while (!free.empty()) {
        makespan = std::max(makespan, free.top());
        free.pop();
      }
      return makespan;
    }
  }
  return *std::max_element(load.begin(), load.end());
}

void printReproduction() {
  std::printf("# A2 — distribution ablation (1000 items, 4 workers,\n");
  std::printf("#       weighted virtual-time simulation)\n");
  std::printf("#   strategy        uniform   skewed   (ideal skewed = %g)\n",
              (9.0 * 500 + 1.0 * 500) / 4);
  struct Row {
    const char* name;
    Distribution distribution;
    size_t chunk;
  } rows[] = {
      {"dynamic(1)", Distribution::Dynamic, 1},
      {"dynamic(16)", Distribution::Dynamic, 16},
      {"contiguous", Distribution::Contiguous, 1},
      {"blockcyclic(8)", Distribution::BlockCyclic, 8},
  };
  for (const Row& row : rows) {
    std::printf("#   %-14s %8.0f %8.0f\n", row.name,
                simulateMakespan(uniformCosts(1000), row.distribution, 4,
                                 row.chunk),
                simulateMakespan(skewedCosts(1000), row.distribution, 4,
                                 row.chunk));
  }
  std::printf(
      "#   (dynamic self-scheduling — the paper's Parallel.js policy —\n"
      "#    stays near the ideal even under 9:1 cost skew; contiguous\n"
      "#    assigns all the heavy items to the first two workers)\n\n");
}

std::vector<Value> itemsFrom(const std::vector<double>& costs) {
  std::vector<Value> out;
  out.reserve(costs.size());
  for (double c : costs) out.emplace_back(c);
  return out;
}

void BM_Distribution(benchmark::State& state) {
  const Distribution distributions[] = {
      Distribution::Dynamic, Distribution::Contiguous,
      Distribution::BlockCyclic};
  const char* names[] = {"dynamic", "contiguous", "blockcyclic"};
  const auto which = state.range(0);
  auto items = itemsFrom(skewedCosts(size_t(state.range(1))));
  for (auto _ : state) {
    Parallel job(items, ParallelOptions{
                            .maxWorkers = 4,
                            .distribution = distributions[which],
                            .chunkSize = 8});
    job.map([](const Value& v) {
      volatile double x = 0;
      for (int i = 0; i < int(v.asNumber()) * 50; ++i) x += i;
      return v;
    });
    job.wait();
    benchmark::DoNotOptimize(job.data());
  }
  state.SetLabel(names[which]);
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_Distribution)
    ->Args({0, 2000})
    ->Args({1, 2000})
    ->Args({2, 2000});

void BM_WorkerCountSweep(benchmark::State& state) {
  auto items = itemsFrom(uniformCosts(4000));
  const auto workerCount = size_t(state.range(0));
  for (auto _ : state) {
    Parallel job(items, ParallelOptions{.maxWorkers = workerCount});
    job.map([](const Value& v) { return Value(v.asNumber() * 2); });
    job.wait();
    benchmark::DoNotOptimize(job.data());
  }
  state.counters["workers"] = double(workerCount);
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_WorkerCountSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_StructuredCloneCost(benchmark::State& state) {
  // The per-job cost of the structured-clone isolation.
  auto items = itemsFrom(uniformCosts(size_t(state.range(0))));
  for (auto _ : state) {
    Parallel job(items, ParallelOptions{.maxWorkers = 1});
    benchmark::DoNotOptimize(job.workerCount());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StructuredCloneCost)->Arg(1000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
