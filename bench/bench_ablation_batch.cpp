// A5 — ablation: the simulated batch queue (paper Sec. 6.3 future work).
//
// Compares strict FCFS against EASY backfill on a mixed job trace:
// makespan and mean wait time. Backfill is the design the generated batch
// scripts target on real clusters; the ablation shows why.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "codegen/batch.hpp"
#include "support/rng.hpp"

namespace {

using psnap::codegen::BatchQueue;
using psnap::codegen::JobRequest;
using psnap::codegen::JobStatus;

/// A deterministic mixed trace: alternating wide/long and narrow/short
/// jobs — the pattern where backfill shines.
std::vector<JobRequest> mixedTrace(size_t jobs, uint64_t seed) {
  psnap::Rng rng(seed);
  std::vector<JobRequest> out;
  for (size_t i = 0; i < jobs; ++i) {
    JobRequest r;
    r.name = "job" + std::to_string(i);
    if (rng.below(3) == 0) {
      r.nodes = int(rng.between(6, 8));   // wide
      r.wallSeconds = double(rng.between(50, 100));
    } else {
      r.nodes = int(rng.between(1, 2));   // narrow
      r.wallSeconds = double(rng.between(5, 30));
    }
    out.push_back(std::move(r));
  }
  return out;
}

struct TraceResult {
  double makespan = 0;
  double meanWait = 0;
};

TraceResult runTrace(bool backfill, size_t jobs, uint64_t seed) {
  BatchQueue queue(8, backfill);
  std::vector<uint64_t> ids;
  for (JobRequest& request : mixedTrace(jobs, seed)) {
    ids.push_back(queue.submit(std::move(request)));
  }
  TraceResult result;
  result.makespan = queue.drain();
  double waitSum = 0;
  for (uint64_t id : ids) {
    const JobStatus& s = queue.status(id);
    waitSum += s.startTime - s.submitTime;
  }
  result.meanWait = waitSum / double(ids.size());
  return result;
}

void printReproduction() {
  std::printf("# A5 — batch queue ablation (8-node cluster, mixed trace)\n");
  std::printf("#   jobs  policy     makespan  mean-wait\n");
  for (size_t jobs : {20u, 60u}) {
    for (bool backfill : {false, true}) {
      TraceResult r = runTrace(backfill, jobs, 42);
      std::printf("#   %4zu  %-9s %9.0f %10.1f\n", jobs,
                  backfill ? "backfill" : "fcfs", r.makespan, r.meanWait);
    }
  }
  std::printf("#   (EASY backfill fills the holes narrow jobs leave in\n");
  std::printf("#    front of wide reservations: shorter waits, same or\n");
  std::printf("#    better makespan, head never delayed)\n\n");
}

void BM_QueueScheduling(benchmark::State& state) {
  const bool backfill = state.range(0) != 0;
  const size_t jobs = size_t(state.range(1));
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runTrace(backfill, jobs, seed++));
  }
  state.SetLabel(backfill ? "backfill" : "fcfs");
  state.SetItemsProcessed(state.iterations() * int64_t(jobs));
}
BENCHMARK(BM_QueueScheduling)
    ->Args({0, 100})
    ->Args({1, 100})
    ->Args({1, 1000});

}  // namespace

int main(int argc, char** argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
