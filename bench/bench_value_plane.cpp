// Value-plane benchmark: the perf trajectory for the copy-on-write value
// representation (COW value-plane PR). Workloads, each emitted as a
// machine-readable row of BENCH_value.json:
//
//   * clone/flat_numbers/n=<k>  — structuredClone/s of a flat numeric list
//                                 (O(1) buffer share vs eager deep copy).
//   * clone/flat_text/n=<k>     — same, list of 64-byte texts (shared
//                                 immutable TextRep vs per-string copies).
//   * clone/nested_pairs/n=<k>  — list of [text, number] pairs: the spine
//                                 is rebuilt, leaf buffers/texts shared.
//   * entry/parallel_text/n=<k> — a full Parallel constructor (clone-in):
//                                 the worker-boundary cost the paper's
//                                 Listing 1 pays before map() starts.
//   * equals/num_text           — numeric-text equality (the seed parsed
//                                 both sides twice; now once, cached).
//   * equals/longtext_ci        — case-insensitive text equality (the seed
//                                 allocated two toLower copies per compare).
//   * asNumber/longtext         — repeated coercion of one long text value
//                                 (cached parse on the shared rep).
//
// The clone/entry workloads also run against `legacyClone`, a faithful
// replica of the seed's eager structured clone (fresh buffers, fresh
// string bytes, element-wise recursion), so the seed-vs-new comparison
// regenerates on any checkout. The equals/asNumber rows additionally
// report heap allocations per repetition (a global operator-new counter;
// only meaningful for these single-threaded rows — the seed's hot
// comparisons allocated, the COW plane's must not). Usage:
//
//   bench_value_plane [--variant NAME] [--out FILE.json] [--quick|--smoke]
//
// `--smoke` shrinks sizes ~1000x and the measurement window to ~20 ms so
// `scripts/check.sh --bench-smoke` can exercise every code path cheaply.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "blocks/value.hpp"
#include "support/rng.hpp"
#include "workers/parallel.hpp"

// ---------------------------------------------------------------------------
// Allocation counter: every scalar/array operator new in the binary bumps
// one relaxed atomic. The array and sized-delete forms default to these.
// ---------------------------------------------------------------------------
namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using psnap::Rng;
using psnap::blocks::List;
using psnap::blocks::ListPtr;
using psnap::blocks::Value;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// -------------------------------------------------------------------------
// legacyClone: the seed's eager structured clone. Fresh List nodes with
// fresh buffers, fresh string bytes for every text, element-wise
// recursion — the cost model the COW snapshot replaces.
// -------------------------------------------------------------------------
Value legacyClone(const Value& v) {
  if (v.isList()) {
    const ListPtr& src = v.asList();
    auto out = List::make();
    out->reserve(src->length());
    for (const Value& item : src->items()) out->add(legacyClone(item));
    return Value(out);
  }
  if (v.isText()) return Value(std::string(v.textView()));
  return v;
}

struct Row {
  std::string bench;
  double rate = 0;      // primary metric, unit-tagged below
  std::string unit;
  double seconds = 0;   // total measured wall time
  uint64_t reps = 0;
  double allocsPerRep = -1;  // heap allocations per rep; -1 = not tracked
};

// Run `body` repeatedly until ~minSeconds elapsed. `trackAllocs` also
// divides the operator-new delta by reps (single-threaded rows only).
template <typename F>
Row timed(const std::string& name, const std::string& unit, double perRep,
          double minSeconds, bool trackAllocs, F body) {
  body();  // warm-up: first rep pays lazy caches / pool creation
  uint64_t reps = 0;
  const uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  auto start = Clock::now();
  double elapsed = 0;
  do {
    body();
    ++reps;
    elapsed = secondsSince(start);
  } while (elapsed < minSeconds);
  Row row;
  row.bench = name;
  row.unit = unit;
  row.seconds = elapsed;
  row.reps = reps;
  row.rate = perRep * double(reps) / elapsed;
  if (trackAllocs) {
    const uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
    row.allocsPerRep = double(allocs1 - allocs0) / double(reps);
  }
  return row;
}

ListPtr flatNumbers(size_t n) {
  auto list = List::make();
  list->reserve(n);
  for (size_t i = 0; i < n; ++i) list->add(Value(double(i)));
  return list;
}

ListPtr flatTexts(size_t n) {
  Rng rng(99);
  auto list = List::make();
  list->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string text(64, 'x');
    for (char& c : text) c = char('a' + rng.below(26));
    list->add(Value(std::move(text)));
  }
  return list;
}

ListPtr nestedPairs(size_t n) {
  auto list = List::make();
  list->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    list->add(Value(List::make(
        {Value("key-with-some-padding-" + std::to_string(i % 1024)),
         Value(double(i))})));
  }
  return list;
}

uint64_t g_sink = 0;  // defeats clone elision without atomics in the loop

Row benchClone(const std::string& shape, const ListPtr& list, bool legacy,
               double minSeconds) {
  const Value source(list);
  const std::string name = std::string(legacy ? "legacy_" : "") + "clone/" +
                           shape + "/n=" + std::to_string(list->length());
  return timed(name, "clones/s", 1.0, minSeconds, /*trackAllocs=*/false, [&] {
    Value clone = legacy ? legacyClone(source) : source.structuredClone();
    g_sink += clone.asList()->length();
  });
}

Row benchParallelEntry(const ListPtr& list, bool legacy, double minSeconds) {
  const std::string name = std::string(legacy ? "legacy_" : "") +
                           "entry/parallel_text/n=" +
                           std::to_string(list->length());
  return timed(name, "ops/s", 1.0, minSeconds, /*trackAllocs=*/false, [&] {
    if (legacy) {
      std::vector<Value> data;
      data.reserve(list->length());
      for (const Value& v : list->items()) data.push_back(legacyClone(v));
      g_sink += data.size();
    } else {
      psnap::workers::Parallel p(list, {.maxWorkers = 4});
      g_sink += p.workerCount();
    }
  });
}

Row benchEqualsNumText(double minSeconds) {
  const Value text("3.14159");
  const Value number(3.14159);
  return timed("equals/num_text", "cmp/s", 1.0, minSeconds,
               /*trackAllocs=*/true, [&] {
                 g_sink += text.equals(number) ? 1 : 0;
               });
}

Row benchEqualsLongTextCi(double minSeconds) {
  const std::string base(100, 'q');
  Value a(base + "SUFFIXCASE");
  Value b(base + "suffixCASE");
  return timed("equals/longtext_ci", "cmp/s", 1.0, minSeconds,
               /*trackAllocs=*/true, [&] {
                 g_sink += a.equals(b) ? 1 : 0;
               });
}

Row benchAsNumberLongText(double minSeconds) {
  // > 15 bytes so it lives in a shared TextRep with a cached parse.
  const Value v("        31415.926535897932        ");
  return timed("asNumber/longtext", "coercions/s", 1.0, minSeconds,
               /*trackAllocs=*/true, [&] {
                 g_sink += uint64_t(v.asNumber());
               });
}

void writeJson(const std::string& path, const std::string& variant,
               const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_value_plane\",\n");
  std::fprintf(f, "  \"variant\": \"%s\",\n  \"rows\": [\n", variant.c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"rate\": %.1f, \"unit\": \"%s\", "
                 "\"reps\": %llu, \"seconds\": %.3f",
                 r.bench.c_str(), r.rate, r.unit.c_str(),
                 static_cast<unsigned long long>(r.reps), r.seconds);
    if (r.allocsPerRep >= 0) {
      std::fprintf(f, ", \"allocs_per_rep\": %.2f", r.allocsPerRep);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string variant = "new";
  std::string out = "BENCH_value.json";
  double minSeconds = 0.4;
  size_t scale = 1;  // divides workload sizes in smoke mode
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--variant") && i + 1 < argc) {
      variant = argv[++i];
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out = argv[++i];
    } else if (!std::strcmp(argv[i], "--quick")) {
      minSeconds = 0.1;
    } else if (!std::strcmp(argv[i], "--smoke")) {
      minSeconds = 0.02;
      scale = 1000;
    }
  }

  const size_t big = 1'000'000 / scale;
  const size_t mid = 100'000 / scale;

  std::vector<Row> rows;
  {
    ListPtr list = flatNumbers(big);
    rows.push_back(benchClone("flat_numbers", list, /*legacy=*/false,
                              minSeconds));
    rows.push_back(benchClone("flat_numbers", list, /*legacy=*/true,
                              minSeconds));
  }
  {
    ListPtr list = flatTexts(mid);
    rows.push_back(benchClone("flat_text", list, /*legacy=*/false,
                              minSeconds));
    rows.push_back(benchClone("flat_text", list, /*legacy=*/true,
                              minSeconds));
  }
  {
    ListPtr list = nestedPairs(mid);
    rows.push_back(benchClone("nested_pairs", list, /*legacy=*/false,
                              minSeconds));
    rows.push_back(benchClone("nested_pairs", list, /*legacy=*/true,
                              minSeconds));
  }
  rows.push_back(benchEqualsNumText(minSeconds));
  rows.push_back(benchEqualsLongTextCi(minSeconds));
  rows.push_back(benchAsNumberLongText(minSeconds));
  {
    ListPtr list = flatTexts(mid);
    rows.push_back(benchParallelEntry(list, /*legacy=*/false, minSeconds));
    rows.push_back(benchParallelEntry(list, /*legacy=*/true, minSeconds));
  }

  std::printf("%-34s %16s %12s %8s %10s\n", "bench", "rate", "unit", "reps",
              "allocs/rep");
  for (const Row& r : rows) {
    if (r.allocsPerRep >= 0) {
      std::printf("%-34s %16.1f %12s %8llu %10.2f\n", r.bench.c_str(),
                  r.rate, r.unit.c_str(),
                  static_cast<unsigned long long>(r.reps), r.allocsPerRep);
    } else {
      std::printf("%-34s %16.1f %12s %8llu %10s\n", r.bench.c_str(), r.rate,
                  r.unit.c_str(), static_cast<unsigned long long>(r.reps),
                  "-");
    }
  }
  writeJson(out, variant, rows);
  std::printf("wrote %s (variant=%s)\n", out.c_str(), variant.c_str());
  if (g_sink == uint64_t(-1)) std::abort();  // keep the sink observable
  return 0;
}
