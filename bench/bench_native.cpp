// Native execution tier benchmark, emitted as BENCH_native.json.
//
// Three claims are measured end to end:
//
//   * map throughput — the paper's Fig. 11 word-count mapper (ring(1.0))
//     and the Fig. 13 climate mapper ((5*(x-32))/9) over large arrays,
//     interpreted vs native-batch, with every output bit-compared;
//     acceptance is >= 10x on the word-count mapper with byte-identical
//     results.
//   * non-blocking promotion — with an asynchronous compile in flight,
//     the hot path keeps serving interpreter calls; the compile latency
//     (threshold crossing to install) is reported, along with the
//     slowest single call observed while the compiler ran — which must
//     stay far below the compile latency itself (the caller never waits
//     on gcc).
//   * end-to-end word count — the full mapReduce engine with the tiered
//     batch hook vs the interpreter-only tier, byte-identical output.
//
// Usage: bench_native [--quick] [--out FILE.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "blocks/builder.hpp"
#include "codegen/toolchain.hpp"
#include "core/parallel_blocks.hpp"
#include "core/pure_eval.hpp"
#include "core/tiering.hpp"
#include "mapreduce/engine.hpp"
#include "native/marshal.hpp"
#include "native/tier.hpp"
#include "vm/process.hpp"

namespace {

using namespace psnap::build;
using psnap::blocks::BlockRegistry;
using psnap::blocks::Environment;
using psnap::blocks::EnvPtr;
using psnap::blocks::List;
using psnap::blocks::ListPtr;
using psnap::blocks::RingPtr;
using psnap::blocks::Value;
using psnap::codegen::KernelShape;
using psnap::core::TieredUnary;
using psnap::native::KernelState;
using psnap::native::RingKernel;
using psnap::native::TierConfig;
using psnap::native::TierManager;
using psnap::native::TierScope;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

RingPtr makeRing(psnap::blocks::BlockPtr reify) {
  static psnap::vm::PrimitiveTable prims =
      psnap::vm::PrimitiveTable::standard();
  static psnap::vm::NullHost host;
  psnap::vm::Process p(&BlockRegistry::standard(), &prims, &host);
  p.startExpression(std::move(reify), Environment::make());
  return p.runToCompletion().asRing();
}

bool sameBits(const Value& a, const Value& b) {
  return psnap::native::byteIdentical(a, b);
}

/// Drive a tiered function to Trusted with a synchronous low threshold.
void heat(const TieredUnary& tiered, RingKernel* kernel) {
  for (int i = 0; i < 8 && kernel->currentState() != KernelState::Trusted;
       ++i) {
    tiered.fn(Value(double(i + 1)));
  }
}

struct MapResult {
  double interpSeconds = 0;
  double nativeSeconds = 0;
  double speedup = 0;
  bool byteIdentical = false;
  bool trusted = false;
};

/// Interpreted loop vs tiered batch over `n` items, `reps` repetitions
/// each, outputs bit-compared element by element.
MapResult benchMapper(psnap::blocks::BlockPtr reify, size_t n, size_t reps) {
  MapResult r;
  RingPtr ring = makeRing(std::move(reify));
  psnap::core::PureFn reference = psnap::core::compileRing(ring);

  TierConfig cfg;
  cfg.hotThreshold = 4;
  cfg.synchronousCompile = true;
  TierScope scope(cfg);
  TieredUnary tiered = psnap::core::tieredUnary(ring);
  RingKernel* kernel =
      TierManager::instance().lookup(*ring, KernelShape::Unary);
  heat(tiered, kernel);
  r.trusted = kernel->currentState() == KernelState::Trusted;
  if (!r.trusted) return r;

  std::vector<Value> input;
  input.reserve(n);
  for (size_t i = 0; i < n; ++i) input.emplace_back(double(i) + 0.5);

  // Correctness first (untimed): one native batch over a fresh copy,
  // bit-compared element-wise against the interpreter.
  std::vector<Value> interpOut(input);
  for (size_t i = 0; i < n; ++i) interpOut[i] = reference({input[i]});
  std::vector<Value> nativeOut = input;
  if (!tiered.batch(nativeOut.data(), nativeOut.size())) return r;
  r.byteIdentical = true;
  for (size_t i = 0; i < n; ++i) {
    r.byteIdentical = r.byteIdentical && sameBits(interpOut[i], nativeOut[i]);
  }

  // Throughput: in-place transform of the data array, exactly what the
  // Parallel facade's map does with each chunk. (Re-transforming already
  // transformed values is the same per-element work — the mappers here
  // are closed over finite doubles.)
  std::vector<Value> buffer = input;
  const auto interpStart = Clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    for (size_t i = 0; i < n; ++i) buffer[i] = reference({buffer[i]});
  }
  r.interpSeconds = secondsSince(interpStart) / double(reps);

  buffer = input;
  const auto nativeStart = Clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    if (!tiered.batch(buffer.data(), buffer.size())) return r;
  }
  r.nativeSeconds = secondsSince(nativeStart) / double(reps);
  r.speedup = r.nativeSeconds > 0 ? r.interpSeconds / r.nativeSeconds : 0;
  return r;
}

const char* kWords[] = {
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
    "oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
    "victor", "whiskey", "xray", "yankee", "zulu"};

ListPtr wordList(size_t n) {
  auto list = List::make();
  for (size_t i = 0; i < n; ++i) {
    list->add(Value(std::string(kWords[(i * 7) % 26])));
  }
  return list;
}

}  // namespace

int main(int argc, char** argv) {
  size_t mapItems = 200'000;
  size_t mapReps = 20;
  size_t words = 60'000;
  std::string outPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      mapItems = 40'000;
      mapReps = 5;
      words = 15'000;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE.json]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!psnap::codegen::Toolchain::compilerAvailable()) {
    std::printf("# bench_native: no C compiler on PATH; skipping\n");
    return 0;
  }

  std::printf("# bench_native — hot rings compiled to C and swapped in\n");

  // --- Fig. 11 word-count mapper: item -> 1 ------------------------------
  MapResult wordcountMap =
      benchMapper(ring(In(1.0)), mapItems, mapReps);
  std::printf(
      "#   fig11 mapper  %zu items: interp %.1fms  native %.2fms  "
      "(%.1fx, %s)\n",
      mapItems, wordcountMap.interpSeconds * 1e3,
      wordcountMap.nativeSeconds * 1e3, wordcountMap.speedup,
      wordcountMap.byteIdentical ? "byte-identical" : "MISMATCH");

  // --- Fig. 13 climate mapper: (5 * (x - 32)) / 9 ------------------------
  MapResult climateMap = benchMapper(
      ring(quotient(product(5.0, difference(empty(), 32.0)), 9.0)),
      mapItems, mapReps);
  std::printf(
      "#   fig13 mapper  %zu items: interp %.1fms  native %.2fms  "
      "(%.1fx, %s)\n",
      mapItems, climateMap.interpSeconds * 1e3,
      climateMap.nativeSeconds * 1e3, climateMap.speedup,
      climateMap.byteIdentical ? "byte-identical" : "MISMATCH");

  // --- non-blocking promotion: async compile vs the hot path -------------
  double compileSeconds = 0;
  double slowestHotCallMs = 0;
  bool asyncInstalled = false;
  {
    RingPtr hotRing = makeRing(
        ring(sum(product(empty(), 1.00048828125), 0.5)));
    TierConfig cfg;
    cfg.hotThreshold = 256;
    cfg.synchronousCompile = false;
    TierScope scope(cfg);
    TieredUnary tiered = psnap::core::tieredUnary(hotRing);
    RingKernel* kernel =
        TierManager::instance().lookup(*hotRing, KernelShape::Unary);
    Clock::time_point crossing{};
    int i = 0;
    for (; i < 2'000'000; ++i) {
      const auto callStart = Clock::now();
      tiered.fn(Value(double(i)));
      const KernelState state = kernel->currentState();
      if (state == KernelState::Compiling && crossing == Clock::time_point{}) {
        crossing = callStart;
      }
      if (crossing != Clock::time_point{}) {
        // A call issued while gcc runs: it must return at interpreter
        // speed, never wait on the compiler.
        slowestHotCallMs =
            std::max(slowestHotCallMs, secondsSince(callStart) * 1e3);
      }
      if (state == KernelState::Ready || state == KernelState::Trusted) {
        compileSeconds = secondsSince(crossing);
        asyncInstalled = true;
        break;
      }
    }
    TierManager::instance().waitForCompile(kernel);
  }
  std::printf(
      "#   async compile: %.0fms threshold-to-install; slowest hot-path "
      "call while compiling %.3fms (%s)\n",
      compileSeconds * 1e3, slowestHotCallMs,
      asyncInstalled ? "installed" : "NEVER INSTALLED");

  // --- end-to-end word count through the mapReduce engine ----------------
  auto input = wordList(words);
  RingPtr mapRing = makeRing(ring(In(1.0)));
  RingPtr reduceRing = makeRing(ring(lengthOf(empty())));
  std::string interpDisplay, tieredDisplay;
  double e2eInterpSeconds = 0, e2eTieredSeconds = 0;
  {
    TierConfig off;
    off.enabled = false;
    TierScope scope(off);
    TieredUnary mapper = psnap::core::tieredUnary(mapRing);
    auto reducer = psnap::core::tieredListReduce(reduceRing);
    psnap::mr::MapFn mapFn = mapper.fn;
    const auto start = Clock::now();
    auto out = psnap::mr::run(input, mapFn, reducer, {.workers = 4});
    e2eInterpSeconds = secondsSince(start);
    interpDisplay = out->display();
  }
  {
    TierConfig cfg;
    cfg.hotThreshold = 64;
    cfg.synchronousCompile = true;  // steady-state: kernel ready up front
    TierScope scope(cfg);
    TieredUnary mapper = psnap::core::tieredUnary(mapRing);
    RingKernel* kernel =
        TierManager::instance().lookup(*mapRing, KernelShape::Unary);
    heat(mapper, kernel);
    auto reducer = psnap::core::tieredListReduce(reduceRing);
    psnap::mr::MapFn mapFn = mapper.fn;
    psnap::mr::Options options{.workers = 4};
    options.mapBatch = mapper.batch;
    const auto start = Clock::now();
    auto out = psnap::mr::run(input, mapFn, reducer, options);
    e2eTieredSeconds = secondsSince(start);
    tieredDisplay = out->display();
  }
  const bool e2eIdentical =
      !interpDisplay.empty() && interpDisplay == tieredDisplay;
  const double e2eSpeedup =
      e2eTieredSeconds > 0 ? e2eInterpSeconds / e2eTieredSeconds : 0;
  std::printf(
      "#   wordcount end-to-end %zu words: interp %.1fms  tiered %.1fms  "
      "(%.2fx, %s)\n",
      words, e2eInterpSeconds * 1e3, e2eTieredSeconds * 1e3, e2eSpeedup,
      e2eIdentical ? "byte-identical" : "MISMATCH");

  const psnap::native::TierStats tierStats = TierManager::instance().stats();
  std::printf(
      "#   tier: %llu kernels, %llu compiles, %llu installs, %llu "
      "promotions, %llu downgrades, %llu native items; toolchain cache "
      "hits %llu\n",
      (unsigned long long)tierStats.kernels,
      (unsigned long long)tierStats.compiles,
      (unsigned long long)tierStats.installs,
      (unsigned long long)tierStats.promotions,
      (unsigned long long)tierStats.downgrades,
      (unsigned long long)tierStats.nativeItems,
      (unsigned long long)psnap::codegen::Toolchain::cacheHits());

  const bool pass = wordcountMap.byteIdentical && climateMap.byteIdentical &&
                    wordcountMap.speedup >= 10.0 && asyncInstalled &&
                    e2eIdentical &&
                    slowestHotCallMs < compileSeconds * 1e3;
  std::printf("#   acceptance: %s\n", pass ? "PASS" : "FAIL");

  if (!outPath.empty()) {
    FILE* f = std::fopen(outPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_native\",\n");
    std::fprintf(f, "  \"map_items\": %zu,\n", mapItems);
    std::fprintf(f, "  \"fig11_interp_ms\": %.3f,\n",
                 wordcountMap.interpSeconds * 1e3);
    std::fprintf(f, "  \"fig11_native_ms\": %.3f,\n",
                 wordcountMap.nativeSeconds * 1e3);
    std::fprintf(f, "  \"fig11_speedup\": %.1f,\n", wordcountMap.speedup);
    std::fprintf(f, "  \"fig11_byte_identical\": %s,\n",
                 wordcountMap.byteIdentical ? "true" : "false");
    std::fprintf(f, "  \"fig13_interp_ms\": %.3f,\n",
                 climateMap.interpSeconds * 1e3);
    std::fprintf(f, "  \"fig13_native_ms\": %.3f,\n",
                 climateMap.nativeSeconds * 1e3);
    std::fprintf(f, "  \"fig13_speedup\": %.1f,\n", climateMap.speedup);
    std::fprintf(f, "  \"fig13_byte_identical\": %s,\n",
                 climateMap.byteIdentical ? "true" : "false");
    std::fprintf(f, "  \"async_compile_ms\": %.1f,\n", compileSeconds * 1e3);
    std::fprintf(f, "  \"slowest_hot_call_while_compiling_ms\": %.3f,\n",
                 slowestHotCallMs);
    std::fprintf(f, "  \"wordcount_words\": %zu,\n", words);
    std::fprintf(f, "  \"wordcount_e2e_interp_ms\": %.3f,\n",
                 e2eInterpSeconds * 1e3);
    std::fprintf(f, "  \"wordcount_e2e_tiered_ms\": %.3f,\n",
                 e2eTieredSeconds * 1e3);
    std::fprintf(f, "  \"wordcount_e2e_speedup\": %.2f,\n", e2eSpeedup);
    std::fprintf(f, "  \"wordcount_e2e_identical\": %s,\n",
                 e2eIdentical ? "true" : "false");
    std::fprintf(f, "  \"tier_compiles\": %llu,\n",
                 (unsigned long long)tierStats.compiles);
    std::fprintf(f, "  \"tier_installs\": %llu,\n",
                 (unsigned long long)tierStats.installs);
    std::fprintf(f, "  \"tier_downgrades\": %llu,\n",
                 (unsigned long long)tierStats.downgrades);
    std::fprintf(f, "  \"tier_native_items\": %llu,\n",
                 (unsigned long long)tierStats.nativeItems);
    std::fprintf(f, "  \"toolchain_cache_hits\": %llu,\n",
                 (unsigned long long)psnap::codegen::Toolchain::cacheHits());
    std::fprintf(f, "  \"acceptance\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
  }
  return pass ? 0 : 1;
}
