// E3 + A3 — paper Figs. 7, 9, 10: the concession stand.
//
// Reproduction: 3 cups, 3 timesteps per glass.
//   parallel mode                       →  3 timesteps  (Fig. 9)
//   sequential mode, ideal              →  9 timesteps  (footnote 5)
//   sequential mode, browser interference → 12 timesteps (Fig. 10)
//
// Ablation A3: the interference model (period/offset of stolen frames)
// swept to show how the observed sequential time inflates while the
// parallel run, finishing before the first theft, is untouched.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "scenarios/concession.hpp"

namespace {

namespace sc = psnap::scenarios;

void printReproduction() {
  std::printf("# E3 / Fig. 7-10 — concession stand timesteps\n");
  std::printf("#   mode                             measured  paper\n");
  auto parallel = sc::runConcession({.parallel = true});
  auto sequential = sc::runConcession({.parallel = false});
  auto observed = sc::runConcession(
      {.parallel = false, .interference = sc::paperInterference()});
  auto parObserved = sc::runConcession(
      {.parallel = true, .interference = sc::paperInterference()});
  std::printf("#   parallel (3 clones)              %8llu      3\n",
              (unsigned long long)parallel.pourTimesteps);
  std::printf("#   parallel + interference          %8llu      3\n",
              (unsigned long long)parObserved.pourTimesteps);
  std::printf("#   sequential, ideal                %8llu      9\n",
              (unsigned long long)sequential.pourTimesteps);
  std::printf("#   sequential + interference        %8llu     12\n",
              (unsigned long long)observed.pourTimesteps);

  std::printf("#\n#   cups sweep (pour = 3 frames):  cups  par  seq  speedup\n");
  for (size_t cups : {2u, 3u, 4u, 6u, 8u}) {
    auto p = sc::runConcession({.parallel = true, .cups = cups});
    auto s = sc::runConcession({.parallel = false, .cups = cups});
    std::printf("#                                  %4zu %4llu %4llu  %5.2fx\n",
                cups, (unsigned long long)p.pourTimesteps,
                (unsigned long long)s.pourTimesteps,
                double(s.pourTimesteps) / double(p.pourTimesteps));
  }

  std::printf(
      "#\n# A3: interference sweep, sequential 3x3 (ideal 9):\n"
      "#   period offset  observed\n");
  for (uint64_t period : {2u, 3u, 4u, 6u}) {
    for (uint64_t offset : {4u, 5u}) {
      auto r = sc::runConcession(
          {.parallel = false,
           .interference = psnap::sched::InterferenceModel{period, offset}});
      std::printf("#   %6llu %6llu  %8llu\n", (unsigned long long)period,
                  (unsigned long long)offset,
                  (unsigned long long)r.pourTimesteps);
    }
  }
  std::printf("\n");
}

void BM_ConcessionParallel(benchmark::State& state) {
  const auto cups = static_cast<size_t>(state.range(0));
  uint64_t timesteps = 0;
  for (auto _ : state) {
    auto r = sc::runConcession({.parallel = true, .cups = cups});
    timesteps = r.pourTimesteps;
    benchmark::DoNotOptimize(r);
  }
  state.counters["timesteps"] = double(timesteps);
}
BENCHMARK(BM_ConcessionParallel)->Arg(3)->Arg(8);

void BM_ConcessionSequential(benchmark::State& state) {
  const auto cups = static_cast<size_t>(state.range(0));
  uint64_t timesteps = 0;
  for (auto _ : state) {
    auto r = sc::runConcession({.parallel = false, .cups = cups});
    timesteps = r.pourTimesteps;
    benchmark::DoNotOptimize(r);
  }
  state.counters["timesteps"] = double(timesteps);
}
BENCHMARK(BM_ConcessionSequential)->Arg(3)->Arg(8);

void BM_ConcessionWithRendering(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sc::runConcession({.parallel = true, .captureFrames = true});
    benchmark::DoNotOptimize(r.frames);
  }
}
BENCHMARK(BM_ConcessionWithRendering);

}  // namespace

int main(int argc, char** argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
