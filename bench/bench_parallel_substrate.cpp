// Parallel-substrate benchmark: the perf trajectory for the pooled
// executor (task-pool PR). Three workloads, each emitted as a
// machine-readable row of BENCH_parallel.json:
//
//   * oplaunch/n=<k>   — ops/s for a complete Parallel::map round trip
//                        (construct, map, wait) on tiny inputs. This is
//                        pure per-operation overhead: thread spawn+join
//                        in the seed, pooled task submission now.
//   * mapthroughput    — items/s for one Parallel::map at n = 10'000.
//   * wordcount        — words/s for an end-to-end mapReduce word count
//                        (map, sharded shuffle, reduce) on a Zipf corpus.
//
// Every workload also runs against `LegacyParallel`, a faithful replica
// of the seed substrate (one std::thread per logical worker per op,
// serial structured-clone on the caller), so the seed-vs-new comparison
// regenerates on any checkout instead of relying on numbers measured
// once. Usage:
//
//   bench_parallel_substrate [--variant NAME] [--out FILE.json]
//
// `--variant` tags the rows (default "new"); the driver script runs the
// seed build with `--variant seed` to produce the baseline rows.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "blocks/value.hpp"
#include "data/corpus.hpp"
#include "mapreduce/engine.hpp"
#include "workers/parallel.hpp"

namespace {

using psnap::blocks::List;
using psnap::blocks::ListPtr;
using psnap::blocks::Value;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// -------------------------------------------------------------------------
// LegacyParallel: the seed's per-op execution model, kept as the baseline.
// Serial clone-in on the caller, then one freshly spawned std::thread per
// logical worker, dynamic self-scheduling over an atomic cursor, joined
// at wait(). Counter traffic is the seed's per-item fetch_add.
// -------------------------------------------------------------------------
class LegacyParallel {
 public:
  LegacyParallel(const std::vector<Value>& data, size_t workers)
      : workers_(workers) {
    data_.reserve(data.size());
    for (const Value& v : data) data_.push_back(v.structuredClone());
    counters_ = std::vector<std::atomic<uint64_t>>(workers_);
  }

  void map(const std::function<Value(const Value&)>& fn) {
    const size_t n = data_.size();
    threads_.reserve(workers_);
    for (size_t w = 0; w < workers_; ++w) {
      threads_.emplace_back([this, &fn, n, w] {
        while (true) {
          size_t i = cursor_.fetch_add(1);
          if (i >= n) break;
          data_[i] = fn(data_[i]);
          counters_[w].fetch_add(1);
        }
      });
    }
  }

  const std::vector<Value>& wait() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    return data_;
  }

 private:
  std::vector<Value> data_;
  size_t workers_;
  std::vector<std::thread> threads_;
  std::vector<std::atomic<uint64_t>> counters_;
  std::atomic<size_t> cursor_{0};
};

struct Row {
  std::string bench;
  double rate = 0;       // primary metric, unit-tagged below
  std::string unit;
  double seconds = 0;    // total measured wall time
  uint64_t reps = 0;
};

std::vector<Value> numbers(size_t n) {
  std::vector<Value> out;
  out.reserve(n);
  for (size_t i = 1; i <= n; ++i) out.emplace_back(double(i));
  return out;
}

Value doubleIt(const Value& v) { return Value(v.asNumber() * 2); }

// Run `body` repeatedly until ~minSeconds elapsed; returns reps and time.
template <typename F>
Row timed(const std::string& name, const std::string& unit, double perRep,
          double minSeconds, F body) {
  // Warm-up: one rep outside the clock (first op pays pool creation).
  body();
  uint64_t reps = 0;
  auto start = Clock::now();
  double elapsed = 0;
  do {
    body();
    ++reps;
    elapsed = secondsSince(start);
  } while (elapsed < minSeconds);
  Row row;
  row.bench = name;
  row.unit = unit;
  row.seconds = elapsed;
  row.reps = reps;
  row.rate = perRep * double(reps) / elapsed;
  return row;
}

Row benchOpLaunch(size_t n, bool legacy, double minSeconds) {
  const std::vector<Value> input = numbers(n);
  const std::string name =
      std::string(legacy ? "legacy_" : "") + "oplaunch/n=" + std::to_string(n);
  return timed(name, "ops/s", 1.0, minSeconds, [&] {
    if (legacy) {
      LegacyParallel p(input, 4);
      p.map(doubleIt);
      p.wait();
    } else {
      psnap::workers::Parallel p(input, {.maxWorkers = 4});
      p.map(doubleIt);
      p.wait();
    }
  });
}

Row benchMapThroughput(size_t n, bool legacy, double minSeconds) {
  const std::vector<Value> input = numbers(n);
  const std::string name = std::string(legacy ? "legacy_" : "") +
                           "mapthroughput/n=" + std::to_string(n);
  return timed(name, "items/s", double(n), minSeconds, [&] {
    if (legacy) {
      LegacyParallel p(input, 4);
      p.map(doubleIt);
      p.wait();
    } else {
      psnap::workers::Parallel p(input, {.maxWorkers = 4});
      p.map(doubleIt);
      p.wait();
    }
  });
}

Row benchWordCount(size_t words, double minSeconds) {
  auto list = List::make();
  for (const std::string& w : psnap::data::tokenize(
           psnap::data::generateText(words, 200, /*seed=*/7))) {
    list->add(Value(w));
  }
  psnap::mr::MapFn one = [](const Value&) { return Value(1); };
  psnap::mr::ReduceFn count = [](const ListPtr& values) {
    return Value(values->length());
  };
  return timed("wordcount/n=" + std::to_string(words), "words/s",
               double(words), minSeconds, [&] {
                 auto result =
                     psnap::mr::run(list, one, count, {.workers = 4});
                 if (result->empty()) std::abort();  // keep it honest
               });
}

void writeJson(const std::string& path, const std::string& variant,
               const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_parallel_substrate\",\n");
  std::fprintf(f, "  \"variant\": \"%s\",\n  \"rows\": [\n",
               variant.c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"rate\": %.1f, \"unit\": \"%s\", "
                 "\"reps\": %llu, \"seconds\": %.3f}%s\n",
                 r.bench.c_str(), r.rate, r.unit.c_str(),
                 static_cast<unsigned long long>(r.reps), r.seconds,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string variant = "new";
  std::string out = "BENCH_parallel.json";
  double minSeconds = 0.4;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--variant") && i + 1 < argc) {
      variant = argv[++i];
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out = argv[++i];
    } else if (!std::strcmp(argv[i], "--quick")) {
      minSeconds = 0.1;
    }
  }

  std::vector<Row> rows;
  for (size_t n : {1, 4, 16}) {
    rows.push_back(benchOpLaunch(n, /*legacy=*/false, minSeconds));
    rows.push_back(benchOpLaunch(n, /*legacy=*/true, minSeconds));
  }
  rows.push_back(benchMapThroughput(10'000, /*legacy=*/false, minSeconds));
  rows.push_back(benchMapThroughput(10'000, /*legacy=*/true, minSeconds));
  rows.push_back(benchWordCount(20'000, minSeconds));

  std::printf("%-28s %14s %10s %8s\n", "bench", "rate", "unit", "reps");
  for (const Row& r : rows) {
    std::printf("%-28s %14.1f %10s %8llu\n", r.bench.c_str(), r.rate,
                r.unit.c_str(), static_cast<unsigned long long>(r.reps));
  }
  writeJson(out, variant, rows);
  std::printf("wrote %s (variant=%s)\n", out.c_str(), variant.c_str());
  return 0;
}
