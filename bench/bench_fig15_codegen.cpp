// E6/E7 — paper Figs. 15-16, Listings 3-5: the code-mapping feature.
//
// Reproduction: the key Fig. 15 mappings rendered from real blocks, the
// Listing 5 program regenerated (and — in the table — compiled and run,
// matching the interpreter's 30/70/80), and the hello listings.
// Benchmark: translator throughput per target language, and the ablation
// A4 comparison of output sizes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "blocks/builder.hpp"
#include "codegen/programs.hpp"
#include "codegen/toolchain.hpp"
#include "support/strings.hpp"

namespace {

using namespace psnap;
using namespace psnap::build;
using psnap::strings::replaceAll;
using psnap::strings::trim;

blocks::ScriptPtr demoScript() {
  return scriptOf({
      declareVars({"len", "a", "b", "i"}),
      setVar("len", lengthOf(getVar("a"))),
      repeat(getVar("len"),
             scriptOf({addToList(
                 product(itemOf(getVar("i"), getVar("a")), 10),
                 getVar("b"))})),
      doIf(greaterThan(getVar("len"), 0), scriptOf({say("done")})),
  });
}

void printReproduction() {
  std::printf("# E6 / Fig. 15-16 + Listing 5 — code mapping\n");
  codegen::Translator c(codegen::CodeMapping::c());
  std::printf("#   Fig. 15-style mappings rendered from blocks (C):\n");
  std::printf("#     set:    %s\n",
              c.mappedCode(*setVar("len", lengthOf(getVar("a")))).c_str());
  std::printf("#     repeat: %s\n",
              replaceAll(
                  c.mappedCode(*repeat(getVar("len"),
                                       scriptOf({addToList(
                                           product(itemOf(getVar("i"),
                                                          getVar("a")),
                                                   10),
                                           getVar("b"))}))),
                  "\n", " ")
                  .c_str());

  auto sources = codegen::mapProgramC({3, 7, 8}, 10);
  std::printf("#\n#   Listing 5 regenerated (%zu bytes of C).\n",
              sources.at("main.c").size());
  if (codegen::Toolchain::compilerAvailable()) {
    codegen::Toolchain tc;
    auto run = tc.compileAndRun(sources, "map_c", false);
    std::printf("#   compiled & ran -> %s   (interpreter: 30 70 80)\n",
                replaceAll(trim(run.output), "\n", " ")
                    .c_str());
    auto hello = tc.compileAndRun(codegen::helloOpenMP(), "hello_omp", true,
                                  "", "OMP_NUM_THREADS=4");
    std::printf("#   Listing 4 OpenMP hello ran with %zu thread greetings\n",
                [&] {
                  size_t count = 0, pos = 0;
                  while ((pos = hello.output.find("hello(", pos)) !=
                         std::string::npos) {
                    ++count;
                    ++pos;
                  }
                  return count;
                }());
  }

  std::printf("#\n# A4: same script, four targets (output bytes):\n");
  for (const char* language : {"C", "OpenMP C", "JavaScript", "Python"}) {
    codegen::Translator t(codegen::CodeMapping::byName(language));
    std::printf("#   %-11s %4zu bytes\n", language,
                t.mappedCode(*demoScript()).size());
  }
  std::printf("\n");
}

void BM_TranslateScript(benchmark::State& state) {
  const char* languages[] = {"C", "OpenMP C", "JavaScript", "Python"};
  const char* language = languages[state.range(0)];
  codegen::Translator t(codegen::CodeMapping::byName(language));
  auto script = demoScript();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.mappedCode(*script));
  }
  state.SetLabel(language);
}
BENCHMARK(BM_TranslateScript)->DenseRange(0, 3);

void BM_TranslateDeeplyNestedExpression(benchmark::State& state) {
  // Nesting depth scaling of the placeholder substitution.
  const auto depth = state.range(0);
  blocks::BlockPtr expr = sum(1, 2);
  for (int64_t i = 0; i < depth; ++i) expr = sum(expr, 1);
  codegen::Translator t(codegen::CodeMapping::c());
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.mappedCode(*expr));
  }
}
BENCHMARK(BM_TranslateDeeplyNestedExpression)->Arg(8)->Arg(64)->Arg(256);

void BM_EmitMapReduceProgram(benchmark::State& state) {
  auto mapRing = blocks::Ring::reporter(
      blocks::Block::make("reportIdentity", {blocks::Input::empty()}));
  auto reduceRing = blocks::Ring::reporter(blocks::Block::make(
      "reportListLength", {blocks::Input::empty()}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codegen::mapReduceOpenMP(mapRing, reduceRing));
  }
}
BENCHMARK(BM_EmitMapReduceProgram);

}  // namespace

int main(int argc, char** argv) {
  printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
