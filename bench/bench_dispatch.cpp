// Dispatch microbenchmark: how fast can one Process step blocks, and how
// fast can the worker-side pure evaluator walk a ring body?
//
// Every interpreter step used to pay two string-hash lookups (registry
// spec + primitive handler) and the pure evaluator dispatched via chained
// string comparisons. The interned-opcode layer (blocks/opcodes.hpp)
// replaces both with dense integer indexing; this bench measures the
// difference directly:
//
//   * BM_Vm*  /id      — Process::runSlice with the default id dispatch
//   * BM_Vm*  /string  — the same Process in the retained string-dispatch
//                        reference mode (DispatchMode::ByString)
//   * BM_PureEval*     — compileRing'd bodies through the pure evaluator
//
// Counters are blocks/sec (items_per_second), the number the EXPERIMENTS
// table records. The workloads are warped tight loops so the scheduler
// never interleaves: pure dispatch cost, nothing else.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "core/pure_eval.hpp"
#include "vm/process.hpp"

namespace {

using namespace psnap;
using namespace psnap::build;
using blocks::Environment;
using blocks::Value;

const vm::PrimitiveTable& prims() {
  static const vm::PrimitiveTable table = core::fullPrimitiveTable();
  return table;
}

// -------------------------------------------------------------------------
// VM dispatch: a warped arithmetic loop.
//
//   warp { repeat N { set acc to ((acc + 1) * 1) } }
//
// Each iteration dispatches doRepeat, doSetVar, reportProduct, reportSum,
// reportGetVar = 5 block dispatches (plus literal slot evaluations).
// -------------------------------------------------------------------------

constexpr int64_t kBlocksPerArithIteration = 5;

blocks::ScriptPtr arithLoop(int64_t n) {
  return scriptOf({warp(scriptOf({repeat(
      double(n),
      scriptOf({setVar("acc", product(sum(getVar("acc"), 1), 1))}))}))});
}

// repeat N { add (item ((k mod 8) + 1) of lst) to out }  — list blocks.
constexpr int64_t kBlocksPerListIteration = 8;

blocks::ScriptPtr listLoop(int64_t n) {
  return scriptOf({warp(scriptOf({repeat(
      double(n),
      scriptOf({
          changeVar("k", 1),
          addToList(itemOf(sum(modulus(getVar("k"), 8), 1), getVar("lst")),
                    getVar("out")),
      }))}))});
}

blocks::EnvPtr freshEnv(bool withLists) {
  blocks::EnvPtr env = Environment::make();
  env->declare("acc", Value(0.0));
  if (withLists) {
    env->declare("k", Value(0.0));
    auto lst = blocks::List::make();
    for (int i = 1; i <= 8; ++i) lst->add(Value(double(i)));
    env->declare("lst", Value(lst));
    env->declare("out", Value(blocks::List::make()));
  }
  return env;
}

void runVmLoop(benchmark::State& state, const blocks::ScriptPtr& script,
               bool withLists, int64_t blocksPerIteration,
               vm::DispatchMode mode) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    vm::NullHost host;
    vm::Process proc(&blocks::BlockRegistry::standard(), &prims(), &host);
    proc.setDispatchMode(mode);
    proc.startScript(script, freshEnv(withLists));
    proc.runToCompletion();
    benchmark::DoNotOptimize(proc.state());
  }
  state.SetItemsProcessed(state.iterations() * n * blocksPerIteration);
}

void BM_VmArithById(benchmark::State& state) {
  runVmLoop(state, arithLoop(state.range(0)), false,
            kBlocksPerArithIteration, vm::DispatchMode::ById);
}
BENCHMARK(BM_VmArithById)->Arg(10000)->Arg(100000);

void BM_VmArithByString(benchmark::State& state) {
  runVmLoop(state, arithLoop(state.range(0)), false,
            kBlocksPerArithIteration, vm::DispatchMode::ByString);
}
BENCHMARK(BM_VmArithByString)->Arg(10000)->Arg(100000);

void BM_VmListById(benchmark::State& state) {
  runVmLoop(state, listLoop(state.range(0)), true, kBlocksPerListIteration,
            vm::DispatchMode::ById);
}
BENCHMARK(BM_VmListById)->Arg(10000);

void BM_VmListByString(benchmark::State& state) {
  runVmLoop(state, listLoop(state.range(0)), true, kBlocksPerListIteration,
            vm::DispatchMode::ByString);
}
BENCHMARK(BM_VmListByString)->Arg(10000);

// -------------------------------------------------------------------------
// Pure evaluator: the worker-thread half of parallelMap. One compiled
// ring applied per item, as Parallel.js would per list element.
// -------------------------------------------------------------------------

// ((x * 2) + (x - 1)) * (x + 3) — 9 block nodes per application.
constexpr int64_t kNodesPerPureArithCall = 9;

void BM_PureEvalArith(benchmark::State& state) {
  blocks::RingPtr fn = blocks::Ring::reporter(
      product(sum(product(empty(), 2), difference(empty(), 1)),
              sum(empty(), 3)));
  core::PureFn compiled = core::compileRing(fn);
  double x = 0;
  for (auto _ : state) {
    Value v = compiled({Value(x)});
    benchmark::DoNotOptimize(v);
    x += 1;
  }
  state.SetItemsProcessed(state.iterations() * kNodesPerPureArithCall);
}
BENCHMARK(BM_PureEvalArith);

// map ((x) * 2) over (numbers 1..64) then combine with + : one call walks
// 64 ring applications plus the list plumbing (~200 nodes).
constexpr int64_t kNodesPerPureListCall =
    4 + 64 * 3 + 63 * 3;  // outer blocks + map bodies + combine bodies

void BM_PureEvalList(benchmark::State& state) {
  blocks::RingPtr fn = blocks::Ring::reporter(
      combineUsing(mapOver(ring(product(empty(), 2)),
                           numbersFromTo(1, sum(empty(), 63))),
                   ring(sum(empty(), empty()))));
  core::PureFn compiled = core::compileRing(fn);
  for (auto _ : state) {
    Value v = compiled({Value(1.0)});
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * kNodesPerPureListCall);
}
BENCHMARK(BM_PureEvalList);

}  // namespace

int main(int argc, char** argv) {
  std::printf("# dispatch microbenchmark — blocks/sec through Process and "
              "pure_eval\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
