// Persistence benchmark: the perf trajectory for the zero-copy snapshot
// layer (src/persist). Workloads, each emitted as a machine-readable row
// of BENCH_persist.json:
//
//   * cold_open/generate_parse/rows=<n> — the seed's path to a first
//       query: generate the climate dataset in memory (generateClimate +
//       toFahrenheitList, O(rows)) and run a mapReduce mean over the
//       first-window slice. Time-to-first-result pays the whole
//       materialization tax.
//   * cold_open/snapshot_mmap/rows=<n>  — the snapshot path to the SAME
//       query: mmap the dataset (loadList, O(1)) and run the identical
//       mapReduce over the identical window. The `speedup` field on this
//       row is generate-path seconds / snapshot-path seconds, and
//       `identical` records that both paths produced byte-identical
//       query output (and bit-identical sampled rows).
//   * open_only/rows=<n>                — loadList alone: the constant
//       cost of mapping, independent of row count.
//   * page_touch/rows=<n>/touch=<k>     — fresh open + sum of the first
//       k rows, after advising the kernel to drop the file's page cache:
//       measured time scales with k (pages touched), not with n.
//   * serve/shared_mapping/tenants=<t>  — one published dataset opened
//       by t tenants through SessionServer::openDataset: resident-memory
//       delta per tenant view vs the counterfactual deep copy
//       (rows * sizeof(Value) each).
//
// Usage:
//   bench_persist [--rows N] [--out FILE.json] [--quick|--smoke]
//
// The acceptance run uses >= 100M rows (the default); `--quick` drops to
// ~10M and `--smoke` to ~100k so scripts/check.sh can exercise every
// code path cheaply.
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "blocks/value.hpp"
#include "data/climate.hpp"
#include "mapreduce/engine.hpp"
#include "persist/snapshot.hpp"
#include "serve/session_server.hpp"

namespace {

using psnap::blocks::List;
using psnap::blocks::ListPtr;
using psnap::blocks::Value;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Row {
  std::string bench;
  double seconds = 0;
  double rate = 0;
  std::string unit;
  double speedup = -1;    // generate-path / snapshot-path, where measured
  double extraValue = -1; // bench-specific (see extraKey)
  std::string extraKey;
  int identical = -1;     // 1 = query outputs byte-identical; -1 = n/a
};

/// Resident set size in bytes, from /proc/self/status.
uint64_t residentBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::sscanf(line, "VmRSS: %" SCNu64 " kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

/// Ask the kernel to drop this file's page-cache pages so the next open
/// measures genuine page faults, not warm-cache reads.
void dropPageCache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

/// The "first query": mapReduce mean Celsius over the first `window`
/// rows of a Fahrenheit dataset. Both cold-open paths run exactly this.
ListPtr windowMeanCelsius(const ListPtr& dataset, size_t window) {
  auto slice = List::make();
  slice->reserve(window);
  size_t taken = 0;
  for (const Value& v : dataset->items()) {
    if (taken++ == window) break;
    slice->add(v);
  }
  psnap::mr::MapFn mapFn = [](const Value& v) {
    return Value(List::make(
        {Value("meanC"), Value((v.asNumber() - 32.0) * 5.0 / 9.0)}));
  };
  psnap::mr::ReduceFn reduceFn = [](const ListPtr& values) {
    double sum = 0;
    for (const Value& v : values->items()) sum += v.asNumber();
    return Value(sum / double(values->length()));
  };
  return psnap::mr::run(slice, mapFn, reduceFn);
}

/// Bit-identical row sampling across the full range (cheap at any size).
bool rowsBitIdentical(const ListPtr& a, const ListPtr& b) {
  if (a->length() != b->length()) return false;
  const size_t n = a->length();
  if (n == 0) return true;
  const size_t stride = n < 65536 ? 1 : n / 65536;
  for (size_t i = 0; i < n; i += stride) {
    const double x = a->item(i + 1).asNumber();
    const double y = b->item(i + 1).asNumber();
    if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
  }
  const double x = a->item(n).asNumber();
  const double y = b->item(n).asNumber();
  return std::memcmp(&x, &y, sizeof(double)) == 0;
}

void writeJson(const std::string& path, uint64_t rows,
               const std::vector<Row>& out) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_persist\",\n");
  std::fprintf(f, "  \"rows\": %" PRIu64 ",\n", rows);
  std::fprintf(f, "  \"value_bytes\": %zu,\n", sizeof(Value));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < out.size(); ++i) {
    const Row& r = out[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seconds\": %.4f, "
                 "\"rate\": %.1f, \"unit\": \"%s\"",
                 r.bench.c_str(), r.seconds, r.rate, r.unit.c_str());
    if (r.speedup >= 0) std::fprintf(f, ", \"speedup\": %.2f", r.speedup);
    if (r.identical >= 0) {
      std::fprintf(f, ", \"identical\": %s", r.identical ? "true" : "false");
    }
    if (!r.extraKey.empty()) {
      std::fprintf(f, ", \"%s\": %.1f", r.extraKey.c_str(), r.extraValue);
    }
    std::fprintf(f, "}%s\n", i + 1 < out.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t targetRows = 100'000'000;
  std::string out = "BENCH_persist.json";
  size_t tenants = 64;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--rows") && i + 1 < argc) {
      targetRows = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out = argv[++i];
    } else if (!std::strcmp(argv[i], "--quick")) {
      targetRows = 10'000'000;
    } else if (!std::strcmp(argv[i], "--smoke")) {
      targetRows = 100'000;
      tenants = 8;
    }
  }

  // records = stations * years * 12; pick stations to reach targetRows.
  psnap::data::ClimateConfig config;
  config.firstYear = 1950;
  config.lastYear = 2009;
  const uint64_t perStation = uint64_t(config.lastYear - config.firstYear + 1) * 12;
  config.stations = size_t((targetRows + perStation - 1) / perStation);
  const uint64_t rows = psnap::data::climateRecordCount(config);
  // The first query reads a fixed-size window (a station's era, a recent
  // slice): its cost is O(window), not O(rows) — which is the whole
  // point of mapping instead of materializing.
  const size_t window = size_t(std::min<uint64_t>(rows, 100'000));

  const auto dir = std::filesystem::temp_directory_path() / "psnap-bench-persist";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "climate_f.psnap").string();

  std::printf("# bench_persist: rows=%" PRIu64 " (%zu stations), window=%zu, "
              "file=%s\n", rows, config.stations, window, path.c_str());

  std::vector<Row> results;

  // -- Write the snapshot (streamed, O(1) memory), reported for context.
  {
    auto start = Clock::now();
    const uint64_t written = psnap::data::writeFahrenheitSnapshot(path, config);
    const double s = secondsSince(start);
    if (written != rows) {
      std::fprintf(stderr, "row count mismatch: %" PRIu64 "\n", written);
      return 1;
    }
    Row r;
    r.bench = "snapshot_write/rows=" + std::to_string(rows);
    r.seconds = s;
    r.rate = double(rows) / s;
    r.unit = "rows/s";
    results.push_back(r);
    std::printf("# wrote %.2f GB in %.1fs\n",
                double(std::filesystem::file_size(path)) / (1 << 30), s);
  }

  // -- Cold open, generate/parse path: materialize everything, then query.
  ListPtr generated;
  ListPtr generateQuery;
  double generateSeconds = 0;
  {
    auto start = Clock::now();
    generated = psnap::data::toFahrenheitList(
        psnap::data::generateClimate(config));
    generateQuery = windowMeanCelsius(generated, window);
    generateSeconds = secondsSince(start);
    Row r;
    r.bench = "cold_open/generate_parse/rows=" + std::to_string(rows);
    r.seconds = generateSeconds;
    r.rate = double(rows) / generateSeconds;
    r.unit = "rows/s";
    results.push_back(r);
  }

  // -- Cold open, snapshot path: mmap + the identical query.
  {
    dropPageCache(path);
    auto start = Clock::now();
    ListPtr mapped = psnap::persist::loadList(path);
    ListPtr snapshotQuery = windowMeanCelsius(mapped, window);
    const double s = secondsSince(start);
    const bool identical =
        snapshotQuery->display() == generateQuery->display() &&
        rowsBitIdentical(mapped, generated);
    Row r;
    r.bench = "cold_open/snapshot_mmap/rows=" + std::to_string(rows);
    r.seconds = s;
    r.rate = double(rows) / s;
    r.unit = "rows/s";
    r.speedup = generateSeconds / s;
    r.identical = identical ? 1 : 0;
    results.push_back(r);
    std::printf("# cold open: generate %.2fs vs snapshot %.3fs — %.1fx, "
                "query output %s\n", generateSeconds, s, r.speedup,
                identical ? "IDENTICAL" : "MISMATCH");
    if (!identical) return 1;
  }
  generated.reset();
  generateQuery.reset();

  // -- Open alone: the constant mapping cost.
  {
    dropPageCache(path);
    auto start = Clock::now();
    ListPtr mapped = psnap::persist::loadList(path);
    const double s = secondsSince(start);
    Row r;
    r.bench = "open_only/rows=" + std::to_string(rows);
    r.seconds = s;
    r.rate = double(mapped->length());
    r.unit = "rows_mapped";
    results.push_back(r);
  }

  // -- Page-touch scaling: time grows with rows touched, not rows stored.
  for (uint64_t touch = 10'000; touch <= rows; touch *= 10) {
    dropPageCache(path);
    auto start = Clock::now();
    ListPtr mapped = psnap::persist::loadList(path);
    double sum = 0;
    size_t taken = 0;
    for (const Value& v : mapped->items()) {
      if (taken++ == size_t(touch)) break;
      sum += v.asNumber();
    }
    const double s = secondsSince(start);
    Row r;
    r.bench = "page_touch/rows=" + std::to_string(rows) +
              "/touch=" + std::to_string(touch);
    r.seconds = s;
    r.rate = double(touch) / s;
    r.unit = "rows/s";
    r.extraKey = "pages";
    r.extraValue = double(touch * sizeof(Value) + 4095) / 4096.0;
    results.push_back(r);
    if (sum == -1) return 1;  // keep the scan observable
  }

  // -- Serve layer: one mapping, many tenant views.
  {
    psnap::serve::SessionServer server;
    const uint64_t rssBefore = residentBytes();
    auto start = Clock::now();
    server.publishDataset("climate", path);
    std::vector<ListPtr> views;
    views.reserve(tenants);
    for (size_t t = 0; t < tenants; ++t) {
      views.push_back(server.openDataset("climate"));
    }
    const double s = secondsSince(start);
    // Touch each view's head so the per-tenant cost is real, not lazy.
    double sum = 0;
    for (const ListPtr& view : views) sum += view->item(1).asNumber();
    const uint64_t rssAfter = residentBytes();
    Row r;
    r.bench = "serve/shared_mapping/tenants=" + std::to_string(tenants);
    r.seconds = s;
    r.rate = rssAfter > rssBefore
                 ? double(rssAfter - rssBefore) / double(tenants)
                 : 0;
    r.unit = "rss_bytes/tenant";
    r.extraKey = "deep_copy_bytes_per_tenant";
    r.extraValue = double(rows) * double(sizeof(Value));
    results.push_back(r);
    std::printf("# serve: %zu tenants share one mapping — %.0f resident "
                "bytes/tenant (deep copy would be %.0f)\n",
                tenants, r.rate, r.extraValue);
    if (sum == -1) return 1;
  }

  std::printf("%-44s %10s %14s %14s\n", "bench", "seconds", "rate", "unit");
  for (const Row& r : results) {
    std::printf("%-44s %10.3f %14.1f %14s", r.bench.c_str(), r.seconds,
                r.rate, r.unit.c_str());
    if (r.speedup >= 0) std::printf("  speedup=%.1fx", r.speedup);
    std::printf("\n");
  }
  writeJson(out, rows, results);
  std::printf("wrote %s\n", out.c_str());
  std::filesystem::remove_all(dir);
  return 0;
}
