// Property suite for zero-copy persistence: randomly generated flat and
// nested lists (and whole projects) survive snapshot→load with deep
// equality and identical display; mmap-backed lists behave exactly like
// their in-memory originals under mutation, structured clone, and
// worker transfer.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocks/value.hpp"
#include "persist/snapshot.hpp"
#include "project/snapshot.hpp"
#include "support/rng.hpp"
#include "tests/properties/generators.hpp"
#include "workers/parallel.hpp"

namespace psnap::persist {
namespace {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;

std::filesystem::path makeDir(const std::string& tag) {
  auto dir = std::filesystem::temp_directory_path() / ("psnap-pprop-" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Value randomScalar(Rng& rng) {
  switch (rng.below(6)) {
    case 0:
      return Value();
    case 1:
      return Value(rng.uniform(-1e6, 1e6));
    case 2:
      return Value(rng.below(2) == 0);
    case 3:  // inline text
      return Value("w" + std::to_string(rng.below(1000)));
    case 4: {  // long text (blob-backed on disk)
      std::string text(16 + rng.below(120), '?');
      for (char& ch : text) ch = char('a' + rng.below(26));
      return Value(text);
    }
    default:
      return Value(double(rng.between(-100, 100)));
  }
}

ListPtr randomFlatList(Rng& rng, size_t maxLen) {
  auto list = List::make();
  const size_t n = rng.below(maxLen + 1);
  for (size_t i = 0; i < n; ++i) list->add(randomScalar(rng));
  return list;
}

Value randomTree(Rng& rng, int depth) {
  if (depth <= 0 || rng.below(3) != 0) return randomScalar(rng);
  auto list = List::make();
  const size_t n = rng.below(6);
  for (size_t i = 0; i < n; ++i) list->add(randomTree(rng, depth - 1));
  return Value(list);
}

class PersistProperty : public ::testing::TestWithParam<int> {};

TEST_P(PersistProperty, FlatListsRoundTripExactly) {
  Rng rng{uint64_t(GetParam()) * 101};
  const auto dir = makeDir("flat-" + std::to_string(GetParam()));
  for (int trial = 0; trial < 8; ++trial) {
    const std::string path =
        (dir / ("t" + std::to_string(trial) + ".psnap")).string();
    ListPtr original = randomFlatList(rng, 200);
    saveList(path, original);
    ListPtr loaded = loadList(path);
    if (original->length() > 0) EXPECT_TRUE(loaded->mappedBuffer());
    EXPECT_TRUE(loaded->deepEquals(*original))
        << "seed=" << GetParam() << " trial=" << trial;
    EXPECT_EQ(loaded->display(), original->display());
  }
  std::filesystem::remove_all(dir);
}

TEST_P(PersistProperty, NestedTreesRoundTripExactly) {
  Rng rng{uint64_t(GetParam()) * 577};
  const auto dir = makeDir("nest-" + std::to_string(GetParam()));
  for (int trial = 0; trial < 8; ++trial) {
    const std::string path =
        (dir / ("t" + std::to_string(trial) + ".psnap")).string();
    const Value original = randomTree(rng, 4);
    saveValue(path, original);
    const Value loaded = loadValue(path);
    EXPECT_EQ(loaded.display(), original.display())
        << "seed=" << GetParam() << " trial=" << trial;
    if (original.isList()) {
      EXPECT_TRUE(loaded.asList()->deepEquals(*original.asList()));
    }
  }
  std::filesystem::remove_all(dir);
}

TEST_P(PersistProperty, MappedListsMutateAndCloneLikeOriginals) {
  Rng rng{uint64_t(GetParam()) * 3331};
  const auto dir = makeDir("mut-" + std::to_string(GetParam()));
  const std::string path = (dir / "m.psnap").string();
  for (int trial = 0; trial < 6; ++trial) {
    ListPtr original = randomFlatList(rng, 50);
    if (original->empty()) original->add(Value(1));
    saveList(path, original);
    ListPtr loaded = loadList(path);

    // structuredClone of the mapped list is byte-identical in behaviour.
    const Value clone = Value(loaded).structuredClone();
    EXPECT_EQ(clone.display(), Value(original).display());

    // The same random mutation sequence applied to the mapped list and
    // the in-memory original converges to the same state — the detach
    // gate's copy-out is semantically invisible.
    for (int step = 0; step < 10; ++step) {
      const Value v = randomScalar(rng);
      switch (rng.below(3)) {
        case 0:
          loaded->add(v);
          original->add(v);
          break;
        case 1: {
          const size_t at = 1 + size_t(rng.below(loaded->length()));
          loaded->replaceAt(at, v);
          original->replaceAt(at, v);
          break;
        }
        default: {
          const size_t at = 1 + size_t(rng.below(loaded->length()));
          loaded->insertAt(at, v);
          original->insertAt(at, v);
        }
      }
    }
    EXPECT_TRUE(loaded->deepEquals(*original));
    EXPECT_FALSE(loaded->mappedBuffer());  // first mutation detached
    // The clone (and the file) kept the pre-mutation bytes.
    EXPECT_EQ(clone.display(), Value(loadList(path)).display());
  }
  std::filesystem::remove_all(dir);
}

TEST_P(PersistProperty, MappedListsTransferAcrossWorkers) {
  Rng rng{uint64_t(GetParam()) * 7919};
  const auto dir = makeDir("xfer-" + std::to_string(GetParam()));
  const std::string path = (dir / "x.psnap").string();
  auto original = List::make();
  const size_t n = 64 + rng.below(64);
  for (size_t i = 0; i < n; ++i) original->add(Value(rng.uniform(-50, 50)));
  saveList(path, original);
  ListPtr loaded = loadList(path);
  ASSERT_TRUE(loaded->mappedBuffer());

  auto square = [](const Value& v) { return Value(v.asNumber() * v.asNumber()); };
  workers::Parallel fromMapped(loaded, {.maxWorkers = 4});
  fromMapped.map(square);
  workers::Parallel fromMemory(original, {.maxWorkers = 4});
  fromMemory.map(square);

  const std::vector<Value>& a = fromMapped.data();
  const std::vector<Value>& b = fromMemory.data();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].asNumber(), b[i].asNumber());
  }
  // The worker pipeline reads the mapped buffer in place.
  EXPECT_TRUE(loaded->mappedBuffer());
  std::filesystem::remove_all(dir);
}

TEST_P(PersistProperty, ProjectsRoundTripExactly) {
  Rng rng{uint64_t(GetParam()) * 271};
  const auto dir = makeDir("proj-" + std::to_string(GetParam()));
  const std::string path = (dir / "p.psnap").string();
  for (int trial = 0; trial < 4; ++trial) {
    project::Project original;
    original.name = "prop-" + std::to_string(trial);
    const size_t globals = rng.below(4);
    for (size_t g = 0; g < globals; ++g) {
      original.globals.push_back(
          {"g" + std::to_string(g), randomTree(rng, 3)});
    }
    const size_t sprites = rng.below(3);
    for (size_t s = 0; s < sprites; ++s) {
      project::SpriteDef sprite;
      sprite.name = "sprite" + std::to_string(s);
      sprite.x = rng.uniform(-100, 100);
      const size_t vars = rng.below(3);
      for (size_t v = 0; v < vars; ++v) {
        sprite.variables.push_back(
            {"v" + std::to_string(v), randomTree(rng, 2)});
      }
      sprite.scripts.push_back(testgen::randomScript(rng, 4));
      original.sprites.push_back(std::move(sprite));
    }

    project::saveProjectSnapshot(path, original);
    project::Project loaded = project::loadProjectSnapshot(path);

    EXPECT_EQ(loaded.name, original.name);
    ASSERT_EQ(loaded.globals.size(), original.globals.size());
    for (size_t g = 0; g < loaded.globals.size(); ++g) {
      EXPECT_EQ(loaded.globals[g].first, original.globals[g].first);
      EXPECT_EQ(loaded.globals[g].second.display(),
                original.globals[g].second.display());
    }
    ASSERT_EQ(loaded.sprites.size(), original.sprites.size());
    for (size_t s = 0; s < loaded.sprites.size(); ++s) {
      EXPECT_EQ(loaded.sprites[s].name, original.sprites[s].name);
      ASSERT_EQ(loaded.sprites[s].variables.size(),
                original.sprites[s].variables.size());
      for (size_t v = 0; v < loaded.sprites[s].variables.size(); ++v) {
        EXPECT_EQ(loaded.sprites[s].variables[v].second.display(),
                  original.sprites[s].variables[v].second.display());
      }
      ASSERT_EQ(loaded.sprites[s].scripts.size(),
                original.sprites[s].scripts.size());
      for (size_t c = 0; c < loaded.sprites[s].scripts.size(); ++c) {
        EXPECT_EQ(loaded.sprites[s].scripts[c]->display(),
                  original.sprites[s].scripts[c]->display());
      }
    }
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace psnap::persist
