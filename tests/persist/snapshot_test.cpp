// Unit tests for the zero-copy persistence layer: round trips, mapped
// aliasing, COW preservation, writer atomicity, corrupt-file rejection,
// and the shared-open catalog.
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocks/block.hpp"
#include "blocks/value.hpp"
#include "persist/catalog.hpp"
#include "persist/file.hpp"
#include "persist/snapshot.hpp"
#include "support/error.hpp"

namespace psnap::persist {
namespace {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("psnap-persist-" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    clearSharedOpens();
  }
  void TearDown() override {
    clearSharedOpens();
    std::filesystem::remove_all(dir_);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(SnapshotTest, FlatNumbersRoundTripMapped) {
  auto list = List::make();
  for (int i = 0; i < 1000; ++i) list->add(Value(i * 0.5));
  saveList(path("n.psnap"), list);

  ListPtr loaded = loadList(path("n.psnap"));
  ASSERT_TRUE(loaded->mappedBuffer());
  ASSERT_EQ(loaded->length(), 1000u);
  EXPECT_EQ(loaded->item(1).asNumber(), 0.0);
  EXPECT_EQ(loaded->item(1000).asNumber(), 999 * 0.5);
  EXPECT_TRUE(loaded->deepEquals(*list));
}

TEST_F(SnapshotTest, MixedScalarsRoundTrip) {
  const std::string longText(200, 'x');
  auto list = List::make({Value(), Value(2.5), Value(true), Value(false),
                          Value("short"), Value(longText),
                          Value("exactly15bytes!")});
  saveList(path("m.psnap"), list);

  ListPtr loaded = loadList(path("m.psnap"));
  ASSERT_TRUE(loaded->mappedBuffer());  // texts are not sublists
  ASSERT_EQ(loaded->length(), 7u);
  EXPECT_TRUE(loaded->item(1).isNothing());
  EXPECT_EQ(loaded->item(2).asNumber(), 2.5);
  EXPECT_TRUE(loaded->item(3).asBoolean());
  EXPECT_FALSE(loaded->item(4).asBoolean());
  EXPECT_EQ(loaded->item(5).asText(), "short");
  EXPECT_EQ(loaded->item(6).asText(), longText);
  EXPECT_EQ(loaded->item(7).asText(), "exactly15bytes!");
  EXPECT_TRUE(loaded->deepEquals(*list));
}

TEST_F(SnapshotTest, NestedSpinesMaterializeLeavesAlias) {
  auto leafA = List::make({Value(1), Value(2), Value(3)});
  auto leafB = List::make({Value("deep"), Value(std::string(100, 'y'))});
  auto mid = List::make({Value(leafB), Value(42)});
  auto root = List::make({Value(leafA), Value(mid), Value("tail")});
  saveList(path("nest.psnap"), root);

  ListPtr loaded = loadList(path("nest.psnap"));
  EXPECT_FALSE(loaded->mappedBuffer());  // spine: owned
  EXPECT_TRUE(loaded->item(1).asList()->mappedBuffer());   // leafA
  EXPECT_FALSE(loaded->item(2).asList()->mappedBuffer());  // mid is a spine
  EXPECT_TRUE(
      loaded->item(2).asList()->item(1).asList()->mappedBuffer());  // leafB
  EXPECT_TRUE(loaded->deepEquals(*root));
}

TEST_F(SnapshotTest, SharedSublistsKeepIdentity) {
  auto shared = List::make({Value(7)});
  auto root = List::make({Value(shared), Value(shared)});
  saveList(path("shared.psnap"), root);

  ListPtr loaded = loadList(path("shared.psnap"));
  EXPECT_EQ(loaded->item(1).asList().get(), loaded->item(2).asList().get());
}

TEST_F(SnapshotTest, ScalarRootsRoundTrip) {
  saveValue(path("num.psnap"), Value(6.25));
  EXPECT_EQ(loadValue(path("num.psnap")).asNumber(), 6.25);

  saveValue(path("text.psnap"), Value(std::string(500, 'z')));
  EXPECT_EQ(loadValue(path("text.psnap")).asText(), std::string(500, 'z'));

  saveValue(path("none.psnap"), Value());
  EXPECT_TRUE(loadValue(path("none.psnap")).isNothing());

  saveValue(path("flag.psnap"), Value(true));
  EXPECT_TRUE(loadValue(path("flag.psnap")).asBoolean());

  EXPECT_THROW(loadList(path("num.psnap")), SubstrateError);
}

TEST_F(SnapshotTest, CyclesAndRingsRejectedBeforeTouchingDisk) {
  auto cyclic = List::make({Value(1)});
  cyclic->add(Value(cyclic));
  EXPECT_THROW(saveList(path("cyc.psnap"), cyclic), PurityError);

  auto expr = blocks::Block::make("reportIdentity", {blocks::Input::empty()});
  auto withRing = List::make({Value(blocks::Ring::reporter(expr))});
  EXPECT_THROW(saveList(path("ring.psnap"), withRing), PurityError);

  // Purity failures precede file creation: nothing appears on disk.
  EXPECT_FALSE(std::filesystem::exists(path("cyc.psnap")));
  EXPECT_FALSE(std::filesystem::exists(path("ring.psnap")));
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

TEST_F(SnapshotTest, MutationCopiesOutOfTheMapping) {
  auto list = List::make({Value(1), Value(2), Value(3)});
  saveList(path("cow.psnap"), list);

  ListPtr loaded = loadList(path("cow.psnap"));
  ASSERT_TRUE(loaded->mappedBuffer());
  loaded->add(Value(4));
  EXPECT_FALSE(loaded->mappedBuffer());
  EXPECT_EQ(loaded->length(), 4u);
  EXPECT_EQ(loaded->item(1).asNumber(), 1.0);

  // A fresh load still sees the original bytes.
  ListPtr again = loadList(path("cow.psnap"));
  EXPECT_EQ(again->length(), 3u);
}

TEST_F(SnapshotTest, StructuredCloneSharesTheMappedBuffer) {
  auto list = List::make({Value(1), Value("two"), Value(3)});
  saveList(path("clone.psnap"), list);

  ListPtr loaded = loadList(path("clone.psnap"));
  Value clone = Value(loaded).structuredClone();
  EXPECT_TRUE(clone.asList()->mappedBuffer());
  EXPECT_TRUE(clone.asList()->sharesBufferWith(*loaded));

  // Mutating either side detaches only that side.
  clone.asList()->replaceAt(1, Value(99));
  EXPECT_TRUE(loaded->mappedBuffer());
  EXPECT_EQ(loaded->item(1).asNumber(), 1.0);
  EXPECT_EQ(clone.asList()->item(1).asNumber(), 99.0);
}

TEST_F(SnapshotTest, MappingSurvivesFileDeletion) {
  auto list = List::make({Value(5), Value(std::string(300, 'k'))});
  saveList(path("gone.psnap"), list);

  ListPtr loaded = loadList(path("gone.psnap"));
  std::filesystem::remove(path("gone.psnap"));
  // The mapping holds its own reference to the inode.
  EXPECT_EQ(loaded->item(1).asNumber(), 5.0);
  EXPECT_EQ(loaded->item(2).asText(), std::string(300, 'k'));
}

TEST_F(SnapshotTest, DatasetWriterStreamsAndRoundTrips) {
  const std::string longText(64, 'w');
  {
    DatasetWriter writer(path("stream.psnap"));
    for (int i = 0; i < 5000; ++i) writer.appendNumber(i);
    writer.append(Value("inline"));
    writer.append(Value(longText));
    writer.append(Value(true));
    writer.append(Value());
    EXPECT_EQ(writer.count(), 5004u);
    writer.commit();
  }
  ListPtr loaded = loadList(path("stream.psnap"));
  ASSERT_TRUE(loaded->mappedBuffer());
  ASSERT_EQ(loaded->length(), 5004u);
  EXPECT_EQ(loaded->item(5000).asNumber(), 4999.0);
  EXPECT_EQ(loaded->item(5001).asText(), "inline");
  EXPECT_EQ(loaded->item(5002).asText(), longText);
  EXPECT_TRUE(loaded->item(5003).asBoolean());
  EXPECT_TRUE(loaded->item(5004).isNothing());
}

TEST_F(SnapshotTest, DatasetWriterRejectsNonScalars) {
  DatasetWriter writer(path("bad.psnap"));
  EXPECT_THROW(writer.append(Value(List::make({Value(1)}))), PurityError);
}

TEST_F(SnapshotTest, AbandonedWriterLeavesNoFile) {
  {
    DatasetWriter writer(path("never.psnap"));
    writer.appendNumber(1);
    // no commit
  }
  EXPECT_TRUE(std::filesystem::is_empty(dir_));  // no temp leftovers either
}

TEST_F(SnapshotTest, MissingAndCorruptFilesRaiseSubstrateError) {
  EXPECT_THROW(loadList(path("absent.psnap")), SubstrateError);

  // Not a snapshot at all.
  std::ofstream(path("junk.psnap")) << "hello world";
  EXPECT_THROW(loadList(path("junk.psnap")), SubstrateError);

  auto list = List::make({Value(1), Value(2)});
  saveList(path("ok.psnap"), list);

  // Truncated: recorded size no longer matches.
  std::filesystem::copy_file(path("ok.psnap"), path("trunc.psnap"));
  std::filesystem::resize_file(
      path("trunc.psnap"), std::filesystem::file_size(path("trunc.psnap")) / 2);
  EXPECT_THROW(loadList(path("trunc.psnap")), SubstrateError);

  // Bad magic.
  std::filesystem::copy_file(path("ok.psnap"), path("magic.psnap"));
  {
    std::fstream f(path("magic.psnap"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');
  }
  EXPECT_THROW(loadList(path("magic.psnap")), SubstrateError);

  // Corrupt header field: self-check mismatch.
  std::filesystem::copy_file(path("ok.psnap"), path("hdr.psnap"));
  {
    std::fstream f(path("hdr.psnap"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(offsetof(FileHeader, sectionCount));
    f.put(char(0x7f));
  }
  EXPECT_THROW(loadList(path("hdr.psnap")), SubstrateError);

  // The good file still loads after all that.
  EXPECT_EQ(loadList(path("ok.psnap"))->length(), 2u);
}

TEST_F(SnapshotTest, ProjectImageRoundTrip) {
  ProjectImage image;
  image.xml = "<project name=\"p\"><stage/></project>";
  image.vars.push_back({0, "score", Value(41.0)});
  image.vars.push_back({0, "rows",
                        Value(List::make({Value(1), Value(2), Value(3)}))});
  image.vars.push_back({1, "greeting", Value(std::string(80, 'g'))});
  image.vars.push_back({2, "flag", Value(false)});
  saveProjectImage(path("p.psnap"), image);

  ProjectImage loaded = loadProjectImage(path("p.psnap"));
  EXPECT_EQ(loaded.xml, image.xml);
  ASSERT_EQ(loaded.vars.size(), 4u);
  EXPECT_EQ(loaded.vars[0].owner, 0u);
  EXPECT_EQ(loaded.vars[0].name, "score");
  EXPECT_EQ(loaded.vars[0].value.asNumber(), 41.0);
  EXPECT_EQ(loaded.vars[1].name, "rows");
  EXPECT_TRUE(loaded.vars[1].value.asList()->mappedBuffer());
  EXPECT_TRUE(loaded.vars[1].value.asList()->deepEquals(
      *image.vars[1].value.asList()));
  EXPECT_EQ(loaded.vars[2].owner, 1u);
  EXPECT_EQ(loaded.vars[2].value.asText(), std::string(80, 'g'));
  EXPECT_FALSE(loaded.vars[3].value.asBoolean());

  // Kind checks both ways.
  EXPECT_THROW(loadValue(path("p.psnap")), SubstrateError);
  saveValue(path("d.psnap"), Value(1.0));
  EXPECT_THROW(loadProjectImage(path("d.psnap")), SubstrateError);
}

TEST_F(SnapshotTest, InspectReportsShape) {
  auto list = List::make({Value(1), Value(2), Value(3)});
  saveList(path("i.psnap"), list);
  const SnapshotInfo info = inspect(path("i.psnap"));
  EXPECT_EQ(info.kind, SnapshotKind::Dataset);
  EXPECT_EQ(info.slots, 3u);
  EXPECT_EQ(info.lists, 1u);
  EXPECT_EQ(info.fileBytes, std::filesystem::file_size(path("i.psnap")));
}

TEST_F(SnapshotTest, CatalogSharesOneMappingAcrossOpens) {
  auto list = List::make({Value(10), Value(20)});
  saveList(path("cat.psnap"), list);

  ListPtr a = openSharedList(path("cat.psnap"));
  ListPtr b = openSharedList(path("cat.psnap"));
  EXPECT_NE(a.get(), b.get());  // never the same mutable node
  EXPECT_TRUE(a->sharesBufferWith(*b));
  EXPECT_TRUE(a->mappedBuffer());
  EXPECT_EQ(sharedOpenCount(), 1u);

  // One reader's mutation is invisible to the other and to later opens.
  a->replaceAt(1, Value(99));
  EXPECT_EQ(b->item(1).asNumber(), 10.0);
  ListPtr c = openSharedList(path("cat.psnap"));
  EXPECT_EQ(c->item(1).asNumber(), 10.0);
  EXPECT_TRUE(c->sharesBufferWith(*b));

  EXPECT_TRUE(releaseSharedOpen(path("cat.psnap")));
  EXPECT_FALSE(releaseSharedOpen(path("cat.psnap")));
  EXPECT_EQ(sharedOpenCount(), 0u);
  // Released entry: readers still work, next open remaps.
  EXPECT_EQ(b->item(2).asNumber(), 20.0);
  ListPtr d = openSharedList(path("cat.psnap"));
  EXPECT_EQ(d->item(1).asNumber(), 10.0);
  EXPECT_FALSE(d->sharesBufferWith(*b));
}

TEST_F(SnapshotTest, EmptyAndEdgeShapes) {
  saveList(path("empty.psnap"), List::make());
  EXPECT_EQ(loadList(path("empty.psnap"))->length(), 0u);

  auto emptyChild = List::make({Value(List::make()), Value(1)});
  saveList(path("ec.psnap"), emptyChild);
  ListPtr loaded = loadList(path("ec.psnap"));
  EXPECT_EQ(loaded->item(1).asList()->length(), 0u);
  EXPECT_EQ(loaded->item(2).asNumber(), 1.0);

  ProjectImage bare;
  saveProjectImage(path("bare.psnap"), bare);
  ProjectImage back = loadProjectImage(path("bare.psnap"));
  EXPECT_TRUE(back.xml.empty());
  EXPECT_TRUE(back.vars.empty());
}

// ---- orphaned-temp sweep (the abnormal-exit leak fix) ----------------

namespace {
/// A pid that is guaranteed dead: fork a child that exits immediately
/// and reap it. Until the pid is recycled (practically never within a
/// test) kill(pid, 0) returns ESRCH.
pid_t deadPid() {
  const pid_t pid = ::fork();
  if (pid == 0) ::_exit(0);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return pid;
}

void touch(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  out << "stale";
}
}  // namespace

TEST_F(SnapshotTest, SweepRemovesOnlyDeadWritersTemps) {
  const pid_t dead = deadPid();
  ASSERT_GT(dead, 0);
  touch(path("a.psnap.tmp." + std::to_string(dead)));       // orphan
  touch(path("b.psnap.tmp." + std::to_string(::getpid()))); // live writer
  touch(path("c.psnap"));                                   // committed
  touch(path("d.psnap.tmp.notapid"));                       // not a stage

  EXPECT_EQ(sweepOrphanedTemps(dir_.string()), 1u);
  EXPECT_FALSE(std::filesystem::exists(
      path("a.psnap.tmp." + std::to_string(dead))));
  EXPECT_TRUE(std::filesystem::exists(
      path("b.psnap.tmp." + std::to_string(::getpid()))));
  EXPECT_TRUE(std::filesystem::exists(path("c.psnap")));
  EXPECT_TRUE(std::filesystem::exists(path("d.psnap.tmp.notapid")));

  EXPECT_EQ(sweepOrphanedTemps(dir_.string()), 0u);  // idempotent
  EXPECT_EQ(sweepOrphanedTemps((dir_ / "no-such-subdir").string()), 0u);
}

TEST_F(SnapshotTest, CatalogOpenSweepsItsDirectory) {
  auto list = List::make({Value(1), Value(2), Value(3)});
  saveList(path("data.psnap"), list);
  const std::string orphan =
      path("data.psnap.tmp." + std::to_string(deadPid()));
  touch(orphan);

  ListPtr opened = openSharedList(path("data.psnap"));
  EXPECT_EQ(opened->length(), 3u);
  // The open path swept the directory as a side effect.
  EXPECT_FALSE(std::filesystem::exists(orphan));
}

}  // namespace
}  // namespace psnap::persist
