// Chaos suite for the persistence layer: the SnapshotWriteFailure and
// MmapFailure fault points fire as typed SubstrateErrors, failed writes
// leave nothing on disk (temp-and-rename atomicity), failed maps leave
// nothing mapped, and a seeded sweep shows every outcome is all-or-
// nothing: a path either holds a complete, loadable snapshot or no file
// at all.
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "blocks/value.hpp"
#include "persist/snapshot.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace psnap::persist {
namespace {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;

std::filesystem::path makeDir(const std::string& tag) {
  auto dir = std::filesystem::temp_directory_path() / ("psnap-pchaos-" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

size_t fileCount(const std::filesystem::path& dir) {
  size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir)) {
    ++n;
  }
  return n;
}

ListPtr sampleList(size_t n) {
  auto list = List::make();
  for (size_t i = 0; i < n; ++i) list->add(Value(double(i) * 0.5));
  return list;
}

class PersistChaos : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm(); }
  void TearDown() override { fault::disarm(); }
};

TEST_F(PersistChaos, WriteFaultIsTypedAndLeavesNoFile) {
  const auto dir = makeDir("write");
  const std::string path = (dir / "doomed.psnap").string();
  fault::ScopedFault armed({.seed = 7,
                            .rateNumerator = 1,
                            .rateDenominator = 1,
                            .pointMask =
                                fault::maskOf(fault::Point::SnapshotWriteFailure)});
  try {
    saveList(path, sampleList(100));
    FAIL() << "expected SubstrateError";
  } catch (const SubstrateError&) {
    const ErrorClass errorClass = classifyError(std::current_exception());
    EXPECT_EQ(errorClass, ErrorClass::Substrate);
    EXPECT_TRUE(isRetryableClass(errorClass));
  }
  EXPECT_GT(fault::firedCount(fault::Point::SnapshotWriteFailure), 0u);
  // No snapshot, no temp file: the writer stages and renames, and the
  // staged file is unlinked on every failure path.
  EXPECT_EQ(fileCount(dir), 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(PersistChaos, MapFaultIsTypedAndRecoversOnDisarm) {
  const auto dir = makeDir("map");
  const std::string path = (dir / "ok.psnap").string();
  ListPtr original = sampleList(64);
  saveList(path, original);

  {
    fault::ScopedFault armed({.seed = 11,
                              .rateNumerator = 1,
                              .rateDenominator = 1,
                              .pointMask =
                                  fault::maskOf(fault::Point::MmapFailure)});
    try {
      loadList(path);
      FAIL() << "expected SubstrateError";
    } catch (const SubstrateError&) {
      EXPECT_EQ(classifyError(std::current_exception()),
                ErrorClass::Substrate);
    }
    EXPECT_GT(fault::firedCount(fault::Point::MmapFailure), 0u);
  }
  // The fault is transient infrastructure failure: once it clears, the
  // same path loads intact.
  ListPtr loaded = loadList(path);
  EXPECT_TRUE(loaded->deepEquals(*original));
  std::filesystem::remove_all(dir);
}

TEST_F(PersistChaos, SeededWriteSweepIsAllOrNothing) {
  const auto dir = makeDir("sweep");
  ListPtr original = sampleList(40);
  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 24; ++i) {
    const std::string path =
        (dir / ("s" + std::to_string(i) + ".psnap")).string();
    // One save evaluates the point several times (open, each section,
    // commit); 1/8 per draw leaves both outcomes common across seeds.
    fault::ScopedFault armed(
        {.seed = uint64_t(i) + 1,
         .rateNumerator = 1,
         .rateDenominator = 8,
         .pointMask = fault::maskOf(fault::Point::SnapshotWriteFailure)});
    try {
      saveList(path, original);
      ++successes;
    } catch (const SubstrateError&) {
      ++failures;
      // All-or-nothing: the doomed path holds no file, partial or
      // otherwise.
      EXPECT_FALSE(std::filesystem::exists(path));
    }
  }
  // The 1/3 rate over this many trials fires both ways.
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);
  // Every survivor is complete and loadable.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ListPtr loaded = loadList(entry.path().string());
    EXPECT_TRUE(loaded->deepEquals(*original)) << entry.path();
  }
  EXPECT_EQ(fileCount(dir), size_t(successes));
  std::filesystem::remove_all(dir);
}

TEST_F(PersistChaos, StreamingWriterFaultAbandonsTheTempFile) {
  const auto dir = makeDir("stream");
  const std::string path = (dir / "rows.psnap").string();
  fault::Config config{.seed = 3,
                       .rateNumerator = 1,
                       .rateDenominator = 1,
                       .pointMask =
                           fault::maskOf(fault::Point::SnapshotWriteFailure)};
  // Arm only at commit time: the rows stream cleanly, then the final
  // flush dies. The staged temp file must be unlinked once the writer
  // winds down (its destructor abandons anything uncommitted).
  {
    DatasetWriter writer(path);
    for (int i = 0; i < 1000; ++i) writer.appendNumber(double(i));
    fault::ScopedFault armed(config);
    EXPECT_THROW(writer.commit(), SubstrateError);
  }
  EXPECT_EQ(fileCount(dir), 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(PersistChaos, CorruptFilesAreTypedNotCrashes) {
  // Beyond the injected faults, the reader's validation layer turns every
  // malformed input into the same typed SubstrateError: these paths run
  // under asan in the chaos leg, so a validator that over-reads would
  // fail loudly here.
  const auto dir = makeDir("corrupt");
  const std::string good = (dir / "good.psnap").string();
  saveList(good, sampleList(32));

  // Bit-flip a header byte.
  {
    const std::string bad = (dir / "flip.psnap").string();
    std::filesystem::copy_file(good, bad);
    FILE* f = fopen(bad.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, 4, SEEK_SET);
    fputc(0x5a, f);
    fclose(f);
    EXPECT_THROW(loadList(bad), SubstrateError);
  }
  // Truncate mid-file.
  {
    const std::string bad = (dir / "trunc.psnap").string();
    std::filesystem::copy_file(good, bad);
    std::filesystem::resize_file(bad,
                                 std::filesystem::file_size(bad) / 2);
    EXPECT_THROW(loadList(bad), SubstrateError);
  }
  // Not a snapshot at all.
  {
    const std::string bad = (dir / "junk.psnap").string();
    FILE* f = fopen(bad.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("this is not a snapshot file", f);
    fclose(f);
    EXPECT_THROW(loadList(bad), SubstrateError);
  }
  // The good file is untouched by its corrupt neighbours.
  EXPECT_EQ(loadList(good)->length(), 32u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace psnap::persist
