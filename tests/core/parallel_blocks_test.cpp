// End-to-end tests of the paper's parallel blocks running on the
// cooperative scheduler with real worker threads underneath.
#include "core/parallel_blocks.hpp"

#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "sched/thread_manager.hpp"
#include "support/error.hpp"

namespace psnap::core {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::EnvPtr;
using blocks::Value;
using sched::ThreadManager;

class ParallelBlocksTest : public ::testing::Test {
 protected:
  ParallelBlocksTest() : prims_(fullPrimitiveTable()) {}

  Value eval(blocks::BlockPtr expr, EnvPtr env = nullptr) {
    ThreadManager tm(&BlockRegistry::standard(), &prims_);
    return tm.evaluate(std::move(expr), env ? env : Environment::make());
  }

  vm::PrimitiveTable prims_;
};

// Paper Fig. 5/6: parallel map ((  ) × 10) over 1..1000 — first ten
// outputs are 10,20,…,100.
TEST_F(ParallelBlocksTest, Fig5ParallelMapTimesTen) {
  Value v = eval(parallelMap(ring(product(empty(), 10)),
                             numbersFromTo(1, 1000)));
  ASSERT_EQ(v.asList()->length(), 1000u);
  for (size_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(v.asList()->item(i).asNumber(), 10.0 * double(i));
  }
  EXPECT_EQ(v.asList()->item(1000).asNumber(), 10000);
}

TEST_F(ParallelBlocksTest, ParallelMapExplicitWorkerCount) {
  Value v = eval(parallelMap(ring(sum(empty(), 1)), listOf({1, 2, 3}), 2));
  EXPECT_EQ(v.asList()->display(), "[2, 3, 4]");
}

TEST_F(ParallelBlocksTest, ParallelMapMatchesSequentialMap) {
  auto input = numbersFromTo(1, 257);
  Value par = eval(parallelMap(ring(product(empty(), empty())), input, 4));
  Value seq = eval(mapOver(ring(product(empty(), empty())), input));
  EXPECT_TRUE(par.equals(seq));
}

TEST_F(ParallelBlocksTest, ParallelMapEmptyList) {
  Value v = eval(parallelMap(ring(product(empty(), 10)), listOf({})));
  EXPECT_TRUE(v.asList()->empty());
}

TEST_F(ParallelBlocksTest, ParallelMapImpureRingFails) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  EXPECT_THROW(
      tm.evaluate(parallelMap(ring(In(blk("getTimer"))), listOf({1})),
                  Environment::make()),
      Error);
}

TEST_F(ParallelBlocksTest, ParallelMapWorkerErrorSurfaces) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  EXPECT_THROW(tm.evaluate(parallelMap(ring(quotient(1, empty())),
                                       listOf({1, 0, 2})),
                           Environment::make()),
               Error);
}

TEST_F(ParallelBlocksTest, ParallelMapKeepsSchedulerResponsive) {
  // While the workers grind, other processes must continue to run — the
  // whole point of Web Workers (Sec. 4.1: keeping the browser responsive).
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("ticks", Value(0));
  env->declare("result", Value());
  tm.spawnScript(scriptOf({setVar(
                     "result", parallelMap(ring(product(empty(), 3)),
                                           numbersFromTo(1, 20000), 2))}),
                 env);
  tm.spawnScript(scriptOf({forever(scriptOf({changeVar("ticks", 1)}))}),
                 env);
  // Run frames until the map result lands.
  for (int i = 0; i < 100000 && env->get("result").isNothing(); ++i) {
    tm.runFrame();
  }
  ASSERT_FALSE(env->get("result").isNothing());
  EXPECT_EQ(env->get("result").asList()->length(), 20000u);
  // The ticker advanced once per frame during the parallel job.
  EXPECT_GE(env->get("ticks").asNumber(), 1.0);
  tm.stopAll();
}

// Sequential mode of parallelForEach (Fig. 8b): collapsed slot.
TEST_F(ParallelBlocksTest, ForEachSequentialMode) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("log", Value(blocks::List::make()));
  auto handle = tm.spawnScript(
      scriptOf({parallelForEach("item", listOf({"a", "b", "c"}),
                                collapsed(),
                                scriptOf({addToList(getVar("item"),
                                                    getVar("log"))}))}),
      env);
  tm.runUntilIdle();
  EXPECT_FALSE(handle.status->errored) << handle.status->error;
  EXPECT_EQ(env->get("log").asList()->display(), "[a, b, c]");
}

// Parallel mode (Fig. 8a): one clone per item by default; items are
// processed concurrently on the cooperative scheduler.
TEST_F(ParallelBlocksTest, ForEachParallelMode) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("total", Value(0));
  auto handle = tm.spawnScript(
      scriptOf({parallelForEach("item", listOf({1, 2, 3, 4}), blank(),
                                scriptOf({changeVar("total",
                                                    getVar("item"))}))}),
      env);
  tm.runUntilIdle();
  EXPECT_FALSE(handle.status->errored) << handle.status->error;
  EXPECT_EQ(env->get("total").asNumber(), 10);
}

TEST_F(ParallelBlocksTest, ForEachParallelConcurrencySpeedup) {
  // 3 items, each needing 3 busy frames: sequential takes 9+ frames,
  // parallel overlaps them — the paper's concession-stand shape.
  auto makeScript = [](In mode) {
    return scriptOf({parallelForEach("item", listOf({"a", "b", "c"}),
                                     std::move(mode),
                                     scriptOf({busyWork(3)}))});
  };
  ThreadManager seqTm(&BlockRegistry::standard(), &prims_);
  seqTm.spawnScript(makeScript(collapsed()), Environment::make());
  uint64_t seqFrames = seqTm.runUntilIdle();

  ThreadManager parTm(&BlockRegistry::standard(), &prims_);
  parTm.spawnScript(makeScript(blank()), Environment::make());
  uint64_t parFrames = parTm.runUntilIdle();

  EXPECT_GE(seqFrames, 9u);
  EXPECT_LT(parFrames, seqFrames);
}

TEST_F(ParallelBlocksTest, ForEachParallelismLimitChunksItems) {
  // 6 items with parallelism 2: both clones must together process all 6.
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("total", Value(0));
  tm.spawnScript(
      scriptOf({parallelForEach("item", numbersFromTo(1, 6), 2,
                                scriptOf({changeVar("total",
                                                    getVar("item"))}))}),
      env);
  tm.runUntilIdle();
  EXPECT_EQ(env->get("total").asNumber(), 21);
}

TEST_F(ParallelBlocksTest, ForEachEmptyList) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  auto handle = tm.spawnScript(
      scriptOf({parallelForEach("item", listOf({}), blank(),
                                scriptOf({busyWork(1)}))}),
      env);
  tm.runUntilIdle();
  EXPECT_FALSE(handle.status->errored);
}

TEST_F(ParallelBlocksTest, ForEachBodyErrorPropagates) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  auto handle = tm.spawnScript(
      scriptOf({parallelForEach("item", listOf({1, 2}), blank(),
                                scriptOf({say(quotient(1, 0))}))}),
      env);
  tm.runUntilIdle();
  EXPECT_TRUE(handle.status->errored);
}

// Paper Fig. 11/12: word count.
TEST_F(ParallelBlocksTest, Fig11WordCount) {
  // map: word → 1 (keyed implicitly by the word itself);
  // reduce: length of the values list = occurrences.
  Value v = eval(mapReduce(
      ring(In(1.0)), ring(lengthOf(empty())),
      splitText("the quick the lazy the quick fox", "whitespace")));
  // Sorted unique words with counts.
  EXPECT_EQ(v.asList()->display(),
            "[[fox, 1], [lazy, 1], [quick, 2], [the, 3]]");
}

// Paper Fig. 13: Fahrenheit→Celsius average with an explicit key.
TEST_F(ParallelBlocksTest, Fig13ClimateAverage) {
  auto mapper = ring(listOf(
      {In("avgC"),
       In(quotient(product(5, difference(empty(), 32)), 9))}));
  auto reducer = ring(quotient(combineUsing(empty(),
                                            ring(sum(empty(), empty()))),
                               lengthOf(empty())));
  Value v = eval(mapReduce(mapper, reducer, listOf({32, 212, 50})));
  ASSERT_EQ(v.asList()->length(), 1u);
  EXPECT_EQ(v.asList()->item(1).asList()->item(1).asText(), "avgC");
  EXPECT_NEAR(v.asList()->item(1).asList()->item(2).asNumber(),
              (0.0 + 100.0 + 10.0) / 3.0, 1e-9);
}

TEST_F(ParallelBlocksTest, MapReduceIdentityReducePassesValuesThrough) {
  Value v = eval(mapReduce(ring(In(1.0)), identityRing(),
                           splitText("b a b", "whitespace")));
  EXPECT_EQ(v.asList()->display(), "[[a, [1]], [b, [1, 1]]]");
}

TEST_F(ParallelBlocksTest, MapReduceExplicitPairsGroupByKey) {
  // map emits explicit [key, value] pairs: key = parity.
  auto mapper = ring(listOf({In(modulus(empty(), 2)), In(empty())}));
  auto reducer = ring(combineUsing(empty(), ring(sum(empty(), empty()))));
  Value v = eval(mapReduce(mapper, reducer, numbersFromTo(1, 10)));
  // evens sum to 30 under key 0, odds to 25 under key 1.
  EXPECT_EQ(v.asList()->display(), "[[0, 30], [1, 25]]");
}

TEST_F(ParallelBlocksTest, MaxWorkersReflectsSchedulerSetting) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  tm.setMaxWorkers(7);
  Value v = tm.evaluate(maxWorkers(), Environment::make());
  EXPECT_EQ(v.asNumber(), 7);
}

}  // namespace
}  // namespace psnap::core
