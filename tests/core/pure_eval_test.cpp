// Tests for the ring → worker-function compiler (the Listing 2
// `mappedCode()` analog): purity checking, lexical snapshots, and the
// pure mini-evaluator.
#include "core/pure_eval.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "blocks/builder.hpp"
#include "support/error.hpp"
#include "vm/process.hpp"

namespace psnap::core {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::EnvPtr;
using blocks::RingPtr;
using blocks::Value;

/// Evaluate a reifyReporter block into a RingPtr via the interpreter (so
/// lexical capture happens exactly as in a real script).
RingPtr makeRing(blocks::BlockPtr reify, EnvPtr env = nullptr) {
  static vm::PrimitiveTable prims = vm::PrimitiveTable::standard();
  static vm::NullHost host;
  vm::Process p(&BlockRegistry::standard(), &prims, &host);
  p.startExpression(std::move(reify), env ? env : Environment::make());
  return p.runToCompletion().asRing();
}

TEST(CompileRing, TimesTen) {
  auto fn = compileUnary(makeRing(ring(product(empty(), 10))));
  EXPECT_EQ(fn(Value(7)).asNumber(), 70);
  EXPECT_EQ(fn(Value("3")).asNumber(), 30);
}

TEST(CompileRing, NamedFormals) {
  auto fn = compileBinary(
      makeRing(ring(difference(getVar("a"), getVar("b")), {"a", "b"})));
  EXPECT_EQ(fn(Value(10), Value(4)).asNumber(), 6);
}

TEST(CompileRing, MultipleBlanksPositional) {
  auto fn = compileRing(makeRing(ring(difference(empty(), empty()))));
  EXPECT_EQ(fn({Value(10), Value(3)}).asNumber(), 7);
}

TEST(CompileRing, SingleArgFillsAllBlanks) {
  auto fn = compileRing(makeRing(ring(product(empty(), empty()))));
  EXPECT_EQ(fn({Value(5)}).asNumber(), 25);
}

TEST(CompileRing, CapturesLexicalVariables) {
  auto env = Environment::make();
  env->declare("offset", Value(100));
  auto fn = compileUnary(makeRing(ring(sum(getVar("offset"), empty())), env));
  EXPECT_EQ(fn(Value(1)).asNumber(), 101);
}

TEST(CompileRing, SnapshotIsolatesCapturedState) {
  // The worker sees the value at compile time, not later mutations —
  // structured-clone semantics.
  auto env = Environment::make();
  env->declare("offset", Value(100));
  auto fn = compileUnary(makeRing(ring(sum(getVar("offset"), empty())), env));
  env->set("offset", Value(0));
  EXPECT_EQ(fn(Value(1)).asNumber(), 101);
}

TEST(CompileRing, CapturedListIsCloned) {
  auto env = Environment::make();
  auto table = blocks::List::make({Value(10), Value(20)});
  env->declare("table", Value(table));
  auto fn = compileUnary(
      makeRing(ring(itemOf(empty(), getVar("table"))), env));
  table->replaceAt(1, Value(-1));
  EXPECT_EQ(fn(Value(1)).asNumber(), 10);
}

TEST(CompileRing, FahrenheitToCelsius) {
  // The paper's climate mapper: (5 * (x - 32)) / 9.
  auto fn = compileUnary(makeRing(
      ring(quotient(product(5, difference(empty(), 32)), 9))));
  EXPECT_EQ(fn(Value(212)).asNumber(), 100);
  EXPECT_EQ(fn(Value(32)).asNumber(), 0);
  EXPECT_NEAR(fn(Value(98.6)).asNumber(), 37.0, 1e-9);
}

TEST(CompileRing, NestedRingViaCombine) {
  // reduce-style body: combine (values) using (+) — a ring inside a ring.
  auto fn = compileRing(makeRing(
      ring(combineUsing(empty(), ring(sum(empty(), empty()))))));
  auto values = blocks::List::make({Value(1), Value(2), Value(3)});
  EXPECT_EQ(fn({Value(values)}).asNumber(), 6);
}

TEST(CompileRing, NestedMapInsideWorkerCode) {
  auto fn = compileUnary(makeRing(
      ring(mapOver(ring(product(empty(), 2)), empty()))));
  auto values = blocks::List::make({Value(1), Value(2)});
  EXPECT_EQ(fn(Value(values)).display(), "[2, 4]");
}

TEST(CompileRing, KeepInsideWorkerCode) {
  auto fn = compileUnary(makeRing(
      ring(keepFrom(ring(greaterThan(empty(), 2)), empty()))));
  auto values = blocks::List::make({Value(1), Value(3), Value(5)});
  EXPECT_EQ(fn(Value(values)).display(), "[3, 5]");
}

TEST(CompileRing, TextOpsWork) {
  auto fn = compileUnary(makeRing(ring(join({In(empty()), In("!")}))));
  EXPECT_EQ(fn(Value("snap")).asText(), "snap!");
}

TEST(CompileRing, ErrorsSurfaceAtCallTime) {
  auto fn = compileUnary(makeRing(ring(quotient(1, empty()))));
  EXPECT_THROW(fn(Value(0)), Error);
}

TEST(CompileRing, UnresolvedVariableErrorsAtCallTime) {
  auto fn = compileUnary(makeRing(ring(sum(getVar("nope"), empty()))));
  EXPECT_THROW(fn(Value(1)), Error);
}

TEST(Purity, RejectsImpureBlocks) {
  // `say` touches the stage: not worker-shippable.
  auto impure = makeRing(ring(In(blk("getTimer"))));
  EXPECT_EQ(findImpureBlock(impure), "getTimer");
  EXPECT_THROW(compileRing(impure), PurityError);
}

TEST(Purity, RejectsRandom) {
  auto impure = makeRing(ring(pickRandom(1, empty())));
  EXPECT_THROW(compileRing(impure), PurityError);
}

TEST(Purity, RejectsCommandRings) {
  auto env = Environment::make();
  static vm::PrimitiveTable prims = vm::PrimitiveTable::standard();
  static vm::NullHost host;
  vm::Process p(&BlockRegistry::standard(), &prims, &host);
  p.startExpression(ringScript(scriptOf({say("hi")})), env);
  auto ring = p.runToCompletion().asRing();
  EXPECT_EQ(findImpureBlock(ring), "<command ring>");
  EXPECT_THROW(compileRing(ring), PurityError);
}

TEST(Purity, RejectsNonTransferableCapture) {
  auto env = Environment::make();
  env->declare("f", Value(blocks::Ring::reporter(
                        blocks::Block::make("reportIdentity",
                                            {blocks::Input::empty()}))));
  auto r = makeRing(ring(sum(textLength(getVar("f")), empty())), env);
  (void)r;
  // 'f' holds a ring: the capture snapshot must refuse it.
  EXPECT_THROW(compileRing(r), PurityError);
}

TEST(CompileRing, ThreadSafetyUnderConcurrentCalls) {
  auto fn = compileUnary(makeRing(ring(product(empty(), empty()))));
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fn, &ok] {
      for (int i = 1; i < 2000; ++i) {
        if (fn(Value(i)).asNumber() != double(i) * i) ok.store(false);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace psnap::core
