// Interpreter robustness: slice preemption mid-expression, step budgets,
// restart, deep nesting, and stack-machine edge cases.
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "support/error.hpp"
#include "vm/process.hpp"

namespace psnap::vm {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::Value;

class ProcessTest : public ::testing::Test {
 protected:
  Process make() {
    return Process(&BlockRegistry::standard(), &prims_, &host_);
  }
  PrimitiveTable prims_ = PrimitiveTable::standard();
  NullHost host_;
};

TEST_F(ProcessTest, TinySlicesStillComputeCorrectly) {
  // Preempt after every interpreter step: results must not change.
  auto p = make();
  p.startExpression(sum(product(sum(1, 2), sum(3, 4)), quotient(10, 4)),
                    Environment::make());
  int slices = 0;
  while (p.runnable()) {
    p.runSlice(1);
    ++slices;
  }
  EXPECT_EQ(p.result().asNumber(), 23.5);
  EXPECT_GT(slices, 5);  // it really was preempted repeatedly
}

TEST_F(ProcessTest, DeeplyNestedExpression) {
  blocks::BlockPtr expr = sum(1, 1);
  for (int i = 0; i < 2000; ++i) expr = sum(expr, 1);
  auto p = make();
  p.startExpression(expr, Environment::make());
  EXPECT_EQ(p.runToCompletion().asNumber(), 2002);
}

TEST_F(ProcessTest, DeepRingRecursionViaUntil) {
  // 10k iterations of an until loop against a small slice budget.
  auto env = Environment::make();
  env->declare("n", Value(0));
  auto p = make();
  p.startScript(scriptOf({repeatUntil(equals(getVar("n"), 10000),
                                      scriptOf({changeVar("n", 1)}))}),
                env);
  while (p.runnable()) p.runSlice(64);
  EXPECT_EQ(env->get("n").asNumber(), 10000);
}

TEST_F(ProcessTest, StepBudgetGuardsRunaways) {
  auto p = make();
  p.startScript(scriptOf({warp(scriptOf({forever(scriptOf({}))}))}),
                Environment::make());
  // Warped forever loop never yields: runToCompletion must hit the guard.
  EXPECT_THROW(p.runToCompletion(10000), Error);
}

TEST_F(ProcessTest, RestartAfterCompletion) {
  auto p = make();
  p.startExpression(sum(1, 2), Environment::make());
  EXPECT_EQ(p.runToCompletion().asNumber(), 3);
  p.startExpression(sum(10, 20), Environment::make());
  EXPECT_EQ(p.runToCompletion().asNumber(), 30);
}

TEST_F(ProcessTest, RestartAfterError) {
  auto p = make();
  p.startExpression(quotient(1, 0), Environment::make());
  EXPECT_THROW(p.runToCompletion(), Error);
  EXPECT_TRUE(p.errored());
  p.startExpression(sum(2, 2), Environment::make());
  EXPECT_EQ(p.runToCompletion().asNumber(), 4);
  EXPECT_FALSE(p.errored());
}

TEST_F(ProcessTest, TerminateMidRun) {
  auto env = Environment::make();
  env->declare("n", Value(0));
  auto p = make();
  p.startScript(scriptOf({forever(scriptOf({changeVar("n", 1)}))}), env);
  p.runSlice();
  p.runSlice();
  double before = env->get("n").asNumber();
  p.terminate();
  EXPECT_EQ(p.state(), ProcessState::Terminated);
  EXPECT_FALSE(p.runSlice());  // no further progress
  EXPECT_EQ(env->get("n").asNumber(), before);
}

TEST_F(ProcessTest, EmptyScriptFinishesImmediately) {
  auto p = make();
  p.startScript(scriptOf({}), Environment::make());
  p.runSlice();
  EXPECT_EQ(p.state(), ProcessState::Done);
}

TEST_F(ProcessTest, ResultOfCommandScriptIsNothing) {
  auto p = make();
  p.startScript(scriptOf({say("x")}), Environment::make());
  p.runToCompletion();
  EXPECT_TRUE(p.result().isNothing());
}

TEST_F(ProcessTest, MissingHandlerIsAnError) {
  PrimitiveTable empty;
  Process p(&BlockRegistry::standard(), &empty, &host_);
  p.startExpression(sum(1, 2), Environment::make());
  EXPECT_THROW(p.runToCompletion(), Error);
  EXPECT_NE(p.error().find("no handler"), std::string::npos);
}

TEST_F(ProcessTest, NullDependenciesRejected) {
  EXPECT_THROW(Process(nullptr, &prims_, &host_), Error);
  EXPECT_THROW(Process(&BlockRegistry::standard(), nullptr, &host_), Error);
  EXPECT_THROW(Process(&BlockRegistry::standard(), &prims_, nullptr),
               Error);
}

TEST_F(ProcessTest, ProcessIdsAreUnique) {
  auto a = make();
  auto b = make();
  EXPECT_NE(a.id(), b.id());
}

TEST_F(ProcessTest, YieldFlagReflectsVoluntaryYields) {
  auto p = make();
  p.startScript(scriptOf({wait(5)}), Environment::make());
  p.runSlice();
  EXPECT_TRUE(p.yielded());
  host_.advance(10);
  p.runSlice();
  EXPECT_EQ(p.state(), ProcessState::Done);
}

TEST_F(ProcessTest, ErrorMessagesNameTheFailure) {
  auto p = make();
  p.startExpression(itemOf(5, listOf({1})), Environment::make());
  EXPECT_THROW(p.runToCompletion(), Error);
  EXPECT_NE(p.error().find("item"), std::string::npos);
}

TEST_F(ProcessTest, ListIdentityAcrossSlicePreemption) {
  // A list mutated across many tiny slices keeps reference semantics.
  auto env = Environment::make();
  auto list = blocks::List::make();
  env->declare("l", Value(list));
  auto p = make();
  p.startScript(
      scriptOf({repeat(50, scriptOf({addToList(1, getVar("l"))}))}), env);
  while (p.runnable()) p.runSlice(3);
  EXPECT_EQ(list->length(), 50u);
}

}  // namespace
}  // namespace psnap::vm
