// Snap!'s `warp` block: the C-slot body runs without yielding, so loops
// that would normally take one frame per iteration complete in a single
// frame — and warp nesting/unwinding restores normal scheduling.
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "sched/thread_manager.hpp"
#include "support/error.hpp"
#include "vm/process.hpp"

namespace psnap::vm {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::Value;

class WarpTest : public ::testing::Test {
 protected:
  WarpTest() : prims_(PrimitiveTable::standard()) {}
  PrimitiveTable prims_;
};

TEST_F(WarpTest, LoopCompletesInOneFrame) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("n", Value(0));
  tm.spawnScript(
      scriptOf({warp(scriptOf({repeat(100,
                                      scriptOf({changeVar("n", 1)}))}))}),
      env);
  uint64_t frames = tm.runUntilIdle();
  EXPECT_EQ(env->get("n").asNumber(), 100);
  EXPECT_EQ(frames, 1u);
}

TEST_F(WarpTest, UnwarpedLoopTakesOneFramePerIteration) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("n", Value(0));
  tm.spawnScript(scriptOf({repeat(100, scriptOf({changeVar("n", 1)}))}),
                 env);
  EXPECT_GE(tm.runUntilIdle(), 100u);
}

TEST_F(WarpTest, SchedulingResumesAfterWarp) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("n", Value(0));
  tm.spawnScript(
      scriptOf({warp(scriptOf({repeat(10, scriptOf({changeVar("n", 1)}))})),
                repeat(10, scriptOf({changeVar("n", 1)}))}),
      env);
  uint64_t frames = tm.runUntilIdle();
  EXPECT_EQ(env->get("n").asNumber(), 20);
  // Warped part: 1 frame; unwarped part: ~10 frames.
  EXPECT_GE(frames, 10u);
  EXPECT_LE(frames, 12u);
}

TEST_F(WarpTest, NestedWarps) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("n", Value(0));
  tm.spawnScript(
      scriptOf({warp(scriptOf({
          warp(scriptOf({repeat(5, scriptOf({changeVar("n", 1)}))})),
          repeat(5, scriptOf({changeVar("n", 1)})),
      }))}),
      env);
  EXPECT_EQ(tm.runUntilIdle(), 1u);
  EXPECT_EQ(env->get("n").asNumber(), 10);
}

TEST_F(WarpTest, StopThisInsideWarpRestoresScheduling) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("n", Value(0));
  // A command-ring call inside the warp stops itself; the warp frame
  // unwinds and the process must not stay warped afterwards.
  auto body = scriptOf({stopThis()});
  tm.spawnScript(
      scriptOf({warp(scriptOf({runRing(ringScript(body))})),
                repeat(5, scriptOf({changeVar("n", 1)}))}),
      env);
  uint64_t frames = tm.runUntilIdle();
  EXPECT_EQ(env->get("n").asNumber(), 5);
  EXPECT_GE(frames, 5u);  // the trailing loop yields per iteration again
}

TEST_F(WarpTest, ErrorInsideWarpFailsCleanly) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto handle = tm.spawnScript(
      scriptOf({warp(scriptOf({say(quotient(1, 0))}))}),
      Environment::make());
  tm.runUntilIdle();
  EXPECT_TRUE(handle.status->errored);
}

TEST_F(WarpTest, ForEachInsideWarpIsAtomic) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("sum", Value(0));
  tm.spawnScript(
      scriptOf({warp(scriptOf({forEach(
          "x", numbersFromTo(1, 50),
          scriptOf({changeVar("sum", getVar("x"))}))}))}),
      env);
  EXPECT_EQ(tm.runUntilIdle(), 1u);
  EXPECT_EQ(env->get("sum").asNumber(), 1275);
}

}  // namespace
}  // namespace psnap::vm
