// BYOB: user-defined blocks built from other blocks (paper Sec. 2),
// including recursion — the feature that makes Snap! "a full-fledged
// programming language".
#include "vm/custom_blocks.hpp"

#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "sched/thread_manager.hpp"
#include "support/error.hpp"

namespace psnap::vm {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::BlockType;
using blocks::Environment;
using blocks::Value;

class CustomBlocksTest : public ::testing::Test {
 protected:
  CustomBlocksTest() {
    registerStandardSpecs(registry_);
    registerStandardPrimitives(table_);
  }

  void finish() { library_.registerInto(registry_, table_); }

  Value eval(blocks::BlockPtr expr) {
    sched::ThreadManager tm(&registry_, &table_);
    return tm.evaluate(std::move(expr), Environment::make());
  }

  blocks::BlockRegistry registry_;
  PrimitiveTable table_;
  CustomBlockLibrary library_;
};

TEST_F(CustomBlocksTest, SimpleReporter) {
  library_.define({.spec = "double %n",
                   .type = BlockType::Reporter,
                   .formals = {"n"},
                   .body = scriptOf({report(product(getVar("n"), 2))})});
  finish();
  EXPECT_EQ(eval(library_.call("double %n", {blocks::Input(Value(21))}))
                .asNumber(),
            42);
}

TEST_F(CustomBlocksTest, ReporterComposesWithPrimitives) {
  library_.define({.spec = "square %n",
                   .type = BlockType::Reporter,
                   .formals = {"x"},
                   .body = scriptOf({report(product(getVar("x"),
                                                    getVar("x")))})});
  finish();
  auto call = library_.call("square %n", {blocks::Input(sum(3, 4))});
  EXPECT_EQ(eval(In(call).input.block()).asNumber(), 49);
}

TEST_F(CustomBlocksTest, RecursiveFactorial) {
  // factorial %n: if n < 2 report 1 else report n * factorial(n-1)
  auto recursiveCall = blocks::Block::make(
      customOpcode("factorial %n"),
      {blocks::Input(difference(getVar("n"), 1))});
  library_.define(
      {.spec = "factorial %n",
       .type = BlockType::Reporter,
       .formals = {"n"},
       .body = scriptOf({doIfElse(
           lessThan(getVar("n"), 2), scriptOf({report(1)}),
           scriptOf({report(product(getVar("n"), recursiveCall))}))})});
  finish();
  EXPECT_EQ(eval(library_.call("factorial %n", {blocks::Input(Value(10))}))
                .asNumber(),
            3628800);
}

TEST_F(CustomBlocksTest, CommandBlockWithEffects) {
  library_.define(
      {.spec = "log %s twice",
       .type = BlockType::Command,
       .formals = {"msg"},
       .body = scriptOf({say(getVar("msg")), say(getVar("msg"))})});
  finish();
  sched::ThreadManager tm(&registry_, &table_);
  tm.spawnScript(
      blocks::Script::make({library_.call(
          "log %s twice", {blocks::Input(Value("hi"))})}),
      Environment::make());
  tm.runUntilIdle();
  EXPECT_EQ(tm.collectSayLog().size(), 2u);
}

TEST_F(CustomBlocksTest, CustomBlocksCallEachOther) {
  library_.define({.spec = "inc %n",
                   .type = BlockType::Reporter,
                   .formals = {"n"},
                   .body = scriptOf({report(sum(getVar("n"), 1))})});
  auto incCall = blocks::Block::make(customOpcode("inc %n"),
                                     {blocks::Input(getVar("n"))});
  library_.define({.spec = "inc twice %n",
                   .type = BlockType::Reporter,
                   .formals = {"n"},
                   .body = scriptOf({report(blocks::Block::make(
                       customOpcode("inc %n"),
                       {blocks::Input(incCall)}))})});
  finish();
  EXPECT_EQ(eval(library_.call("inc twice %n",
                               {blocks::Input(Value(40))}))
                .asNumber(),
            42);
}

TEST_F(CustomBlocksTest, ReporterWithoutReportGivesNothing) {
  library_.define({.spec = "silent %n",
                   .type = BlockType::Reporter,
                   .formals = {"n"},
                   .body = scriptOf({setVar("unused", getVar("n"))})});
  finish();
  EXPECT_TRUE(
      eval(library_.call("silent %n", {blocks::Input(Value(1))}))
          .isNothing());
}

TEST_F(CustomBlocksTest, LexicalHomeEnvironment) {
  auto home = Environment::make();
  home->declare("base", Value(100));
  library_.define({.spec = "offset %n",
                   .type = BlockType::Reporter,
                   .formals = {"n"},
                   .body = scriptOf({report(sum(getVar("base"),
                                                getVar("n")))}),
                   .home = home});
  finish();
  EXPECT_EQ(eval(library_.call("offset %n", {blocks::Input(Value(1))}))
                .asNumber(),
            101);
}

TEST_F(CustomBlocksTest, CustomBlocksWorkInsideHofs) {
  library_.define({.spec = "triple %n",
                   .type = BlockType::Reporter,
                   .formals = {"n"},
                   .body = scriptOf({report(product(getVar("n"), 3))})});
  finish();
  auto call = blocks::Block::make(customOpcode("triple %n"),
                                  {blocks::Input::empty()});
  Value v = eval(mapOver(ring(In(call)), listOf({1, 2, 3})));
  EXPECT_EQ(v.asList()->display(), "[3, 6, 9]");
}

TEST_F(CustomBlocksTest, DefinitionValidation) {
  EXPECT_THROW(library_.define({.spec = "bad %n",
                                .type = BlockType::Reporter,
                                .formals = {},
                                .body = scriptOf({})}),
               BlockError);
  EXPECT_THROW(library_.define({.spec = "nobody %n",
                                .type = BlockType::Reporter,
                                .formals = {"n"},
                                .body = nullptr}),
               BlockError);
  library_.define({.spec = "ok %n",
                   .type = BlockType::Reporter,
                   .formals = {"n"},
                   .body = scriptOf({report(getVar("n"))})});
  EXPECT_THROW(library_.define({.spec = "ok %n",
                                .type = BlockType::Reporter,
                                .formals = {"n"},
                                .body = scriptOf({report(getVar("n"))})}),
               BlockError);
  EXPECT_THROW(library_.call("missing %n", {}), BlockError);
  EXPECT_TRUE(library_.has("ok %n"));
  EXPECT_EQ(library_.specs().size(), 1u);
}

TEST_F(CustomBlocksTest, RegisteredSpecValidatesInstances) {
  library_.define({.spec = "double %n",
                   .type = BlockType::Reporter,
                   .formals = {"n"},
                   .body = scriptOf({report(product(getVar("n"), 2))})});
  finish();
  EXPECT_TRUE(registry_.has("custom:double %n"));
  EXPECT_EQ(registry_.get("custom:double %n").category, "custom");
  auto wrongArity = blocks::Block::make("custom:double %n", {});
  EXPECT_THROW(registry_.validate(*wrongArity), BlockError);
  // Rendering uses the spec text.
  auto ok = library_.call("double %n", {blocks::Input(Value(5))});
  EXPECT_EQ(registry_.render(*ok), "double (5)");
}

}  // namespace
}  // namespace psnap::vm
