// The counting for-loop: `for i = a to b` (the source shape of Listing
// 5's generated C loop), including scoping, bounds, and codegen parity.
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "codegen/toolchain.hpp"
#include "codegen/translator.hpp"
#include "sched/thread_manager.hpp"
#include "support/strings.hpp"
#include "vm/process.hpp"

namespace psnap::vm {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::Value;

class ForLoopTest : public ::testing::Test {
 protected:
  ForLoopTest() : prims_(PrimitiveTable::standard()) {}

  double runSum(blocks::ScriptPtr script, const char* resultVar = "sum") {
    sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
    auto env = Environment::make();
    env->declare(resultVar, Value(0));
    auto handle = tm.spawnScript(std::move(script), env);
    tm.runUntilIdle();
    EXPECT_FALSE(handle.status->errored) << handle.status->error;
    return env->get(resultVar).asNumber();
  }

  PrimitiveTable prims_;
};

TEST_F(ForLoopTest, SumsTheRange) {
  EXPECT_EQ(runSum(scriptOf({forLoop(
                "i", 1, 10, scriptOf({changeVar("sum", getVar("i"))}))})),
            55);
}

TEST_F(ForLoopTest, SingleIteration) {
  EXPECT_EQ(runSum(scriptOf({forLoop(
                "i", 5, 5, scriptOf({changeVar("sum", getVar("i"))}))})),
            5);
}

TEST_F(ForLoopTest, EmptyRangeSkipsBody) {
  EXPECT_EQ(runSum(scriptOf({forLoop(
                "i", 5, 1, scriptOf({changeVar("sum", 100)}))})),
            0);
}

TEST_F(ForLoopTest, NegativeBounds) {
  EXPECT_EQ(runSum(scriptOf({forLoop(
                "i", -3, 3, scriptOf({changeVar("sum", getVar("i"))}))})),
            0);
}

TEST_F(ForLoopTest, LoopVariableScopedToLoop) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  tm.spawnScript(scriptOf({forLoop("i", 1, 3, scriptOf({}))}), env);
  tm.runUntilIdle();
  EXPECT_FALSE(env->isDeclared("i"));
}

TEST_F(ForLoopTest, NestedLoops) {
  EXPECT_EQ(runSum(scriptOf({forLoop(
                "i", 1, 3,
                scriptOf({forLoop("j", 1, 4,
                                  scriptOf({changeVar("sum", 1)}))}))})),
            12);
}

TEST_F(ForLoopTest, YieldsBetweenIterations) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("sum", Value(0));
  tm.spawnScript(scriptOf({forLoop(
                     "i", 1, 8, scriptOf({changeVar("sum", 1)}))}),
                 env);
  EXPECT_EQ(tm.runUntilIdle(), 8u);  // one iteration per frame
}

TEST_F(ForLoopTest, BoundsEvaluatedOnce) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("sum", Value(0));
  env->declare("limit", Value(3));
  tm.spawnScript(scriptOf({forLoop("i", 1, getVar("limit"),
                                   scriptOf({setVar("limit", 100),
                                             changeVar("sum", 1)}))}),
                 env);
  tm.runUntilIdle();
  EXPECT_EQ(env->get("sum").asNumber(), 3);
}

TEST_F(ForLoopTest, CodegenTemplatesAllTargets) {
  auto loop = forLoop("i", 1, 5, scriptOf({say(getVar("i"))}));
  codegen::Translator c(codegen::CodeMapping::c());
  EXPECT_EQ(c.mappedCode(*loop),
            "for (int i = (int)(1); i <= (int)(5); i++) {\n"
            "    printf(\"%g\\n\", (double)(i));\n}");
  codegen::Translator py(codegen::CodeMapping::python());
  EXPECT_EQ(py.mappedCode(*loop),
            "for i in range(int(1), int(5) + 1):\n    print(i)");
}

TEST_F(ForLoopTest, GeneratedCMatchesInterpreter) {
  if (!codegen::Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  auto loop = forLoop("i", 1, 5, scriptOf({say(getVar("i"))}));
  codegen::Translator c(codegen::CodeMapping::c());
  codegen::SourceSet sources;
  sources["main.c"] = "#include <stdio.h>\nint main() {\n" +
                      strings::indent(c.mappedCode(*loop), 4) +
                      "\n    return 0;\n}\n";
  codegen::Toolchain tc;
  auto run = tc.compileAndRun(sources, "forloop", false);
  EXPECT_EQ(run.output, "1\n2\n3\n4\n5\n");

  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  tm.spawnScript(scriptOf({loop}), Environment::make());
  tm.runUntilIdle();
  auto log = tm.collectSayLog();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log.front(), "1");
  EXPECT_EQ(log.back(), "5");
}

}  // namespace
}  // namespace psnap::vm
