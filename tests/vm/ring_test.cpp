// First-class procedure (ring) semantics: implicit empty-slot parameters,
// named formals, lexical capture, report unwinding, command rings.
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "support/error.hpp"
#include "vm/process.hpp"

namespace psnap::vm {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::EnvPtr;
using blocks::Value;

class RingTest : public ::testing::Test {
 protected:
  Value eval(blocks::BlockPtr expr, EnvPtr env = nullptr) {
    Process p(&BlockRegistry::standard(), &prims_, &host_);
    p.startExpression(std::move(expr), env ? env : Environment::make());
    return p.runToCompletion();
  }

  PrimitiveTable prims_ = PrimitiveTable::standard();
  NullHost host_;
};

TEST_F(RingTest, CallWithImplicitParameter) {
  // call ((  ) * 10) with inputs (7) → 70
  EXPECT_EQ(eval(callRing(ring(product(empty(), 10)), {In(7)})).asNumber(),
            70);
}

TEST_F(RingTest, TwoBlanksGetPositionalArgs) {
  EXPECT_EQ(
      eval(callRing(ring(difference(empty(), empty())), {In(10), In(3)}))
          .asNumber(),
      7);
}

TEST_F(RingTest, SingleArgFillsEveryBlank) {
  // Snap!: one argument fills all blanks.
  EXPECT_EQ(eval(callRing(ring(product(empty(), empty())), {In(6)}))
                .asNumber(),
            36);
}

TEST_F(RingTest, NamedFormals) {
  auto r = ring(difference(getVar("a"), getVar("b")), {"a", "b"});
  EXPECT_EQ(eval(callRing(r, {In(10), In(4)})).asNumber(), 6);
}

TEST_F(RingTest, MissingFormalArgIsNothing) {
  auto r = ring(sum(getVar("a"), 0), {"a", "b"});
  EXPECT_EQ(eval(callRing(r, {In(5)})).asNumber(), 5);
}

TEST_F(RingTest, EmptyRingIsIdentity) {
  EXPECT_EQ(eval(callRing(ring(empty()), {In("pass")})).asText(), "pass");
}

TEST_F(RingTest, LexicalCapture) {
  // The ring reads `base` from the environment where it was created.
  auto env = Environment::make();
  env->declare("base", Value(100));
  EXPECT_EQ(
      eval(callRing(ring(sum(getVar("base"), empty())), {In(1)}), env)
          .asNumber(),
      101);
}

TEST_F(RingTest, NestedRingCalls) {
  // map (call ((  ) * 2) with (  )) over (1 2 3) — a ring calling a ring.
  auto inner = ring(product(empty(), 2));
  auto outer = ring(callRing(inner, {In(empty())}));
  EXPECT_EQ(eval(mapOver(outer, listOf({1, 2, 3}))).asList()->display(),
            "[2, 4, 6]");
}

TEST_F(RingTest, CommandRingRunsScript) {
  auto env = Environment::make();
  env->declare("log", Value(blocks::List::make()));
  auto body = scriptOf({addToList(getVar("x"), getVar("log"))});
  Process p(&BlockRegistry::standard(), &prims_, &host_);
  p.startScript(
      scriptOf({runRing(ringScript(body, {"x"}), {In("hello")})}), env);
  p.runToCompletion();
  EXPECT_EQ(env->get("log").asList()->display(), "[hello]");
}

TEST_F(RingTest, CommandRingReportsValueThroughRun) {
  // report inside a command ring unwinds only the ring call.
  auto env = Environment::make();
  env->declare("after", Value(0));
  auto body = scriptOf({report(42)});
  Process p(&BlockRegistry::standard(), &prims_, &host_);
  p.startScript(scriptOf({runRing(ringScript(body)),
                          setVar("after", 1)}),
                env);
  p.runToCompletion();
  EXPECT_EQ(env->get("after").asNumber(), 1);
}

TEST_F(RingTest, ReporterRingWithReportBlockViaEvaluate) {
  auto body = scriptOf({doIfElse(greaterThan(getVar("x"), 0),
                                 scriptOf({report("positive")}),
                                 scriptOf({report("non-positive")}))});
  auto r = ringScript(body, {"x"});
  EXPECT_EQ(eval(callRing(r, {In(5)})).asText(), "positive");
  EXPECT_EQ(eval(callRing(r, {In(-5)})).asText(), "non-positive");
}

TEST_F(RingTest, RingsAreFirstClassValues) {
  auto env = Environment::make();
  env->declare("f", Value());
  Process p(&BlockRegistry::standard(), &prims_, &host_);
  p.startScript(scriptOf({setVar("f", ring(sum(empty(), 1))),
                          setVar("result",
                                 callRing(getVar("f"), {In(41)}))}),
                env);
  p.runToCompletion();
  EXPECT_EQ(env->get("result").asNumber(), 42);
}

TEST_F(RingTest, RingsComposeWithHofs) {
  auto env = Environment::make();
  env->declare("makeAdder", Value());
  // keep(>2) then map(*10): nested HOF calls through rings.
  Value v = eval(mapOver(ring(product(empty(), 10)),
                         keepFrom(ring(greaterThan(empty(), 2)),
                                  listOf({1, 2, 3, 4}))),
                 env);
  EXPECT_EQ(v.asList()->display(), "[30, 40]");
}

TEST_F(RingTest, EmptySlotOutsideRingErrors) {
  Process p(&BlockRegistry::standard(), &prims_, &host_);
  p.startExpression(sum(empty(), 1), Environment::make());
  EXPECT_THROW(p.runToCompletion(), Error);
  EXPECT_TRUE(p.errored());
}

TEST_F(RingTest, CallingNonRingErrors) {
  EXPECT_THROW(eval(callRing(In(5), {In(1)})), Error);
}

TEST_F(RingTest, EvaluateCommandRingReportsNothing) {
  auto body = scriptOf({});
  Value v = eval(callRing(ringScript(body), {}));
  EXPECT_TRUE(v.isNothing());
}

}  // namespace
}  // namespace psnap::vm
