// Expression-evaluation tests for the interpreter: operators, lists,
// variables, and the sequential map of paper Fig. 4.
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "support/error.hpp"
#include "vm/process.hpp"

namespace psnap::vm {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::EnvPtr;
using blocks::Value;

class EvalTest : public ::testing::Test {
 protected:
  Value eval(blocks::BlockPtr expr, EnvPtr env = nullptr) {
    Process p(&BlockRegistry::standard(), &prims_, &host_);
    p.startExpression(std::move(expr), env ? env : Environment::make());
    return p.runToCompletion();
  }

  Process runScript(blocks::ScriptPtr script, EnvPtr env) {
    Process p(&BlockRegistry::standard(), &prims_, &host_);
    p.startScript(std::move(script), std::move(env));
    p.runToCompletion();
    return p;
  }

  PrimitiveTable prims_ = PrimitiveTable::standard();
  NullHost host_;
};

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(eval(sum(3, 4)).asNumber(), 7);
  EXPECT_EQ(eval(difference(3, 4)).asNumber(), -1);
  EXPECT_EQ(eval(product(6, 7)).asNumber(), 42);
  EXPECT_EQ(eval(quotient(7, 2)).asNumber(), 3.5);
  EXPECT_EQ(eval(modulus(7, 3)).asNumber(), 1);
  EXPECT_EQ(eval(modulus(-1, 3)).asNumber(), 2);  // sign of divisor
  EXPECT_EQ(eval(power(2, 10)).asNumber(), 1024);
  EXPECT_EQ(eval(round_(2.5)).asNumber(), 3);
}

TEST_F(EvalTest, NestedExpressions) {
  EXPECT_EQ(eval(sum(product(2, 3), quotient(10, 5))).asNumber(), 8);
}

TEST_F(EvalTest, TextCoercionInArithmetic) {
  EXPECT_EQ(eval(sum("3", "4")).asNumber(), 7);
}

TEST_F(EvalTest, DivisionByZeroErrors) {
  EXPECT_THROW(eval(quotient(1, 0)), Error);
}

TEST_F(EvalTest, Monadic) {
  EXPECT_EQ(eval(monadic("sqrt", 49)).asNumber(), 7);
  EXPECT_EQ(eval(monadic("abs", -5)).asNumber(), 5);
  EXPECT_EQ(eval(monadic("floor", 2.9)).asNumber(), 2);
  EXPECT_NEAR(eval(monadic("sin", 90)).asNumber(), 1.0, 1e-12);
  EXPECT_THROW(eval(monadic("sqrt", -1)), Error);
  EXPECT_THROW(eval(monadic("nope", 1)), Error);
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(eval(equals("30", 30)).asBoolean());
  EXPECT_TRUE(eval(lessThan(2, 10)).asBoolean());
  EXPECT_FALSE(eval(lessThan("10", "9")).asBoolean());  // numeric compare
  EXPECT_TRUE(eval(greaterThan("b", "A")).asBoolean());
  EXPECT_TRUE(eval(and_(true, true)).asBoolean());
  EXPECT_FALSE(eval(and_(true, false)).asBoolean());
  EXPECT_TRUE(eval(or_(false, true)).asBoolean());
  EXPECT_TRUE(eval(not_(false)).asBoolean());
}

TEST_F(EvalTest, TextOps) {
  EXPECT_EQ(eval(join({In("par"), In("allel")})).asText(), "parallel");
  EXPECT_EQ(eval(letter(2, "snap")).asText(), "n");
  EXPECT_EQ(eval(letter(9, "snap")).asText(), "");
  EXPECT_EQ(eval(textLength("snap!")).asNumber(), 5);
}

TEST_F(EvalTest, SplitWords) {
  Value v = eval(splitText("the quick brown", "whitespace"));
  ASSERT_EQ(v.asList()->length(), 3u);
  EXPECT_EQ(v.asList()->item(2).asText(), "quick");
}

TEST_F(EvalTest, ListConstruction) {
  Value v = eval(listOf({3, 7, 8}));
  EXPECT_EQ(v.asList()->display(), "[3, 7, 8]");
  EXPECT_EQ(eval(lengthOf(listOf({1, 2}))).asNumber(), 2);
  EXPECT_EQ(eval(itemOf(2, listOf({"a", "b"}))).asText(), "b");
  EXPECT_TRUE(eval(contains(listOf({1, 2}), "2")).asBoolean());
  EXPECT_EQ(eval(indexOf("b", listOf({"a", "b"}))).asNumber(), 2);
  EXPECT_EQ(eval(indexOf("z", listOf({"a"}))).asNumber(), 0);
}

TEST_F(EvalTest, NumbersRange) {
  EXPECT_EQ(eval(numbersFromTo(1, 5)).asList()->length(), 5u);
  EXPECT_EQ(eval(numbersFromTo(5, 1)).asList()->item(1).asNumber(), 5);
}

TEST_F(EvalTest, SortedMixed) {
  Value v = eval(sorted(listOf({3, 1, 2})));
  EXPECT_EQ(v.asList()->display(), "[1, 2, 3]");
  Value t = eval(sorted(listOf({"pear", "Apple", "banana"})));
  EXPECT_EQ(t.asList()->item(1).asText(), "Apple");
}

// Paper Fig. 4: map (( ) * 10) over (3 7 8) → (30 70 80).
TEST_F(EvalTest, SequentialMapTimesTen) {
  Value v = eval(mapOver(ring(product(empty(), 10)), listOf({3, 7, 8})));
  EXPECT_EQ(v.asList()->display(), "[30, 70, 80]");
}

TEST_F(EvalTest, MapOverEmptyList) {
  Value v = eval(mapOver(ring(product(empty(), 10)), listOf({})));
  EXPECT_TRUE(v.asList()->empty());
}

TEST_F(EvalTest, KeepFiltersWithPredicate) {
  Value v = eval(keepFrom(ring(greaterThan(empty(), 2)),
                          listOf({1, 2, 3, 4})));
  EXPECT_EQ(v.asList()->display(), "[3, 4]");
}

TEST_F(EvalTest, CombineFoldsLeft) {
  Value v = eval(combineUsing(listOf({1, 2, 3, 4}),
                              ring(sum(empty(), empty()))));
  EXPECT_EQ(v.asNumber(), 10);
  EXPECT_EQ(eval(combineUsing(listOf({}), ring(sum(empty(), empty()))))
                .asNumber(),
            0);
  EXPECT_EQ(eval(combineUsing(listOf({9}), ring(sum(empty(), empty()))))
                .asNumber(),
            9);
}

TEST_F(EvalTest, VariablesInScripts) {
  auto env = Environment::make();
  auto p = runScript(scriptOf({
                         declareVars({"x"}),
                         setVar("x", 5),
                         changeVar("x", 2),
                         say(getVar("x")),
                     }),
                     env);
  ASSERT_EQ(p.sayLog().size(), 1u);
  EXPECT_EQ(p.sayLog()[0], "7");
}

TEST_F(EvalTest, ListMutationBlocks) {
  auto env = Environment::make();
  env->declare("l", Value(blocks::List::make()));
  runScript(scriptOf({
                addToList(1, getVar("l")),
                addToList(2, getVar("l")),
                insertInList(0, 1, getVar("l")),
                replaceInList(2, getVar("l"), 99),
                deleteOfList(3, getVar("l")),
            }),
            env);
  EXPECT_EQ(env->get("l").asList()->display(), "[0, 99]");
}

TEST_F(EvalTest, IdentityAndIsA) {
  EXPECT_EQ(eval(identity("x")).asText(), "x");
  EXPECT_TRUE(eval(isA(listOf({}), "list")).asBoolean());
  EXPECT_TRUE(eval(isA(1, "number")).asBoolean());
  EXPECT_FALSE(eval(isA("a", "number")).asBoolean());
}

TEST_F(EvalTest, ReporterIfElse) {
  EXPECT_EQ(eval(ifElseReporter(greaterThan(3, 2), "yes", "no")).asText(),
            "yes");
}

TEST_F(EvalTest, UnknownOpcodeFailsProcess) {
  Process p(&BlockRegistry::standard(), &prims_, &host_);
  p.startExpression(blk("reportSum", {In(1), In(2)}), Environment::make());
  EXPECT_NO_THROW(p.runToCompletion());
  Process q(&BlockRegistry::standard(), &prims_, &host_);
  q.startExpression(blocks::Block::make("noSuchOp"), Environment::make());
  EXPECT_THROW(q.runToCompletion(), Error);
  EXPECT_TRUE(q.errored());
}

TEST_F(EvalTest, MaxWorkersComesFromHost) {
  EXPECT_EQ(eval(maxWorkers()).asNumber(), 4);  // NullHost reports 4
}

TEST_F(EvalTest, SayLogCapturesDisplayForm) {
  auto p = runScript(scriptOf({say(listOf({1, 2}))}), Environment::make());
  ASSERT_EQ(p.sayLog().size(), 1u);
  EXPECT_EQ(p.sayLog()[0], "[1, 2]");
}

}  // namespace
}  // namespace psnap::vm
