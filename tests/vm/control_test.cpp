// Control-flow and scheduling-behaviour tests: loops yield per iteration,
// waits respect the virtual clock, report unwinds call boundaries.
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "support/error.hpp"
#include "vm/process.hpp"

namespace psnap::vm {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::EnvPtr;
using blocks::Value;

class ControlTest : public ::testing::Test {
 protected:
  Process makeProcess() {
    return Process(&BlockRegistry::standard(), &prims_, &host_);
  }

  /// Run like the scheduler does: one slice per "frame", advancing the
  /// virtual clock by 1 between slices. Returns the number of frames used.
  int runFrames(Process& p, int maxFrames = 1000) {
    int frames = 0;
    while (p.runnable() && frames < maxFrames) {
      p.runSlice();
      ++frames;
      host_.advance(1.0);
    }
    return frames;
  }

  PrimitiveTable prims_ = PrimitiveTable::standard();
  NullHost host_;
};

TEST_F(ControlTest, RepeatRunsBodyNTimes) {
  auto env = Environment::make();
  env->declare("n", Value(0));
  auto p = makeProcess();
  p.startScript(scriptOf({repeat(5, scriptOf({changeVar("n", 1)}))}), env);
  runFrames(p);
  EXPECT_EQ(env->get("n").asNumber(), 5);
}

TEST_F(ControlTest, RepeatYieldsOncePerIteration) {
  auto env = Environment::make();
  auto p = makeProcess();
  p.startScript(scriptOf({repeat(5, scriptOf({}))}), env);
  int frames = runFrames(p);
  // 5 iterations, one yield each; the final frame finishes the block.
  EXPECT_GE(frames, 5);
  EXPECT_LE(frames, 6);
}

TEST_F(ControlTest, RepeatZeroOrNegativeSkipsBody) {
  auto env = Environment::make();
  env->declare("n", Value(0));
  auto p = makeProcess();
  p.startScript(scriptOf({repeat(0, scriptOf({changeVar("n", 1)})),
                          repeat(-3, scriptOf({changeVar("n", 1)}))}),
                env);
  runFrames(p);
  EXPECT_EQ(env->get("n").asNumber(), 0);
}

TEST_F(ControlTest, RepeatCountEvaluatedOnce) {
  // Mutating the counter variable inside the loop must not change the trip
  // count (Snap! evaluates the count once).
  auto env = Environment::make();
  env->declare("count", Value(3));
  env->declare("n", Value(0));
  auto p = makeProcess();
  p.startScript(scriptOf({repeat(getVar("count"),
                                 scriptOf({setVar("count", 100),
                                           changeVar("n", 1)}))}),
                env);
  runFrames(p);
  EXPECT_EQ(env->get("n").asNumber(), 3);
}

TEST_F(ControlTest, ForeverRunsUntilStopped) {
  auto env = Environment::make();
  env->declare("n", Value(0));
  auto p = makeProcess();
  p.startScript(scriptOf({forever(scriptOf({changeVar("n", 1)}))}), env);
  for (int i = 0; i < 10; ++i) {
    p.runSlice();
    host_.advance(1.0);
  }
  EXPECT_TRUE(p.runnable());
  EXPECT_EQ(env->get("n").asNumber(), 10);  // one iteration per frame
  p.terminate();
  EXPECT_EQ(p.state(), ProcessState::Terminated);
}

TEST_F(ControlTest, IfBranches) {
  auto env = Environment::make();
  env->declare("n", Value(0));
  auto p = makeProcess();
  p.startScript(scriptOf({
                    doIf(greaterThan(3, 2), scriptOf({changeVar("n", 1)})),
                    doIf(greaterThan(2, 3), scriptOf({changeVar("n", 10)})),
                    doIfElse(equals(1, 2), scriptOf({changeVar("n", 100)}),
                             scriptOf({changeVar("n", 1000)})),
                }),
                env);
  runFrames(p);
  EXPECT_EQ(env->get("n").asNumber(), 1001);
}

TEST_F(ControlTest, UntilReevaluatesCondition) {
  auto env = Environment::make();
  env->declare("n", Value(0));
  auto p = makeProcess();
  p.startScript(scriptOf({repeatUntil(equals(getVar("n"), 4),
                                      scriptOf({changeVar("n", 1)}))}),
                env);
  runFrames(p);
  EXPECT_EQ(env->get("n").asNumber(), 4);
}

TEST_F(ControlTest, UntilTrueImmediatelySkipsBody) {
  auto env = Environment::make();
  env->declare("n", Value(0));
  auto p = makeProcess();
  p.startScript(scriptOf({repeatUntil(equals(0, 0),
                                      scriptOf({changeVar("n", 1)}))}),
                env);
  runFrames(p);
  EXPECT_EQ(env->get("n").asNumber(), 0);
}

TEST_F(ControlTest, WaitConsumesVirtualTime) {
  auto env = Environment::make();
  auto p = makeProcess();
  p.startScript(scriptOf({wait(3)}), env);
  int frames = runFrames(p);
  // Frame 1 arms the deadline (now+3) and yields; the process completes on
  // the frame where the clock has advanced past it.
  EXPECT_EQ(frames, 4);
}

TEST_F(ControlTest, WaitZeroStillYieldsOnce) {
  auto env = Environment::make();
  auto p = makeProcess();
  p.startScript(scriptOf({wait(0)}), env);
  int frames = runFrames(p);
  EXPECT_EQ(frames, 2);
}

TEST_F(ControlTest, WaitUntilPollsEachFrame) {
  auto env = Environment::make();
  auto p = makeProcess();
  p.startScript(scriptOf({waitUntil(greaterThan(timer(), 4.5)), say("go")}),
                env);
  host_.resetTimer();
  runFrames(p);
  ASSERT_EQ(p.sayLog().size(), 1u);
}

TEST_F(ControlTest, BusyWorkOccupiesExactFrames) {
  auto env = Environment::make();
  auto p = makeProcess();
  p.startScript(scriptOf({busyWork(3)}), env);
  int frames = runFrames(p);
  EXPECT_EQ(frames, 3);  // exactly 3 working frames, no trailing frame
}

TEST_F(ControlTest, ForEachBindsEachItem) {
  auto env = Environment::make();
  env->declare("total", Value(0));
  auto p = makeProcess();
  p.startScript(scriptOf({forEach("item", listOf({1, 2, 3}),
                                  scriptOf({changeVar("total",
                                                      getVar("item"))}))}),
                env);
  runFrames(p);
  EXPECT_EQ(env->get("total").asNumber(), 6);
}

TEST_F(ControlTest, ForEachVariableScopedToIteration) {
  auto env = Environment::make();
  auto p = makeProcess();
  p.startScript(scriptOf({forEach("item", listOf({1}), scriptOf({}))}),
                env);
  runFrames(p);
  EXPECT_FALSE(env->isDeclared("item"));
}

TEST_F(ControlTest, BroadcastReachesHost) {
  auto p = makeProcess();
  p.startScript(scriptOf({broadcast("ding")}), Environment::make());
  runFrames(p);
  ASSERT_EQ(host_.messages().size(), 1u);
  EXPECT_EQ(host_.messages()[0], "ding");
}

TEST_F(ControlTest, BroadcastAndWaitCompletesWithNullHost) {
  auto p = makeProcess();
  p.startScript(scriptOf({broadcastAndWait("ding"), say("after")}),
                Environment::make());
  runFrames(p);
  EXPECT_EQ(p.sayLog().size(), 1u);
}

TEST_F(ControlTest, StopThisEndsScript) {
  auto env = Environment::make();
  env->declare("n", Value(0));
  auto p = makeProcess();
  p.startScript(scriptOf({changeVar("n", 1), stopThis(),
                          changeVar("n", 100)}),
                env);
  runFrames(p);
  EXPECT_EQ(env->get("n").asNumber(), 1);
}

TEST_F(ControlTest, SayForHoldsBubbleForDuration) {
  auto env = Environment::make();
  auto p = makeProcess();
  p.startScript(scriptOf({sayFor("hi", 2), say("done")}), env);
  int frames = runFrames(p);
  EXPECT_GE(frames, 3);
  ASSERT_EQ(p.sayLog().size(), 2u);
  EXPECT_EQ(p.sayLog()[0], "hi");
  EXPECT_EQ(p.sayLog()[1], "done");
}

TEST_F(ControlTest, ErrorInsideLoopFailsProcess) {
  auto p = makeProcess();
  p.startScript(scriptOf({repeat(3, scriptOf({say(quotient(1, 0))}))}),
                Environment::make());
  while (p.runnable()) p.runSlice();
  EXPECT_TRUE(p.errored());
  EXPECT_NE(p.error().find("division by zero"), std::string::npos);
}

TEST_F(ControlTest, NestedLoopsCountCorrectly) {
  auto env = Environment::make();
  env->declare("n", Value(0));
  auto p = makeProcess();
  p.startScript(scriptOf({repeat(3, scriptOf({repeat(
                             4, scriptOf({changeVar("n", 1)}))}))}),
                env);
  runFrames(p);
  EXPECT_EQ(env->get("n").asNumber(), 12);
}

TEST_F(ControlTest, TimerAndReset) {
  auto env = Environment::make();
  auto p = makeProcess();
  host_.advance(5.0);
  p.startScript(scriptOf({resetTimer(), wait(2), say(timer())}), env);
  runFrames(p);
  ASSERT_EQ(p.sayLog().size(), 1u);
  EXPECT_GE(Value(p.sayLog()[0]).asNumber(), 2.0);
}

}  // namespace
}  // namespace psnap::vm
