// Supervision unit suite: checkpoint round-trips and pruning, the
// content-hash skip, restart-from-checkpoint with backoff and budget
// exhaustion, restart eligibility, drain + cold restart, and the
// supervision accounting — all deterministic (the chaos half lives in
// supervise_chaos_test.cpp).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "blocks/builder.hpp"
#include "scenarios/serve.hpp"
#include "serve/session_server.hpp"
#include "serve/supervise.hpp"
#include "support/fault.hpp"

namespace psnap::serve {
namespace {

class SuperviseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("psnap-supervise-" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ServerConfig supervisedConfig() const {
    ServerConfig config;
    config.checkpointDir = dir_.string();
    config.checkpointIntervalFrames = 2;
    config.restartPolicy.maxRestarts = 3;
    config.restartPolicy.backoffBaseFrames = 1;
    config.restartPolicy.backoffCapFrames = 8;
    return config;
  }

  size_t filesInDir() const {
    size_t count = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      (void)entry;
      ++count;
    }
    return count;
  }

  std::filesystem::path dir_;
};

SessionRecord recordOf(const SessionServer& server, uint64_t id) {
  for (const SessionRecord& record : server.records()) {
    if (record.id == id) return record;
  }
  ADD_FAILURE() << "no record for session " << id;
  return {};
}

TEST(SupervisePolicy, BackoffIsExponentialAndSaturates) {
  RestartPolicy policy;
  policy.backoffBaseFrames = 2;
  policy.backoffCapFrames = 64;
  EXPECT_EQ(policy.backoffFrames(0), 0u);
  EXPECT_EQ(policy.backoffFrames(1), 2u);
  EXPECT_EQ(policy.backoffFrames(2), 4u);
  EXPECT_EQ(policy.backoffFrames(5), 32u);
  EXPECT_EQ(policy.backoffFrames(6), 64u);
  EXPECT_EQ(policy.backoffFrames(7), 64u);   // cap holds
  EXPECT_EQ(policy.backoffFrames(200), 64u); // and survives shift overflow
}

TEST_F(SuperviseTest, CheckpointRoundTripsMetaAndProject) {
  project::Project project;
  project.name = "round-trip";
  project.globals.emplace_back("answer", blocks::Value(42.0));
  CheckpointMeta meta;
  meta.sessionId = 7;
  meta.seq = 3;
  meta.label = "ticker:12";
  meta.framesRun = 29;
  meta.restarts = 2;
  meta.clock = {29, 1.25, 0.5};
  writeCheckpoint(dir_.string(), meta, project);

  const auto loaded = loadNewestCheckpoint(dir_.string(), 7);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.sessionId, 7u);
  EXPECT_EQ(loaded->meta.seq, 3u);
  EXPECT_EQ(loaded->meta.label, "ticker:12");
  EXPECT_EQ(loaded->meta.framesRun, 29u);
  EXPECT_EQ(loaded->meta.restarts, 2u);
  EXPECT_EQ(loaded->meta.clock.frame, 29u);
  EXPECT_DOUBLE_EQ(loaded->meta.clock.now, 1.25);
  EXPECT_DOUBLE_EQ(loaded->meta.clock.timerStart, 0.5);
  // The meta record travels as a reserved global and is stripped on load.
  ASSERT_EQ(loaded->project.globals.size(), 1u);
  EXPECT_EQ(loaded->project.globals[0].first, "answer");
  EXPECT_EQ(loaded->project.globals[0].second.asNumber(), 42.0);

  EXPECT_EQ(removeCheckpoints(dir_.string(), 7), 1u);
  EXPECT_FALSE(loadNewestCheckpoint(dir_.string(), 7).has_value());
}

TEST_F(SuperviseTest, WriterPrunesPastTheKeepHorizon) {
  project::Project project;
  CheckpointMeta meta;
  meta.sessionId = 4;
  for (uint64_t seq = 0; seq < 5; ++seq) {
    meta.seq = seq;
    meta.framesRun = seq * 10;
    writeCheckpoint(dir_.string(), meta, project);
  }
  const auto refs = listCheckpoints(dir_.string(), 4);
  ASSERT_EQ(refs.size(), kKeepGenerations);
  EXPECT_EQ(refs[0].seq, 4u);  // newest first
  EXPECT_EQ(refs[1].seq, 3u);
  const auto loaded = loadNewestCheckpoint(dir_.string(), 4);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.framesRun, 40u);
}

TEST_F(SuperviseTest, FingerprintSkipsUnchangedState) {
  // An idempotent workload captures the same project every interval:
  // exactly one generation is ever written, the rest are hash-skipped.
  SessionServer server(supervisedConfig());
  const uint64_t id = server.admit(scenarios::serveConcessionWorkload(2));
  server.runUntilQuiet(100000);
  const SessionRecord record = recordOf(server, id);
  EXPECT_EQ(record.state, SessionState::Completed);
  EXPECT_TRUE(record.outputOk);
  EXPECT_EQ(record.output, "Cup1=full;Cup2=full;Pitcher=pitcher");
  EXPECT_LE(record.checkpointsWritten, 1u);
  EXPECT_EQ(server.metrics().checkpointsSkipped, record.checkpointsSkipped);
  // Terminal completion removed the session's checkpoints.
  EXPECT_TRUE(listCheckpoints(dir_.string(), id).empty());
}

TEST_F(SuperviseTest, TickerWritesProgressCheckpoints) {
  SessionServer server(supervisedConfig());
  const uint64_t id = server.admit(scenarios::serveTickerWorkload(16));
  server.runUntilQuiet(100000);
  const SessionRecord record = recordOf(server, id);
  EXPECT_EQ(record.state, SessionState::Completed);
  EXPECT_TRUE(record.outputOk);
  EXPECT_EQ(record.output, "1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16");
  // The list grows every frame, so intervals never hash-skip; at least
  // one pooled write settles (writes are async — frames never block on
  // disk, so a slow disk legitimately coalesces the rest).
  EXPECT_GE(record.checkpointsWritten, 1u);
  EXPECT_EQ(record.checkpointsSkipped, 0u);
  EXPECT_TRUE(listCheckpoints(dir_.string(), id).empty());
}

TEST_F(SuperviseTest, CheckpointCarriesTheMidRunPrefix) {
  SessionServer server(supervisedConfig());
  const uint64_t id = server.admit(scenarios::serveTickerWorkload(16));
  for (int f = 0; f < 9; ++f) server.runFrame();
  ASSERT_EQ(server.drain(), 1u);
  const auto loaded = loadNewestCheckpoint(dir_.string(), id);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.label, "ticker:16");
  EXPECT_GE(loaded->meta.framesRun, 1u);
  // The snapshot holds exactly the prefix the session had built: the
  // mid-run state, not the input and not the final answer.
  const blocks::Value* ticks = nullptr;
  for (const auto& [name, value] : loaded->project.globals) {
    if (name == "ticks") ticks = &value;
  }
  ASSERT_NE(ticks, nullptr);
  ASSERT_TRUE(ticks->isList());
  const size_t length = ticks->asList()->length();
  EXPECT_GE(length, 1u);
  EXPECT_LT(length, 16u);
  for (size_t i = 1; i <= length; ++i) {
    EXPECT_EQ(ticks->asList()->item(i).asNumber(), double(i));
  }
}

TEST_F(SuperviseTest, UnsupervisedServerNeverTouchesDisk) {
  ServerConfig config;  // checkpointDir empty: supervision off
  SessionServer server(config);
  const uint64_t id = server.admit(scenarios::serveTickerWorkload(12));
  server.runUntilQuiet(100000);
  EXPECT_EQ(recordOf(server, id).checkpointsWritten, 0u);
  EXPECT_EQ(server.metrics().checkpointsWritten, 0u);
  EXPECT_EQ(filesInDir(), 0u);
}

TEST_F(SuperviseTest, SubstrateFailureRestartsFromCheckpoint) {
  SessionServer server(supervisedConfig());
  const uint64_t victim = server.admit(scenarios::serveTickerWorkload(24));
  const uint64_t clean = server.admit(scenarios::serveConcessionWorkload(2));
  // Let the ticker make (and checkpoint) real progress…
  for (int f = 0; f < 8; ++f) server.runFrame();
  {
    // …then kill its next frame slice with a targeted substrate fault.
    fault::Config config;
    config.rateNumerator = 1;
    config.rateDenominator = 1;
    config.pointMask = fault::maskOf(fault::Point::TenantStall);
    config.targetTag = victim;
    fault::ScopedFault armed(config);
    server.runFrame();
  }
  // The session is parked for backoff, not finished: still reported
  // Active, and the server is not quiet.
  EXPECT_EQ(server.pendingRestarts(), 1u);
  EXPECT_FALSE(server.quiet());
  EXPECT_EQ(recordOf(server, victim).state, SessionState::Active);

  server.runUntilQuiet(100000);
  const SessionRecord record = recordOf(server, victim);
  EXPECT_EQ(record.state, SessionState::Completed) << record.error;
  EXPECT_TRUE(record.outputOk);
  EXPECT_EQ(record.restarts, 1u);
  // The revived life inherited checkpointed progress.
  EXPECT_GE(record.recoveredFrames, 1u);
  EXPECT_EQ(record.output,
            "1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24");
  EXPECT_EQ(server.metrics().restarts, 1u);
  EXPECT_EQ(server.metrics().restartsExhausted, 0u);
  EXPECT_EQ(recordOf(server, clean).state, SessionState::Completed);
  EXPECT_TRUE(listCheckpoints(dir_.string(), victim).empty());
}

TEST_F(SuperviseTest, RestartBudgetExhaustsWithTypedError) {
  ServerConfig config = supervisedConfig();
  config.restartPolicy.maxRestarts = 2;
  SessionServer server(config);
  const uint64_t victim = server.admit(scenarios::serveTickerWorkload(24));
  const uint64_t clean = server.admit(scenarios::serveConcessionWorkload(2));
  {
    // Every frame slice of the victim dies, in every life: the budget
    // burns down and the session finalizes RestartsExhausted.
    fault::Config chaos;
    chaos.rateNumerator = 1;
    chaos.rateDenominator = 1;
    chaos.pointMask = fault::maskOf(fault::Point::TenantStall);
    chaos.targetTag = victim;
    fault::ScopedFault armed(chaos);
    server.runUntilQuiet(100000);
  }
  const SessionRecord record = recordOf(server, victim);
  EXPECT_EQ(record.state, SessionState::Failed);
  EXPECT_EQ(record.errorClass, ErrorClass::RestartsExhausted);
  EXPECT_NE(record.error.find("restarts exhausted"), std::string::npos)
      << record.error;
  EXPECT_EQ(record.restarts, 2u);
  EXPECT_EQ(server.metrics().restartsExhausted, 1u);
  EXPECT_EQ(server.metrics().restarts, 2u);
  // Terminal failure cleans the disk; the bystander finished untouched.
  EXPECT_TRUE(listCheckpoints(dir_.string(), victim).empty());
  EXPECT_EQ(recordOf(server, clean).state, SessionState::Completed);
}

TEST_F(SuperviseTest, UserScriptErrorsNeverRestart) {
  SessionServer server(supervisedConfig());
  SessionWorkload broken = scenarios::serveTickerWorkload(8);
  broken.label = "ticker:8";
  broken.start = [](sched::ThreadManager& tm) -> std::shared_ptr<void> {
    using namespace psnap::build;
    // A deterministic user-script IndexError: replaying it from a
    // checkpoint would reproduce it, so no restart may be attempted.
    tm.spawnExpression(itemOf(In(5.0), listOf({In(1.0)})),
                       blocks::Environment::make());
    return nullptr;
  };
  const uint64_t id = server.admit(broken);
  server.runUntilQuiet(100000);
  const SessionRecord record = recordOf(server, id);
  EXPECT_EQ(record.state, SessionState::Failed);
  EXPECT_EQ(record.errorClass, ErrorClass::Index);
  EXPECT_EQ(record.restarts, 0u);
  EXPECT_EQ(server.metrics().restarts, 0u);
}

TEST_F(SuperviseTest, DrainClosesAdmissionAndKeepsCheckpoints) {
  SessionServer server(supervisedConfig());
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < 4; ++i) {
    ids.push_back(server.admit(scenarios::serveTickerWorkload(40 + i * 8)));
  }
  for (int f = 0; f < 6; ++f) server.runFrame();
  EXPECT_EQ(server.drain(), 4u);
  EXPECT_TRUE(server.draining());
  EXPECT_TRUE(server.quiet());
  EXPECT_EQ(server.metrics().drained, 4u);
  for (uint64_t id : ids) {
    EXPECT_EQ(recordOf(server, id).state, SessionState::Drained);
    // The hand-off: every drained session left a loadable checkpoint.
    EXPECT_FALSE(listCheckpoints(dir_.string(), id).empty());
  }
  try {
    server.admit(scenarios::serveTickerWorkload(8));
    FAIL() << "admission after drain must throw";
  } catch (const SubstrateError& e) {
    EXPECT_NE(std::string(e.what()).find("draining"), std::string::npos);
  }
  EXPECT_EQ(server.metrics().rejected, 1u);
}

TEST_F(SuperviseTest, ColdRestartResumesByteIdentical) {
  // Reference: the same workloads, uninterrupted.
  std::map<uint64_t, std::string> reference;
  {
    ServerConfig config;
    SessionServer uninterrupted(config);
    std::vector<uint64_t> ids;
    for (size_t i = 0; i < 6; ++i) {
      ids.push_back(
          uninterrupted.admit(scenarios::serveMixedRecoverableWorkload(i)));
    }
    uninterrupted.runUntilQuiet(200000);
    for (uint64_t id : ids) {
      const SessionRecord record = recordOf(uninterrupted, id);
      ASSERT_EQ(record.state, SessionState::Completed) << record.label;
      reference[id] = record.output;
    }
  }
  // Interrupted: run a few frames, drain, and hand off to a successor.
  {
    SessionServer first(supervisedConfig());
    for (size_t i = 0; i < 6; ++i) {
      first.admit(scenarios::serveMixedRecoverableWorkload(i));
    }
    for (int f = 0; f < 5; ++f) first.runFrame();
    EXPECT_EQ(first.drain() + first.metrics().completed, 6u);
  }
  SessionServer successor(supervisedConfig());
  const std::vector<uint64_t> recovered =
      successor.recoverSessions(scenarios::serveRecoveryFactory);
  EXPECT_EQ(successor.metrics().recovered, recovered.size());
  EXPECT_GE(recovered.size(), 1u);
  successor.runUntilQuiet(200000);
  for (uint64_t id : recovered) {
    const SessionRecord record = recordOf(successor, id);
    EXPECT_EQ(record.state, SessionState::Completed)
        << record.label << ": " << record.error;
    EXPECT_TRUE(record.outputOk) << record.label;
    // The recovered run's output is byte-identical to the uninterrupted
    // run's.
    EXPECT_EQ(record.output, reference[id]) << record.label;
  }
  // Ids continue past the recovered ones.
  const uint64_t fresh =
      successor.admit(scenarios::serveTickerWorkload(8));
  EXPECT_GT(fresh, recovered.empty() ? 0 : recovered.back());
  successor.runUntilQuiet(200000);
}

TEST_F(SuperviseTest, RecordsCarryCumulativeStatsAcrossRestart) {
  SessionServer server(supervisedConfig());
  const uint64_t victim = server.admit(scenarios::serveTickerWorkload(20));
  for (int f = 0; f < 6; ++f) server.runFrame();
  {
    fault::Config config;
    config.rateNumerator = 1;
    config.rateDenominator = 1;
    config.pointMask = fault::maskOf(fault::Point::TenantStall);
    config.targetTag = victim;
    fault::ScopedFault armed(config);
    server.runFrame();
  }
  server.runUntilQuiet(100000);
  const SessionRecord record = recordOf(server, victim);
  EXPECT_EQ(record.state, SessionState::Completed);
  // The failed life's checkpoint accounting survives into the final
  // record (written checkpoints from life 1 plus life 2).
  EXPECT_GE(record.checkpointsWritten, 1u);
  EXPECT_EQ(record.restarts, 1u);
}

}  // namespace
}  // namespace psnap::serve
