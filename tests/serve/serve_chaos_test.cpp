// Multi-tenant chaos suite: fault injection armed against a server
// hosting several sessions at once. The isolation invariant: a fault
// aimed at (or reachable only through) one tenant degrades or fails
// *that tenant alone* — every other session completes with its exact
// fault-free output, and the shared pool stays usable afterwards.
// Test names start with "ServeChaos" so `scripts/check.sh --serve` can
// sweep them across seeds (PSNAP_CHAOS_SEED adds one) under asan + tsan.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "scenarios/serve.hpp"
#include "serve/session_server.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "workers/parallel.hpp"

namespace psnap::serve {
namespace {

using blocks::Value;

std::vector<uint64_t> chaosSeeds() {
  std::vector<uint64_t> seeds{1, 7, 42};
  if (const char* extra = std::getenv("PSNAP_CHAOS_SEED")) {
    seeds.push_back(std::strtoull(extra, nullptr, 10));
  }
  return seeds;
}

fault::Config configFor(uint64_t seed, uint32_t pointMask, uint32_t num,
                        uint32_t den, uint64_t targetTag = 0) {
  fault::Config config;
  config.seed = seed;
  config.rateNumerator = num;
  config.rateDenominator = den;
  config.pointMask = pointMask;
  config.stallMicros = 100;
  config.targetTag = targetTag;
  return config;
}

SessionRecord recordOf(const SessionServer& server, uint64_t id) {
  for (const SessionRecord& record : server.records()) {
    if (record.id == id) return record;
  }
  ADD_FAILURE() << "no record for session " << id;
  return {};
}

/// After a chaos scenario the shared pool must still run clean work.
void expectPoolUsable() {
  ASSERT_FALSE(fault::armed());
  std::vector<Value> numbers;
  for (int i = 1; i <= 16; ++i) numbers.emplace_back(i);
  workers::Parallel p(numbers, {.maxWorkers = 2});
  p.map([](const Value& v) { return Value(v.asNumber() + 1); });
  const auto& data = p.data();
  ASSERT_EQ(data.size(), 16u);
  EXPECT_EQ(data[15].asNumber(), 17);
}

/// And the server itself must still admit and complete a fresh tenant.
void expectServerUsable(SessionServer& server) {
  const uint64_t id = server.admit(scenarios::serveWordCountWorkload(16, 5));
  server.runUntilQuiet(200000);
  const SessionRecord record = recordOf(server, id);
  EXPECT_EQ(record.state, SessionState::Completed);
  EXPECT_TRUE(record.outputOk);
}

TEST(ServeChaos, AdmitFailureRejectsTypedNeverQueues) {
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SessionServer server;
    size_t caught = 0;
    std::vector<uint64_t> admitted;
    {
      fault::ScopedFault armed(configFor(
          seed, fault::maskOf(fault::Point::SessionAdmitFailure), 1, 2));
      for (size_t i = 0; i < 16; ++i) {
        try {
          admitted.push_back(
              server.admit(scenarios::serveMixedWorkload(i)));
        } catch (const SubstrateError&) {
          ++caught;  // typed rejection, nothing queued
        }
      }
    }
    EXPECT_EQ(server.metrics().rejected, caught);
    EXPECT_EQ(server.metrics().admitted, admitted.size());
    EXPECT_EQ(server.activeSessions(), admitted.size());
    // Every session that *was* admitted completes with exact output.
    server.runUntilQuiet(200000);
    for (uint64_t id : admitted) {
      const SessionRecord record = recordOf(server, id);
      EXPECT_EQ(record.state, SessionState::Completed) << record.label;
      EXPECT_TRUE(record.outputOk) << record.label;
    }
    expectServerUsable(server);
  }
  expectPoolUsable();
}

TEST(ServeChaos, TenantStallKillsOnlyTheVictim) {
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SessionServer server;
    std::vector<uint64_t> ids;
    for (size_t i = 0; i < 4; ++i) {
      ids.push_back(server.admit(scenarios::serveMixedWorkload(i)));
    }
    const uint64_t victim = ids[1];
    {
      // Rate 1/1 but targeted: only the victim's frame slice ever stalls.
      fault::ScopedFault armed(configFor(
          seed, fault::maskOf(fault::Point::TenantStall), 1, 1, victim));
      server.runUntilQuiet(200000);
    }
    const SessionRecord dead = recordOf(server, victim);
    EXPECT_EQ(dead.state, SessionState::Failed);
    EXPECT_TRUE(isSubstrateClass(dead.errorClass))
        << errorClassName(dead.errorClass);
    EXPECT_NE(dead.error.find("tenant-stall"), std::string::npos)
        << dead.error;
    for (uint64_t id : ids) {
      if (id == victim) continue;
      const SessionRecord record = recordOf(server, id);
      EXPECT_EQ(record.state, SessionState::Completed) << record.label;
      EXPECT_TRUE(record.outputOk) << record.label;
    }
    expectServerUsable(server);
  }
  expectPoolUsable();
}

TEST(ServeChaos, TaskThrowDegradesVictimOthersStayExact) {
  // Workload asymmetry as the targeting mechanism: only the victim uses
  // the worker pool (wordcount → mr::Job), every other tenant runs the
  // pure cooperative interpreter (concession), which has no injection
  // points. TaskThrow therefore can only reach the victim.
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SessionServer server;
    std::vector<uint64_t> bystanders;
    for (int i = 0; i < 3; ++i) {
      bystanders.push_back(server.admit(scenarios::serveConcessionWorkload()));
    }
    const uint64_t victim =
        server.admit(scenarios::serveWordCountWorkload(24, seed));
    {
      fault::ScopedFault armed(
          configFor(seed, fault::maskOf(fault::Point::TaskThrow), 1, 3));
      server.runUntilQuiet(200000);
    }
    const SessionRecord hit = recordOf(server, victim);
    if (hit.state == SessionState::Completed) {
      // Converged through the degradation ladder: the output is exact and
      // the handling is visible in the victim's own ledger.
      EXPECT_TRUE(hit.outputOk);
      EXPECT_GE(hit.retries + hit.downgrades, 1u);
    } else {
      EXPECT_EQ(hit.state, SessionState::Failed);
      EXPECT_TRUE(isSubstrateClass(hit.errorClass))
          << errorClassName(hit.errorClass);
    }
    for (uint64_t id : bystanders) {
      const SessionRecord record = recordOf(server, id);
      EXPECT_EQ(record.state, SessionState::Completed);
      EXPECT_TRUE(record.outputOk);
      // Per-tenant attribution: the bystanders' ledgers stay clean.
      EXPECT_EQ(record.retries, 0u);
      EXPECT_EQ(record.downgrades, 0u);
    }
    expectServerUsable(server);
  }
  expectPoolUsable();
}

TEST(ServeChaos, MixedStormConvergesOrFailsTyped) {
  // Broad, untargeted faults over a 12-tenant mixed storm: every session
  // either completes with exact output or fails with a substrate-class
  // error — never a wrong answer, and the server survives to serve more.
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SessionServer server;
    std::vector<uint64_t> ids;
    for (size_t i = 0; i < 12; ++i) {
      ids.push_back(server.admit(scenarios::serveMixedWorkload(i)));
    }
    {
      fault::ScopedFault armed(configFor(
          seed,
          fault::maskOf(fault::Point::TaskThrow) |
              fault::maskOf(fault::Point::WorkerStall) |
              fault::maskOf(fault::Point::TransferFailure),
          1, 8));
      server.runUntilQuiet(400000);
    }
    for (uint64_t id : ids) {
      const SessionRecord record = recordOf(server, id);
      if (record.state == SessionState::Completed) {
        EXPECT_TRUE(record.outputOk) << record.label;
      } else {
        EXPECT_EQ(record.state, SessionState::Failed) << record.label;
        EXPECT_TRUE(isSubstrateClass(record.errorClass))
            << record.label << ": " << record.error;
      }
    }
    EXPECT_EQ(server.metrics().completed + server.metrics().failed, 12u);
    expectServerUsable(server);
  }
  expectPoolUsable();
}

}  // namespace
}  // namespace psnap::serve
