// SessionServer unit suite: admission control, fair slicing, per-tenant
// watchdog/deadline isolation, crash containment, and shedding — all
// deterministic (fault injection lives in serve_chaos_test.cpp).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "blocks/builder.hpp"
#include "scenarios/serve.hpp"
#include "serve/session_server.hpp"
#include "support/fault.hpp"
#include "workers/stats.hpp"

namespace psnap::serve {
namespace {

using namespace psnap::build;

/// The record for `id`, which must exist.
SessionRecord recordOf(const SessionServer& server, uint64_t id) {
  for (const SessionRecord& record : server.records()) {
    if (record.id == id) return record;
  }
  ADD_FAILURE() << "no record for session " << id;
  return {};
}

TEST(SessionServer, AdmissionCapRejectsTyped) {
  ServerConfig config;
  config.maxSessions = 2;
  SessionServer server(config);
  server.admit(scenarios::serveSpinWorkload());
  server.admit(scenarios::serveSpinWorkload());
  ASSERT_EQ(server.activeSessions(), 2u);
  try {
    server.admit(scenarios::serveSpinWorkload());
    FAIL() << "over-admission must throw";
  } catch (const SubstrateError& e) {
    EXPECT_NE(std::string(e.what()).find("high-water"), std::string::npos);
  }
  EXPECT_EQ(server.metrics().rejected, 1u);
  EXPECT_EQ(server.metrics().admitted, 2u);
  // Rejection is not queued: the table still holds exactly two sessions.
  EXPECT_EQ(server.activeSessions(), 2u);
  server.cancelSession(1, "test done");
  server.cancelSession(2, "test done");
}

TEST(SessionServer, MixedSessionsCompleteAndVerify) {
  SessionServer server;
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < 9; ++i) {
    ids.push_back(server.admit(scenarios::serveMixedWorkload(i)));
  }
  server.runUntilQuiet(100000);
  EXPECT_EQ(server.metrics().completed, 9u);
  EXPECT_EQ(server.metrics().failed, 0u);
  for (uint64_t id : ids) {
    const SessionRecord record = recordOf(server, id);
    EXPECT_EQ(record.state, SessionState::Completed) << record.label;
    EXPECT_TRUE(record.outputOk) << record.label;
    EXPECT_TRUE(record.error.empty()) << record.error;
  }
}

TEST(SessionServer, RoundRobinSlicesAreFair) {
  SessionServer server;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(server.admit(scenarios::serveSpinWorkload()));
  }
  for (int f = 0; f < 20; ++f) server.runFrame();
  std::vector<uint64_t> slices;
  for (uint64_t id : ids) {
    const SessionRecord record = recordOf(server, id);
    EXPECT_EQ(record.state, SessionState::Active);
    slices.push_back(record.framesRun);
    EXPECT_EQ(record.framesRun, 20u);
  }
  EXPECT_DOUBLE_EQ(SessionServer::fairnessSpread(slices), 1.0);
  for (uint64_t id : ids) server.cancelSession(id, "test done");
  EXPECT_TRUE(server.quiet());
}

TEST(SessionServer, WatchdogCancelsOnlyTheOffender) {
  ServerConfig config;
  // Generous enough for any real workload; the spinner never finishes,
  // so it is the only session the watchdog can reach.
  config.frameBudget = 2000;
  SessionServer server(config);
  const uint64_t spinner = server.admit(scenarios::serveSpinWorkload());
  const uint64_t worker = server.admit(scenarios::serveWordCountWorkload());
  server.runUntilQuiet(100000);

  const SessionRecord bad = recordOf(server, spinner);
  EXPECT_EQ(bad.state, SessionState::Failed);
  EXPECT_EQ(bad.errorClass, ErrorClass::Timeout);
  // The TimeoutError is attributed to the offending session id.
  EXPECT_NE(bad.error.find("session " + std::to_string(spinner)),
            std::string::npos)
      << bad.error;
  EXPECT_NE(bad.error.find("frame budget"), std::string::npos) << bad.error;
  EXPECT_EQ(bad.timeouts, 1u);

  const SessionRecord good = recordOf(server, worker);
  EXPECT_EQ(good.state, SessionState::Completed);
  EXPECT_TRUE(good.outputOk);
  EXPECT_EQ(good.timeouts, 0u);
}

TEST(SessionServer, SessionDeadlineTripsAsTimeout) {
  ServerConfig config;
  config.sessionDeadlineSeconds = 1e-9;  // effectively already expired
  SessionServer server(config);
  const uint64_t id = server.admit(scenarios::serveSpinWorkload());
  server.runUntilQuiet(100000);
  const SessionRecord record = recordOf(server, id);
  EXPECT_EQ(record.state, SessionState::Failed);
  EXPECT_EQ(record.errorClass, ErrorClass::Timeout);
  EXPECT_NE(record.error.find("deadline"), std::string::npos)
      << record.error;
}

TEST(SessionServer, LaunchCrashIsContained) {
  SessionServer server;
  SessionWorkload bomb;
  bomb.label = "bomb";
  bomb.start = [](sched::ThreadManager&) -> std::shared_ptr<void> {
    throw std::runtime_error("boom at launch");
  };
  const uint64_t bombId = server.admit(bomb);
  // The slot was recycled immediately; the server keeps serving.
  EXPECT_EQ(server.activeSessions(), 0u);
  const SessionRecord record = recordOf(server, bombId);
  EXPECT_EQ(record.state, SessionState::Failed);
  EXPECT_EQ(record.errorClass, ErrorClass::Foreign);
  EXPECT_NE(record.error.find("boom at launch"), std::string::npos);
  EXPECT_FALSE(record.outputOk);

  const uint64_t next = server.admit(scenarios::serveWordCountWorkload());
  server.runUntilQuiet(100000);
  EXPECT_EQ(recordOf(server, next).state, SessionState::Completed);
  EXPECT_EQ(server.metrics().failed, 1u);
  EXPECT_EQ(server.metrics().completed, 1u);
}

TEST(SessionServer, ScriptErrorFailsOnlyItsSession) {
  SessionServer server;
  SessionWorkload broken;
  broken.label = "broken";
  broken.start = [](sched::ThreadManager& tm) -> std::shared_ptr<void> {
    // item 5 of a 1-element list: a deterministic user-script IndexError.
    tm.spawnExpression(itemOf(In(5.0), listOf({In(1.0)})),
                       blocks::Environment::make());
    return nullptr;
  };
  const uint64_t brokenId = server.admit(broken);
  const uint64_t goodId = server.admit(scenarios::serveClimateWorkload());
  server.runUntilQuiet(100000);

  const SessionRecord bad = recordOf(server, brokenId);
  EXPECT_EQ(bad.state, SessionState::Failed);
  EXPECT_EQ(bad.errorClass, ErrorClass::Index);
  EXPECT_FALSE(bad.outputOk);

  const SessionRecord good = recordOf(server, goodId);
  EXPECT_EQ(good.state, SessionState::Completed);
  EXPECT_TRUE(good.outputOk);
}

TEST(SessionServer, ShedNewestOnPoolSaturation) {
  // Arm PoolSaturation at rate 1 but *targeted* at the third admission's
  // candidate id: earlier admissions probe the same point and stay clean.
  fault::Config config;
  config.seed = 9;
  config.rateNumerator = 1;
  config.rateDenominator = 1;
  config.pointMask = fault::maskOf(fault::Point::PoolSaturation);
  config.targetTag = 3;
  SessionServer server;
  uint64_t first = 0, second = 0, third = 0;
  {
    fault::ScopedFault armed(config);
    first = server.admit(scenarios::serveSpinWorkload());
    second = server.admit(scenarios::serveSpinWorkload());
    EXPECT_EQ(server.activeSessions(), 2u);
    third = server.admit(scenarios::serveSpinWorkload());
  }
  // The overloaded admission shed the *newest* active tenant (LIFO): the
  // oldest session's sunk work is protected, the incomer still lands.
  EXPECT_EQ(server.metrics().overloadSheds, 1u);
  EXPECT_EQ(server.activeSessions(), 2u);
  const SessionRecord victim = recordOf(server, second);
  EXPECT_EQ(victim.state, SessionState::Shed);
  EXPECT_EQ(victim.errorClass, ErrorClass::Cancelled);
  EXPECT_NE(victim.error.find("overload shed"), std::string::npos)
      << victim.error;
  EXPECT_EQ(recordOf(server, first).state, SessionState::Active);
  EXPECT_EQ(recordOf(server, third).state, SessionState::Active);
  server.cancelSession(first, "test done");
  server.cancelSession(third, "test done");
}

TEST(SessionServer, CancelSessionLeavesSiblingsRunning) {
  SessionServer server;
  const uint64_t doomed = server.admit(scenarios::serveSpinWorkload());
  const uint64_t survivor = server.admit(scenarios::serveWordCountWorkload());
  server.runFrame();
  server.cancelSession(doomed, "user pressed stop");
  const SessionRecord record = recordOf(server, doomed);
  EXPECT_EQ(record.state, SessionState::Shed);
  EXPECT_EQ(record.errorClass, ErrorClass::Cancelled);
  EXPECT_EQ(record.error, "user pressed stop");
  EXPECT_EQ(server.metrics().shed, 1u);

  server.runUntilQuiet(100000);
  const SessionRecord good = recordOf(server, survivor);
  EXPECT_EQ(good.state, SessionState::Completed);
  EXPECT_TRUE(good.outputOk);
}

TEST(SessionServer, PerTenantStatsAreIsolatedAndRollUp) {
  ServerConfig config;
  config.frameBudget = 2000;
  SessionServer server(config);
  const auto before = workers::processSubstrateStats().timeouts.load();
  const uint64_t spinner = server.admit(scenarios::serveSpinWorkload());
  const uint64_t clean = server.admit(scenarios::serveConcessionWorkload());
  server.runUntilQuiet(100000);
  // The watchdog's timeout lands in the offender's ledger only…
  EXPECT_EQ(recordOf(server, spinner).timeouts, 1u);
  EXPECT_EQ(recordOf(server, clean).timeouts, 0u);
  // …and rolls up into the process-wide root ledger.
  EXPECT_GE(workers::processSubstrateStats().timeouts.load(), before + 1);
}

TEST(SessionServer, FairnessSpreadEdgeCases) {
  EXPECT_DOUBLE_EQ(SessionServer::fairnessSpread({}), 0.0);
  EXPECT_DOUBLE_EQ(SessionServer::fairnessSpread({0, 5}), 0.0);
  EXPECT_DOUBLE_EQ(SessionServer::fairnessSpread({5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(SessionServer::fairnessSpread({4, 8}), 2.0);
}

}  // namespace
}  // namespace psnap::serve
