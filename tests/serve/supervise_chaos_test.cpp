// Supervision chaos suite: the three supervision fault points
// (CheckpointWriteFailure / RestartStorm / RecoveryCorruption) swept
// across seeds, a seeded random-kill property sweep, and the crash-kill
// test — a child server SIGKILLed mid-workload whose successor must
// recover every session with byte-identical output.
//
// Test names start with "SuperviseChaos" so `scripts/check.sh
// --supervise` can sweep them across seeds (PSNAP_CHAOS_SEED adds one).
// CrashKillChild.Run is not a test: it is the victim process body,
// re-execed by SuperviseChaos.CrashKillRecoversByteIdentical and skipped
// in normal runs.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "scenarios/serve.hpp"
#include "serve/session_server.hpp"
#include "serve/supervise.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace psnap::serve {
namespace {

namespace fs = std::filesystem;

std::vector<uint64_t> chaosSeeds() {
  std::vector<uint64_t> seeds{1, 7, 42};
  if (const char* extra = std::getenv("PSNAP_CHAOS_SEED")) {
    seeds.push_back(std::strtoull(extra, nullptr, 10));
  }
  return seeds;
}

fault::Config configFor(uint64_t seed, uint32_t pointMask, uint32_t num,
                        uint32_t den, uint64_t targetTag = 0) {
  fault::Config config;
  config.seed = seed;
  config.rateNumerator = num;
  config.rateDenominator = den;
  config.pointMask = pointMask;
  config.targetTag = targetTag;
  return config;
}

SessionRecord recordOf(const SessionServer& server, uint64_t id) {
  for (const SessionRecord& record : server.records()) {
    if (record.id == id) return record;
  }
  ADD_FAILURE() << "no record for session " << id;
  return {};
}

fs::path freshDir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("psnap-supervise-chaos-" + tag + "-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ServerConfig supervisedConfig(const fs::path& dir) {
  ServerConfig config;
  config.checkpointDir = dir.string();
  config.checkpointIntervalFrames = 2;
  config.restartPolicy.maxRestarts = 3;
  config.restartPolicy.backoffBaseFrames = 1;
  config.restartPolicy.backoffCapFrames = 8;
  return config;
}

size_t stragglerTemps(const fs::path& dir) {
  size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      ++count;
    }
  }
  return count;
}

TEST(SuperviseChaos, CheckpointWriteFailuresNeverHurtTheSession) {
  // Checkpointing is an optimization of recovery, never a hazard to the
  // session: a write that dies (on the pool worker, mid-task) is counted
  // and retried next interval, the previous generation stays valid, no
  // torn file is ever visible, and every session still completes with
  // exact output.
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const fs::path dir = freshDir("ckptfail-" + std::to_string(seed));
    SessionServer server(supervisedConfig(dir));
    std::vector<uint64_t> ids;
    for (size_t i = 0; i < 8; ++i) {
      ids.push_back(server.admit(scenarios::serveMixedRecoverableWorkload(i)));
    }
    {
      fault::ScopedFault armed(configFor(
          seed, fault::maskOf(fault::Point::CheckpointWriteFailure), 1, 2));
      server.runUntilQuiet(400000);
    }
    for (uint64_t id : ids) {
      const SessionRecord record = recordOf(server, id);
      EXPECT_EQ(record.state, SessionState::Completed)
          << record.label << ": " << record.error;
      EXPECT_TRUE(record.outputOk) << record.label;
      // Terminal completion cleaned the disk for this session.
      EXPECT_TRUE(listCheckpoints(dir.string(), id).empty());
    }
    // The atomic writer stages and renames: failed writes leave nothing
    // but (possibly) their own temp files, and those are unlinked on the
    // throw path — never a half-written committed checkpoint.
    EXPECT_EQ(stragglerTemps(dir), 0u);
    fs::remove_all(dir);
  }
}

TEST(SuperviseChaos, RestartStormBurnsBudgetAndFailsTyped) {
  // The revival path itself keeps dying. Every attempt must burn budget
  // (no infinite restart loops), and the end state is either a clean
  // completion (a lucky revival got through) or a typed
  // RestartsExhausted failure — while bystanders stay exact.
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const fs::path dir = freshDir("storm-" + std::to_string(seed));
    SessionServer server(supervisedConfig(dir));
    const uint64_t victim = server.admit(scenarios::serveTickerWorkload(20));
    const uint64_t clean = server.admit(scenarios::serveConcessionWorkload(2));
    for (int f = 0; f < 6; ++f) server.runFrame();
    {
      // First fail the victim's slice once (parks it), then keep the
      // storm on the revival point.
      fault::ScopedFault slice(configFor(
          seed, fault::maskOf(fault::Point::TenantStall), 1, 1, victim));
      server.runFrame();
    }
    {
      fault::ScopedFault armed(configFor(
          seed, fault::maskOf(fault::Point::RestartStorm), 1, 2, victim));
      server.runUntilQuiet(400000);
    }
    const SessionRecord record = recordOf(server, victim);
    if (record.state == SessionState::Completed) {
      EXPECT_TRUE(record.outputOk);
      EXPECT_EQ(record.output, "1,2,3,4,5,6,7,8,9,10,"
                               "11,12,13,14,15,16,17,18,19,20");
    } else {
      EXPECT_EQ(record.state, SessionState::Failed) << record.error;
      EXPECT_EQ(record.errorClass, ErrorClass::RestartsExhausted)
          << errorClassName(record.errorClass);
      EXPECT_TRUE(listCheckpoints(dir.string(), victim).empty());
    }
    EXPECT_LE(record.restarts, server.config().restartPolicy.maxRestarts);
    const SessionRecord bystander = recordOf(server, clean);
    EXPECT_EQ(bystander.state, SessionState::Completed);
    EXPECT_TRUE(bystander.outputOk);
    fs::remove_all(dir);
  }
}

TEST(SuperviseChaos, RecoveryCorruptionFallsBackAGeneration) {
  // A corrupt newest generation behaves exactly like a torn file: the
  // loader walks back to the previous generation. A session recovered
  // from *any* generation completes with byte-identical output — an
  // older checkpoint only means more frames to re-run.
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const fs::path dir = freshDir("corrupt-" + std::to_string(seed));
    std::map<uint64_t, std::string> reference;
    {
      SessionServer uninterrupted{ServerConfig{}};
      std::vector<uint64_t> ids;
      for (size_t i = 0; i < 4; ++i) {
        ids.push_back(uninterrupted.admit(
            scenarios::serveTickerWorkload(16 + i * 4)));
      }
      uninterrupted.runUntilQuiet(200000);
      for (uint64_t id : ids) {
        reference[id] = recordOf(uninterrupted, id).output;
      }
    }
    {
      SessionServer first(supervisedConfig(dir));
      for (size_t i = 0; i < 4; ++i) {
        first.admit(scenarios::serveTickerWorkload(16 + i * 4));
      }
      // Enough frames for two checkpoint generations per session.
      for (int f = 0; f < 8; ++f) first.runFrame();
      first.drain();
    }
    SessionServer successor(supervisedConfig(dir));
    std::vector<uint64_t> recovered;
    {
      fault::ScopedFault armed(configFor(
          seed, fault::maskOf(fault::Point::RecoveryCorruption), 1, 2));
      recovered = successor.recoverSessions(scenarios::serveRecoveryFactory);
    }
    successor.runUntilQuiet(200000);
    for (uint64_t id : recovered) {
      const SessionRecord record = recordOf(successor, id);
      EXPECT_EQ(record.state, SessionState::Completed)
          << record.label << ": " << record.error;
      EXPECT_EQ(record.output, reference[id]) << record.label;
    }
    fs::remove_all(dir);
  }
}

TEST(SuperviseChaos, SeededRandomKillRoundTripsByteIdentical) {
  // The recovery-correctness property sweep: run a mixed recoverable
  // workload set, kill the server (destructor, no drain — modelling a
  // crash after a seed-chosen number of frames), recover with a
  // successor, and require every recovered session's output to be
  // byte-identical to an uninterrupted run's.
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const fs::path dir = freshDir("randkill-" + std::to_string(seed));
    const size_t tenants = 3 + seed % 4;
    std::map<uint64_t, std::string> reference;
    {
      SessionServer uninterrupted{ServerConfig{}};
      std::vector<uint64_t> ids;
      for (size_t i = 0; i < tenants; ++i) {
        ids.push_back(uninterrupted.admit(
            scenarios::serveTickerWorkload(20 + ((seed + i) % 5) * 6)));
      }
      uninterrupted.runUntilQuiet(200000);
      for (uint64_t id : ids) {
        reference[id] = recordOf(uninterrupted, id).output;
      }
    }
    {
      SessionServer doomed(supervisedConfig(dir));
      for (size_t i = 0; i < tenants; ++i) {
        doomed.admit(scenarios::serveTickerWorkload(20 + ((seed + i) % 5) * 6));
      }
      const int killAfter = 4 + int(seed % 9);
      for (int f = 0; f < killAfter; ++f) doomed.runFrame();
      // ~doomed: cancelled mid-flight, nothing finalized, checkpoints
      // stay on disk — the crash model.
    }
    SessionServer successor(supervisedConfig(dir));
    const std::vector<uint64_t> recovered =
        successor.recoverSessions(scenarios::serveRecoveryFactory);
    // Every tenant checkpointed at least once before the kill (interval
    // 2, ≥4 frames), so every one of them must be recoverable.
    EXPECT_EQ(recovered.size(), tenants);
    successor.runUntilQuiet(200000);
    for (uint64_t id : recovered) {
      const SessionRecord record = recordOf(successor, id);
      EXPECT_EQ(record.state, SessionState::Completed)
          << record.label << ": " << record.error;
      EXPECT_TRUE(record.outputOk) << record.label;
      EXPECT_EQ(record.output, reference[id]) << record.label;
    }
    fs::remove_all(dir);
  }
}

}  // namespace

// ---- crash-kill: a real SIGKILL against a real process ----------------
// These constants are shared with the CrashKillChild body below, which
// lives outside the anonymous namespace. The targets are deliberately
// large: at ~one tick per child frame (and ~1ms per frame) the victim
// would take many seconds to finish naturally, while the parent kills
// it well under a second after the first checkpoints land. A completed
// session removes its checkpoints, so a victim that finishes before the
// SIGKILL would leave nothing to recover — the workload must outlive
// the kill window by a wide margin, including under sanitizers.
constexpr size_t kCrashKillTickers[] = {6000, 6500, 7000, 7500};
constexpr uint64_t kCrashKillInterval = 2;

namespace {

TEST(SuperviseChaos, CrashKillRecoversByteIdentical) {
  // Reference outputs from an uninterrupted in-process run.
  std::map<uint64_t, std::string> reference;
  {
    SessionServer uninterrupted{ServerConfig{}};
    std::vector<uint64_t> ids;
    for (size_t target : kCrashKillTickers) {
      ids.push_back(uninterrupted.admit(scenarios::serveTickerWorkload(target)));
    }
    uninterrupted.runUntilQuiet(400000);
    for (uint64_t id : ids) {
      const SessionRecord record = recordOf(uninterrupted, id);
      ASSERT_EQ(record.state, SessionState::Completed);
      reference[id] = record.output;
    }
  }
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const fs::path dir = freshDir("crashkill-" + std::to_string(seed));
    // Launch the victim: this same binary, running only the child body.
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      ::setenv("PSNAP_CRASHKILL_DIR", dir.string().c_str(), 1);
      ::execl("/proc/self/exe", "supervise_crashkill_child",
              "--gtest_filter=CrashKillChild.Run", (char*)nullptr);
      _exit(127);  // exec failed
    }
    // Wait until every session has committed at least one checkpoint…
    bool ready = false;
    for (int spin = 0; spin < 20000 && !ready; ++spin) {
      size_t covered = 0;
      const auto refs = listCheckpoints(dir.string());
      for (size_t id = 1; id <= std::size(kCrashKillTickers); ++id) {
        for (const CheckpointRef& ref : refs) {
          if (ref.sessionId == id) {
            ++covered;
            break;
          }
        }
      }
      ready = covered == std::size(kCrashKillTickers);
      if (!ready) ::usleep(1000);
    }
    ASSERT_TRUE(ready) << "child never checkpointed all sessions";
    // …let it run a seed-scaled bit longer, then kill it dead.
    ::usleep(useconds_t(seed * 3000));
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

    // The successor sweeps the dead writer's temp files and recovers
    // every session from its newest committed generation.
    SessionServer successor([&] {
      ServerConfig config;
      config.checkpointDir = dir.string();
      config.checkpointIntervalFrames = kCrashKillInterval;
      return config;
    }());
    const std::vector<uint64_t> recovered =
        successor.recoverSessions(scenarios::serveRecoveryFactory);
    EXPECT_EQ(recovered.size(), std::size(kCrashKillTickers));
    EXPECT_EQ(stragglerTemps(dir), 0u);  // orphaned stages were swept
    successor.runUntilQuiet(800000);
    for (uint64_t id : recovered) {
      const SessionRecord record = recordOf(successor, id);
      EXPECT_EQ(record.state, SessionState::Completed)
          << record.label << ": " << record.error;
      EXPECT_TRUE(record.outputOk) << record.label;
      EXPECT_EQ(record.output, reference[id]) << record.label;
    }
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace psnap::serve

// The crash-kill victim body. Not a scenario in its own right: it only
// runs when the parent test re-execs this binary with
// PSNAP_CRASHKILL_DIR set, and it never returns — the parent SIGKILLs
// it mid-workload.
TEST(CrashKillChild, Run) {
  const char* dir = std::getenv("PSNAP_CRASHKILL_DIR");
  if (!dir) GTEST_SKIP() << "victim body; driven by the crash-kill test";
  psnap::serve::ServerConfig config;
  config.checkpointDir = dir;
  config.checkpointIntervalFrames = psnap::serve::kCrashKillInterval;
  psnap::serve::SessionServer server(config);
  for (size_t target : psnap::serve::kCrashKillTickers) {
    server.admit(psnap::scenarios::serveTickerWorkload(target));
  }
  // Slow frames keep the workload alive long enough to be killed at an
  // arbitrary (parent-chosen) point — including mid-checkpoint-write.
  while (true) {
    server.runFrame();
    if (std::getenv("PSNAP_CRASHKILL_DEBUG") &&
        server.metrics().framesRun % 200 == 0) {
      const auto& m = server.metrics();
      std::fprintf(stderr,
                   "[child] frames=%llu active=%zu written=%llu skipped=%llu "
                   "failures=%llu completed=%llu failed=%llu\n",
                   (unsigned long long)m.framesRun, server.activeSessions(),
                   (unsigned long long)m.checkpointsWritten,
                   (unsigned long long)m.checkpointsSkipped,
                   (unsigned long long)m.checkpointFailures,
                   (unsigned long long)m.completed,
                   (unsigned long long)m.failed);
    }
    ::usleep(1000);
  }
}
