// Completion-driven async suite: Future semantics (launch/compute/join),
// parked-process frame accounting, and scheduler attribution for
// processes that fail while parked.
//
// The launch blocks return a pending Future immediately; `await` joins
// it, parking the process on the future's settlement instead of polling.
// These tests pin the semantics the paper's poll loop never had to
// define: join-after-resolve vs join-before-resolve, typed error
// rethrow, double-join idempotence, cancellation propagation from the
// owning process, and non-transferability across the worker boundary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "blocks/builder.hpp"
#include "blocks/future.hpp"
#include "core/parallel_blocks.hpp"
#include "sched/thread_manager.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace psnap::core {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::EnvPtr;
using blocks::Future;
using blocks::FuturePtr;
using blocks::Value;
using sched::ThreadManager;

// --- Future unit semantics --------------------------------------------------

TEST(Future, ResolveFirstSettleWinsAndLateCallbackFiresInline) {
  FuturePtr fut = Future::make();
  EXPECT_EQ(fut->state(), Future::State::Pending);
  EXPECT_EQ(fut->display(), "(future: pending)");

  std::atomic<int> fired{0};
  fut->onSettle([&fired] { fired.fetch_add(1); });
  fut->resolve(Value(42));
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(fut->state(), Future::State::Resolved);
  EXPECT_EQ(fut->value().asNumber(), 42);
  EXPECT_EQ(fut->display(), "(future: resolved)");

  // Later settles are no-ops: the first settlement is the settlement.
  fut->reject(std::make_exception_ptr(TypeError("too late")));
  EXPECT_EQ(fut->state(), Future::State::Resolved);
  fut->resolve(Value(7));
  EXPECT_EQ(fut->value().asNumber(), 42);

  // A callback registered after the edge runs before onSettle returns.
  fut->onSettle([&fired] { fired.fetch_add(1); });
  EXPECT_EQ(fired.load(), 2);
}

TEST(Future, RejectKeepsTheOriginalExceptionType) {
  FuturePtr fut = Future::make();
  fut->reject(std::make_exception_ptr(IndexError("item 5 of a 1-item list")));
  EXPECT_EQ(fut->state(), Future::State::Failed);
  EXPECT_EQ(fut->errorClass(), ErrorClass::Index);
  EXPECT_THROW(std::rethrow_exception(fut->error()), IndexError);
  // The value slot never existed.
  EXPECT_THROW(fut->value(), Error);
}

TEST(Future, CancelRunsHookOncePendingOnly) {
  FuturePtr fut = Future::make();
  std::atomic<int> hookRuns{0};
  std::string reasonSeen;
  fut->setCancelHook([&](const std::string& reason) {
    hookRuns.fetch_add(1);
    reasonSeen = reason;
    // The operation's cancel path settles the future — model that.
    fut->reject(std::make_exception_ptr(CancelledError(reason)));
  });
  fut->cancel("owner died");
  EXPECT_EQ(hookRuns.load(), 1);
  EXPECT_EQ(reasonSeen, "owner died");
  EXPECT_EQ(fut->errorClass(), ErrorClass::Cancelled);
  // Cancelling a settled future is a no-op (the hook is already gone).
  fut->cancel("again");
  EXPECT_EQ(hookRuns.load(), 1);
}

TEST(Future, IdentityEqualityAndNotTransferable) {
  FuturePtr fut = Future::make();
  Value a(fut);
  Value b(fut);
  Value other(Future::make());
  EXPECT_TRUE(a.equals(b));        // same settlement → equal
  EXPECT_FALSE(a.equals(other));   // distinct futures are never equal
  EXPECT_FALSE(a.equals(Value(1)));
  EXPECT_FALSE(a.isTransferable());
  EXPECT_THROW(a.structuredClone(), PurityError);
}

// --- launch / compute / join on the scheduler -------------------------------

class AsyncBlocksTest : public ::testing::Test {
 protected:
  AsyncBlocksTest() : prims_(fullPrimitiveTable()) {}
  vm::PrimitiveTable prims_;
};

TEST_F(AsyncBlocksTest, LaunchComputeJoinOverlapsWork) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("f", Value());
  env->declare("meanwhile", Value(0));
  env->declare("result", Value());
  auto handle = tm.spawnScript(
      scriptOf({setVar("f", launchParallelMap(ring(product(empty(), 2)),
                                              numbersFromTo(1, 500), 4)),
                // The launch returned immediately: the script computes
                // while the workers grind.
                setVar("meanwhile", sum(20, 22)),
                setVar("result", awaitValue(getVar("f")))}),
      env);
  tm.runUntilIdle();
  ASSERT_FALSE(handle.status->errored) << handle.status->error;
  EXPECT_EQ(env->get("meanwhile").asNumber(), 42);
  ASSERT_EQ(env->get("result").asList()->length(), 500u);
  EXPECT_EQ(env->get("result").asList()->item(500).asNumber(), 1000);
  // The variable still holds the (now resolved) future handle.
  ASSERT_TRUE(env->get("f").isFuture());
  EXPECT_EQ(env->get("f").asFuture()->state(), Future::State::Resolved);
}

TEST_F(AsyncBlocksTest, DoubleJoinReturnsTheSameValue) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("f", Value());
  env->declare("first", Value());
  env->declare("second", Value());
  auto handle = tm.spawnScript(
      scriptOf({setVar("f", launchMapReduce(
                                ring(In(1.0)), ring(lengthOf(empty())),
                                splitText("b a b a b", "whitespace"))),
                setVar("first", awaitValue(getVar("f"))),
                // Join-after-resolve: the second await must not park; it
                // reads the same settlement.
                setVar("second", awaitValue(getVar("f")))}),
      env);
  tm.runUntilIdle();
  ASSERT_FALSE(handle.status->errored) << handle.status->error;
  EXPECT_EQ(env->get("first").asList()->display(), "[[a, 2], [b, 3]]");
  EXPECT_TRUE(env->get("first").equals(env->get("second")));
}

TEST_F(AsyncBlocksTest, AwaitNonFutureIsIdentity) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  Value v = tm.evaluate(awaitValue(sum(40, 2)), Environment::make());
  EXPECT_EQ(v.asNumber(), 42);
}

TEST_F(AsyncBlocksTest, JoinFailedFutureRethrowsTypedError) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("f", Value());
  // map fn = `item 5 of (item)` over [[1]]: a deterministic user-script
  // IndexError on the worker, captured into the future.
  auto handle = tm.spawnScript(
      scriptOf({setVar("f", launchParallelMap(
                                ring(itemOf(In(5.0), empty())),
                                listOf({listOf({1})}))),
                say(awaitValue(getVar("f")))}),
      env);
  tm.runUntilIdle();
  ASSERT_TRUE(handle.status->errored);
  // The await rethrew the worker's error with its original class — not a
  // substrate wrapper, not a degrade (launch never runs sequentially).
  ASSERT_FALSE(tm.recordedErrors().empty());
  const auto& record = tm.recordedErrors().front();
  EXPECT_EQ(record.errorClass, ErrorClass::Index);
  ASSERT_TRUE(env->get("f").isFuture());
  EXPECT_EQ(env->get("f").asFuture()->state(), Future::State::Failed);
}

TEST_F(AsyncBlocksTest, FutureIsNotTransferableToWorkers) {
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("f", Value());
  auto handle = tm.spawnScript(
      scriptOf({setVar("f", launchParallelMap(ring(product(empty(), 2)),
                                              listOf({1, 2}))),
                // Shipping the future itself into a parallel block's data
                // must fail typed at the clone-in boundary.
                say(parallelMap(ring(empty()), listOf({getVar("f")})))}),
      env);
  tm.runUntilIdle();
  ASSERT_TRUE(handle.status->errored);
  ASSERT_FALSE(tm.recordedErrors().empty());
  EXPECT_EQ(tm.recordedErrors().front().errorClass, ErrorClass::Purity);
}

TEST_F(AsyncBlocksTest, TerminatingTheOwnerCancelsItsFutures) {
  // Stall every worker claim so the operation is still in flight when the
  // owning process dies; its adopted future must be cancelled through the
  // hook, and the cancel settles the future typed.
  fault::Config config;
  config.seed = 1;
  config.rateNumerator = 1;
  config.rateDenominator = 1;
  config.pointMask = fault::maskOf(fault::Point::WorkerStall);
  config.stallMicros = 2000;
  fault::ScopedFault armed(config);

  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto env = Environment::make();
  env->declare("f", Value());
  tm.spawnScript(
      scriptOf({setVar("f", launchParallelMap(ring(product(empty(), 2)),
                                              numbersFromTo(1, 64), 4)),
                forever(scriptOf({say(In("alive"))}))}),
      env);
  for (int i = 0; i < 3; ++i) tm.runFrame();
  ASSERT_TRUE(env->get("f").isFuture());
  FuturePtr fut = env->get("f").asFuture();
  tm.stopAll();
  tm.runUntilIdle();
  // The settle arrives from the pool as the cancelled chunks unwind.
  for (int i = 0; i < 20000 && !fut->settled(); ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(fut->settled());
  EXPECT_EQ(fut->state(), Future::State::Failed);
  EXPECT_TRUE(isSubstrateClass(fut->errorClass()));
}

// --- parked frame accounting and attribution --------------------------------

TEST_F(AsyncBlocksTest, ParkedAwaitConsumesZeroFrames) {
  // launch + await in one expression: the process launches, parks, and is
  // woken by the completion callback. However long the pool takes, the
  // scheduler executes only the handful of frames around the park — the
  // parked wait itself burns none (runUntilIdle sleeps on the wake hub).
  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto handle = tm.spawnExpression(
      awaitValue(launchParallelMap(ring(product(empty(), 3)),
                                   numbersFromTo(1, 20000), 2)),
      Environment::make());
  const uint64_t frames = tm.runUntilIdle();
  ASSERT_FALSE(handle.status->errored) << handle.status->error;
  EXPECT_EQ(handle.status->result.asList()->length(), 20000u);
  EXPECT_LE(frames, 8u);
}

TEST_F(AsyncBlocksTest, DeadlineWhileParkedFailsWithOwnAttribution) {
  // Regression: a process that dies *while parked* (its deadline trips
  // during an in-flight completion wait) must land in the scheduler's
  // error log under its own id and opcode, exactly like a process that
  // fails mid-slice. The stall is longer than the deadline and sits
  // inside a worker claim, so the token trips while the op cannot
  // observe it — only pollParked() can fail the process.
  fault::Config config;
  config.seed = 1;
  config.rateNumerator = 1;
  config.rateDenominator = 1;
  config.pointMask = fault::maskOf(fault::Point::WorkerStall);
  config.stallMicros = 20000;
  fault::ScopedFault armed(config);

  ThreadManager tm(&BlockRegistry::standard(), &prims_);
  tm.setDefaultCancelToken(CancelToken::withDeadline(0.001));
  auto handle = tm.spawnExpression(
      awaitValue(launchParallelMap(ring(product(empty(), 2)),
                                   numbersFromTo(1, 8), 2)),
      Environment::make());
  const uint64_t processId = handle.process->id();
  tm.runUntilIdle();
  ASSERT_TRUE(handle.status->errored);
  ASSERT_FALSE(tm.recordedErrors().empty());
  const auto& record = tm.recordedErrors().front();
  EXPECT_EQ(record.processId, processId);
  EXPECT_EQ(record.errorClass, ErrorClass::Timeout);
  EXPECT_EQ(record.opcode, "reportAwait");
}

}  // namespace
}  // namespace psnap::core
