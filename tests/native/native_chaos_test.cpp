// Chaos for the native tier: injected compile failures, pool-refused
// compile submits, and the async install racing live dispatch and
// fault-ridden parallel maps. The invariant under every fault is the
// same as the substrate's: the computed values are exactly the
// interpreter's, and every failure lands in a typed, accounted state.
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "codegen/toolchain.hpp"
#include "core/pure_eval.hpp"
#include "core/tiering.hpp"
#include "native/tier.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "vm/process.hpp"
#include "workers/parallel.hpp"
#include "workers/stats.hpp"

namespace psnap::core {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::EnvPtr;
using blocks::RingPtr;
using blocks::Value;
using codegen::KernelShape;
using codegen::Toolchain;
using native::KernelState;
using native::RingKernel;
using native::TierConfig;
using native::TierManager;
using native::TierScope;

RingPtr makeRing(blocks::BlockPtr reify, EnvPtr env = nullptr) {
  static vm::PrimitiveTable prims = vm::PrimitiveTable::standard();
  static vm::NullHost host;
  vm::Process p(&BlockRegistry::standard(), &prims, &host);
  p.startExpression(std::move(reify), env ? env : Environment::make());
  return p.runToCompletion().asRing();
}

KernelState stateOf(const RingPtr& ring, KernelShape shape) {
  return TierManager::instance().lookup(*ring, shape)->currentState();
}

TEST(NativeChaos, InjectedCompileFailureDowngradesPermanently) {
  // No compiler needed: the fault fires before the emitter runs.
  workers::SubstrateStats local;
  workers::StatsScope statsScope(local);
  RingPtr ring = makeRing(build::ring(sum(product(empty(), 5.0), 8087.0)));
  TierConfig cfg;
  cfg.hotThreshold = 2;
  cfg.synchronousCompile = true;
  TierScope scope(cfg);
  TieredUnary tiered = tieredUnary(ring);

  fault::Config chaos;
  chaos.pointMask = fault::maskOf(fault::Point::NativeCompileFailure);
  chaos.rateNumerator = 1;
  chaos.rateDenominator = 1;
  {
    fault::ScopedFault arm(chaos);
    EXPECT_EQ(tiered.fn(Value(1.0)).asNumber(), 8092.0);
    EXPECT_EQ(tiered.fn(Value(2.0)).asNumber(), 8097.0);
    EXPECT_EQ(fault::firedCount(fault::Point::NativeCompileFailure), 1u);
  }
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Downgraded);
  EXPECT_EQ(local.nativeDowngrades.load(), 1u);
  // Permanent: with the fault disarmed (and a compiler possibly
  // available), the kernel never retries — the interpreter serves, the
  // values stay right, the downgrade stays counted once.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tiered.fn(Value(double(i))).asNumber(), i * 5.0 + 8087.0);
  }
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Downgraded);
  EXPECT_EQ(local.nativeDowngrades.load(), 1u);
}

TEST(NativeChaos, PoolRefusalRetriesThenDowngrades) {
  // Every async compile submit is refused by the saturated pool: the
  // kernel reverts to Cold and retries on later threshold crossings,
  // bounded by maxCompileAttempts, then downgrades with accounting.
  workers::SubstrateStats local;
  workers::StatsScope statsScope(local);
  RingPtr ring = makeRing(build::ring(difference(empty(), 9973.0)));
  TierConfig cfg;
  cfg.hotThreshold = 2;
  cfg.maxCompileAttempts = 3;
  cfg.synchronousCompile = false;
  TierScope scope(cfg);
  TieredUnary tiered = tieredUnary(ring);

  fault::Config chaos;
  chaos.pointMask = fault::maskOf(fault::Point::PoolSaturation);
  chaos.rateNumerator = 1;
  chaos.rateDenominator = 1;
  fault::ScopedFault arm(chaos);

  RingKernel* kernel =
      TierManager::instance().lookup(*ring, KernelShape::Unary);
  int calls = 0;
  while (kernel->currentState() != KernelState::Downgraded && calls < 64) {
    Value v(double(++calls));
    EXPECT_EQ(tiered.fn(v).asNumber(), calls - 9973.0);
  }
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Downgraded);
  EXPECT_EQ(kernel->attempts.load(), 3);
  EXPECT_EQ(local.nativeDowngrades.load(), 1u);
  // Three refused submits = three threshold crossings of 2 calls each,
  // plus the final call that observed Downgraded.
  EXPECT_LE(calls, 8);
}

TEST(NativeChaos, AsyncInstallRacesLiveDispatch) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // The production path: the compile runs on a pool worker while the
  // caller keeps dispatching. Every value produced during Cold,
  // Compiling, the install instant, Ready validation, and Trusted
  // service must be identical.
  RingPtr ring = makeRing(build::ring(sum(product(empty(), 7.0), 0.375)));
  TierConfig cfg;
  cfg.hotThreshold = 64;
  cfg.synchronousCompile = false;
  TierScope scope(cfg);
  TieredUnary tiered = tieredUnary(ring);

  RingKernel* kernel =
      TierManager::instance().lookup(*ring, KernelShape::Unary);
  int i = 0;
  // Race the install: keep calling until well after the compile lands.
  for (; i < 20000 && kernel->currentState() != KernelState::Trusted; ++i) {
    ASSERT_EQ(tiered.fn(Value(double(i))).asNumber(), i * 7.0 + 0.375) << i;
  }
  TierManager::instance().waitForCompile(kernel);
  for (int j = 0; j < 64; ++j, ++i) {
    ASSERT_EQ(tiered.fn(Value(double(i))).asNumber(), i * 7.0 + 0.375);
  }
  EXPECT_EQ(kernel->currentState(), KernelState::Trusted);
  EXPECT_GT(kernel->nativeCalls.load(), 0u);
}

TEST(NativeChaos, InstallRacesFaultRiddenParallelMap) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // The full stack under chaos: a Parallel map using the tiered batch
  // while TaskThrow kills chunks at random AND the compile install lands
  // mid-operation. The map's exact-retry invariant plus the batch's
  // all-or-nothing contract must keep the output exactly right.
  RingPtr ring = makeRing(build::ring(sum(product(empty(), 3.0), 0.0625)));
  TierConfig cfg;
  cfg.hotThreshold = 500;
  cfg.synchronousCompile = false;
  TierScope scope(cfg);
  TieredUnary tiered = tieredUnary(ring);

  fault::Config chaos;
  chaos.seed = 404;
  chaos.pointMask = fault::maskOf(fault::Point::TaskThrow);
  chaos.rateNumerator = 1;
  chaos.rateDenominator = 8;
  fault::ScopedFault arm(chaos);

  int converged = 0;
  for (int round = 0; round < 6; ++round) {
    constexpr int kN = 600;
    std::vector<Value> values;
    values.reserve(kN);
    for (int i = 0; i < kN; ++i) values.emplace_back(double(i));
    workers::Parallel p(std::move(values),
                        {.maxWorkers = 4, .maxRetries = 6});
    p.map(tiered.fn, tiered.batch);
    p.wait();
    if (p.failed()) {
      // Retries exhausted: a typed substrate failure, never a corrupted
      // or partially-native result.
      EXPECT_THROW(p.data(), SubstrateError);
      continue;
    }
    ++converged;
    const auto& data = p.data();
    ASSERT_EQ(data.size(), size_t(kN));
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(data[size_t(i)].asNumber(), i * 3.0 + 0.0625)
          << "round " << round << " item " << i;
    }
  }
  EXPECT_GT(converged, 0);
  RingKernel* kernel =
      TierManager::instance().lookup(*ring, KernelShape::Unary);
  TierManager::instance().waitForCompile(kernel);
  const KernelState state = kernel->currentState();
  // 3600 hot calls across the rounds: the kernel must have left Cold.
  // (Trusted on the happy path; Ready if the last round never revisited
  // it after install.)
  EXPECT_TRUE(state == KernelState::Trusted || state == KernelState::Ready)
      << native::kernelStateName(state);
}

}  // namespace
}  // namespace psnap::core
