// The native execution tier's promotion pipeline, end to end: hotness
// counting, synchronous/asynchronous compiles, the Ready validation gate,
// Trusted dispatch, and the byte-identical-output contract against the
// interpreter — including the paper's Fig. 11 word-count rings as golden
// cases and a property sweep over random pure arithmetic rings.
//
// Kernel dispatch records are process-lifetime and keyed by ring content,
// so every scenario uses a structurally unique ring (distinct literals)
// to get a fresh Cold record.
#include "core/tiering.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "blocks/builder.hpp"
#include "codegen/toolchain.hpp"
#include "core/pure_eval.hpp"
#include "native/loader.hpp"
#include "native/marshal.hpp"
#include "native/tier.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tests/properties/generators.hpp"
#include "vm/process.hpp"
#include "workers/stats.hpp"

namespace psnap::core {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::EnvPtr;
using blocks::List;
using blocks::RingPtr;
using blocks::Value;
using codegen::KernelShape;
using codegen::Toolchain;
using native::KernelState;
using native::RingKernel;
using native::TierConfig;
using native::TierManager;
using native::TierScope;

/// Evaluate a reifyReporter block into a RingPtr via the interpreter (so
/// lexical capture happens exactly as in a real script).
RingPtr makeRing(blocks::BlockPtr reify, EnvPtr env = nullptr) {
  static vm::PrimitiveTable prims = vm::PrimitiveTable::standard();
  static vm::NullHost host;
  vm::Process p(&BlockRegistry::standard(), &prims, &host);
  p.startExpression(std::move(reify), env ? env : Environment::make());
  return p.runToCompletion().asRing();
}

/// Same-bits double comparison (the tier's correctness contract is
/// byte-identical output, not approximate equality).
bool sameBits(const Value& a, const Value& b) {
  return native::byteIdentical(a, b);
}

KernelState stateOf(const RingPtr& ring, KernelShape shape) {
  return TierManager::instance().lookup(*ring, shape)->currentState();
}

/// A low-threshold synchronous tier config: deterministic single-thread
/// promotion for tests (threshold crossings compile inline).
TierConfig syncConfig(uint64_t threshold = 2) {
  TierConfig cfg;
  cfg.hotThreshold = threshold;
  cfg.synchronousCompile = true;
  return cfg;
}

// --- golden: the paper's Fig. 11 word-count rings ---------------------------

TEST(NativeTier, GoldenFig11MapRingByteIdentical) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // The word-count mapper: every item maps to the constant 1. A constant
  // body (paramUsed = false) is natively servable for ANY input kind —
  // the kernel never reads the marshalled parameter.
  RingPtr ring = makeRing(build::ring(In(1.0)));
  PureFn reference = compileRing(ring);

  TierScope scope(syncConfig(2));
  TieredUnary tiered = tieredUnary(ring);
  const Value inputs[] = {Value(7.0), Value("the"), Value("quick"),
                          Value(true)};
  for (int round = 0; round < 4; ++round) {
    for (const Value& v : inputs) {
      Value expected = reference({v});
      Value got = tiered.fn(v);
      EXPECT_TRUE(sameBits(got, expected)) << got.display();
      EXPECT_EQ(got.display(), expected.display());
    }
  }
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted);
  RingKernel* kernel = TierManager::instance().lookup(*ring,
                                                      KernelShape::Unary);
  EXPECT_FALSE(kernel->paramUsed);
  EXPECT_GT(kernel->nativeCalls.load(), 0u);
}

TEST(NativeTier, GoldenFig11ReduceRingByteIdentical) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // The word-count reducer: length of the per-key values list.
  RingPtr ring = makeRing(build::ring(lengthOf(empty())));
  PureFn reference = compileRing(ring);

  TierScope scope(syncConfig(1));
  auto reduce = tieredListReduce(ring);
  const std::vector<std::vector<double>> lists = {
      {1, 1, 1}, {1}, {}, {1, 1, 1, 1, 1, 1, 1}};
  for (int round = 0; round < 3; ++round) {
    for (const auto& numbers : lists) {
      std::vector<Value> items(numbers.begin(), numbers.end());
      auto list = List::make(items);
      Value expected = reference({Value(list)});
      Value got = reduce(list);
      EXPECT_TRUE(sameBits(got, expected))
          << got.display() << " vs " << expected.display();
    }
  }
  EXPECT_EQ(stateOf(ring, KernelShape::Fold), KernelState::Trusted);
}

TEST(NativeTier, SumFoldReducerByteIdentical) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // The classic combine-with-+ reducer: a real left fold in the kernel.
  RingPtr ring = makeRing(
      build::ring(combineUsing(empty(), build::ring(sum(empty(), empty())))));
  PureFn reference = compileRing(ring);

  TierScope scope(syncConfig(1));
  auto reduce = tieredListReduce(ring);
  Rng rng{2026};
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<Value> items;
    const int n = int(rng.below(9));
    for (int i = 0; i < n; ++i) {
      items.emplace_back(double(rng.between(-50, 50)) / 8.0);
    }
    auto list = List::make(items);
    Value expected = reference({Value(list)});
    Value got = reduce(list);
    EXPECT_TRUE(sameBits(got, expected))
        << got.display() << " vs " << expected.display();
  }
  EXPECT_EQ(stateOf(ring, KernelShape::Fold), KernelState::Trusted);
}

// --- promotion mechanics ----------------------------------------------------

TEST(NativeTier, PromotionWalksColdReadyTrusted) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  RingPtr ring = makeRing(build::ring(sum(product(empty(), 3.0), 19.0)));
  TierScope scope(syncConfig(3));
  TieredUnary tiered = tieredUnary(ring);

  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Cold);
  EXPECT_EQ(tiered.fn(Value(1.0)).asNumber(), 22.0);
  EXPECT_EQ(tiered.fn(Value(2.0)).asNumber(), 25.0);
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Cold);
  // Third call crosses the threshold; the synchronous compile installs
  // the kernel before the call returns (still served by the interpreter).
  EXPECT_EQ(tiered.fn(Value(3.0)).asNumber(), 28.0);
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Ready);
  // Fourth call runs BOTH paths, bit-compares, and promotes.
  EXPECT_EQ(tiered.fn(Value(4.0)).asNumber(), 31.0);
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted);
  EXPECT_EQ(tiered.fn(Value(5.0)).asNumber(), 34.0);
}

TEST(NativeTier, TextInputFallsBackButStaysTrusted) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // A parameter-reading kernel serves Numbers only; numeric text coerces
  // to the same double but must display as text, so it always takes the
  // interpreter — with no downgrade (the kernel is still good).
  RingPtr ring = makeRing(build::ring(product(empty(), 23.0)));
  TierScope scope(syncConfig(2));
  TieredUnary tiered = tieredUnary(ring);
  for (int i = 0; i < 4; ++i) tiered.fn(Value(double(i)));
  ASSERT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted);

  EXPECT_EQ(tiered.fn(Value("3")).asNumber(), 69.0);
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted);
  EXPECT_EQ(tiered.fn(Value(3.0)).asNumber(), 69.0);
}

TEST(NativeTier, ErrorInputsRaiseTheInterpreterError) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // 10 / (x - 5): x = 5 divides by zero. The native kernel reports the
  // error through its out-parameter and the interpreter raises the exact
  // typed error — in every tier state.
  RingPtr ring = makeRing(
      build::ring(quotient(10.0, difference(empty(), 5.0))));
  TierScope scope(syncConfig(2));
  TieredUnary tiered = tieredUnary(ring);

  std::string coldMessage;
  try {
    tiered.fn(Value(5.0));
    FAIL() << "division by zero did not throw";
  } catch (const Error& e) {
    coldMessage = e.what();
  }
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tiered.fn(Value(7.0)).asNumber(), 5.0);
  ASSERT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted);
  try {
    tiered.fn(Value(5.0));
    FAIL() << "division by zero did not throw once Trusted";
  } catch (const Error& e) {
    EXPECT_EQ(coldMessage, e.what());
  }
  // The error path is a per-call fallback, not a downgrade.
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted);
  EXPECT_EQ(tiered.fn(Value(6.0)).asNumber(), 10.0);
}

TEST(NativeTier, ErringCallDuringValidationPromotes) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // If the FIRST post-install call is an error case, both paths err —
  // that is agreement, and the kernel still promotes.
  RingPtr ring = makeRing(
      build::ring(quotient(42.0, difference(empty(), 6.0))));
  TierScope scope(syncConfig(1));
  TieredUnary tiered = tieredUnary(ring);
  tiered.fn(Value(1.0));  // crosses threshold, installs
  ASSERT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Ready);
  EXPECT_THROW(tiered.fn(Value(6.0)), Error);
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted);
}

TEST(NativeTier, UnsupportedRingDowngradesPermanentlyWithAccounting) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // join is a text op outside the native subset: the emitter rejects it,
  // the kernel downgrades permanently, and the downgrade is counted once
  // in the calling scope's substrate ledger.
  workers::SubstrateStats local;
  workers::StatsScope statsScope(local);
  RingPtr ring = makeRing(build::ring(join({In(empty()), In("-golden!")})));
  TierScope scope(syncConfig(2));
  TieredUnary tiered = tieredUnary(ring);

  EXPECT_EQ(tiered.fn(Value("snap")).asText(), "snap-golden!");
  EXPECT_EQ(tiered.fn(Value("snap")).asText(), "snap-golden!");
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Downgraded);
  EXPECT_EQ(local.nativeDowngrades.load(), 1u);
  // Permanent, and counted exactly once.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tiered.fn(Value("x")).asText(), "x-golden!");
  }
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Downgraded);
  EXPECT_EQ(local.nativeDowngrades.load(), 1u);
}

TEST(NativeTier, DisabledTierNeverCompiles) {
  RingPtr ring = makeRing(build::ring(sum(empty(), 7717.0)));
  TierConfig off = syncConfig(1);
  off.enabled = false;
  TierScope scope(off);
  TieredUnary tiered = tieredUnary(ring);
  EXPECT_FALSE(tiered.batch);  // no batch path when the tier is off
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(tiered.fn(Value(double(i))).asNumber(), i + 7717.0);
  }
  // No record was ever heated: looking it up now shows a Cold record.
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Cold);
}

// --- the batch path ---------------------------------------------------------

TEST(NativeTier, BatchServesWholeChunksAllOrNothing) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  RingPtr ring = makeRing(build::ring(sum(product(empty(), 2.0), 0.125)));
  PureFn reference = compileRing(ring);
  TierScope scope(syncConfig(4));
  TieredUnary tiered = tieredUnary(ring);
  ASSERT_TRUE(tiered.batch);

  std::vector<Value> chunk;
  for (int i = 0; i < 8; ++i) chunk.emplace_back(double(i));
  // Cold: the batch declines (writing nothing) but records the chunk's
  // hotness — which crosses the threshold and compiles here.
  std::vector<Value> untouched = chunk;
  EXPECT_FALSE(tiered.batch(chunk.data(), chunk.size()));
  for (size_t i = 0; i < chunk.size(); ++i) {
    EXPECT_TRUE(sameBits(chunk[i], untouched[i]));
  }
  ASSERT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Ready);
  // Ready: the batch validates the whole chunk against the interpreter,
  // promotes, and writes every element.
  EXPECT_TRUE(tiered.batch(chunk.data(), chunk.size()));
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted);
  for (size_t i = 0; i < chunk.size(); ++i) {
    EXPECT_TRUE(sameBits(chunk[i], reference({untouched[i]})));
  }
}

TEST(NativeTier, BatchDeclinesUnmarshalableChunksUntouched) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  RingPtr ring = makeRing(build::ring(difference(empty(), 0.25)));
  TierScope scope(syncConfig(2));
  TieredUnary tiered = tieredUnary(ring);
  for (int i = 0; i < 4; ++i) tiered.fn(Value(double(i)));
  ASSERT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted);

  // One text element poisons the chunk: all-or-nothing means NOTHING is
  // written and the caller's per-item loop handles every element.
  std::vector<Value> chunk = {Value(1.0), Value("2"), Value(3.0)};
  EXPECT_FALSE(tiered.batch(chunk.data(), chunk.size()));
  EXPECT_TRUE(chunk[0].isNumber());
  EXPECT_EQ(chunk[0].asNumber(), 1.0);
  EXPECT_EQ(chunk[1].asText(), "2");
  EXPECT_EQ(chunk[2].asNumber(), 3.0);
}

TEST(NativeTier, BatchDeclinesChunksWithErrorElements) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  RingPtr ring = makeRing(build::ring(quotient(64.0, empty())));
  TierScope scope(syncConfig(2));
  TieredUnary tiered = tieredUnary(ring);
  for (int i = 1; i < 5; ++i) tiered.fn(Value(double(i)));
  ASSERT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted);

  std::vector<Value> chunk = {Value(2.0), Value(0.0), Value(4.0)};
  EXPECT_FALSE(tiered.batch(chunk.data(), chunk.size()));
  EXPECT_EQ(chunk[1].asNumber(), 0.0);  // untouched
  // The scalar path raises the exact division error for the bad element.
  EXPECT_THROW(tiered.fn(Value(0.0)), Error);
  EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted);
}

// --- binary rings -----------------------------------------------------------

TEST(NativeTier, BinaryRingPromotesAndMatches) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  RingPtr ring = makeRing(
      build::ring(sum(product(getVar("a"), 0.5), getVar("b")), {"a", "b"}));
  PureFn reference = compileRing(ring);
  TierScope scope(syncConfig(2));
  auto fn = tieredBinary(ring);
  Rng rng{77};
  for (int i = 0; i < 16; ++i) {
    Value a(double(rng.between(-40, 40)) / 4.0);
    Value b(double(rng.between(-40, 40)) / 4.0);
    EXPECT_TRUE(sameBits(fn(a, b), reference({a, b})));
  }
  EXPECT_EQ(stateOf(ring, KernelShape::Binary), KernelState::Trusted);
}

// --- captured environment ---------------------------------------------------

TEST(NativeTier, CapturedVariablesBakeIntoTheKernel) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  auto env = Environment::make();
  env->declare("offset", Value(4071.0));
  RingPtr ring = makeRing(build::ring(sum(getVar("offset"), empty())), env);
  TierScope scope(syncConfig(2));
  TieredUnary tiered = tieredUnary(ring);
  RingKernel* kernel =
      TierManager::instance().lookup(*ring, KernelShape::Unary);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tiered.fn(Value(1.0)).asNumber(), 4072.0);
  }
  ASSERT_EQ(kernel->currentState(), KernelState::Trusted);
  // Mutating the environment after the kernel is compiled must not reach
  // it — the capture is baked in as a constant, matching the interpreter
  // closure's structured-clone snapshot.
  env->set("offset", Value(0.0));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tiered.fn(Value(1.0)).asNumber(), 4072.0);
  }
  EXPECT_EQ(kernel->currentState(), KernelState::Trusted);
}

TEST(NativeTier, MutationBeforeCompileIsCaughtByTheValidationGate) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // The interpreter closure snapshots captures when the function is
  // BUILT; the emitter reads the ring's environment when the kernel goes
  // hot. A mutation in between makes the kernel compute the wrong
  // function — which the Ready validation gate must catch, downgrading
  // without ever surfacing a wrong value.
  auto env = Environment::make();
  env->declare("offset", Value(6133.0));
  RingPtr ring = makeRing(build::ring(sum(getVar("offset"), empty())), env);
  TierScope scope(syncConfig(2));
  TieredUnary tiered = tieredUnary(ring);
  RingKernel* kernel =
      TierManager::instance().lookup(*ring, KernelShape::Unary);
  env->set("offset", Value(0.0));  // between build and hot
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(tiered.fn(Value(1.0)).asNumber(), 6134.0);
  }
  EXPECT_EQ(kernel->currentState(), KernelState::Downgraded);
}

TEST(NativeTier, DifferentCaptureSnapshotsGetDifferentKernels) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // Two rings with identical structure but different captured values must
  // not share a dispatch record (the content key hashes the snapshot).
  auto envA = Environment::make();
  envA->declare("k", Value(1009.0));
  auto envB = Environment::make();
  envB->declare("k", Value(2027.0));
  RingPtr ringA = makeRing(build::ring(product(getVar("k"), empty())), envA);
  RingPtr ringB = makeRing(build::ring(product(getVar("k"), empty())), envB);
  TierScope scope(syncConfig(1));
  TieredUnary a = tieredUnary(ringA);
  TieredUnary b = tieredUnary(ringB);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.fn(Value(2.0)).asNumber(), 2018.0);
    EXPECT_EQ(b.fn(Value(2.0)).asNumber(), 4054.0);
  }
  EXPECT_NE(TierManager::instance().lookup(*ringA, KernelShape::Unary),
            TierManager::instance().lookup(*ringB, KernelShape::Unary));
}

// --- property: random pure arithmetic rings are bit-exact -------------------

class NativeTierProperty : public ::testing::TestWithParam<int> {};

TEST_P(NativeTierProperty, RandomRingsAreByteIdenticalAcrossTiers) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  Rng rng{uint64_t(GetParam()) * 6361};
  TierScope scope(syncConfig(1));
  const double inputs[] = {-7.0, -1.0, -0.5, 0.0, 1.0, 3.0, 12.5};
  constexpr int kRings = 6;
  for (int r = 0; r < kRings; ++r) {
    auto expr = testgen::randomArithmetic(rng, 3);
    RingPtr ring = makeRing(build::ring(In(expr)));
    PureFn reference = compileRing(ring);
    TieredUnary tiered = tieredUnary(ring);
    // Every call — interpreted while Cold, dual-run while Ready, native
    // once Trusted — must produce the same bits as the reference.
    for (int round = 0; round < 3; ++round) {
      for (double x : inputs) {
        Value expected = reference({Value(x)});
        Value got = tiered.fn(Value(x));
        ASSERT_TRUE(sameBits(got, expected))
            << "seed=" << GetParam() << " ring=" << r << " x=" << x << "\n"
            << expr->display() << "\ngot " << got.display() << " want "
            << expected.display();
      }
    }
    // The generator stays inside the native subset, so every ring must
    // have made it to Trusted (a downgrade here means the emitter and
    // interpreter disagree on some arithmetic case).
    EXPECT_EQ(stateOf(ring, KernelShape::Unary), KernelState::Trusted)
        << expr->display();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NativeTierProperty, ::testing::Range(1, 6));

// --- satellite: toolchain content cache and directory ownership -------------

TEST(ToolchainCache, IdenticalRecompileHitsTheContentCache) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  Toolchain tc;
  codegen::SourceSet sources;
  sources["k.c"] = "double psnap_probe(double x) { return x + 1.0; }\n";
  const uint64_t before = Toolchain::cacheHits();
  auto first = tc.compileShared(sources, "k.so", false);
  EXPECT_FALSE(tc.lastCompileCached());
  auto second = tc.compileShared(sources, "k.so", false);
  EXPECT_TRUE(tc.lastCompileCached());
  EXPECT_EQ(first, second);
  EXPECT_EQ(Toolchain::cacheHits(), before + 1);
  // Changed bytes invalidate the stamp.
  sources["k.c"] = "double psnap_probe(double x) { return x + 2.0; }\n";
  tc.compileShared(sources, "k.so", false);
  EXPECT_FALSE(tc.lastCompileCached());
}

TEST(ToolchainCache, AutoCreatedDirectoryIsRemovedOnDestruction) {
  std::filesystem::path dir;
  {
    Toolchain tc;
    dir = tc.directory();
    EXPECT_TRUE(std::filesystem::exists(dir));
  }
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(ToolchainCache, CallerOwnedDirectoryIsKept) {
  auto dir = std::filesystem::temp_directory_path() / "psnap-tc-keep-test";
  {
    Toolchain tc(dir);
    EXPECT_TRUE(std::filesystem::exists(dir));
  }
  EXPECT_TRUE(std::filesystem::exists(dir));
  std::filesystem::remove_all(dir);
}

// --- the loader -------------------------------------------------------------

TEST(SharedLibraryLoader, OpensAndResolvesSymbols) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  Toolchain tc;
  codegen::SourceSet sources;
  sources["probe.c"] =
      "double psnap_probe_fn(double x) { return x * 3.0; }\n";
  auto lib = tc.compileShared(sources, "probe.so", false);
  tc.keepDirectory();  // the library must outlive the toolchain's cleanup
  auto library = native::SharedLibrary::open(lib);
  auto fn = library.require<double (*)(double)>("psnap_probe_fn");
  EXPECT_EQ(fn(7.0), 21.0);
  EXPECT_EQ(library.symbol("no_such_symbol"), nullptr);
  EXPECT_THROW(library.require<double (*)(double)>("no_such_symbol"),
               CodegenError);
  std::filesystem::remove_all(tc.directory());
}

TEST(SharedLibraryLoader, MissingFileThrowsTyped) {
  EXPECT_THROW(native::SharedLibrary::open("/nonexistent/psnap-kernel.so"),
               CodegenError);
}

}  // namespace
}  // namespace psnap::core
