// MapReduce engine semantics: pairing, sort-by-key shuffle, grouping,
// parallel/sequential parity, identity phases, and stats.
#include "mapreduce/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace psnap::mr {
namespace {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;

ListPtr words(std::initializer_list<const char*> ws) {
  auto list = List::make();
  for (const char* w : ws) list->add(Value(w));
  return list;
}

MapFn constOne() {
  return [](const Value&) { return Value(1); };
}

ReduceFn countValues() {
  return [](const ListPtr& values) { return Value(values->length()); };
}

ReduceFn sumValues() {
  return [](const ListPtr& values) {
    double total = 0;
    for (const Value& v : values->items()) total += v.asNumber();
    return Value(total);
  };
}

TEST(MapReduce, WordCountShape) {
  auto result = run(words({"b", "a", "b", "c", "a", "b"}), constOne(),
                    countValues());
  EXPECT_EQ(result->display(), "[[a, 2], [b, 3], [c, 1]]");
}

TEST(MapReduce, OutputSortedByKey) {
  auto result = run(words({"pear", "apple", "zebra", "apple"}), constOne(),
                    countValues());
  ASSERT_EQ(result->length(), 3u);
  EXPECT_EQ(result->item(1).asList()->item(1).asText(), "apple");
  EXPECT_EQ(result->item(3).asList()->item(1).asText(), "zebra");
}

TEST(MapReduce, NumericKeysSortNumerically) {
  auto input = List::make({Value(10), Value(2), Value(10), Value(2)});
  auto result = run(input, constOne(), countValues());
  EXPECT_EQ(result->item(1).asList()->item(1).asNumber(), 2);
  EXPECT_EQ(result->item(2).asList()->item(1).asNumber(), 10);
}

TEST(MapReduce, ExplicitPairsFromMapper) {
  // Mapper emits [key mod 2, value].
  MapFn mapper = [](const Value& v) {
    auto pair = List::make();
    pair->add(Value(std::fmod(v.asNumber(), 2.0)));
    pair->add(v);
    return Value(pair);
  };
  auto input = List::make();
  for (int i = 1; i <= 6; ++i) input->add(Value(i));
  auto result = run(input, mapper, sumValues());
  EXPECT_EQ(result->display(), "[[0, 12], [1, 9]]");
}

TEST(MapReduce, IdentityReducePassesValueLists) {
  auto result = run(words({"a", "b", "a"}), constOne(), identityReduce());
  EXPECT_EQ(result->display(), "[[a, [1, 1]], [b, [1]]]");
}

TEST(MapReduce, EmptyInput) {
  auto result = run(List::make(), constOne(), countValues());
  EXPECT_TRUE(result->empty());
}

TEST(MapReduce, SingleItem) {
  auto result = run(words({"solo"}), constOne(), countValues());
  EXPECT_EQ(result->display(), "[[solo, 1]]");
}

TEST(MapReduce, SequentialAndParallelAgree) {
  auto input = List::make();
  for (int i = 0; i < 500; ++i) input->add(Value(i % 13));
  auto par = run(input, constOne(), countValues(), {.workers = 4});
  auto seq = run(input, constOne(), countValues(), {.sequential = true});
  EXPECT_TRUE(par->deepEquals(*seq));
}

TEST(MapReduce, StatsAccounting) {
  Stats stats;
  auto input = List::make();
  for (int i = 0; i < 100; ++i) input->add(Value(i % 5));
  run(input, constOne(), countValues(), {.workers = 4}, &stats);
  EXPECT_EQ(stats.inputItems, 100u);
  EXPECT_EQ(stats.distinctKeys, 5u);
  EXPECT_GE(stats.mapMakespan, 25u);  // 100 items on ≤4 workers
  EXPECT_GE(stats.reduceMakespan, 1u);
}

TEST(MapReduce, SequentialStatsAreSerial) {
  Stats stats;
  run(words({"a", "b", "c"}), constOne(), countValues(),
      {.sequential = true}, &stats);
  EXPECT_EQ(stats.mapMakespan, 3u);
  EXPECT_EQ(stats.reduceMakespan, 3u);
}

TEST(MapReduce, MapperErrorPropagates) {
  MapFn bad = [](const Value& v) -> Value {
    if (v.asNumber() == 3) throw Error("mapper exploded");
    return Value(1);
  };
  auto input = List::make({Value(1), Value(3)});
  EXPECT_THROW(run(input, bad, countValues()), Error);
}

TEST(MapReduce, ReducerErrorPropagates) {
  ReduceFn bad = [](const ListPtr&) -> Value {
    throw Error("reducer exploded");
  };
  EXPECT_THROW(run(words({"a"}), constOne(), bad), Error);
}

TEST(MapReduce, MapperTypeErrorKeepsItsType) {
  MapFn bad = [](const Value&) -> Value {
    throw TypeError("not reducible");
  };
  EXPECT_THROW(run(words({"a", "b"}), bad, countValues()), TypeError);
}

TEST(MapReduce, PreCancelledTokenStopsPipeline) {
  Options options;
  options.workers = 4;
  options.cancel = CancelToken::create();
  options.cancel->cancel("pipeline stopped");
  auto input = List::make();
  for (int i = 0; i < 50; ++i) input->add(Value(i % 3));
  // Cancellation is not a degradable failure: the run surfaces it typed
  // instead of silently rerunning sequentially.
  EXPECT_THROW(run(input, constOne(), countValues(), options),
               CancelledError);
}

TEST(MapReduce, ExpiredDeadlineSurfacesTimeout) {
  Options options;
  options.workers = 4;
  options.deadlineSeconds = 1e-9;  // expires before the first chunk claim
  auto input = List::make();
  for (int i = 0; i < 50; ++i) input->add(Value(i % 3));
  EXPECT_THROW(run(input, constOne(), countValues(), options),
               TimeoutError);
}

TEST(MapReduceJob, ErrorCarriesClassAndExceptionType) {
  MapFn bad = [](const Value&) -> Value { throw TypeError("bad item"); };
  Job job(words({"x"}), bad, countValues(), {});
  while (!job.resolved()) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(job.failed());
  EXPECT_EQ(job.errorClass(), ErrorClass::Type);
  ASSERT_TRUE(job.error());
  EXPECT_THROW(std::rethrow_exception(job.error()), TypeError);
}

TEST(MapReduce, NullInputThrows) {
  EXPECT_THROW(run(nullptr, constOne(), countValues()), Error);
}

TEST(MapReduceJob, AsyncCompletion) {
  auto input = List::make();
  for (int i = 0; i < 2000; ++i) input->add(Value(i % 7));
  Job job(input, constOne(), countValues(), {.workers = 4});
  while (!job.resolved()) {
    std::this_thread::yield();
  }
  ASSERT_FALSE(job.failed()) << job.errorMessage();
  EXPECT_EQ(job.result()->length(), 7u);
  EXPECT_EQ(job.stats().inputItems, 2000u);
}

TEST(MapReduceJob, AsyncErrorCapture) {
  MapFn bad = [](const Value&) -> Value { throw Error("nope"); };
  Job job(words({"x"}), bad, countValues(), {});
  while (!job.resolved()) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(job.failed());
  EXPECT_NE(job.errorMessage().find("nope"), std::string::npos);
}

}  // namespace
}  // namespace psnap::mr
