// MapReduce invariants swept across corpus seeds, sizes, and worker
// widths: counts conserve input size, keys are unique and sorted,
// parallel ≡ sequential, and the block path equals the reference.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "data/corpus.hpp"
#include "mapreduce/engine.hpp"
#include "sched/thread_manager.hpp"

namespace psnap::mr {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::List;
using blocks::ListPtr;
using blocks::Value;

ListPtr corpus(size_t words, uint64_t seed) {
  auto list = List::make();
  for (const std::string& w :
       data::tokenize(data::generateText(words, 40, seed))) {
    list->add(Value(w));
  }
  return list;
}

MapFn constOne() {
  return [](const Value&) { return Value(1); };
}
ReduceFn countValues() {
  return [](const ListPtr& values) { return Value(values->length()); };
}

class WordCountProperties
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WordCountProperties, InvariantsHold) {
  const auto [words, seed, workerCount] = GetParam();
  auto input = corpus(size_t(words), uint64_t(seed));
  auto result = run(input, constOne(), countValues(),
                    {.workers = size_t(workerCount)});

  // 1. Counts conserve the input size.
  double total = 0;
  for (const Value& pair : result->items()) {
    total += pair.asList()->item(2).asNumber();
  }
  EXPECT_EQ(total, double(words));

  // 2. Keys unique and sorted ascending.
  for (size_t i = 2; i <= result->length(); ++i) {
    const std::string prev =
        result->item(i - 1).asList()->item(1).asText();
    const std::string cur = result->item(i).asList()->item(1).asText();
    EXPECT_LT(prev, cur);
  }

  // 3. Parallel equals sequential bit-for-bit.
  auto sequential =
      run(input, constOne(), countValues(), {.sequential = true});
  EXPECT_TRUE(result->deepEquals(*sequential));

  // 4. Equals the plain-C++ reference.
  auto reference =
      data::referenceWordCount(data::generateText(size_t(words), 40,
                                                  uint64_t(seed)));
  ASSERT_EQ(result->length(), reference.size());
  for (const Value& pair : result->items()) {
    const std::string word = pair.asList()->item(1).asText();
    ASSERT_TRUE(reference.count(word)) << word;
    EXPECT_EQ(size_t(pair.asList()->item(2).asNumber()),
              reference.at(word));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WordCountProperties,
    ::testing::Combine(::testing::Values(1, 10, 100, 2000),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 4)));

// The block-level mapReduce agrees with the engine across seeds.
class BlockEnginePairity : public ::testing::TestWithParam<int> {};

TEST_P(BlockEnginePairity, BlockPathMatchesEngine) {
  const uint64_t seed = uint64_t(GetParam());
  const std::string text = data::generateText(300, 40, seed);
  auto prims = core::fullPrimitiveTable();
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
  Value viaBlock = tm.evaluate(
      mapReduce(ring(In(1.0)), ring(lengthOf(empty())),
                splitText(text, "whitespace")),
      Environment::make());
  auto viaEngine = run(corpus(300, seed), constOne(), countValues(), {});
  EXPECT_TRUE(viaBlock.asList()->deepEquals(*viaEngine));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockEnginePairity,
                         ::testing::Range(10, 16));

// Reduce associativity requirement: a sum reduce over numeric groups is
// independent of worker width.
class SumReduceStability : public ::testing::TestWithParam<int> {};

TEST_P(SumReduceStability, WorkerWidthInvariant) {
  const auto workerCount = size_t(GetParam());
  auto input = List::make();
  for (int i = 0; i < 500; ++i) input->add(Value(i % 10));
  MapFn mapper = [](const Value& v) {
    auto pair = List::make();
    pair->add(Value(std::fmod(v.asNumber(), 3.0)));
    pair->add(v);
    return Value(pair);
  };
  ReduceFn summer = [](const ListPtr& values) {
    double sum = 0;
    for (const Value& v : values->items()) sum += v.asNumber();
    return Value(sum);
  };
  auto result = run(input, mapper, summer, {.workers = workerCount});
  auto baseline = run(input, mapper, summer, {.sequential = true});
  EXPECT_TRUE(result->deepEquals(*baseline));
}

INSTANTIATE_TEST_SUITE_P(Widths, SumReduceStability,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace psnap::mr
