// Concession-stand timestep laws swept across configuration space:
// parallel time = pour duration, sequential time = cups × pour duration,
// and interference can only inflate, never deflate.
#include <gtest/gtest.h>

#include <tuple>

#include "scenarios/concession.hpp"

namespace psnap::scenarios {
namespace {

class ConcessionLaws
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConcessionLaws, TimestepFormulasHold) {
  const auto [cups, pourFrames] = GetParam();
  ConcessionResult par = runConcession({.parallel = true,
                                        .cups = size_t(cups),
                                        .pourFrames = pourFrames});
  ConcessionResult seq = runConcession({.parallel = false,
                                        .cups = size_t(cups),
                                        .pourFrames = pourFrames});
  EXPECT_TRUE(par.errors.empty());
  EXPECT_TRUE(seq.errors.empty());
  EXPECT_EQ(par.pourTimesteps, uint64_t(pourFrames));
  EXPECT_EQ(seq.pourTimesteps, uint64_t(cups) * uint64_t(pourFrames));
  EXPECT_EQ(par.cupsFilled, size_t(cups));
  EXPECT_EQ(seq.cupsFilled, size_t(cups));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConcessionLaws,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(1, 2, 3, 5)));

class InterferenceMonotonicity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InterferenceMonotonicity, TheftNeverSpeedsUp) {
  const auto [period, offset] = GetParam();
  sched::InterferenceModel model{uint64_t(period), uint64_t(offset)};
  ConcessionResult clean = runConcession({.parallel = false});
  ConcessionResult noisy =
      runConcession({.parallel = false, .interference = model});
  EXPECT_GE(noisy.pourTimesteps, clean.pourTimesteps)
      << "period=" << period << " offset=" << offset;
  // And the parallel run is never slower than the sequential one.
  ConcessionResult parNoisy =
      runConcession({.parallel = true, .interference = model});
  EXPECT_LE(parNoisy.pourTimesteps, noisy.pourTimesteps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InterferenceMonotonicity,
    ::testing::Combine(::testing::Values(2, 3, 4, 7),
                       ::testing::Values(1, 4, 6)));

}  // namespace
}  // namespace psnap::scenarios
