// Seeded random generators of block expressions and scripts, used by the
// property suites: every generated AST is valid against the standard
// registry, pure (worker-shippable), and evaluates without errors by
// construction (no division by zero, bounded depth).
#pragma once

#include <string>
#include <vector>

#include "blocks/builder.hpp"
#include "support/rng.hpp"

namespace psnap::testgen {

using namespace psnap::build;

/// A random pure arithmetic expression over one implicit parameter
/// (empty slots). Guaranteed division-safe: divisors are nonzero
/// literals.
inline BlockPtr randomArithmetic(Rng& rng, int depth) {
  if (depth <= 0) {
    // Leaf: literal or the parameter.
    switch (rng.below(3)) {
      case 0: return identity(empty());
      case 1: return identity(double(rng.between(-9, 9)));
      default: return identity(double(rng.between(1, 5)));
    }
  }
  auto sub = [&] { return In(randomArithmetic(rng, depth - 1)); };
  switch (rng.below(6)) {
    case 0: return sum(sub(), sub());
    case 1: return difference(sub(), sub());
    case 2: return product(sub(), sub());
    case 3:
      // Division by a nonzero *fractional* literal: C's static typing
      // would turn an all-integer division into integer division (the
      // dynamic->static mapping gap the paper's Sec. 6.3 calls out), so
      // the generator keeps expressions semantics-stable across targets.
      return quotient(sub(), double(rng.between(1, 7)) + 0.5);
    case 4:
      return ifElseReporter(greaterThan(sub(), 0.0), sub(), sub());
    default:
      return sum(product(sub(), 2.0), 1.0);
  }
}

/// A random command script over a fixed set of numeric variables
/// (a, b, c), using set/change/if/repeat — statements every code mapping
/// supports. Loop trip counts are small literals so scripts terminate
/// fast.
inline ScriptPtr randomScript(Rng& rng, int statements, int depth = 2) {
  std::vector<BlockPtr> blocks;
  const char* vars[] = {"a", "b", "c"};
  auto var = [&] { return vars[rng.below(3)]; };
  auto expr = [&] {
    // Variable-free arithmetic plus variable reads.
    if (rng.below(2) == 0) return In(getVar(var()));
    return In(sum(getVar(var()), double(rng.between(-5, 5))));
  };
  for (int i = 0; i < statements; ++i) {
    switch (rng.below(5)) {
      case 0:
        blocks.push_back(setVar(var(), expr()));
        break;
      case 1:
        blocks.push_back(changeVar(var(), double(rng.between(-3, 3))));
        break;
      case 2:
        if (depth > 0) {
          blocks.push_back(doIf(greaterThan(getVar(var()), 0.0),
                                randomScript(rng, 2, depth - 1)));
          break;
        }
        [[fallthrough]];
      case 3:
        if (depth > 0) {
          blocks.push_back(repeat(double(rng.between(1, 3)),
                                  randomScript(rng, 2, depth - 1)));
          break;
        }
        [[fallthrough]];
      default:
        blocks.push_back(setVar(var(), product(getVar(var()), 1.0)));
    }
  }
  return scriptOf(std::move(blocks));
}

}  // namespace psnap::testgen
