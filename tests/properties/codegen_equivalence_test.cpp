// Codegen semantic equivalence: randomly generated pure expressions are
// evaluated by the interpreter AND compiled to C (through the mapping
// tables) and executed — both must produce the same numbers. This is the
// strongest check on the paper's translation feature: not just "the text
// looks right" but "the generated program computes the same function".
//
// Expressions are batched into one C program per seed to amortize the
// gcc invocation.
#include <gtest/gtest.h>

#include <cmath>

#include "blocks/builder.hpp"
#include "codegen/toolchain.hpp"
#include "codegen/translator.hpp"
#include "sched/thread_manager.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "tests/properties/generators.hpp"

namespace psnap::codegen {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::Value;

class CodegenEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CodegenEquivalence, GeneratedCComputesSameValues) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  Rng rng{uint64_t(GetParam()) * 1013};
  static vm::PrimitiveTable prims = vm::PrimitiveTable::standard();

  constexpr int kExpressions = 12;
  const double inputs[] = {-7.0, -1.0, 0.0, 1.0, 3.0, 12.5};

  // Generate expressions; translate each into C with x as parameter.
  std::vector<blocks::BlockPtr> exprs;
  CodeMapping mapping = CodeMapping::c();
  std::string program =
      "#include <stdio.h>\n#include <math.h>\nint main() {\n"
      "    double inputs[] = {-7.0, -1.0, 0.0, 1.0, 3.0, 12.5};\n"
      "    for (int i = 0; i < 6; i++) {\n"
      "        double x = inputs[i];\n";
  Translator translator(mapping);
  for (int e = 0; e < kExpressions; ++e) {
    exprs.push_back(testgen::randomArithmetic(rng, 3));
    program += "        printf(\"%.9f\\n\", (double)(" +
               translator.mappedCode(*exprs.back()) + "));\n";
  }
  program += "    }\n    return 0;\n}\n";

  // Compile and run once.
  Toolchain tc;
  SourceSet sources;
  sources["main.c"] = program;
  auto run = tc.compileAndRun(sources, "exprs", false);
  auto lines = strings::split(strings::trim(run.output), '\n');
  ASSERT_EQ(lines.size(), size_t(6 * kExpressions)) << run.output;

  // Compare against the interpreter, expression-major inside input-major.
  size_t lineIndex = 0;
  for (double x : inputs) {
    for (int e = 0; e < kExpressions; ++e, ++lineIndex) {
      sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
      Value expected = tm.evaluate(
          callRing(ring(In(exprs[size_t(e)])), {In(x)}),
          Environment::make());
      double compiled = 0;
      ASSERT_TRUE(strings::parseNumber(lines[lineIndex], compiled))
          << lines[lineIndex];
      EXPECT_NEAR(compiled, expected.asNumber(),
                  1e-6 * std::max(1.0, std::fabs(expected.asNumber())))
          << "seed=" << GetParam() << " expr=" << e << " x=" << x << "\n"
          << exprs[size_t(e)]->display();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodegenEquivalence, ::testing::Range(1, 5));

// Known divergence, kept as a pinned test: an all-integer-literal
// division translates to C *integer* division (3/6 == 0), while the
// interpreter computes 0.5 — exactly the dynamic→static type-mapping gap
// the paper's Sec. 6.3 lists as future work. The property generator
// avoids it with fractional divisors; this test documents the behaviour.
TEST(CodegenKnownGaps, IntegerDivisionDiffersFromInterpreter) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  static vm::PrimitiveTable prims = vm::PrimitiveTable::standard();
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
  Value interpreted = tm.evaluate(quotient(3, 6), Environment::make());
  EXPECT_EQ(interpreted.asNumber(), 0.5);

  Translator translator(CodeMapping::c());
  SourceSet sources;
  sources["main.c"] =
      "#include <stdio.h>\nint main() {\n    printf(\"%g\\n\", (double)(" +
      translator.mappedCode(*quotient(3, 6)) + "));\n    return 0;\n}\n";
  Toolchain tc;
  auto run = tc.compileAndRun(sources, "intdiv", false);
  EXPECT_EQ(strings::trim(run.output), "0");  // C integer division
}

// JavaScript and Python translations of the same expressions are at least
// structurally sound: balanced parentheses, no stray placeholders.
class TextualSanity : public ::testing::TestWithParam<int> {};

TEST_P(TextualSanity, BalancedAndPlaceholderFree) {
  Rng rng{uint64_t(GetParam()) * 41};
  for (const CodeMapping* mapping :
       {&CodeMapping::c(), &CodeMapping::javascript(),
        &CodeMapping::python()}) {
    Translator translator(*mapping);
    for (int trial = 0; trial < 8; ++trial) {
      auto expr = testgen::randomArithmetic(rng, 4);
      std::string code = translator.mappedCode(*expr);
      int depth = 0;
      for (char ch : code) {
        if (ch == '(') ++depth;
        if (ch == ')') --depth;
        EXPECT_GE(depth, 0);
      }
      EXPECT_EQ(depth, 0) << code;
      EXPECT_EQ(code.find("<#"), std::string::npos) << code;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextualSanity, ::testing::Range(1, 7));

}  // namespace
}  // namespace psnap::codegen
