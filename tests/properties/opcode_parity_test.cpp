// Opcode parity: for every pure opcode in the palette, a sample
// expression is evaluated by the interpreter AND by the worker-side pure
// evaluator (compileRing) — the two execution engines must agree, since
// parallelMap's correctness rests on that agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "blocks/builder.hpp"
#include "blocks/opcodes.hpp"
#include "core/parallel_blocks.hpp"
#include "core/pure_eval.hpp"
#include "sched/thread_manager.hpp"
#include "support/rng.hpp"
#include "tests/properties/generators.hpp"
#include "vm/process.hpp"

namespace psnap::core {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::Value;

struct Sample {
  const char* opcode;       // documented coverage target
  blocks::BlockPtr expr;    // expression using the opcode, over one blank
};

std::vector<Sample> samples() {
  return {
      {"reportSum", sum(empty(), 2)},
      {"reportDifference", difference(empty(), 2)},
      {"reportProduct", product(empty(), 3)},
      {"reportQuotient", quotient(empty(), 4)},
      {"reportModulus", modulus(empty(), 3)},
      {"reportPower", power(empty(), 2)},
      {"reportRound", round_(empty())},
      {"reportMonadic", monadic("abs", empty())},
      {"reportMonadic", monadic("sqrt", empty())},
      {"reportMonadic", monadic("atan", empty())},
      {"reportMonadic", monadic("floor", quotient(empty(), 2.5))},
      {"reportEquals", equals(empty(), 5)},
      {"reportLessThan", lessThan(empty(), 5)},
      {"reportGreaterThan", greaterThan(empty(), 5)},
      {"reportAnd", and_(greaterThan(empty(), 0), true)},
      {"reportOr", or_(lessThan(empty(), 0), false)},
      {"reportNot", not_(equals(empty(), 5))},
      {"reportIfElse", ifElseReporter(greaterThan(empty(), 0), "pos",
                                      "nonpos")},
      {"reportJoinWords", join({In("v="), In(empty())})},
      {"reportLetter", letter(1, join({In("x"), In(empty())}))},
      {"reportStringSize", textLength(join({In("n"), In(empty())}))},
      {"reportUnicode", blk("reportUnicode", {In("A")})},
      {"reportUnicodeAsLetter", blk("reportUnicodeAsLetter", {In(66)})},
      {"reportSplit", splitText(join({In("a b "), In(empty())}), " ")},
      {"reportIsA", isA(empty(), "number")},
      {"reportIdentity", identity(empty())},
      {"reportNewList", listOf({In(empty()), In(2)})},
      {"reportListItem", itemOf(1, listOf({In(empty()), In(2)}))},
      {"reportListLength", lengthOf(listOf({In(empty()), In(2)}))},
      {"reportListContainsItem",
       contains(listOf({1, 2, 3}), empty())},
      {"reportListIndex", indexOf(empty(), listOf({5, 7, 9}))},
      {"reportCONS", blk("reportCONS", {In(empty()), In(listOf({1}))})},
      {"reportCDR", blk("reportCDR", {In(listOf({In(empty()), In(2)}))})},
      {"reportNumbers", numbersFromTo(1, sum(empty(), 1))},
      {"reportSorted", sorted(listOf({In(empty()), In(3), In(-1)}))},
      {"reportMap", mapOver(ring(product(empty(), 2)),
                            listOf({In(empty()), In(4)}))},
      {"reportKeep", keepFrom(ring(greaterThan(empty(), 2)),
                              listOf({In(empty()), In(5)}))},
      {"reportCombine", combineUsing(listOf({In(empty()), In(4), In(6)}),
                                     ring(sum(empty(), empty())))},
      {"evaluate", callRing(ring(sum(empty(), 100)), {In(empty())})},
  };
}

class OpcodeParity : public ::testing::TestWithParam<size_t> {};

TEST_P(OpcodeParity, InterpreterAndPureEvaluatorAgree) {
  Sample sample = samples()[GetParam()];
  static vm::PrimitiveTable prims = fullPrimitiveTable();

  // Note: inner rings capture their own blanks, so pass a blank-free
  // argument set — the sample's outermost blanks positionally.
  for (double x : {1.0, 3.0, 7.0}) {
    sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
    blocks::RingPtr ringValue =
        tm.evaluate(ring(In(sample.expr)), Environment::make()).asRing();

    sched::ThreadManager tm2(&BlockRegistry::standard(), &prims);
    Value viaInterpreter = tm2.evaluate(
        callRing(ring(In(sample.expr)), {In(x)}), Environment::make());
    Value viaPure = compileRing(ringValue)({Value(x)});
    EXPECT_TRUE(viaPure.equals(viaInterpreter))
        << sample.opcode << " x=" << x
        << "\n  interpreter: " << viaInterpreter.display()
        << "\n  pure:        " << viaPure.display();
  }
}

INSTANTIATE_TEST_SUITE_P(AllPureOpcodes, OpcodeParity,
                         ::testing::Range<size_t>(0, samples().size()),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return std::string(samples()[info.param].opcode) +
                                  "_" + std::to_string(info.param);
                         });

// Every sample above names a real registered pure opcode — keeps the
// table honest as the palette grows.
TEST(OpcodeParityTable, CoversOnlyRegisteredPureOpcodes) {
  const BlockRegistry& registry = BlockRegistry::standard();
  for (const Sample& sample : samples()) {
    ASSERT_TRUE(registry.has(sample.opcode)) << sample.opcode;
    if (std::string(sample.opcode) != "evaluate") {
      EXPECT_TRUE(registry.get(sample.opcode).pure) << sample.opcode;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch-table integrity: the interned-id tables (registry, primitive
// table) must agree with each other and with the string surface.
// ---------------------------------------------------------------------------

// Specs that intentionally have no primitive handler: hat blocks are
// matched by the stage's event dispatcher and the code-mapping pair is
// expanded by the code generator, so none of them ever reach
// Process::stepBlock.
const std::set<std::string>& handlerlessOpcodes() {
  static const std::set<std::string> kHandlerless = {
      "doMapToCode",       "reportMappedCode", "receiveCloneStart",
      "receiveGo",         "receiveKey",       "receiveMessage",
  };
  return kHandlerless;
}

TEST(DispatchTables, HandlersAndSpecsAgreeById) {
  const BlockRegistry& registry = BlockRegistry::standard();
  vm::PrimitiveTable prims = fullPrimitiveTable();

  // Every registered handler id names a registered spec, and the spec
  // carries that same id.
  for (blocks::OpcodeId opId : prims.registeredIds()) {
    const blocks::BlockSpec* spec = registry.specOf(opId);
    ASSERT_NE(spec, nullptr) << blocks::opcodeName(opId);
    EXPECT_EQ(spec->id, opId) << spec->opcode;
  }

  // Every spec either has a handler under its id or is on the known
  // handlerless list — no opcode silently falls through both tables.
  for (const std::string& opcode : registry.opcodes()) {
    const blocks::OpcodeId opId = registry.idOf(opcode);
    if (prims.findById(opId) == nullptr) {
      EXPECT_TRUE(handlerlessOpcodes().count(opcode))
          << opcode << " has a spec but no handler";
    } else {
      EXPECT_FALSE(handlerlessOpcodes().count(opcode))
          << opcode << " gained a handler; update handlerlessOpcodes()";
    }
  }
}

TEST(DispatchTables, IdOfAndSpecOfRoundTripForEveryOpcode) {
  const BlockRegistry& registry = BlockRegistry::standard();
  const std::vector<std::string>& opcodes = registry.opcodes();
  EXPECT_TRUE(std::is_sorted(opcodes.begin(), opcodes.end()));

  for (const std::string& opcode : opcodes) {
    const blocks::OpcodeId opId = registry.idOf(opcode);
    ASSERT_NE(opId, blocks::kInvalidOpcodeId) << opcode;
    EXPECT_EQ(blocks::lookupOpcode(opcode), opId) << opcode;
    EXPECT_EQ(blocks::opcodeName(opId), opcode);
    const blocks::BlockSpec* spec = registry.specOf(opId);
    ASSERT_NE(spec, nullptr) << opcode;
    EXPECT_EQ(spec->opcode, opcode);
    EXPECT_EQ(spec->id, opId);
    // Blocks constructed with this opcode intern to the same id.
    EXPECT_EQ(blk(opcode)->opcodeId(), opId) << opcode;
  }
}

// ---------------------------------------------------------------------------
// Dispatch parity: the id-dispatch fast path and the string-dispatch
// reference path must be observationally identical on random programs.
// ---------------------------------------------------------------------------

Value runExpression(vm::DispatchMode mode, const blocks::BlockPtr& expr) {
  static vm::PrimitiveTable prims = fullPrimitiveTable();
  vm::NullHost host;
  vm::Process p(&BlockRegistry::standard(), &prims, &host);
  p.setDispatchMode(mode);
  p.startExpression(expr, Environment::make());
  return p.runToCompletion();
}

void runScript(vm::DispatchMode mode, const blocks::ScriptPtr& script,
               const blocks::EnvPtr& env) {
  static vm::PrimitiveTable prims = fullPrimitiveTable();
  vm::NullHost host;
  vm::Process p(&BlockRegistry::standard(), &prims, &host);
  p.setDispatchMode(mode);
  p.startScript(script, env);
  p.runToCompletion();
}

TEST(DispatchParity, RandomExpressionsAgreeAcrossDispatchModes) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    blocks::BlockPtr expr = testgen::randomArithmetic(rng, 4);
    for (double x : {1.0, 3.0, 7.0}) {
      blocks::BlockPtr call = callRing(ring(In(expr)), {In(x)});
      Value byId = runExpression(vm::DispatchMode::ById, call);
      Value byString = runExpression(vm::DispatchMode::ByString, call);
      EXPECT_TRUE(byId.equals(byString))
          << "seed=" << seed << " x=" << x << "\n  expr:     "
          << expr->display() << "\n  byId:     " << byId.display()
          << "\n  byString: " << byString.display();
    }
  }
}

TEST(DispatchParity, RandomScriptsAgreeAcrossDispatchModes) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto initial = [&](const blocks::EnvPtr& env) {
      env->declare("a", Value(double(seed)));
      env->declare("b", Value(-3.0));
      env->declare("c", Value(0.5));
    };
    Rng rngA(seed);
    blocks::ScriptPtr script = testgen::randomScript(rngA, 8);

    blocks::EnvPtr envById = Environment::make();
    initial(envById);
    runScript(vm::DispatchMode::ById, script, envById);

    blocks::EnvPtr envByString = Environment::make();
    initial(envByString);
    runScript(vm::DispatchMode::ByString, script, envByString);

    for (const char* name : {"a", "b", "c"}) {
      EXPECT_TRUE(envById->get(name).equals(envByString->get(name)))
          << "seed=" << seed << " var=" << name
          << "\n  byId:     " << envById->get(name).display()
          << "\n  byString: " << envByString->get(name).display()
          << "\n  script:\n" << script->display();
    }
  }
}

}  // namespace
}  // namespace psnap::core
