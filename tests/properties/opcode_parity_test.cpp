// Opcode parity: for every pure opcode in the palette, a sample
// expression is evaluated by the interpreter AND by the worker-side pure
// evaluator (compileRing) — the two execution engines must agree, since
// parallelMap's correctness rests on that agreement.
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "core/pure_eval.hpp"
#include "sched/thread_manager.hpp"

namespace psnap::core {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::Value;

struct Sample {
  const char* opcode;       // documented coverage target
  blocks::BlockPtr expr;    // expression using the opcode, over one blank
};

std::vector<Sample> samples() {
  return {
      {"reportSum", sum(empty(), 2)},
      {"reportDifference", difference(empty(), 2)},
      {"reportProduct", product(empty(), 3)},
      {"reportQuotient", quotient(empty(), 4)},
      {"reportModulus", modulus(empty(), 3)},
      {"reportPower", power(empty(), 2)},
      {"reportRound", round_(empty())},
      {"reportMonadic", monadic("abs", empty())},
      {"reportMonadic", monadic("sqrt", empty())},
      {"reportMonadic", monadic("atan", empty())},
      {"reportMonadic", monadic("floor", quotient(empty(), 2.5))},
      {"reportEquals", equals(empty(), 5)},
      {"reportLessThan", lessThan(empty(), 5)},
      {"reportGreaterThan", greaterThan(empty(), 5)},
      {"reportAnd", and_(greaterThan(empty(), 0), true)},
      {"reportOr", or_(lessThan(empty(), 0), false)},
      {"reportNot", not_(equals(empty(), 5))},
      {"reportIfElse", ifElseReporter(greaterThan(empty(), 0), "pos",
                                      "nonpos")},
      {"reportJoinWords", join({In("v="), In(empty())})},
      {"reportLetter", letter(1, join({In("x"), In(empty())}))},
      {"reportStringSize", textLength(join({In("n"), In(empty())}))},
      {"reportUnicode", blk("reportUnicode", {In("A")})},
      {"reportUnicodeAsLetter", blk("reportUnicodeAsLetter", {In(66)})},
      {"reportSplit", splitText(join({In("a b "), In(empty())}), " ")},
      {"reportIsA", isA(empty(), "number")},
      {"reportIdentity", identity(empty())},
      {"reportNewList", listOf({In(empty()), In(2)})},
      {"reportListItem", itemOf(1, listOf({In(empty()), In(2)}))},
      {"reportListLength", lengthOf(listOf({In(empty()), In(2)}))},
      {"reportListContainsItem",
       contains(listOf({1, 2, 3}), empty())},
      {"reportListIndex", indexOf(empty(), listOf({5, 7, 9}))},
      {"reportCONS", blk("reportCONS", {In(empty()), In(listOf({1}))})},
      {"reportCDR", blk("reportCDR", {In(listOf({In(empty()), In(2)}))})},
      {"reportNumbers", numbersFromTo(1, sum(empty(), 1))},
      {"reportSorted", sorted(listOf({In(empty()), In(3), In(-1)}))},
      {"reportMap", mapOver(ring(product(empty(), 2)),
                            listOf({In(empty()), In(4)}))},
      {"reportKeep", keepFrom(ring(greaterThan(empty(), 2)),
                              listOf({In(empty()), In(5)}))},
      {"reportCombine", combineUsing(listOf({In(empty()), In(4), In(6)}),
                                     ring(sum(empty(), empty())))},
      {"evaluate", callRing(ring(sum(empty(), 100)), {In(empty())})},
  };
}

class OpcodeParity : public ::testing::TestWithParam<size_t> {};

TEST_P(OpcodeParity, InterpreterAndPureEvaluatorAgree) {
  Sample sample = samples()[GetParam()];
  static vm::PrimitiveTable prims = fullPrimitiveTable();

  // Note: inner rings capture their own blanks, so pass a blank-free
  // argument set — the sample's outermost blanks positionally.
  for (double x : {1.0, 3.0, 7.0}) {
    sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
    blocks::RingPtr ringValue =
        tm.evaluate(ring(In(sample.expr)), Environment::make()).asRing();

    sched::ThreadManager tm2(&BlockRegistry::standard(), &prims);
    Value viaInterpreter = tm2.evaluate(
        callRing(ring(In(sample.expr)), {In(x)}), Environment::make());
    Value viaPure = compileRing(ringValue)({Value(x)});
    EXPECT_TRUE(viaPure.equals(viaInterpreter))
        << sample.opcode << " x=" << x
        << "\n  interpreter: " << viaInterpreter.display()
        << "\n  pure:        " << viaPure.display();
  }
}

INSTANTIATE_TEST_SUITE_P(AllPureOpcodes, OpcodeParity,
                         ::testing::Range<size_t>(0, samples().size()),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return std::string(samples()[info.param].opcode) +
                                  "_" + std::to_string(info.param);
                         });

// Every sample above names a real registered pure opcode — keeps the
// table honest as the palette grows.
TEST(OpcodeParityTable, CoversOnlyRegisteredPureOpcodes) {
  const BlockRegistry& registry = BlockRegistry::standard();
  for (const Sample& sample : samples()) {
    ASSERT_TRUE(registry.has(sample.opcode)) << sample.opcode;
    if (std::string(sample.opcode) != "evaluate") {
      EXPECT_TRUE(registry.get(sample.opcode).pure) << sample.opcode;
    }
  }
}

}  // namespace
}  // namespace psnap::core
