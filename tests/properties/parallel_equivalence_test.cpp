// Property sweep: for every (list size × worker count × distribution ×
// function), the parallelMap block reports exactly what the sequential
// map block reports — the fundamental correctness contract of the
// paper's contribution.
#include <gtest/gtest.h>

#include <tuple>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "core/pure_eval.hpp"
#include "sched/thread_manager.hpp"
#include "support/rng.hpp"
#include "tests/properties/generators.hpp"
#include "workers/parallel.hpp"

namespace psnap::core {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::Value;

// ---------------------------------------------------------------------------
// Block-level equivalence over (size × workers).
// ---------------------------------------------------------------------------
class ParallelMapEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelMapEquivalence, MatchesSequentialMap) {
  const auto [size, workerCount] = GetParam();
  auto prims = fullPrimitiveTable();
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
  auto fn = ring(sum(product(empty(), empty()), 1));  // x*x + 1
  Value par = tm.evaluate(
      parallelMap(fn, numbersFromTo(1, size), In(double(workerCount))),
      Environment::make());
  sched::ThreadManager tm2(&BlockRegistry::standard(), &prims);
  Value seq = tm2.evaluate(mapOver(fn, numbersFromTo(1, size)),
                           Environment::make());
  EXPECT_TRUE(par.equals(seq))
      << "size=" << size << " workers=" << workerCount;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelMapEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 3, 17, 100, 1000),
                       ::testing::Values(1, 2, 3, 4, 8)));

// ---------------------------------------------------------------------------
// Facade-level equivalence over distribution strategies.
// ---------------------------------------------------------------------------
class DistributionEquivalence
    : public ::testing::TestWithParam<
          std::tuple<workers::Distribution, int, int>> {};

TEST_P(DistributionEquivalence, AllStrategiesProduceSameResult) {
  const auto [distribution, size, chunk] = GetParam();
  std::vector<Value> input;
  for (int i = 1; i <= size; ++i) input.emplace_back(double(i));
  workers::Parallel job(input, {.maxWorkers = 3,
                                .distribution = distribution,
                                .chunkSize = size_t(chunk)});
  job.map([](const Value& v) {
    return Value(v.asNumber() * 2 - 1);
  });
  const auto& out = job.data();
  ASSERT_EQ(out.size(), size_t(size));
  for (int i = 0; i < size; ++i) {
    EXPECT_EQ(out[size_t(i)].asNumber(), 2.0 * (i + 1) - 1) << i;
  }
  // Conservation: every item processed exactly once.
  uint64_t total = 0;
  for (uint64_t c : job.itemsPerWorker()) total += c;
  EXPECT_EQ(total, uint64_t(size));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributionEquivalence,
    ::testing::Combine(
        ::testing::Values(workers::Distribution::Dynamic,
                          workers::Distribution::Contiguous,
                          workers::Distribution::BlockCyclic),
        ::testing::Values(1, 7, 64, 257),
        ::testing::Values(1, 3, 16)));

// ---------------------------------------------------------------------------
// Random pure rings: compiled worker function ≡ interpreter, across seeds.
// ---------------------------------------------------------------------------
class RandomRingEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomRingEquivalence, CompiledPureFnMatchesInterpreter) {
  Rng rng{uint64_t(GetParam())};
  auto prims = fullPrimitiveTable();
  for (int trial = 0; trial < 10; ++trial) {
    auto expr = testgen::randomArithmetic(rng, 3);
    auto reify = ring(In(expr));

    sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
    auto ringValue =
        tm.evaluate(reify, Environment::make()).asRing();
    auto compiled = compileUnary(ringValue);

    for (double x : {-3.0, 0.0, 1.0, 2.5, 10.0}) {
      sched::ThreadManager tm2(&BlockRegistry::standard(), &prims);
      Value viaInterpreter = tm2.evaluate(
          callRing(ring(In(expr)), {In(x)}), Environment::make());
      Value viaWorkerFn = compiled(Value(x));
      EXPECT_TRUE(viaWorkerFn.equals(viaInterpreter))
          << "seed=" << GetParam() << " trial=" << trial << " x=" << x
          << " expr=" << expr->display();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRingEquivalence,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// parallelForEach: sequential and parallel modes converge to the same
// final state for commutative bodies, across sizes and parallelism caps.
// ---------------------------------------------------------------------------
class ForEachEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ForEachEquivalence, ModesAgreeOnCommutativeBody) {
  const auto [size, parallelism] = GetParam();
  auto prims = fullPrimitiveTable();
  auto runMode = [&](In mode) {
    sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
    auto env = Environment::make();
    env->declare("total", Value(0));
    auto handle = tm.spawnScript(
        scriptOf({parallelForEach(
            "item", numbersFromTo(1, size), std::move(mode),
            scriptOf({changeVar("total", getVar("item"))}))}),
        env);
    tm.runUntilIdle();
    EXPECT_FALSE(handle.status->errored) << handle.status->error;
    return env->get("total").asNumber();
  };
  double seq = runMode(collapsed());
  double par = runMode(In(double(parallelism)));
  double expected = double(size) * (size + 1) / 2.0;
  EXPECT_EQ(seq, expected);
  EXPECT_EQ(par, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ForEachEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 5, 12, 30),
                       ::testing::Values(1, 2, 3, 8)));

}  // namespace
}  // namespace psnap::core
