// Serialization properties over randomly generated scripts: XML round
// trips preserve structure (display equality), and the parsed scripts
// execute to the same final state as the originals.
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "project/project.hpp"
#include "sched/thread_manager.hpp"
#include "support/rng.hpp"
#include "tests/properties/generators.hpp"

namespace psnap::project {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::Value;

class ScriptRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ScriptRoundTrip, StructurePreserved) {
  Rng rng{uint64_t(GetParam())};
  for (int trial = 0; trial < 5; ++trial) {
    auto script = testgen::randomScript(rng, 6);
    auto parsed = scriptFromXml(scriptToXml(*script));
    EXPECT_EQ(parsed->display(), script->display())
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScriptRoundTrip, ::testing::Range(1, 13));

class ScriptRoundTripExecution : public ::testing::TestWithParam<int> {};

TEST_P(ScriptRoundTripExecution, ParsedScriptsBehaveIdentically) {
  Rng rng{uint64_t(GetParam()) * 977};
  static vm::PrimitiveTable prims = vm::PrimitiveTable::standard();

  auto script = testgen::randomScript(rng, 8);
  auto parsed = scriptFromXml(scriptToXml(*script));

  auto runIt = [&](const blocks::ScriptPtr& s) {
    sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
    auto env = Environment::make();
    env->declare("a", Value(1));
    env->declare("b", Value(2));
    env->declare("c", Value(3));
    auto handle = tm.spawnScript(s, env);
    tm.runUntilIdle();
    EXPECT_FALSE(handle.status->errored) << handle.status->error;
    return std::tuple{env->get("a").asNumber(), env->get("b").asNumber(),
                      env->get("c").asNumber()};
  };

  EXPECT_EQ(runIt(script), runIt(parsed)) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScriptRoundTripExecution,
                         ::testing::Range(1, 17));

// Expressions with rings and empty slots round trip too.
class RingRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RingRoundTrip, RingExpressionsSurvive) {
  Rng rng{uint64_t(GetParam()) * 31};
  auto expr = testgen::randomArithmetic(rng, 3);
  auto script = scriptOf({setVar(
      "out", mapOver(ring(In(expr)), listOf({1, 2, 3, 4, 5})))});
  auto parsed = scriptFromXml(scriptToXml(*script));
  EXPECT_EQ(parsed->display(), script->display());

  static vm::PrimitiveTable prims = vm::PrimitiveTable::standard();
  auto runIt = [&](const blocks::ScriptPtr& s) {
    sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
    auto env = Environment::make();
    env->declare("out", Value());
    tm.spawnScript(s, env);
    tm.runUntilIdle();
    EXPECT_TRUE(tm.errors().empty());
    return env->get("out").display();
  };
  EXPECT_EQ(runIt(script), runIt(parsed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingRoundTrip, ::testing::Range(1, 11));

}  // namespace
}  // namespace psnap::project
