// Workload generators: determinism, distribution shape, reference
// implementations, CSV round-trips.
#include <gtest/gtest.h>

#include <cmath>

#include "data/climate.hpp"
#include "data/corpus.hpp"
#include "data/csv.hpp"
#include "support/error.hpp"

namespace psnap::data {
namespace {

TEST(Corpus, DeterministicPerSeed) {
  EXPECT_EQ(generateText(100, 20, 7), generateText(100, 20, 7));
  EXPECT_NE(generateText(100, 20, 7), generateText(100, 20, 8));
}

TEST(Corpus, WordCountMatchesRequest) {
  auto words = tokenize(generateText(250, 30, 1));
  EXPECT_EQ(words.size(), 250u);
}

TEST(Corpus, ZipfShapeMostFrequentFirstRank) {
  // Rank-1 word ("the") should dominate a large sample.
  auto counts = referenceWordCount(generateText(20000, 30, 3));
  size_t theCount = counts.count("the") ? counts.at("the") : 0;
  for (const auto& [word, count] : counts) {
    EXPECT_LE(count, theCount) << word;
  }
  // And the sample uses a healthy share of the vocabulary.
  EXPECT_GE(counts.size(), 20u);
}

TEST(Corpus, LargeVocabularySynthesizesWords) {
  auto counts = referenceWordCount(generateText(5000, 200, 5));
  bool sawSynthetic = false;
  for (const auto& [word, count] : counts) {
    if (word[0] == 'w' && word.size() > 1 &&
        std::isdigit(static_cast<unsigned char>(word[1]))) {
      sawSynthetic = true;
    }
  }
  EXPECT_TRUE(sawSynthetic);
}

TEST(Corpus, ReferenceWordCountOnSample) {
  auto counts = referenceWordCount("the quick the lazy the");
  EXPECT_EQ(counts.at("the"), 3u);
  EXPECT_EQ(counts.at("quick"), 1u);
  EXPECT_EQ(counts.size(), 3u);
}

TEST(Corpus, TokenizeLowercases) {
  auto words = tokenize("The QUICK Fox");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "the");
  EXPECT_EQ(words[1], "quick");
}

TEST(Climate, DeterministicAndComplete) {
  ClimateConfig config;
  config.stations = 3;
  config.firstYear = 2000;
  config.lastYear = 2004;
  auto a = generateClimate(config);
  auto b = generateClimate(config);
  ASSERT_EQ(a.size(), 3u * 5u * 12u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fahrenheit, b[i].fahrenheit);
  }
}

TEST(Climate, FahrenheitToCelsiusAnchors) {
  EXPECT_EQ(fahrenheitToCelsius(32), 0);
  EXPECT_EQ(fahrenheitToCelsius(212), 100);
  EXPECT_NEAR(fahrenheitToCelsius(98.6), 37.0, 1e-12);
}

TEST(Climate, WarmingTrendVisibleInYearlyMeans) {
  ClimateConfig config;
  config.stations = 6;
  config.firstYear = 1950;
  config.lastYear = 2010;
  config.warmingPerDecadeF = 0.5;
  config.noiseStddevF = 1.0;
  auto records = generateClimate(config);
  auto yearly = referenceYearlyMeanCelsius(records);
  ASSERT_EQ(yearly.size(), 61u);
  // Average of the last decade exceeds the first decade's.
  double early = 0, late = 0;
  for (int i = 0; i < 10; ++i) {
    early += yearly[static_cast<size_t>(i)].second;
    late += yearly[yearly.size() - 1 - static_cast<size_t>(i)].second;
  }
  EXPECT_GT(late, early + 1.0);  // ≥ ~0.28 C per decade over 5 decades
}

TEST(Climate, SeasonalCycleWithinAYear) {
  ClimateConfig config;
  config.stations = 1;
  config.firstYear = 2000;
  config.lastYear = 2000;
  config.noiseStddevF = 0.0;
  auto records = generateClimate(config);
  ASSERT_EQ(records.size(), 12u);
  double july = records[6].fahrenheit;   // month 7
  double january = records[0].fahrenheit;
  EXPECT_GT(july, january);  // northern-hemisphere shaped seasonality
}

TEST(Climate, ListAndKvpConversions) {
  ClimateConfig config;
  config.stations = 1;
  config.firstYear = 2000;
  config.lastYear = 2000;
  auto records = generateClimate(config);
  auto list = toFahrenheitList(records);
  EXPECT_EQ(list->length(), records.size());
  EXPECT_EQ(list->item(1).asNumber(), records[0].fahrenheit);
  std::string kvp = toKvpText(records);
  EXPECT_NE(kvp.find("USW00001 "), std::string::npos);
  std::string keyed = toKvpText(records, "avgC");
  EXPECT_EQ(keyed.find("USW00001"), std::string::npos);
  EXPECT_NE(keyed.find("avgC "), std::string::npos);
}

TEST(Climate, MeanOfEmptyThrows) {
  EXPECT_THROW(referenceMeanCelsius({}), Error);
}

TEST(Csv, ParseBasic) {
  auto rows = parseCsv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][2], "3");
}

TEST(Csv, QuotedFields) {
  auto rows = parseCsv("\"a,b\",\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "say \"hi\"");
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parseCsv("\"oops\n"), ParseError);
}

TEST(Csv, RoundTrip) {
  std::vector<CsvRow> rows = {{"station", "tempF"},
                              {"USW00001", "72.5"},
                              {"has,comma", "say \"hi\""}};
  auto parsed = parseCsv(writeCsv(rows));
  EXPECT_EQ(parsed, rows);
}

TEST(Csv, ListConversionsTypeFields) {
  auto list = csvToList(parseCsv("USW00001,72.5\nUSW00002,68\n"));
  ASSERT_EQ(list->length(), 2u);
  EXPECT_TRUE(list->item(1).asList()->item(1).isText());
  EXPECT_TRUE(list->item(1).asList()->item(2).isNumber());
  EXPECT_EQ(list->item(2).asList()->item(2).asNumber(), 68);
  auto rows = listToCsv(list);
  EXPECT_EQ(rows[0][0], "USW00001");
  EXPECT_EQ(rows[0][1], "72.5");
}

}  // namespace
}  // namespace psnap::data
