// Tests for the Parallel.js facade: the paper's Listing 1 scenario plus
// distribution strategies, error propagation, and virtual-makespan
// accounting.
#include "workers/parallel.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "blocks/block.hpp"

#include "support/error.hpp"
#include "workers/worker_pool.hpp"

namespace psnap::workers {
namespace {

using blocks::List;
using blocks::Value;

std::vector<Value> numbers(int n) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 1; i <= n; ++i) out.emplace_back(i);
  return out;
}

// Paper Listing 1: double [1,2,3,4] with 2 workers.
TEST(Parallel, ListingOneScenario) {
  Parallel p(numbers(4), {.maxWorkers = 2});
  p.map([](const Value& v) { return Value(v.asNumber() + v.asNumber()); });
  const auto& data = p.data();
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(data[0].asNumber(), 2);
  EXPECT_EQ(data[3].asNumber(), 8);
  EXPECT_EQ(p.workerCount(), 2u);
}

TEST(Parallel, DefaultsToFourWorkers) {
  Parallel p(numbers(1), {});
  EXPECT_EQ(p.workerCount(), 4u);  // the paper's default
}

TEST(Parallel, ResolvedFlagFlips) {
  Parallel p(numbers(100), {.maxWorkers = 2});
  EXPECT_FALSE(p.resolved());  // not launched yet
  p.map([](const Value& v) { return Value(v.asNumber() * 10); });
  p.wait();
  EXPECT_TRUE(p.resolved());
  EXPECT_EQ(p.data()[99].asNumber(), 1000);
}

TEST(Parallel, MoreElementsThanWorkersAllProcessed) {
  // "the workers systematically process the remaining elements"
  constexpr int kN = 1000;
  Parallel p(numbers(kN), {.maxWorkers = 3});
  p.map([](const Value& v) { return Value(v.asNumber() + 1); });
  const auto& data = p.data();
  double sum = 0;
  for (const Value& v : data) sum += v.asNumber();
  EXPECT_EQ(sum, kN * (kN + 1) / 2.0 + kN);
  auto per = p.itemsPerWorker();
  EXPECT_EQ(std::accumulate(per.begin(), per.end(), uint64_t{0}),
            uint64_t{kN});
}

TEST(Parallel, ContiguousDistributionCoversAll) {
  Parallel p(numbers(10),
             {.maxWorkers = 4, .distribution = Distribution::Contiguous});
  p.map([](const Value& v) { return Value(-v.asNumber()); });
  const auto& data = p.data();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(data[size_t(i)].asNumber(), -(i + 1));
}

TEST(Parallel, BlockCyclicDistributionCoversAll) {
  Parallel p(numbers(17), {.maxWorkers = 3,
                           .distribution = Distribution::BlockCyclic,
                           .chunkSize = 2});
  p.map([](const Value& v) { return Value(v.asNumber() * 2); });
  const auto& data = p.data();
  ASSERT_EQ(data.size(), 17u);
  for (int i = 0; i < 17; ++i) {
    EXPECT_EQ(data[size_t(i)].asNumber(), 2 * (i + 1));
  }
}

TEST(Parallel, VirtualMakespanIdealBalance) {
  // 12 unit items on 4 workers: any distribution achieves makespan >= 3;
  // contiguous achieves exactly ceil(12/4) = 3.
  Parallel p(numbers(12),
             {.maxWorkers = 4, .distribution = Distribution::Contiguous});
  p.map([](const Value& v) { return v; });
  p.wait();
  EXPECT_EQ(p.virtualMakespan(), 3u);
}

TEST(Parallel, ReduceSums) {
  Parallel p(numbers(100), {.maxWorkers = 4});
  p.reduce([](const Value& a, const Value& b) {
    return Value(a.asNumber() + b.asNumber());
  });
  const auto& data = p.data();
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0].asNumber(), 5050);
}

TEST(Parallel, ReduceSingleElement) {
  Parallel p(numbers(1), {.maxWorkers = 4});
  p.reduce([](const Value& a, const Value& b) {
    return Value(a.asNumber() + b.asNumber());
  });
  ASSERT_EQ(p.data().size(), 1u);
  EXPECT_EQ(p.data()[0].asNumber(), 1);
}

TEST(Parallel, EmptyInputMapYieldsEmpty) {
  Parallel p(std::vector<Value>{}, {.maxWorkers = 2});
  p.map([](const Value& v) { return v; });
  EXPECT_TRUE(p.data().empty());
}

TEST(Parallel, WorkerErrorPropagates) {
  Parallel p(numbers(8), {.maxWorkers = 2});
  p.map([](const Value& v) -> Value {
    if (v.asNumber() == 5) throw Error("boom at five");
    return v;
  });
  p.wait();
  EXPECT_TRUE(p.failed());
  EXPECT_NE(p.errorMessage().find("boom"), std::string::npos);
  EXPECT_THROW(p.data(), Error);
}

TEST(Parallel, WorkerTypeErrorKeepsItsType) {
  // Regression: recordError used to flatten every worker exception into a
  // base-class Error, so a TypeError thrown on a worker lost its type (and
  // its class tag) by the time data() rethrew it.
  Parallel p(numbers(8), {.maxWorkers = 2});
  p.map([](const Value& v) -> Value {
    if (v.asNumber() == 3) throw TypeError("expected a number");
    return v;
  });
  p.wait();
  EXPECT_TRUE(p.failed());
  EXPECT_EQ(p.errorClass(), ErrorClass::Type);
  EXPECT_NE(p.errorMessage().find("expected a number"), std::string::npos);
  EXPECT_THROW(p.data(), TypeError);
}

TEST(Parallel, StructuredCloneIsolatesInput) {
  // Mutating the original list after job creation must not affect the job.
  auto list = List::make({Value(1), Value(2)});
  Parallel p(list, {.maxWorkers = 1});
  list->replaceAt(1, Value(99));
  p.map([](const Value& v) { return v; });
  EXPECT_EQ(p.data()[0].asNumber(), 1);
}

TEST(Parallel, RejectsNonTransferableData) {
  auto expr = blocks::Block::make("reportIdentity",
                                  {blocks::Input::empty()});
  std::vector<Value> data{Value(blocks::Ring::reporter(expr))};
  EXPECT_THROW(Parallel(data, {.maxWorkers = 1}), PurityError);
}

TEST(Parallel, DoubleLaunchThrows) {
  Parallel p(numbers(2), {.maxWorkers = 1});
  p.map([](const Value& v) { return v; });
  EXPECT_THROW(p.map([](const Value& v) { return v; }), Error);
  p.wait();
}

TEST(WorkerPool, RunsSubmittedJobs) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.width(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  while (pool.jobsCompleted() < 50) {
    std::this_thread::yield();
  }
  EXPECT_EQ(counter.load(), 50);
  auto per = pool.jobsPerWorker();
  EXPECT_EQ(std::accumulate(per.begin(), per.end(), uint64_t{0}),
            uint64_t{50});
}

TEST(WorkerPool, DefaultWidthIsFour) {
  WorkerPool pool;
  EXPECT_EQ(pool.width(), 4u);
}

}  // namespace
}  // namespace psnap::workers
