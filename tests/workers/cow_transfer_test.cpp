// Snapshot transfer across the worker boundary: the COW value plane must
// behave exactly like the seed's eager deep copy — workers see the list
// as it was at construction time, and mutations on either side of the
// boundary never cross it — including while worker chunk tasks are
// actively reading the shared buffers (the tsan-relevant part: detach on
// the main thread races benignly with reads of the shared snapshot).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocks/block.hpp"
#include "blocks/value.hpp"
#include "support/error.hpp"
#include "workers/parallel.hpp"

namespace psnap::workers {
namespace {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;

Value sumOfSublist(const Value& v) {
  double sum = 0;
  for (const Value& item : v.asList()->items()) sum += item.asNumber();
  return Value(sum);
}

TEST(CowTransfer, WorkersSeeTheConstructionTimeSnapshot) {
  // 120 sublists of [i, i, i]; expected per-item sum is 3i.
  auto source = List::make();
  for (size_t i = 0; i < 120; ++i) {
    source->add(Value(List::make({Value(i), Value(i), Value(i)})));
  }
  Parallel p(source, {.maxWorkers = 4});
  p.map(sumOfSublist);
  // Mutate every source sublist while the chunk tasks may still be
  // running: workers read the shared snapshot buffers concurrently with
  // the detach gates firing here on the main thread.
  for (size_t i = 1; i <= source->length(); ++i) {
    source->item(i).asList()->add(Value(1'000'000));
    source->item(i).asList()->replaceAt(1, Value(-1'000'000));
  }
  const std::vector<Value>& results = p.data();
  ASSERT_EQ(results.size(), 120u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].asNumber(), 3.0 * double(i));
  }
}

TEST(CowTransfer, ResultsStayIsolatedFromTheSourceAfterwards) {
  auto source = List::make();
  for (size_t i = 0; i < 16; ++i) {
    source->add(Value(List::make({Value(i)})));
  }
  Parallel p(source, {.maxWorkers = 2});
  // Identity map: worker outputs alias the snapshot's list nodes, the
  // strongest aliasing the boundary can produce.
  p.map([](const Value& v) { return v; });
  std::vector<Value> results = p.takeData();
  // Mutating the source never shows up in the results…
  for (size_t i = 1; i <= source->length(); ++i) {
    source->item(i).asList()->add(Value("tainted"));
  }
  for (const Value& r : results) {
    EXPECT_EQ(r.asList()->length(), 1u);
  }
  // …and mutating the results never shows up in the source.
  for (Value& r : results) r.asList()->add(Value("local"));
  for (size_t i = 1; i <= source->length(); ++i) {
    EXPECT_EQ(source->item(i).asList()->length(), 2u);  // number + tainted
    EXPECT_EQ(source->item(i).asList()->item(2).asText(), "tainted");
  }
}

TEST(CowTransfer, ReduceSeesTheSnapshotToo) {
  auto source = List::make();
  for (size_t i = 1; i <= 64; ++i) source->add(Value(i));
  Parallel p(source, {.maxWorkers = 4});
  p.reduce([](const Value& a, const Value& b) {
    return Value(a.asNumber() + b.asNumber());
  });
  // Flat list of numbers: mutating the source after launch is invisible.
  source->clear();
  const std::vector<Value>& results = p.data();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].asNumber(), 64.0 * 65.0 / 2.0);
}

TEST(CowTransfer, SharedTextTransfersByRefcount) {
  const std::string payload(4096, 'w');
  auto source = List::make();
  for (size_t i = 0; i < 64; ++i) source->add(Value(payload));
  Parallel p(source, {.maxWorkers = 4});
  p.map([](const Value& v) { return Value(v.textView().size()); });
  for (const Value& r : p.data()) {
    EXPECT_EQ(r.asNumber(), 4096.0);
  }
}

TEST(CowTransfer, NonTransferableInputsStillThrowPurityError) {
  auto expr = blocks::Block::make("reportIdentity", {blocks::Input::empty()});
  auto ring = blocks::Ring::reporter(expr);
  auto source = List::make({Value(1), Value(ring)});
  EXPECT_THROW(Parallel(source, {.maxWorkers = 2}), PurityError);
  auto cyclic = List::make({Value(1)});
  cyclic->add(Value(cyclic));
  auto holder = List::make({Value(cyclic)});
  EXPECT_THROW(Parallel(holder, {.maxWorkers = 2}), PurityError);
}

}  // namespace
}  // namespace psnap::workers
