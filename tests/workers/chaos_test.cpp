// Seeded chaos suite: every substrate fault point armed against real
// parallel operations. The invariant under fault injection is
// *convergence*: a run either produces exactly the fault-free result
// (possibly via retries or a recorded downgrade) or fails with a typed
// substrate-class error — never a wrong answer, a hang, or a poisoned
// pool. Test names start with "Chaos" so `scripts/check.sh --chaos` can
// sweep them across seeds (PSNAP_CHAOS_SEED adds one) under asan + tsan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "mapreduce/engine.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "workers/parallel.hpp"
#include "workers/stats.hpp"
#include "workers/task_group.hpp"

namespace psnap::workers {
namespace {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;

std::vector<uint64_t> chaosSeeds() {
  std::vector<uint64_t> seeds{1, 7, 42};
  if (const char* extra = std::getenv("PSNAP_CHAOS_SEED")) {
    seeds.push_back(std::strtoull(extra, nullptr, 10));
  }
  return seeds;
}

fault::Config configFor(uint64_t seed, fault::Point point, uint32_t num,
                        uint32_t den) {
  fault::Config config;
  config.seed = seed;
  config.rateNumerator = num;
  config.rateDenominator = den;
  config.pointMask = fault::maskOf(point);
  config.stallMicros = 100;
  return config;
}

std::vector<Value> numbers(int n) {
  std::vector<Value> out;
  out.reserve(size_t(n));
  for (int i = 1; i <= n; ++i) out.emplace_back(i);
  return out;
}

/// After a chaos scenario the shared pool must still run clean work.
void expectPoolUsable() {
  ASSERT_FALSE(fault::armed());
  Parallel p(numbers(16), {.maxWorkers = 2});
  p.map([](const Value& v) { return Value(v.asNumber() + 1); });
  const auto& data = p.data();
  ASSERT_EQ(data.size(), 16u);
  EXPECT_EQ(data[15].asNumber(), 17);
}

TEST(Chaos, TaskThrowMapConvergesOrFailsTyped) {
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    {
      fault::ScopedFault armed(
          configFor(seed, fault::Point::TaskThrow, 1, 4));
      Parallel p(numbers(256),
                 {.maxWorkers = 4, .chunkSize = 8, .maxRetries = 4});
      p.map([](const Value& v) { return Value(v.asNumber() * 2); });
      p.wait();
      if (p.failed()) {
        // Retries exhausted: the failure must carry the substrate class,
        // never a corrupted result.
        EXPECT_TRUE(isSubstrateClass(p.errorClass()));
        EXPECT_THROW(p.data(), SubstrateError);
      } else {
        const auto& data = p.data();
        ASSERT_EQ(data.size(), 256u);
        for (int i = 0; i < 256; ++i) {
          ASSERT_EQ(data[size_t(i)].asNumber(), 2 * (i + 1));
        }
      }
    }
    expectPoolUsable();
  }
}

TEST(Chaos, TaskThrowCertainFailureKeepsSubstrateType) {
  const uint64_t retriesBefore =
      substrateStats().retries.load(std::memory_order_relaxed);
  {
    // Rate 1/1: every attempt throws, so retries are spent and the op
    // fails with the retryable class (post-launch substrate failures do
    // not degrade at this rung — the owner of the input does that).
    fault::ScopedFault armed(configFor(1, fault::Point::TaskThrow, 1, 1));
    Parallel p(numbers(32), {.maxWorkers = 2, .maxRetries = 1});
    p.map([](const Value& v) { return v; });
    p.wait();
    EXPECT_TRUE(p.failed());
    EXPECT_EQ(p.errorClass(), ErrorClass::Substrate);
    EXPECT_FALSE(p.wasDegraded());
    EXPECT_NE(p.errorMessage().find("injected fault"), std::string::npos);
    EXPECT_THROW(p.data(), SubstrateError);
  }
  EXPECT_GT(substrateStats().retries.load(std::memory_order_relaxed),
            retriesBefore);
  expectPoolUsable();
}

TEST(Chaos, WorkerStallsDelayButComplete) {
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    {
      fault::ScopedFault armed(
          configFor(seed, fault::Point::WorkerStall, 1, 2));
      Parallel p(numbers(128), {.maxWorkers = 4});
      p.map([](const Value& v) { return Value(v.asNumber() + 3); });
      const auto& data = p.data();
      ASSERT_EQ(data.size(), 128u);
      for (int i = 0; i < 128; ++i) {
        ASSERT_EQ(data[size_t(i)].asNumber(), i + 4);
      }
    }
    expectPoolUsable();
  }
}

TEST(Chaos, TransferFailureAtCloneInSurfacesSubstrateError) {
  {
    fault::ScopedFault armed(
        configFor(1, fault::Point::TransferFailure, 1, 1));
    EXPECT_THROW(Parallel(numbers(4), {.maxWorkers = 2}), SubstrateError);
  }
  expectPoolUsable();
}

TEST(Chaos, TransferFailureAtCloneOutSurfacesSubstrateError) {
  Parallel p(numbers(8), {.maxWorkers = 2});
  p.map([](const Value& v) { return v; });
  p.wait();
  ASSERT_FALSE(p.failed());
  {
    // Arm only after the op is quiescent: the fault hits the clone-out
    // boundary in takeData(), not the already-finished workers.
    fault::ScopedFault armed(
        configFor(1, fault::Point::TransferFailure, 1, 1));
    EXPECT_THROW(p.takeData(), SubstrateError);
  }
  expectPoolUsable();
}

TEST(Chaos, PoolSaturationDegradesToCallerDrain) {
  const uint64_t downgradesBefore =
      substrateStats().downgrades.load(std::memory_order_relaxed);
  {
    fault::ScopedFault armed(
        configFor(1, fault::Point::PoolSaturation, 1, 1));
    Parallel p(numbers(64), {.maxWorkers = 4});
    p.map([](const Value& v) { return Value(v.asNumber() * 3); });
    const auto& data = p.data();
    EXPECT_TRUE(p.wasDegraded());
    EXPECT_FALSE(p.failed());
    ASSERT_EQ(data.size(), 64u);
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(data[size_t(i)].asNumber(), 3 * (i + 1));
    }
  }
  EXPECT_GT(substrateStats().downgrades.load(std::memory_order_relaxed),
            downgradesBefore);
  expectPoolUsable();
}

TEST(Chaos, PoolSaturationWithoutDegradeFails) {
  {
    fault::ScopedFault armed(
        configFor(1, fault::Point::PoolSaturation, 1, 1));
    Parallel p(numbers(8), {.maxWorkers = 2, .allowDegrade = false});
    EXPECT_THROW(p.map([](const Value& v) { return v; }), SubstrateError);
  }
  expectPoolUsable();
}

TEST(Chaos, ExpiredDeadlineSurfacesTimeout) {
  const uint64_t timeoutsBefore =
      substrateStats().timeouts.load(std::memory_order_relaxed);
  ParallelOptions options;
  options.maxWorkers = 2;
  options.cancel = CancelToken::withDeadline(0);  // already expired
  Parallel p(numbers(64), options);
  p.map([](const Value& v) { return v; });
  p.wait();
  EXPECT_TRUE(p.failed());
  EXPECT_EQ(p.errorClass(), ErrorClass::Timeout);
  EXPECT_THROW(p.data(), TimeoutError);
  EXPECT_GT(substrateStats().timeouts.load(std::memory_order_relaxed),
            timeoutsBefore);
  expectPoolUsable();
}

TEST(Chaos, PreCancelledTokenSurfacesCancelledWithReason) {
  ParallelOptions options;
  options.maxWorkers = 2;
  options.cancel = CancelToken::create();
  options.cancel->cancel("stop requested");
  Parallel p(numbers(64), options);
  p.map([](const Value& v) { return v; });
  p.wait();
  EXPECT_TRUE(p.failed());
  EXPECT_EQ(p.errorClass(), ErrorClass::Cancelled);
  EXPECT_NE(p.errorMessage().find("stop requested"), std::string::npos);
  EXPECT_THROW(p.data(), CancelledError);
  expectPoolUsable();
}

TEST(Chaos, FailFastSkipsUnstartedSiblings) {
  const uint64_t skippedBefore =
      substrateStats().tasksSkipped.load(std::memory_order_relaxed);
  std::atomic<int> ran{0};
  std::vector<TaskGroup::Task> tasks;
  tasks.push_back([](size_t) -> void { throw TypeError("poison task"); });
  for (int i = 0; i < 31; ++i) {
    tasks.push_back([&ran](size_t) { ran.fetch_add(1); });
  }
  // Drain on this thread only: task 0 throws, cancels the group, and the
  // 31 siblings are skipped at claim time, never run.
  TaskGroup group(std::move(tasks));
  group.wait();
  EXPECT_TRUE(group.done());
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(group.errorClass(), ErrorClass::Type);
  EXPECT_THROW(group.rethrowIfError(), TypeError);
  EXPECT_GE(substrateStats().tasksSkipped.load(std::memory_order_relaxed),
            skippedBefore + 31);
}

TEST(Chaos, MapReduceConvergesUnderTaskThrow) {
  auto input = List::make();
  for (int i = 0; i < 300; ++i) input->add(Value(i % 13));
  mr::MapFn one = [](const Value&) { return Value(1); };
  mr::ReduceFn count = [](const ListPtr& values) {
    return Value(values->length());
  };
  // Fault-free reference, computed before arming.
  auto reference = mr::run(input, one, count, {.sequential = true});
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    {
      fault::ScopedFault armed(
          configFor(seed, fault::Point::TaskThrow, 1, 4));
      mr::Stats stats;
      // The pipeline owns its input: whatever the faults do (retries
      // succeed, or the substrate error escalates and the whole pipeline
      // reruns sequentially), the output must equal the reference.
      auto out = mr::run(input, one, count,
                         {.workers = 4, .maxRetries = 2}, &stats);
      EXPECT_TRUE(out->deepEquals(*reference))
          << "degraded=" << stats.degraded;
    }
    expectPoolUsable();
  }
}

TEST(Chaos, MapReducePoolSaturationDegradesSequentially) {
  const uint64_t downgradesBefore =
      substrateStats().downgrades.load(std::memory_order_relaxed);
  auto input = List::make();
  for (int i = 0; i < 100; ++i) input->add(Value(i % 5));
  mr::MapFn one = [](const Value&) { return Value(1); };
  mr::ReduceFn count = [](const ListPtr& values) {
    return Value(values->length());
  };
  auto reference = mr::run(input, one, count, {.sequential = true});
  {
    fault::ScopedFault armed(
        configFor(1, fault::Point::PoolSaturation, 1, 1));
    mr::Stats stats;
    auto out = mr::run(input, one, count, {.workers = 4}, &stats);
    EXPECT_TRUE(stats.degraded);
    EXPECT_TRUE(out->deepEquals(*reference));
  }
  EXPECT_GT(substrateStats().downgrades.load(std::memory_order_relaxed),
            downgradesBefore);
  expectPoolUsable();
}

/// Completion callbacks run on the settling worker *after* wait()
/// observes the settle, so give the dispatch a moment before asserting.
void awaitCallback(const std::atomic<int>& fired) {
  for (int i = 0; i < 20000 && fired.load(std::memory_order_acquire) == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

TEST(Chaos, CompletionDropDelaysButNeverLosesTheWakeup) {
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    {
      // Rate 1/1: every settle in the run (the group's and the facade's)
      // stalls between claiming the settle and dispatching callbacks. The
      // wakeup must arrive late, not never.
      fault::ScopedFault armed(
          configFor(seed, fault::Point::CompletionDrop, 1, 1));
      Parallel p(numbers(64), {.maxWorkers = 4});
      std::atomic<int> fired{0};
      p.map([](const Value& v) { return Value(v.asNumber() * 2); });
      p.onComplete([&fired] { fired.fetch_add(1); });
      p.wait();
      awaitCallback(fired);
      EXPECT_EQ(fired.load(), 1);
      ASSERT_FALSE(p.failed());
      const auto& data = p.data();
      ASSERT_EQ(data.size(), 64u);
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(data[size_t(i)].asNumber(), 2 * (i + 1));
      }
    }
    expectPoolUsable();
  }
}

TEST(Chaos, CompletionDropRacesExternalCancel) {
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    {
      fault::ScopedFault armed(
          configFor(seed, fault::Point::CompletionDrop, 1, 1));
      ParallelOptions options;
      options.maxWorkers = 4;
      options.cancel = CancelToken::create();
      Parallel p(numbers(256), options);
      std::atomic<int> fired{0};
      p.map([](const Value& v) { return Value(v.asNumber() + 1); });
      p.onComplete([&fired] { fired.fetch_add(1); });
      // Cancel from the controlling thread while the settle is (with rate
      // 1/1) stalled inside the drop window: whichever side wins, the
      // callback fires exactly once and the op converges typed or exact.
      options.cancel->cancel("raced cancel");
      p.wait();
      awaitCallback(fired);
      EXPECT_EQ(fired.load(), 1);
      if (p.failed()) {
        EXPECT_TRUE(isSubstrateClass(p.errorClass()));
        EXPECT_THROW(p.data(), Error);
      } else {
        const auto& data = p.data();
        ASSERT_EQ(data.size(), 256u);
        for (int i = 0; i < 256; ++i) {
          ASSERT_EQ(data[size_t(i)].asNumber(), i + 2);
        }
      }
    }
    expectPoolUsable();
  }
}

TEST(Chaos, CompletionDropRacesDeadlineExpiry) {
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    {
      // Stalled workers push the run toward the deadline while every
      // settle is delayed in the drop window — completion, timeout, and
      // callback dispatch all race. Convergence: exact data or a typed
      // substrate-family failure, and exactly one callback either way.
      fault::Config config = configFor(seed, fault::Point::CompletionDrop,
                                       1, 1);
      config.pointMask |= fault::maskOf(fault::Point::WorkerStall);
      config.stallMicros = 300;
      fault::ScopedFault armed(config);
      ParallelOptions options;
      options.maxWorkers = 4;
      options.cancel = CancelToken::withDeadline(0.002);
      Parallel p(numbers(128), options);
      std::atomic<int> fired{0};
      p.map([](const Value& v) { return Value(v.asNumber() - 1); });
      p.onComplete([&fired] { fired.fetch_add(1); });
      p.wait();
      awaitCallback(fired);
      EXPECT_EQ(fired.load(), 1);
      if (p.failed()) {
        EXPECT_TRUE(isSubstrateClass(p.errorClass()));
      } else {
        const auto& data = p.data();
        ASSERT_EQ(data.size(), 128u);
        for (int i = 0; i < 128; ++i) {
          ASSERT_EQ(data[size_t(i)].asNumber(), i);
        }
      }
    }
    expectPoolUsable();
  }
}

TEST(Chaos, CompletionDropOnPipelineChainKeepsOutputExact) {
  auto input = List::make();
  for (int i = 0; i < 300; ++i) input->add(Value(i % 11));
  mr::MapFn one = [](const Value&) { return Value(1); };
  mr::ReduceFn count = [](const ListPtr& values) {
    return Value(values->length());
  };
  auto reference = mr::run(input, one, count, {.sequential = true});
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    {
      // The chained pipeline settles a latch per stage plus the job's
      // own; dropping half of those dispatch windows delays the
      // stage1→stage2→merge chaining without ever detaching it.
      fault::ScopedFault armed(
          configFor(seed, fault::Point::CompletionDrop, 1, 2));
      mr::Job job(input, one, count, {.workers = 4});
      std::atomic<int> fired{0};
      job.onComplete([&fired] { fired.fetch_add(1); });
      awaitCallback(fired);
      EXPECT_EQ(fired.load(), 1);
      ASSERT_TRUE(job.resolved());
      ASSERT_FALSE(job.failed()) << job.errorMessage();
      EXPECT_TRUE(job.result()->deepEquals(*reference));
    }
    expectPoolUsable();
  }
}

TEST(Chaos, CompletionDropLateRegistrationFiresInline) {
  Parallel p(numbers(16), {.maxWorkers = 2});
  p.map([](const Value& v) { return v; });
  p.wait();
  ASSERT_TRUE(p.resolved());
  {
    // Registering on an already-settled op runs the callback on this
    // thread before onComplete returns — the drop point is not on that
    // path (nothing to race), so arming it must change nothing.
    fault::ScopedFault armed(
        configFor(1, fault::Point::CompletionDrop, 1, 1));
    std::atomic<int> fired{0};
    p.onComplete([&fired] { fired.fetch_add(1); });
    EXPECT_EQ(fired.load(), 1);
  }
  expectPoolUsable();
}

TEST(Chaos, MixedFaultStormLeavesPoolHealthy) {
  for (uint64_t seed : chaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    {
      fault::Config config;
      config.seed = seed;
      config.rateNumerator = 1;
      config.rateDenominator = 6;
      config.stallMicros = 100;
      config.pointMask = fault::maskOf(fault::Point::TaskThrow) |
                         fault::maskOf(fault::Point::WorkerStall) |
                         fault::maskOf(fault::Point::TransferFailure) |
                         fault::maskOf(fault::Point::PoolSaturation);
      fault::ScopedFault armed(config);
      for (int round = 0; round < 4; ++round) {
        try {
          Parallel p(numbers(64), {.maxWorkers = 4, .maxRetries = 2});
          p.map([](const Value& v) { return Value(v.asNumber() + 1); });
          p.wait();
          if (!p.failed()) {
            const auto& data = p.data();
            ASSERT_EQ(data.size(), 64u);
            for (int i = 0; i < 64; ++i) {
              ASSERT_EQ(data[size_t(i)].asNumber(), i + 2);
            }
          } else {
            EXPECT_TRUE(isSubstrateClass(p.errorClass()));
          }
        } catch (const SubstrateError&) {
          // Construction died at a transfer/saturation point — allowed.
        }
      }
    }
    expectPoolUsable();
  }
}

}  // namespace
}  // namespace psnap::workers
