// SubstrateStats scoping (the per-tenant attribution backbone): scope
// redirection and restoration, parent-chain rollup, explicit reset, and
// capture-at-construction attribution for work that runs on pool threads.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "blocks/value.hpp"
#include "workers/parallel.hpp"
#include "workers/stats.hpp"
#include "workers/task_group.hpp"

namespace psnap::workers {
namespace {

using blocks::Value;

TEST(StatsScope, RedirectsAndRestores) {
  EXPECT_EQ(&substrateStats(), &processSubstrateStats());
  SubstrateStats tenantA;
  SubstrateStats tenantB;
  {
    StatsScope outer(tenantA);
    EXPECT_EQ(&substrateStats(), &tenantA);
    {
      StatsScope inner(tenantB);
      EXPECT_EQ(&substrateStats(), &tenantB);
    }
    EXPECT_EQ(&substrateStats(), &tenantA);
  }
  EXPECT_EQ(&substrateStats(), &processSubstrateStats());
}

TEST(StatsScope, BumpRollsUpTheParentChain) {
  SubstrateStats root;
  SubstrateStats tenant;
  tenant.setParent(&root);
  tenant.bump(&SubstrateStats::retries);
  tenant.bump(&SubstrateStats::retries);
  tenant.bump(&SubstrateStats::downgrades);
  EXPECT_EQ(tenant.retries.load(), 2u);
  EXPECT_EQ(root.retries.load(), 2u);
  EXPECT_EQ(tenant.downgrades.load(), 1u);
  EXPECT_EQ(root.downgrades.load(), 1u);
  // Recording directly on the parent does not touch the child.
  root.bump(&SubstrateStats::retries);
  EXPECT_EQ(tenant.retries.load(), 2u);
  EXPECT_EQ(root.retries.load(), 3u);
}

TEST(StatsScope, ResetClearsOnlyThatScope) {
  SubstrateStats root;
  SubstrateStats tenant;
  tenant.setParent(&root);
  tenant.bump(&SubstrateStats::cancellations);
  tenant.reset();
  EXPECT_EQ(tenant.cancellations.load(), 0u);
  // The parent keeps its rollup: the event did happen.
  EXPECT_EQ(root.cancellations.load(), 1u);
}

TEST(StatsScope, TaskGroupChargesTheConstructingScope) {
  SubstrateStats tenant;
  TaskGroup* group = nullptr;
  std::vector<TaskGroup::Task> tasks;
  tasks.emplace_back([](size_t) {});
  {
    StatsScope scope(tenant);
    group = new TaskGroup(std::move(tasks));
  }
  // The cancel happens *outside* the tenant's scope (as it would on a
  // pool worker thread) yet is still charged to the constructing tenant.
  const auto rootBefore =
      processSubstrateStats().cancellations.load();
  group->cancel();
  EXPECT_EQ(tenant.cancellations.load(), 1u);
  EXPECT_EQ(processSubstrateStats().cancellations.load(), rootBefore);
  delete group;
}

TEST(StatsScope, ParallelTimeoutChargesTheConstructingScope) {
  SubstrateStats tenant;
  tenant.setParent(&processSubstrateStats());
  std::vector<Value> input;
  for (int i = 0; i < 8; ++i) input.emplace_back(i);
  {
    StatsScope scope(tenant);
    // A deadline that expires almost immediately, against a map slow
    // enough that it cannot finish first: wait() trips as a timeout, and
    // the trip is recorded into the scope captured at construction.
    Parallel p(input, {.maxWorkers = 2, .deadlineSeconds = 1e-6});
    p.map([](const Value& v) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return v;
    });
    p.wait();
    EXPECT_TRUE(p.failed());
    EXPECT_EQ(p.errorClass(), ErrorClass::Timeout);
  }
  EXPECT_GE(tenant.timeouts.load(), 1u);
}

// ---- generation-stamped leases (the checkpoint/recycle race fix) -------
//
// An async recording site (the native tier's fire-and-forget compile)
// can outlive its tenant: by the time the pooled task records its
// downgrade, the session may have been finalized and its slot recycled.
// AsyncStatsHandle must charge the tenant only while its lease is
// current, and fall back to the root ledger afterwards — never a freed
// scope, never the *next* tenant occupying the same address.

TEST(StatsLease, ChargesWhileLeasedThenFallsBackToRoot) {
  SubstrateStats tenant;
  registerStatsScope(tenant);
  AsyncStatsHandle handle;
  {
    StatsScope scope(tenant);
    handle = AsyncStatsHandle::capture();
  }
  EXPECT_TRUE(handle.scoped());
  handle.bump(&SubstrateStats::nativeDowngrades);
  EXPECT_EQ(tenant.nativeDowngrades.load(), 1u);

  const auto rootBefore = processSubstrateStats().nativeDowngrades.load();
  retireStatsScope(tenant);
  // The session is gone; a late async completion must not touch it.
  handle.bump(&SubstrateStats::nativeDowngrades);
  EXPECT_EQ(tenant.nativeDowngrades.load(), 1u);
  EXPECT_EQ(processSubstrateStats().nativeDowngrades.load(), rootBefore + 1);
}

TEST(StatsLease, RecycledAddressDoesNotInheritTheOldLease) {
  // The PR-8 regression: tenant A's scope is retired and the *same
  // address* is re-registered for tenant B (a recycled session slot). A
  // handle captured under A's lease must not charge B.
  SubstrateStats slot;
  registerStatsScope(slot);
  AsyncStatsHandle stale;
  {
    StatsScope scope(slot);
    stale = AsyncStatsHandle::capture();
  }
  retireStatsScope(slot);
  registerStatsScope(slot);  // tenant B moves in; fresh generation
  const auto rootBefore = processSubstrateStats().nativeDowngrades.load();
  stale.bump(&SubstrateStats::nativeDowngrades);
  EXPECT_EQ(slot.nativeDowngrades.load(), 0u);
  EXPECT_EQ(processSubstrateStats().nativeDowngrades.load(), rootBefore + 1);
  retireStatsScope(slot);
}

TEST(StatsLease, UnleasedScopeCapturesAsRootHandle) {
  SubstrateStats unleased;
  StatsScope scope(unleased);
  const AsyncStatsHandle handle = AsyncStatsHandle::capture();
  // No liveness guarantee without a lease: the handle degrades to root.
  EXPECT_FALSE(handle.scoped());
  const auto rootBefore = processSubstrateStats().retries.load();
  handle.bump(&SubstrateStats::retries);
  EXPECT_EQ(unleased.retries.load(), 0u);
  EXPECT_EQ(processSubstrateStats().retries.load(), rootBefore + 1);
}

TEST(StatsLease, DirectHandleChargesWithoutARegistryLease) {
  SubstrateStats scope;
  const AsyncStatsHandle handle = AsyncStatsHandle::direct(scope);
  handle.bump(&SubstrateStats::downgrades);
  EXPECT_EQ(scope.downgrades.load(), 1u);
}

}  // namespace
}  // namespace psnap::workers
