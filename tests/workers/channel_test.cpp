#include "workers/channel.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace psnap::workers {
namespace {

TEST(Channel, SendReceiveInOrder) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.send(3);
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_EQ(*ch.receive(), 1);
  EXPECT_EQ(*ch.receive(), 2);
  EXPECT_EQ(*ch.receive(), 3);
}

TEST(Channel, TryReceiveEmpty) {
  Channel<int> ch;
  EXPECT_FALSE(ch.tryReceive().has_value());
  ch.send(9);
  EXPECT_EQ(*ch.tryReceive(), 9);
}

TEST(Channel, CloseRejectsNewSends) {
  Channel<int> ch;
  ch.send(1);
  ch.close();
  EXPECT_TRUE(ch.closed());
  EXPECT_FALSE(ch.send(2));
  // Pending messages still drain.
  EXPECT_EQ(*ch.receive(), 1);
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(Channel, BlockingReceiveWakesOnSend) {
  Channel<int> ch;
  std::thread producer([&ch] { ch.send(42); });
  EXPECT_EQ(*ch.receive(), 42);
  producer.join();
}

TEST(Channel, BlockingReceiveWakesOnClose) {
  Channel<int> ch;
  std::thread closer([&ch] { ch.close(); });
  EXPECT_FALSE(ch.receive().has_value());
  closer.join();
}

TEST(Channel, CrossThreadThroughput) {
  Channel<int> ch;
  constexpr int kCount = 10000;
  std::thread producer([&ch] {
    for (int i = 0; i < kCount; ++i) ch.send(i);
    ch.close();
  });
  int received = 0;
  long long sum = 0;
  while (auto v = ch.receive()) {
    ++received;
    sum += *v;
  }
  producer.join();
  EXPECT_EQ(received, kCount);
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

}  // namespace
}  // namespace psnap::workers
