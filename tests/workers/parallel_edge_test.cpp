// Edge cases for the pooled Parallel substrate: degenerate inputs,
// option normalization, error propagation mid-chunk in every
// distribution, misuse (double launch), and a stress run of many tiny
// pooled ops submitted from several threads at once — the workload that
// exercises the pool's cross-worker stealing and parking paths.
#include "workers/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "support/error.hpp"
#include "workers/worker_pool.hpp"

namespace psnap::workers {
namespace {

using blocks::Value;

std::vector<Value> numbers(int n) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 1; i <= n; ++i) out.emplace_back(i);
  return out;
}

Value identity(const Value& v) { return v; }

// --- degenerate inputs ------------------------------------------------------

TEST(ParallelEdge, EmptyInputResolvesEveryDistribution) {
  for (Distribution d : {Distribution::Dynamic, Distribution::Contiguous,
                         Distribution::BlockCyclic}) {
    Parallel p(std::vector<Value>{}, {.maxWorkers = 4, .distribution = d});
    p.map(identity);
    EXPECT_TRUE(p.data().empty());
    EXPECT_TRUE(p.resolved());
    EXPECT_FALSE(p.failed());
    auto per = p.itemsPerWorker();
    ASSERT_EQ(per.size(), 4u);  // logical workers exist even with no items
    EXPECT_EQ(std::accumulate(per.begin(), per.end(), uint64_t{0}), 0u);
  }
}

TEST(ParallelEdge, EmptyInputReduceYieldsNothing) {
  Parallel p(std::vector<Value>{}, {.maxWorkers = 3});
  p.reduce([](const Value& a, const Value& b) {
    return Value(a.asNumber() + b.asNumber());
  });
  EXPECT_TRUE(p.data().empty());
}

TEST(ParallelEdge, ChunkSizeZeroNormalizesToOne) {
  Parallel p(numbers(7), {.maxWorkers = 2,
                          .distribution = Distribution::BlockCyclic,
                          .chunkSize = 0});
  p.map([](const Value& v) { return Value(v.asNumber() * 3); });
  const auto& data = p.data();
  ASSERT_EQ(data.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(data[size_t(i)].asNumber(), (i + 1) * 3);
  }
}

TEST(ParallelEdge, MoreWorkersThanItems) {
  // 16 logical workers, 3 items: every item processed exactly once, the
  // accounting still reports a slot per logical worker, and no slot
  // serves more than one chunk.
  for (Distribution d : {Distribution::Dynamic, Distribution::Contiguous,
                         Distribution::BlockCyclic}) {
    Parallel p(numbers(3), {.maxWorkers = 16, .distribution = d});
    p.map([](const Value& v) { return Value(v.asNumber() + 100); });
    const auto& data = p.data();
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[2].asNumber(), 103);
    auto per = p.itemsPerWorker();
    ASSERT_EQ(per.size(), 16u);
    EXPECT_EQ(std::accumulate(per.begin(), per.end(), uint64_t{0}), 3u);
    if (d == Distribution::Dynamic) {
      // Claim-based: a fast worker may take every chunk, so only the
      // conservation bound holds.
      EXPECT_LE(p.virtualMakespan(), 3u);
    } else {
      // Static assignment pins one item per logical worker.
      EXPECT_EQ(p.virtualMakespan(), 1u);
    }
  }
}

// --- error propagation ------------------------------------------------------

TEST(ParallelEdge, MidChunkThrowSurfacesInEveryDistribution) {
  for (Distribution d : {Distribution::Dynamic, Distribution::Contiguous,
                         Distribution::BlockCyclic}) {
    Parallel p(numbers(64),
               {.maxWorkers = 4, .distribution = d, .chunkSize = 8});
    p.map([](const Value& v) -> Value {
      if (v.asNumber() == 37) throw Error("item 37 is cursed");
      return v;
    });
    p.wait();
    EXPECT_TRUE(p.failed());
    EXPECT_NE(p.errorMessage().find("cursed"), std::string::npos);
    EXPECT_THROW(p.data(), Error);
  }
}

TEST(ParallelEdge, ReduceThrowSurfaces) {
  Parallel p(numbers(32), {.maxWorkers = 4});
  p.reduce([](const Value& a, const Value& b) -> Value {
    if (b.asNumber() == 20) throw Error("bad fold");
    return Value(a.asNumber() + b.asNumber());
  });
  p.wait();
  EXPECT_TRUE(p.failed());
  EXPECT_THROW(p.data(), Error);
}

TEST(ParallelEdge, SecondMapThrows) {
  Parallel p(numbers(8), {.maxWorkers = 2});
  p.map(identity);
  EXPECT_THROW(p.map(identity), Error);
  p.wait();  // the first op still completes cleanly
  EXPECT_FALSE(p.failed());
  EXPECT_EQ(p.data().size(), 8u);
}

// --- stress: many tiny pooled ops from several threads ----------------------

TEST(ParallelEdge, ThousandTinyOpsFromFourThreads) {
  // Four client threads each launch 250 tiny maps on the shared pool.
  // Ops are small enough that submission, stealing, and parking churn
  // constantly; every op must still complete with the right result.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 250;
  std::atomic<uint64_t> total{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&total, &failures, t] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int n = 1 + (op % 7);
        Parallel p(numbers(n), {.maxWorkers = size_t(1 + (t + op) % 4)});
        p.map([](const Value& v) { return Value(v.asNumber() * 2); });
        double sum = 0;
        for (const Value& v : p.data()) sum += v.asNumber();
        if (sum != n * (n + 1.0)) {
          failures.fetch_add(1);
        }
        total.fetch_add(uint64_t(n));
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  // Sum over op sizes: per thread, 250 ops cycling n in 1..7.
  uint64_t expected = 0;
  for (int op = 0; op < kOpsPerThread; ++op) expected += uint64_t(1 + op % 7);
  EXPECT_EQ(total.load(), expected * kThreads);
  // The pool executed real jobs on its workers (not everything drained
  // on the callers): with four clients parked in wait(), workers get a
  // share. Weak assertion — scheduling-dependent — but jobsCompleted is
  // monotonic, so at minimum the counter moved during this binary's run.
  EXPECT_GT(WorkerPool::shared().jobsCompleted(), 0u);
}

}  // namespace
}  // namespace psnap::workers
