// Project (de)serialization: full round trips preserving the block
// structures the parallel workflow depends on, and instantiation onto a
// live stage that then runs.
#include "project/project.hpp"

#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "support/error.hpp"

namespace psnap::project {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Value;

Project demoProject() {
  Project project;
  project.name = "concession";
  project.globals.push_back({"score", Value(0)});
  project.globals.push_back(
      {"names", Value(blocks::List::make({Value("a"), Value(2)}))});

  SpriteDef pitcher;
  pitcher.name = "Pitcher";
  pitcher.x = 10;
  pitcher.y = -20;
  pitcher.costume = "pitcher";
  pitcher.variables.push_back({"drinks", Value(3)});
  pitcher.scripts.push_back(scriptOf({
      whenGreenFlag(),
      parallelForEach("cup", listOf({"Cup1", "Cup2"}), blank(),
                      scriptOf({busyWork(3)})),
      setVar("score", parallelMap(ring(product(empty(), 10)),
                                  numbersFromTo(1, 4))),
  }));
  project.sprites.push_back(std::move(pitcher));
  return project;
}

TEST(Project, XmlRoundTripPreservesStructure) {
  Project original = demoProject();
  std::string xml = toXml(original);
  Project parsed = fromXml(xml);
  EXPECT_EQ(parsed.name, "concession");
  ASSERT_EQ(parsed.globals.size(), 2u);
  EXPECT_EQ(parsed.globals[0].first, "score");
  EXPECT_TRUE(parsed.globals[1].second.isList());
  ASSERT_EQ(parsed.sprites.size(), 1u);
  const SpriteDef& sprite = parsed.sprites[0];
  EXPECT_EQ(sprite.name, "Pitcher");
  EXPECT_EQ(sprite.x, 10);
  EXPECT_EQ(sprite.costume, "pitcher");
  ASSERT_EQ(sprite.scripts.size(), 1u);
  // Re-serializing the parsed project yields identical XML (canonical
  // form), proving nothing was lost.
  EXPECT_EQ(toXml(parsed), xml);
}

TEST(Project, RoundTripPreservesSlotStates) {
  // The collapsed "in parallel" slot (sequential mode) and the empty slot
  // (ring parameter) must survive the round trip — they change semantics.
  Project project;
  SpriteDef sprite;
  sprite.name = "S";
  sprite.scripts.push_back(scriptOf({
      whenGreenFlag(),
      parallelForEach("x", listOf({1}), collapsed(), scriptOf({})),
  }));
  project.sprites.push_back(std::move(sprite));
  Project parsed = fromXml(toXml(project));
  const auto& script = parsed.sprites[0].scripts[0];
  const auto& pf = script->at(1);
  EXPECT_TRUE(pf->input(2).isCollapsed());
}

TEST(Project, ParsedProjectRunsTheParallelWorkflow) {
  std::string xml = toXml(demoProject());
  Project parsed = fromXml(xml);

  auto prims = core::fullPrimitiveTable();
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
  stage::Stage stage(&tm);
  parsed.instantiate(stage);
  EXPECT_NE(stage.findSprite("Pitcher"), nullptr);
  stage.greenFlag();
  tm.runUntilIdle();
  EXPECT_TRUE(tm.errors().empty());
  EXPECT_EQ(stage.globals()->get("score").asList()->display(),
            "[10, 20, 30, 40]");
}

TEST(Project, ValidationRejectsUnknownOpcodes) {
  std::string xml = R"(<project name="bad"><variables/><sprites>
    <sprite name="S"><variables/><scripts>
      <script><block s="receiveGo"/><block s="notABlock"/></script>
    </scripts></sprite></sprites></project>)";
  EXPECT_THROW(fromXml(xml), Error);
}

TEST(Project, ScriptClipboardRoundTrip) {
  auto script = scriptOf({setVar("x", sum(1, product(2, 3))),
                          say(getVar("x"))});
  auto parsed = scriptFromXml(scriptToXml(*script));
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->at(0)->display(), script->at(0)->display());
}

TEST(Project, LiteralTypesSurviveRoundTrip) {
  auto script = scriptOf({say(true), say(3.5), say("text"), say(Value())});
  auto parsed = scriptFromXml(scriptToXml(*script));
  EXPECT_TRUE(parsed->at(0)->input(0).literalValue().isBoolean());
  EXPECT_TRUE(parsed->at(1)->input(0).literalValue().isNumber());
  EXPECT_TRUE(parsed->at(2)->input(0).literalValue().isText());
  EXPECT_TRUE(parsed->at(3)->input(0).literalValue().isNothing());
}

TEST(Project, InstantiateDuplicateSpritesThrows) {
  Project project;
  SpriteDef a;
  a.name = "S";
  project.sprites.push_back(a);
  project.sprites.push_back(a);
  auto prims = core::fullPrimitiveTable();
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
  stage::Stage stage(&tm);
  EXPECT_THROW(project.instantiate(stage), Error);
}

}  // namespace
}  // namespace psnap::project
