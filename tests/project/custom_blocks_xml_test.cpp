// Custom block definitions saved with projects: serialization round
// trips, and a loaded project whose scripts call its own custom blocks
// runs correctly after registration.
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "project/project.hpp"
#include "support/error.hpp"

namespace psnap::project {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::BlockType;
using blocks::Value;

Project projectWithCustomBlocks() {
  Project project;
  project.name = "byob";
  project.globals.push_back({"out", Value()});

  vm::CustomBlockDef dbl;
  dbl.spec = "double %n";
  dbl.type = BlockType::Reporter;
  dbl.formals = {"n"};
  dbl.body = scriptOf({report(product(getVar("n"), 2))});
  project.customBlocks.push_back(std::move(dbl));

  SpriteDef sprite;
  sprite.name = "S";
  sprite.scripts.push_back(scriptOf({
      whenGreenFlag(),
      setVar("out", blocks::Block::make(
                        vm::customOpcode("double %n"),
                        {blocks::Input(Value(21))})),
  }));
  project.sprites.push_back(std::move(sprite));
  return project;
}

TEST(CustomBlocksXml, RoundTripPreservesDefinitions) {
  Project original = projectWithCustomBlocks();
  std::string xml = toXml(original);
  EXPECT_NE(xml.find("<customBlocks>"), std::string::npos);
  Project parsed = fromXml(xml);
  ASSERT_EQ(parsed.customBlocks.size(), 1u);
  EXPECT_EQ(parsed.customBlocks[0].spec, "double %n");
  EXPECT_EQ(parsed.customBlocks[0].type, BlockType::Reporter);
  ASSERT_EQ(parsed.customBlocks[0].formals.size(), 1u);
  EXPECT_EQ(parsed.customBlocks[0].formals[0], "n");
  EXPECT_EQ(toXml(parsed), xml);  // canonical form is stable
}

TEST(CustomBlocksXml, LoadedProjectRunsItsCustomBlocks) {
  Project parsed = fromXml(toXml(projectWithCustomBlocks()));

  blocks::BlockRegistry registry;
  blocks::registerStandardSpecs(registry);
  vm::PrimitiveTable prims = core::fullPrimitiveTable();
  sched::ThreadManager tm(&registry, &prims);
  stage::Stage stage(&tm);
  parsed.registerCustomBlocks(registry, prims, stage.globals());
  parsed.instantiate(stage);

  stage.greenFlag();
  tm.runUntilIdle();
  EXPECT_TRUE(tm.errors().empty());
  EXPECT_EQ(stage.globals()->get("out").asNumber(), 42);
}

TEST(CustomBlocksXml, UnknownOpcodeStillRejected) {
  // Custom specs extend validation, but truly unknown opcodes still fail.
  std::string xml = R"(<project name="bad"><variables/><sprites>
    <sprite name="S"><variables/><scripts>
      <script><block s="receiveGo"/><block s="custom:nope %n"><l t="n">1</l></block></script>
    </scripts></sprite></sprites></project>)";
  EXPECT_THROW(fromXml(xml), Error);
}

TEST(CustomBlocksXml, BodyValidatedAgainstRegistry) {
  std::string xml = R"(<project name="bad"><variables/>
    <customBlocks><definition spec="broken %n" type="reporter">
      <formal>n</formal>
      <script><block s="notARealBlock"/></script>
    </definition></customBlocks>
    <sprites/></project>)";
  EXPECT_THROW(fromXml(xml), Error);
}

}  // namespace
}  // namespace psnap::project
