#include "project/xml.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace psnap::project {
namespace {

TEST(Xml, ParseSimpleElement) {
  XmlNode root = parseXml("<a x=\"1\"><b>hi</b><b>ho</b></a>");
  EXPECT_EQ(root.tag, "a");
  EXPECT_EQ(root.attr("x"), "1");
  EXPECT_EQ(root.attr("missing", "d"), "d");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].text, "hi");
  EXPECT_EQ(root.childrenNamed("b").size(), 2u);
  EXPECT_NE(root.child("b"), nullptr);
  EXPECT_EQ(root.child("c"), nullptr);
}

TEST(Xml, SelfClosingAndDeclaration) {
  XmlNode root = parseXml("<?xml version=\"1.0\"?>\n<a><b/><c/></a>");
  EXPECT_EQ(root.children.size(), 2u);
  EXPECT_TRUE(root.children[0].children.empty());
}

TEST(Xml, EntitiesDecodeAndEncode) {
  XmlNode root = parseXml("<a t=\"&lt;&amp;&gt;\">x &quot;y&quot;</a>");
  EXPECT_EQ(root.attr("t"), "<&>");
  EXPECT_EQ(root.text, "x \"y\"");
  EXPECT_EQ(xmlEscape("<a & \"b\">"), "&lt;a &amp; &quot;b&quot;&gt;");
}

TEST(Xml, CommentsSkipped) {
  XmlNode root = parseXml("<!-- hello --><a><!-- inner --><b/></a>");
  EXPECT_EQ(root.children.size(), 1u);
}

TEST(Xml, RoundTrip) {
  XmlNode root;
  root.tag = "project";
  root.attrs["name"] = "demo <1>";
  XmlNode child;
  child.tag = "l";
  child.text = "3 & 4";
  root.children.push_back(child);
  XmlNode parsed = parseXml(writeXml(root));
  EXPECT_EQ(parsed.attr("name"), "demo <1>");
  EXPECT_EQ(parsed.children[0].text, "3 & 4");
}

TEST(Xml, MalformedInputs) {
  EXPECT_THROW(parseXml("<a><b></a>"), ParseError);
  EXPECT_THROW(parseXml("<a"), ParseError);
  EXPECT_THROW(parseXml("<a attr=oops></a>"), ParseError);
  EXPECT_THROW(parseXml("<a>&bogus;</a>"), ParseError);
  EXPECT_THROW(parseXml("<a><!-- unterminated </a>"), ParseError);
}

}  // namespace
}  // namespace psnap::project
