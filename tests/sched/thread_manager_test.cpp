// Scheduler semantics: frame interleaving, virtual clock, interference
// theft, broadcast bookkeeping, launch/poll, and error collection.
#include "sched/thread_manager.hpp"

#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "support/error.hpp"

namespace psnap::sched {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::Value;

class SchedTest : public ::testing::Test {
 protected:
  SchedTest() : prims_(vm::PrimitiveTable::standard()) {}

  ThreadManager makeTm() {
    return ThreadManager(&BlockRegistry::standard(), &prims_);
  }

  vm::PrimitiveTable prims_;
};

TEST_F(SchedTest, ProcessesInterleavePerFrame) {
  auto tm = makeTm();
  auto env = Environment::make();
  env->declare("log", Value(blocks::List::make()));
  tm.spawnScript(scriptOf({repeat(3, scriptOf({addToList("A",
                                               getVar("log"))}))}),
                 env);
  tm.spawnScript(scriptOf({repeat(3, scriptOf({addToList("B",
                                               getVar("log"))}))}),
                 env);
  tm.runUntilIdle();
  // Round-robin within each frame: A B A B A B.
  EXPECT_EQ(env->get("log").asList()->display(), "[A, B, A, B, A, B]");
}

TEST_F(SchedTest, VirtualClockAdvancesPerFrame) {
  auto tm = makeTm();
  EXPECT_EQ(tm.nowSeconds(), 0.0);
  tm.runFrame();
  tm.runFrame();
  EXPECT_EQ(tm.nowSeconds(), 2.0);
  tm.setSecondsPerFrame(0.5);
  tm.runFrame();
  EXPECT_EQ(tm.nowSeconds(), 2.5);
}

TEST_F(SchedTest, ClockStateRoundTripsIntoFreshManager) {
  auto tm = makeTm();
  tm.setSecondsPerFrame(0.5);
  tm.runFrame();
  tm.runFrame();
  tm.resetTimer();
  tm.runFrame();
  const ThreadManager::ClockState state = tm.clockState();
  EXPECT_EQ(state.frame, 3u);
  EXPECT_EQ(state.now, 1.5);

  auto fresh = makeTm();
  fresh.setSecondsPerFrame(0.5);
  fresh.restoreClockState(state);
  EXPECT_EQ(fresh.frameCount(), 3u);
  EXPECT_EQ(fresh.nowSeconds(), 1.5);
  EXPECT_EQ(fresh.timerSeconds(), 0.5);  // timerStart carried over
  fresh.runFrame();
  EXPECT_EQ(fresh.frameCount(), 4u);
  EXPECT_EQ(fresh.nowSeconds(), 2.0);
}

TEST_F(SchedTest, TimerResets) {
  auto tm = makeTm();
  tm.runFrame();
  tm.runFrame();
  tm.resetTimer();
  tm.runFrame();
  EXPECT_EQ(tm.timerSeconds(), 1.0);
}

TEST_F(SchedTest, BusyProcessTakesExpectedFrames) {
  auto tm = makeTm();
  tm.spawnScript(scriptOf({busyWork(5)}), Environment::make());
  EXPECT_EQ(tm.runUntilIdle(), 5u);
}

TEST_F(SchedTest, InterferenceStealsFrames) {
  // Paper Fig. 10 footnote: a 9-frame sequential workload under the
  // default interference model observes 12 timesteps.
  auto tm = makeTm();
  tm.setInterference(InterferenceModel::paperDefault());
  tm.spawnScript(scriptOf({forEach("cup", listOf({"a", "b", "c"}),
                                   scriptOf({busyWork(3)}))}),
                 Environment::make());
  EXPECT_EQ(tm.runUntilIdle(), 12u);
}

TEST_F(SchedTest, NoInterferenceIsIdealNine) {
  auto tm = makeTm();
  tm.spawnScript(scriptOf({forEach("cup", listOf({"a", "b", "c"}),
                                   scriptOf({busyWork(3)}))}),
                 Environment::make());
  EXPECT_EQ(tm.runUntilIdle(), 9u);
}

TEST_F(SchedTest, InterferenceModelPredicate) {
  InterferenceModel model{3, 4};
  EXPECT_FALSE(model.steals(1));
  EXPECT_FALSE(model.steals(3));
  EXPECT_TRUE(model.steals(4));
  EXPECT_TRUE(model.steals(7));
  EXPECT_TRUE(model.steals(10));
  EXPECT_FALSE(model.steals(11));
  EXPECT_FALSE(InterferenceModel::none().steals(4));
}

TEST_F(SchedTest, SpawnedProcessStartsNextFrame) {
  auto tm = makeTm();
  auto env = Environment::make();
  env->declare("n", Value(0));
  // The outer script spawns nothing; but a process spawned mid-frame by a
  // primitive must not run in the same frame. We emulate by spawning
  // between frames and checking one frame runs one iteration.
  tm.spawnScript(scriptOf({changeVar("n", 1)}), env);
  EXPECT_EQ(env->get("n").asNumber(), 0);  // not yet run
  tm.runFrame();
  EXPECT_EQ(env->get("n").asNumber(), 1);
}

TEST_F(SchedTest, EvaluateReturnsExpressionResult) {
  auto tm = makeTm();
  Value v = tm.evaluate(sum(product(6, 7), 0), Environment::make());
  EXPECT_EQ(v.asNumber(), 42);
}

TEST_F(SchedTest, EvaluateThrowsOnError) {
  auto tm = makeTm();
  EXPECT_THROW(tm.evaluate(quotient(1, 0), Environment::make()), Error);
  EXPECT_EQ(tm.errors().size(), 1u);
}

TEST_F(SchedTest, StatusCarriesResult) {
  auto tm = makeTm();
  auto handle = tm.spawnExpression(sum(1, 2), Environment::make());
  tm.runUntilIdle();
  EXPECT_TRUE(handle.status->done);
  EXPECT_FALSE(handle.status->errored);
  EXPECT_EQ(handle.status->result.asNumber(), 3);
}

TEST_F(SchedTest, LaunchScriptStatusPolling) {
  auto tm = makeTm();
  auto status = tm.launchScript(scriptOf({busyWork(3)}),
                                Environment::make(), nullptr);
  EXPECT_FALSE(status->done);
  tm.runFrame();
  EXPECT_FALSE(status->done);
  tm.runUntilIdle();
  EXPECT_TRUE(status->done);
  EXPECT_FALSE(status->errored);
}

TEST_F(SchedTest, ErrorsAreCollected) {
  auto tm = makeTm();
  auto handle = tm.spawnScript(scriptOf({say(quotient(1, 0))}),
                               Environment::make());
  tm.runUntilIdle();
  EXPECT_TRUE(handle.status->errored);
  ASSERT_EQ(tm.errors().size(), 1u);
  EXPECT_NE(tm.errors()[0].find("division by zero"), std::string::npos);
}

TEST_F(SchedTest, RecordedErrorsCarryAttribution) {
  auto tm = makeTm();
  auto handle = tm.spawnScript(scriptOf({say(quotient(1, 0))}),
                               Environment::make());
  tm.runUntilIdle();
  ASSERT_TRUE(handle.status->errored);
  ASSERT_EQ(tm.recordedErrors().size(), 1u);
  const auto& record = tm.recordedErrors()[0];
  EXPECT_GT(record.processId, 0u);
  EXPECT_FALSE(record.opcode.empty());
  EXPECT_NE(record.message.find("division by zero"), std::string::npos);
  EXPECT_NE(record.errorClass, ErrorClass::None);
  // The string log carries the same attribution as a prefix.
  ASSERT_EQ(tm.errors().size(), 1u);
  EXPECT_EQ(tm.errors()[0].rfind("process ", 0), 0u);
  EXPECT_NE(tm.errors()[0].find(record.opcode), std::string::npos);
}

TEST_F(SchedTest, ErrorLogIsCapped) {
  auto tm = makeTm();
  const size_t spawned = ThreadManager::kMaxRecordedErrors + 5;
  for (size_t i = 0; i < spawned; ++i) {
    tm.spawnScript(scriptOf({say(quotient(1, 0))}), Environment::make());
  }
  tm.runUntilIdle();
  EXPECT_EQ(tm.errors().size(), ThreadManager::kMaxRecordedErrors);
  EXPECT_EQ(tm.recordedErrors().size(), ThreadManager::kMaxRecordedErrors);
  EXPECT_EQ(tm.droppedErrorCount(), 5u);
}

TEST_F(SchedTest, StopAllTerminatesEverything) {
  auto tm = makeTm();
  tm.spawnScript(scriptOf({forever(scriptOf({}))}), Environment::make());
  tm.spawnScript(scriptOf({forever(scriptOf({}))}), Environment::make());
  tm.runFrame();
  EXPECT_EQ(tm.runnableCount(), 2u);
  tm.stopAll();
  EXPECT_TRUE(tm.idle());
}

TEST_F(SchedTest, RunUntilIdleGuardsAgainstRunaways) {
  auto tm = makeTm();
  tm.spawnScript(scriptOf({forever(scriptOf({}))}), Environment::make());
  EXPECT_THROW(tm.runUntilIdle(100), Error);
  tm.stopAll();
}

TEST_F(SchedTest, FrameBudgetOverrunIsTypedAndNamesProcesses) {
  auto tm = makeTm();
  tm.spawnScript(scriptOf({forever(scriptOf({}))}), Environment::make());
  try {
    tm.runUntilIdle(50);
    FAIL() << "runUntilIdle should have exceeded its budget";
  } catch (const TimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("frame budget"), std::string::npos);
    EXPECT_NE(what.find("still runnable: process "), std::string::npos);
  }
  tm.stopAll();
}

TEST_F(SchedTest, SayLogSurvivesReaping) {
  auto tm = makeTm();
  tm.spawnScript(scriptOf({say("first")}), Environment::make());
  tm.runUntilIdle();
  tm.spawnScript(scriptOf({say("second")}), Environment::make());
  tm.runUntilIdle();
  auto log = tm.collectSayLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "first");
  EXPECT_EQ(log[1], "second");
}

TEST_F(SchedTest, BroadcastWithoutListenersFinishesImmediately) {
  auto tm = makeTm();
  uint64_t token = tm.broadcast("nobody-home");
  EXPECT_TRUE(tm.broadcastFinished(token));
}

TEST_F(SchedTest, WaitBlockUsesSchedulerClock) {
  auto tm = makeTm();
  auto env = Environment::make();
  tm.spawnScript(scriptOf({wait(3), say("done")}), env);
  uint64_t frames = tm.runUntilIdle();
  EXPECT_EQ(frames, 4u);
  EXPECT_EQ(tm.collectSayLog().size(), 1u);
}

TEST_F(SchedTest, ErrorLogCapsAtSixtyFourAndDrains) {
  auto tm = makeTm();
  auto env = Environment::make();
  // 70 deterministic failures: 64 land in the capped log, 6 are dropped.
  constexpr size_t kFailures = ThreadManager::kMaxRecordedErrors + 6;
  for (size_t i = 0; i < kFailures; ++i) {
    tm.spawnExpression(itemOf(In(9.0), listOf({In(1.0)})), env);
  }
  tm.runUntilIdle();
  EXPECT_EQ(tm.recordedErrors().size(), ThreadManager::kMaxRecordedErrors);
  EXPECT_EQ(tm.errors().size(), ThreadManager::kMaxRecordedErrors);
  EXPECT_EQ(tm.droppedErrorCount(), 6u);

  ThreadManager::ErrorDrain drain = tm.drainErrors();
  EXPECT_EQ(drain.entries.size(), ThreadManager::kMaxRecordedErrors);
  EXPECT_EQ(drain.dropped, 6u);
  EXPECT_EQ(drain.entries.front().errorClass, ErrorClass::Index);
  EXPECT_NE(drain.entries.front().message.find("index error"),
            std::string::npos);

  // The drain resets everything: entries, string log, dropped count.
  EXPECT_TRUE(tm.recordedErrors().empty());
  EXPECT_TRUE(tm.errors().empty());
  EXPECT_EQ(tm.droppedErrorCount(), 0u);

  // And frees the cap's capacity: a fresh failure is recorded again.
  tm.spawnExpression(itemOf(In(9.0), listOf({In(1.0)})), env);
  tm.runUntilIdle();
  ASSERT_EQ(tm.recordedErrors().size(), 1u);
  EXPECT_EQ(tm.recordedErrors()[0].errorClass, ErrorClass::Index);
  EXPECT_EQ(tm.drainErrors().entries.size(), 1u);
}

}  // namespace
}  // namespace psnap::sched
