// Stage semantics: sprites, hats, events, clones, broadcasts, rendering.
#include "stage/stage.hpp"

#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "support/error.hpp"

namespace psnap::stage {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Value;

class StageTest : public ::testing::Test {
 protected:
  StageTest()
      : prims_(core::fullPrimitiveTable()),
        tm_(&BlockRegistry::standard(), &prims_),
        stage_(&tm_) {}

  vm::PrimitiveTable prims_;
  sched::ThreadManager tm_;
  Stage stage_;
};

TEST_F(StageTest, GreenFlagStartsGoScripts) {
  Sprite& dragon = stage_.addSprite("Dragon");
  dragon.addScript(scriptOf({whenGreenFlag(), say("rawr")}));
  stage_.greenFlag();
  tm_.runUntilIdle();
  EXPECT_EQ(dragon.sayText(), "rawr");
}

TEST_F(StageTest, KeyPressTurnsDragon) {
  // Paper Fig. 3: right arrow turns right 15 degrees, left arrow left 15.
  Sprite& dragon = stage_.addSprite("Dragon");
  dragon.addScript(scriptOf({whenKeyPressed("right arrow"),
                             turnRight(15)}));
  dragon.addScript(scriptOf({whenKeyPressed("left arrow"),
                             turnLeftBy(15)}));
  stage_.keyPressed("right arrow");
  tm_.runUntilIdle();
  EXPECT_EQ(dragon.heading(), 105);
  stage_.keyPressed("left arrow");
  stage_.keyPressed("left arrow");
  tm_.runUntilIdle();
  EXPECT_EQ(dragon.heading(), 75);
}

TEST_F(StageTest, ConcurrentScriptsOfOneSprite) {
  // Multiple scripts of the same sprite run concurrently (Sec. 2).
  Sprite& s = stage_.addSprite("S");
  s.variables()->declare("a", Value(0));
  s.addScript(scriptOf({whenGreenFlag(),
                        repeat(3, scriptOf({changeVar("a", 1)}))}));
  s.addScript(scriptOf({whenGreenFlag(),
                        repeat(3, scriptOf({changeVar("a", 10)}))}));
  stage_.greenFlag();
  tm_.runUntilIdle();
  EXPECT_EQ(s.variables()->get("a").asNumber(), 33);
}

TEST_F(StageTest, MotionBlocks) {
  Sprite& s = stage_.addSprite("S");
  s.addScript(scriptOf({whenGreenFlag(), goToXY(10, 20), moveSteps(5),
                        pointInDirection(0), moveSteps(3)}));
  stage_.greenFlag();
  tm_.runUntilIdle();
  // heading 90 = +x; then heading 0 = +y.
  EXPECT_NEAR(s.x(), 15, 1e-9);
  EXPECT_NEAR(s.y(), 23, 1e-9);
}

TEST_F(StageTest, BroadcastActivatesListeners) {
  Sprite& a = stage_.addSprite("A");
  Sprite& b = stage_.addSprite("B");
  a.addScript(scriptOf({whenGreenFlag(), broadcast("ding")}));
  b.addScript(scriptOf({whenIReceive("ding"), say("got it")}));
  stage_.greenFlag();
  tm_.runUntilIdle();
  EXPECT_EQ(b.sayText(), "got it");
}

TEST_F(StageTest, BroadcastAndWaitBlocksUntilListenersFinish) {
  Sprite& a = stage_.addSprite("A");
  Sprite& b = stage_.addSprite("B");
  a.variables()->declare("done", Value(false));
  a.addScript(scriptOf({whenGreenFlag(), broadcastAndWait("work"),
                        say("after")}));
  b.addScript(scriptOf({whenIReceive("work"), busyWork(5)}));
  stage_.greenFlag();
  uint64_t frames = tm_.runUntilIdle();
  EXPECT_GE(frames, 5u);
  EXPECT_EQ(a.sayText(), "after");
}

TEST_F(StageTest, ClonesCopyStateAndRunCloneHats) {
  Sprite& pitcher = stage_.addSprite("Pitcher");
  pitcher.gotoXY(50, 60);
  pitcher.setCostume("full");
  pitcher.variables()->declare("drinks", Value(3));
  pitcher.addScript(scriptOf({whenCloneStarts(), say("clone alive")}));
  Sprite* clone = stage_.makeClone(&pitcher);
  ASSERT_NE(clone, nullptr);
  EXPECT_TRUE(clone->isClone());
  EXPECT_EQ(clone->cloneParent(), &pitcher);
  EXPECT_EQ(clone->x(), 50);
  EXPECT_EQ(clone->costume(), "full");
  EXPECT_EQ(clone->variables()->get("drinks").asNumber(), 3);
  EXPECT_EQ(stage_.cloneCount(), 1u);
  tm_.runUntilIdle();
  EXPECT_EQ(clone->sayText(), "clone alive");
}

TEST_F(StageTest, CloneVariablesAreIndependent) {
  Sprite& s = stage_.addSprite("S");
  s.variables()->declare("n", Value(1));
  Sprite* clone = stage_.makeClone(&s);
  clone->variables()->set("n", Value(99));
  EXPECT_EQ(s.variables()->get("n").asNumber(), 1);
}

TEST_F(StageTest, CreateCloneBlockAndRemoveClone) {
  Sprite& s = stage_.addSprite("S");
  s.addScript(scriptOf({whenCloneStarts(), busyWork(2), removeClone()}));
  s.addScript(scriptOf({whenGreenFlag(), createCloneOf("myself")}));
  stage_.greenFlag();
  tm_.runUntilIdle();
  EXPECT_EQ(stage_.cloneCount(), 0u);  // clone removed itself
}

TEST_F(StageTest, StopAllRemovesClones) {
  Sprite& s = stage_.addSprite("S");
  stage_.makeClone(&s);
  stage_.makeClone(&s);
  EXPECT_EQ(stage_.cloneCount(), 2u);
  stage_.stopAll();
  EXPECT_EQ(stage_.cloneCount(), 0u);
  EXPECT_TRUE(tm_.idle());
}

TEST_F(StageTest, GlobalVariablesSharedAcrossSprites) {
  stage_.globals()->declare("score", Value(0));
  Sprite& a = stage_.addSprite("A");
  Sprite& b = stage_.addSprite("B");
  a.addScript(scriptOf({whenGreenFlag(), changeVar("score", 5)}));
  b.addScript(scriptOf({whenGreenFlag(), changeVar("score", 7)}));
  stage_.greenFlag();
  tm_.runUntilIdle();
  EXPECT_EQ(stage_.globals()->get("score").asNumber(), 12);
}

TEST_F(StageTest, DuplicateSpriteNameThrows) {
  stage_.addSprite("S");
  EXPECT_THROW(stage_.addSprite("S"), Error);
}

TEST_F(StageTest, ScriptWithoutHatThrows) {
  Sprite& s = stage_.addSprite("S");
  EXPECT_THROW(s.addScript(scriptOf({say("no hat")})), Error);
  EXPECT_THROW(s.addScript(scriptOf({})), Error);
}

TEST_F(StageTest, RenderFrameShowsSpritesAndTimer) {
  Sprite& s = stage_.addSprite("Cup");
  s.gotoXY(1, 2);
  s.setCostume("empty");
  s.sayBubble("fill me");
  std::string frame = stage_.renderFrame();
  EXPECT_NE(frame.find("t=0"), std::string::npos);
  EXPECT_NE(frame.find("Cup @(1,2)"), std::string::npos);
  EXPECT_NE(frame.find("costume 'empty'"), std::string::npos);
  EXPECT_NE(frame.find("says \"fill me\""), std::string::npos);
}

TEST_F(StageTest, CostumeSwitchBlock) {
  Sprite& s = stage_.addSprite("Cup");
  s.addScript(scriptOf({whenGreenFlag(), switchCostume("full")}));
  stage_.greenFlag();
  tm_.runUntilIdle();
  EXPECT_EQ(s.costume(), "full");
}

}  // namespace
}  // namespace psnap::stage
