// Visibility and touching: the sensing surface behind the water-balloon
// game (paper Sec. 5's student project).
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "stage/stage.hpp"

namespace psnap::stage {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Value;

class SensingTest : public ::testing::Test {
 protected:
  SensingTest()
      : prims_(core::fullPrimitiveTable()),
        tm_(&BlockRegistry::standard(), &prims_),
        stage_(&tm_) {}

  vm::PrimitiveTable prims_;
  sched::ThreadManager tm_;
  Stage stage_;
};

TEST_F(SensingTest, TouchingByDistance) {
  Sprite& a = stage_.addSprite("A");
  Sprite& b = stage_.addSprite("B");
  a.gotoXY(0, 0);
  b.gotoXY(50, 0);  // default radii 30 + 30 = reach 60
  EXPECT_TRUE(a.touching("B"));
  EXPECT_TRUE(b.touching("A"));
  b.gotoXY(100, 0);
  EXPECT_FALSE(a.touching("B"));
}

TEST_F(SensingTest, TouchRadiusConfigurable) {
  Sprite& a = stage_.addSprite("A");
  Sprite& b = stage_.addSprite("B");
  b.gotoXY(100, 0);
  a.setTouchRadius(60);
  b.setTouchRadius(41);
  EXPECT_TRUE(a.touching("B"));
}

TEST_F(SensingTest, HiddenSpritesNeverTouch) {
  Sprite& a = stage_.addSprite("A");
  Sprite& b = stage_.addSprite("B");
  b.gotoXY(10, 0);
  EXPECT_TRUE(a.touching("B"));
  b.setVisible(false);
  EXPECT_FALSE(a.touching("B"));
  b.setVisible(true);
  a.setVisible(false);
  EXPECT_FALSE(a.touching("B"));
}

TEST_F(SensingTest, ClonesCountAsTheirParentName) {
  Sprite& a = stage_.addSprite("A");
  Sprite& b = stage_.addSprite("B");
  b.gotoXY(1000, 0);  // parent far away
  Sprite* clone = stage_.makeClone(&b);
  clone->gotoXY(10, 0);
  EXPECT_TRUE(a.touching("B"));  // via the clone
}

TEST_F(SensingTest, SelfIsNeverTouching) {
  Sprite& a = stage_.addSprite("A");
  EXPECT_FALSE(a.touching("A"));
  EXPECT_FALSE(a.touching("Nobody"));
}

TEST_F(SensingTest, TouchingBlockInScripts) {
  Sprite& a = stage_.addSprite("A");
  Sprite& b = stage_.addSprite("B");
  b.gotoXY(20, 0);
  a.addScript(scriptOf({whenGreenFlag(),
                        doIfElse(touching("B"), scriptOf({say("hit")}),
                                 scriptOf({say("clear")}))}));
  stage_.greenFlag();
  tm_.runUntilIdle();
  EXPECT_EQ(a.sayText(), "hit");
}

TEST_F(SensingTest, ShowHideBlocks) {
  Sprite& a = stage_.addSprite("A");
  a.addScript(scriptOf({whenGreenFlag(), hide()}));
  stage_.greenFlag();
  tm_.runUntilIdle();
  EXPECT_FALSE(a.visible());
  a.addScript(scriptOf({whenIReceive("reveal"), show()}));
  tm_.broadcast("reveal");
  tm_.runUntilIdle();
  EXPECT_TRUE(a.visible());
}

TEST_F(SensingTest, FallingCloneCatchScenario) {
  // A miniature of the water-balloon game: one balloon falls straight
  // into a basket below it.
  stage_.globals()->declare("caught", Value(0));
  Sprite& basket = stage_.addSprite("Basket");
  basket.gotoXY(0, -100);
  Sprite& balloon = stage_.addSprite("Balloon");
  balloon.gotoXY(0, 100);
  balloon.addScript(scriptOf({
      whenCloneStarts(),
      repeatUntil(or_(touching("Basket"),
                      lessThan(blk("yPosition"), -140.0)),
                  scriptOf({blk("changeYPosition", {In(-20)})})),
      doIf(touching("Basket"), scriptOf({changeVar("caught", 1)})),
      removeClone(),
  }));
  stage_.makeClone(&balloon);
  tm_.runUntilIdle();
  EXPECT_EQ(stage_.globals()->get("caught").asNumber(), 1);
  EXPECT_EQ(stage_.cloneCount(), 0u);
}

}  // namespace
}  // namespace psnap::stage
