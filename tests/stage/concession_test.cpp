// The headline reproduction: the concession stand of paper Sec. 3.3.
//
//   * parallel mode: 3 pitcher clones fill 3 cups in 3 timesteps (Fig. 9);
//   * sequential mode: 9 ideal timesteps;
//   * sequential mode with browser interference: 12 observed timesteps —
//     "the difference happened to be 3 timesteps" (Fig. 10 + footnote 5).
#include "scenarios/concession.hpp"

#include <gtest/gtest.h>

namespace psnap::scenarios {
namespace {

TEST(Concession, ParallelTakesThreeTimesteps) {
  ConcessionResult r = runConcession({.parallel = true});
  EXPECT_TRUE(r.errors.empty());
  EXPECT_EQ(r.pourTimesteps, 3u);
  EXPECT_EQ(r.cupsFilled, 3u);
}

TEST(Concession, SequentialIdealIsNineTimesteps) {
  ConcessionResult r = runConcession({.parallel = false});
  EXPECT_TRUE(r.errors.empty());
  EXPECT_EQ(r.pourTimesteps, 9u);
  EXPECT_EQ(r.cupsFilled, 3u);
}

TEST(Concession, SequentialWithInterferenceIsTwelve) {
  ConcessionResult r = runConcession(
      {.parallel = false, .interference = paperInterference()});
  EXPECT_TRUE(r.errors.empty());
  EXPECT_EQ(r.pourTimesteps, 12u);
  EXPECT_EQ(r.cupsFilled, 3u);
}

TEST(Concession, ParallelUnaffectedByInterference) {
  // The parallel run finishes before the first stolen frame, so its
  // readout stays at 3 — exactly the asymmetry the paper observed.
  ConcessionResult r = runConcession(
      {.parallel = true, .interference = paperInterference()});
  EXPECT_TRUE(r.errors.empty());
  EXPECT_EQ(r.pourTimesteps, 3u);
}

TEST(Concession, SpeedupScalesWithCupCount) {
  for (size_t cups : {2u, 4u, 6u}) {
    ConcessionResult par = runConcession({.parallel = true, .cups = cups});
    ConcessionResult seq = runConcession({.parallel = false, .cups = cups});
    EXPECT_EQ(par.pourTimesteps, 3u) << cups;
    EXPECT_EQ(seq.pourTimesteps, 3u * cups) << cups;
    EXPECT_EQ(par.cupsFilled, cups);
    EXPECT_EQ(seq.cupsFilled, cups);
  }
}

TEST(Concession, PourDurationScales) {
  ConcessionResult r = runConcession({.parallel = false, .pourFrames = 5});
  EXPECT_EQ(r.pourTimesteps, 15u);
}

TEST(Concession, FrameCaptureShowsProgression) {
  ConcessionResult r = runConcession(
      {.parallel = true, .captureFrames = true});
  ASSERT_FALSE(r.frames.empty());
  // The first frame shows empty cups, the last shows all cups full.
  EXPECT_NE(r.frames.front().find("costume 'empty'"), std::string::npos);
  size_t fullCount = 0;
  const std::string& last = r.frames.back();
  for (size_t pos = last.find("costume 'full'");
       pos != std::string::npos;
       pos = last.find("costume 'full'", pos + 1)) {
    ++fullCount;
  }
  EXPECT_EQ(fullCount, 3u);
}

TEST(Concession, CloneCountMatchesParallelism) {
  // During the parallel run, frames show the pitcher clones on stage.
  ConcessionResult r = runConcession(
      {.parallel = true, .cups = 3, .captureFrames = true});
  bool sawClones = false;
  for (const std::string& frame : r.frames) {
    if (frame.find("Pitcher#") != std::string::npos) sawClones = true;
  }
  EXPECT_TRUE(sawClones);
  // Clones are gone after the run.
  EXPECT_EQ(r.frames.back().find("Pitcher#"), std::string::npos);
}

}  // namespace
}  // namespace psnap::scenarios
