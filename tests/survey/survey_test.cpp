// The Sec. 5 survey simulation: synthetic cohorts reproduce the paper's
// published marginals, and the tally path is exact.
#include "survey/survey.hpp"

#include <gtest/gtest.h>

namespace psnap::survey {
namespace {

TEST(Survey, CohortSizeAndDeterminism) {
  auto a = generateCohort(100, Targets::paper2016(), 1);
  auto b = generateCohort(100, Targets::paper2016(), 1);
  ASSERT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].career, b[i].career);
    EXPECT_EQ(a[i].impression, b[i].impression);
  }
}

TEST(Survey, PaperMarginalsAtN100) {
  // With n=100 the apportionment is exact: 29/54/17 and 86/9/6 (the
  // impression row sums to 101 in the paper due to rounding; largest
  // remainder assigns the extra point deterministically).
  auto cohort = generateCohort(100, Targets::paper2016(), 42);
  Tally t = tally(cohort);
  EXPECT_NEAR(t.careerCs, 29, 1.0);
  EXPECT_NEAR(t.careerOther, 54, 1.0);
  EXPECT_NEAR(t.careerNoAnswer, 17, 1.0);
  EXPECT_NEAR(t.benefitGivenOther, 57, 2.0);
  EXPECT_NEAR(t.impressionMore, 86, 1.0);
  EXPECT_NEAR(t.impressionLess, 9, 1.0);
  EXPECT_NEAR(t.impressionSame, 6, 1.0);
}

TEST(Survey, MarginalsConvergeAtLargeN) {
  Tally t = tally(generateCohort(10000, Targets::paper2016(), 7));
  EXPECT_NEAR(t.careerCs, 29, 0.2);
  EXPECT_NEAR(t.benefitGivenOther, 57, 0.2);
  // The paper's impression rows sum to 101% (rounding); apportionment
  // normalizes, so the converged share is 86/101.
  EXPECT_NEAR(t.impressionMore, 100.0 * 86.0 / 101.0, 0.2);
}

TEST(Survey, BenefitOnlyCountsOtherGroup) {
  auto cohort = generateCohort(200, Targets::paper2016(), 3);
  for (const Response& r : cohort) {
    if (r.career != Career::Other) {
      EXPECT_FALSE(r.csWouldBenefit);
    }
  }
}

TEST(Survey, EmptyCohort) {
  EXPECT_TRUE(generateCohort(0, Targets::paper2016(), 1).empty());
  Tally t = tally({});
  EXPECT_EQ(t.respondents, 0u);
  EXPECT_EQ(t.careerCs, 0);
}

TEST(Survey, CustomTargets) {
  Targets targets;
  targets.careerCs = 100;
  targets.careerOther = 0;
  targets.careerNoAnswer = 0;
  auto cohort = generateCohort(50, targets, 9);
  Tally t = tally(cohort);
  EXPECT_EQ(t.careerCs, 100);
  EXPECT_EQ(t.benefitGivenOther, 0);  // nobody in the Other group
}

TEST(Survey, TallyCountsByHand) {
  std::vector<Response> responses = {
      {Career::ComputerScience, false, Impression::MoreFavorable},
      {Career::Other, true, Impression::MoreFavorable},
      {Career::Other, false, Impression::LessFavorable},
      {Career::NoAnswer, false, Impression::SameOrNoOpinion},
  };
  Tally t = tally(responses);
  EXPECT_EQ(t.respondents, 4u);
  EXPECT_EQ(t.careerCs, 25);
  EXPECT_EQ(t.careerOther, 50);
  EXPECT_EQ(t.benefitGivenOther, 50);
  EXPECT_EQ(t.impressionMore, 50);
}

TEST(Survey, ComparisonTableMentionsEveryRow) {
  Tally t = tally(generateCohort(100, Targets::paper2016(), 42));
  std::string table = comparisonTable(Targets::paper2016(), t);
  EXPECT_NE(table.find("career: computer science"), std::string::npos);
  EXPECT_NE(table.find("more favorable"), std::string::npos);
  EXPECT_NE(table.find("n=100"), std::string::npos);
}

}  // namespace
}  // namespace psnap::survey
