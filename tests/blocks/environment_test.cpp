#include "blocks/environment.hpp"

#include "blocks/block.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace psnap::blocks {
namespace {

TEST(Environment, DeclareAndGet) {
  auto env = Environment::make();
  env->declare("x", Value(5));
  EXPECT_EQ(env->get("x").asNumber(), 5);
  EXPECT_TRUE(env->isDeclared("x"));
  EXPECT_FALSE(env->isDeclared("y"));
  EXPECT_THROW(env->get("y"), Error);
}

TEST(Environment, LexicalShadowing) {
  auto global = Environment::make();
  global->declare("x", Value(1));
  auto local = Environment::make(global);
  local->declare("x", Value(2));
  EXPECT_EQ(local->get("x").asNumber(), 2);
  EXPECT_EQ(global->get("x").asNumber(), 1);
}

TEST(Environment, SetTargetsDeclaringFrame) {
  auto global = Environment::make();
  global->declare("x", Value(1));
  auto local = Environment::make(global);
  local->set("x", Value(9));
  EXPECT_EQ(global->get("x").asNumber(), 9);
}

TEST(Environment, SetUndeclaredGoesGlobal) {
  auto global = Environment::make();
  auto mid = Environment::make(global);
  auto local = Environment::make(mid);
  local->set("fresh", Value(3));
  EXPECT_TRUE(global->isDeclared("fresh"));
  EXPECT_EQ(local->get("fresh").asNumber(), 3);
}

TEST(Environment, ImplicitArgsPositional) {
  auto frame = Environment::make();
  frame->setImplicitArgs({Value(10), Value(20)});
  EXPECT_EQ(frame->implicitArg(0).asNumber(), 10);
  EXPECT_EQ(frame->implicitArg(1).asNumber(), 20);
  EXPECT_THROW(frame->implicitArg(2), Error);
}

TEST(Environment, SingleImplicitArgFillsAllBlanks) {
  auto frame = Environment::make();
  frame->setImplicitArgs({Value(7)});
  EXPECT_EQ(frame->implicitArg(0).asNumber(), 7);
  EXPECT_EQ(frame->implicitArg(3).asNumber(), 7);
}

TEST(Environment, ImplicitArgsSearchUpChain) {
  auto outer = Environment::make();
  outer->setImplicitArgs({Value(1)});
  auto inner = Environment::make(outer);
  EXPECT_TRUE(inner->hasImplicitArgs());
  EXPECT_EQ(inner->implicitArg(0).asNumber(), 1);
}

TEST(Environment, NoImplicitArgsThrows) {
  auto env = Environment::make();
  EXPECT_FALSE(env->hasImplicitArgs());
  EXPECT_THROW(env->implicitArg(0), Error);
}

TEST(Environment, EmptyImplicitArgListThrows) {
  auto env = Environment::make();
  env->setImplicitArgs({});
  EXPECT_THROW(env->implicitArg(0), Error);
}

TEST(Environment, OwningRingSearchesChain) {
  auto expr = Block::make("reportIdentity", {Input::empty()});
  auto ring = Ring::reporter(expr);
  auto outer = Environment::make();
  outer->setOwningRing(ring.get());
  auto inner = Environment::make(outer);
  EXPECT_EQ(inner->owningRing(), ring.get());
  EXPECT_EQ(Environment::make()->owningRing(), nullptr);
}

TEST(Environment, LocalNames) {
  auto env = Environment::make();
  env->declare("a");
  env->declare("b");
  auto names = env->localNames();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace psnap::blocks
