// COW value-plane semantics: snapshot isolation of structuredClone,
// buffer sharing and deferred detach, shared immutable text with cached
// coercion, cycle guards, and property tests pinning the snapshot path to
// the byte-identical behavior of an eager deep copy.
#include "blocks/value.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace psnap::blocks {
namespace {

// ---------------------------------------------------------------------------
// Snapshot isolation — mutations after clone never leak in either direction.
// ---------------------------------------------------------------------------

TEST(CowClone, FlatCloneSharesBufferUntilMutation) {
  auto source = List::make({Value(1), Value(2), Value(3)});
  Value clone = Value(source).structuredClone();
  // O(1) snapshot: same buffer, distinct List identity.
  EXPECT_NE(clone.asList().get(), source.get());
  EXPECT_TRUE(clone.asList()->sharesBufferWith(*source));
  // First mutation of the source detaches it; the clone is untouched.
  source->add(Value(4));
  EXPECT_FALSE(clone.asList()->sharesBufferWith(*source));
  EXPECT_EQ(source->length(), 4u);
  EXPECT_EQ(clone.asList()->length(), 3u);
}

TEST(CowClone, MutatingCloneNeverReachesSource) {
  auto source = List::make({Value("alpha"), Value("beta")});
  Value clone = Value(source).structuredClone();
  clone.asList()->replaceAt(1, Value("mutated"));
  clone.asList()->add(Value("extra"));
  EXPECT_EQ(source->display(), "[alpha, beta]");
  EXPECT_EQ(clone.asList()->display(), "[mutated, beta, extra]");
}

TEST(CowClone, NestedMutationAfterCloneIsIsolatedBothWays) {
  auto inner = List::make({Value(1)});
  auto outer = List::make({Value(inner), Value("t")});
  Value clone = Value(outer).structuredClone();
  // Mutate the original's sublist through a direct alias (not through
  // the outer list): the snapshot must not see it.
  inner->add(Value(2));
  EXPECT_EQ(clone.asList()->item(1).asList()->length(), 1u);
  // And mutate the clone's sublist: the original must not see it.
  clone.asList()->item(1).asList()->add(Value(99));
  EXPECT_EQ(inner->length(), 2u);
  EXPECT_EQ(inner->item(2).asNumber(), 2);
}

TEST(CowClone, EveryMutatorGoesThroughTheDetachGate) {
  auto probe = [](void (*mutate)(List&)) {
    auto source = List::make({Value(1), Value(2), Value(3)});
    Value clone = Value(source).structuredClone();
    ASSERT_TRUE(clone.asList()->sharesBufferWith(*source));
    mutate(*source);
    EXPECT_EQ(clone.asList()->display(), "[1, 2, 3]")
        << "mutator leaked through the snapshot";
  };
  probe(+[](List& l) { l.add(Value(4)); });
  probe(+[](List& l) { l.insertAt(1, Value(0)); });
  probe(+[](List& l) { l.replaceAt(2, Value(9)); });
  probe(+[](List& l) { l.removeAt(1); });
  probe(+[](List& l) { l.clear(); });
  probe(+[](List& l) { l.mutableItems()[0] = Value(7); });
}

TEST(CowClone, CloneOfCloneChainsAreIndependent) {
  auto source = List::make({Value(1)});
  Value a = Value(source).structuredClone();
  Value b = a.structuredClone();
  a.asList()->add(Value(2));
  EXPECT_EQ(source->display(), "[1]");
  EXPECT_EQ(a.asList()->display(), "[1, 2]");
  EXPECT_EQ(b.asList()->display(), "[1]");
}

TEST(CowClone, VersionStampAdvancesOnMutation) {
  auto list = List::make({Value(1)});
  const uint64_t before = list->version();
  list->add(Value(2));
  EXPECT_GT(list->version(), before);
}

// ---------------------------------------------------------------------------
// Aliasing semantics on the live side are preserved.
// ---------------------------------------------------------------------------

TEST(CowAliasing, SharedSublistStaysAliasedThroughMutation) {
  auto shared = List::make({Value(1)});
  auto outer = List::make({Value(shared), Value(shared)});
  // Mutating through one occurrence is visible through the other —
  // first-class list identity, exactly as before COW.
  outer->item(1).asList()->add(Value(2));
  EXPECT_EQ(outer->item(2).asList()->length(), 2u);
  EXPECT_EQ(shared->length(), 2u);
}

TEST(CowAliasing, ReferenceSemanticsUnchangedByCowGate) {
  auto list = List::make({Value(1)});
  Value held(list);
  held.asList()->add(Value(2));
  EXPECT_EQ(list->length(), 2u);
}

TEST(CowAliasing, SnapshotDuplicatesAliasedSublists) {
  // The seed's structured clone duplicated aliased sublists (each
  // occurrence recursed independently); snapshot transfer keeps that
  // observable behavior: mutating one occurrence of the clone does not
  // affect the other.
  auto shared = List::make({Value(1)});
  auto outer = List::make({Value(shared), Value(shared)});
  Value clone = Value(outer).structuredClone();
  clone.asList()->item(1).asList()->add(Value(2));
  EXPECT_EQ(clone.asList()->item(1).asList()->length(), 2u);
  EXPECT_EQ(clone.asList()->item(2).asList()->length(), 1u);
  EXPECT_EQ(shared->length(), 1u);
}

// ---------------------------------------------------------------------------
// Shared immutable text and cached coercions.
// ---------------------------------------------------------------------------

TEST(CowText, LongTextEqualsAndCoercionAreStable) {
  const std::string longNumeric(40, ' ');
  Value v(longNumeric + "128.5");
  EXPECT_EQ(v.asNumber(), 128.5);
  EXPECT_EQ(v.asNumber(), 128.5);  // second read hits the cache
  double out = 0;
  EXPECT_TRUE(v.numericValue(out));
  EXPECT_EQ(out, 128.5);
  Value copy = v;  // refcount bump, shares the rep and its caches
  EXPECT_EQ(copy.asNumber(), 128.5);
  EXPECT_TRUE(copy.equals(Value(128.5)));
}

TEST(CowText, SmallAndLargeTextBehaveIdentically) {
  const std::string small = "Apple";
  const std::string large = "Apple" + std::string(20, '!');
  for (const std::string& text : {small, large}) {
    Value v(text);
    EXPECT_TRUE(v.isText());
    EXPECT_EQ(v.asText(), text);
    EXPECT_EQ(v.textView(), text);
    EXPECT_EQ(v.display(), text);
    Value upper(strings::toLower(text));
    EXPECT_TRUE(v.equals(upper));
    EXPECT_EQ(v.loweredHash(), upper.loweredHash());
  }
}

TEST(CowText, NonNumericLongTextThrowsEveryTime) {
  Value v(std::string("definitely not a number, and quite long too"));
  EXPECT_THROW(v.asNumber(), TypeError);
  EXPECT_THROW(v.asNumber(), TypeError);  // cached negative result
  double out = 0;
  EXPECT_FALSE(v.numericValue(out));
}

TEST(CowText, BlankLongTextIsZeroInArithmetic) {
  Value v(std::string(32, ' '));
  EXPECT_EQ(v.asNumber(), 0.0);
  double out = 1;
  EXPECT_FALSE(v.numericValue(out));  // blank is not "looks numeric"
  EXPECT_FALSE(v.equals(Value(0.0)));
}

TEST(CowText, StructuredCloneSharesTextRep) {
  Value v(std::string("a long shared immutable text payload here"));
  Value clone = v.structuredClone();
  EXPECT_EQ(clone.textView().data(), v.textView().data());
}

// ---------------------------------------------------------------------------
// Cycle guards: `add L to L` is legal Snap!.
// ---------------------------------------------------------------------------

TEST(CowCycles, SelfReferentialListDisplays) {
  auto list = List::make({Value(1)});
  list->add(Value(list));  // add L to L
  EXPECT_EQ(list->display(), "[1, (cyclic list)]");
}

TEST(CowCycles, DeepCycleDisplays) {
  auto a = List::make();
  auto b = List::make();
  a->add(Value(b));
  b->add(Value(a));
  EXPECT_EQ(a->display(), "[[(cyclic list)]]");
}

TEST(CowCycles, CyclicListsAreNotTransferable) {
  auto list = List::make({Value(1)});
  list->add(Value(list));
  EXPECT_FALSE(Value(list).isTransferable());
  EXPECT_THROW(Value(list).structuredClone(), PurityError);
}

TEST(CowCycles, DeepEqualsAndDeepCopyThrowInsteadOfHanging) {
  auto a = List::make({Value(1)});
  a->add(Value(a));
  auto b = List::make({Value(1)});
  b->add(Value(b));
  EXPECT_THROW(Value(a).equals(Value(b)), TypeError);
  EXPECT_THROW(a->deepCopy(), TypeError);
  // Comparing a cyclic list against itself is identity, not recursion.
  EXPECT_TRUE(a->deepEquals(*a));
}

TEST(CowCycles, AcyclicSharingIsNotFlaggedAsCycle) {
  // The same sublist twice is a DAG, not a cycle — everything works.
  auto shared = List::make({Value(1)});
  auto outer = List::make({Value(shared), Value(shared)});
  EXPECT_TRUE(Value(outer).isTransferable());
  EXPECT_EQ(outer->display(), "[[1], [1]]");
  EXPECT_NO_THROW(outer->deepCopy());
  EXPECT_TRUE(outer->deepEquals(*outer->deepCopy()));
}

TEST(CowCycles, MutationAfterCycleRemovalRestoresTransfer) {
  auto list = List::make({Value(1)});
  list->add(Value(list));
  EXPECT_FALSE(Value(list).isTransferable());
  list->removeAt(2);
  EXPECT_TRUE(Value(list).isTransferable());
  EXPECT_NO_THROW(Value(list).structuredClone());
}

// ---------------------------------------------------------------------------
// Property tests: snapshot transfer is observationally identical to the
// seed's eager deep copy.
// ---------------------------------------------------------------------------

// The seed's Value::structuredClone, reproduced as the reference model:
// eager recursion, fresh vectors, copied strings.
Value referenceDeepClone(const Value& value) {
  if (value.isRing()) {
    throw PurityError("rings cannot be structured-cloned to a worker");
  }
  if (!value.isList()) {
    if (value.isText()) return Value(value.asText());
    return value;
  }
  auto copy = List::make();
  for (const Value& item : value.asList()->items()) {
    copy->add(referenceDeepClone(item));
  }
  return Value(copy);
}

Value randomValueTree(Rng& rng, int depth) {
  switch (rng.below(depth > 0 ? 6 : 4)) {
    case 0: return Value(double(rng.between(-1000, 1000)) / 8);
    case 1: return Value(rng.below(2) == 0);
    case 2: {
      // Mix of small (inline) and long (shared-rep) texts, some numeric.
      switch (rng.below(4)) {
        case 0: return Value("word" + std::to_string(rng.below(50)));
        case 1: return Value(std::to_string(rng.between(-99, 99)));
        case 2:
          return Value(std::string(size_t(rng.between(16, 40)), 'x') +
                       std::to_string(rng.below(10)));
        default: return Value(std::string());
      }
    }
    case 3: return Value();
    default: {
      auto list = List::make();
      const size_t n = rng.below(5);
      for (size_t i = 0; i < n; ++i) {
        list->add(randomValueTree(rng, depth - 1));
      }
      return Value(list);
    }
  }
}

// Random mutation of a random list node in the tree; returns false if the
// tree has no list to mutate.
bool mutateSomewhere(Rng& rng, const Value& value) {
  if (!value.isList()) return false;
  const ListPtr& list = value.asList();
  // Maybe descend into a random sublist first.
  if (!list->empty() && rng.below(2) == 0) {
    const Value& child = list->item(1 + rng.below(list->length()));
    if (mutateSomewhere(rng, child)) return true;
  }
  switch (rng.below(4)) {
    case 0: list->add(Value(rng.between(0, 9))); return true;
    case 1:
      if (!list->empty()) {
        list->replaceAt(1 + rng.below(list->length()), Value("mut"));
        return true;
      }
      list->add(Value("mut"));
      return true;
    case 2:
      if (!list->empty()) {
        list->removeAt(1 + rng.below(list->length()));
        return true;
      }
      return false;
    default: list->insertAt(1, Value(-1.5)); return true;
  }
}

TEST(CowProperty, SnapshotMatchesReferenceDeepClone) {
  Rng rng(20260805);
  for (int round = 0; round < 300; ++round) {
    Value tree = randomValueTree(rng, 3);
    Value reference = referenceDeepClone(tree);
    Value snapshot = tree.structuredClone();
    // Byte-identical rendering and symmetric equality vs the reference.
    EXPECT_EQ(snapshot.display(), reference.display());
    EXPECT_TRUE(snapshot.equals(reference));
    EXPECT_TRUE(reference.equals(snapshot));
    EXPECT_TRUE(snapshot.equals(tree));
  }
}

TEST(CowProperty, MutationsNeverCrossTheSnapshotBoundary) {
  Rng rng(42);
  int mutatedRounds = 0;
  for (int round = 0; round < 300; ++round) {
    auto root = List::make();
    const size_t n = rng.below(6);
    for (size_t i = 0; i < n; ++i) root->add(randomValueTree(rng, 2));
    Value original(root);
    Value snapshot = original.structuredClone();
    const std::string snapshotBefore = snapshot.display();
    const std::string originalBefore = original.display();
    // Mutate the original: the snapshot must render identically.
    if (mutateSomewhere(rng, original)) {
      ++mutatedRounds;
      EXPECT_EQ(snapshot.display(), snapshotBefore);
      // And mutate the snapshot: the original keeps its mutated form.
      const std::string originalAfter = original.display();
      if (mutateSomewhere(rng, snapshot)) {
        EXPECT_EQ(original.display(), originalAfter);
      }
    } else {
      EXPECT_EQ(original.display(), originalBefore);
    }
  }
  EXPECT_GT(mutatedRounds, 100);  // the property actually exercised
}

}  // namespace
}  // namespace psnap::blocks
