#include "blocks/registry.hpp"

#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "support/error.hpp"

namespace psnap::blocks {
namespace {

TEST(SpecParsing, Tokens) {
  bool variadic = false;
  auto slots = parseSpecSlots("map %repRing over %l", variadic);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].kind, SlotKind::ReporterRing);
  EXPECT_EQ(slots[1].kind, SlotKind::List);
  EXPECT_FALSE(variadic);
}

TEST(SpecParsing, OptionalSlot) {
  bool variadic = false;
  auto slots =
      parseSpecSlots("parallel map %repRing over %l workers: %n?", variadic);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_FALSE(slots[0].optional);
  EXPECT_TRUE(slots[2].optional);
}

TEST(SpecParsing, Variadic) {
  bool variadic = false;
  auto slots = parseSpecSlots("list %mult", variadic);
  EXPECT_TRUE(variadic);
  EXPECT_TRUE(slots.empty());
}

TEST(SpecParsing, UnknownTokenThrows) {
  bool variadic = false;
  EXPECT_THROW(parseSpecSlots("odd %zz", variadic), BlockError);
}

TEST(Registry, StandardHasCoreOpcodes) {
  const BlockRegistry& reg = BlockRegistry::standard();
  for (const char* opcode :
       {"reportSum", "reportMap", "doForever", "reportParallelMap",
        "doParallelForEach", "reportMapReduce", "reifyReporter",
        "reportMappedCode"}) {
    EXPECT_TRUE(reg.has(opcode)) << opcode;
  }
  EXPECT_FALSE(reg.has("noSuchBlock"));
  EXPECT_THROW(reg.get("noSuchBlock"), BlockError);
}

TEST(Registry, ParallelBlocksCategorized) {
  const BlockRegistry& reg = BlockRegistry::standard();
  EXPECT_EQ(reg.get("reportParallelMap").category, "parallelism");
  EXPECT_EQ(reg.get("reportParallelMap").type, BlockType::Reporter);
  EXPECT_FALSE(reg.get("reportParallelMap").pure);
  EXPECT_TRUE(reg.get("reportSum").pure);
}

TEST(Registry, ControlBlocksNonStrict) {
  const BlockRegistry& reg = BlockRegistry::standard();
  EXPECT_FALSE(reg.get("doForever").strict);
  EXPECT_FALSE(reg.get("doUntil").strict);
  EXPECT_TRUE(reg.get("doWait").strict);
}

TEST(Registry, DuplicateOpcodeThrows) {
  BlockRegistry reg;
  BlockSpec spec;
  spec.opcode = "x";
  spec.spec = "x";
  reg.add(spec);
  EXPECT_THROW(reg.add(spec), BlockError);
}

TEST(Validate, AcceptsWellFormed) {
  using namespace psnap::build;
  const BlockRegistry& reg = BlockRegistry::standard();
  auto block = parallelMap(ring(product(empty(), 10)), listOf({3, 7, 8}));
  EXPECT_NO_THROW(reg.validate(*block));
}

TEST(Validate, RejectsWrongArity) {
  const BlockRegistry& reg = BlockRegistry::standard();
  auto bad = Block::make("reportSum", {Input(Value(1))});
  EXPECT_THROW(reg.validate(*bad), BlockError);
}

TEST(Validate, RejectsCollapsedMandatorySlot) {
  const BlockRegistry& reg = BlockRegistry::standard();
  auto bad = Block::make("reportSum",
                         {Input(Value(1)), Input::collapsed()});
  EXPECT_THROW(reg.validate(*bad), BlockError);
}

TEST(Validate, AcceptsCollapsedOptionalSlot) {
  using namespace psnap::build;
  const BlockRegistry& reg = BlockRegistry::standard();
  auto ok = parallelMap(ring(product(empty(), 10)), listOf({1}), collapsed());
  EXPECT_NO_THROW(reg.validate(*ok));
}

TEST(Validate, RejectsScriptInValueSlot) {
  using namespace psnap::build;
  const BlockRegistry& reg = BlockRegistry::standard();
  auto bad = Block::make("reportSum",
                         {Input(Value(1)), Input(scriptOf({}))});
  EXPECT_THROW(reg.validate(*bad), BlockError);
}

TEST(Validate, RecursesIntoNestedBlocks) {
  const BlockRegistry& reg = BlockRegistry::standard();
  auto badInner = Block::make("reportSum", {Input(Value(1))});
  auto outer = Block::make(
      "reportProduct", {Input(badInner), Input(Value(2))});
  EXPECT_THROW(reg.validate(*outer), BlockError);
}

TEST(Render, SubstitutesInputs) {
  using namespace psnap::build;
  const BlockRegistry& reg = BlockRegistry::standard();
  auto block = sum(3, product(2, 5));
  EXPECT_EQ(reg.render(*block), "(3) + ((2) * (5))");
}

TEST(Render, EmptySlotShowsBlank) {
  using namespace psnap::build;
  const BlockRegistry& reg = BlockRegistry::standard();
  auto block = product(empty(), 10);
  EXPECT_EQ(reg.render(*block), "( ) * (10)");
}

TEST(Registry, OpcodesSorted) {
  auto ops = BlockRegistry::standard().opcodes();
  EXPECT_GT(ops.size(), 70u);
  EXPECT_TRUE(std::is_sorted(ops.begin(), ops.end()));
}

}  // namespace
}  // namespace psnap::blocks
