#include "blocks/builder.hpp"

#include <gtest/gtest.h>

namespace psnap::build {
namespace {

TEST(Builder, LiteralConversions) {
  auto block = sum(1, "2");
  ASSERT_EQ(block->arity(), 2u);
  EXPECT_EQ(block->input(0).literalValue().asNumber(), 1);
  EXPECT_EQ(block->input(1).literalValue().asText(), "2");
}

TEST(Builder, NestedBlocks) {
  auto block = sum(1, product(2, 3));
  EXPECT_TRUE(block->input(1).isBlock());
  EXPECT_EQ(block->input(1).block()->opcode(), "reportProduct");
}

TEST(Builder, ListOf) {
  auto block = listOf({3, 7, 8});
  EXPECT_EQ(block->opcode(), "reportNewList");
  EXPECT_EQ(block->arity(), 3u);
}

TEST(Builder, RingWrapsExpression) {
  auto r = ring(product(empty(), 10));
  EXPECT_EQ(r->opcode(), "reifyReporter");
  EXPECT_TRUE(r->input(0).isBlock());
  EXPECT_TRUE(r->input(0).block()->input(0).isEmpty());
}

TEST(Builder, RingWithFormals) {
  auto r = ring(sum(getVar("a"), getVar("b")), {"a", "b"});
  ASSERT_EQ(r->arity(), 3u);
  EXPECT_EQ(r->input(1).literalValue().asText(), "a");
  EXPECT_EQ(r->input(2).literalValue().asText(), "b");
}

TEST(Builder, ScriptComposition) {
  auto s = scriptOf({setVar("x", 1), changeVar("x", 2)});
  ASSERT_EQ(s->size(), 2u);
  EXPECT_EQ(s->at(0)->opcode(), "doSetVar");
}

TEST(Builder, ControlShapes) {
  auto body = scriptOf({say("hi")});
  auto loop = repeat(3, body);
  EXPECT_EQ(loop->opcode(), "doRepeat");
  EXPECT_TRUE(loop->input(1).isScript());
  auto branch = doIfElse(equals(1, 1), body, scriptOf({}));
  EXPECT_EQ(branch->arity(), 3u);
}

TEST(Builder, ParallelBlocks) {
  auto pm = parallelMap(ring(product(empty(), 10)), listOf({1, 2}), 4);
  EXPECT_EQ(pm->opcode(), "reportParallelMap");
  EXPECT_EQ(pm->input(2).literalValue().asNumber(), 4);

  auto pmDefault = parallelMap(ring(product(empty(), 10)), listOf({1}));
  EXPECT_TRUE(pmDefault->input(2).isCollapsed());

  auto pf = parallelForEach("cup", listOf({"a", "b"}), blank(),
                            scriptOf({say(getVar("cup"))}));
  EXPECT_EQ(pf->opcode(), "doParallelForEach");
  EXPECT_TRUE(pf->input(2).isLiteral());
  EXPECT_TRUE(pf->input(2).literalValue().isNothing());

  auto pfSeq = parallelForEach("cup", listOf({"a"}), collapsed(),
                               scriptOf({}));
  EXPECT_TRUE(pfSeq->input(2).isCollapsed());
}

TEST(Builder, MapReduceShape) {
  auto mr = mapReduce(identityRing(), identityRing(), listOf({1}));
  EXPECT_EQ(mr->opcode(), "reportMapReduce");
  EXPECT_EQ(mr->arity(), 3u);
}

TEST(Builder, DisplayIsReadable) {
  auto block = sum(3, 4);
  EXPECT_EQ(block->display(), "(reportSum 3 4)");
}

TEST(Builder, ValidatesAgainstStandardRegistry) {
  using blocks::BlockRegistry;
  auto script = scriptOf({
      declareVars({"result"}),
      setVar("result", mapOver(ring(product(empty(), 10)), listOf({3, 7, 8}))),
      say(getVar("result")),
  });
  EXPECT_NO_THROW(BlockRegistry::standard().validate(*script));
}

}  // namespace
}  // namespace psnap::build
