// Palette-wide structural sweep: for EVERY opcode in the standard
// registry, synthesize a well-formed instance from its slot spec, then
// check that validation accepts it, that both renderers produce text, and
// that it survives an XML round trip. Catches spec/serializer drift as
// the palette grows.
#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "blocks/registry.hpp"
#include "project/project.hpp"

namespace psnap::blocks {
namespace {

using namespace psnap::build;

/// Build a plausible input for one slot kind.
Input inputFor(SlotKind kind) {
  switch (kind) {
    case SlotKind::Number:
      return Input(Value(2));
    case SlotKind::Text:
      return Input(Value("t"));
    case SlotKind::Boolean:
      return Input(Value(true));
    case SlotKind::Any:
      return Input(Value(1));
    case SlotKind::List:
      return Input(listOf({1, 2}));
    case SlotKind::ReporterRing:
      return Input(ring(identity(empty())));
    case SlotKind::CommandRing:
      return Input(ringScript(scriptOf({})));
    case SlotKind::CScript:
      return Input(scriptOf({}));
    case SlotKind::Variable:
      return Input(Value("v"));
  }
  return Input(Value());
}

BlockPtr synthesize(const BlockSpec& spec) {
  // The reify blocks have a body-plus-formals layout the generic slot
  // walk does not capture.
  if (spec.opcode == "reifyReporter") return ring(identity(empty()));
  if (spec.opcode == "reifyScript") return ringScript(scriptOf({}));
  std::vector<Input> inputs;
  for (const SlotSpec& slot : spec.slots) {
    inputs.push_back(inputFor(slot.kind));
  }
  if (spec.variadic) {
    inputs.push_back(Input(Value(3)));
    inputs.push_back(Input(Value(4)));
  }
  return Block::make(spec.opcode, std::move(inputs));
}

std::vector<std::string> allOpcodes() {
  return BlockRegistry::standard().opcodes();
}

class EveryOpcode : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryOpcode, SynthesizedInstanceValidatesRendersAndRoundTrips) {
  const BlockRegistry& registry = BlockRegistry::standard();
  const BlockSpec& spec = registry.get(GetParam());
  BlockPtr instance = synthesize(spec);

  // 1. The instance is well-formed per its own spec.
  ASSERT_NO_THROW(registry.validate(*instance)) << spec.spec;

  // 2. Both renderers produce non-empty text.
  EXPECT_FALSE(instance->display().empty());
  EXPECT_FALSE(registry.render(*instance).empty());

  // 3. XML round trip preserves the structure exactly.
  auto script = Script::make({instance});
  auto parsed = project::scriptFromXml(project::scriptToXml(*script));
  EXPECT_EQ(parsed->display(), script->display());
}

INSTANTIATE_TEST_SUITE_P(
    Palette, EveryOpcode, ::testing::ValuesIn(allOpcodes()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

// Optional slots accept collapsed inputs everywhere they are declared.
class CollapsibleSlots : public ::testing::TestWithParam<std::string> {};

TEST_P(CollapsibleSlots, CollapsedFormAlsoValidates) {
  const BlockRegistry& registry = BlockRegistry::standard();
  const BlockSpec& spec = registry.get(GetParam());
  std::vector<Input> inputs;
  bool any = false;
  for (const SlotSpec& slot : spec.slots) {
    if (slot.optional) {
      inputs.push_back(Input::collapsed());
      any = true;
    } else {
      inputs.push_back(inputFor(slot.kind));
    }
  }
  if (!any) GTEST_SKIP() << "no optional slots";
  auto instance = Block::make(spec.opcode, std::move(inputs));
  EXPECT_NO_THROW(registry.validate(*instance));
}

INSTANTIATE_TEST_SUITE_P(
    Palette, CollapsibleSlots,
    ::testing::Values("reportParallelMap", "doParallelForEach"));

}  // namespace
}  // namespace psnap::blocks
