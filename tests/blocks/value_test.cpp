#include "blocks/value.hpp"

#include "blocks/block.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace psnap::blocks {
namespace {

TEST(Value, Kinds) {
  EXPECT_EQ(Value().kind(), ValueKind::Nothing);
  EXPECT_EQ(Value(1.5).kind(), ValueKind::Number);
  EXPECT_EQ(Value(true).kind(), ValueKind::Boolean);
  EXPECT_EQ(Value("hi").kind(), ValueKind::Text);
  EXPECT_EQ(Value(List::make()).kind(), ValueKind::ListRef);
}

TEST(Value, NumberCoercion) {
  EXPECT_EQ(Value(3.5).asNumber(), 3.5);
  EXPECT_EQ(Value("42").asNumber(), 42);
  EXPECT_EQ(Value(" -1.5 ").asNumber(), -1.5);
  EXPECT_EQ(Value(true).asNumber(), 1);
  EXPECT_EQ(Value(false).asNumber(), 0);
  EXPECT_EQ(Value("").asNumber(), 0);   // empty text is 0 in arithmetic
  EXPECT_EQ(Value().asNumber(), 0);
  EXPECT_THROW(Value("abc").asNumber(), TypeError);
  EXPECT_THROW(Value(List::make()).asNumber(), TypeError);
}

TEST(Value, IntegerCoercionRounds) {
  EXPECT_EQ(Value(2.6).asInteger(), 3);
  EXPECT_EQ(Value(-2.6).asInteger(), -3);
}

TEST(Value, TextCoercion) {
  EXPECT_EQ(Value(30.0).asText(), "30");
  EXPECT_EQ(Value(0.5).asText(), "0.5");
  EXPECT_EQ(Value(true).asText(), "true");
  EXPECT_EQ(Value().asText(), "");
  EXPECT_THROW(Value(List::make()).asText(), TypeError);
}

TEST(Value, BooleanCoercion) {
  EXPECT_TRUE(Value(true).asBoolean());
  EXPECT_TRUE(Value("TRUE").asBoolean());
  EXPECT_FALSE(Value("false").asBoolean());
  EXPECT_THROW(Value(1.0).asBoolean(), TypeError);
  EXPECT_THROW(Value("yes").asBoolean(), TypeError);
}

TEST(Value, SnapEqualsNumericText) {
  // Snap! compares numerically when both sides look numeric.
  EXPECT_TRUE(Value("30").equals(Value(30.0)));
  EXPECT_TRUE(Value("3.0").equals(Value(3.0)));
  EXPECT_FALSE(Value("30").equals(Value(31.0)));
}

TEST(Value, SnapEqualsCaseInsensitiveText) {
  EXPECT_TRUE(Value("Hello").equals(Value("hello")));
  EXPECT_FALSE(Value("hello").equals(Value("world")));
}

TEST(Value, EqualsMixedKinds) {
  EXPECT_FALSE(Value(true).equals(Value(1.0)));
  EXPECT_TRUE(Value().equals(Value()));
  EXPECT_FALSE(Value().equals(Value(0.0)));
}

TEST(Value, ListEqualityIsDeep) {
  auto a = List::make({Value(1), Value("two")});
  auto b = List::make({Value(1), Value("TWO")});
  EXPECT_TRUE(Value(a).equals(Value(b)));
  b->add(Value(3));
  EXPECT_FALSE(Value(a).equals(Value(b)));
}

TEST(List, OneIndexedAccess) {
  auto list = List::make({Value(10), Value(20), Value(30)});
  EXPECT_EQ(list->item(1).asNumber(), 10);
  EXPECT_EQ(list->item(3).asNumber(), 30);
  EXPECT_THROW(list->item(0), IndexError);
  EXPECT_THROW(list->item(4), IndexError);
}

TEST(List, InsertRemoveReplace) {
  auto list = List::make({Value(1), Value(3)});
  list->insertAt(2, Value(2));
  ASSERT_EQ(list->length(), 3u);
  EXPECT_EQ(list->item(2).asNumber(), 2);
  list->replaceAt(3, Value(99));
  EXPECT_EQ(list->item(3).asNumber(), 99);
  list->removeAt(1);
  EXPECT_EQ(list->item(1).asNumber(), 2);
  EXPECT_THROW(list->insertAt(5, Value(0)), IndexError);
  EXPECT_THROW(list->removeAt(3), IndexError);
}

TEST(List, ReferenceSemantics) {
  // Passing a list passes the object: mutation is visible to all holders.
  auto list = List::make({Value(1)});
  Value held(list);
  held.asList()->add(Value(2));
  EXPECT_EQ(list->length(), 2u);
}

TEST(List, ContainsUsesSnapEquality) {
  auto list = List::make({Value("Apple"), Value(7)});
  EXPECT_TRUE(list->contains(Value("apple")));
  EXPECT_TRUE(list->contains(Value("7")));
  EXPECT_FALSE(list->contains(Value(8)));
}

TEST(List, DeepCopyDetachesSublists) {
  auto inner = List::make({Value(1)});
  auto outer = List::make({Value(inner)});
  auto copy = outer->deepCopy();
  inner->add(Value(2));
  EXPECT_EQ(copy->item(1).asList()->length(), 1u);
}

TEST(List, Display) {
  auto list = List::make({Value(3), Value(7), Value(8)});
  EXPECT_EQ(list->display(), "[3, 7, 8]");
  auto nested = List::make({Value(list), Value("x")});
  EXPECT_EQ(nested->display(), "[[3, 7, 8], x]");
}

TEST(StructuredClone, CopiesDeeply) {
  auto inner = List::make({Value(1)});
  auto outer = List::make({Value(inner), Value("t")});
  Value clone = Value(outer).structuredClone();
  inner->add(Value(2));
  EXPECT_EQ(clone.asList()->item(1).asList()->length(), 1u);
}

TEST(StructuredClone, RejectsRings) {
  auto expr = Block::make("reportIdentity", {Input::empty()});
  auto ring = Ring::reporter(expr);
  EXPECT_FALSE(Value(ring).isTransferable());
  EXPECT_THROW(Value(ring).structuredClone(), PurityError);
  auto list = List::make({Value(ring)});
  EXPECT_FALSE(Value(list).isTransferable());
}

TEST(Ring, ConstructionRequiresBody) {
  EXPECT_THROW(Ring::reporter(nullptr), Error);
  EXPECT_THROW(Ring::command(nullptr), Error);
}

TEST(Ring, EqualityIsIdentity) {
  auto expr = Block::make("reportIdentity", {Input::empty()});
  auto r1 = Ring::reporter(expr);
  auto r2 = Ring::reporter(expr);
  EXPECT_TRUE(Value(r1).equals(Value(r1)));
  EXPECT_FALSE(Value(r1).equals(Value(r2)));
}

TEST(EmptySlots, OrdinalsArePreorder) {
  // (+ (_ ) (* (_) (_)))
  auto mul = Block::make("reportProduct", {Input::empty(), Input::empty()});
  auto add = Block::make("reportSum", {Input::empty(), Input(mul)});
  auto slots = collectEmptySlots(*add);
  ASSERT_EQ(slots.size(), 3u);
  auto ring = Ring::reporter(add);
  EXPECT_EQ(countEmptySlots(*ring), 3u);
  EXPECT_EQ(emptySlotOrdinal(*ring, slots[0]), 0u);
  EXPECT_EQ(emptySlotOrdinal(*ring, slots[2]), 2u);
  Input stray = Input::empty();
  EXPECT_THROW(emptySlotOrdinal(*ring, &stray), BlockError);
}

}  // namespace
}  // namespace psnap::blocks
