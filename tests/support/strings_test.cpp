#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace psnap::strings {
namespace {

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleField) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyInput) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWhitespace, DropsRuns) {
  auto parts = splitWhitespace("  the\tquick \n brown  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "the");
  EXPECT_EQ(parts[1], "quick");
  EXPECT_EQ(parts[2], "brown");
}

TEST(SplitWhitespace, EmptyAndBlank) {
  EXPECT_TRUE(splitWhitespace("").empty());
  EXPECT_TRUE(splitWhitespace(" \t\n").empty());
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(Trim, BothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(startsWith("#pragma omp", "#pragma"));
  EXPECT_FALSE(startsWith("omp", "#pragma"));
  EXPECT_TRUE(endsWith("main.c", ".c"));
  EXPECT_FALSE(endsWith("c", "main.c"));
}

TEST(ReplaceAll, Basic) {
  EXPECT_EQ(replaceAll("<#1> + <#1>", "<#1>", "x"), "x + x");
  EXPECT_EQ(replaceAll("abc", "z", "y"), "abc");
  EXPECT_EQ(replaceAll("", "a", "b"), "");
}

TEST(ReplaceAll, EmptyFromReturnsInput) {
  EXPECT_EQ(replaceAll("abc", "", "x"), "abc");
}

TEST(ToLower, Ascii) { EXPECT_EQ(toLower("MiXeD"), "mixed"); }

TEST(Indent, MultiLine) {
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");  // blank lines stay blank
}

TEST(FormatNumber, Integers) {
  EXPECT_EQ(formatNumber(0), "0");
  EXPECT_EQ(formatNumber(30), "30");
  EXPECT_EQ(formatNumber(-7), "-7");
  EXPECT_EQ(formatNumber(1e6), "1000000");
}

TEST(FormatNumber, Fractions) {
  EXPECT_EQ(formatNumber(0.5), "0.5");
  EXPECT_EQ(formatNumber(1.0 / 3.0), "0.3333333333333333");
}

TEST(FormatNumber, RoundTrips) {
  for (double v : {3.14159, -2.5e-7, 1234.5678, 0.1}) {
    double parsed = 0;
    ASSERT_TRUE(parseNumber(formatNumber(v), parsed));
    EXPECT_EQ(parsed, v);
  }
}

TEST(ParseNumber, Valid) {
  double out = 0;
  EXPECT_TRUE(parseNumber("42", out));
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(parseNumber(" -3.5 ", out));
  EXPECT_EQ(out, -3.5);
  EXPECT_TRUE(parseNumber("1e3", out));
  EXPECT_EQ(out, 1000);
}

TEST(ParseNumber, Invalid) {
  double out = 0;
  EXPECT_FALSE(parseNumber("", out));
  EXPECT_FALSE(parseNumber("abc", out));
  EXPECT_FALSE(parseNumber("1.2.3", out));
  EXPECT_FALSE(parseNumber("4 2", out));
}

}  // namespace
}  // namespace psnap::strings
