#include "support/rng.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace psnap {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
  }
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    sawLo |= (v == -2);
    sawHi |= (v == 2);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, BetweenBadRangeThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.between(3, 1), Error);
}

TEST(Rng, UniformRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanReasonable) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal(10, 2);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10, 0.1);
  EXPECT_NEAR(var, 4, 0.3);
}

TEST(Rng, WeightedRespectsZeroWeight) {
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    size_t pick = rng.weighted({0.0, 1.0, 0.0});
    EXPECT_EQ(pick, 1u);
  }
}

TEST(Rng, WeightedProportions) {
  Rng rng(23);
  int counts[2] = {0, 0};
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted({3.0, 1.0})];
  EXPECT_NEAR(double(counts[0]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedAllZeroThrows) {
  Rng rng(29);
  EXPECT_THROW(rng.weighted({0.0, 0.0}), Error);
}

}  // namespace
}  // namespace psnap
