// The fault model's two building blocks: deterministic seeded fault
// injection (support/fault.hpp) and cooperative cancel tokens
// (support/cancel.hpp), plus the ErrorClass taxonomy helpers the
// substrate uses to decide retry/degrade eligibility.
#include "support/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/cancel.hpp"
#include "support/error.hpp"

namespace psnap {
namespace {

/// Evaluate `point` `draws` times on this thread and record which
/// evaluations fired (threw).
std::vector<bool> firingPattern(fault::Point point, size_t draws) {
  std::vector<bool> fired;
  fired.reserve(draws);
  for (size_t i = 0; i < draws; ++i) {
    try {
      fault::inject(point);
      fired.push_back(false);
    } catch (const SubstrateError&) {
      fired.push_back(true);
    }
  }
  return fired;
}

fault::Config taskThrowConfig(uint64_t seed, uint32_t num, uint32_t den) {
  fault::Config config;
  config.seed = seed;
  config.rateNumerator = num;
  config.rateDenominator = den;
  config.pointMask = fault::maskOf(fault::Point::TaskThrow);
  return config;
}

TEST(Fault, DisarmedInjectIsInert) {
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(fault::inject(fault::Point::TaskThrow));
    EXPECT_NO_THROW(fault::inject(fault::Point::PoolSaturation));
  }
}

TEST(Fault, SameSeedSameFiringSequence) {
  const fault::Config config = taskThrowConfig(42, 1, 3);
  std::vector<bool> first;
  std::vector<bool> second;
  {
    fault::ScopedFault armed(config);
    first = firingPattern(fault::Point::TaskThrow, 64);
  }
  {
    fault::ScopedFault armed(config);
    second = firingPattern(fault::Point::TaskThrow, 64);
  }
  EXPECT_EQ(first, second);
  // The pattern is neither all-fire nor no-fire at rate 1/3 over 64 draws.
  const auto fires =
      size_t(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, first.size());
}

TEST(Fault, DifferentSeedsDifferentFiringSequence) {
  std::vector<bool> a;
  std::vector<bool> b;
  {
    fault::ScopedFault armed(taskThrowConfig(1, 1, 3));
    a = firingPattern(fault::Point::TaskThrow, 64);
  }
  {
    fault::ScopedFault armed(taskThrowConfig(2, 1, 3));
    b = firingPattern(fault::Point::TaskThrow, 64);
  }
  EXPECT_NE(a, b);
}

TEST(Fault, PointMaskGatesFiring) {
  // Only TaskThrow is armed; the other points are evaluated but never
  // fire.
  fault::ScopedFault armed(taskThrowConfig(7, 1, 1));
  for (int i = 0; i < 32; ++i) {
    EXPECT_NO_THROW(fault::inject(fault::Point::TransferFailure));
    EXPECT_NO_THROW(fault::inject(fault::Point::PoolSaturation));
  }
  EXPECT_EQ(fault::firedCount(fault::Point::TransferFailure), 0u);
  EXPECT_EQ(fault::firedCount(fault::Point::PoolSaturation), 0u);
  EXPECT_EQ(fault::evaluatedCount(fault::Point::TransferFailure), 32u);
}

TEST(Fault, RateOneAlwaysFiresWithNamedSequence) {
  fault::ScopedFault armed(taskThrowConfig(3, 1, 1));
  for (int i = 0; i < 8; ++i) {
    try {
      fault::inject(fault::Point::TaskThrow);
      FAIL() << "inject should have fired at rate 1/1";
    } catch (const SubstrateError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("injected fault: task-throw"), std::string::npos);
      EXPECT_NE(what.find("#" + std::to_string(i)), std::string::npos);
    }
  }
  EXPECT_EQ(fault::firedCount(fault::Point::TaskThrow), 8u);
  EXPECT_EQ(fault::evaluatedCount(fault::Point::TaskThrow), 8u);
}

TEST(Fault, WorkerStallSleepsInsteadOfThrowing) {
  fault::Config config;
  config.seed = 9;
  config.rateNumerator = 1;
  config.rateDenominator = 1;
  config.pointMask = fault::maskOf(fault::Point::WorkerStall);
  config.stallMicros = 1;  // keep the test fast
  fault::ScopedFault armed(config);
  EXPECT_NO_THROW(fault::inject(fault::Point::WorkerStall));
  EXPECT_EQ(fault::firedCount(fault::Point::WorkerStall), 1u);
}

TEST(Fault, ArmResetsCounters) {
  fault::arm(taskThrowConfig(5, 1, 1));
  firingPattern(fault::Point::TaskThrow, 4);
  EXPECT_EQ(fault::firedCount(fault::Point::TaskThrow), 4u);
  fault::arm(taskThrowConfig(5, 1, 1));
  EXPECT_EQ(fault::firedCount(fault::Point::TaskThrow), 0u);
  EXPECT_EQ(fault::evaluatedCount(fault::Point::TaskThrow), 0u);
  fault::disarm();
}

TEST(CancelToken, PlainTokenStartsLive) {
  auto token = CancelToken::create();
  EXPECT_FALSE(token->cancelled());
  EXPECT_EQ(token->reason(), ErrorClass::None);
  EXPECT_FALSE(token->hasDeadline());
  EXPECT_NO_THROW(token->checkpoint());
}

TEST(CancelToken, FirstCancelReasonWins) {
  auto token = CancelToken::create();
  token->cancel("first stop");
  token->cancel("second stop");
  EXPECT_TRUE(token->cancelled());
  EXPECT_EQ(token->reason(), ErrorClass::Cancelled);
  EXPECT_EQ(token->reasonMessage(), "first stop");
  try {
    token->checkpoint();
    FAIL() << "checkpoint should throw once cancelled";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("first stop"), std::string::npos);
  }
}

TEST(CancelToken, ExpiredDeadlineIsTimeout) {
  auto token = CancelToken::withDeadline(0);  // already expired
  EXPECT_TRUE(token->hasDeadline());
  EXPECT_TRUE(token->cancelled());
  EXPECT_EQ(token->reason(), ErrorClass::Timeout);
  EXPECT_LE(token->remainingSeconds(), 0.0);
  EXPECT_THROW(token->checkpoint(), TimeoutError);
}

TEST(CancelToken, FarDeadlineStaysLive) {
  auto token = CancelToken::withDeadline(3600);
  EXPECT_FALSE(token->cancelled());
  EXPECT_GT(token->remainingSeconds(), 0.0);
  EXPECT_NO_THROW(token->checkpoint());
}

TEST(CancelToken, ParentCancellationPropagates) {
  auto parent = CancelToken::create();
  auto child = CancelToken::create(parent);
  EXPECT_FALSE(child->cancelled());
  parent->cancel("script stopped");
  EXPECT_TRUE(child->cancelled());
  EXPECT_EQ(child->reason(), ErrorClass::Cancelled);
  EXPECT_EQ(child->reasonMessage(), "script stopped");
  EXPECT_THROW(child->checkpoint(), CancelledError);
}

TEST(CancelToken, OwnTripWinsOverParent) {
  auto parent = CancelToken::create();
  auto child = CancelToken::create(parent);
  child->cancel("child reason");
  parent->cancel("parent reason");
  EXPECT_EQ(child->reasonMessage(), "child reason");
  EXPECT_EQ(parent->reasonMessage(), "parent reason");
}

TEST(CancelToken, NoDeadlineMeansInfiniteRemaining) {
  auto token = CancelToken::create();
  EXPECT_GT(token->remainingSeconds(), 1e18);
}

TEST(ErrorTaxonomy, ClassifyRecoversTheClass) {
  auto classOf = [](auto&& thrower) {
    try {
      thrower();
    } catch (...) {
      return classifyError(std::current_exception());
    }
    return ErrorClass::None;
  };
  EXPECT_EQ(classOf([] { throw TypeError("x"); }), ErrorClass::Type);
  EXPECT_EQ(classOf([] { throw IndexError("x"); }), ErrorClass::Index);
  EXPECT_EQ(classOf([] { throw SubstrateError("x"); }),
            ErrorClass::Substrate);
  EXPECT_EQ(classOf([] { throw TimeoutError("x"); }), ErrorClass::Timeout);
  EXPECT_EQ(classOf([] { throw CancelledError("x"); }),
            ErrorClass::Cancelled);
  EXPECT_EQ(classOf([] { throw Error("x"); }), ErrorClass::Generic);
  EXPECT_EQ(classOf([] { throw std::runtime_error("x"); }),
            ErrorClass::Foreign);
  EXPECT_EQ(classifyError(nullptr), ErrorClass::None);
}

TEST(ErrorTaxonomy, OnlyPlainSubstrateRetries) {
  EXPECT_TRUE(isRetryableClass(ErrorClass::Substrate));
  EXPECT_FALSE(isRetryableClass(ErrorClass::Timeout));
  EXPECT_FALSE(isRetryableClass(ErrorClass::Cancelled));
  EXPECT_FALSE(isRetryableClass(ErrorClass::Type));
  EXPECT_TRUE(isSubstrateClass(ErrorClass::Substrate));
  EXPECT_TRUE(isSubstrateClass(ErrorClass::Timeout));
  EXPECT_TRUE(isSubstrateClass(ErrorClass::Cancelled));
  EXPECT_FALSE(isSubstrateClass(ErrorClass::Generic));
}

TEST(ErrorTaxonomy, StripAndRethrowRoundTrip) {
  EXPECT_EQ(stripClassPrefix(ErrorClass::Type, "type error: bad input"),
            "bad input");
  EXPECT_EQ(stripClassPrefix(ErrorClass::Timeout, "timeout: too slow"),
            "too slow");
  // Unprefixed messages pass through untouched.
  EXPECT_EQ(stripClassPrefix(ErrorClass::Type, "bad input"), "bad input");
  try {
    throwAsClass(ErrorClass::Timeout, "timeout: budget elapsed");
    FAIL() << "throwAsClass must throw";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(std::string(e.what()), "timeout: budget elapsed");
  }
  EXPECT_THROW(throwAsClass(ErrorClass::Type, "type error: x"), TypeError);
  EXPECT_THROW(throwAsClass(ErrorClass::Cancelled, "cancelled: x"),
               CancelledError);
}

}  // namespace
}  // namespace psnap
