// CancelToken regression suite, centred on the serving layer's isolation
// invariant: tokens form parent chains, and tripping one session's root
// cancels its own descendants but never a sibling session's tree.
#include <gtest/gtest.h>

#include "support/cancel.hpp"
#include "support/error.hpp"

namespace psnap {
namespace {

TEST(CancelToken, ParentTripReachesChildren) {
  CancelTokenPtr root = CancelToken::create();
  CancelTokenPtr child = CancelToken::create(root);
  CancelTokenPtr grandchild = CancelToken::create(child);
  EXPECT_FALSE(grandchild->cancelled());
  root->cancel("session shed");
  EXPECT_TRUE(child->cancelled());
  EXPECT_TRUE(grandchild->cancelled());
  EXPECT_EQ(grandchild->reason(), ErrorClass::Cancelled);
  EXPECT_EQ(grandchild->reasonMessage(), "session shed");
  EXPECT_THROW(grandchild->checkpoint(), CancelledError);
}

TEST(CancelToken, ChildTripNeverPropagatesUp) {
  CancelTokenPtr root = CancelToken::create();
  CancelTokenPtr child = CancelToken::create(root);
  child->cancel("one process stopped");
  EXPECT_TRUE(child->cancelled());
  EXPECT_FALSE(root->cancelled());
  EXPECT_EQ(root->reason(), ErrorClass::None);
}

TEST(CancelToken, SiblingSessionTreesAreIsolated) {
  // Two tenants, each a root with per-process children — the exact shape
  // the session server builds. Tripping tenant A's root must cancel all
  // of A's tree and none of B's.
  CancelTokenPtr rootA = CancelToken::create();
  CancelTokenPtr a1 = CancelToken::create(rootA);
  CancelTokenPtr a2 = CancelToken::create(rootA);
  CancelTokenPtr rootB = CancelToken::create();
  CancelTokenPtr b1 = CancelToken::create(rootB);
  CancelTokenPtr b2 = CancelToken::create(rootB);

  rootA->cancel("tenant A shed");
  EXPECT_TRUE(a1->cancelled());
  EXPECT_TRUE(a2->cancelled());
  EXPECT_THROW(a1->checkpoint(), CancelledError);

  EXPECT_FALSE(rootB->cancelled());
  EXPECT_FALSE(b1->cancelled());
  EXPECT_FALSE(b2->cancelled());
  EXPECT_NO_THROW(b1->checkpoint());
  EXPECT_NO_THROW(b2->checkpoint());
  // B's siblings also survive B1's own trip.
  b1->cancel("b1 only");
  EXPECT_FALSE(b2->cancelled());
  EXPECT_NO_THROW(b2->checkpoint());
}

TEST(CancelToken, TimeoutNowTripsWithTimeoutClass) {
  CancelTokenPtr root = CancelToken::create();
  CancelTokenPtr child = CancelToken::create(root);
  root->timeoutNow("session 7 exceeded its frame budget");
  EXPECT_TRUE(child->cancelled());
  EXPECT_EQ(child->reason(), ErrorClass::Timeout);
  try {
    child->checkpoint();
    FAIL() << "checkpoint must throw";
  } catch (const TimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("session 7"), std::string::npos);
  }
}

TEST(CancelToken, FirstTripWins) {
  CancelTokenPtr token = CancelToken::create();
  token->cancel("first");
  token->timeoutNow("second");
  token->cancel("third");
  EXPECT_EQ(token->reason(), ErrorClass::Cancelled);
  EXPECT_EQ(token->reasonMessage(), "first");
}

TEST(CancelToken, ExpiredDeadlineReadsAsTimeout) {
  CancelTokenPtr token = CancelToken::withDeadline(-1.0);
  EXPECT_TRUE(token->cancelled());
  EXPECT_EQ(token->reason(), ErrorClass::Timeout);
  EXPECT_THROW(token->checkpoint(), TimeoutError);
  EXPECT_LT(token->remainingSeconds(), 0.0);
}

TEST(CancelToken, DeadlineOnParentReachesChild) {
  CancelTokenPtr root = CancelToken::withDeadline(-1.0);
  CancelTokenPtr child = CancelToken::create(root);
  EXPECT_TRUE(child->cancelled());
  EXPECT_EQ(child->reason(), ErrorClass::Timeout);
}

}  // namespace
}  // namespace psnap
