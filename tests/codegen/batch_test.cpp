// The simulated batch queue: FCFS ordering, EASY backfill, resource
// accounting, payload execution, and status rendering.
#include "codegen/batch.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace psnap::codegen {
namespace {

JobRequest job(const std::string& name, int nodes, double seconds,
               std::function<std::string()> payload = nullptr) {
  JobRequest r;
  r.name = name;
  r.nodes = nodes;
  r.wallSeconds = seconds;
  r.payload = std::move(payload);
  return r;
}

TEST(BatchQueue, SingleJobLifecycle) {
  BatchQueue queue(4);
  uint64_t id = queue.submit(job("hello", 2, 10, [] {
    return std::string("output!");
  }));
  EXPECT_EQ(queue.status(id).state, JobState::Running);  // started at once
  EXPECT_EQ(queue.nodesInUse(), 2);
  queue.advance(5);
  EXPECT_EQ(queue.status(id).state, JobState::Running);
  queue.advance(5);
  EXPECT_EQ(queue.status(id).state, JobState::Completed);
  EXPECT_EQ(queue.status(id).output, "output!");
  EXPECT_TRUE(queue.idle());
}

TEST(BatchQueue, FcfsOrderingWhenFull) {
  BatchQueue queue(4);
  uint64_t a = queue.submit(job("a", 4, 10));
  uint64_t b = queue.submit(job("b", 4, 10));
  EXPECT_EQ(queue.status(a).state, JobState::Running);
  EXPECT_EQ(queue.status(b).state, JobState::Pending);
  queue.advance(10);
  EXPECT_EQ(queue.status(a).state, JobState::Completed);
  EXPECT_EQ(queue.status(b).state, JobState::Running);
  EXPECT_EQ(queue.status(b).startTime, 10);
}

TEST(BatchQueue, BackfillSmallJobJumpsAhead) {
  BatchQueue queue(4);
  queue.submit(job("big-running", 3, 100));   // leaves 1 free node
  uint64_t blocked = queue.submit(job("blocked", 4, 10));
  // A 1-node job finishing before the reservation (t=100) backfills.
  uint64_t small = queue.submit(job("small", 1, 50));
  EXPECT_EQ(queue.status(blocked).state, JobState::Pending);
  EXPECT_EQ(queue.status(small).state, JobState::Running);
  EXPECT_EQ(queue.nodesInUse(), 4);
}

TEST(BatchQueue, BackfillNeverDelaysQueueHead) {
  BatchQueue queue(4);
  queue.submit(job("big-running", 3, 100));
  uint64_t blocked = queue.submit(job("blocked", 4, 10));
  // This 1-node job would run past t=100 and delay the head: must wait.
  uint64_t tooLong = queue.submit(job("too-long", 1, 200));
  EXPECT_EQ(queue.status(tooLong).state, JobState::Pending);
  queue.drain();
  // Head ran before the long backfill candidate.
  EXPECT_LT(queue.status(blocked).startTime,
            queue.status(tooLong).startTime);
}

TEST(BatchQueue, DrainRunsEverything) {
  BatchQueue queue(2);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(queue.submit(job("j" + std::to_string(i), 1, 10)));
  }
  double elapsed = queue.drain();
  EXPECT_EQ(elapsed, 30);  // 6 × 10s jobs on 2 nodes
  for (uint64_t id : ids) {
    EXPECT_EQ(queue.status(id).state, JobState::Completed);
  }
}

TEST(BatchQueue, PayloadRunsExactlyOnceAtStart) {
  BatchQueue queue(1);
  int runs = 0;
  queue.submit(job("first", 1, 10));
  uint64_t second = queue.submit(job("second", 1, 10, [&runs] {
    ++runs;
    return std::string("done");
  }));
  EXPECT_EQ(runs, 0);  // queued, not started
  queue.advance(10);
  EXPECT_EQ(runs, 1);
  queue.drain();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(queue.status(second).output, "done");
}

TEST(BatchQueue, StrictFcfsModeNeverBackfills) {
  BatchQueue queue(4, /*enableBackfill=*/false);
  queue.submit(job("big-running", 3, 100));
  uint64_t blocked = queue.submit(job("blocked", 4, 10));
  uint64_t small = queue.submit(job("small", 1, 5));
  // With backfill disabled, even a trivially-fitting job waits its turn.
  EXPECT_EQ(queue.status(small).state, JobState::Pending);
  queue.drain();
  EXPECT_GE(queue.status(small).startTime,
            queue.status(blocked).startTime);
}

TEST(BatchQueue, BackfillImprovesMeanWaitOnMixedTrace) {
  auto meanWait = [](bool backfill) {
    BatchQueue queue(4, backfill);
    std::vector<uint64_t> ids;
    ids.push_back(queue.submit(job("wide1", 3, 40)));  // leaves 1 node free
    ids.push_back(queue.submit(job("wide2", 4, 40)));
    for (int i = 0; i < 4; ++i) {
      ids.push_back(queue.submit(job("narrow" + std::to_string(i), 1, 10)));
    }
    queue.drain();
    double total = 0;
    for (uint64_t id : ids) {
      total += queue.status(id).startTime - queue.status(id).submitTime;
    }
    return total / double(ids.size());
  };
  EXPECT_LT(meanWait(true), meanWait(false));
}

TEST(BatchQueue, RejectsImpossibleJobs) {
  BatchQueue queue(2);
  EXPECT_THROW(queue.submit(job("huge", 3, 10)), Error);
  EXPECT_THROW(queue.submit(job("zero", 0, 10)), Error);
  EXPECT_THROW(queue.submit(job("notime", 1, 0)), Error);
  EXPECT_THROW(BatchQueue(0), Error);
}

TEST(BatchQueue, StatusForUnknownIdThrows) {
  BatchQueue queue(1);
  EXPECT_THROW(queue.status(99), Error);
}

TEST(BatchQueue, RenderListsJobs) {
  BatchQueue queue(2);
  queue.submit(job("alpha", 2, 5));
  queue.submit(job("beta", 1, 5));
  std::string listing = queue.render();
  EXPECT_NE(listing.find("alpha"), std::string::npos);
  EXPECT_NE(listing.find("RUNNING"), std::string::npos);
  EXPECT_NE(listing.find("PENDING"), std::string::npos);
}

TEST(BatchQueue, UtilizationAccounting) {
  BatchQueue queue(8);
  queue.submit(job("a", 3, 10));
  queue.submit(job("b", 4, 20));
  EXPECT_EQ(queue.nodesInUse(), 7);
  queue.advance(10);
  EXPECT_EQ(queue.nodesInUse(), 4);
  queue.advance(10);
  EXPECT_EQ(queue.nodesInUse(), 0);
}

TEST(BatchQueue, AdvanceStopsAtIntermediateEvents) {
  // Completion at t=10 frees nodes so the pending job starts at 10, not
  // at the end of the advance window.
  BatchQueue queue(1);
  queue.submit(job("a", 1, 10));
  uint64_t b = queue.submit(job("b", 1, 10));
  queue.advance(100);
  EXPECT_EQ(queue.status(b).startTime, 10);
  EXPECT_EQ(queue.status(b).endTime, 20);
}

}  // namespace
}  // namespace psnap::codegen
