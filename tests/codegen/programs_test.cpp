// Program emitters + toolchain: the paper's Listings 3–7 compiled with a
// real gcc and executed, with outputs checked against the interpreter.
#include "codegen/programs.hpp"

#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "codegen/toolchain.hpp"
#include "core/parallel_blocks.hpp"
#include "sched/thread_manager.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::codegen {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::RingPtr;
using blocks::Value;

RingPtr evalRing(blocks::BlockPtr reify) {
  static vm::PrimitiveTable prims = vm::PrimitiveTable::standard();
  static vm::NullHost host;
  vm::Process p(&BlockRegistry::standard(), &prims, &host);
  p.startExpression(std::move(reify), Environment::make());
  return p.runToCompletion().asRing();
}

TEST(Programs, HelloListingsShape) {
  auto seq = helloSequentialC();
  EXPECT_NE(seq["main.c"].find("int ID = 0;"), std::string::npos);
  EXPECT_EQ(seq["main.c"].find("#pragma"), std::string::npos);
  auto omp = helloOpenMP();
  EXPECT_NE(omp["main.c"].find("#pragma omp parallel"), std::string::npos);
  EXPECT_NE(omp["main.c"].find("omp_get_thread_num()"), std::string::npos);
}

TEST(Programs, HelloSequentialRuns) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  Toolchain tc;
  auto result = tc.compileAndRun(helloSequentialC(), "hello", false);
  EXPECT_NE(result.output.find("hello(0)"), std::string::npos);
  EXPECT_NE(result.output.find("world(0)"), std::string::npos);
}

TEST(Programs, HelloOpenMPRunsWithThreads) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  Toolchain tc;
  auto result = tc.compileAndRun(helloOpenMP(), "hello_omp", true, "",
                                 "OMP_NUM_THREADS=4");
  // Four threads each print their id.
  for (const char* id : {"hello(0)", "hello(1)", "hello(2)", "hello(3)"}) {
    EXPECT_NE(result.output.find(id), std::string::npos) << id;
  }
}

TEST(Programs, MapProgramCListingFiveShape) {
  auto sources = mapProgramC({3, 7, 8}, 10);
  const std::string& code = sources.at("main.c");
  EXPECT_NE(code.find("typedef struct node"), std::string::npos);
  EXPECT_NE(code.find("void append(int d, node_t *p)"), std::string::npos);
  EXPECT_NE(code.find("int a[] = {3, 7, 8};"), std::string::npos);
  EXPECT_NE(code.find("len = (sizeof(a)/sizeof(a[0]));"), std::string::npos);
  EXPECT_NE(code.find("for (i = 1; i <= len; i++)"), std::string::npos);
  EXPECT_NE(code.find("append((a[i - 1] * 10), b);"), std::string::npos);
}

TEST(Programs, MapProgramCMatchesInterpreter) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  Toolchain tc;
  auto result = tc.compileAndRun(mapProgramC({3, 7, 8}, 10), "map_c", false);
  EXPECT_EQ(result.output, "30\n70\n80\n");

  // The interpreter's sequential map (Fig. 4) reports the same values.
  auto prims = core::fullPrimitiveTable();
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
  Value v = tm.evaluate(mapOver(ring(product(empty(), 10)),
                                listOf({3, 7, 8})),
                        Environment::make());
  EXPECT_EQ(v.asList()->display(), "[30, 70, 80]");
}

TEST(Programs, MapProgramOpenMPMatchesSequential) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  Toolchain tc;
  auto sources = mapProgramOpenMP({3, 7, 8}, 10);
  EXPECT_NE(sources["main.c"].find("#pragma omp parallel for"),
            std::string::npos);
  auto result = tc.compileAndRun(sources, "map_omp", true, "",
                                 "OMP_NUM_THREADS=4");
  EXPECT_EQ(result.output, "30\n70\n80\n");
}

TEST(Programs, MapProgramDoubleValues) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  Toolchain tc;
  auto result =
      tc.compileAndRun(mapProgramC({1.5, 2.5}, 2), "map_d", false);
  EXPECT_EQ(result.output, "3\n5\n");
}

TEST(Programs, KvpHeaderShape) {
  std::string header = kvpHeader();
  EXPECT_NE(header.find("#define MAXKEY"), std::string::npos);
  EXPECT_NE(header.find("typedef struct KVP"), std::string::npos);
  EXPECT_NE(header.find("float val;"), std::string::npos);
}

TEST(Programs, MapReduceOpenMPListingShape) {
  // The climate mapper/reducer of paper Figs. 19–20.
  auto mapRing = evalRing(
      ring(quotient(product(5, difference(empty(), 32)), 9)));
  auto reduceRing = evalRing(
      ring(quotient(combineUsing(empty(), ring(sum(empty(), empty()))),
                    lengthOf(empty()))));
  auto sources = mapReduceOpenMP(mapRing, reduceRing);
  ASSERT_TRUE(sources.count("kvp.h"));
  ASSERT_TRUE(sources.count("mapreduce.c"));
  ASSERT_TRUE(sources.count("main.c"));
  const std::string& fns = sources.at("mapreduce.c");
  // Listing 6's generated conversion expression, exactly.
  EXPECT_NE(fns.find("out->val = ((5 * (in->val - 32)) / 9);"),
            std::string::npos);
  EXPECT_NE(fns.find("strncpy (out->key, in->key, MAXKEY);"),
            std::string::npos);
  const std::string& driver = sources.at("main.c");
  EXPECT_NE(driver.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(driver.find("qsort(midlist"), std::string::npos);
}

TEST(Programs, MapReduceOpenMPRunsClimateAverage) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  auto mapRing = evalRing(
      ring(quotient(product(5, difference(empty(), 32)), 9)));
  auto reduceRing = evalRing(
      ring(quotient(combineUsing(empty(), ring(sum(empty(), empty()))),
                    lengthOf(empty()))));
  Toolchain tc;
  // Three readings for one station: 32F, 212F, 50F → 0, 100, 10 C → 36.67.
  auto result = tc.compileAndRun(mapReduceOpenMP(mapRing, reduceRing),
                                 "climate", true,
                                 "usw0001 32\nusw0001 212\nusw0001 50\n",
                                 "OMP_NUM_THREADS=4");
  EXPECT_NE(result.output.find("usw0001 36.6667"), std::string::npos)
      << result.output;
}

TEST(Programs, MapReduceOpenMPWordCount) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  // Word count: mapper is the constant 1, reducer counts values.
  auto mapRing = evalRing(ring(In(1.0)));
  auto reduceRing = evalRing(ring(lengthOf(empty())));
  Toolchain tc;
  auto result = tc.compileAndRun(mapReduceOpenMP(mapRing, reduceRing),
                                 "wordcount", true,
                                 "the 0\nquick 0\nthe 0\nfox 0\nthe 0\n",
                                 "OMP_NUM_THREADS=2");
  EXPECT_EQ(result.output, "fox 1\nquick 1\nthe 3\n");
}

TEST(Programs, MapReduceExplicitKeyMapper) {
  auto mapRing = evalRing(ring(listOf(
      {In("avgC"), In(quotient(product(5, difference(empty(), 32)), 9))})));
  auto reduceRing = evalRing(ring(lengthOf(empty())));
  auto sources = mapReduceOpenMP(mapRing, reduceRing);
  EXPECT_NE(sources.at("mapreduce.c").find(
                "strncpy (out->key, \"avgC\", MAXKEY);"),
            std::string::npos);
}

TEST(Programs, UnsupportedReducerThrows) {
  auto mapRing = evalRing(ring(empty()));
  auto reduceRing = evalRing(ring(splitText(empty(), "x")));
  EXPECT_THROW(mapReduceOpenMP(mapRing, reduceRing), CodegenError);
}

TEST(Programs, MakefileListsSources) {
  auto sources = mapReduceOpenMP(
      evalRing(ring(empty())),
      evalRing(ring(lengthOf(empty()))));
  std::string makefile = makefileFor(sources, true, "mr");
  EXPECT_NE(makefile.find("-fopenmp"), std::string::npos);
  EXPECT_NE(makefile.find("main.c"), std::string::npos);
  EXPECT_NE(makefile.find("mapreduce.c"), std::string::npos);
  EXPECT_EQ(makefile.find("kvp.h "), std::string::npos);  // headers excluded
}

TEST(Programs, SlurmScriptOutline) {
  std::string script = slurmScriptFor("climate", 2, 8, "psnap-climate");
  EXPECT_NE(script.find("#SBATCH --nodes=2"), std::string::npos);
  EXPECT_NE(script.find("#SBATCH --ntasks-per-node=8"), std::string::npos);
  EXPECT_NE(script.find("OMP_NUM_THREADS=8"), std::string::npos);
  EXPECT_NE(script.find("srun ./climate"), std::string::npos);
}

TEST(Toolchain, CompileErrorSurfacesDiagnostics) {
  if (!Toolchain::compilerAvailable()) GTEST_SKIP() << "no gcc";
  Toolchain tc;
  SourceSet bad;
  bad["main.c"] = "int main() { this is not C; }\n";
  EXPECT_THROW(tc.compile(bad, "bad", false), CodegenError);
}

}  // namespace
}  // namespace psnap::codegen
