// Translator tests: recursive placeholder substitution across all four
// target languages, slot-kind awareness, and the dynamic→static type
// inference.
#include "codegen/translator.hpp"

#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "support/error.hpp"

namespace psnap::codegen {
namespace {

using namespace psnap::build;

TEST(Mapping, ByNameLookup) {
  EXPECT_EQ(CodeMapping::byName("C").language, "C");
  EXPECT_EQ(CodeMapping::byName("openmp c").language, "OpenMP C");
  EXPECT_EQ(CodeMapping::byName("JavaScript").language, "JavaScript");
  EXPECT_EQ(CodeMapping::byName("python").language, "Python");
  EXPECT_THROW(CodeMapping::byName("COBOL"), CodegenError);
}

TEST(Mapping, LiteralFormatting) {
  const CodeMapping& c = CodeMapping::c();
  EXPECT_EQ(c.formatLiteral(blocks::Value(30.0)), "30");
  EXPECT_EQ(c.formatLiteral(blocks::Value(true)), "1");
  EXPECT_EQ(c.formatLiteral(blocks::Value("hi")), "\"hi\"");
  EXPECT_EQ(c.formatLiteral(blocks::Value("a\"b")), "\"a\\\"b\"");
  const CodeMapping& py = CodeMapping::python();
  EXPECT_EQ(py.formatLiteral(blocks::Value(true)), "True");
  EXPECT_EQ(py.formatLiteral(blocks::Value()), "None");
  auto list = blocks::List::make({blocks::Value(1), blocks::Value(2)});
  EXPECT_EQ(c.formatLiteral(blocks::Value(list)), "{1, 2}");
  EXPECT_EQ(py.formatLiteral(blocks::Value(list)), "[1, 2]");
}

TEST(Mapping, UserTemplateRegistration) {
  CodeMapping m = CodeMapping::c();
  m.setTemplate("myBlock", "custom(<#1>)");
  EXPECT_TRUE(m.hasTemplate("myBlock"));
  EXPECT_EQ(m.getTemplate("myBlock"), "custom(<#1>)");
}

TEST(Translator, ArithmeticExpressionC) {
  Translator t(CodeMapping::c());
  // (3 + 7) * 10 — nested substitution.
  EXPECT_EQ(t.mappedCode(*product(sum(3, 7), 10)), "((3 + 7) * 10)");
}

TEST(Translator, FahrenheitToCelsiusMatchesListingSix) {
  // The paper's Listing 6 expression: ((5 * (in->val - 32)) / 9).
  CodeMapping m = CodeMapping::c();
  m.emptySlotName = "in->val";
  Translator t(m);
  EXPECT_EQ(t.mappedCode(*quotient(product(5, difference(empty(), 32)), 9)),
            "((5 * (in->val - 32)) / 9)");
}

TEST(Translator, VariableSlotsRenderBareNames) {
  Translator t(CodeMapping::c());
  EXPECT_EQ(t.mappedCode(*setVar("total", sum(getVar("total"), 1))),
            "total = (total + 1);");
}

TEST(Translator, VariadicSplice) {
  Translator t(CodeMapping::javascript());
  EXPECT_EQ(t.mappedCode(*listOf({3, 7, 8})), "[3, 7, 8]");
  Translator c(CodeMapping::c());
  EXPECT_EQ(c.mappedCode(*listOf({3, 7, 8})), "{3, 7, 8}");
}

TEST(Translator, ControlBlocksIndentBodies) {
  Translator t(CodeMapping::c());
  std::string code = t.mappedCode(
      *repeat(3, scriptOf({setVar("n", sum(getVar("n"), 1))})));
  EXPECT_EQ(code, "for (i = 1; i <= 3; i++) {\n    n = (n + 1);\n}");
}

TEST(Translator, PythonUsesIndentation) {
  Translator t(CodeMapping::python());
  std::string code = t.mappedCode(
      *repeat(getVar("count"), scriptOf({say(getVar("x"))})));
  EXPECT_EQ(code, "for __i in range(int(count)):\n    print(x)");
}

TEST(Translator, RingTranslatesToItsBodyInC) {
  Translator t(CodeMapping::c());
  EXPECT_EQ(t.mappedCode(*ring(product(empty(), 10))), "(x * 10)");
}

TEST(Translator, RingTranslatesToLambdaInJsAndPython) {
  Translator js(CodeMapping::javascript());
  EXPECT_EQ(js.mappedCode(*ring(product(empty(), 10))),
            "function (x) { return (x * 10); }");
  Translator py(CodeMapping::python());
  EXPECT_EQ(py.mappedCode(*ring(product(empty(), 10))),
            "lambda x: (x * 10)");
}

TEST(Translator, ParallelMapMapsToParallelJsInJavaScript) {
  Translator js(CodeMapping::javascript());
  std::string code = js.mappedCode(
      *parallelMap(ring(product(empty(), 10)), getVar("data"), 2));
  EXPECT_EQ(code,
            "new Parallel(data, {maxWorkers: 2})"
            ".map(function (x) { return (x * 10); }).data");
}

TEST(Translator, ParallelForEachBecomesOpenMPPragma) {
  Translator omp(CodeMapping::openmpC());
  std::string code = omp.mappedCode(*parallelForEach(
      "item", getVar("data"), blank(), scriptOf({say(getVar("item"))})));
  EXPECT_NE(code.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(code.find("double item = data[__k];"), std::string::npos);
  // The sequential C mapping emits the same loop without the pragma.
  Translator c(CodeMapping::c());
  std::string seq = c.mappedCode(*parallelForEach(
      "item", getVar("data"), blank(), scriptOf({say(getVar("item"))})));
  EXPECT_EQ(seq.find("#pragma"), std::string::npos);
}

TEST(Translator, ScriptJoinsStatements) {
  Translator t(CodeMapping::c());
  auto script = scriptOf({setVar("a", 1), setVar("b", 2)});
  EXPECT_EQ(t.mappedCode(*script), "a = 1;\nb = 2;");
}

TEST(Translator, MissingTemplateThrows) {
  Translator t(CodeMapping::c());
  EXPECT_THROW(t.mappedCode(*blk("reportMapReduce",
                                 {In(identityRing()), In(identityRing()),
                                  In(listOf({}))})),
               CodegenError);
}

TEST(Translator, UnknownPlaceholderIndexThrows) {
  CodeMapping m = CodeMapping::c();
  m.setTemplate("reportRound", "round(<#7>)");
  Translator t(m);
  EXPECT_THROW(t.mappedCode(*round_(1)), CodegenError);
}

TEST(TypeInference, Expressions) {
  EXPECT_EQ(inferType(*sum(1, 2)), CType::Double);
  EXPECT_EQ(inferType(*equals(1, 2)), CType::Bool);
  EXPECT_EQ(inferType(*join({In("a"), In("b")})), CType::Text);
  EXPECT_EQ(inferType(*listOf({1, 2})), CType::DoubleArray);
  EXPECT_EQ(inferType(*lengthOf(getVar("a"))), CType::Int);
  EXPECT_EQ(inferType(*round_(2.5)), CType::Int);
}

TEST(TypeInference, MixedTypeArithmeticPropagatesUnknown) {
  // A non-numeric operand defeats static typing: the interpreter coerces
  // at runtime, so arithmetic must degrade to Unknown rather than claim
  // Double — the native emitter keys its subset check off this.
  EXPECT_EQ(inferType(*sum(join({In("1"), In("2")}), 3)), CType::Unknown);
  EXPECT_EQ(inferType(*product(listOf({1, 2}), 2)), CType::Unknown);
  EXPECT_EQ(inferType(*quotient(1, join({In("4"), In("2")}))),
            CType::Unknown);
  EXPECT_EQ(inferType(*modulus("seven", 2)), CType::Unknown);
  EXPECT_EQ(inferType(*power(2, "ten")), CType::Unknown);
  // Unknown is sticky through nesting.
  EXPECT_EQ(inferType(*sum(1, sum(join({In("1"), In("2")}), 1))),
            CType::Unknown);
  // Monadic functions type their argument, not just themselves.
  EXPECT_EQ(inferType(*monadic("sqrt", "nine")), CType::Unknown);
  EXPECT_EQ(inferType(*monadic("sqrt", 9)), CType::Double);
}

TEST(TypeInference, NumericMixesStayDouble) {
  // Int, Bool, and empty-slot (ring parameter) operands are all numeric
  // by coercion; mixing them never degrades the result type.
  EXPECT_EQ(inferType(*sum(round_(2.5), 1.5)), CType::Double);
  EXPECT_EQ(inferType(*product(equals(1, 1), 4)), CType::Double);
  EXPECT_EQ(inferType(*sum(empty(), 1)), CType::Double);
  EXPECT_EQ(inferType(*quotient(empty(), empty())), CType::Double);
}

TEST(TypeInference, LiteralInputs) {
  EXPECT_EQ(inferInputType(blocks::Input(blocks::Value(3.0))), CType::Int);
  EXPECT_EQ(inferInputType(blocks::Input(blocks::Value(3.5))),
            CType::Double);
  EXPECT_EQ(inferInputType(blocks::Input(blocks::Value("t"))), CType::Text);
  EXPECT_EQ(inferInputType(blocks::Input(blocks::Value(false))),
            CType::Bool);
}

TEST(TypeInference, DeclarationsUseFirstAssignment) {
  Translator t(CodeMapping::c());
  auto script = scriptOf({
      declareVars({"len", "name", "flag"}),
      setVar("len", lengthOf(getVar("a"))),
      setVar("name", "Snap!"),
      setVar("flag", equals(1, 1)),
  });
  std::string decls = t.declarationsFor(*script);
  EXPECT_NE(decls.find("int len;"), std::string::npos);
  EXPECT_NE(decls.find("const char * name;"), std::string::npos);
  EXPECT_NE(decls.find("int flag;"), std::string::npos);
}

}  // namespace
}  // namespace psnap::codegen
