// The `map to language` and `code of` blocks driven through the VM —
// the Fig. 16 workflow where the code mapping is part of the script.
#include "codegen/blocks.hpp"

#include <gtest/gtest.h>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "sched/thread_manager.hpp"
#include "support/error.hpp"

namespace psnap::codegen {
namespace {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Environment;
using blocks::Value;

class CodegenBlocksTest : public ::testing::Test {
 protected:
  CodegenBlocksTest() : prims_(core::fullPrimitiveTable()) {
    registerCodegenPrimitives(prims_);
  }

  std::string codeFor(const std::string& language, blocks::BlockPtr ringB) {
    sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
    auto env = Environment::make();
    env->declare("out", Value());
    auto handle = tm.spawnScript(
        scriptOf({mapToLanguage(language),
                  setVar("out", codeOf(std::move(ringB)))}),
        env);
    tm.runUntilIdle();
    if (handle.status->errored) throw Error(handle.status->error);
    return env->get("out").asText();
  }

  vm::PrimitiveTable prims_;
};

TEST_F(CodegenBlocksTest, MapToCAndCodeOf) {
  EXPECT_EQ(codeFor("C", ring(product(empty(), 10))), "(x * 10)");
}

TEST_F(CodegenBlocksTest, SwitchingLanguageChangesOutput) {
  // "if the user wishes to switch from C to JavaScript, the 'map to C'
  // block is changed to a 'map to JavaScript' block".
  EXPECT_EQ(codeFor("JavaScript", ring(product(empty(), 10))),
            "function (x) { return (x * 10); }");
  EXPECT_EQ(codeFor("Python", ring(product(empty(), 10))),
            "lambda x: (x * 10)");
}

TEST_F(CodegenBlocksTest, CommandRingTranslation) {
  auto body = scriptOf({setVar("n", sum(getVar("n"), 1))});
  EXPECT_EQ(codeFor("C", ringScript(body)), "n = (n + 1);");
}

TEST_F(CodegenBlocksTest, DefaultLanguageIsC) {
  // Without a `map to language` block the process defaults to C.
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  Value v = tm.evaluate(codeOf(ring(sum(empty(), 1))),
                        Environment::make());
  EXPECT_EQ(v.asText(), "(x + 1)");
}

TEST_F(CodegenBlocksTest, UnknownLanguageErrorsAtMapBlock) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  auto handle = tm.spawnScript(scriptOf({mapToLanguage("COBOL")}),
                               Environment::make());
  tm.runUntilIdle();
  EXPECT_TRUE(handle.status->errored);
}

TEST_F(CodegenBlocksTest, CodeOfNonRingErrors) {
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims_);
  EXPECT_THROW(tm.evaluate(codeOf(In(5)), Environment::make()), Error);
}

}  // namespace
}  // namespace psnap::codegen
