# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_blocks[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_workers[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_mapreduce[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_stage[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_survey[1]_include.cmake")
include("/root/repo/build/tests/test_project[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
