file(REMOVE_RECURSE
  "CMakeFiles/test_vm.dir/vm/control_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/control_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/custom_blocks_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/custom_blocks_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/eval_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/eval_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/for_loop_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/for_loop_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/process_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/process_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/ring_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/ring_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/warp_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/warp_test.cpp.o.d"
  "test_vm"
  "test_vm.pdb"
  "test_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
