file(REMOVE_RECURSE
  "CMakeFiles/test_stage.dir/stage/concession_test.cpp.o"
  "CMakeFiles/test_stage.dir/stage/concession_test.cpp.o.d"
  "CMakeFiles/test_stage.dir/stage/sensing_test.cpp.o"
  "CMakeFiles/test_stage.dir/stage/sensing_test.cpp.o.d"
  "CMakeFiles/test_stage.dir/stage/stage_test.cpp.o"
  "CMakeFiles/test_stage.dir/stage/stage_test.cpp.o.d"
  "test_stage"
  "test_stage.pdb"
  "test_stage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
