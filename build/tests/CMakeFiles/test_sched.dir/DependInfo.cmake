
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/thread_manager_test.cpp" "tests/CMakeFiles/test_sched.dir/sched/thread_manager_test.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/thread_manager_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/psnap_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/project/CMakeFiles/psnap_project.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/psnap_data.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/psnap_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/scenarios/CMakeFiles/psnap_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/CMakeFiles/psnap_stage.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/psnap_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/psnap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/psnap_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/psnap_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/workers/CMakeFiles/psnap_workers.dir/DependInfo.cmake"
  "/root/repo/build/src/blocks/CMakeFiles/psnap_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psnap_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
