file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/properties/codegen_equivalence_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/codegen_equivalence_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/concession_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/concession_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/mapreduce_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/mapreduce_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/opcode_parity_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/opcode_parity_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/parallel_equivalence_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/parallel_equivalence_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/xml_roundtrip_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/xml_roundtrip_test.cpp.o.d"
  "test_properties"
  "test_properties.pdb"
  "test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
