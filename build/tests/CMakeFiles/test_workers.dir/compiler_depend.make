# Empty compiler generated dependencies file for test_workers.
# This may be replaced when dependencies are built.
