# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_concession "/root/repo/build/examples/concession_stand")
set_tests_properties(example_concession PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_word_count "/root/repo/build/examples/word_count" "500")
set_tests_properties(example_word_count PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_climate "/root/repo/build/examples/climate_pipeline")
set_tests_properties(example_climate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_codegen_tour "/root/repo/build/examples/codegen_tour")
set_tests_properties(example_codegen_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_project_roundtrip "/root/repo/build/examples/project_roundtrip")
set_tests_properties(example_project_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dragon "/root/repo/build/examples/dragon")
set_tests_properties(example_dragon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_water_balloons "/root/repo/build/examples/water_balloons")
set_tests_properties(example_water_balloons PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_workflow "/root/repo/build/examples/cluster_workflow")
set_tests_properties(example_cluster_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_psnap_run_demo "/root/repo/build/examples/psnap_run" "--demo")
set_tests_properties(example_psnap_run_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
