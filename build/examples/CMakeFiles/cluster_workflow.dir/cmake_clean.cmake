file(REMOVE_RECURSE
  "CMakeFiles/cluster_workflow.dir/cluster_workflow.cpp.o"
  "CMakeFiles/cluster_workflow.dir/cluster_workflow.cpp.o.d"
  "cluster_workflow"
  "cluster_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
