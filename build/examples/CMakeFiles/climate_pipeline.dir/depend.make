# Empty dependencies file for climate_pipeline.
# This may be replaced when dependencies are built.
