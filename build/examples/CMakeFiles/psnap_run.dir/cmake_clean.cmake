file(REMOVE_RECURSE
  "CMakeFiles/psnap_run.dir/psnap_run.cpp.o"
  "CMakeFiles/psnap_run.dir/psnap_run.cpp.o.d"
  "psnap_run"
  "psnap_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
