# Empty dependencies file for psnap_run.
# This may be replaced when dependencies are built.
