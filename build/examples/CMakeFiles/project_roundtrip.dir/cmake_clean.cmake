file(REMOVE_RECURSE
  "CMakeFiles/project_roundtrip.dir/project_roundtrip.cpp.o"
  "CMakeFiles/project_roundtrip.dir/project_roundtrip.cpp.o.d"
  "project_roundtrip"
  "project_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
