# Empty dependencies file for project_roundtrip.
# This may be replaced when dependencies are built.
