# Empty compiler generated dependencies file for project_roundtrip.
# This may be replaced when dependencies are built.
