file(REMOVE_RECURSE
  "CMakeFiles/dragon.dir/dragon.cpp.o"
  "CMakeFiles/dragon.dir/dragon.cpp.o.d"
  "dragon"
  "dragon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dragon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
