# Empty compiler generated dependencies file for dragon.
# This may be replaced when dependencies are built.
