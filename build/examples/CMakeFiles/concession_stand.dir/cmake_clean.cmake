file(REMOVE_RECURSE
  "CMakeFiles/concession_stand.dir/concession_stand.cpp.o"
  "CMakeFiles/concession_stand.dir/concession_stand.cpp.o.d"
  "concession_stand"
  "concession_stand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concession_stand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
