# Empty dependencies file for concession_stand.
# This may be replaced when dependencies are built.
