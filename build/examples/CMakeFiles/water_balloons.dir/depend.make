# Empty dependencies file for water_balloons.
# This may be replaced when dependencies are built.
