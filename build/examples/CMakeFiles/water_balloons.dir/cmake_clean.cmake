file(REMOVE_RECURSE
  "CMakeFiles/water_balloons.dir/water_balloons.cpp.o"
  "CMakeFiles/water_balloons.dir/water_balloons.cpp.o.d"
  "water_balloons"
  "water_balloons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_balloons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
