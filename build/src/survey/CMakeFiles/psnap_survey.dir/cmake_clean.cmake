file(REMOVE_RECURSE
  "CMakeFiles/psnap_survey.dir/survey.cpp.o"
  "CMakeFiles/psnap_survey.dir/survey.cpp.o.d"
  "libpsnap_survey.a"
  "libpsnap_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
