# Empty dependencies file for psnap_survey.
# This may be replaced when dependencies are built.
