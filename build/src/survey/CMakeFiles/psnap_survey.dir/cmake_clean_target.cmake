file(REMOVE_RECURSE
  "libpsnap_survey.a"
)
