file(REMOVE_RECURSE
  "libpsnap_vm.a"
)
