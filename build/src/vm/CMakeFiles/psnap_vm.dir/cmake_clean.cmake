file(REMOVE_RECURSE
  "CMakeFiles/psnap_vm.dir/custom_blocks.cpp.o"
  "CMakeFiles/psnap_vm.dir/custom_blocks.cpp.o.d"
  "CMakeFiles/psnap_vm.dir/host.cpp.o"
  "CMakeFiles/psnap_vm.dir/host.cpp.o.d"
  "CMakeFiles/psnap_vm.dir/primitives.cpp.o"
  "CMakeFiles/psnap_vm.dir/primitives.cpp.o.d"
  "CMakeFiles/psnap_vm.dir/process.cpp.o"
  "CMakeFiles/psnap_vm.dir/process.cpp.o.d"
  "libpsnap_vm.a"
  "libpsnap_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
