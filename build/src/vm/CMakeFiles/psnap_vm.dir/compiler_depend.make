# Empty compiler generated dependencies file for psnap_vm.
# This may be replaced when dependencies are built.
