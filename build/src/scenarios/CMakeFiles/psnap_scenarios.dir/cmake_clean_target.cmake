file(REMOVE_RECURSE
  "libpsnap_scenarios.a"
)
