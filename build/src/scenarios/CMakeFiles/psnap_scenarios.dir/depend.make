# Empty dependencies file for psnap_scenarios.
# This may be replaced when dependencies are built.
