file(REMOVE_RECURSE
  "CMakeFiles/psnap_scenarios.dir/concession.cpp.o"
  "CMakeFiles/psnap_scenarios.dir/concession.cpp.o.d"
  "libpsnap_scenarios.a"
  "libpsnap_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
