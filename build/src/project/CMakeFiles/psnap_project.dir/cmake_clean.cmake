file(REMOVE_RECURSE
  "CMakeFiles/psnap_project.dir/project.cpp.o"
  "CMakeFiles/psnap_project.dir/project.cpp.o.d"
  "CMakeFiles/psnap_project.dir/xml.cpp.o"
  "CMakeFiles/psnap_project.dir/xml.cpp.o.d"
  "libpsnap_project.a"
  "libpsnap_project.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_project.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
