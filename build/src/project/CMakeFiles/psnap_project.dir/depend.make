# Empty dependencies file for psnap_project.
# This may be replaced when dependencies are built.
