file(REMOVE_RECURSE
  "libpsnap_project.a"
)
