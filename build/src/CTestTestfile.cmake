# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("blocks")
subdirs("vm")
subdirs("sched")
subdirs("stage")
subdirs("workers")
subdirs("mapreduce")
subdirs("core")
subdirs("scenarios")
subdirs("codegen")
subdirs("project")
subdirs("data")
subdirs("survey")
