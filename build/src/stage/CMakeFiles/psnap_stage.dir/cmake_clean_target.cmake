file(REMOVE_RECURSE
  "libpsnap_stage.a"
)
