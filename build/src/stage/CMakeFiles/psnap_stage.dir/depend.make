# Empty dependencies file for psnap_stage.
# This may be replaced when dependencies are built.
