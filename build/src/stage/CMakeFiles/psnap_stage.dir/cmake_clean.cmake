file(REMOVE_RECURSE
  "CMakeFiles/psnap_stage.dir/stage.cpp.o"
  "CMakeFiles/psnap_stage.dir/stage.cpp.o.d"
  "libpsnap_stage.a"
  "libpsnap_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
