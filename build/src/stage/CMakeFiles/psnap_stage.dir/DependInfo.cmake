
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stage/stage.cpp" "src/stage/CMakeFiles/psnap_stage.dir/stage.cpp.o" "gcc" "src/stage/CMakeFiles/psnap_stage.dir/stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/psnap_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/psnap_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/blocks/CMakeFiles/psnap_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psnap_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
