
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocks/block.cpp" "src/blocks/CMakeFiles/psnap_blocks.dir/block.cpp.o" "gcc" "src/blocks/CMakeFiles/psnap_blocks.dir/block.cpp.o.d"
  "/root/repo/src/blocks/builder.cpp" "src/blocks/CMakeFiles/psnap_blocks.dir/builder.cpp.o" "gcc" "src/blocks/CMakeFiles/psnap_blocks.dir/builder.cpp.o.d"
  "/root/repo/src/blocks/environment.cpp" "src/blocks/CMakeFiles/psnap_blocks.dir/environment.cpp.o" "gcc" "src/blocks/CMakeFiles/psnap_blocks.dir/environment.cpp.o.d"
  "/root/repo/src/blocks/registry.cpp" "src/blocks/CMakeFiles/psnap_blocks.dir/registry.cpp.o" "gcc" "src/blocks/CMakeFiles/psnap_blocks.dir/registry.cpp.o.d"
  "/root/repo/src/blocks/value.cpp" "src/blocks/CMakeFiles/psnap_blocks.dir/value.cpp.o" "gcc" "src/blocks/CMakeFiles/psnap_blocks.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/psnap_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
