file(REMOVE_RECURSE
  "CMakeFiles/psnap_blocks.dir/block.cpp.o"
  "CMakeFiles/psnap_blocks.dir/block.cpp.o.d"
  "CMakeFiles/psnap_blocks.dir/builder.cpp.o"
  "CMakeFiles/psnap_blocks.dir/builder.cpp.o.d"
  "CMakeFiles/psnap_blocks.dir/environment.cpp.o"
  "CMakeFiles/psnap_blocks.dir/environment.cpp.o.d"
  "CMakeFiles/psnap_blocks.dir/registry.cpp.o"
  "CMakeFiles/psnap_blocks.dir/registry.cpp.o.d"
  "CMakeFiles/psnap_blocks.dir/value.cpp.o"
  "CMakeFiles/psnap_blocks.dir/value.cpp.o.d"
  "libpsnap_blocks.a"
  "libpsnap_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
