# Empty dependencies file for psnap_blocks.
# This may be replaced when dependencies are built.
