file(REMOVE_RECURSE
  "libpsnap_blocks.a"
)
