file(REMOVE_RECURSE
  "libpsnap_workers.a"
)
