file(REMOVE_RECURSE
  "CMakeFiles/psnap_workers.dir/parallel.cpp.o"
  "CMakeFiles/psnap_workers.dir/parallel.cpp.o.d"
  "CMakeFiles/psnap_workers.dir/worker_pool.cpp.o"
  "CMakeFiles/psnap_workers.dir/worker_pool.cpp.o.d"
  "libpsnap_workers.a"
  "libpsnap_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
