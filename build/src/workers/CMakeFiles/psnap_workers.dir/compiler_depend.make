# Empty compiler generated dependencies file for psnap_workers.
# This may be replaced when dependencies are built.
