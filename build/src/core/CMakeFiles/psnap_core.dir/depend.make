# Empty dependencies file for psnap_core.
# This may be replaced when dependencies are built.
