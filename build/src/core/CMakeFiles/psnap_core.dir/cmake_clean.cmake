file(REMOVE_RECURSE
  "CMakeFiles/psnap_core.dir/parallel_blocks.cpp.o"
  "CMakeFiles/psnap_core.dir/parallel_blocks.cpp.o.d"
  "CMakeFiles/psnap_core.dir/pure_eval.cpp.o"
  "CMakeFiles/psnap_core.dir/pure_eval.cpp.o.d"
  "libpsnap_core.a"
  "libpsnap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
