file(REMOVE_RECURSE
  "libpsnap_core.a"
)
