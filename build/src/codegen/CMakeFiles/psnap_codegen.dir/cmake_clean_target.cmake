file(REMOVE_RECURSE
  "libpsnap_codegen.a"
)
