# Empty dependencies file for psnap_codegen.
# This may be replaced when dependencies are built.
