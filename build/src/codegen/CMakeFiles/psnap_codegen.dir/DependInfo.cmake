
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/batch.cpp" "src/codegen/CMakeFiles/psnap_codegen.dir/batch.cpp.o" "gcc" "src/codegen/CMakeFiles/psnap_codegen.dir/batch.cpp.o.d"
  "/root/repo/src/codegen/blocks.cpp" "src/codegen/CMakeFiles/psnap_codegen.dir/blocks.cpp.o" "gcc" "src/codegen/CMakeFiles/psnap_codegen.dir/blocks.cpp.o.d"
  "/root/repo/src/codegen/mapping.cpp" "src/codegen/CMakeFiles/psnap_codegen.dir/mapping.cpp.o" "gcc" "src/codegen/CMakeFiles/psnap_codegen.dir/mapping.cpp.o.d"
  "/root/repo/src/codegen/programs.cpp" "src/codegen/CMakeFiles/psnap_codegen.dir/programs.cpp.o" "gcc" "src/codegen/CMakeFiles/psnap_codegen.dir/programs.cpp.o.d"
  "/root/repo/src/codegen/toolchain.cpp" "src/codegen/CMakeFiles/psnap_codegen.dir/toolchain.cpp.o" "gcc" "src/codegen/CMakeFiles/psnap_codegen.dir/toolchain.cpp.o.d"
  "/root/repo/src/codegen/translator.cpp" "src/codegen/CMakeFiles/psnap_codegen.dir/translator.cpp.o" "gcc" "src/codegen/CMakeFiles/psnap_codegen.dir/translator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blocks/CMakeFiles/psnap_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/psnap_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psnap_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
