file(REMOVE_RECURSE
  "CMakeFiles/psnap_codegen.dir/batch.cpp.o"
  "CMakeFiles/psnap_codegen.dir/batch.cpp.o.d"
  "CMakeFiles/psnap_codegen.dir/blocks.cpp.o"
  "CMakeFiles/psnap_codegen.dir/blocks.cpp.o.d"
  "CMakeFiles/psnap_codegen.dir/mapping.cpp.o"
  "CMakeFiles/psnap_codegen.dir/mapping.cpp.o.d"
  "CMakeFiles/psnap_codegen.dir/programs.cpp.o"
  "CMakeFiles/psnap_codegen.dir/programs.cpp.o.d"
  "CMakeFiles/psnap_codegen.dir/toolchain.cpp.o"
  "CMakeFiles/psnap_codegen.dir/toolchain.cpp.o.d"
  "CMakeFiles/psnap_codegen.dir/translator.cpp.o"
  "CMakeFiles/psnap_codegen.dir/translator.cpp.o.d"
  "libpsnap_codegen.a"
  "libpsnap_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
