# Empty dependencies file for psnap_mapreduce.
# This may be replaced when dependencies are built.
