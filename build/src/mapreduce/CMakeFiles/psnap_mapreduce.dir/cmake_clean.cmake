file(REMOVE_RECURSE
  "CMakeFiles/psnap_mapreduce.dir/engine.cpp.o"
  "CMakeFiles/psnap_mapreduce.dir/engine.cpp.o.d"
  "libpsnap_mapreduce.a"
  "libpsnap_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
