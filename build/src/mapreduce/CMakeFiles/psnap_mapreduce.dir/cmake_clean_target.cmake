file(REMOVE_RECURSE
  "libpsnap_mapreduce.a"
)
