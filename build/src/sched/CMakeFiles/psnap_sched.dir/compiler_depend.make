# Empty compiler generated dependencies file for psnap_sched.
# This may be replaced when dependencies are built.
