file(REMOVE_RECURSE
  "CMakeFiles/psnap_sched.dir/thread_manager.cpp.o"
  "CMakeFiles/psnap_sched.dir/thread_manager.cpp.o.d"
  "libpsnap_sched.a"
  "libpsnap_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
