file(REMOVE_RECURSE
  "libpsnap_sched.a"
)
