# Empty compiler generated dependencies file for psnap_data.
# This may be replaced when dependencies are built.
