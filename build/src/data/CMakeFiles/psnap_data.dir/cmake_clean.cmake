file(REMOVE_RECURSE
  "CMakeFiles/psnap_data.dir/climate.cpp.o"
  "CMakeFiles/psnap_data.dir/climate.cpp.o.d"
  "CMakeFiles/psnap_data.dir/corpus.cpp.o"
  "CMakeFiles/psnap_data.dir/corpus.cpp.o.d"
  "CMakeFiles/psnap_data.dir/csv.cpp.o"
  "CMakeFiles/psnap_data.dir/csv.cpp.o.d"
  "libpsnap_data.a"
  "libpsnap_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
