file(REMOVE_RECURSE
  "libpsnap_data.a"
)
