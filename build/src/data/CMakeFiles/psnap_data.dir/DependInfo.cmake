
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/climate.cpp" "src/data/CMakeFiles/psnap_data.dir/climate.cpp.o" "gcc" "src/data/CMakeFiles/psnap_data.dir/climate.cpp.o.d"
  "/root/repo/src/data/corpus.cpp" "src/data/CMakeFiles/psnap_data.dir/corpus.cpp.o" "gcc" "src/data/CMakeFiles/psnap_data.dir/corpus.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/data/CMakeFiles/psnap_data.dir/csv.cpp.o" "gcc" "src/data/CMakeFiles/psnap_data.dir/csv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blocks/CMakeFiles/psnap_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psnap_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
