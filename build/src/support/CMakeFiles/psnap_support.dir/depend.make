# Empty dependencies file for psnap_support.
# This may be replaced when dependencies are built.
