file(REMOVE_RECURSE
  "libpsnap_support.a"
)
