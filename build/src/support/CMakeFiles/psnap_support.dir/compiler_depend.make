# Empty compiler generated dependencies file for psnap_support.
# This may be replaced when dependencies are built.
