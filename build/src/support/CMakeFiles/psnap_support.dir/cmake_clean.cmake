file(REMOVE_RECURSE
  "CMakeFiles/psnap_support.dir/error.cpp.o"
  "CMakeFiles/psnap_support.dir/error.cpp.o.d"
  "CMakeFiles/psnap_support.dir/rng.cpp.o"
  "CMakeFiles/psnap_support.dir/rng.cpp.o.d"
  "CMakeFiles/psnap_support.dir/strings.cpp.o"
  "CMakeFiles/psnap_support.dir/strings.cpp.o.d"
  "libpsnap_support.a"
  "libpsnap_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psnap_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
