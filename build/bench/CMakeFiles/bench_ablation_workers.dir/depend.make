# Empty dependencies file for bench_ablation_workers.
# This may be replaced when dependencies are built.
