file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_wordcount.dir/bench_fig11_wordcount.cpp.o"
  "CMakeFiles/bench_fig11_wordcount.dir/bench_fig11_wordcount.cpp.o.d"
  "bench_fig11_wordcount"
  "bench_fig11_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
