# Empty dependencies file for bench_fig11_wordcount.
# This may be replaced when dependencies are built.
