file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_codegen.dir/bench_fig15_codegen.cpp.o"
  "CMakeFiles/bench_fig15_codegen.dir/bench_fig15_codegen.cpp.o.d"
  "bench_fig15_codegen"
  "bench_fig15_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
