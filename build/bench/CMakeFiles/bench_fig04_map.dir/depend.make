# Empty dependencies file for bench_fig04_map.
# This may be replaced when dependencies are built.
