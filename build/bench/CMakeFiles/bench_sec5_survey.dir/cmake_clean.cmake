file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_survey.dir/bench_sec5_survey.cpp.o"
  "CMakeFiles/bench_sec5_survey.dir/bench_sec5_survey.cpp.o.d"
  "bench_sec5_survey"
  "bench_sec5_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
