# Empty dependencies file for bench_sec5_survey.
# This may be replaced when dependencies are built.
