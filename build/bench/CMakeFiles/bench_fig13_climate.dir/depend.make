# Empty dependencies file for bench_fig13_climate.
# This may be replaced when dependencies are built.
