file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_climate.dir/bench_fig13_climate.cpp.o"
  "CMakeFiles/bench_fig13_climate.dir/bench_fig13_climate.cpp.o.d"
  "bench_fig13_climate"
  "bench_fig13_climate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_climate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
