# Empty compiler generated dependencies file for bench_ablation_timeslice.
# This may be replaced when dependencies are built.
