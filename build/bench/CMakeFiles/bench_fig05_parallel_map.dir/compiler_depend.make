# Empty compiler generated dependencies file for bench_fig05_parallel_map.
# This may be replaced when dependencies are built.
