file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_concession.dir/bench_fig07_concession.cpp.o"
  "CMakeFiles/bench_fig07_concession.dir/bench_fig07_concession.cpp.o.d"
  "bench_fig07_concession"
  "bench_fig07_concession.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_concession.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
