# Empty dependencies file for bench_fig07_concession.
# This may be replaced when dependencies are built.
