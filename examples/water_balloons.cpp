// The water-balloon game from the paper's Sec. 5: "One of the more
// creative examples of parallelism was a video game, where the player
// controlled an on-screen (laundry) basket and tried to catch water
// balloons that were falling from the sky (in parallel) before they
// landed on the heads of people."
//
// Each balloon is a clone falling concurrently (the parallelism the
// students discovered); the basket moves on key events; a balloon that
// touches the basket is caught, one that reaches the ground is missed.
//
//   $ ./water_balloons
#include <cstdio>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "stage/stage.hpp"
#include "support/rng.hpp"

int main() {
  using namespace psnap;
  using namespace psnap::build;

  vm::PrimitiveTable prims = core::fullPrimitiveTable();
  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims);
  stage::Stage stage(&tm);

  stage.globals()->declare("caught", blocks::Value(0));
  stage.globals()->declare("missed", blocks::Value(0));

  // The basket, controlled with the arrow keys.
  stage::Sprite& basket = stage.addSprite("Basket");
  basket.gotoXY(0, -140);
  basket.setCostume("basket");
  basket.setTouchRadius(40);
  basket.addScript(scriptOf({whenKeyPressed("right arrow"),
                             blk("changeXPosition", {In(40)})}));
  basket.addScript(scriptOf({whenKeyPressed("left arrow"),
                             blk("changeXPosition", {In(-40)})}));

  // The balloon template: hidden; clones fall from the sky in parallel.
  stage::Sprite& balloon = stage.addSprite("Balloon");
  balloon.setCostume("balloon");
  balloon.setVisible(false);
  balloon.addScript(scriptOf({
      whenCloneStarts(),
      show(),
      repeatUntil(
          or_(touching("Basket"), lessThan(blk("yPosition"), -140.0)),
          scriptOf({blk("changeYPosition", {In(-20)})})),
      doIfElse(touching("Basket"),
               scriptOf({changeVar("caught", 1)}),
               scriptOf({changeVar("missed", 1)})),
      hide(),
      removeClone(),
  }));

  // Drop 6 balloons from deterministic positions, staggered over time,
  // while "the player" mashes the arrow keys trying to catch them.
  Rng rng(7);
  const double dropX[] = {-80, 40, 0, 120, -40, 80};
  for (int wave = 0; wave < 6; ++wave) {
    balloon.gotoXY(dropX[wave], 160);
    stage.makeClone(&balloon);
    // Player reaction: move toward the falling balloon.
    for (int frame = 0; frame < 6; ++frame) {
      stage::Sprite* fall = nullptr;
      for (stage::Sprite* s : stage.sprites()) {
        if (s->isClone()) fall = s;
      }
      if (fall) {
        if (fall->x() > basket.x() + 20) {
          stage.keyPressed("right arrow");
        } else if (fall->x() < basket.x() - 20) {
          stage.keyPressed("left arrow");
        }
      }
      tm.runFrame();
    }
  }
  tm.runUntilIdle();

  std::printf("water balloon game over!\n");
  std::printf("  caught: %s\n",
              stage.globals()->get("caught").display().c_str());
  std::printf("  missed: %s\n",
              stage.globals()->get("missed").display().c_str());
  std::printf("  errors: %zu\n", tm.errors().size());
  for (const std::string& e : tm.errors()) std::printf("  %s\n", e.c_str());
  return tm.errors().empty() ? 0 : 1;
}
