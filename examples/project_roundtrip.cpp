// Save and load a project: the parallel concession-stand project is
// serialized to Snap!-style XML, parsed back, instantiated onto a fresh
// stage, and run — demonstrating that the full block structure (including
// the parallelForEach mode slot) survives persistence.
//
//   $ ./project_roundtrip
#include <cstdio>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "project/project.hpp"

int main() {
  using namespace psnap;
  using namespace psnap::build;

  // Author a small project.
  project::Project original;
  original.name = "parallel-demo";
  original.globals.push_back({"result", blocks::Value()});
  project::SpriteDef sprite;
  sprite.name = "Worker";
  sprite.scripts.push_back(scriptOf({
      whenGreenFlag(),
      setVar("result", parallelMap(ring(product(empty(), empty())),
                                   numbersFromTo(1, 8), 2)),
      say(getVar("result")),
  }));
  original.sprites.push_back(std::move(sprite));

  // Serialize and show the XML.
  std::string xml = project::toXml(original);
  std::printf("== project XML ==\n%s\n", xml.c_str());

  // Parse it back and run it.
  project::Project loaded = project::fromXml(xml);
  vm::PrimitiveTable prims = core::fullPrimitiveTable();
  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims);
  stage::Stage stage(&tm);
  loaded.instantiate(stage);
  stage.greenFlag();
  tm.runUntilIdle();

  for (const std::string& line : tm.collectSayLog()) {
    std::printf("Worker says: %s\n", line.c_str());
  }
  std::printf("errors: %zu\n", tm.errors().size());
  return tm.errors().empty() ? 0 : 1;
}
