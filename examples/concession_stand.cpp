// The concession stand (paper Sec. 3.3, Figs. 7–10): three cups, pouring
// takes three timesteps per glass; run it in parallel mode (clones), in
// sequential mode, and in sequential mode with browser interference.
//
//   $ ./concession_stand
//
// Prints the timer readouts (3 / 9 / 12, matching the paper) and a short
// frame-by-frame trace of the parallel run.
#include <cstdio>

#include "scenarios/concession.hpp"

namespace sc = psnap::scenarios;

int main() {
  sc::ConcessionResult parallel = sc::runConcession(
      {.parallel = true, .captureFrames = true});
  sc::ConcessionResult sequential = sc::runConcession({.parallel = false});
  sc::ConcessionResult observed = sc::runConcession(
      {.parallel = false, .interference = sc::paperInterference()});

  std::printf("concession stand, 3 cups, 3 timesteps per glass\n");
  std::printf("  mode                          timesteps (paper)\n");
  std::printf("  parallel (3 pitcher clones)   %9llu (3)\n",
              (unsigned long long)parallel.pourTimesteps);
  std::printf("  sequential, ideal             %9llu (9)\n",
              (unsigned long long)sequential.pourTimesteps);
  std::printf("  sequential, with interference %9llu (12)\n",
              (unsigned long long)observed.pourTimesteps);

  std::printf("\nparallel run, frame by frame:\n");
  for (size_t i = 0; i < parallel.frames.size(); ++i) {
    std::printf("--- frame %zu ---\n%s", i + 1, parallel.frames[i].c_str());
  }
  return 0;
}
