// Word count with the mapReduce block (paper Sec. 3.4, Figs. 11–12): map
// every word to 1, group by the word itself, count each group — then
// check the result against a plain-C++ reference count.
//
//   $ ./word_count [words]      (default 2000 generated words)
#include <cstdio>
#include <cstdlib>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "data/corpus.hpp"
#include "sched/thread_manager.hpp"

int main(int argc, char** argv) {
  using namespace psnap;
  using namespace psnap::build;

  const size_t wordCount =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 2000;
  const std::string text = data::generateText(wordCount, 30, /*seed=*/2016);

  vm::PrimitiveTable prims = core::fullPrimitiveTable();
  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims);

  // mapReduce map:(1) reduce:(length of values) on (split text by word)
  blocks::Value result = tm.evaluate(
      mapReduce(ring(In(1.0)), ring(lengthOf(empty())),
                splitText(text, "whitespace")),
      blocks::Environment::make());

  auto reference = data::referenceWordCount(text);
  std::printf("word count over %zu generated words, %zu distinct\n",
              wordCount, reference.size());
  std::printf("%-12s %8s %8s\n", "word", "block", "reference");

  size_t shown = 0;
  bool allMatch = true;
  for (const blocks::Value& pair : result.asList()->items()) {
    const std::string word = pair.asList()->item(1).asText();
    const size_t count =
        static_cast<size_t>(pair.asList()->item(2).asNumber());
    const size_t expected = reference.count(word) ? reference.at(word) : 0;
    if (count != expected) allMatch = false;
    if (shown < 12) {
      std::printf("%-12s %8zu %8zu\n", word.c_str(), count, expected);
      ++shown;
    }
  }
  if (result.asList()->length() > shown) {
    std::printf("... (%zu more rows)\n",
                result.asList()->length() - shown);
  }
  std::printf("block result %s the reference count\n",
              allMatch && result.asList()->length() == reference.size()
                  ? "MATCHES"
                  : "DIFFERS FROM");
  return allMatch ? 0 : 1;
}
