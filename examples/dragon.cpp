// The dragon project of paper Figs. 2–3: one sprite, three scripts —
// a green-flag forever-loop that moves the dragon, and two key scripts
// that turn it. Events are injected programmatically and the stage is
// rendered as text after each frame, showing "the visual effect of the
// user seemingly being able to control the flight of the dragon".
//
//   $ ./dragon
#include <cstdio>

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "stage/stage.hpp"

int main() {
  using namespace psnap;
  using namespace psnap::build;

  vm::PrimitiveTable prims = core::fullPrimitiveTable();
  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims);
  stage::Stage stage(&tm);

  stage::Sprite& dragon = stage.addSprite("Dragon");
  dragon.setCostume("dragon");

  // Fig. 3, top script: when green flag clicked, forever move 5 steps.
  dragon.addScript(scriptOf({whenGreenFlag(),
                             forever(scriptOf({moveSteps(5)}))}));
  // Fig. 3, middle: when right arrow pressed, turn right 15 degrees.
  dragon.addScript(scriptOf({whenKeyPressed("right arrow"),
                             turnRight(15)}));
  // Fig. 3, bottom: when left arrow pressed, turn left 15 degrees.
  dragon.addScript(scriptOf({whenKeyPressed("left arrow"),
                             turnLeftBy(15)}));

  // "Fly" the dragon: green flag, then a scripted key sequence.
  stage.greenFlag();
  const char* keys[] = {nullptr,       nullptr, "right arrow",
                        "right arrow", nullptr, "left arrow",
                        nullptr,       nullptr};
  for (const char* key : keys) {
    if (key) stage.keyPressed(key);
    tm.runFrame();
    std::printf("%s\n", stage.renderFrame().c_str());
  }
  stage.stopAll();
  return 0;
}
