// A tour of the code-mapping backend (paper Sec. 6): the hello-world
// listings, the Listing 5 map program, per-language translations of the
// same blocks, and the future-work artifacts (Makefile, batch script).
//
//   $ ./codegen_tour
#include <cstdio>

#include "blocks/builder.hpp"
#include "codegen/programs.hpp"
#include "codegen/toolchain.hpp"

int main() {
  using namespace psnap;
  using namespace psnap::build;

  // --- Listings 3 and 4 ----------------------------------------------------
  std::printf("== Listing 3: sequential C ==\n%s\n",
              codegen::helloSequentialC().at("main.c").c_str());
  std::printf("== Listing 4: OpenMP C ==\n%s\n",
              codegen::helloOpenMP().at("main.c").c_str());

  if (codegen::Toolchain::compilerAvailable()) {
    codegen::Toolchain tc;
    auto seq = tc.compileAndRun(codegen::helloSequentialC(), "hello",
                                false);
    std::printf("sequential run: %s\n", seq.output.c_str());
    auto par = tc.compileAndRun(codegen::helloOpenMP(), "hello_omp", true,
                                "", "OMP_NUM_THREADS=4");
    std::printf("OpenMP run (4 threads): %s\n", par.output.c_str());
  }

  // --- one block, four languages -------------------------------------------
  auto expression = quotient(product(5, difference(empty(), 32)), 9);
  std::printf("== the F->C ring mapped to each target ==\n");
  for (const char* language : {"C", "OpenMP C", "JavaScript", "Python"}) {
    codegen::Translator translator(codegen::CodeMapping::byName(language));
    std::printf("%-11s %s\n", language,
                translator.mappedCode(*ring(expression)).c_str());
  }

  // --- Listing 5: the full map program --------------------------------------
  auto sources = codegen::mapProgramC({3, 7, 8}, 10);
  std::printf("\n== Listing 5: generated map program ==\n%s\n",
              sources.at("main.c").c_str());
  if (codegen::Toolchain::compilerAvailable()) {
    codegen::Toolchain tc;
    auto run = tc.compileAndRun(sources, "map_c", false);
    std::printf("program output: %s", run.output.c_str());
  }

  // --- future-work artifacts --------------------------------------------------
  auto mr = codegen::mapReduceOpenMP(
      // identity mapper, counting reducer
      blocks::Ring::reporter(
          blocks::Block::make("reportIdentity", {blocks::Input::empty()})),
      blocks::Ring::reporter(blocks::Block::make(
          "reportListLength", {blocks::Input::empty()})));
  std::printf("\n== generated Makefile ==\n%s\n",
              codegen::makefileFor(mr, true, "mapreduce").c_str());
  std::printf("== generated batch script outline ==\n%s\n",
              codegen::slurmScriptFor("mapreduce", 2, 8, "psnap-mr")
                  .c_str());
  return 0;
}
