// Quickstart: assemble block scripts in C++, run them on the cooperative
// scheduler, and use the paper's parallel blocks.
//
//   $ ./quickstart
//
// Walks through: the sequential map of paper Fig. 4, the parallelMap of
// Fig. 5 (with real worker threads underneath), and the `code of` block
// of Sec. 6.
#include <cstdio>

#include "blocks/builder.hpp"
#include "codegen/blocks.hpp"
#include "core/parallel_blocks.hpp"
#include "sched/thread_manager.hpp"

int main() {
  using namespace psnap;
  using namespace psnap::build;

  // One primitive table serves every process: the standard palette plus
  // the parallel blocks plus the code-mapping blocks.
  vm::PrimitiveTable prims = core::fullPrimitiveTable();
  codegen::registerCodegenPrimitives(prims);
  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims);
  auto env = blocks::Environment::make();

  // --- Fig. 4: map (( ) × 10) over (3 7 8) --------------------------------
  blocks::Value sequential = tm.evaluate(
      mapOver(ring(product(empty(), 10)), listOf({3, 7, 8})), env);
  std::printf("map (x*10) over [3,7,8]          -> %s\n",
              sequential.display().c_str());

  // --- Fig. 5: parallel map over 1..1000 with 4 workers --------------------
  blocks::Value parallel = tm.evaluate(
      parallelMap(ring(product(empty(), 10)), numbersFromTo(1, 1000), 4),
      env);
  std::printf("parallel map, first 10 of 1000   -> [");
  for (size_t i = 1; i <= 10; ++i) {
    std::printf("%s%s", i == 1 ? "" : ", ",
                parallel.asList()->item(i).display().c_str());
  }
  std::printf(", ...]\n");

  // --- scripts with variables, loops, and say ------------------------------
  env->declare("total", blocks::Value(0));
  auto handle = tm.spawnScript(
      scriptOf({
          forEach("n", numbersFromTo(1, 10),
                  scriptOf({changeVar("total", getVar("n"))})),
          say(join({In("sum 1..10 = "), In(getVar("total"))})),
      }),
      env);
  tm.runUntilIdle();
  std::printf("script said                      -> \"%s\"\n",
              handle.status->errored ? handle.status->error.c_str()
                                     : tm.collectSayLog().back().c_str());

  // --- Sec. 6: `map to language` then `code of (ring)` ---------------------
  for (const char* language : {"C", "JavaScript", "Python"}) {
    auto env2 = blocks::Environment::make();
    env2->declare("code", blocks::Value(""));
    tm.spawnScript(
        scriptOf({mapToLanguage(language),
                  setVar("code",
                         codeOf(ring(quotient(
                             product(5, difference(empty(), 32)), 9))))}),
        env2);
    tm.runUntilIdle();
    std::printf("code of F->C ring in %-10s  -> %s\n", language,
                env2->get("code").asText().c_str());
  }
  return 0;
}
