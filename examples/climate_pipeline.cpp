// The full "Snap! as part of a scientific workflow" pipeline of paper
// Fig. 17, on the climate example of Sec. 3.4:
//
//   1. generate NOAA-like station data (the paper used NOAA files;
//      DESIGN.md documents the substitution),
//   2. run the mapReduce block in the block environment (browser analog),
//   3. generate the OpenMP C program from the same rings (Listings 6–7),
//   4. compile it with gcc -fopenmp and run it on the same data,
//   5. compare both answers with the plain-C++ reference mean.
//
//   $ ./climate_pipeline
#include <cstdio>

#include "blocks/builder.hpp"
#include "codegen/programs.hpp"
#include "codegen/toolchain.hpp"
#include "core/parallel_blocks.hpp"
#include "data/climate.hpp"
#include "sched/thread_manager.hpp"
#include "support/strings.hpp"

int main() {
  using namespace psnap;
  using namespace psnap::build;

  // 1. Synthetic weather-station readings in Fahrenheit.
  data::ClimateConfig config;
  config.stations = 3;
  config.firstYear = 1990;
  config.lastYear = 1999;
  auto records = data::generateClimate(config);
  double reference = data::referenceMeanCelsius(records);
  std::printf("dataset: %zu monthly readings from %zu stations\n",
              records.size(), config.stations);

  // 2. The block program: map = F->C with an explicit single key, reduce =
  //    average of the values (paper Figs. 19–20).
  auto mapper = ring(listOf(
      {In("avgC"), In(quotient(product(5, difference(empty(), 32)), 9))}));
  auto reducer = ring(quotient(
      combineUsing(empty(), ring(sum(empty(), empty()))),
      lengthOf(empty())));

  vm::PrimitiveTable prims = core::fullPrimitiveTable();
  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims);
  blocks::Value result = tm.evaluate(
      mapReduce(mapper, reducer,
                In(blocks::Value(data::toFahrenheitList(records)))),
      blocks::Environment::make());
  double blockMean = result.asList()->item(1).asList()->item(2).asNumber();
  std::printf("block mapReduce mean Celsius     : %.6f\n", blockMean);
  std::printf("plain C++ reference mean Celsius : %.6f\n", reference);

  // 3–4. Generate, compile, and run the OpenMP program on the same data.
  if (!codegen::Toolchain::compilerAvailable()) {
    std::printf("no C compiler available; skipping the OpenMP half\n");
    return 0;
  }
  auto mapRing = ring(quotient(product(5, difference(empty(), 32)), 9));
  // Evaluate the reify blocks into Ring values via a tiny expression run.
  auto mapRingValue =
      tm.evaluate(mapRing, blocks::Environment::make()).asRing();
  auto reduceRingValue =
      tm.evaluate(reducer, blocks::Environment::make()).asRing();

  codegen::Toolchain toolchain;
  auto sources = codegen::mapReduceOpenMP(mapRingValue, reduceRingValue);
  std::printf("\ngenerated mapreduce.c:\n%s\n",
              sources.at("mapreduce.c").c_str());
  auto run = toolchain.compileAndRun(sources, "climate", /*openmp=*/true,
                                     data::toKvpText(records, "avgC"),
                                     "OMP_NUM_THREADS=4");
  std::printf("OpenMP binary output             : %s",
              run.output.c_str());

  // 5. Compare (the generated program computes in float, so ~1e-3).
  double openmpMean = 0;
  auto fields = strings::splitWhitespace(run.output);
  if (fields.size() == 2) strings::parseNumber(fields[1], openmpMean);
  bool close = std::abs(openmpMean - reference) < 0.05 &&
               std::abs(blockMean - reference) < 1e-9;
  std::printf("agreement                        : %s\n",
              close ? "OK" : "MISMATCH");
  return close ? 0 : 1;
}
