// The complete "Snap! as part of a scientific workflow" of paper Fig. 17
// extended with the Sec. 6.3 future-work items: the block program is
// translated to OpenMP C, a Makefile and a batch script are generated,
// the job is submitted to a (simulated) cluster batch queue behind other
// users' jobs, monitored while pending, and its collected output is
// displayed — with the payload really compiled by gcc and executed.
//
//   $ ./cluster_workflow
#include <cstdio>

#include "blocks/builder.hpp"
#include "codegen/batch.hpp"
#include "codegen/programs.hpp"
#include "codegen/toolchain.hpp"
#include "data/climate.hpp"
#include "sched/thread_manager.hpp"
#include "vm/process.hpp"

int main() {
  using namespace psnap;
  using namespace psnap::build;

  // 1. The block program's rings (climate F→C average, Figs. 19–20).
  vm::PrimitiveTable prims = vm::PrimitiveTable::standard();
  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims);
  auto env = blocks::Environment::make();
  auto mapRing =
      tm.evaluate(ring(quotient(product(5, difference(empty(), 32)), 9)),
                  env)
          .asRing();
  auto reduceRing =
      tm.evaluate(ring(quotient(combineUsing(empty(),
                                             ring(sum(empty(), empty()))),
                                lengthOf(empty()))),
                  env)
          .asRing();

  // 2. Generate the program + build/run artifacts.
  auto sources = codegen::mapReduceOpenMP(mapRing, reduceRing);
  std::printf("== generated Makefile ==\n%s\n",
              codegen::makefileFor(sources, true, "climate").c_str());
  std::printf("== generated batch script ==\n%s\n",
              codegen::slurmScriptFor("climate", 1, 4, "psnap-climate")
                  .c_str());

  // 3. The input data (synthetic NOAA-like readings).
  data::ClimateConfig config;
  config.stations = 2;
  config.firstYear = 2000;
  config.lastYear = 2004;
  auto records = data::generateClimate(config);
  std::string stdinText = data::toKvpText(records, "avgC");

  // 4. Submit to a 4-node cluster that is already busy.
  codegen::BatchQueue cluster(4);
  cluster.submit({.name = "someone-elses-sim",
                  .nodes = 3,
                  .wallSeconds = 120,
                  .payload = nullptr});
  cluster.submit({.name = "big-mpi-run",
                  .nodes = 4,
                  .wallSeconds = 60,
                  .payload = nullptr});

  const bool haveCompiler = codegen::Toolchain::compilerAvailable();
  uint64_t myJob = cluster.submit(
      {.name = "psnap-climate",
       .nodes = 1,
       .wallSeconds = 30,
       .payload = [&]() -> std::string {
         if (!haveCompiler) return "(no compiler on this host)";
         codegen::Toolchain toolchain;
         auto run = toolchain.compileAndRun(sources, "climate", true,
                                            stdinText,
                                            "OMP_NUM_THREADS=4");
         return run.output;
       }});

  // 5. Monitor the queue (the "waiting in the queue" display).
  std::printf("== queue after submission ==\n%s\n",
              cluster.render().c_str());
  while (cluster.status(myJob).state != codegen::JobState::Completed) {
    cluster.advance(30);
    std::printf("t=%-4g my job is %s\n", cluster.now(),
                codegen::jobStateName(cluster.status(myJob).state));
  }

  // 6. Collect the results.
  std::printf("\n== collected output ==\n%s",
              cluster.status(myJob).output.c_str());
  std::printf("(reference mean: %.4f C)\n",
              data::referenceMeanCelsius(records));
  return 0;
}
