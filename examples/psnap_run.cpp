// psnap_run — a tiny project runner: load a project XML file, press the
// green flag, run the scheduler until the project goes idle (or a frame
// budget expires), and print the say-log, errors, and final stage state.
// The command-line face of the "Snap! as IDE" workflow.
//
//   $ ./psnap_run project.xml [--frames N] [--render]
//   $ ./psnap_run --demo            # run a built-in demo project
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "blocks/builder.hpp"
#include "codegen/blocks.hpp"
#include "core/parallel_blocks.hpp"
#include "project/project.hpp"
#include "support/strings.hpp"

namespace {

psnap::project::Project demoProject() {
  using namespace psnap::build;
  psnap::project::Project project;
  project.name = "demo";
  project.globals.push_back({"squares", psnap::blocks::Value()});
  psnap::project::SpriteDef sprite;
  sprite.name = "Demo";
  sprite.scripts.push_back(scriptOf({
      whenGreenFlag(),
      setVar("squares", parallelMap(ring(product(empty(), empty())),
                                    numbersFromTo(1, 10))),
      say(getVar("squares")),
  }));
  project.sprites.push_back(std::move(sprite));
  return project;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psnap;

  std::string path;
  uint64_t maxFrames = 100000;
  bool render = false;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      maxFrames = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--render") == 0) {
      render = true;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else {
      path = argv[i];
    }
  }
  if (path.empty() && !demo) {
    std::fprintf(stderr,
                 "usage: psnap_run <project.xml> [--frames N] [--render]\n"
                 "       psnap_run --demo\n");
    return 2;
  }

  project::Project project;
  try {
    if (demo) {
      project = demoProject();
    } else {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      project = project::fromXml(text.str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load project: %s\n", e.what());
    return 1;
  }

  vm::PrimitiveTable prims = core::fullPrimitiveTable();
  codegen::registerCodegenPrimitives(prims);
  sched::ThreadManager tm(&blocks::BlockRegistry::standard(), &prims);
  stage::Stage stage(&tm);
  try {
    project.instantiate(stage);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to instantiate project: %s\n", e.what());
    return 1;
  }

  std::printf("project '%s': %zu sprite(s)\n", project.name.c_str(),
              stage.spriteCount());
  stage.greenFlag();
  uint64_t frames = 0;
  while (!tm.idle() && frames < maxFrames) {
    tm.runFrame();
    ++frames;
    if (render) std::printf("%s\n", stage.renderFrame().c_str());
  }
  std::printf("ran %llu frame(s), timer %s\n",
              (unsigned long long)frames,
              strings::formatNumber(tm.timerSeconds()).c_str());

  for (const std::string& line : tm.collectSayLog()) {
    std::printf("say: %s\n", line.c_str());
  }
  if (!tm.errors().empty()) {
    for (const std::string& error : tm.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    return 1;
  }
  if (!render) std::printf("%s", stage.renderFrame().c_str());
  return 0;
}
