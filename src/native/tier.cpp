#include "native/tier.hpp"

#include <cstdlib>
#include <utility>
#include <vector>

#include "native/cache.hpp"
#include "native/loader.hpp"
#include "support/fault.hpp"
#include "workers/worker_pool.hpp"

namespace psnap::native {

using blocks::Ring;
using blocks::RingPtr;
using codegen::KernelShape;
using workers::SubstrateStats;
using workers::TaskGroup;

const char* kernelStateName(KernelState state) {
  switch (state) {
    case KernelState::Cold: return "cold";
    case KernelState::Compiling: return "compiling";
    case KernelState::Ready: return "ready";
    case KernelState::Trusted: return "trusted";
    case KernelState::Downgraded: return "downgraded";
  }
  return "unknown";
}

// --- config -----------------------------------------------------------------

TierConfig& globalTierConfig() {
  static TierConfig config = [] {
    TierConfig c;
    const char* env = std::getenv("PSNAP_NATIVE_TIER");
    if (env && env[0] == '0' && env[1] == '\0') c.enabled = false;
    return c;
  }();
  return config;
}

namespace {
thread_local const TierConfig* tActiveConfig = nullptr;
}  // namespace

const TierConfig& tierConfig() {
  return tActiveConfig ? *tActiveConfig : globalTierConfig();
}

TierScope::TierScope(TierConfig config)
    : config_(config), previous_(tActiveConfig) {
  tActiveConfig = &config_;
}

TierScope::~TierScope() { tActiveConfig = previous_; }

// --- manager ----------------------------------------------------------------

TierManager& TierManager::instance() {
  // Leaked singleton: dispatch records and the kernels they point into
  // must outlive every static-destruction-order race with pool threads.
  static TierManager* manager = new TierManager();
  return *manager;
}

RingKernel* TierManager::lookup(const Ring& ring, KernelShape shape) {
  const uint64_t key = codegen::kernelContentKey(ring, shape);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = byKey_.find(key);
  if (it != byKey_.end()) return it->second;
  kernels_.emplace_back();
  RingKernel* kernel = &kernels_.back();
  kernel->key = key;
  kernel->shape = shape;
  byKey_.emplace(key, kernel);
  return kernel;
}

void TierManager::recordCalls(RingKernel* kernel, const RingPtr& ring,
                              uint64_t count, const TierConfig& cfg) {
  if (!cfg.enabled || !ring) return;
  const uint64_t total =
      kernel->calls.fetch_add(count, std::memory_order_relaxed) + count;
  if (total < cfg.hotThreshold) return;
  KernelState expected = KernelState::Cold;
  if (!kernel->state.compare_exchange_strong(expected, KernelState::Compiling,
                                             std::memory_order_acq_rel)) {
    return;  // already compiling, installed, or retired
  }
  startCompile(kernel, ring, cfg);
}

namespace {

/// Exit-order guard for the async compile path. The function-local static
/// below is constructed on the first async compile — AFTER the kernel
/// cache and the shared pool statics it forces into existence — so its
/// destructor (which joins every in-flight compile group) runs BEFORE
/// either of them is torn down. Without it, a fire-and-forget compile can
/// still be running gcc while static destructors dismantle the world
/// under it: this is the only group in the substrate nobody waits on.
struct InflightCompileJoin {
  ~InflightCompileJoin() { TierManager::instance().joinInflightCompiles(); }
};

}  // namespace

void TierManager::startCompile(RingKernel* kernel, RingPtr ring,
                               const TierConfig& cfg) {
  if (cfg.synchronousCompile) {
    // Synchronous (test) path: the compile runs on the tenant's thread,
    // so its downgrade accounting lands in the tenant's scope.
    compileTask(kernel, ring,
                workers::AsyncStatsHandle::direct(workers::substrateStats()));
    return;
  }
  KernelCache::instance();
  workers::WorkerPool::shared();
  static InflightCompileJoin exitJoin;
  // The compile outlives this frame, and may outlive the tenant: carry a
  // generation-stamped lease on the tenant's scope. While the session is
  // live the downgrade is attributed to it; once the server retires the
  // scope (recycle, restart, drain) the count falls back to the process
  // root ledger instead of touching freed memory.
  workers::AsyncStatsHandle stats = workers::AsyncStatsHandle::capture();
  auto task = [this, kernel, ring, stats](size_t) {
    compileTask(kernel, ring, stats);
  };
  auto group = std::make_shared<TaskGroup>(
      std::vector<TaskGroup::Task>{std::move(task)});
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Prune settled groups so the map stays bounded by in-flight work.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      it = it->second->done() ? inflight_.erase(it) : std::next(it);
    }
    inflight_[kernel] = group;
  }
  try {
    workers::WorkerPool::shared().submit(group);
  } catch (const SubstrateError&) {
    // Pool refused the launch. Revert to Cold so a later threshold
    // crossing retries, bounded by maxCompileAttempts.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(kernel);
    }
    const int attempt =
        kernel->attempts.fetch_add(1, std::memory_order_relaxed) + 1;
    if (attempt >= cfg.maxCompileAttempts) {
      // The refusal is observed on the tenant's thread, so this one IS
      // attributable to the tenant's scope.
      downgradeTo(kernel,
                  workers::AsyncStatsHandle::direct(workers::substrateStats()));
    } else {
      kernel->calls.store(0, std::memory_order_relaxed);
      kernel->state.store(KernelState::Cold, std::memory_order_release);
    }
  }
}

void TierManager::compileTask(RingKernel* kernel, const RingPtr& ring,
                              const workers::AsyncStatsHandle& stats) {
  compiles_.fetch_add(1, std::memory_order_relaxed);
  try {
    // The chaos suite's hook: a NativeCompileFailure here must leave the
    // tier permanently on the interpreter for this ring, with the
    // downgrade accounted — never a crash, never a wrong value.
    fault::inject(fault::Point::NativeCompileFailure);
    codegen::NativeKernelSource source =
        codegen::emitNativeKernel(*ring, kernel->shape);
    std::filesystem::path lib =
        KernelCache::instance().compile(source.sources, kernel->key);
    SharedLibrary library = SharedLibrary::open(lib);
    kernel->paramUsed = source.paramUsed;
    kernel->returnsBool = source.returnsBool;
    switch (kernel->shape) {
      case KernelShape::Unary:
        kernel->unary = library.require<UnaryFn>("psnap_kernel");
        kernel->unaryBatch =
            library.require<UnaryBatchFn>("psnap_kernel_batch");
        // Present only when the compiler had OpenMP; optional.
        kernel->unaryBatchOmp = reinterpret_cast<UnaryBatchFn>(
            library.symbol("psnap_kernel_batch_omp"));
        break;
      case KernelShape::Binary:
        kernel->binary = library.require<BinaryFn>("psnap_kernel2");
        break;
      case KernelShape::Fold:
        kernel->fold = library.require<FoldFn>("psnap_kernel_fold");
        break;
    }
    // Release-publish: pointer writes above happen-before any caller's
    // acquire load that observes Ready.
    kernel->state.store(KernelState::Ready, std::memory_order_release);
    installs_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    // Emission outside the subset, compiler failure, dlopen failure, or
    // the injected fault: this ring shape is interpreter-only forever.
    downgradeTo(kernel, stats);
  }
}

void TierManager::promote(RingKernel* kernel) {
  KernelState expected = KernelState::Ready;
  if (kernel->state.compare_exchange_strong(expected, KernelState::Trusted,
                                            std::memory_order_acq_rel)) {
    promotions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TierManager::downgrade(RingKernel* kernel) {
  downgradeTo(kernel,
              workers::AsyncStatsHandle::direct(workers::substrateStats()));
}

void TierManager::downgradeTo(RingKernel* kernel,
                              const workers::AsyncStatsHandle& stats) {
  if (kernel->state.exchange(KernelState::Downgraded,
                             std::memory_order_acq_rel) !=
      KernelState::Downgraded) {
    downgrades_.fetch_add(1, std::memory_order_relaxed);
    stats.bump(&SubstrateStats::nativeDowngrades);
  }
}

void TierManager::waitForCompile(RingKernel* kernel) {
  std::shared_ptr<TaskGroup> group;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(kernel);
    if (it != inflight_.end()) group = it->second;
  }
  if (group) group->wait();
}

void TierManager::joinInflightCompiles() {
  std::vector<std::shared_ptr<TaskGroup>> groups;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    groups.reserve(inflight_.size());
    for (auto& [kernel, group] : inflight_) groups.push_back(group);
    inflight_.clear();
  }
  // wait() drains unclaimed tasks on this thread, so the join completes
  // even if the pool never picked the runner up.
  for (auto& group : groups) group->wait();
}

TierStats TierManager::stats() const {
  TierStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.kernels = kernels_.size();
  }
  out.compiles = compiles_.load(std::memory_order_relaxed);
  out.installs = installs_.load(std::memory_order_relaxed);
  out.promotions = promotions_.load(std::memory_order_relaxed);
  out.downgrades = downgrades_.load(std::memory_order_relaxed);
  out.nativeItems = nativeItems_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace psnap::native
