// The native tier's kernel build directory.
//
// One persistent per-process directory (temp/psnap-native-<pid>) shared by
// every kernel compile, so Toolchain's content-hash stamp cache hits when
// the same ring shape goes hot twice (two sessions, or a downgraded-then-
// reset test). Sources and outputs are named by the kernel's content key
// (k<hex>.c -> k<hex>.so), which also keeps concurrent compiles of
// *different* kernels from clobbering each other; the tier's state machine
// guarantees at most one in-flight compile per key. Compiles are
// serialized under a mutex anyway — gcc dominates the cost and the
// Toolchain's cached-flag bookkeeping is not concurrent.
//
// The directory is removed when the process exits (static destructor).
// Libraries already dlopen'd stay mapped — see loader.hpp.
#pragma once

#include <filesystem>
#include <mutex>

#include "codegen/programs.hpp"
#include "codegen/toolchain.hpp"

namespace psnap::native {

class KernelCache {
 public:
  static KernelCache& instance();

  /// Compile `kernelSource` ("kernel.c" from emitNativeKernel) into a
  /// shared object named by `key`. Throws CodegenError on compiler
  /// failure (diagnostics included).
  std::filesystem::path compile(const codegen::SourceSet& kernelSource,
                                uint64_t key);

  /// Did the last compile() hit the Toolchain content cache?
  bool lastCompileCached() const { return lastCached_; }

  const std::filesystem::path& directory() const {
    return toolchain_.directory();
  }

  ~KernelCache();

 private:
  KernelCache();

  std::mutex mutex_;
  codegen::Toolchain toolchain_;
  bool lastCached_ = false;
};

}  // namespace psnap::native
