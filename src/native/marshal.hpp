// Value <-> flat double-array marshalling for the native tier.
//
// Kernels compute over raw doubles; the interpreter computes over Values.
// The tier's byte-identical-output contract is enforced here by *refusing*
// to marshal anything whose round trip is not the identity:
//
//   * a parameter-reading kernel serves ValueKind::Number only — numeric
//     *text* ("42") coerces to the same double but must display as text,
//     so it stays on the interpreter;
//   * fold kernels gather a list of Numbers; any other element kind
//     aborts the gather.
//
// byteIdentical() is the validation gate's comparator: bit-equality on
// doubles (distinguishes -0.0 from 0.0 and never equates NaNs — stricter
// than ==, which is the point), plain equality on booleans.
#pragma once

#include <cstdint>
#include <vector>

#include "blocks/value.hpp"

namespace psnap::native {

/// Copy a chunk of Number values into `out`. False (out unspecified) when
/// any element is not a Number.
bool gatherNumbers(const blocks::Value* items, size_t count,
                   std::vector<double>& out);

/// Gather a list value's items. False when the value is not a list or any
/// item is not a Number.
bool gatherNumbers(const blocks::Value& list, std::vector<double>& out);

/// Box a kernel result: Boolean from 0.0/1.0 when the kernel's body was a
/// predicate, Number otherwise.
blocks::Value boxResult(double raw, bool asBool);

/// The validation comparator (see file comment).
bool byteIdentical(const blocks::Value& a, const blocks::Value& b);

}  // namespace psnap::native
