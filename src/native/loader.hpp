// dlopen/dlsym wrapper for the native tier's compiled kernels.
//
// Deliberately leaky: a SharedLibrary is never dlclose()d. Installed
// kernels are raw function pointers published into id-indexed dispatch
// records that live for the process lifetime (see tier.hpp); unloading a
// library while any thread might still be inside — or about to enter — its
// code is a use-after-unmap, and the tier has no quiescence point to prove
// otherwise. A process compiles at most a few dozen distinct kernels, so
// the mapped pages are noise next to the interpreter they replace. (The
// *files* are reclaimed: on Linux the mapping survives the unlink, so the
// kernel cache directory can be removed at process exit regardless.)
#pragma once

#include <filesystem>
#include <string>

namespace psnap::native {

class SharedLibrary {
 public:
  /// dlopen(path, RTLD_NOW | RTLD_LOCAL). Throws CodegenError with the
  /// dlerror() text on failure.
  static SharedLibrary open(const std::filesystem::path& path);

  /// dlsym lookup; nullptr when the symbol is absent.
  void* symbol(const char* name) const;

  /// Typed lookup. Throws CodegenError when the symbol is absent —
  /// a kernel library missing its entry point is a build defect, not a
  /// condition to limp through.
  template <typename Fn>
  Fn require(const char* name) const {
    return reinterpret_cast<Fn>(requireRaw(name));
  }

 private:
  explicit SharedLibrary(void* handle) : handle_(handle) {}
  void* requireRaw(const char* name) const;

  void* handle_ = nullptr;
};

}  // namespace psnap::native
