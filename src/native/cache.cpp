#include "native/cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <system_error>

namespace psnap::native {

namespace fs = std::filesystem;

namespace {

fs::path cacheDirectory() {
  return fs::temp_directory_path() /
         ("psnap-native-" + std::to_string(::getpid()));
}

std::string hexKey(uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

KernelCache& KernelCache::instance() {
  static KernelCache cache;
  return cache;
}

// The Toolchain is handed an explicit directory, so it never owns or
// removes it; this destructor does, at process exit.
KernelCache::KernelCache() : toolchain_(cacheDirectory()) {}

KernelCache::~KernelCache() {
  std::error_code ec;
  fs::remove_all(toolchain_.directory(), ec);  // best effort
}

fs::path KernelCache::compile(const codegen::SourceSet& kernelSource,
                              uint64_t key) {
  const std::string stem = hexKey(key);
  codegen::SourceSet named;
  for (const auto& [name, contents] : kernelSource) {
    (void)name;  // emitNativeKernel emits exactly one TU, "kernel.c"
    named[stem + ".c"] = contents;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  fs::path out = toolchain_.compileShared(named, stem + ".so",
                                          /*openmp=*/true);
  lastCached_ = toolchain_.lastCompileCached();
  return out;
}

}  // namespace psnap::native
