// The native execution tier: hotness accounting, async kernel compiles,
// and id-indexed dispatch records (DESIGN.md "Native tier").
//
// Life of a hot ring:
//
//   Cold ──(calls cross hotThreshold)──► Compiling ──► Ready ──► Trusted
//     │                                      │
//     └──────────────(emit/compile/dlopen fails, fault point fires,
//                     or validation mismatches)──────► Downgraded (final)
//
//   * Cold: every call runs the interpreter; marshalable calls bump the
//     kernel's counter. Crossing the threshold CASes Cold→Compiling and
//     submits ONE compile task to the shared WorkerPool — the hot path
//     never blocks on the compiler; the interpreter keeps serving until
//     the install completes through the task group's CompletionLatch.
//   * Compiling: interpreter serves. If the pool refuses the submit
//     (saturation fault, stopped), the kernel reverts to Cold and retries
//     on a later threshold crossing, up to maxCompileAttempts, then
//     downgrades.
//   * Ready: the function pointers are installed but unproven. The next
//     call runs BOTH native and interpreter and bit-compares
//     (marshal.hpp's byteIdentical); a match promotes to Trusted, any
//     divergence downgrades and the interpreter's result is the one
//     returned — a miscompiled kernel can never leak a wrong value.
//   * Trusted: native serves; the err out-parameter falls back to the
//     interpreter per call so error cases raise their exact typed error.
//   * Downgraded: permanent. Counted once per ring shape in
//     SubstrateStats::nativeDowngrades (kernels are keyed by structural
//     content, so a re-built ring with the same shape shares the record
//     and does not re-count).
//
// Dispatch records are RingKernel entries in a process-lifetime deque;
// raw RingKernel* handles are stable forever (never deleted, libraries
// never dlclose'd — loader.hpp). Per-session control: TierScope installs a
// thread-local TierConfig override (the scheduler wraps each frame, so a
// session with the tier disabled never even counts calls); the
// PSNAP_NATIVE_TIER=0 environment variable is the process-wide kill
// switch.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "blocks/value.hpp"
#include "codegen/native_emit.hpp"
#include "workers/stats.hpp"
#include "workers/task_group.hpp"

namespace psnap::native {

enum class KernelState : uint8_t {
  Cold = 0,
  Compiling,
  Ready,      ///< installed, not yet validated against the interpreter
  Trusted,    ///< validated: native serves
  Downgraded, ///< permanent interpreter fallback
};

const char* kernelStateName(KernelState state);

/// Chunk size from which the OpenMP batch entry point beats the serial
/// one (thread-spawn amortization).
inline constexpr size_t kOmpBatchThreshold = 65536;

using UnaryFn = double (*)(double, int*);
using UnaryBatchFn = long (*)(const double*, double*, long);
using BinaryFn = double (*)(double, double, int*);
using FoldFn = double (*)(const double*, long, int*);

/// One ring shape's dispatch record. Function pointers are written by the
/// compile task before the Ready store (release) and read after an
/// acquire load of state, so a caller that observes Ready/Trusted sees
/// the pointers.
struct RingKernel {
  uint64_t key = 0;
  codegen::KernelShape shape = codegen::KernelShape::Unary;
  std::atomic<KernelState> state{KernelState::Cold};

  // Written by the compile task before publishing Ready.
  bool paramUsed = true;
  bool returnsBool = false;
  UnaryFn unary = nullptr;
  UnaryBatchFn unaryBatch = nullptr;
  /// The `#ifdef _OPENMP` entry point; null when the kernel was built
  /// without OpenMP support.
  UnaryBatchFn unaryBatchOmp = nullptr;
  BinaryFn binary = nullptr;
  FoldFn fold = nullptr;

  std::atomic<uint64_t> calls{0};        ///< hotness counter
  std::atomic<uint64_t> nativeCalls{0};  ///< items served natively
  std::atomic<int> attempts{0};          ///< compile submits tried

  KernelState currentState() const {
    return state.load(std::memory_order_acquire);
  }
};

struct TierConfig {
  bool enabled = true;
  /// Interpreted calls of one ring shape before a compile is requested.
  uint64_t hotThreshold = 1024;
  /// Pool-refused submits tolerated before a permanent downgrade.
  int maxCompileAttempts = 3;
  /// Run the compile inline on the requesting thread (deterministic
  /// tests; production stays async).
  bool synchronousCompile = false;
};

/// The process default (PSNAP_NATIVE_TIER=0 flips enabled off once, at
/// first use). Mutating it affects threads with no TierScope installed.
TierConfig& globalTierConfig();

/// The active config: the innermost TierScope on this thread, else the
/// global default.
const TierConfig& tierConfig();

/// RAII thread-local config override (per-session tier control: the
/// scheduler installs one per frame, the chaos tests one per scenario).
class TierScope {
 public:
  explicit TierScope(TierConfig config);
  ~TierScope();

  TierScope(const TierScope&) = delete;
  TierScope& operator=(const TierScope&) = delete;

 private:
  TierConfig config_;
  const TierConfig* previous_;
};

/// Process-wide tier counters (bench/diagnostic surface; the per-tenant
/// downgrade stat lives in SubstrateStats).
struct TierStats {
  uint64_t kernels = 0;       ///< dispatch records created
  uint64_t compiles = 0;      ///< compile tasks that ran
  uint64_t installs = 0;      ///< kernels that reached Ready
  uint64_t promotions = 0;    ///< Ready → Trusted validations passed
  uint64_t downgrades = 0;    ///< kernels retired to the interpreter
  uint64_t nativeItems = 0;   ///< items served by native code
};

class TierManager {
 public:
  static TierManager& instance();

  /// The dispatch record for this ring shape (created on first sight).
  /// The pointer is valid for the process lifetime. Never throws —
  /// ineligible rings get a record too; their first compile attempt
  /// rejects in the emitter and caches the rejection as Downgraded.
  RingKernel* lookup(const blocks::Ring& ring, codegen::KernelShape shape);

  /// Bump the hotness counter by `count` calls; crossing the threshold
  /// requests one async compile (or an inline one under
  /// cfg.synchronousCompile). `ring` is retained by the compile task.
  void recordCalls(RingKernel* kernel, const blocks::RingPtr& ring,
                   uint64_t count, const TierConfig& cfg);

  /// Validation passed: publish Trusted (no-op unless currently Ready).
  void promote(RingKernel* kernel);

  /// Permanent downgrade; the first call per kernel counts in TierStats
  /// and in the calling thread's SubstrateStats::nativeDowngrades.
  void downgrade(RingKernel* kernel);

  /// Block until the in-flight compile task for `kernel` (if any) has
  /// settled. Test hook — production code never waits on the tier.
  void waitForCompile(RingKernel* kernel);

  /// Join every in-flight compile group (the exit-order guard; see
  /// tier.cpp). Safe to call any time.
  void joinInflightCompiles();

  TierStats stats() const;
  void noteNativeItems(uint64_t n) {
    nativeItems_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  TierManager() = default;

  void startCompile(RingKernel* kernel, blocks::RingPtr ring,
                    const TierConfig& cfg);
  void compileTask(RingKernel* kernel, const blocks::RingPtr& ring,
                   const workers::AsyncStatsHandle& stats);
  void downgradeTo(RingKernel* kernel,
                   const workers::AsyncStatsHandle& stats);

  mutable std::mutex mutex_;
  std::deque<RingKernel> kernels_;                    // stable addresses
  std::unordered_map<uint64_t, RingKernel*> byKey_;
  // In-flight compile groups, for waitForCompile(); settled entries are
  // pruned opportunistically.
  std::unordered_map<RingKernel*, std::shared_ptr<workers::TaskGroup>>
      inflight_;

  std::atomic<uint64_t> compiles_{0};
  std::atomic<uint64_t> installs_{0};
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> downgrades_{0};
  std::atomic<uint64_t> nativeItems_{0};
};

}  // namespace psnap::native
