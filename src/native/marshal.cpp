#include "native/marshal.hpp"

#include <cstring>

namespace psnap::native {

using blocks::Value;

bool gatherNumbers(const Value* items, size_t count,
                   std::vector<double>& out) {
  out.clear();
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (!items[i].isNumber()) return false;
    out.push_back(items[i].asNumber());
  }
  return true;
}

bool gatherNumbers(const Value& list, std::vector<double>& out) {
  if (!list.isList()) return false;
  const auto& items = list.asList()->items();
  return gatherNumbers(items.data(), items.size(), out);
}

Value boxResult(double raw, bool asBool) {
  if (asBool) return Value(raw != 0.0);
  return Value(raw);
}

bool byteIdentical(const Value& a, const Value& b) {
  if (a.isNumber() && b.isNumber()) {
    uint64_t abits, bbits;
    const double ad = a.asNumber(), bd = b.asNumber();
    std::memcpy(&abits, &ad, 8);
    std::memcpy(&bbits, &bd, 8);
    return abits == bbits;
  }
  if (a.isBoolean() && b.isBoolean()) return a.asBoolean() == b.asBoolean();
  return false;
}

}  // namespace psnap::native
