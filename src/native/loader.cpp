#include "native/loader.hpp"

#include <dlfcn.h>

#include "support/error.hpp"

namespace psnap::native {

SharedLibrary SharedLibrary::open(const std::filesystem::path& path) {
  void* handle = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) {
    const char* why = ::dlerror();
    throw CodegenError("dlopen failed for " + path.string() + ": " +
                       (why ? why : "unknown error"));
  }
  return SharedLibrary(handle);
}

void* SharedLibrary::symbol(const char* name) const {
  return ::dlsym(handle_, name);
}

void* SharedLibrary::requireRaw(const char* name) const {
  void* sym = ::dlsym(handle_, name);
  if (!sym) {
    throw CodegenError(std::string("kernel library is missing symbol ") +
                       name);
  }
  return sym;
}

}  // namespace psnap::native
