// The cooperative scheduler: Snap!'s ThreadManager.
//
// Snap! executes all active scripts on a single browser thread by
// multi-tasking: each frame, every runnable process gets a time slice, and
// processes yield voluntarily (once per loop iteration, at waits, and at
// the parallel blocks' polling points). The *frame counter* is the
// "timestep" unit the paper's concession-stand timer displays (Fig. 7/9/10).
//
// The scheduler also models the paper's observation that browser
// interference inflates wall-clock timesteps: the sequential concession
// stand needs 9 ideal timesteps but was observed at 12 because "other
// tasks that also execute in the browser" stole frames. InterferenceModel
// reproduces this deterministically: selected frames are consumed entirely
// by the interfering task and no user process runs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "native/tier.hpp"
#include "vm/process.hpp"

namespace psnap::sched {

/// Deterministic stand-in for "other tasks in the browser": every
/// `period`-th frame starting at `offset` is stolen and runs no user
/// process. Disabled when period == 0.
///
/// The defaults (period 3, offset 4) reproduce the paper's measurement:
/// a 9-frame sequential workload observes frames 4, 7, and 10 stolen and
/// completes at timestep 12, while the 3-frame parallel workload finishes
/// before the first theft and still reads 3.
struct InterferenceModel {
  uint64_t period = 0;
  uint64_t offset = 4;

  static InterferenceModel none() { return {0, 0}; }
  static InterferenceModel paperDefault() { return {3, 4}; }

  bool steals(uint64_t frame) const {
    return period != 0 && frame >= offset && (frame - offset) % period == 0;
  }
};

/// Sprite/clone services the scheduler delegates to the stage (so sched
/// does not depend on the stage module). All optional: without a stage,
/// clones are unavailable and broadcasts have no listeners.
struct StageHooks {
  /// Clone `original` (or the sprite named `targetName`); the stage starts
  /// the clone's when-I-start-as-a-clone scripts via spawnScript.
  std::function<vm::SpriteApi*(vm::SpriteApi*, const std::string&)>
      cloneSprite;
  /// Remove a clone sprite from the stage.
  std::function<void(vm::SpriteApi*)> destroyClone;
  /// Start all listeners of a broadcast; returns their process ids.
  std::function<std::vector<uint64_t>(const std::string&)> startListeners;
};

class ThreadManager : public vm::Host {
 public:
  ThreadManager(const blocks::BlockRegistry* registry,
                const vm::PrimitiveTable* primitives);

  // --- configuration ------------------------------------------------------
  void setInterference(InterferenceModel model) { interference_ = model; }
  const InterferenceModel& interference() const { return interference_; }
  /// Virtual seconds added per frame (default 1.0: one timestep unit).
  void setSecondsPerFrame(double seconds) { secondsPerFrame_ = seconds; }
  /// Interpreter steps each process may take per frame.
  void setSliceSteps(size_t steps) { sliceSteps_ = steps; }
  void setMaxWorkers(size_t workers) { maxWorkers_ = workers; }
  /// Per-session native-tier control: with the tier off, rings compiled
  /// by this manager's frames never count hotness and never go native
  /// (a TierScope wraps each frame; see native/tier.hpp).
  void setNativeTier(bool enabled) { nativeTier_.enabled = enabled; }
  bool nativeTier() const { return nativeTier_.enabled; }
  void setStageHooks(StageHooks hooks) { hooks_ = std::move(hooks); }
  /// Parent every process spawned from now on under `root`: each spawn
  /// gets a fresh child CancelToken, so tripping the root (a tenant
  /// shed, a deadline, a watchdog) cancels this manager's processes —
  /// and, through the per-process tokens the parallel blocks chain onto,
  /// their in-flight pool work — without touching any other manager.
  void setDefaultCancelToken(CancelTokenPtr root) {
    defaultToken_ = std::move(root);
  }
  const CancelTokenPtr& defaultCancelToken() const { return defaultToken_; }

  // --- process management --------------------------------------------------
  /// The handle returned by spawn*: the process pointer is valid until the
  /// process finishes and is reaped; the status outlives it and receives
  /// the final result/error.
  struct SpawnResult {
    vm::Process* process;
    std::shared_ptr<const vm::ProcessStatus> status;
  };

  /// Start a process running `script`; it receives its first slice on the
  /// *next* frame (Snap! starts scripts at the following scheduler pass).
  SpawnResult spawnScript(blocks::ScriptPtr script, blocks::EnvPtr env,
                          vm::SpriteApi* sprite = nullptr);
  /// Start a process evaluating a reporter expression.
  SpawnResult spawnExpression(blocks::BlockPtr expression,
                              blocks::EnvPtr env,
                              vm::SpriteApi* sprite = nullptr);

  /// Convenience: spawn an expression, run until idle, return its value.
  /// Throws Error if the process errored.
  blocks::Value evaluate(blocks::BlockPtr expression, blocks::EnvPtr env,
                         vm::SpriteApi* sprite = nullptr,
                         uint64_t maxFrames = 1'000'000);

  /// Stop every process bound to `sprite` (used when a clone dies).
  void stopProcessesFor(vm::SpriteApi* sprite);
  /// Stop everything (the red stop button).
  void stopAll();

  // --- the frame loop ------------------------------------------------------
  /// Execute one frame: wake/fail parked processes whose completion or
  /// cancellation arrived, then (unless stolen by interference) give every
  /// runnable process one slice; then advance the virtual clock and reap.
  /// Parked processes consume no slices and no frames.
  void runFrame();
  /// Run frames until no process is runnable or parked; returns frames
  /// executed. When every live process is parked, sleeps on the wake hub
  /// instead of spinning — parked waits execute zero frames. Throws
  /// TimeoutError after `maxFrames` frames-plus-wait-rounds (runaway
  /// guard), naming the processes still runnable or parked.
  uint64_t runUntilIdle(uint64_t maxFrames = 1'000'000);

  /// Wake parked processes whose completion callback fired, and fail (with
  /// the token's typed reason, attributed to the process) parked processes
  /// whose cancel token tripped — the deadline watchdog for processes that
  /// consume no frames.
  void pollParked();

  bool idle() const;
  /// Any process currently Ready?
  bool hasReadyWork() const;
  /// Upper bound for one hub wait while everything live is parked: the
  /// nearest deadline over parked processes' tokens (parent chains
  /// included), clamped to [0.1ms, 50ms] so an un-notified external
  /// cancel is still honoured promptly. The serving layer uses this to
  /// bound its own hub waits across tenants.
  double parkedWaitBound() const;
  uint64_t frameCount() const { return frame_; }
  size_t runnableCount() const;
  size_t parkedCount() const;

  // --- resumable clock state ----------------------------------------------
  /// The virtual clock, as checkpointable state. A supervised restart
  /// restores this into a fresh manager before the workload's resume hook
  /// re-spawns its scripts, so `timer`-reading scripts and frame-count
  /// accounting continue from the checkpoint instead of rewinding to 0.
  struct ClockState {
    uint64_t frame = 0;
    double now = 0;
    double timerStart = 0;
  };
  ClockState clockState() const { return {frame_, now_, timerStart_}; }
  void restoreClockState(const ClockState& state) {
    frame_ = state.frame;
    now_ = state.now;
    timerStart_ = state.timerStart;
  }

  /// One failed process, with scheduler-side attribution. The log is
  /// capped at kMaxRecordedErrors entries (a crash-looping spawner must
  /// not grow the scheduler without bound); droppedErrorCount() says how
  /// many were discarded past the cap.
  struct RecordedError {
    uint64_t processId = 0;
    std::string opcode;  ///< the process's root opcode
    std::string message;
    ErrorClass errorClass = ErrorClass::Generic;
  };
  static constexpr size_t kMaxRecordedErrors = 64;

  /// Errors of processes that failed, in completion order, each prefixed
  /// with "process <id> (<root opcode>): ". Capped like recordedErrors().
  const std::vector<std::string>& errors() const { return errors_; }
  /// The same failures in structured form.
  const std::vector<RecordedError>& recordedErrors() const {
    return recordedErrors_;
  }
  /// Errors discarded because the log was full.
  size_t droppedErrorCount() const { return droppedErrors_; }

  /// Everything the capped log holds, moved out in one drain: the
  /// structured entries plus how many were dropped past the cap. The log
  /// and the dropped count reset to empty, so a long-lived caller (the
  /// serving layer polls this per session) sees each failure exactly once
  /// and the cap's capacity is freed for the next errors.
  struct ErrorDrain {
    std::vector<RecordedError> entries;
    size_t dropped = 0;
  };
  ErrorDrain drainErrors();
  /// Say-log of every process, in spawn order (for assertions).
  std::vector<std::string> collectSayLog() const;

  /// Look up a process by id (nullptr when finished processes have been
  /// dropped or the id is unknown).
  vm::Process* findProcess(uint64_t id);

  // --- vm::Host -------------------------------------------------------------
  double nowSeconds() const override { return now_; }
  void resetTimer() override { timerStart_ = now_; }
  double timerSeconds() const override { return now_ - timerStart_; }
  uint64_t broadcast(const std::string& message) override;
  bool broadcastFinished(uint64_t token) const override;
  vm::SpriteApi* makeClone(vm::SpriteApi* original,
                           const std::string& targetName) override;
  void removeClone(vm::SpriteApi* clone) override;
  std::shared_ptr<const vm::ProcessStatus> launchScript(
      blocks::ScriptPtr script, blocks::EnvPtr env,
      vm::SpriteApi* sprite) override;
  size_t maxWorkers() const override { return maxWorkers_; }
  vm::WakeHubPtr wakeHub() const override { return hub_; }

  /// Share a wake hub (the serving layer gives all its sessions one hub
  /// so any tenant's completion can rouse the server's frame loop).
  void setWakeHub(vm::WakeHubPtr hub) {
    if (hub) hub_ = std::move(hub);
  }

 private:
  struct Task {
    std::unique_ptr<vm::Process> process;
    std::shared_ptr<vm::ProcessStatus> status;
    vm::SpriteApi* sprite = nullptr;
  };

  Task& spawn(vm::SpriteApi* sprite);
  void reapFinished();
  void recordError(const vm::Process& process);

  const blocks::BlockRegistry* registry_;
  const vm::PrimitiveTable* primitives_;

  std::deque<Task> tasks_;
  std::vector<vm::SpriteApi*> clonesToRemove_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> broadcastWaits_;
  uint64_t nextBroadcastToken_ = 1;

  InterferenceModel interference_ = InterferenceModel::none();
  double secondsPerFrame_ = 1.0;
  size_t sliceSteps_ = vm::Process::kDefaultSliceSteps;
  size_t maxWorkers_ = 4;
  /// This manager's tier override, installed around each frame. Starts
  /// from the process default so PSNAP_NATIVE_TIER=0 still wins.
  native::TierConfig nativeTier_ = native::globalTierConfig();
  StageHooks hooks_;
  CancelTokenPtr defaultToken_;
  vm::WakeHubPtr hub_;

  uint64_t frame_ = 0;
  double now_ = 0;
  double timerStart_ = 0;
  std::vector<std::string> errors_;
  std::vector<RecordedError> recordedErrors_;
  size_t droppedErrors_ = 0;
  std::vector<std::string> finishedSayLog_;
};

}  // namespace psnap::sched
