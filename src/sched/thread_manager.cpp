#include "sched/thread_manager.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "workers/stats.hpp"

namespace psnap::sched {

using blocks::BlockPtr;
using blocks::EnvPtr;
using blocks::ScriptPtr;
using vm::Process;
using vm::ProcessStatus;
using vm::SpriteApi;

ThreadManager::ThreadManager(const blocks::BlockRegistry* registry,
                             const vm::PrimitiveTable* primitives)
    : registry_(registry),
      primitives_(primitives),
      hub_(std::make_shared<vm::WakeHub>()) {
  if (!registry_ || !primitives_) {
    throw Error("ThreadManager requires a registry and primitive table");
  }
}

ThreadManager::Task& ThreadManager::spawn(SpriteApi* sprite) {
  Task task;
  task.process = std::make_unique<Process>(registry_, primitives_, this,
                                           sprite);
  if (defaultToken_) {
    // A fresh child per process: the root cancels them all, while one
    // process's own trip never back-propagates to its siblings.
    task.process->setCancelToken(CancelToken::create(defaultToken_));
  }
  task.status = std::make_shared<ProcessStatus>();
  task.sprite = sprite;
  tasks_.push_back(std::move(task));
  return tasks_.back();
}

ThreadManager::SpawnResult ThreadManager::spawnScript(ScriptPtr script,
                                                      EnvPtr env,
                                                      SpriteApi* sprite) {
  Task& task = spawn(sprite);
  task.process->startScript(std::move(script), std::move(env));
  return {task.process.get(), task.status};
}

ThreadManager::SpawnResult ThreadManager::spawnExpression(BlockPtr expression,
                                                          EnvPtr env,
                                                          SpriteApi* sprite) {
  Task& task = spawn(sprite);
  task.process->startExpression(std::move(expression), std::move(env));
  return {task.process.get(), task.status};
}

blocks::Value ThreadManager::evaluate(BlockPtr expression, EnvPtr env,
                                      SpriteApi* sprite,
                                      uint64_t maxFrames) {
  SpawnResult handle =
      spawnExpression(std::move(expression), std::move(env), sprite);
  runUntilIdle(maxFrames);
  if (handle.status->errored) {
    throw Error("evaluate failed: " + handle.status->error);
  }
  return handle.status->result;
}

void ThreadManager::stopProcessesFor(SpriteApi* sprite) {
  for (Task& task : tasks_) {
    if (task.sprite == sprite &&
        (task.process->runnable() || task.process->blocked())) {
      task.process->terminate();
    }
  }
}

void ThreadManager::stopAll() {
  for (Task& task : tasks_) {
    if (task.process->runnable() || task.process->blocked()) {
      task.process->terminate();
    }
  }
}

void ThreadManager::pollParked() {
  bool failedAny = false;
  for (Task& task : tasks_) {
    Process& process = *task.process;
    if (!process.blocked()) continue;
    if (process.wakeReady()) {
      process.unpark();
      continue;
    }
    // Parked processes consume no frames, so the frame loop never reaches
    // their cancellation checkpoints — observe the token here. A trip
    // fails the process with its typed reason, and reapFinished records
    // it under the process's own id and opcode (not the frame loop's).
    process.failIfCancelled();
    failedAny |= process.finished();
  }
  // Record and reap deadline failures immediately: callers that skip the
  // frame loop for fully-parked tenants (the serving layer) still see the
  // failure in the error log.
  if (failedAny) reapFinished();
}

void ThreadManager::runFrame() {
  // Per-session native-tier config: block handlers that compile rings
  // during this frame's slices snapshot this scope's config, so a
  // tier-disabled session stays interpreter-only however hot its rings.
  native::TierScope tierScope(nativeTier_);
  ++frame_;
  pollParked();
  if (!interference_.steals(frame_)) {
    // Processes spawned during this frame run starting next frame, so only
    // iterate over the tasks that existed when the frame began.
    const size_t count = tasks_.size();
    for (size_t i = 0; i < count; ++i) {
      Task& task = tasks_[i];
      if (!task.process->runnable()) continue;
      task.process->runSlice(sliceSteps_);
      // A handler that parked on an operation already complete gets its
      // wake functor fired inline during registration; finish the wake in
      // the same frame instead of charging one frame per completed park.
      while (task.process->blocked() && task.process->wakeReady()) {
        task.process->unpark();
        task.process->runSlice(sliceSteps_);
      }
    }
  }
  now_ += secondsPerFrame_;
  reapFinished();
}

double ThreadManager::parkedWaitBound() const {
  // The hub wait must return in time for the nearest parked deadline
  // (parent chains included), and stay short enough that an external
  // stopAll()/cancel — which does not notify the hub — is honoured
  // promptly. 50ms is invisible next to a frame's work but bounds the
  // worst-case latency of un-notified cancellation.
  constexpr double kMaxWait = 0.05;
  constexpr double kMinWait = 0.0001;
  double bound = kMaxWait;
  for (const Task& task : tasks_) {
    if (!task.process->blocked()) continue;
    const CancelTokenPtr& token = task.process->cancelToken();
    if (token) bound = std::min(bound, token->remainingSeconds());
  }
  return std::max(bound, kMinWait);
}

uint64_t ThreadManager::runUntilIdle(uint64_t maxFrames) {
  uint64_t executed = 0;
  uint64_t budgetUsed = 0;  // frames plus parked wait rounds
  while (!idle()) {
    if (budgetUsed >= maxFrames) {
      // A structured timeout with per-script attribution: name the
      // processes still runnable or parked when the budget elapsed, so
      // "which script is spinning" is in the error, not a debugger
      // session.
      constexpr size_t kMaxNamed = 8;
      std::string who;
      size_t named = 0;
      for (const Task& task : tasks_) {
        const bool parked = task.process->blocked();
        if (!task.process->runnable() && !parked) continue;
        if (named == kMaxNamed) {
          who += ", …";
          break;
        }
        if (named > 0) who += ", ";
        who += "process " + std::to_string(task.process->id()) + " (" +
               task.process->rootOpcode() + ")";
        if (parked) who += " [parked]";
        ++named;
      }
      workers::substrateStats().bump(&workers::SubstrateStats::timeouts);
      throw TimeoutError("scheduler exceeded its frame budget (" +
                         std::to_string(maxFrames) +
                         " frames); still runnable: " + who);
    }
    if (!hasReadyWork() && parkedCount() > 0) {
      // Everything live is parked: sleep on the hub instead of burning
      // frames. Snapshot-then-recheck makes the wait race-free — a wake
      // landing between pollParked() and waitChanged() bumps the stamp
      // and the wait returns immediately. Zero frames are charged here;
      // the wake itself costs one frame (the slice that resumes the
      // handler), making parked frame accounting structural.
      const uint64_t seen = hub_->snapshot();
      pollParked();
      if (!hasReadyWork() && parkedCount() > 0) {
        hub_->waitChanged(seen, parkedWaitBound());
        pollParked();  // reaps any process failed by its deadline
      }
      ++budgetUsed;
      continue;
    }
    runFrame();
    ++executed;
    ++budgetUsed;
  }
  return executed;
}

bool ThreadManager::idle() const {
  return std::none_of(tasks_.begin(), tasks_.end(), [](const Task& task) {
    return task.process->runnable() || task.process->blocked();
  });
}

bool ThreadManager::hasReadyWork() const {
  return std::any_of(tasks_.begin(), tasks_.end(), [](const Task& task) {
    return task.process->runnable();
  });
}

size_t ThreadManager::runnableCount() const {
  return static_cast<size_t>(
      std::count_if(tasks_.begin(), tasks_.end(), [](const Task& task) {
        return task.process->runnable();
      }));
}

size_t ThreadManager::parkedCount() const {
  return static_cast<size_t>(
      std::count_if(tasks_.begin(), tasks_.end(), [](const Task& task) {
        return task.process->blocked();
      }));
}

std::vector<std::string> ThreadManager::collectSayLog() const {
  std::vector<std::string> log = finishedSayLog_;
  for (const Task& task : tasks_) {
    log.insert(log.end(), task.process->sayLog().begin(),
               task.process->sayLog().end());
  }
  return log;
}

Process* ThreadManager::findProcess(uint64_t id) {
  for (Task& task : tasks_) {
    if (task.process->id() == id) return task.process.get();
  }
  return nullptr;
}

uint64_t ThreadManager::broadcast(const std::string& message) {
  uint64_t token = nextBroadcastToken_++;
  std::vector<uint64_t> listeners;
  if (hooks_.startListeners) {
    listeners = hooks_.startListeners(message);
  }
  broadcastWaits_.emplace(token, std::move(listeners));
  return token;
}

bool ThreadManager::broadcastFinished(uint64_t token) const {
  auto it = broadcastWaits_.find(token);
  if (it == broadcastWaits_.end()) return true;
  for (uint64_t id : it->second) {
    for (const Task& task : tasks_) {
      if (task.process->id() == id &&
          (task.process->runnable() || task.process->blocked())) {
        return false;
      }
    }
  }
  return true;
}

SpriteApi* ThreadManager::makeClone(SpriteApi* original,
                                    const std::string& targetName) {
  if (!hooks_.cloneSprite) return nullptr;
  return hooks_.cloneSprite(original, targetName);
}

void ThreadManager::removeClone(SpriteApi* clone) {
  if (!clone) return;
  stopProcessesFor(clone);
  clonesToRemove_.push_back(clone);
}

void ThreadManager::recordError(const Process& process) {
  if (errors_.size() >= kMaxRecordedErrors) {
    ++droppedErrors_;
    return;
  }
  RecordedError record;
  record.processId = process.id();
  record.opcode = process.rootOpcode();
  record.message = process.error();
  record.errorClass = process.errorClass();
  errors_.push_back("process " + std::to_string(record.processId) + " (" +
                    record.opcode + "): " + record.message);
  recordedErrors_.push_back(std::move(record));
}

ThreadManager::ErrorDrain ThreadManager::drainErrors() {
  ErrorDrain drain;
  drain.entries = std::move(recordedErrors_);
  drain.dropped = droppedErrors_;
  recordedErrors_.clear();
  errors_.clear();
  droppedErrors_ = 0;
  return drain;
}

std::shared_ptr<const ProcessStatus> ThreadManager::launchScript(
    ScriptPtr script, EnvPtr env, SpriteApi* sprite) {
  Task& task = spawn(sprite);
  task.process->startScript(std::move(script), std::move(env));
  return task.status;
}

void ThreadManager::reapFinished() {
  for (Task& task : tasks_) {
    if (!task.process->finished() || task.status->done) continue;
    task.status->result = task.process->result();
    task.status->done = true;
    if (task.process->errored()) {
      task.status->errored = true;
      task.status->error = task.process->error();
      recordError(*task.process);
    }
  }
  // Drop finished tasks (their status objects stay alive through the
  // shared_ptr held by whoever launched them).
  while (!tasks_.empty() && tasks_.front().process->finished()) {
    finishedSayLog_.insert(finishedSayLog_.end(),
                           tasks_.front().process->sayLog().begin(),
                           tasks_.front().process->sayLog().end());
    tasks_.pop_front();
  }
  // Physically remove clones whose removal was requested this frame.
  if (!clonesToRemove_.empty() && hooks_.destroyClone) {
    for (SpriteApi* clone : clonesToRemove_) {
      // Guard: only destroy once no runnable process references the clone.
      stopProcessesFor(clone);
      hooks_.destroyClone(clone);
    }
  }
  clonesToRemove_.clear();
}

}  // namespace psnap::sched
