// The code-mapping blocks of paper Sec. 6.2: `map to language …` selects
// the target mapping for the running process, and `code of (ring)` reports
// the translated text — the "code of" block of Fig. 16.
#pragma once

#include "vm/process.hpp"

namespace psnap::codegen {

/// Register doMapToCode and reportMappedCode into `table`.
void registerCodegenPrimitives(vm::PrimitiveTable& table);

}  // namespace psnap::codegen
