#include "codegen/toolchain.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <system_error>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::codegen {

namespace fs = std::filesystem;

namespace {

std::string readFile(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int runShell(const std::string& command) { return std::system(command.c_str()); }

/// FNV-1a 64 over the source set plus the compile flags: the content key
/// the compile cache is addressed by.
uint64_t hashSources(const SourceSet& sources, const std::string& flags) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto eat = [&h](const std::string& text) {
    for (unsigned char c : text) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;  // field separator
    h *= 0x100000001b3ull;
  };
  eat(flags);
  for (const auto& [name, contents] : sources) {
    eat(name);
    eat(contents);
  }
  return h;
}

std::atomic<uint64_t> gCacheHits{0};

}  // namespace

Toolchain::Toolchain(fs::path directory) : dir_(std::move(directory)) {
  if (dir_.empty()) {
    dir_ = fs::temp_directory_path() / "psnap-codegen";
    // Compiles run concurrently on pool workers at JIT time, so the
    // uniquifier must be atomic.
    static std::atomic<int> counter{0};
    dir_ /= "work-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
    ownsDir_ = true;
  }
  fs::create_directories(dir_);
}

Toolchain::~Toolchain() {
  if (!ownsDir_) return;
  std::error_code ec;
  fs::remove_all(dir_, ec);  // best effort: never throw from a destructor
}

bool Toolchain::compilerAvailable() {
  static const bool available =
      runShell("gcc --version > /dev/null 2>&1") == 0;
  return available;
}

uint64_t Toolchain::cacheHits() {
  return gCacheHits.load(std::memory_order_relaxed);
}

void Toolchain::writeSources(const SourceSet& sources) {
  for (const auto& [name, contents] : sources) {
    std::ofstream out(dir_ / name);
    if (!out) throw CodegenError("cannot write " + (dir_ / name).string());
    out << contents;
  }
}

fs::path Toolchain::compileWith(const SourceSet& sources,
                                const std::string& outputName,
                                const std::string& flags,
                                uint64_t sourceHash) {
  if (!compilerAvailable()) {
    throw CodegenError("no C compiler available on this host");
  }
  const fs::path output = dir_ / outputName;
  const fs::path stamp = dir_ / (outputName + ".srchash");
  const std::string hashText = std::to_string(sourceHash);
  std::error_code ec;
  if (fs::exists(output, ec) && readFile(stamp) == hashText) {
    lastCompileCached_ = true;
    gCacheHits.fetch_add(1, std::memory_order_relaxed);
    return output;
  }
  lastCompileCached_ = false;
  writeSources(sources);
  const fs::path log = dir_ / (outputName + ".compile.log");
  std::string command = "cd '" + dir_.string() + "' && gcc " + flags;
  for (const auto& [name, contents] : sources) {
    if (strings::endsWith(name, ".c")) command += " " + name;
  }
  command += " -o " + outputName + " -lm > '" + log.string() + "' 2>&1";
  if (runShell(command) != 0) {
    throw CodegenError("compilation failed:\n" + readFile(log));
  }
  std::ofstream out(stamp);
  out << hashText;
  return output;
}

fs::path Toolchain::compile(const SourceSet& sources,
                            const std::string& binaryName, bool openmp) {
  std::string flags = "-O2 -Wall";
  if (openmp) flags += " -fopenmp";
  return compileWith(sources, binaryName, flags,
                     hashSources(sources, "exe|" + flags));
}

fs::path Toolchain::compileShared(const SourceSet& sources,
                                  const std::string& libraryName,
                                  bool openmp) {
  // -ffp-contract=off: no fused multiply-add, so kernel arithmetic rounds
  // exactly like the interpreter's one-operation-at-a-time evaluation.
  std::string flags = "-O2 -shared -fPIC -ffp-contract=off";
  if (openmp) flags += " -fopenmp";
  return compileWith(sources, libraryName, flags,
                     hashSources(sources, "so|" + flags));
}

RunResult Toolchain::run(const fs::path& binary, const std::string& stdinText,
                         const std::string& envPrefix) {
  const fs::path outFile = dir_ / (binary.filename().string() + ".out");
  const fs::path inFile = dir_ / (binary.filename().string() + ".in");
  {
    std::ofstream in(inFile);
    in << stdinText;
  }
  std::string command;
  if (!envPrefix.empty()) command += envPrefix + " ";
  command += "'" + binary.string() + "' < '" + inFile.string() + "' > '" +
             outFile.string() + "' 2>&1";
  RunResult result;
  int status = runShell(command);
  result.exitCode = status;
  result.output = readFile(outFile);
  return result;
}

RunResult Toolchain::compileAndRun(const SourceSet& sources,
                                   const std::string& binaryName, bool openmp,
                                   const std::string& stdinText,
                                   const std::string& envPrefix) {
  return run(compile(sources, binaryName, openmp), stdinText, envPrefix);
}

}  // namespace psnap::codegen
