#include "codegen/toolchain.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::codegen {

namespace fs = std::filesystem;

namespace {

std::string readFile(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int runShell(const std::string& command) { return std::system(command.c_str()); }

}  // namespace

Toolchain::Toolchain(fs::path directory) : dir_(std::move(directory)) {
  if (dir_.empty()) {
    dir_ = fs::temp_directory_path() / "psnap-codegen";
    static int counter = 0;
    dir_ /= "work-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++);
  }
  fs::create_directories(dir_);
}

bool Toolchain::compilerAvailable() {
  static const bool available =
      runShell("gcc --version > /dev/null 2>&1") == 0;
  return available;
}

void Toolchain::writeSources(const SourceSet& sources) {
  for (const auto& [name, contents] : sources) {
    std::ofstream out(dir_ / name);
    if (!out) throw CodegenError("cannot write " + (dir_ / name).string());
    out << contents;
  }
}

fs::path Toolchain::compile(const SourceSet& sources,
                            const std::string& binaryName, bool openmp) {
  if (!compilerAvailable()) {
    throw CodegenError("no C compiler available on this host");
  }
  writeSources(sources);
  const fs::path binary = dir_ / binaryName;
  const fs::path log = dir_ / (binaryName + ".compile.log");
  std::string command = "cd '" + dir_.string() + "' && gcc -O2 -Wall";
  if (openmp) command += " -fopenmp";
  for (const auto& [name, contents] : sources) {
    if (strings::endsWith(name, ".c")) command += " " + name;
  }
  command += " -o " + binaryName + " -lm > '" + log.string() + "' 2>&1";
  if (runShell(command) != 0) {
    throw CodegenError("compilation failed:\n" + readFile(log));
  }
  return binary;
}

RunResult Toolchain::run(const fs::path& binary, const std::string& stdinText,
                         const std::string& envPrefix) {
  const fs::path outFile = dir_ / (binary.filename().string() + ".out");
  const fs::path inFile = dir_ / (binary.filename().string() + ".in");
  {
    std::ofstream in(inFile);
    in << stdinText;
  }
  std::string command;
  if (!envPrefix.empty()) command += envPrefix + " ";
  command += "'" + binary.string() + "' < '" + inFile.string() + "' > '" +
             outFile.string() + "' 2>&1";
  RunResult result;
  int status = runShell(command);
  result.exitCode = status;
  result.output = readFile(outFile);
  return result;
}

RunResult Toolchain::compileAndRun(const SourceSet& sources,
                                   const std::string& binaryName, bool openmp,
                                   const std::string& stdinText,
                                   const std::string& envPrefix) {
  return run(compile(sources, binaryName, openmp), stdinText, envPrefix);
}

}  // namespace psnap::codegen
