// Code mappings: Snap!'s experimental block→text translation feature
// (paper Sec. 6.2, Fig. 15).
//
// A CodeMapping holds, per opcode, a template string in which <#1>, <#2>,
// … mark where the translations of the block's input slots are spliced;
// all other characters are copied verbatim — exactly the placeholder
// convention of the paper. Mappings exist for C, OpenMP C, JavaScript,
// and Python ("Currently, mappings exist for JavaScript, C, Smalltalk,
// and Python"); users can register additional templates per opcode, the
// analog of "creating the corresponding mapping block".
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "blocks/opcodes.hpp"
#include "blocks/value.hpp"

namespace psnap::codegen {

/// Target-language description driving the translator.
struct CodeMapping {
  CodeMapping() = default;
  // The id table points into this mapping's own template storage, so
  // copies rebuild it. Moves transfer the map nodes and keep it valid.
  CodeMapping(const CodeMapping& other) { *this = other; }
  CodeMapping& operator=(const CodeMapping& other);
  CodeMapping(CodeMapping&&) = default;
  CodeMapping& operator=(CodeMapping&&) = default;

  std::string language;

  /// Name substituted for an empty slot (the ring's implicit parameter) —
  /// the `aContext.inputs[0]` parameter name of paper Listing 2.
  std::string emptySlotName = "x";

  /// Wrap one statement (adds ';' for C-family languages).
  std::string statementSuffix;

  /// Spaces each nested C-slot body is indented by.
  int indentWidth = 4;

  /// Comment syntax, used by program emitters.
  std::string lineComment = "//";

  /// Format a literal value for this language.
  std::string formatLiteral(const blocks::Value& value) const;
  /// True if strings are quoted with double quotes (C/JS); Python also
  /// uses double quotes here for uniformity.
  bool quoteTexts = true;

  /// Register (or override) the template for an opcode — the user-facing
  /// extension point ("code mappings for new textual languages can easily
  /// be specified"). Strings are the construction surface; the translator
  /// resolves templates by the block's interned id.
  void setTemplate(const std::string& opcode, std::string text);
  bool hasTemplate(const std::string& opcode) const;
  const std::string& getTemplate(const std::string& opcode) const;

  /// Id-keyed lookups used by the translator's hot path.
  bool hasTemplate(blocks::OpcodeId id) const {
    return findTemplate(id) != nullptr;
  }
  const std::string& getTemplate(blocks::OpcodeId id) const;

  // Built-in mappings.
  static const CodeMapping& c();
  static const CodeMapping& openmpC();
  static const CodeMapping& javascript();
  static const CodeMapping& python();

  /// Lookup by name ("C", "OpenMP C", "JavaScript", "Python";
  /// case-insensitive). Throws CodegenError for unknown languages.
  static const CodeMapping& byName(const std::string& name);

 private:
  const std::string* findTemplate(blocks::OpcodeId id) const {
    return id < byId_.size() ? byId_[id] : nullptr;
  }
  void rebuildIdTable();

  /// opcode string → template with <#N> placeholders (construction and
  /// user-extension path). A missing opcode is a CodegenError at
  /// translation time.
  std::unordered_map<std::string, std::string> templates_;
  /// OpcodeId → template, pointing into `templates_` values (stable:
  /// unordered_map never moves its nodes). Nullptr marks no template.
  std::vector<const std::string*> byId_;
};

}  // namespace psnap::codegen
