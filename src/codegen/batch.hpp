// A simulated cluster batch queue (paper Sec. 6.3, future work):
// "Supercomputers … use sophisticated batch scheduling systems. The Snap!
// environment can be extended to … submit the job, monitor waiting in the
// queue until execution, then collect the results and display them to the
// user."
//
// The queue models a cluster with a fixed node count and schedules jobs
// FCFS with EASY backfill (a smaller job may jump ahead if it cannot
// delay the queue head), in virtual seconds. A job's payload is an
// arbitrary callable — typically a Toolchain compile-and-run — executed
// when the job starts, so the "cluster" really produces the program's
// output.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace psnap::codegen {

enum class JobState { Pending, Running, Completed };

const char* jobStateName(JobState state);

struct JobRequest {
  std::string name;
  int nodes = 1;
  /// Requested wall time in virtual seconds (the #SBATCH --time analog).
  double wallSeconds = 60;
  /// Executed once when the job starts; its return value becomes the
  /// job's collected output.
  std::function<std::string()> payload;
};

struct JobStatus {
  uint64_t id = 0;
  std::string name;
  int nodes = 1;
  double wallSeconds = 0;
  JobState state = JobState::Pending;
  double submitTime = 0;
  double startTime = -1;
  double endTime = -1;
  std::string output;  ///< collected once Completed
};

class BatchQueue {
 public:
  /// A cluster with `nodes` identical nodes. `enableBackfill` selects
  /// EASY backfill (default) vs. strict FCFS — the A5 scheduler ablation.
  explicit BatchQueue(int nodes, bool enableBackfill = true);

  int nodes() const { return nodes_; }
  double now() const { return now_; }

  /// Submit a job; returns its id. Throws Error when the job can never
  /// run (asks for more nodes than the cluster has, or non-positive
  /// resources).
  uint64_t submit(JobRequest request);

  /// Advance virtual time by `seconds`, starting and completing jobs.
  void advance(double seconds);
  /// Advance until every submitted job completes; returns the virtual
  /// time elapsed. Throws Error after `maxSeconds`.
  double drain(double maxSeconds = 1e9);

  const JobStatus& status(uint64_t id) const;
  std::vector<JobStatus> jobs() const { return jobs_; }
  int nodesInUse() const;
  size_t pendingCount() const;
  bool idle() const;

  /// A squeue-style listing.
  std::string render() const;

 private:
  void scheduleReadyJobs();
  void completeFinishedJobs();
  JobStatus* find(uint64_t id);

  int nodes_;
  bool backfill_;
  double now_ = 0;
  uint64_t nextId_ = 1;
  std::vector<JobStatus> jobs_;
  std::vector<std::function<std::string()>> payloads_;  // parallel to jobs_
};

}  // namespace psnap::codegen
