// Kernel emission for the native execution tier (src/native).
//
// Where translator.cpp renders blocks through user-editable CodeMapping
// templates (the paper's Fig. 15–17 code-generation surface), this emitter
// produces the *internal* translation unit the JIT tier compiles with
// `cc -O2 -shared -fPIC` and dlopens back into the process. The contract
// is much stricter than the template path: the emitted C must compute
// bit-identical doubles to core/pure_eval.cpp for every input the tier
// marshals (see the byte-identical validation gate in native/tier.hpp), so
//
//   * only a whitelisted subset of the pure-block palette is emitted —
//     anything else throws CodegenError and the ring stays interpreted;
//   * error conditions the interpreter turns into typed exceptions
//     (division by zero, sqrt of a negative, item out of range, …) set an
//     `err` out-parameter instead of producing a value; the caller then
//     re-runs the interpreter, which raises the exact error;
//   * strict-evaluation semantics are preserved: the interpreter evaluates
//     every input before dispatching, so `and`/`or`/`if else` are emitted
//     as helper *calls* (C function arguments are strictly evaluated),
//     never as short-circuiting operators;
//   * numeric literals and captured-variable snapshots are emitted as C99
//     hexfloat literals, so the constant the kernel computes with has the
//     same bit pattern the interpreter's Value holds.
//
// Kernel shapes and their extern-"C" signatures:
//
//   Unary   double psnap_kernel(double x, int *err)
//           long   psnap_kernel_batch(const double *in, double *out, long n)
//           long   psnap_kernel_batch_omp(...)   (OpenMP variant, Listing 5)
//   Binary  double psnap_kernel2(double a, double b, int *err)
//   Fold    double psnap_kernel_fold(const double *a, long n, int *err)
//
// The batch entry returns the index of the first element whose evaluation
// erred, or -1 on clean completion. A Bool-returning body (a comparison
// ring) is emitted as 0.0/1.0 with `returnsBool` set so the caller boxes
// the result as a Boolean Value.
#pragma once

#include <cstdint>

#include "blocks/block.hpp"
#include "codegen/programs.hpp"

namespace psnap::codegen {

/// How the tier will call the kernel — decided by the call site
/// (parallelMap compiles unary rings, reduce combiners are binary,
/// mapReduce reducers fold a values list).
enum class KernelShape : uint8_t { Unary, Binary, Fold };

const char* kernelShapeName(KernelShape shape);
/// The extern-"C" symbol for a shape's scalar/fold entry.
const char* kernelSymbol(KernelShape shape);

struct NativeKernelSource {
  KernelShape shape = KernelShape::Unary;
  /// Does the body read its parameter? A constant-body unary kernel (the
  /// fig11 wordcount mapper reports 1 regardless of the word) can serve
  /// any input kind; a parameter-reading kernel only serves Numbers.
  bool paramUsed = false;
  /// The body is a predicate: box the 0.0/1.0 result as a Boolean.
  bool returnsBool = false;
  SourceSet sources;  ///< {"kernel.c": <translation unit>}
};

/// Emit the kernel translation unit for a pure reporter ring, or throw
/// CodegenError when the body steps outside the native subset. Purity is
/// the caller's responsibility (core::compileRing has already vetted it).
NativeKernelSource emitNativeKernel(const blocks::Ring& ring,
                                    KernelShape shape);

/// Structural content key: two rings with the same key emit the same
/// translation unit (same body shape, literals, formals, and captured
/// variable snapshot), so they can share one compiled kernel. Never
/// throws — ineligible rings still get a stable key, which the tier uses
/// to cache the rejection.
uint64_t kernelContentKey(const blocks::Ring& ring, KernelShape shape);

}  // namespace psnap::codegen
