#include "codegen/batch.hpp"

#include <algorithm>
#include <cstdio>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::codegen {

const char* jobStateName(JobState state) {
  switch (state) {
    case JobState::Pending: return "PENDING";
    case JobState::Running: return "RUNNING";
    case JobState::Completed: return "COMPLETED";
  }
  return "?";
}

BatchQueue::BatchQueue(int nodes, bool enableBackfill)
    : nodes_(nodes), backfill_(enableBackfill) {
  if (nodes <= 0) throw Error("BatchQueue: cluster needs at least one node");
}

uint64_t BatchQueue::submit(JobRequest request) {
  if (request.nodes <= 0 || request.nodes > nodes_) {
    throw Error("job '" + request.name + "' requests " +
                std::to_string(request.nodes) + " node(s) on a " +
                std::to_string(nodes_) + "-node cluster");
  }
  if (request.wallSeconds <= 0) {
    throw Error("job '" + request.name + "' requests non-positive time");
  }
  JobStatus status;
  status.id = nextId_++;
  status.name = request.name;
  status.nodes = request.nodes;
  status.wallSeconds = request.wallSeconds;
  status.submitTime = now_;
  jobs_.push_back(status);
  payloads_.push_back(std::move(request.payload));
  scheduleReadyJobs();
  return jobs_.back().id;
}

int BatchQueue::nodesInUse() const {
  int used = 0;
  for (const JobStatus& job : jobs_) {
    if (job.state == JobState::Running) used += job.nodes;
  }
  return used;
}

size_t BatchQueue::pendingCount() const {
  return static_cast<size_t>(
      std::count_if(jobs_.begin(), jobs_.end(), [](const JobStatus& j) {
        return j.state == JobState::Pending;
      }));
}

bool BatchQueue::idle() const {
  return std::all_of(jobs_.begin(), jobs_.end(), [](const JobStatus& j) {
    return j.state == JobState::Completed;
  });
}

void BatchQueue::scheduleReadyJobs() {
  // FCFS with EASY backfill: the queue head reserves its start time; a
  // later job may start now only if it fits the free nodes AND would
  // finish before the head's reservation (or needs no reserved nodes).
  int freeNodes = nodes_ - nodesInUse();

  // Find the queue head (oldest pending job).
  JobStatus* head = nullptr;
  for (JobStatus& job : jobs_) {
    if (job.state == JobState::Pending) {
      head = &job;
      break;
    }
  }
  if (!head) return;

  auto startJob = [&](JobStatus& job) {
    job.state = JobState::Running;
    job.startTime = now_;
    job.endTime = now_ + job.wallSeconds;
    freeNodes -= job.nodes;
    size_t index = static_cast<size_t>(&job - jobs_.data());
    if (payloads_[index]) {
      job.output = payloads_[index]();
      payloads_[index] = nullptr;
    }
  };

  // Start the head (and successive heads) while they fit.
  for (JobStatus& job : jobs_) {
    if (job.state != JobState::Pending) continue;
    if (job.nodes <= freeNodes) {
      startJob(job);
    } else {
      head = &job;
      break;
    }
    head = nullptr;
  }
  if (!head) return;
  if (!backfill_) return;  // strict FCFS: nothing passes the head

  // Head blocked: compute its reservation — the earliest time enough
  // running jobs have finished to free its nodes.
  std::vector<std::pair<double, int>> releases;
  for (const JobStatus& job : jobs_) {
    if (job.state == JobState::Running) {
      releases.push_back({job.endTime, job.nodes});
    }
  }
  std::sort(releases.begin(), releases.end());
  double reservation = now_;
  int available = freeNodes;
  for (const auto& [time, count] : releases) {
    if (available >= head->nodes) break;
    available += count;
    reservation = time;
  }

  // Backfill: later pending jobs that fit the free nodes and finish by
  // the reservation may start now.
  for (JobStatus& job : jobs_) {
    if (job.state != JobState::Pending || &job == head) continue;
    if (job.nodes <= freeNodes &&
        now_ + job.wallSeconds <= reservation) {
      startJob(job);
    }
  }
}

void BatchQueue::completeFinishedJobs() {
  for (JobStatus& job : jobs_) {
    if (job.state == JobState::Running && job.endTime <= now_) {
      job.state = JobState::Completed;
    }
  }
}

void BatchQueue::advance(double seconds) {
  if (seconds < 0) throw Error("BatchQueue::advance: negative time");
  double target = now_ + seconds;
  // Step through completion events so scheduling decisions happen at the
  // right instants.
  while (true) {
    double nextEvent = target;
    for (const JobStatus& job : jobs_) {
      if (job.state == JobState::Running && job.endTime > now_ &&
          job.endTime < nextEvent) {
        nextEvent = job.endTime;
      }
    }
    now_ = nextEvent;
    completeFinishedJobs();
    scheduleReadyJobs();
    if (nextEvent >= target) break;
  }
}

double BatchQueue::drain(double maxSeconds) {
  double start = now_;
  while (!idle()) {
    if (now_ - start > maxSeconds) {
      throw Error("BatchQueue::drain exceeded its time budget");
    }
    // Jump to the next completion event.
    double nextEvent = -1;
    for (const JobStatus& job : jobs_) {
      if (job.state == JobState::Running &&
          (nextEvent < 0 || job.endTime < nextEvent)) {
        nextEvent = job.endTime;
      }
    }
    if (nextEvent < 0) {
      throw Error("BatchQueue::drain: pending jobs but nothing running");
    }
    advance(nextEvent - now_);
  }
  return now_ - start;
}

const JobStatus& BatchQueue::status(uint64_t id) const {
  for (const JobStatus& job : jobs_) {
    if (job.id == id) return job;
  }
  throw Error("no job with id " + std::to_string(id));
}

std::string BatchQueue::render() const {
  std::string out = "JOBID  NAME              NODES  STATE      START  END\n";
  char line[160];
  for (const JobStatus& job : jobs_) {
    std::snprintf(line, sizeof(line), "%-6llu %-17s %5d  %-9s %6s %6s\n",
                  (unsigned long long)job.id, job.name.c_str(), job.nodes,
                  jobStateName(job.state),
                  job.startTime < 0
                      ? "-"
                      : strings::formatNumber(job.startTime).c_str(),
                  job.endTime < 0
                      ? "-"
                      : strings::formatNumber(job.endTime).c_str());
    out += line;
  }
  return out;
}

JobStatus* BatchQueue::find(uint64_t id) {
  for (JobStatus& job : jobs_) {
    if (job.id == id) return &job;
  }
  return nullptr;
}

}  // namespace psnap::codegen
