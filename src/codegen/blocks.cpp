#include "codegen/blocks.hpp"

#include "codegen/translator.hpp"
#include "support/error.hpp"

namespace psnap::codegen {

using blocks::Value;
using vm::Context;
using vm::Process;

void registerCodegenPrimitives(vm::PrimitiveTable& table) {
  // `map to C` / `map to JavaScript` … — must execute before `code of`
  // "to set the internal code mapping" (paper Sec. 6.2).
  table.add("doMapToCode", [](Process& p, Context& c) {
    const std::string language = c.inputs[0].asText();
    (void)CodeMapping::byName(language);  // validate now, not at code-of time
    p.codegenLanguage = language;
    p.finishCommand();
  });

  // `code of (ring)` — translates the ring's body for the selected target.
  table.add("reportMappedCode", [](Process& p, Context& c) {
    const CodeMapping& mapping = CodeMapping::byName(p.codegenLanguage);
    Translator translator(mapping, p.registry());
    p.returnValue(Value(translator.mappedCode(*c.inputs[0].asRing())));
  });
}

}  // namespace psnap::codegen
