#include "codegen/mapping.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::codegen {

using blocks::Value;

std::string CodeMapping::formatLiteral(const Value& value) const {
  switch (value.kind()) {
    case blocks::ValueKind::Nothing:
      return language == "Python" ? "None"
             : language == "JavaScript" ? "null"
                                        : "0";
    case blocks::ValueKind::Number:
      return strings::formatNumber(value.asNumber());
    case blocks::ValueKind::Boolean:
      if (language == "Python") return value.asBoolean() ? "True" : "False";
      if (language == "C" || language == "OpenMP C") {
        return value.asBoolean() ? "1" : "0";
      }
      return value.asBoolean() ? "true" : "false";
    case blocks::ValueKind::Text: {
      std::string escaped;
      for (char ch : value.asText()) {
        if (ch == '"' || ch == '\\') escaped += '\\';
        if (ch == '\n') {
          escaped += "\\n";
          continue;
        }
        escaped += ch;
      }
      return "\"" + escaped + "\"";
    }
    case blocks::ValueKind::ListRef: {
      const bool cFamily = language == "C" || language == "OpenMP C";
      std::string out = cFamily ? "{" : "[";
      const auto& items = value.asList()->items();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ", ";
        out += formatLiteral(items[i]);
      }
      out += cFamily ? "}" : "]";
      return out;
    }
    case blocks::ValueKind::RingRef:
      throw CodegenError("a ring literal has no textual representation");
    case blocks::ValueKind::FutureRef:
      throw CodegenError("a future literal has no textual representation");
  }
  return "";
}

CodeMapping& CodeMapping::operator=(const CodeMapping& other) {
  if (this == &other) return *this;
  language = other.language;
  emptySlotName = other.emptySlotName;
  statementSuffix = other.statementSuffix;
  indentWidth = other.indentWidth;
  lineComment = other.lineComment;
  quoteTexts = other.quoteTexts;
  templates_ = other.templates_;
  rebuildIdTable();
  return *this;
}

void CodeMapping::rebuildIdTable() {
  byId_.clear();
  for (const auto& [opcode, text] : templates_) {
    const blocks::OpcodeId opId = blocks::internOpcode(opcode);
    if (opId >= byId_.size()) byId_.resize(opId + 1, nullptr);
    byId_[opId] = &text;
  }
}

void CodeMapping::setTemplate(const std::string& opcode, std::string text) {
  const blocks::OpcodeId opId = blocks::internOpcode(opcode);
  auto [it, inserted] = templates_.insert_or_assign(opcode, std::move(text));
  if (opId >= byId_.size()) byId_.resize(opId + 1, nullptr);
  byId_[opId] = &it->second;
}

bool CodeMapping::hasTemplate(const std::string& opcode) const {
  return findTemplate(blocks::lookupOpcode(opcode)) != nullptr;
}

const std::string& CodeMapping::getTemplate(const std::string& opcode) const {
  const std::string* text = findTemplate(blocks::lookupOpcode(opcode));
  if (!text) {
    throw CodegenError("no " + language + " mapping for block " + opcode);
  }
  return *text;
}

const std::string& CodeMapping::getTemplate(blocks::OpcodeId id) const {
  const std::string* text = findTemplate(id);
  if (!text) {
    throw CodegenError("no " + language + " mapping for block " +
                       blocks::opcodeName(id));
  }
  return *text;
}

namespace {

/// Templates shared by every C-family mapping (paper Fig. 15 is a portion
/// of exactly this table).
void addCommonCFamily(CodeMapping& m) {
  m.statementSuffix = "";
  m.lineComment = "//";
  auto set = [&m](const char* op, const char* tmpl) {
    m.setTemplate(op, tmpl);
  };
  // operators
  set("reportSum", "(<#1> + <#2>)");
  set("reportDifference", "(<#1> - <#2>)");
  set("reportProduct", "(<#1> * <#2>)");
  set("reportQuotient", "(<#1> / <#2>)");
  set("reportModulus", "fmod(<#1>, <#2>)");
  set("reportPower", "pow(<#1>, <#2>)");
  set("reportRound", "round(<#1>)");
  set("reportEquals", "(<#1> == <#2>)");
  set("reportLessThan", "(<#1> < <#2>)");
  set("reportGreaterThan", "(<#1> > <#2>)");
  set("reportAnd", "(<#1> && <#2>)");
  set("reportOr", "(<#1> || <#2>)");
  set("reportNot", "(!<#1>)");
  set("reportIfElse", "(<#1> ? <#2> : <#3>)");
  set("reportIdentity", "<#1>");
  // variables
  set("reportGetVar", "<#1>");
  set("doSetVar", "<#1> = <#2>;");
  set("doChangeVar", "<#1> += <#2>;");
  set("doDeclareVariables", "");  // handled by the declaration emitter
  // lists (C arrays)
  set("reportNewList", "{<#*>}");
  set("reportListItem", "<#2>[(int)(<#1>) - 1]");
  set("reportListLength", "(sizeof(<#1>)/sizeof(<#1>[0]))");
  // control
  set("doRepeat", "for (i = 1; i <= <#1>; i++) {\n<#2>\n}");
  set("doFor",
      "for (int <#1> = (int)(<#2>); <#1> <= (int)(<#3>); <#1>++) "
      "{\n<#4>\n}");
  set("doIf", "if (<#1>) {\n<#2>\n}");
  set("doIfElse", "if (<#1>) {\n<#2>\n} else {\n<#3>\n}");
  set("doUntil", "while (!(<#1>)) {\n<#2>\n}");
  set("doForever", "while (1) {\n<#1>\n}");
  set("doForEach",
      "for (int __k = 0; __k < (int)(sizeof(<#2>)/sizeof(<#2>[0])); "
      "__k++) {\n    double <#1> = <#2>[__k];\n<#3>\n}");
  set("doWait", "sleep((unsigned)(<#1>));");
  set("doAddToList", "append(<#1>, <#2>);");
  // looks
  set("bubble", "printf(\"%g\\n\", (double)(<#1>));");
  set("doSayFor",
      "printf(\"%g\\n\", (double)(<#1>)); sleep((unsigned)(<#2>));");
}

CodeMapping makeC() {
  CodeMapping m;
  m.language = "C";
  addCommonCFamily(m);
  // Sequential C runs the parallel blocks serially.
  m.setTemplate("doParallelForEach",
                "for (int __k = 0; __k < "
                "(int)(sizeof(<#2>)/sizeof(<#2>[0])); "
                "__k++) {\n    double <#1> = <#2>[__k];\n<#4>\n}");
  return m;
}

CodeMapping makeOpenMP() {
  CodeMapping m;
  m.language = "OpenMP C";
  addCommonCFamily(m);
  // The payoff of Sec. 6: the parallel block becomes an OpenMP pragma.
  m.setTemplate("doParallelForEach",
                "#pragma omp parallel for\n"
                "for (int __k = 0; __k < "
                "(int)(sizeof(<#2>)/sizeof(<#2>[0])); "
                "__k++) {\n    double <#1> = <#2>[__k];\n<#4>\n}");
  return m;
}

CodeMapping makeJavaScript() {
  CodeMapping m;
  m.language = "JavaScript";
  m.lineComment = "//";
  auto set = [&m](const char* op, const char* tmpl) {
    m.setTemplate(op, tmpl);
  };
  set("reportSum", "(<#1> + <#2>)");
  set("reportDifference", "(<#1> - <#2>)");
  set("reportProduct", "(<#1> * <#2>)");
  set("reportQuotient", "(<#1> / <#2>)");
  set("reportModulus", "(((<#1> % <#2>) + <#2>) % <#2>)");
  set("reportPower", "Math.pow(<#1>, <#2>)");
  set("reportRound", "Math.round(<#1>)");
  set("reportEquals", "(<#1> == <#2>)");
  set("reportLessThan", "(<#1> < <#2>)");
  set("reportGreaterThan", "(<#1> > <#2>)");
  set("reportAnd", "(<#1> && <#2>)");
  set("reportOr", "(<#1> || <#2>)");
  set("reportNot", "(!<#1>)");
  set("reportIfElse", "(<#1> ? <#2> : <#3>)");
  set("reportIdentity", "<#1>");
  set("reportJoinWords", "[<#*>].join(\"\")");
  set("reportGetVar", "<#1>");
  set("doSetVar", "<#1> = <#2>;");
  set("doChangeVar", "<#1> += <#2>;");
  set("doDeclareVariables", "var <#*>;");
  set("reportNewList", "[<#*>]");
  set("reportListItem", "<#2>[(<#1>) - 1]");
  set("reportListLength", "<#1>.length");
  set("reportMap", "<#2>.map(<#1>)");
  set("reportKeep", "<#2>.filter(<#1>)");
  set("doRepeat", "for (let __i = 0; __i < <#1>; __i++) {\n<#2>\n}");
  set("doFor", "for (let <#1> = <#2>; <#1> <= <#3>; <#1>++) {\n<#4>\n}");
  set("doIf", "if (<#1>) {\n<#2>\n}");
  set("doIfElse", "if (<#1>) {\n<#2>\n} else {\n<#3>\n}");
  set("doUntil", "while (!(<#1>)) {\n<#2>\n}");
  set("doForever", "while (true) {\n<#1>\n}");
  set("doForEach", "for (const <#1> of <#2>) {\n<#3>\n}");
  set("bubble", "console.log(<#1>);");
  set("doAddToList", "<#2>.push(<#1>);");
  set("doWait", "// wait <#1> s");
  set("reifyReporter", "function (x) { return <#1>; }");
  // Paper Listing 1: the block maps onto Parallel.js.
  set("reportParallelMap",
      "new Parallel(<#2>, {maxWorkers: <#3>}).map(<#1>).data");
  set("doParallelForEach", "<#2>.forEach(function (<#1>) {\n<#4>\n});");
  return m;
}

CodeMapping makePython() {
  CodeMapping m;
  m.language = "Python";
  m.lineComment = "#";
  m.statementSuffix = "";
  auto set = [&m](const char* op, const char* tmpl) {
    m.setTemplate(op, tmpl);
  };
  set("reportSum", "(<#1> + <#2>)");
  set("reportDifference", "(<#1> - <#2>)");
  set("reportProduct", "(<#1> * <#2>)");
  set("reportQuotient", "(<#1> / <#2>)");
  set("reportModulus", "(<#1> % <#2>)");
  set("reportPower", "(<#1> ** <#2>)");
  set("reportRound", "round(<#1>)");
  set("reportEquals", "(<#1> == <#2>)");
  set("reportLessThan", "(<#1> < <#2>)");
  set("reportGreaterThan", "(<#1> > <#2>)");
  set("reportAnd", "(<#1> and <#2>)");
  set("reportOr", "(<#1> or <#2>)");
  set("reportNot", "(not <#1>)");
  set("reportIfElse", "(<#2> if <#1> else <#3>)");
  set("reportIdentity", "<#1>");
  set("reportJoinWords", "\"\".join(str(__s) for __s in [<#*>])");
  set("reportGetVar", "<#1>");
  set("doSetVar", "<#1> = <#2>");
  set("doChangeVar", "<#1> += <#2>");
  set("doDeclareVariables", "");
  set("reportNewList", "[<#*>]");
  set("reportListItem", "<#2>[int(<#1>) - 1]");
  set("reportListLength", "len(<#1>)");
  set("reportMap", "[(<#1>)(__e) for __e in <#2>]");
  set("reportKeep", "[__e for __e in <#2> if (<#1>)(__e)]");
  set("doRepeat", "for __i in range(int(<#1>)):\n<#2>");
  set("doFor", "for <#1> in range(int(<#2>), int(<#3>) + 1):\n<#4>");
  set("doIf", "if <#1>:\n<#2>");
  set("doIfElse", "if <#1>:\n<#2>\nelse:\n<#3>");
  set("doUntil", "while not (<#1>):\n<#2>");
  set("doForever", "while True:\n<#1>");
  set("doForEach", "for <#1> in <#2>:\n<#3>");
  set("bubble", "print(<#1>)");
  set("doAddToList", "<#2>.append(<#1>)");
  set("doWait", "time.sleep(<#1>)");
  set("reifyReporter", "lambda x: <#1>");
  set("reportParallelMap", "multiprocessing.Pool(<#3>).map(<#1>, <#2>)");
  set("doParallelForEach", "for <#1> in <#2>:\n<#4>");
  return m;
}

}  // namespace

const CodeMapping& CodeMapping::c() {
  static const CodeMapping m = makeC();
  return m;
}

const CodeMapping& CodeMapping::openmpC() {
  static const CodeMapping m = makeOpenMP();
  return m;
}

const CodeMapping& CodeMapping::javascript() {
  static const CodeMapping m = makeJavaScript();
  return m;
}

const CodeMapping& CodeMapping::python() {
  static const CodeMapping m = makePython();
  return m;
}

const CodeMapping& CodeMapping::byName(const std::string& name) {
  const std::string key = strings::toLower(name);
  if (key == "c") return c();
  if (key == "openmp c" || key == "openmp") return openmpC();
  if (key == "javascript" || key == "js") return javascript();
  if (key == "python" || key == "py") return python();
  throw CodegenError("no code mapping for language \"" + name + "\"");
}

}  // namespace psnap::codegen
