#include "codegen/mapping.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::codegen {

using blocks::Value;

std::string CodeMapping::formatLiteral(const Value& value) const {
  switch (value.kind()) {
    case blocks::ValueKind::Nothing:
      return language == "Python" ? "None"
             : language == "JavaScript" ? "null"
                                        : "0";
    case blocks::ValueKind::Number:
      return strings::formatNumber(value.asNumber());
    case blocks::ValueKind::Boolean:
      if (language == "Python") return value.asBoolean() ? "True" : "False";
      if (language == "C" || language == "OpenMP C") {
        return value.asBoolean() ? "1" : "0";
      }
      return value.asBoolean() ? "true" : "false";
    case blocks::ValueKind::Text: {
      std::string escaped;
      for (char ch : value.asText()) {
        if (ch == '"' || ch == '\\') escaped += '\\';
        if (ch == '\n') {
          escaped += "\\n";
          continue;
        }
        escaped += ch;
      }
      return "\"" + escaped + "\"";
    }
    case blocks::ValueKind::ListRef: {
      const bool cFamily = language == "C" || language == "OpenMP C";
      std::string out = cFamily ? "{" : "[";
      const auto& items = value.asList()->items();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ", ";
        out += formatLiteral(items[i]);
      }
      out += cFamily ? "}" : "]";
      return out;
    }
    case blocks::ValueKind::RingRef:
      throw CodegenError("a ring literal has no textual representation");
  }
  return "";
}

void CodeMapping::setTemplate(const std::string& opcode, std::string text) {
  templates[opcode] = std::move(text);
}

bool CodeMapping::hasTemplate(const std::string& opcode) const {
  return templates.count(opcode) != 0;
}

const std::string& CodeMapping::getTemplate(const std::string& opcode) const {
  auto it = templates.find(opcode);
  if (it == templates.end()) {
    throw CodegenError("no " + language + " mapping for block " + opcode);
  }
  return it->second;
}

namespace {

/// Templates shared by every C-family mapping (paper Fig. 15 is a portion
/// of exactly this table).
void addCommonCFamily(CodeMapping& m) {
  m.statementSuffix = "";
  m.lineComment = "//";
  auto& t = m.templates;
  // operators
  t["reportSum"] = "(<#1> + <#2>)";
  t["reportDifference"] = "(<#1> - <#2>)";
  t["reportProduct"] = "(<#1> * <#2>)";
  t["reportQuotient"] = "(<#1> / <#2>)";
  t["reportModulus"] = "fmod(<#1>, <#2>)";
  t["reportPower"] = "pow(<#1>, <#2>)";
  t["reportRound"] = "round(<#1>)";
  t["reportEquals"] = "(<#1> == <#2>)";
  t["reportLessThan"] = "(<#1> < <#2>)";
  t["reportGreaterThan"] = "(<#1> > <#2>)";
  t["reportAnd"] = "(<#1> && <#2>)";
  t["reportOr"] = "(<#1> || <#2>)";
  t["reportNot"] = "(!<#1>)";
  t["reportIfElse"] = "(<#1> ? <#2> : <#3>)";
  t["reportIdentity"] = "<#1>";
  // variables
  t["reportGetVar"] = "<#1>";
  t["doSetVar"] = "<#1> = <#2>;";
  t["doChangeVar"] = "<#1> += <#2>;";
  t["doDeclareVariables"] = "";  // handled by the declaration emitter
  // lists (C arrays)
  t["reportNewList"] = "{<#*>}";
  t["reportListItem"] = "<#2>[(int)(<#1>) - 1]";
  t["reportListLength"] = "(sizeof(<#1>)/sizeof(<#1>[0]))";
  // control
  t["doRepeat"] = "for (i = 1; i <= <#1>; i++) {\n<#2>\n}";
  t["doFor"] =
      "for (int <#1> = (int)(<#2>); <#1> <= (int)(<#3>); <#1>++) "
      "{\n<#4>\n}";
  t["doIf"] = "if (<#1>) {\n<#2>\n}";
  t["doIfElse"] = "if (<#1>) {\n<#2>\n} else {\n<#3>\n}";
  t["doUntil"] = "while (!(<#1>)) {\n<#2>\n}";
  t["doForever"] = "while (1) {\n<#1>\n}";
  t["doForEach"] =
      "for (int __k = 0; __k < (int)(sizeof(<#2>)/sizeof(<#2>[0])); "
      "__k++) {\n    double <#1> = <#2>[__k];\n<#3>\n}";
  t["doWait"] = "sleep((unsigned)(<#1>));";
  t["doAddToList"] = "append(<#1>, <#2>);";
  // looks
  t["bubble"] = "printf(\"%g\\n\", (double)(<#1>));";
  t["doSayFor"] = "printf(\"%g\\n\", (double)(<#1>)); sleep((unsigned)(<#2>));";
}

CodeMapping makeC() {
  CodeMapping m;
  m.language = "C";
  addCommonCFamily(m);
  // Sequential C runs the parallel blocks serially.
  m.templates["doParallelForEach"] =
      "for (int __k = 0; __k < (int)(sizeof(<#2>)/sizeof(<#2>[0])); "
      "__k++) {\n    double <#1> = <#2>[__k];\n<#4>\n}";
  return m;
}

CodeMapping makeOpenMP() {
  CodeMapping m;
  m.language = "OpenMP C";
  addCommonCFamily(m);
  // The payoff of Sec. 6: the parallel block becomes an OpenMP pragma.
  m.templates["doParallelForEach"] =
      "#pragma omp parallel for\n"
      "for (int __k = 0; __k < (int)(sizeof(<#2>)/sizeof(<#2>[0])); "
      "__k++) {\n    double <#1> = <#2>[__k];\n<#4>\n}";
  return m;
}

CodeMapping makeJavaScript() {
  CodeMapping m;
  m.language = "JavaScript";
  m.lineComment = "//";
  auto& t = m.templates;
  t["reportSum"] = "(<#1> + <#2>)";
  t["reportDifference"] = "(<#1> - <#2>)";
  t["reportProduct"] = "(<#1> * <#2>)";
  t["reportQuotient"] = "(<#1> / <#2>)";
  t["reportModulus"] = "(((<#1> % <#2>) + <#2>) % <#2>)";
  t["reportPower"] = "Math.pow(<#1>, <#2>)";
  t["reportRound"] = "Math.round(<#1>)";
  t["reportEquals"] = "(<#1> == <#2>)";
  t["reportLessThan"] = "(<#1> < <#2>)";
  t["reportGreaterThan"] = "(<#1> > <#2>)";
  t["reportAnd"] = "(<#1> && <#2>)";
  t["reportOr"] = "(<#1> || <#2>)";
  t["reportNot"] = "(!<#1>)";
  t["reportIfElse"] = "(<#1> ? <#2> : <#3>)";
  t["reportIdentity"] = "<#1>";
  t["reportJoinWords"] = "[<#*>].join(\"\")";
  t["reportGetVar"] = "<#1>";
  t["doSetVar"] = "<#1> = <#2>;";
  t["doChangeVar"] = "<#1> += <#2>;";
  t["doDeclareVariables"] = "var <#*>;";
  t["reportNewList"] = "[<#*>]";
  t["reportListItem"] = "<#2>[(<#1>) - 1]";
  t["reportListLength"] = "<#1>.length";
  t["reportMap"] = "<#2>.map(<#1>)";
  t["reportKeep"] = "<#2>.filter(<#1>)";
  t["doRepeat"] = "for (let __i = 0; __i < <#1>; __i++) {\n<#2>\n}";
  t["doFor"] = "for (let <#1> = <#2>; <#1> <= <#3>; <#1>++) {\n<#4>\n}";
  t["doIf"] = "if (<#1>) {\n<#2>\n}";
  t["doIfElse"] = "if (<#1>) {\n<#2>\n} else {\n<#3>\n}";
  t["doUntil"] = "while (!(<#1>)) {\n<#2>\n}";
  t["doForever"] = "while (true) {\n<#1>\n}";
  t["doForEach"] = "for (const <#1> of <#2>) {\n<#3>\n}";
  t["bubble"] = "console.log(<#1>);";
  t["doAddToList"] = "<#2>.push(<#1>);";
  t["doWait"] = "// wait <#1> s";
  t["reifyReporter"] = "function (x) { return <#1>; }";
  // Paper Listing 1: the block maps onto Parallel.js.
  t["reportParallelMap"] =
      "new Parallel(<#2>, {maxWorkers: <#3>}).map(<#1>).data";
  t["doParallelForEach"] =
      "<#2>.forEach(function (<#1>) {\n<#4>\n});";
  return m;
}

CodeMapping makePython() {
  CodeMapping m;
  m.language = "Python";
  m.lineComment = "#";
  m.statementSuffix = "";
  auto& t = m.templates;
  t["reportSum"] = "(<#1> + <#2>)";
  t["reportDifference"] = "(<#1> - <#2>)";
  t["reportProduct"] = "(<#1> * <#2>)";
  t["reportQuotient"] = "(<#1> / <#2>)";
  t["reportModulus"] = "(<#1> % <#2>)";
  t["reportPower"] = "(<#1> ** <#2>)";
  t["reportRound"] = "round(<#1>)";
  t["reportEquals"] = "(<#1> == <#2>)";
  t["reportLessThan"] = "(<#1> < <#2>)";
  t["reportGreaterThan"] = "(<#1> > <#2>)";
  t["reportAnd"] = "(<#1> and <#2>)";
  t["reportOr"] = "(<#1> or <#2>)";
  t["reportNot"] = "(not <#1>)";
  t["reportIfElse"] = "(<#2> if <#1> else <#3>)";
  t["reportIdentity"] = "<#1>";
  t["reportJoinWords"] = "\"\".join(str(__s) for __s in [<#*>])";
  t["reportGetVar"] = "<#1>";
  t["doSetVar"] = "<#1> = <#2>";
  t["doChangeVar"] = "<#1> += <#2>";
  t["doDeclareVariables"] = "";
  t["reportNewList"] = "[<#*>]";
  t["reportListItem"] = "<#2>[int(<#1>) - 1]";
  t["reportListLength"] = "len(<#1>)";
  t["reportMap"] = "[(<#1>)(__e) for __e in <#2>]";
  t["reportKeep"] = "[__e for __e in <#2> if (<#1>)(__e)]";
  t["doRepeat"] = "for __i in range(int(<#1>)):\n<#2>";
  t["doFor"] = "for <#1> in range(int(<#2>), int(<#3>) + 1):\n<#4>";
  t["doIf"] = "if <#1>:\n<#2>";
  t["doIfElse"] = "if <#1>:\n<#2>\nelse:\n<#3>";
  t["doUntil"] = "while not (<#1>):\n<#2>";
  t["doForever"] = "while True:\n<#1>";
  t["doForEach"] = "for <#1> in <#2>:\n<#3>";
  t["bubble"] = "print(<#1>)";
  t["doAddToList"] = "<#2>.append(<#1>)";
  t["doWait"] = "time.sleep(<#1>)";
  t["reifyReporter"] = "lambda x: <#1>";
  t["reportParallelMap"] =
      "multiprocessing.Pool(<#3>).map(<#1>, <#2>)";
  t["doParallelForEach"] = "for <#1> in <#2>:\n<#4>";
  return m;
}

}  // namespace

const CodeMapping& CodeMapping::c() {
  static const CodeMapping m = makeC();
  return m;
}

const CodeMapping& CodeMapping::openmpC() {
  static const CodeMapping m = makeOpenMP();
  return m;
}

const CodeMapping& CodeMapping::javascript() {
  static const CodeMapping m = makeJavaScript();
  return m;
}

const CodeMapping& CodeMapping::python() {
  static const CodeMapping m = makePython();
  return m;
}

const CodeMapping& CodeMapping::byName(const std::string& name) {
  const std::string key = strings::toLower(name);
  if (key == "c") return c();
  if (key == "openmp c" || key == "openmp") return openmpC();
  if (key == "javascript" || key == "js") return javascript();
  if (key == "python" || key == "py") return python();
  throw CodegenError("no code mapping for language \"" + name + "\"");
}

}  // namespace psnap::codegen
