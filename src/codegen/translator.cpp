#include "codegen/translator.hpp"

#include <functional>
#include <unordered_map>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::codegen {

using blocks::Block;
using blocks::BlockRegistry;
using blocks::Input;
using blocks::InputKind;
using blocks::Op;
using blocks::Ring;
using blocks::RingKind;
using blocks::Script;
using blocks::SlotKind;
using blocks::Value;

const char* cTypeName(CType type) {
  switch (type) {
    case CType::Double: return "double";
    case CType::Int: return "int";
    case CType::Bool: return "int";
    case CType::Text: return "const char *";
    case CType::DoubleArray: return "double";  // declared with []
    case CType::Unknown: return "double";
  }
  return "double";
}

CType inferInputType(const Input& input) {
  switch (input.kind()) {
    case InputKind::Literal:
      switch (input.literalValue().kind()) {
        case blocks::ValueKind::Number: {
          double n = input.literalValue().asNumber();
          return n == static_cast<long long>(n) ? CType::Int : CType::Double;
        }
        case blocks::ValueKind::Boolean: return CType::Bool;
        case blocks::ValueKind::Text: return CType::Text;
        case blocks::ValueKind::ListRef: return CType::DoubleArray;
        default: return CType::Unknown;
      }
    case InputKind::BlockExpr:
      return inferType(*input.block());
    default:
      return CType::Unknown;
  }
}

namespace {

/// An operand's type as arithmetic sees it. Empty slots are the ring
/// parameter, which is numeric by coercion in an arithmetic position, so
/// they count as Double rather than Unknown here.
CType arithmeticOperandType(const Input& input) {
  if (input.kind() == InputKind::Empty) return CType::Double;
  return inferInputType(input);
}

bool numericCType(CType type) {
  return type == CType::Double || type == CType::Int || type == CType::Bool;
}

}  // namespace

CType inferType(const Block& block) {
  switch (static_cast<Op>(block.opcodeId())) {
    case Op::reportSum:
    case Op::reportDifference:
    case Op::reportProduct:
    case Op::reportQuotient:
    case Op::reportModulus:
    case Op::reportPower:
      // Mixed-type arithmetic does not default to Double: a Text,
      // DoubleArray, or Unknown operand makes the result Unknown, so
      // emitters that require a numeric signature reject the ring instead
      // of miscompiling it.
      for (const Input& input : block.inputs()) {
        if (!numericCType(arithmeticOperandType(input))) {
          return CType::Unknown;
        }
      }
      return CType::Double;
    case Op::reportMonadic:
      if (block.arity() == 2 &&
          !numericCType(arithmeticOperandType(block.input(1)))) {
        return CType::Unknown;
      }
      return CType::Double;
    case Op::reportRandom:
    case Op::reportListItem:
    case Op::getTimer:
      return CType::Double;
    case Op::reportRound:
    case Op::reportStringSize:
    case Op::reportListLength:
      return CType::Int;
    case Op::reportEquals:
    case Op::reportLessThan:
    case Op::reportGreaterThan:
    case Op::reportAnd:
    case Op::reportOr:
    case Op::reportNot:
      return CType::Bool;
    case Op::reportJoinWords:
    case Op::reportLetter:
      return CType::Text;
    case Op::reportNewList:
    case Op::reportNumbers:
    case Op::reportSorted:
    case Op::reportMap:
    case Op::reportParallelMap:
      return CType::DoubleArray;
    case Op::reportIfElse:
      if (block.arity() == 3) return inferInputType(block.input(1));
      return CType::Unknown;
    default:
      return CType::Unknown;
  }
}

Translator::Translator(const CodeMapping& mapping,
                       const BlockRegistry& registry)
    : mapping_(&mapping), registry_(&registry) {}

std::string Translator::renderInput(const Input& input) const {
  switch (input.kind()) {
    case InputKind::Literal:
      return mapping_->formatLiteral(input.literalValue());
    case InputKind::BlockExpr:
      return mappedCode(*input.block());
    case InputKind::ScriptSlot:
      return strings::indent(mappedCode(*input.script()),
                             mapping_->indentWidth);
    case InputKind::Empty:
      return mapping_->emptySlotName;
    case InputKind::Collapsed:
      return mapping_->formatLiteral(Value());
  }
  return "";
}

std::string Translator::substitute(const std::string& text,
                                   const Block& block) const {
  // Variable slots render as bare identifiers rather than quoted strings.
  const blocks::BlockSpec* spec = registry_->specOf(block.opcodeId());
  auto renderAt = [&](size_t index) -> std::string {
    const Input& input = block.input(index);
    if (spec && index < spec->slots.size() &&
        spec->slots[index].kind == SlotKind::Variable &&
        input.isLiteral()) {
      return input.literalValue().asText();
    }
    return renderInput(input);
  };

  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    if (text.compare(i, 2, "<#") != 0) {
      out += text[i++];
      continue;
    }
    size_t end = text.find('>', i);
    if (end == std::string::npos) {
      out += text.substr(i);
      break;
    }
    const std::string token = text.substr(i + 2, end - i - 2);
    i = end + 1;
    if (token == "*") {
      // Splice all inputs (used by variadic slots).
      for (size_t k = 0; k < block.arity(); ++k) {
        if (k != 0) out += ", ";
        out += renderAt(k);
      }
      continue;
    }
    size_t index = 0;
    try {
      index = static_cast<size_t>(std::stoul(token));
    } catch (...) {
      throw CodegenError("bad placeholder <#" + token + "> in template for " +
                         block.opcode());
    }
    if (index == 0 || index > block.arity()) {
      throw CodegenError("placeholder <#" + token + "> out of range for " +
                         block.opcode() + " with " +
                         std::to_string(block.arity()) + " inputs");
    }
    out += renderAt(index - 1);
  }
  return out;
}

std::string Translator::mappedCode(const Block& block) const {
  // Rings translate to their body (Listing 2 translates the ringed
  // expression, not the ring wrapper), unless the language maps rings to
  // first-class functions (JavaScript/Python lambdas).
  if (block.is(Op::reifyReporter) &&
      !mapping_->hasTemplate(blocks::id(Op::reifyReporter))) {
    if (block.arity() == 0 || block.input(0).isEmpty()) {
      return mapping_->emptySlotName;
    }
    return renderInput(block.input(0));
  }
  return substitute(mapping_->getTemplate(block.opcodeId()), block);
}

std::string Translator::mappedCode(const Script& script) const {
  std::vector<std::string> lines;
  for (const blocks::BlockPtr& block : script.blocks()) {
    std::string code = mappedCode(*block);
    if (code.empty()) continue;  // e.g. declaration blocks handled apart
    lines.push_back(code + mapping_->statementSuffix);
  }
  return strings::join(lines, "\n");
}

std::string Translator::mappedCode(const Ring& ring) const {
  if (ring.kind() == RingKind::Reporter) {
    std::string body = mappedCode(*ring.expression());
    // Languages with first-class functions wrap the body in a lambda
    // (their reifyReporter template); C-family targets emit the bare
    // expression, exactly like Listing 2's mappedCode().
    if (mapping_->hasTemplate(blocks::id(Op::reifyReporter))) {
      return strings::replaceAll(
          mapping_->getTemplate(blocks::id(Op::reifyReporter)), "<#1>", body);
    }
    return body;
  }
  return mappedCode(*ring.script());
}

std::string Translator::declarationsFor(const Script& script) const {
  // Find every declared name and the type of its first assignment.
  std::vector<std::string> names;
  std::unordered_map<std::string, CType> types;
  std::function<void(const Script&)> walk = [&](const Script& s) {
    for (const blocks::BlockPtr& block : s.blocks()) {
      if (block->is(Op::doDeclareVariables)) {
        for (const Input& input : block->inputs()) {
          names.push_back(input.literalValue().asText());
        }
      }
      if (block->is(Op::doSetVar) && block->arity() == 2 &&
          block->input(0).isLiteral()) {
        const std::string name = block->input(0).literalValue().asText();
        if (types.count(name) == 0) {
          types[name] = inferInputType(block->input(1));
        }
      }
      for (const Input& input : block->inputs()) {
        if (input.isScript()) walk(*input.script());
      }
    }
  };
  walk(script);

  std::string out;
  for (const std::string& name : names) {
    CType type = types.count(name) ? types[name] : CType::Unknown;
    if (type == CType::DoubleArray) {
      // Array declarations need an initializer; emitters splice it.
      out += "double " + name + "[]";
    } else {
      out += std::string(cTypeName(type)) + " " + name;
    }
    out += ";\n";
  }
  return out;
}

}  // namespace psnap::codegen
