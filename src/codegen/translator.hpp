// The block→text translator: Snap!'s `mappedCode()` (paper Sec. 6.2).
//
// Translation is recursive template substitution: the template for a
// block's opcode is fetched from the CodeMapping and each <#N> placeholder
// is replaced by the translation of input slot N (which may itself be a
// nested block — "the value substituted for a particular placeholder may
// itself have resulted from the translation of a nested block"). <#*>
// splices all remaining (variadic) inputs joined with ", ".
//
// Slot-kind awareness comes from the BlockRegistry: Variable slots render
// as bare identifiers, C-slots as indented statement sequences, empty
// slots as the mapping's implicit-parameter name, literals through the
// mapping's literal formatter.
//
// The module also implements the dynamic→static type mapping the paper
// lists as required for generating correct source code (Sec. 6.3): a
// bottom-up type inference over reporter expressions, used to emit C
// declarations for `script variables`.
#pragma once

#include <string>

#include "blocks/block.hpp"
#include "blocks/registry.hpp"
#include "codegen/mapping.hpp"

namespace psnap::codegen {

/// Inferred static type of an expression (the dynamic→static mapping).
enum class CType { Double, Int, Bool, Text, DoubleArray, Unknown };

/// C spelling of an inferred type.
const char* cTypeName(CType type);

/// Infer the static type of a reporter expression bottom-up by opcode.
CType inferType(const blocks::Block& block);
/// Infer the type of an input slot (literals by value kind).
CType inferInputType(const blocks::Input& input);

class Translator {
 public:
  explicit Translator(const CodeMapping& mapping,
                      const blocks::BlockRegistry& registry =
                          blocks::BlockRegistry::standard());

  const CodeMapping& mapping() const { return *mapping_; }

  /// Translate a single block (reporter or command).
  std::string mappedCode(const blocks::Block& block) const;
  /// Translate a script: one statement per line.
  std::string mappedCode(const blocks::Script& script) const;
  /// Translate a ring by translating its body with blanks replaced by the
  /// mapping's implicit-parameter name (Listing 2's
  /// `aContext.expression.mappedCode()`).
  std::string mappedCode(const blocks::Ring& ring) const;

  /// Emit C declarations for every `script variables` block in `script`,
  /// using type inference over the first assignment to each name.
  std::string declarationsFor(const blocks::Script& script) const;

 private:
  std::string renderInput(const blocks::Input& input) const;
  std::string substitute(const std::string& text,
                         const blocks::Block& block) const;

  const CodeMapping* mapping_;
  const blocks::BlockRegistry* registry_;
};

}  // namespace psnap::codegen
