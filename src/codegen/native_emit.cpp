#include "codegen/native_emit.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "blocks/environment.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::codegen {

using blocks::Block;
using blocks::Input;
using blocks::InputKind;
using blocks::Op;
using blocks::Ring;
using blocks::RingKind;
using blocks::RingPtr;
using blocks::Value;

const char* kernelShapeName(KernelShape shape) {
  switch (shape) {
    case KernelShape::Unary: return "unary";
    case KernelShape::Binary: return "binary";
    case KernelShape::Fold: return "fold";
  }
  return "unknown";
}

const char* kernelSymbol(KernelShape shape) {
  switch (shape) {
    case KernelShape::Unary: return "psnap_kernel";
    case KernelShape::Binary: return "psnap_kernel2";
    case KernelShape::Fold: return "psnap_kernel_fold";
  }
  return "psnap_kernel";
}

namespace {

[[noreturn]] void reject(const std::string& why) {
  throw CodegenError("native tier: " + why);
}

/// A C99 hexfloat literal with the exact bit pattern of `v` — the kernel
/// must compute with the same double the interpreter's Value holds.
std::string hexDouble(double v) {
  if (!std::isfinite(v)) reject("non-finite numeric constant");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

// The double closest to pi, spelled so the emitted trig matches
// pure_eval's `x * kPi / 180.0` bit for bit.
constexpr const char* kPiHex = "0x1.921fb54442d18p+1";

/// One scalar C expression plus its kind (the emitter's two-type world:
/// numbers are double, predicates are int).
struct Emitted {
  std::string code;
  bool isBool = false;
};

/// Parameter naming for one ring frame. `params[ordinal]` is the C name a
/// blank or formal at that ordinal renders to; empty names mark the fold's
/// list parameter, which may only appear in list positions.
struct Frame {
  const Ring* ring = nullptr;
  std::vector<std::string> params;
};

class KernelEmitter {
 public:
  KernelEmitter(const Ring& ring, KernelShape shape)
      : ring_(ring), shape_(shape) {}

  NativeKernelSource emit();

 private:
  Emitted scalar(const Block& block);
  Emitted scalarInput(const Input& input);
  /// Render a scalar operand coerced to double (pure_eval's asNumber:
  /// booleans coerce to 1/0, numbers pass through).
  std::string num(const Input& input);
  /// Render an operand that must already be a predicate (asBoolean throws
  /// on numbers, so a Num operand here is rejected, exactly like the
  /// deterministic TypeError the interpreter raises).
  std::string boolean(const Input& input);
  Emitted paramRef(size_t ordinal);
  Emitted variable(const std::string& name);
  /// Is this input the fold's list parameter (a blank, or the single
  /// formal, of the outer fold ring)?
  bool isListParam(const Input& input) const;
  RingPtr innerRingOf(const Input& input) const;
  std::string emitFold(const Block& combine);

  const Ring& ring_;
  KernelShape shape_;
  std::vector<Frame> frames_;
  bool paramUsed_ = false;
  // Helper usage flags: only helpers the body needs are emitted, keeping
  // the translation unit warning-clean without attribute games.
  bool div_ = false, mod_ = false, sqrt_ = false, ln_ = false, log_ = false,
       and_ = false, or_ = false, ifElse_ = false, ifElseB_ = false,
       item_ = false;
  std::vector<std::string> folds_;
};

bool KernelEmitter::isListParam(const Input& input) const {
  if (shape_ != KernelShape::Fold || frames_.size() != 1) return false;
  if (input.kind() == InputKind::Empty) {
    try {
      blocks::emptySlotOrdinal(ring_, &input);
      return true;
    } catch (const BlockError&) {
      return false;
    }
  }
  if (input.kind() == InputKind::BlockExpr &&
      input.block()->is(Op::reportGetVar)) {
    const std::string name = input.block()->input(0).literalValue().asText();
    const auto& formals = ring_.formals();
    return formals.size() == 1 && formals[0] == name;
  }
  return false;
}

RingPtr KernelEmitter::innerRingOf(const Input& input) const {
  if (input.kind() == InputKind::Literal &&
      input.literalValue().isRing()) {
    return input.literalValue().asRing();
  }
  if (input.kind() == InputKind::BlockExpr &&
      input.block()->is(Op::reifyReporter)) {
    // Mirror pure_eval's reifyReporter: slot 0 is the body, the rest are
    // formal names.
    const Block& reify = *input.block();
    if (reify.arity() == 0 || !reify.input(0).isBlock()) {
      reject("combine ring has no reporter body");
    }
    std::vector<std::string> formals;
    for (size_t i = 1; i < reify.arity(); ++i) {
      formals.push_back(reify.input(i).literalValue().asText());
    }
    return Ring::reporter(reify.input(0).block(), std::move(formals));
  }
  reject("combine expects a literal ring");
}

Emitted KernelEmitter::paramRef(size_t ordinal) {
  const Frame& frame = frames_.back();
  // pure_eval's blank rule: with a single argument, every blank resolves
  // to it regardless of ordinal.
  if (frame.params.size() == 1) ordinal = 0;
  if (ordinal >= frame.params.size()) {
    reject("ring uses more slots than the call shape provides");
  }
  if (frame.params[ordinal].empty()) {
    reject("the list parameter used as a scalar");
  }
  if (frames_.size() == 1) paramUsed_ = true;
  return {frame.params[ordinal], false};
}

Emitted KernelEmitter::variable(const std::string& name) {
  // Innermost frame's formals first (pure_eval walks the frame chain the
  // same way), then the ring's captured snapshot baked in as a constant —
  // compileRing snapshots captured values at compile time, so a constant
  // is exactly the snapshot semantics.
  for (size_t f = frames_.size(); f-- > 0;) {
    const Frame& frame = frames_[f];
    const auto& formals = frame.ring->formals();
    for (size_t i = 0; i < formals.size(); ++i) {
      if (formals[i] != name) continue;
      if (f != frames_.size() - 1) {
        reject("variable '" + name + "' crosses a combine ring boundary");
      }
      return paramRef(i);
    }
    if (frame.ring->captured() && frame.ring->captured()->isDeclared(name)) {
      const Value v = frame.ring->captured()->get(name);
      if (v.isNumber()) return {hexDouble(v.asNumber()), false};
      if (v.isBoolean()) return {v.asBoolean() ? "1" : "0", true};
      reject("captured variable '" + name + "' is not numeric");
    }
  }
  reject("variable '" + name + "' is not bound to a parameter or number");
}

std::string KernelEmitter::num(const Input& input) {
  Emitted e = scalarInput(input);
  // asNumber coerces booleans to 1/0.
  return e.isBool ? "((double)" + e.code + ")" : e.code;
}

std::string KernelEmitter::boolean(const Input& input) {
  Emitted e = scalarInput(input);
  if (!e.isBool) reject("a number where the interpreter expects a boolean");
  return e.code;
}

Emitted KernelEmitter::scalarInput(const Input& input) {
  switch (input.kind()) {
    case InputKind::Literal: {
      const Value& v = input.literalValue();
      if (v.isNumber()) return {hexDouble(v.asNumber()), false};
      if (v.isBoolean()) return {v.asBoolean() ? "1" : "0", true};
      reject("unsupported literal kind in kernel body");
    }
    case InputKind::BlockExpr:
      return scalar(*input.block());
    case InputKind::Empty: {
      for (size_t f = frames_.size(); f-- > 0;) {
        try {
          const size_t ordinal =
              blocks::emptySlotOrdinal(*frames_[f].ring, &input);
          if (f != frames_.size() - 1) {
            reject("a blank crosses a combine ring boundary");
          }
          return paramRef(ordinal);
        } catch (const BlockError&) {
          continue;
        }
      }
      reject("blank outside the kernel's ring");
    }
    default:
      reject("unsupported input kind in kernel body");
  }
}

std::string KernelEmitter::emitFold(const Block& combine) {
  // reportCombine(list, ring): a strict left fold with the interpreter's
  // empty-list-reports-0 rule. The inner binary expression is emitted
  // with acc/it as its parameters.
  if (!isListParam(combine.input(0))) {
    reject("combine over something other than the list parameter");
  }
  RingPtr inner = innerRingOf(combine.input(1));
  if (inner->kind() != RingKind::Reporter) reject("combine ring is a command");
  frames_.push_back({inner.get(), {"acc", "it"}});
  Emitted body = scalar(*inner->expression());
  frames_.pop_back();
  if (body.isBool) reject("combine ring reports a boolean");
  const std::string name = "psnap_fold_" + std::to_string(folds_.size());
  std::string fn;
  fn += "static double " + name +
        "(const double *a, long n, int *err) {\n";
  fn += "    (void) err;\n";
  fn += "    if (n == 0) return 0.0;\n";
  fn += "    double acc = a[0];\n";
  fn += "    for (long i = 1; i < n; i++) {\n";
  fn += "        double it = a[i];\n";
  fn += "        acc = " + body.code + ";\n";
  fn += "        if (*err) return 0.0;\n";
  fn += "    }\n";
  fn += "    return acc;\n";
  fn += "}\n";
  folds_.push_back(fn);
  return name + "(a, n, err)";
}

Emitted KernelEmitter::scalar(const Block& block) {
  const Op op = static_cast<Op>(block.opcodeId());
  switch (op) {
    case Op::reportSum:
      return {"(" + num(block.input(0)) + " + " + num(block.input(1)) + ")",
              false};
    case Op::reportDifference:
      return {"(" + num(block.input(0)) + " - " + num(block.input(1)) + ")",
              false};
    case Op::reportProduct:
      return {"(" + num(block.input(0)) + " * " + num(block.input(1)) + ")",
              false};
    case Op::reportQuotient:
      div_ = true;
      return {"psnap_div(" + num(block.input(0)) + ", " +
                  num(block.input(1)) + ", err)",
              false};
    case Op::reportModulus:
      mod_ = true;
      return {"psnap_mod(" + num(block.input(0)) + ", " +
                  num(block.input(1)) + ", err)",
              false};
    case Op::reportPower:
      return {"pow(" + num(block.input(0)) + ", " + num(block.input(1)) +
                  ")",
              false};
    case Op::reportRound:
      return {"round(" + num(block.input(0)) + ")", false};
    case Op::reportMonadic: {
      if (!block.input(0).isLiteral()) reject("non-literal monadic selector");
      const std::string fn =
          strings::toLower(block.input(0).literalValue().asText());
      const std::string x = num(block.input(1));
      if (fn == "sqrt") {
        sqrt_ = true;
        return {"psnap_sqrt(" + x + ", err)", false};
      }
      if (fn == "abs") return {"fabs(" + x + ")", false};
      if (fn == "floor") return {"floor(" + x + ")", false};
      if (fn == "ceiling") return {"ceil(" + x + ")", false};
      if (fn == "sin" || fn == "cos" || fn == "tan") {
        return {fn + "((" + x + ") * " + std::string(kPiHex) + " / 180.0)",
                false};
      }
      if (fn == "asin" || fn == "acos" || fn == "atan") {
        return {"(" + fn + "(" + x + ") * 180.0 / " + std::string(kPiHex) +
                    ")",
                false};
      }
      if (fn == "ln") {
        ln_ = true;
        return {"psnap_ln(" + x + ", err)", false};
      }
      if (fn == "log") {
        log_ = true;
        return {"psnap_log(" + x + ", err)", false};
      }
      if (fn == "e^") return {"exp(" + x + ")", false};
      if (fn == "10^") return {"pow(10.0, " + x + ")", false};
      reject("unsupported monadic function \"" + fn + "\"");
    }

    case Op::reportEquals:
    case Op::reportLessThan:
    case Op::reportGreaterThan: {
      Emitted a = scalarInput(block.input(0));
      Emitted b = scalarInput(block.input(1));
      if (a.isBool != b.isBool) reject("mixed-kind comparison");
      if (a.isBool && op != Op::reportEquals) {
        // lessThanValues over booleans falls back to text ordering of
        // "true"/"false" — out of the numeric subset.
        reject("ordering comparison over booleans");
      }
      const char* cmp = op == Op::reportEquals  ? " == "
                        : op == Op::reportLessThan ? " < "
                                                   : " > ";
      return {"(" + a.code + cmp + b.code + ")", true};
    }
    case Op::reportAnd:
      and_ = true;
      return {"psnap_and(" + boolean(block.input(0)) + ", " +
                  boolean(block.input(1)) + ")",
              true};
    case Op::reportOr:
      or_ = true;
      return {"psnap_or(" + boolean(block.input(0)) + ", " +
                  boolean(block.input(1)) + ")",
              true};
    case Op::reportNot:
      return {"(!" + boolean(block.input(0)) + ")", true};
    case Op::reportIfElse: {
      const std::string cond = boolean(block.input(0));
      Emitted yes = scalarInput(block.input(1));
      Emitted no = scalarInput(block.input(2));
      if (yes.isBool != no.isBool) reject("mixed-kind if-else branches");
      // The interpreter evaluates both branches before choosing (inputs
      // are strict); a helper call keeps that order observable through
      // the err flag, where C's ?: would skip one side.
      if (yes.isBool) {
        ifElseB_ = true;
        return {"psnap_ifelse_b(" + cond + ", " + yes.code + ", " + no.code +
                    ")",
                true};
      }
      ifElse_ = true;
      return {"psnap_ifelse(" + cond + ", " + yes.code + ", " + no.code +
                  ")",
              false};
    }

    case Op::reportIdentity:
      return scalarInput(block.input(0));
    case Op::reportGetVar:
      return variable(block.input(0).literalValue().asText());

    // --- fold-shape list positions -----------------------------------------
    case Op::reportListLength:
      if (!isListParam(block.input(0))) {
        reject("length of something other than the list parameter");
      }
      return {"((double) n)", false};
    case Op::reportCombine:
      return {emitFold(block), false};
    case Op::reportListItem: {
      if (!isListParam(block.input(1))) {
        reject("item of something other than the list parameter");
      }
      item_ = true;
      return {"psnap_item(a, n, " + num(block.input(0)) + ", err)", false};
    }

    default:
      reject("unsupported block '" + block.opcode() + "'");
  }
}

NativeKernelSource KernelEmitter::emit() {
  if (ring_.kind() != RingKind::Reporter) reject("command ring");
  const auto& formals = ring_.formals();
  Frame frame{&ring_, {}};
  switch (shape_) {
    case KernelShape::Unary:
      if (formals.size() > 1) reject("too many formals for a unary call");
      frame.params = {"x"};
      break;
    case KernelShape::Binary:
      if (formals.size() > 2) reject("too many formals for a binary call");
      frame.params = {"a", "b"};
      break;
    case KernelShape::Fold:
      if (formals.size() > 1) reject("too many formals for a fold call");
      frame.params = {""};  // the list parameter: list positions only
      break;
  }
  frames_.push_back(frame);
  Emitted body = scalar(*ring_.expression());

  std::string tu;
  tu += "/* generated by the psnap native tier -- do not edit */\n";
  tu += "#include <math.h>\n\n";
  if (div_) {
    tu += "static double psnap_div(double a, double b, int *err) {\n";
    tu += "    if (b == 0) { *err = 1; return 0.0; }\n";
    tu += "    return a / b;\n}\n\n";
  }
  if (mod_) {
    tu += "static double psnap_mod(double a, double b, int *err) {\n";
    tu += "    double r;\n";
    tu += "    if (b == 0) { *err = 1; return 0.0; }\n";
    tu += "    r = fmod(a, b);\n";
    tu += "    if (r != 0 && ((r < 0) != (b < 0))) r += b;\n";
    tu += "    return r;\n}\n\n";
  }
  if (sqrt_) {
    tu += "static double psnap_sqrt(double x, int *err) {\n";
    tu += "    if (x < 0) { *err = 1; return 0.0; }\n";
    tu += "    return sqrt(x);\n}\n\n";
  }
  if (ln_) {
    tu += "static double psnap_ln(double x, int *err) {\n";
    tu += "    if (x <= 0) { *err = 1; return 0.0; }\n";
    tu += "    return log(x);\n}\n\n";
  }
  if (log_) {
    tu += "static double psnap_log(double x, int *err) {\n";
    tu += "    if (x <= 0) { *err = 1; return 0.0; }\n";
    tu += "    return log10(x);\n}\n\n";
  }
  if (and_) {
    tu += "static int psnap_and(int a, int b) { return a && b; }\n\n";
  }
  if (or_) {
    tu += "static int psnap_or(int a, int b) { return a || b; }\n\n";
  }
  if (ifElse_) {
    tu += "static double psnap_ifelse(int c, double a, double b) "
          "{ return c ? a : b; }\n\n";
  }
  if (ifElseB_) {
    tu += "static int psnap_ifelse_b(int c, int a, int b) "
          "{ return c ? a : b; }\n\n";
  }
  if (item_) {
    tu += "static double psnap_item(const double *a, long n, double idx, "
          "int *err) {\n";
    tu += "    long i;\n";
    tu += "    if (!(idx >= -4503599627370496.0 && "
          "idx <= 4503599627370496.0)) { *err = 1; return 0.0; }\n";
    tu += "    i = (long) llround(idx);\n";
    tu += "    if (i < 1 || i > n) { *err = 1; return 0.0; }\n";
    tu += "    return a[i - 1];\n}\n\n";
  }
  for (const std::string& fold : folds_) tu += fold + "\n";

  const std::string ret =
      body.isBool ? "(double)" + body.code : body.code;
  switch (shape_) {
    case KernelShape::Unary: {
      tu += "double psnap_kernel(double x, int *err) {\n";
      tu += "    (void) x;\n    (void) err;\n";
      tu += "    return " + ret + ";\n}\n\n";
      tu += "long psnap_kernel_batch(const double *in, double *out, "
            "long n) {\n";
      tu += "    long i;\n";
      tu += "    for (i = 0; i < n; i++) {\n";
      tu += "        int e = 0;\n";
      tu += "        out[i] = psnap_kernel(in[i], &e);\n";
      tu += "        if (e) return i;\n";
      tu += "    }\n";
      tu += "    return -1;\n}\n\n";
      // The paper's Listing 5 shape: the same loop under an OpenMP
      // parallel-for, for callers that hand the kernel a whole array
      // instead of pool-sized chunks. Error indices still report the
      // smallest erring element so the fallback is deterministic.
      tu += "#ifdef _OPENMP\n";
      tu += "long psnap_kernel_batch_omp(const double *in, double *out, "
            "long n) {\n";
      tu += "    long bad = -1;\n";
      tu += "    long i;\n";
      tu += "    #pragma omp parallel for\n";
      tu += "    for (i = 0; i < n; i++) {\n";
      tu += "        int e = 0;\n";
      tu += "        out[i] = psnap_kernel(in[i], &e);\n";
      tu += "        if (e) {\n";
      tu += "            #pragma omp critical\n";
      tu += "            { if (bad < 0 || i < bad) bad = i; }\n";
      tu += "        }\n";
      tu += "    }\n";
      tu += "    return bad;\n}\n";
      tu += "#endif\n";
      break;
    }
    case KernelShape::Binary:
      tu += "double psnap_kernel2(double a, double b, int *err) {\n";
      tu += "    (void) a;\n    (void) b;\n    (void) err;\n";
      tu += "    return " + ret + ";\n}\n";
      break;
    case KernelShape::Fold:
      tu += "double psnap_kernel_fold(const double *a, long n, int *err) "
            "{\n";
      tu += "    (void) a;\n    (void) n;\n    (void) err;\n";
      tu += "    return " + ret + ";\n}\n";
      break;
  }

  NativeKernelSource out;
  out.shape = shape_;
  // Binary and fold kernels always marshal their inputs; the flag only
  // relaxes the unary scalar path for constant bodies.
  out.paramUsed = shape_ == KernelShape::Unary ? paramUsed_ : true;
  out.returnsBool = body.isBool;
  out.sources["kernel.c"] = tu;
  return out;
}

// --- content key ------------------------------------------------------------

struct KeyHasher {
  uint64_t h = 0xcbf29ce484222325ull;
  void bytes(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
  }
  void tag(uint8_t t) { bytes(&t, 1); }
  void u64(uint64_t v) { bytes(&v, 8); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void value(const Value& v);
  void ring(const Ring& ring);
  void input(const Input& input, const Ring& owner);
  void block(const Block& block, const Ring& owner);
};

void KeyHasher::value(const Value& v) {
  if (v.isNumber()) {
    tag(1);
    double d = v.asNumber();
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    u64(bits);
  } else if (v.isBoolean()) {
    tag(2);
    tag(v.asBoolean() ? 1 : 0);
  } else if (v.isText()) {
    tag(3);
    str(v.asText());
  } else if (v.isRing()) {
    tag(4);
    ring(*v.asRing());
  } else {
    tag(9);  // any other kind is ineligible anyway; a marker is enough
  }
}

void KeyHasher::ring(const Ring& r) {
  tag(10);
  u64(r.formals().size());
  for (const std::string& f : r.formals()) str(f);
  block(*r.expression(), r);
}

void KeyHasher::input(const Input& in, const Ring& owner) {
  switch (in.kind()) {
    case InputKind::Literal:
      tag(20);
      value(in.literalValue());
      break;
    case InputKind::BlockExpr:
      tag(21);
      block(*in.block(), owner);
      break;
    case InputKind::Empty:
      tag(22);  // ordinal is implied by traversal order
      break;
    default:
      tag(23);
      break;
  }
}

void KeyHasher::block(const Block& b, const Ring& owner) {
  tag(30);
  u64(b.opcodeId());
  // Captured reads bake into the kernel as constants, so the snapshot
  // value is part of the identity (compileRing snapshots the same way).
  if (b.is(Op::reportGetVar) && b.arity() == 1 && b.input(0).isLiteral()) {
    const std::string name = b.input(0).literalValue().asText();
    str(name);
    const auto& formals = owner.formals();
    bool formal = false;
    for (const std::string& f : formals) formal = formal || f == name;
    if (!formal && owner.captured() && owner.captured()->isDeclared(name)) {
      value(owner.captured()->get(name));
    }
    return;
  }
  u64(b.arity());
  for (const Input& in : b.inputs()) input(in, owner);
}

}  // namespace

NativeKernelSource emitNativeKernel(const Ring& ring, KernelShape shape) {
  return KernelEmitter(ring, shape).emit();
}

uint64_t kernelContentKey(const Ring& ring, KernelShape shape) {
  KeyHasher hasher;
  hasher.tag(static_cast<uint8_t>(shape));
  hasher.ring(ring);
  return hasher.h;
}

}  // namespace psnap::codegen
