// Whole-program emitters for the paper's Section 6 artifacts:
//
//   * Listings 3–4: the sequential and OpenMP "hello(ID), world(ID)"
//     programs.
//   * Listing 5 / Fig. 16: the map-times-ten script translated to a
//     complete C program (linked-list append version).
//   * Listings 6–7 + kvp.h: the MapReduce OpenMP program — the map and
//     reduce functions generated from the user's rings, plus the driver
//     with `#pragma omp parallel for` over both phases and the key sort
//     in between.
//
// Each emitter returns the file set ready for the Toolchain to compile
// and run outside the "browser" — the paper's Fig. 17 workflow.
#pragma once

#include <map>
#include <string>

#include "blocks/block.hpp"
#include "codegen/translator.hpp"

namespace psnap::codegen {

/// A generated program: file name → contents. The main file is "main.c".
using SourceSet = std::map<std::string, std::string>;

/// Listing 3: sequential hello world in C.
SourceSet helloSequentialC();
/// Listing 4: the same program with the OpenMP pragma and thread ids.
SourceSet helloOpenMP();

/// Listing 5: translate `set b to (map (x * factor) over values)` into a
/// complete C program that appends the mapped values to a linked list and
/// optionally prints them (printing enabled so the Toolchain run can be
/// checked against the interpreter's result).
SourceSet mapProgramC(const std::vector<double>& values, double factor);

/// The same computation with the map loop parallelized by OpenMP.
SourceSet mapProgramOpenMP(const std::vector<double>& values, double factor);

/// Listings 6–7: the MapReduce OpenMP program. The map ring is translated
/// into the body of `int map(KVP*, KVP*)` with its blank bound to
/// `in->val`; the reduce ring into `int reduce(...)` over one key group's
/// value array (`a`, `count`). Emits kvp.h, mapreduce.c, and main.c.
///
/// Supported reduce-ring shapes: compositions of combine-with-(+/*/min-
/// max-style binary rings), `length of`, arithmetic, and `item 1 of` over
/// the values list. Anything else raises CodegenError.
SourceSet mapReduceOpenMP(const blocks::RingPtr& mapRing,
                          const blocks::RingPtr& reduceRing);

/// The kvp.h header shared by MapReduce programs (paper Listing 6's
/// include).
std::string kvpHeader();

/// A Makefile for a generated source set (the paper's future-work item:
/// "automating the compilation and linking of the textual output").
std::string makefileFor(const SourceSet& sources, bool openmp,
                        const std::string& target = "program");

/// An outline batch-submission script for running the generated binary on
/// a cluster (future work: "generate an outline of the batch submission
/// script").
std::string slurmScriptFor(const std::string& binary, int nodes,
                           int tasksPerNode, const std::string& jobName);

}  // namespace psnap::codegen
