#include "codegen/programs.hpp"

#include <cmath>
#include <unordered_map>

#include "blocks/builder.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::codegen {

using blocks::Block;
using blocks::Input;
using blocks::InputKind;
using blocks::Ring;
using blocks::RingKind;
using blocks::RingPtr;
using blocks::Value;

SourceSet helloSequentialC() {
  // Paper Listing 3, verbatim.
  SourceSet out;
  out["main.c"] = R"(#include <stdio.h>
void main() {
    int ID = 0;
    printf(" hello(%d), ", ID);
    printf(" world(%d) \n", ID);
}
)";
  return out;
}

SourceSet helloOpenMP() {
  // Paper Listing 4, verbatim.
  SourceSet out;
  out["main.c"] = R"(#include <stdio.h>
#include "omp.h"
void main() {
    #pragma omp parallel
    {
        int ID = omp_get_thread_num();
        printf(" hello(%d), ", ID);
        printf(" world(%d) \n", ID);
    }
}
)";
  return out;
}

namespace {

bool allIntegral(const std::vector<double>& values) {
  for (double v : values) {
    if (v != std::floor(v)) return false;
  }
  return true;
}

std::string arrayLiteral(const std::vector<double>& values) {
  std::string out = "{";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += strings::formatNumber(values[i]);
  }
  return out + "}";
}

/// Translate the Fig. 16 loop body via the block translator so the emitted
/// code really comes from blocks, not from a canned string.
std::string mapLoopFromBlocks(const Translator& translator, double factor) {
  using namespace psnap::build;
  auto loop = repeat(getVar("len"),
                     scriptOf({addToList(
                         product(itemOf(getVar("i"), getVar("a")), factor),
                         getVar("b"))}));
  return translator.mappedCode(*loop);
}

}  // namespace

SourceSet mapProgramC(const std::vector<double>& values, double factor) {
  // Paper Listing 5: the translated Fig. 16 script wrapped in the linked
  // list scaffolding of the C code mapping, plus a verification print
  // loop so the Toolchain run can be compared with the interpreter.
  const bool ints = allIntegral(values) && factor == std::floor(factor);
  const std::string elem = ints ? "int" : "double";
  const std::string fmt = ints ? "%d" : "%g";

  Translator translator(CodeMapping::c());
  std::string loop = mapLoopFromBlocks(translator, factor);
  if (ints) {
    // Listing 5 uses int arithmetic; the generic templates emit the same
    // expressions, only the declarations differ.
    loop = strings::replaceAll(loop, "(int)(i) - 1", "i - 1");
  }

  std::string program;
  program += "#include <stdio.h>\n#include <stdlib.h>\n\n";
  program += "typedef struct node {\n    " + elem +
             " data;\n    struct node *next;\n} node_t;\n\n";
  program += "void append(" + elem + " d, node_t *p) {\n";
  program += "    while (p->next != NULL)\n        p = p->next;\n";
  program += "    p->next = (node_t *) malloc(sizeof(node_t));\n";
  program += "    p = p->next;\n    p->data = d;\n    p->next = NULL;\n}\n\n";
  program += "int main()\n{\n";
  program += "    int len;\n";
  program += "    " + elem + " a[] = " + arrayLiteral(values) + ";\n";
  program += "    node_t *b = (node_t *) malloc(sizeof(node_t));\n";
  program += "    b->next = NULL;\n";
  program += "    len = (sizeof(a)/sizeof(a[0]));\n";
  program += "    int i; " + strings::indent(loop, 4).substr(4) + "\n";
  program += "    for (node_t *p = b->next; p != NULL; p = p->next) {\n";
  program += "        printf(\"" + fmt + "\\n\", p->data);\n    }\n";
  program += "    return (0);\n}\n";

  SourceSet out;
  out["main.c"] = program;
  return out;
}

SourceSet mapProgramOpenMP(const std::vector<double>& values, double factor) {
  // The parallel variant: element-wise writes into a result array under
  // `#pragma omp parallel for` (a linked-list append cannot be safely
  // parallelized, so the OpenMP mapping targets an array).
  const bool ints = allIntegral(values) && factor == std::floor(factor);
  const std::string elem = ints ? "int" : "double";
  const std::string fmt = ints ? "%d" : "%g";

  std::string program;
  program += "#include <stdio.h>\n#include <omp.h>\n\n";
  program += "int main()\n{\n";
  program += "    " + elem + " a[] = " + arrayLiteral(values) + ";\n";
  program += "    int len = (sizeof(a)/sizeof(a[0]));\n";
  program += "    " + elem + " b[sizeof(a)/sizeof(a[0])];\n";
  program += "    #pragma omp parallel for shared(len, a, b)\n";
  program += "    for (int i = 1; i <= len; i++) {\n";
  program += "        b[i - 1] = (a[i - 1] * " +
             strings::formatNumber(factor) + ");\n    }\n";
  program += "    for (int i = 0; i < len; i++) {\n";
  program += "        printf(\"" + fmt + "\\n\", b[i]);\n    }\n";
  program += "    return (0);\n}\n";

  SourceSet out;
  out["main.c"] = program;
  return out;
}

std::string kvpHeader() {
  // The kvp.h of paper Listing 6/7.
  return R"(#ifndef KVP_H
#define KVP_H

#include <stddef.h>

#define MAXKEY 64

typedef struct KVP {
    char key[MAXKEY];
    float val;
} KVP;

int compare(const void *a, const void *b);

#endif /* KVP_H */
)";
}

namespace {

/// Translate the body of a *reduce* ring into a C expression over one key
/// group's value array (`a`, `count`), collecting fold helpers. Supported
/// shapes: combine-with-binary-ring, length-of, item-1-of, arithmetic
/// composition, literals — enough for the paper's reducers (count, sum,
/// average) and their compositions.
struct ReducerTranslation {
  std::string expression;
  std::vector<std::string> helpers;
};

class ReducerTranslator {
 public:
  explicit ReducerTranslator(const Ring& ring) : ring_(ring) {}

  ReducerTranslation translate() {
    ReducerTranslation out;
    out.expression = expr(*ring_.expression());
    out.helpers = helpers_;
    return out;
  }

 private:
  /// Does this input denote the values list (the reduce ring's argument)?
  bool isValuesRef(const Input& input) const {
    if (input.isEmpty()) return true;
    if (input.isBlock()) {
      const Block& b = *input.block();
      if (b.opcode() == "reportGetVar" && b.arity() == 1 &&
          !ring_.formals().empty() &&
          b.input(0).literalValue().asText() == ring_.formals()[0]) {
        return true;
      }
      if (b.opcode() == "reportIdentity" && b.arity() == 1) {
        return isValuesRef(b.input(0));
      }
    }
    return false;
  }

  std::string binaryOpOf(const Block& ringBlock) {
    // The inner combiner ring must be a binary operator over two blanks.
    if (ringBlock.opcode() != "reifyReporter" || ringBlock.arity() < 1 ||
        !ringBlock.input(0).isBlock()) {
      throw CodegenError("combine expects a ringed binary operator");
    }
    const Block& body = *ringBlock.input(0).block();
    static const std::unordered_map<std::string, std::string> ops = {
        {"reportSum", "+"},
        {"reportProduct", "*"},
    };
    auto it = ops.find(body.opcode());
    if (it == ops.end()) {
      throw CodegenError("unsupported combiner " + body.opcode() +
                         " in reduce ring");
    }
    return it->second;
  }

  std::string foldHelper(const std::string& op) {
    const std::string name = "fold_" + std::to_string(helpers_.size());
    std::string body;
    body += "static float " + name + "(const float *a, size_t count) {\n";
    body += "    float acc = a[0];\n";
    body += "    for (size_t i = 1; i < count; i++)\n";
    body += "        acc = (acc " + op + " a[i]);\n";
    body += "    return acc;\n}\n";
    helpers_.push_back(body);
    return name;
  }

  std::string expr(const Block& block) {
    const std::string& op = block.opcode();
    if (op == "reportCombine") {
      if (!isValuesRef(block.input(0))) {
        throw CodegenError("combine must fold the reduce ring's values");
      }
      return foldHelper(binaryOpOf(*block.input(1).block())) + "(a, count)";
    }
    if (op == "reportListLength") {
      if (!isValuesRef(block.input(0))) {
        throw CodegenError("length must measure the reduce ring's values");
      }
      return "((float) count)";
    }
    if (op == "reportListItem") {
      if (!isValuesRef(block.input(1))) {
        throw CodegenError("item must index the reduce ring's values");
      }
      return "a[(int)(" + input(block.input(0)) + ") - 1]";
    }
    static const std::unordered_map<std::string, std::string> binops = {
        {"reportSum", "+"},
        {"reportDifference", "-"},
        {"reportProduct", "*"},
        {"reportQuotient", "/"},
    };
    auto it = binops.find(op);
    if (it != binops.end()) {
      return "(" + input(block.input(0)) + " " + it->second + " " +
             input(block.input(1)) + ")";
    }
    if (op == "reportIdentity") return input(block.input(0));
    throw CodegenError("unsupported block " + op + " in reduce ring");
  }

  std::string input(const Input& in) {
    switch (in.kind()) {
      case InputKind::Literal:
        return strings::formatNumber(in.literalValue().asNumber());
      case InputKind::BlockExpr:
        if (isValuesRef(in)) {
          throw CodegenError(
              "the values list may only appear under combine/length/item");
        }
        return expr(*in.block());
      case InputKind::Empty:
        throw CodegenError(
            "the values list may only appear under combine/length/item");
      default:
        throw CodegenError("unsupported input in reduce ring");
    }
  }

  const Ring& ring_;
  std::vector<std::string> helpers_;
};

/// Extract the value expression (and optional literal key) from a map
/// ring: either a plain expression over the blank, or an explicit
/// [key, value] pair built with the list block.
struct MapperTranslation {
  std::string valueExpression;  ///< C expression over `in->val`
  std::string keyLiteral;       ///< empty = copy the input key
};

MapperTranslation translateMapper(const RingPtr& ring) {
  if (ring->kind() != RingKind::Reporter) {
    throw CodegenError("the map ring must be a reporter");
  }
  CodeMapping mapping = CodeMapping::c();
  mapping.emptySlotName = "in->val";
  // Named formal? Render it as in->val too.
  Translator translator(mapping);

  const Block& body = *ring->expression();
  MapperTranslation out;
  if (body.opcode() == "reportNewList" && body.arity() == 2 &&
      body.input(0).isLiteral()) {
    out.keyLiteral = body.input(0).literalValue().asText();
    if (body.input(1).isBlock()) {
      out.valueExpression = translator.mappedCode(*body.input(1).block());
    } else if (body.input(1).isEmpty()) {
      out.valueExpression = "in->val";
    } else {
      out.valueExpression =
          mapping.formatLiteral(body.input(1).literalValue());
    }
  } else {
    out.valueExpression = translator.mappedCode(body);
  }
  if (!ring->formals().empty()) {
    // A named formal denotes the input value.
    out.valueExpression = strings::replaceAll(
        out.valueExpression, ring->formals()[0], "in->val");
  }
  return out;
}

}  // namespace

SourceSet mapReduceOpenMP(const RingPtr& mapRing, const RingPtr& reduceRing) {
  MapperTranslation mapper = translateMapper(mapRing);
  ReducerTranslation reducer = ReducerTranslator(*reduceRing).translate();

  // --- mapreduce.c: the generated map and reduce functions (Listing 6) ---
  std::string functions;
  functions += "#include <math.h>\n#include <string.h>\n";
  functions += "#include \"kvp.h\"\n\n";
  for (const std::string& helper : reducer.helpers) {
    functions += helper + "\n";
  }
  functions += "int map (KVP *in, KVP *out) {\n";
  if (mapper.keyLiteral.empty()) {
    functions += "    strncpy (out->key, in->key, MAXKEY);\n";
  } else {
    functions +=
        "    strncpy (out->key, \"" + mapper.keyLiteral + "\", MAXKEY);\n";
  }
  functions += "    out->val = " + mapper.valueExpression + ";\n";
  functions += "    return 0;\n}\n\n";
  functions +=
      "int reduce (const char *key, const float *a, size_t count, "
      "KVP *out) {\n";
  functions += "    strncpy (out->key, key, MAXKEY);\n";
  functions += "    out->val = " + reducer.expression + ";\n";
  functions += "    return 0;\n}\n";

  // --- main.c: the OpenMP driver (Listing 7, with the footnote-6 key
  // grouping made explicit so the reduce semantics match the block) -------
  std::string driver = R"(/* OpenMP driver for Parallel Snap! MapReduce code output. */
#include <omp.h>
#include <stdlib.h>
#include <string.h>
#include <stdio.h>
#include "kvp.h"

int map(KVP *in, KVP *out);
int reduce(const char *key, const float *a, size_t count, KVP *out);

int compare(const void *a, const void *b) {
    return strncmp(((const KVP *) a)->key, ((const KVP *) b)->key, MAXKEY);
}

static int input(int *nkvp, KVP **list) {
    int capacity = 1024;
    KVP *items = malloc((size_t) capacity * sizeof(KVP));
    int count = 0;
    char key[MAXKEY];
    float val;
    while (scanf("%63s %f", key, &val) == 2) {
        if (count == capacity) {
            capacity *= 2;
            items = realloc(items, (size_t) capacity * sizeof(KVP));
        }
        strncpy(items[count].key, key, MAXKEY);
        items[count].val = val;
        count++;
    }
    *nkvp = count;
    *list = items;
    return 0;
}

static int output(int nkvp, const KVP *list) {
    for (int i = 0; i < nkvp; i++) {
        printf("%s %g\n", list[i].key, (double) list[i].val);
    }
    return 0;
}

int main(int argc, char *argv[]) {
    int nkvp;
    KVP *inputlist, *midlist, *outputlist;
    (void) argc; (void) argv;

    if (input(&nkvp, &inputlist) != 0) {
        return 1;
    }
    if (nkvp == 0) {
        free(inputlist);
        return 0;
    }
    midlist = malloc((size_t) nkvp * sizeof(KVP));

    /* Run mapper */
    #pragma omp parallel for shared(nkvp, inputlist, midlist)
    for (int i = 0; i < nkvp; i++) {
        map(&inputlist[i], &midlist[i]);
    }

    /* Sort on keys */
    qsort(midlist, (size_t) nkvp, sizeof(KVP), compare);

    /* Group consecutive equal keys */
    int ngroups = 0;
    int *starts = malloc((size_t) (nkvp + 1) * sizeof(int));
    for (int i = 0; i < nkvp; i++) {
        if (i == 0 ||
            strncmp(midlist[i].key, midlist[i - 1].key, MAXKEY) != 0) {
            starts[ngroups++] = i;
        }
    }
    starts[ngroups] = nkvp;
    outputlist = malloc((size_t) ngroups * sizeof(KVP));

    /* Run reducer */
    #pragma omp parallel for shared(ngroups, starts, midlist, outputlist)
    for (int g = 0; g < ngroups; g++) {
        int begin = starts[g];
        int end = starts[g + 1];
        float *vals = malloc((size_t) (end - begin) * sizeof(float));
        for (int i = begin; i < end; i++) {
            vals[i - begin] = midlist[i].val;
        }
        reduce(midlist[begin].key, vals, (size_t) (end - begin),
               &outputlist[g]);
        free(vals);
    }

    if (output(ngroups, outputlist) != 0) {
        exit(1);
    }

    free(inputlist);
    free(midlist);
    free(starts);
    free(outputlist);

    return 0;
}
)";

  SourceSet out;
  out["kvp.h"] = kvpHeader();
  out["mapreduce.c"] = functions;
  out["main.c"] = driver;
  return out;
}

std::string makefileFor(const SourceSet& sources, bool openmp,
                        const std::string& target) {
  std::string cfiles;
  for (const auto& [name, contents] : sources) {
    if (strings::endsWith(name, ".c")) cfiles += name + " ";
  }
  std::string out;
  out += "CC = gcc\n";
  out += std::string("CFLAGS = -O2 -Wall") + (openmp ? " -fopenmp" : "") +
         "\n";
  out += "LDLIBS = -lm\n\n";
  out += target + ": " + cfiles + "\n";
  out += "\t$(CC) $(CFLAGS) -o $@ " + cfiles + "$(LDLIBS)\n\n";
  out += "clean:\n\trm -f " + target + "\n";
  return out;
}

std::string slurmScriptFor(const std::string& binary, int nodes,
                           int tasksPerNode, const std::string& jobName) {
  std::string out;
  out += "#!/bin/bash\n";
  out += "#SBATCH --job-name=" + jobName + "\n";
  out += "#SBATCH --nodes=" + std::to_string(nodes) + "\n";
  out += "#SBATCH --ntasks-per-node=" + std::to_string(tasksPerNode) + "\n";
  out += "#SBATCH --time=00:10:00\n";
  out += "#SBATCH --output=" + jobName + ".%j.out\n\n";
  out += "export OMP_NUM_THREADS=" + std::to_string(tasksPerNode) + "\n";
  out += "srun ./" + binary + "\n";
  return out;
}

}  // namespace psnap::codegen
