// The compile-and-run half of the paper's Fig. 17 workflow: generated
// text is written to disk, compiled with gcc (optionally with -fopenmp),
// and executed, with stdout captured — "the text file is then compiled and
// linked against an OpenMP run time to produce a parallel program".
#pragma once

#include <filesystem>
#include <string>

#include "codegen/programs.hpp"

namespace psnap::codegen {

struct RunResult {
  int exitCode = -1;
  std::string output;  ///< captured stdout
};

class Toolchain {
 public:
  /// Work in `directory` (created if missing); a unique temp directory is
  /// created when the path is empty.
  explicit Toolchain(std::filesystem::path directory = {});

  const std::filesystem::path& directory() const { return dir_; }

  /// True when a usable C compiler is on PATH.
  static bool compilerAvailable();

  /// Write the source set into the work directory.
  void writeSources(const SourceSet& sources);

  /// Compile every .c file in the source set into `binaryName`.
  /// Throws CodegenError with the compiler diagnostics on failure.
  std::filesystem::path compile(const SourceSet& sources,
                                const std::string& binaryName,
                                bool openmp);

  /// Run a binary with optional stdin text and environment prefix (e.g.
  /// "OMP_NUM_THREADS=4"), capturing stdout.
  RunResult run(const std::filesystem::path& binary,
                const std::string& stdinText = "",
                const std::string& envPrefix = "");

  /// One-call pipeline: write, compile, run.
  RunResult compileAndRun(const SourceSet& sources,
                          const std::string& binaryName, bool openmp,
                          const std::string& stdinText = "",
                          const std::string& envPrefix = "");

 private:
  std::filesystem::path dir_;
};

}  // namespace psnap::codegen
