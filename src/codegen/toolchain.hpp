// The compile-and-run half of the paper's Fig. 17 workflow: generated
// text is written to disk, compiled with gcc (optionally with -fopenmp),
// and executed, with stdout captured — "the text file is then compiled and
// linked against an OpenMP run time to produce a parallel program".
//
// Two behaviours matter to the native tier, which drives this class from
// pool workers at JIT time:
//
//   * compiles are content-addressed: compile()/compileShared() hash the
//     source set (names, bytes, flags, output kind) and skip the compiler
//     entirely when the artifact on disk was built from the identical
//     hash — a stamp file next to the binary records the provenance;
//   * an auto-created work directory is owned by the Toolchain and removed
//     in the destructor, so repeated JIT runs stop leaking build trees
//     under /tmp. A directory passed in by the caller is never owned (the
//     native tier's kernel cache keeps one persistent directory so the
//     content cache can hit across compiles). On Linux, removing a .so
//     that is still dlopen-mapped is safe — the mapping survives the
//     unlink.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "codegen/programs.hpp"

namespace psnap::codegen {

struct RunResult {
  int exitCode = -1;
  std::string output;  ///< captured stdout
};

class Toolchain {
 public:
  /// Work in `directory` (created if missing); a unique temp directory is
  /// created — and owned, see ~Toolchain() — when the path is empty.
  explicit Toolchain(std::filesystem::path directory = {});
  /// Removes the work directory iff it was auto-created by this instance.
  ~Toolchain();

  Toolchain(const Toolchain&) = delete;
  Toolchain& operator=(const Toolchain&) = delete;

  const std::filesystem::path& directory() const { return dir_; }

  /// Disown an auto-created directory (the destructor leaves it in place).
  void keepDirectory() { ownsDir_ = false; }

  /// True when a usable C compiler is on PATH.
  static bool compilerAvailable();

  /// Write the source set into the work directory.
  void writeSources(const SourceSet& sources);

  /// Compile every .c file in the source set into `binaryName`.
  /// Throws CodegenError with the compiler diagnostics on failure.
  std::filesystem::path compile(const SourceSet& sources,
                                const std::string& binaryName,
                                bool openmp);

  /// Compile the source set into a shared object (`cc -O2 -shared -fPIC`)
  /// suitable for dlopen. Kernels are built with -ffp-contract=off so the
  /// native tier's byte-identical-output gate holds (a fused
  /// multiply-add would round differently from the interpreter).
  std::filesystem::path compileShared(const SourceSet& sources,
                                      const std::string& libraryName,
                                      bool openmp);

  /// Did the last compile()/compileShared() hit the content cache?
  bool lastCompileCached() const { return lastCompileCached_; }
  /// Process-wide count of compiles skipped by the content cache.
  static uint64_t cacheHits();

  /// Run a binary with optional stdin text and environment prefix (e.g.
  /// "OMP_NUM_THREADS=4"), capturing stdout.
  RunResult run(const std::filesystem::path& binary,
                const std::string& stdinText = "",
                const std::string& envPrefix = "");

  /// One-call pipeline: write, compile, run.
  RunResult compileAndRun(const SourceSet& sources,
                          const std::string& binaryName, bool openmp,
                          const std::string& stdinText = "",
                          const std::string& envPrefix = "");

 private:
  /// Shared engine behind compile()/compileShared(): check the stamp,
  /// invoke `command` when stale, write the new stamp.
  std::filesystem::path compileWith(const SourceSet& sources,
                                    const std::string& outputName,
                                    const std::string& flags,
                                    uint64_t sourceHash);

  std::filesystem::path dir_;
  bool ownsDir_ = false;
  bool lastCompileCached_ = false;
};

}  // namespace psnap::codegen
