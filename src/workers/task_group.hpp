// A batch of tasks with a completion handle — the unit of work the
// persistent WorkerPool executes on behalf of a Parallel operation.
//
// The design point that makes nested pooled work deadlock-free: tasks are
// *claimed* from the group (an atomic cursor), not assigned to specific
// threads. Pool workers claim tasks through runner closures, and any
// thread blocked in wait() first drains every unclaimed task itself.
// After the drain, the only outstanding tasks are ones actively executing
// on other threads, so blocking on the condition variable cannot deadlock
// — even when the waiter is itself a pool worker (mr::Job runs its whole
// pipeline on the pool and waits on child groups from inside it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace psnap::workers {

class TaskGroup {
 public:
  /// A task body; the argument is the task's index within the group.
  using Task = std::function<void(size_t)>;

  explicit TaskGroup(std::vector<Task> tasks)
      : tasks_(std::move(tasks)), pending_(tasks_.size()) {
    if (tasks_.empty()) doneFlag_ = true;
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  size_t size() const { return tasks_.size(); }

  /// Claim and run one unclaimed task on the calling thread. Returns
  /// false once every task has been claimed (not necessarily finished).
  bool runOne() {
    const size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= tasks_.size()) return false;
    try {
      tasks_[index](index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        doneFlag_ = true;
      }
      cv_.notify_all();
    }
    return true;
  }

  /// All tasks finished? Lock-free — this is what the cooperative
  /// scheduler's poll loop (Listing 2's `_resolved`) reads every frame.
  bool done() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }

  /// Drain unclaimed tasks on the calling thread, then block until the
  /// claimed-but-running remainder completes. Never throws; task
  /// exceptions are captured (see error()).
  void wait() {
    while (runOne()) {
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return doneFlag_; });
  }

  /// First exception thrown by a task (null when all tasks were clean).
  /// Meaningful once done().
  std::exception_ptr error() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return error_;
  }

  /// Rethrow the captured exception, if any (call after wait()).
  void rethrowIfError() {
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  std::vector<Task> tasks_;
  std::atomic<size_t> next_{0};
  std::atomic<size_t> pending_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool doneFlag_ = false;          // guarded by mutex_ (cv predicate)
  std::exception_ptr error_;       // guarded by mutex_
};

}  // namespace psnap::workers
