// A batch of tasks with a completion handle — the unit of work the
// persistent WorkerPool executes on behalf of a Parallel operation.
//
// The design point that makes nested pooled work deadlock-free: tasks are
// *claimed* from the group (an atomic cursor), not assigned to specific
// threads. Pool workers claim tasks through runner closures, and any
// thread blocked in wait() first drains every unclaimed task itself.
// After the drain, the only outstanding tasks are ones actively executing
// on other threads, so blocking on the condition variable cannot deadlock
// — even when the waiter is itself a pool worker (mr::Job runs its whole
// pipeline on the pool and waits on child groups from inside it).
//
// Fault model: groups are fail-fast. The first task that throws cancels
// the group's CancelToken; unstarted siblings are then *skipped* at claim
// time (they still count down `pending_`, so waiters always complete)
// instead of being drained to completion on a substrate that is already
// known to be failing. The captured error keeps its exception type — a
// TypeError thrown on a worker resurfaces as a TypeError, not a flattened
// string. An external token (a deadline, a script's stop) cancels the
// group the same way.
//
// Completion model: the group settles a CompletionLatch when its last task
// finishes. onComplete() callbacks fire exactly once, from the worker that
// finished the final task (or immediately if the group is already done) —
// this is the edge the scheduler's parked processes wake on, replacing the
// per-frame done() poll of the paper's Listing 2.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "support/cancel.hpp"
#include "support/error.hpp"
#include "workers/completion.hpp"
#include "workers/stats.hpp"

namespace psnap::workers {

class TaskGroup {
 public:
  /// A task body; the argument is the task's index within the group.
  using Task = std::function<void(size_t)>;

  /// `token`, when given, cancels the group from outside (deadline or
  /// caller stop); the group always also honours its own fail-fast flag.
  /// The group records into the *constructing thread's* stats scope —
  /// captured here so pool workers charge skips and cancellations to the
  /// tenant that submitted the group, not to their own thread's scope.
  explicit TaskGroup(std::vector<Task> tasks, CancelTokenPtr token = nullptr)
      : tasks_(std::move(tasks)),
        pending_(tasks_.size()),
        token_(std::move(token)),
        stats_(&substrateStats()) {
    if (tasks_.empty()) latch_.settle();
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  size_t size() const { return tasks_.size(); }

  /// Request cancellation: tasks not yet claimed are skipped. Running
  /// tasks finish (cooperative model — they observe the token themselves).
  void cancel() {
    if (!cancelled_.exchange(true, std::memory_order_acq_rel)) {
      stats_->bump(&SubstrateStats::cancellations);
    }
  }

  /// Cancelled by a failing sibling, cancel(), or the external token?
  bool cancelRequested() const {
    return cancelled_.load(std::memory_order_acquire) ||
           (token_ && token_->cancelled());
  }

  /// Claim and run one unclaimed task on the calling thread. Returns
  /// false once every task has been claimed (not necessarily finished).
  /// Claims made after cancellation skip the task body.
  bool runOne() {
    const size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= tasks_.size()) return false;
    if (cancelRequested()) {
      stats_->bump(&SubstrateStats::tasksSkipped);
    } else {
      try {
        tasks_[index](index);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (!error_) error_ = std::current_exception();
        }
        cancel();  // fail-fast: unstarted siblings are skipped
      }
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task down: settle on this (worker) thread. Callbacks fire
      // here, after the error slot and every task's outputs are visible.
      latch_.settle();
    }
    return true;
  }

  /// Register a completion callback: fires exactly once, from the worker
  /// that finishes the last task, or immediately if already done.
  void onComplete(CompletionLatch::Callback cb) {
    latch_.onSettle(std::move(cb));
  }

  /// All tasks finished? Lock-free; kept for assertions and internal
  /// gates — scheduler code registers onComplete() instead of polling.
  bool done() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }

  /// Drain unclaimed tasks on the calling thread, then block until the
  /// claimed-but-running remainder completes. Never throws; task
  /// exceptions are captured (see error()).
  void wait() {
    while (runOne()) {
    }
    latch_.wait();
  }

  /// First exception thrown by a task (null when all tasks were clean).
  /// Meaningful once done().
  std::exception_ptr error() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return error_;
  }

  /// The error's class in tagged form (None when clean). Meaningful once
  /// done().
  ErrorClass errorClass() const { return classifyError(error()); }

  /// Rethrow the captured exception with its original type, if any; if
  /// the group was cancelled with no task error, raise the cancellation
  /// itself (TimeoutError when an external deadline tripped). Call after
  /// wait().
  void rethrowIfError() {
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
    if (token_ && token_->cancelled()) token_->checkpoint();
    if (cancelled_.load(std::memory_order_acquire)) {
      throw CancelledError("task group cancelled");
    }
  }

 private:
  std::vector<Task> tasks_;
  std::atomic<size_t> next_{0};
  std::atomic<size_t> pending_;
  std::atomic<bool> cancelled_{false};
  CancelTokenPtr token_;
  SubstrateStats* stats_;  // the submitting thread's scope, never null
  CompletionLatch latch_;
  mutable std::mutex mutex_;
  std::exception_ptr error_;       // guarded by mutex_
};

}  // namespace psnap::workers
