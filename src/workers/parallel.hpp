// The Parallel.js facade (paper Listing 1):
//
//   var p = new Parallel([1,2,3,4], {maxWorkers: 2});
//   p.map(mydouble);
//   console.log(p.data);
//
// becomes
//
//   Parallel p(values, {.maxWorkers = 2});
//   p.map(mydouble);          // asynchronous: poll p.resolved()
//   p.wait();
//   use(p.data());
//
// Semantics preserved from the paper:
//   * data is structured-cloned into the job (workers never share state
//     with the main thread);
//   * "if fewer workers are created than there are list elements, the
//     workers systematically process the remaining elements from the list
//     until completed" — the default distribution is dynamic
//     self-scheduling over an atomic cursor;
//   * completion is observed by polling (the `operation._resolved` flag of
//     Listing 2), which is exactly how the parallelMap block integrates
//     with the cooperative scheduler.
//
// Execution substrate: operations no longer spawn threads. Each logical
// worker becomes one chunk task in a TaskGroup submitted to the shared
// WorkerPool, so op launch costs a queue push instead of maxWorkers
// thread spawns, and wait() joins by draining the group (running
// unclaimed chunks on the calling thread) instead of std::thread::join.
// Logical workers are decoupled from pool width: maxWorkers = 16 still
// yields 16 chunk tasks (and 16 itemsPerWorker slots) however many OS
// threads the pool owns.
//
// In addition to wall-clock execution, the facade tracks items-per-worker
// so benches can report *virtual makespan* (max items on any worker) —
// the metric that carries the paper's speedup shape on a 1-core host.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blocks/value.hpp"
#include "workers/task_group.hpp"

namespace psnap::workers {

/// A unary function shipped to workers. Must be thread-safe and must not
/// touch interpreter state (the core module compiles *pure* rings to this
/// type, mirroring Listing 2's mappedCode()-to-Function step).
using MapFn = std::function<blocks::Value(const blocks::Value&)>;
/// A binary combiner for reduce.
using ReduceFn =
    std::function<blocks::Value(const blocks::Value&, const blocks::Value&)>;

/// How list elements are assigned to workers (ablation A2 in DESIGN.md).
enum class Distribution {
  Dynamic,     ///< self-scheduling: workers pull the next index (default)
  Contiguous,  ///< static contiguous chunks of ceil(n/w)
  BlockCyclic, ///< static round-robin by chunkSize
};

struct ParallelOptions {
  /// Number of logical workers; 0 uses the default of 4 (the paper:
  /// "By default, four Web Workers are created").
  size_t maxWorkers = 0;
  Distribution distribution = Distribution::Dynamic;
  /// Chunk granularity for Dynamic and BlockCyclic (0 normalizes to 1).
  size_t chunkSize = 1;
};

class Parallel {
 public:
  /// Clone `data` into the job (structured-clone semantics; throws
  /// PurityError if a value is not transferable). Physically this is a
  /// COW snapshot — flat lists share their item buffer, text shares its
  /// immutable rep — so entry costs O(elements) refcount bumps instead
  /// of a deep copy. The snapshot is anchored before the constructor
  /// returns: later mutation of the source detaches at the COW gate and
  /// never leaks into the job.
  Parallel(const std::vector<blocks::Value>& data, ParallelOptions options);
  explicit Parallel(const blocks::ListPtr& list,
                    ParallelOptions options = {});
  ~Parallel();

  Parallel(const Parallel&) = delete;
  Parallel& operator=(const Parallel&) = delete;

  size_t workerCount() const { return workers_; }

  /// Launch an asynchronous parallel map. May be called once per Parallel.
  void map(MapFn fn);

  /// Launch an asynchronous parallel reduce: workers fold contiguous
  /// chunks, the caller's wait() combines the partials in order. `fn`
  /// must be associative for the result to be deterministic.
  void reduce(ReduceFn fn);

  /// Has the running operation finished? (Listing 2's `_resolved`.)
  bool resolved() const;

  /// Block until resolved (draining unclaimed chunk tasks on this
  /// thread), surface any worker error.
  void wait();

  /// True once resolved if a worker threw; message() holds the first error.
  bool failed() const;
  const std::string& errorMessage() const { return error_; }

  /// Result data. map: element-wise results. reduce: a single element.
  /// Calls wait() internally. Throws Error if the operation failed.
  const std::vector<blocks::Value>& data();

  /// Move the result out instead of copying (the MapReduce engine's
  /// phases hand multi-thousand-element vectors between stages). Same
  /// wait/throw behaviour as data(); the Parallel is spent afterwards.
  std::vector<blocks::Value> takeData();

  /// Items processed by each logical worker during the last operation.
  std::vector<uint64_t> itemsPerWorker() const;

  /// Virtual makespan: the maximum number of items any single worker
  /// processed — the completion time in idealized unit-cost timesteps.
  uint64_t virtualMakespan() const;

 private:
  // One counter slot per logical worker, cache-line padded: workers flush
  // a chunk's item count with one relaxed add instead of a per-item
  // fetch_add into a shared array.
  struct alignas(64) CounterSlot {
    std::atomic<uint64_t> items{0};
  };

  void cloneIn(const std::vector<blocks::Value>& source);
  /// Submit `taskCount` chunk tasks running `body(logicalWorker)`.
  void launch(std::function<void(size_t)> body, size_t taskCount);
  void recordError(const std::string& message);

  std::vector<blocks::Value> data_;
  size_t workers_;
  ParallelOptions options_;

  std::shared_ptr<TaskGroup> group_;
  std::vector<CounterSlot> perWorker_;
  std::atomic<size_t> cursor_{0};
  std::atomic<bool> launched_{false};
  std::atomic<bool> failedFlag_{false};
  std::string error_;
  std::mutex errorMutex_;
  std::vector<blocks::Value> partials_;  // reduce intermediates
  ReduceFn combiner_;                    // for the final sequential fold
  bool isReduce_ = false;
  bool joined_ = false;
};

}  // namespace psnap::workers
