// The Parallel.js facade (paper Listing 1):
//
//   var p = new Parallel([1,2,3,4], {maxWorkers: 2});
//   p.map(mydouble);
//   console.log(p.data);
//
// becomes
//
//   Parallel p(values, {.maxWorkers = 2});
//   p.map(mydouble);          // asynchronous: onComplete() fires once
//   p.wait();
//   use(p.data());
//
// Semantics preserved from the paper:
//   * data is structured-cloned into the job (workers never share state
//     with the main thread);
//   * "if fewer workers are created than there are list elements, the
//     workers systematically process the remaining elements from the list
//     until completed" — the default distribution is dynamic
//     self-scheduling over an atomic cursor;
//   * completion is observed through onComplete() callbacks (the
//     completion-driven successor of Listing 2's `operation._resolved`
//     poll flag): the parallelMap block parks its process on the
//     callback and the finishing worker re-readies it. resolved() still
//     answers the instantaneous question for tests and wait() fast
//     paths, but nothing in the runtime spins on it.
//
// Execution substrate: operations no longer spawn threads. Each logical
// worker becomes one chunk task in a TaskGroup submitted to the shared
// WorkerPool, so op launch costs a queue push instead of maxWorkers
// thread spawns, and wait() joins by draining the group (running
// unclaimed chunks on the calling thread) instead of std::thread::join.
// Logical workers are decoupled from pool width: maxWorkers = 16 still
// yields 16 chunk tasks (and 16 itemsPerWorker slots) however many OS
// threads the pool owns.
//
// Fault model (the degradation ladder, outermost rung last):
//   1. *retry*: a chunk that dies with a SubstrateError is retried in
//      place up to maxRetries times with bounded deterministic backoff.
//      Safe because map/reduce functions are pure by construction (the
//      core module only compiles pure rings to MapFn) and the chunk loops
//      write each element exactly once — a throw from fn leaves the
//      element unwritten, so resuming at the failed index re-applies fn
//      to original input, never to an already-mapped value;
//   2. *fail-fast*: the first unretryable failure cancels the group —
//      unstarted sibling chunks are skipped, not drained;
//   3. *degrade*: if the pool cannot accept the launch (stopped, or the
//      pool-saturation fault fires), the chunk tasks are drained
//      synchronously on the caller instead — the op completes on the
//      sequential rung and records the downgrade. A substrate error that
//      survives retries fails the op with errorClass() == Substrate; the
//      call sites that still own the original input (the parallelMap
//      handler, mr::run) read that tag and re-run their sequential path
//      (the C++ realisation of collapsing the paper's "in parallel"
//      slot). Keeping the rerun at the owner avoids a pristine snapshot
//      of the input on every launch. User-script errors (TypeError, …)
//      never retry or degrade — they surface with their original
//      exception type.
// Deadlines ride the same machinery: deadlineSeconds arms a CancelToken
// that chunk claims poll, and an expired deadline surfaces as a
// TimeoutError unless every item had already been processed.
//
// In addition to wall-clock execution, the facade tracks items-per-worker
// so benches can report *virtual makespan* (max items on any worker) —
// the metric that carries the paper's speedup shape on a 1-core host.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blocks/value.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "workers/task_group.hpp"

namespace psnap::workers {

/// A unary function shipped to workers. Must be thread-safe and must not
/// touch interpreter state (the core module compiles *pure* rings to this
/// type, mirroring Listing 2's mappedCode()-to-Function step).
using MapFn = std::function<blocks::Value(const blocks::Value&)>;
/// A binary combiner for reduce.
using ReduceFn =
    std::function<blocks::Value(const blocks::Value&, const blocks::Value&)>;
/// An optional chunk-at-a-time fast path for map (the native tier's
/// compiled kernels): transform `count` values in place and return true,
/// or return false WITHOUT writing anything — the caller then applies the
/// per-item MapFn. The all-or-nothing write contract is what keeps the
/// chunk retry loop exact (every element written at most once).
using MapBatchFn = std::function<bool(blocks::Value*, size_t count)>;

/// How list elements are assigned to workers (ablation A2 in DESIGN.md).
enum class Distribution {
  Dynamic,     ///< self-scheduling: workers pull the next index (default)
  Contiguous,  ///< static contiguous chunks of ceil(n/w)
  BlockCyclic, ///< static round-robin by chunkSize
};

struct ParallelOptions {
  /// Number of logical workers; 0 uses the default of 4 (the paper:
  /// "By default, four Web Workers are created").
  size_t maxWorkers = 0;
  Distribution distribution = Distribution::Dynamic;
  /// Chunk granularity for Dynamic and BlockCyclic (0 normalizes to 1).
  size_t chunkSize = 1;
  /// Retries per chunk on SubstrateError (0 disables). Only the
  /// substrate class retries; user-script errors are deterministic.
  int maxRetries = 2;
  /// Wall-clock budget from launch; 0 means none. Expiry cancels
  /// remaining chunks and the operation fails with TimeoutError.
  double deadlineSeconds = 0;
  /// Drain the chunk tasks on the caller when the pool cannot accept the
  /// launch, instead of failing the operation.
  bool allowDegrade = true;
  /// External cancellation (e.g. the owning script's token): cancelling
  /// it cancels this operation at its next chunk boundary.
  CancelTokenPtr cancel;
};

class Parallel {
 public:
  /// Clone `data` into the job (structured-clone semantics; throws
  /// PurityError if a value is not transferable, SubstrateError if the
  /// transfer fault point fires). Physically this is a COW snapshot —
  /// flat lists share their item buffer, text shares its immutable rep —
  /// so entry costs O(elements) refcount bumps instead of a deep copy.
  /// The snapshot is anchored before the constructor returns: later
  /// mutation of the source detaches at the COW gate and never leaks
  /// into the job. Accepts any item view — an owned vector binds
  /// implicitly, and a mapped (mmap-backed) list's buffer enters without
  /// materializing first.
  Parallel(blocks::ItemSpan data, ParallelOptions options);
  explicit Parallel(const blocks::ListPtr& list,
                    ParallelOptions options = {});
  ~Parallel();

  Parallel(const Parallel&) = delete;
  Parallel& operator=(const Parallel&) = delete;

  size_t workerCount() const { return workers_; }

  /// Launch an asynchronous parallel map. May be called once per Parallel.
  /// `batch`, when given, is tried once per chunk before the per-item
  /// loop (see MapBatchFn).
  void map(MapFn fn, MapBatchFn batch = {});

  /// Launch an asynchronous parallel reduce: workers fold contiguous
  /// chunks, the caller's wait() combines the partials in order. `fn`
  /// must be associative for the result to be deterministic.
  void reduce(ReduceFn fn);

  /// Has the running operation finished? (Listing 2's `_resolved`.)
  /// Kept for tests and assertions; scheduler integration registers
  /// onComplete() instead of polling this per frame.
  bool resolved() const;

  /// Register a completion callback: fires exactly once, from the worker
  /// that finishes the operation (or immediately if already resolved, or
  /// on the caller when the launch degrades to an inline drain).
  /// Callbacks registered before map()/reduce() are attached at launch.
  void onComplete(std::function<void()> cb);

  /// Block until resolved (draining unclaimed chunk tasks on this
  /// thread). Failures are captured, not thrown (see failed()/data()).
  void wait();

  /// Cancel the operation: remaining chunks are skipped and the
  /// operation fails with CancelledError (unless it already completed).
  void cancel(const std::string& reason = "parallel operation cancelled");

  /// True once resolved if the operation failed; errorMessage() holds the
  /// first error and errorClass() its type tag.
  bool failed() const;
  const std::string& errorMessage() const { return error_; }
  ErrorClass errorClass() const { return errorClass_; }

  /// Did the operation complete through the sequential fallback?
  bool wasDegraded() const { return degraded_.load(); }

  /// Result data. map: element-wise results. reduce: a single element.
  /// Calls wait() internally. Rethrows the worker's error with its
  /// original exception type if the operation failed.
  const std::vector<blocks::Value>& data();

  /// Move the result out instead of copying (the MapReduce engine's
  /// phases hand multi-thousand-element vectors between stages). Same
  /// wait/throw behaviour as data(); the Parallel is spent afterwards.
  std::vector<blocks::Value> takeData();

  /// Items processed by each logical worker during the last operation.
  std::vector<uint64_t> itemsPerWorker() const;

  /// Virtual makespan: the maximum number of items any single worker
  /// processed — the completion time in idealized unit-cost timesteps.
  uint64_t virtualMakespan() const;

 private:
  // One counter slot per logical worker, cache-line padded: workers flush
  // a chunk's item count with one relaxed add instead of a per-item
  // fetch_add into a shared array.
  struct alignas(64) CounterSlot {
    std::atomic<uint64_t> items{0};
  };

  void cloneIn(blocks::ItemSpan source);
  /// Submit `taskCount` chunk tasks running `body(logicalWorker)`.
  void launch(std::function<void(size_t)> body, size_t taskCount);
  /// Record the first failure (original exception preserved) and cancel
  /// the group so unstarted siblings are skipped.
  void recordError(std::exception_ptr error);
  /// Map one range in place with the chunk retry loop. Returns normally
  /// or rethrows the unretryable / retry-exhausted error.
  void mapRange(const MapFn& fn, size_t begin, size_t end, size_t w);
  /// Should the task keep claiming chunks? False once cancelled, failed,
  /// or past the deadline.
  bool keepGoing() const;
  /// Total items processed across all logical workers.
  uint64_t processedItems() const;
  void foldReducePartials();

  std::vector<blocks::Value> data_;
  size_t workers_;
  ParallelOptions options_;

  std::shared_ptr<TaskGroup> group_;
  CancelTokenPtr token_;  // set when a deadline or external cancel exists
  SubstrateStats* stats_;  // the constructing thread's scope, never null
  std::vector<CounterSlot> perWorker_;
  std::atomic<size_t> cursor_{0};
  std::atomic<bool> launched_{false};
  std::atomic<bool> failedFlag_{false};
  std::atomic<bool> degraded_{false};
  std::string error_;
  ErrorClass errorClass_ = ErrorClass::None;
  std::exception_ptr errorPtr_;
  std::mutex errorMutex_;
  // onComplete registrations made before launch; attached to the group
  // (under errorMutex_) the moment it exists.
  std::vector<std::function<void()>> pendingCallbacks_;
  std::vector<blocks::Value> partials_;  // reduce intermediates
  ReduceFn combiner_;                    // for the final sequential fold
  MapBatchFn batch_;                     // optional native chunk path
  std::string cancelReason_ = "parallel operation cancelled";
  size_t inputSize_ = 0;
  bool isReduce_ = false;
  bool joined_ = false;
};

}  // namespace psnap::workers
