// Substrate health counters, scoped per tenant.
//
// The fault model's observable ledger: every retry, sequential downgrade,
// group cancellation, and deadline trip is recorded here so tests (and the
// serving layer's per-tenant accounting) can assert that a fault was
// *handled*, not merely survived. Counters are monotone relaxed atomics —
// they order nothing, they only count.
//
// Scoping model (the serving layer's attribution backbone):
//
//   * `processSubstrateStats()` is the process-wide root ledger — the
//     only ledger that existed when stats were a mutable global.
//   * `substrateStats()` returns the *current scope*: a thread-local
//     pointer that defaults to the root ledger and is redirected by a
//     StatsScope (RAII). A session server installs one scope per tenant
//     around everything that tenant executes.
//   * recording goes through `bump(&SubstrateStats::field)`, which also
//     walks the `parent` chain — a tenant-scoped count still rolls up
//     into the root ledger, so process-wide assertions keep working.
//
// Recording sites that hand work to pool threads (TaskGroup, Parallel,
// mr::Job) capture `&substrateStats()` once, at construction on the
// submitting thread, and record through the captured pointer — a chunk
// retried on a stolen worker is still charged to the tenant that
// launched it, not to whatever scope the worker thread happens to carry.
// Async attribution (the PR 8 checkpoint/recycle race): a recording site
// that outlives its submitter — the native tier's fire-and-forget compile
// is the canonical case — cannot hold a raw `SubstrateStats*`: the tenant
// may be recycled, its stats freed, while the task is still in flight.
// `AsyncStatsHandle` fixes this with a generation-stamped lease: owners of
// session-lifetime scopes register them (`registerStatsScope`) and retire
// them before freeing (`retireStatsScope`); `AsyncStatsHandle::capture()`
// snapshots the current scope plus its generation, and `bump()` charges
// the scope only while the lease is still current — after a retire the
// count falls back to the process root ledger instead of touching freed
// memory or a recycled tenant's ledger.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace psnap::workers {

struct SubstrateStats {
  /// Chunk retries after a substrate error (per attempt, not per chunk).
  std::atomic<uint64_t> retries{0};
  /// Operations that fell back to their sequential path.
  std::atomic<uint64_t> downgrades{0};
  /// Task-group cancellations (fail-fast or external).
  std::atomic<uint64_t> cancellations{0};
  /// Deadline trips surfaced as TimeoutError.
  std::atomic<uint64_t> timeouts{0};
  /// Tasks skipped unstarted because their group was already cancelled.
  std::atomic<uint64_t> tasksSkipped{0};
  /// Rings the native tier gave up on permanently (unsupported block,
  /// compiler failure, or a validation mismatch) — those rings run on the
  /// interpreter forever after.
  std::atomic<uint64_t> nativeDowngrades{0};

  /// One counter field, e.g. `&SubstrateStats::retries`.
  using Counter = std::atomic<uint64_t> SubstrateStats::*;

  /// Record one event into this scope and every ancestor scope.
  void bump(Counter field) {
    for (SubstrateStats* scope = this; scope; scope = scope->parent_) {
      (scope->*field).fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Explicit reset of *this scope only* (a parent keeps its rollup —
  /// counts already recorded there describe events that did happen).
  void reset() {
    retries.store(0, std::memory_order_relaxed);
    downgrades.store(0, std::memory_order_relaxed);
    cancellations.store(0, std::memory_order_relaxed);
    timeouts.store(0, std::memory_order_relaxed);
    tasksSkipped.store(0, std::memory_order_relaxed);
    nativeDowngrades.store(0, std::memory_order_relaxed);
  }

  /// Chain this scope under `parent` so bump() rolls up. Set once, before
  /// the scope sees concurrent traffic (it is read unsynchronized).
  void setParent(SubstrateStats* parent) { parent_ = parent; }
  SubstrateStats* parent() const { return parent_; }

 private:
  SubstrateStats* parent_ = nullptr;
};

namespace detail {
/// The process-wide root ledger, storage for processSubstrateStats().
inline SubstrateStats& rootStats() {
  static SubstrateStats stats;
  return stats;
}
/// The current scope for this thread (null = root).
inline thread_local SubstrateStats* tStatsScope = nullptr;
}  // namespace detail

/// The process-wide root ledger. Every scoped count rolls up here.
inline SubstrateStats& processSubstrateStats() { return detail::rootStats(); }

/// The calling thread's current stats scope — the root ledger unless a
/// StatsScope has redirected it.
inline SubstrateStats& substrateStats() {
  return detail::tStatsScope ? *detail::tStatsScope : detail::rootStats();
}

/// RAII scope: redirects substrateStats() on this thread for the scope's
/// lifetime. Does not touch `stats.parent()` — the owner decides the
/// rollup chain (a session server parents each tenant's stats to the
/// root ledger once, at admission).
class StatsScope {
 public:
  explicit StatsScope(SubstrateStats& stats)
      : previous_(detail::tStatsScope) {
    detail::tStatsScope = &stats;
  }
  ~StatsScope() { detail::tStatsScope = previous_; }

  StatsScope(const StatsScope&) = delete;
  StatsScope& operator=(const StatsScope&) = delete;

 private:
  SubstrateStats* previous_;
};

namespace detail {
/// The scope-lease registry behind AsyncStatsHandle. Generations are
/// process-monotonic, so a scope address recycled for a *new* tenant gets
/// a new generation and stale handles still miss (no ABA).
struct ScopeRegistry {
  std::mutex mutex;
  std::unordered_map<SubstrateStats*, uint64_t> live;
  uint64_t nextGeneration = 1;
};
inline ScopeRegistry& scopeRegistry() {
  static ScopeRegistry registry;
  return registry;
}
}  // namespace detail

/// Lease `scope` for async attribution. Re-registering issues a fresh
/// lease — outstanding handles from the previous lease fall back to the
/// root ledger, which is what a recycled slot wants. Returns the
/// generation.
inline uint64_t registerStatsScope(SubstrateStats& scope) {
  auto& registry = detail::scopeRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.live[&scope] = registry.nextGeneration++;
}

/// End the lease. Must run before the scope is freed or recycled; any
/// AsyncStatsHandle still holding it falls back to the root ledger.
inline void retireStatsScope(SubstrateStats& scope) {
  auto& registry = detail::scopeRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.live.erase(&scope);
}

/// A validity-checked reference to a stats scope, safe to carry into work
/// that may outlive the scope's owner.
class AsyncStatsHandle {
 public:
  /// Snapshot the calling thread's current scope. An unregistered scope
  /// (including the root itself) degrades to a root-ledger handle — an
  /// unleased scope gives no liveness guarantee, so it is never captured.
  static AsyncStatsHandle capture() {
    AsyncStatsHandle handle;
    SubstrateStats* scope = &substrateStats();
    if (scope == &processSubstrateStats()) return handle;
    auto& registry = detail::scopeRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.live.find(scope);
    if (it != registry.live.end()) {
      handle.scope_ = scope;
      handle.generation_ = it->second;
    }
    return handle;
  }

  /// An unchecked handle that charges `scope` directly, skipping the
  /// registry — for synchronous call sites where the scope provably
  /// outlives the handle (it never crosses into pooled work).
  static AsyncStatsHandle direct(SubstrateStats& scope) {
    AsyncStatsHandle handle;
    handle.scope_ = &scope;
    handle.direct_ = true;
    return handle;
  }

  /// Record one event. Charges the captured scope while its lease is
  /// current; a retired (or never-captured) lease charges the root
  /// ledger. The registry lock is held across the bump so a concurrent
  /// retire cannot free the scope mid-walk.
  void bump(SubstrateStats::Counter field) const {
    if (scope_) {
      if (direct_) {
        scope_->bump(field);
        return;
      }
      auto& registry = detail::scopeRegistry();
      std::lock_guard<std::mutex> lock(registry.mutex);
      auto it = registry.live.find(scope_);
      if (it != registry.live.end() && it->second == generation_) {
        scope_->bump(field);
        return;
      }
    }
    processSubstrateStats().bump(field);
  }

  /// True if capture() latched a leased scope (diagnostic).
  bool scoped() const { return scope_ != nullptr; }

 private:
  SubstrateStats* scope_ = nullptr;
  uint64_t generation_ = 0;
  bool direct_ = false;
};

}  // namespace psnap::workers
