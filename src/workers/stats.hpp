// Substrate health counters, scoped per tenant.
//
// The fault model's observable ledger: every retry, sequential downgrade,
// group cancellation, and deadline trip is recorded here so tests (and the
// serving layer's per-tenant accounting) can assert that a fault was
// *handled*, not merely survived. Counters are monotone relaxed atomics —
// they order nothing, they only count.
//
// Scoping model (the serving layer's attribution backbone):
//
//   * `processSubstrateStats()` is the process-wide root ledger — the
//     only ledger that existed when stats were a mutable global.
//   * `substrateStats()` returns the *current scope*: a thread-local
//     pointer that defaults to the root ledger and is redirected by a
//     StatsScope (RAII). A session server installs one scope per tenant
//     around everything that tenant executes.
//   * recording goes through `bump(&SubstrateStats::field)`, which also
//     walks the `parent` chain — a tenant-scoped count still rolls up
//     into the root ledger, so process-wide assertions keep working.
//
// Recording sites that hand work to pool threads (TaskGroup, Parallel,
// mr::Job) capture `&substrateStats()` once, at construction on the
// submitting thread, and record through the captured pointer — a chunk
// retried on a stolen worker is still charged to the tenant that
// launched it, not to whatever scope the worker thread happens to carry.
#pragma once

#include <atomic>
#include <cstdint>

namespace psnap::workers {

struct SubstrateStats {
  /// Chunk retries after a substrate error (per attempt, not per chunk).
  std::atomic<uint64_t> retries{0};
  /// Operations that fell back to their sequential path.
  std::atomic<uint64_t> downgrades{0};
  /// Task-group cancellations (fail-fast or external).
  std::atomic<uint64_t> cancellations{0};
  /// Deadline trips surfaced as TimeoutError.
  std::atomic<uint64_t> timeouts{0};
  /// Tasks skipped unstarted because their group was already cancelled.
  std::atomic<uint64_t> tasksSkipped{0};
  /// Rings the native tier gave up on permanently (unsupported block,
  /// compiler failure, or a validation mismatch) — those rings run on the
  /// interpreter forever after.
  std::atomic<uint64_t> nativeDowngrades{0};

  /// One counter field, e.g. `&SubstrateStats::retries`.
  using Counter = std::atomic<uint64_t> SubstrateStats::*;

  /// Record one event into this scope and every ancestor scope.
  void bump(Counter field) {
    for (SubstrateStats* scope = this; scope; scope = scope->parent_) {
      (scope->*field).fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Explicit reset of *this scope only* (a parent keeps its rollup —
  /// counts already recorded there describe events that did happen).
  void reset() {
    retries.store(0, std::memory_order_relaxed);
    downgrades.store(0, std::memory_order_relaxed);
    cancellations.store(0, std::memory_order_relaxed);
    timeouts.store(0, std::memory_order_relaxed);
    tasksSkipped.store(0, std::memory_order_relaxed);
    nativeDowngrades.store(0, std::memory_order_relaxed);
  }

  /// Chain this scope under `parent` so bump() rolls up. Set once, before
  /// the scope sees concurrent traffic (it is read unsynchronized).
  void setParent(SubstrateStats* parent) { parent_ = parent; }
  SubstrateStats* parent() const { return parent_; }

 private:
  SubstrateStats* parent_ = nullptr;
};

namespace detail {
/// The process-wide root ledger, storage for processSubstrateStats().
inline SubstrateStats& rootStats() {
  static SubstrateStats stats;
  return stats;
}
/// The current scope for this thread (null = root).
inline thread_local SubstrateStats* tStatsScope = nullptr;
}  // namespace detail

/// The process-wide root ledger. Every scoped count rolls up here.
inline SubstrateStats& processSubstrateStats() { return detail::rootStats(); }

/// The calling thread's current stats scope — the root ledger unless a
/// StatsScope has redirected it.
inline SubstrateStats& substrateStats() {
  return detail::tStatsScope ? *detail::tStatsScope : detail::rootStats();
}

/// RAII scope: redirects substrateStats() on this thread for the scope's
/// lifetime. Does not touch `stats.parent()` — the owner decides the
/// rollup chain (a session server parents each tenant's stats to the
/// root ledger once, at admission).
class StatsScope {
 public:
  explicit StatsScope(SubstrateStats& stats)
      : previous_(detail::tStatsScope) {
    detail::tStatsScope = &stats;
  }
  ~StatsScope() { detail::tStatsScope = previous_; }

  StatsScope(const StatsScope&) = delete;
  StatsScope& operator=(const StatsScope&) = delete;

 private:
  SubstrateStats* previous_;
};

}  // namespace psnap::workers
