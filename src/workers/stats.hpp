// Process-wide substrate health counters.
//
// The fault model's observable ledger: every retry, sequential downgrade,
// group cancellation, and deadline trip is recorded here so tests (and a
// future ops surface) can assert that a fault was *handled*, not merely
// survived. Counters are monotone relaxed atomics — they order nothing,
// they only count.
#pragma once

#include <atomic>
#include <cstdint>

namespace psnap::workers {

struct SubstrateStats {
  /// Chunk retries after a substrate error (per attempt, not per chunk).
  std::atomic<uint64_t> retries{0};
  /// Operations that fell back to their sequential path.
  std::atomic<uint64_t> downgrades{0};
  /// Task-group cancellations (fail-fast or external).
  std::atomic<uint64_t> cancellations{0};
  /// Deadline trips surfaced as TimeoutError.
  std::atomic<uint64_t> timeouts{0};
  /// Tasks skipped unstarted because their group was already cancelled.
  std::atomic<uint64_t> tasksSkipped{0};

  void reset() {
    retries.store(0, std::memory_order_relaxed);
    downgrades.store(0, std::memory_order_relaxed);
    cancellations.store(0, std::memory_order_relaxed);
    timeouts.store(0, std::memory_order_relaxed);
    tasksSkipped.store(0, std::memory_order_relaxed);
  }
};

/// The process-wide ledger (parallel ops, mapreduce, and the scheduler all
/// record into the same one, like WorkerPool::shared()).
inline SubstrateStats& substrateStats() {
  static SubstrateStats stats;
  return stats;
}

}  // namespace psnap::workers
