// The persistent task executor behind every parallel operation — the
// stand-in for a browser's always-available Web Worker slots.
//
// The seed version was a thin Channel-backed job queue and each Parallel
// op spawned its own std::threads; this version is the process-wide
// substrate those ops submit to instead:
//
//   * one deque per worker, guarded by a per-worker mutex, with
//     round-robin placement on submit and work stealing on the consume
//     side — the single-mutex Channel is off the hot path (it survives
//     unchanged in channel.hpp for the postMessage model and its tests);
//   * parking: workers sleep on a condition variable when every deque is
//     empty, so an idle pool burns no CPU (load-bearing on a 1-core host
//     where the cooperative scheduler's poll loop competes for the core);
//   * TaskGroup batches (see task_group.hpp): submit(group) enqueues
//     claim-loop runners, and waiters drain unclaimed tasks themselves,
//     which keeps nested pooled work (mapReduce inside the pool) live.
//
// Jobs are opaque closures; the pool makes no attempt to share state
// between them (the Parallel facade structured-clones all data it ships).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "workers/task_group.hpp"

namespace psnap::workers {

class WorkerPool {
 public:
  /// Spawn `width` worker threads (0 defaults to 4, the paper's default
  /// Web Worker count).
  explicit WorkerPool(size_t width = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t width() const { return threads_.size(); }

  /// Enqueue a job for any worker. Throws SubstrateError when the pool
  /// cannot accept work (stopped, or the pool-saturation fault point
  /// fires) — callers with a sequential path degrade to it.
  void submit(std::function<void()> job);

  /// Enqueue claim-loop runners for a task group: min(group->size(),
  /// width()) runners are spread round-robin across the worker deques,
  /// each claiming tasks until the group is drained. All-or-nothing: the
  /// availability check (and the pool-saturation fault point) runs before
  /// any runner is enqueued, so a SubstrateError here means the group is
  /// untouched and can be drained on the caller instead.
  void submit(const std::shared_ptr<TaskGroup>& group);

  /// Jobs completed per worker since construction (for utilization
  /// reporting in the benches).
  std::vector<uint64_t> jobsPerWorker() const;

  /// Total jobs completed.
  uint64_t jobsCompleted() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// The process-wide default pool, created on first use — analogous to
  /// the browser's worker slots always being available. Width is
  /// max(4, hardware_concurrency): never below the paper's default.
  static WorkerPool& shared();

 private:
  // Per-worker slot, cache-line padded so one worker's deque mutex and
  // job counter never false-share with a neighbour's.
  struct alignas(64) Slot {
    std::mutex mutex;
    std::deque<std::function<void()>> jobs;
    std::atomic<uint64_t> executed{0};
  };

  void workerMain(size_t index);
  /// Pop from own deque (LIFO) or steal from a neighbour (FIFO) and run
  /// one job. Returns false when every deque was empty.
  bool tryRunOne(size_t self);
  void push(size_t slot, std::function<void()> job);

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<int64_t> queued_{0};
  std::atomic<int64_t> inflight_{0};
  std::atomic<size_t> nextSlot_{0};  // round-robin submit cursor

  // Parking. sleepers_ is read by submitters (Dekker-style with queued_,
  // both seq_cst) to skip the notify when nobody sleeps.
  std::mutex parkMutex_;
  std::condition_variable parkCv_;
  std::atomic<int64_t> sleepers_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace psnap::workers
