// A pool of background threads — the stand-in for a browser's Web Worker
// slots. Jobs are opaque closures; the pool makes no attempt to share
// state between them (the Parallel facade clones all data it ships).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "workers/channel.hpp"

namespace psnap::workers {

class WorkerPool {
 public:
  /// Spawn `width` worker threads (0 defaults to 4, the paper's default
  /// Web Worker count).
  explicit WorkerPool(size_t width = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t width() const { return threads_.size(); }

  /// Enqueue a job for any worker.
  void submit(std::function<void()> job);

  /// Jobs completed per worker since construction (for utilization
  /// reporting in the benches).
  std::vector<uint64_t> jobsPerWorker() const;

  /// Total jobs completed.
  uint64_t jobsCompleted() const { return completed_.load(); }

  /// The process-wide default pool (4 workers), created on first use —
  /// analogous to the browser's worker slots always being available.
  static WorkerPool& shared();

 private:
  void workerMain(size_t index);

  Channel<std::function<void()>> jobs_;
  std::vector<std::thread> threads_;
  std::vector<std::atomic<uint64_t>> perWorker_;
  std::atomic<uint64_t> completed_{0};
};

}  // namespace psnap::workers
