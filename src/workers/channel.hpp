// A postMessage-style channel between the main thread and workers.
//
// HTML5 Web Workers communicate exclusively by message passing with
// structured-clone semantics (no shared mutable state). Channel<T> is the
// transport half of that model: a bounded-unbounded MPMC queue with close
// semantics. The structured-clone half is enforced at the call sites via
// Value::structuredClone().
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "support/cancel.hpp"

namespace psnap::workers {

template <typename T>
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Post a message. Returns false if the channel is closed.
  bool send(T message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(message));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking receive; empty optional when the channel is closed and
  /// drained.
  std::optional<T> receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Cancellable blocking receive: returns empty when the channel closes
  /// *or* `token` is cancelled / past its deadline. The token is polled
  /// (cooperative model — a token trip does not wake sleeping receivers
  /// by itself), so the wait re-arms every few milliseconds; call
  /// token->checkpoint() afterwards to turn the empty result into a typed
  /// TimeoutError / CancelledError when that is the contract.
  std::optional<T> receive(const CancelTokenPtr& token) {
    if (!token) return receive();
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      if (!queue_.empty()) break;
      if (closed_ || token->cancelled()) return std::nullopt;
      cv_.wait_for(lock, std::chrono::milliseconds(2), [this] {
        return closed_ || !queue_.empty();
      });
    }
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Non-blocking receive.
  std::optional<T> tryReceive() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Close: wakes all receivers; pending messages still drain.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace psnap::workers
