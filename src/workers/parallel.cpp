#include "workers/parallel.hpp"

#include <algorithm>
#include <mutex>

#include "support/error.hpp"

namespace psnap::workers {

using blocks::Value;

namespace {
constexpr size_t kDefaultWorkers = 4;  // the paper's Web Worker default
}

Parallel::Parallel(const std::vector<Value>& data, ParallelOptions options)
    : workers_(options.maxWorkers == 0 ? kDefaultWorkers
                                       : options.maxWorkers),
      options_(options) {
  data_.reserve(data.size());
  for (const Value& v : data) data_.push_back(v.structuredClone());
  if (options_.chunkSize == 0) options_.chunkSize = 1;
  perWorker_.reserve(workers_);
  for (size_t i = 0; i < workers_; ++i) {
    perWorker_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

Parallel::Parallel(const blocks::ListPtr& list, ParallelOptions options)
    : Parallel(list ? list->items() : std::vector<Value>{}, options) {}

Parallel::~Parallel() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void Parallel::recordError(const std::string& message) {
  std::lock_guard<std::mutex> lock(errorMutex_);
  if (!failedFlag_.exchange(true)) error_ = message;
}

void Parallel::launch(std::function<void(size_t)> body) {
  if (launched_.exchange(true)) {
    throw Error("Parallel: an operation is already running on this object");
  }
  running_.store(static_cast<int>(workers_));
  threads_.reserve(workers_);
  for (size_t w = 0; w < workers_; ++w) {
    threads_.emplace_back([this, body, w] {
      try {
        body(w);
      } catch (const std::exception& e) {
        recordError(e.what());
      } catch (...) {
        recordError("unknown worker error");
      }
      running_.fetch_sub(1);
    });
  }
}

void Parallel::map(MapFn fn) {
  const size_t n = data_.size();
  switch (options_.distribution) {
    case Distribution::Dynamic: {
      const size_t chunk = options_.chunkSize;
      launch([this, fn, n, chunk](size_t w) {
        while (true) {
          size_t begin = cursor_.fetch_add(chunk);
          if (begin >= n) break;
          size_t end = std::min(begin + chunk, n);
          for (size_t i = begin; i < end; ++i) {
            data_[i] = fn(data_[i]);
            perWorker_[w]->fetch_add(1);
          }
        }
      });
      break;
    }
    case Distribution::Contiguous: {
      const size_t per = (n + workers_ - 1) / workers_;
      launch([this, fn, n, per](size_t w) {
        size_t begin = w * per;
        size_t end = std::min(begin + per, n);
        for (size_t i = begin; i < end; ++i) {
          data_[i] = fn(data_[i]);
          perWorker_[w]->fetch_add(1);
        }
      });
      break;
    }
    case Distribution::BlockCyclic: {
      const size_t chunk = options_.chunkSize;
      const size_t stride = chunk * workers_;
      launch([this, fn, n, chunk, stride](size_t w) {
        for (size_t base = w * chunk; base < n; base += stride) {
          size_t end = std::min(base + chunk, n);
          for (size_t i = base; i < end; ++i) {
            data_[i] = fn(data_[i]);
            perWorker_[w]->fetch_add(1);
          }
        }
      });
      break;
    }
  }
}

void Parallel::reduce(ReduceFn fn) {
  isReduce_ = true;
  combiner_ = fn;
  const size_t n = data_.size();
  partials_.assign(workers_, Value());
  const size_t per = (n + workers_ - 1) / workers_;
  launch([this, fn, n, per](size_t w) {
    size_t begin = w * per;
    size_t end = std::min(begin + per, n);
    if (begin >= end) return;
    Value acc = data_[begin];
    perWorker_[w]->fetch_add(1);
    for (size_t i = begin + 1; i < end; ++i) {
      acc = fn(acc, data_[i]);
      perWorker_[w]->fetch_add(1);
    }
    partials_[w] = std::move(acc);
  });
}

bool Parallel::resolved() const {
  return launched_.load() && running_.load() == 0;
}

void Parallel::wait() {
  if (!launched_.load()) return;
  if (!joined_) {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    joined_ = true;
    if (isReduce_ && !failedFlag_.load()) {
      // Combine the per-worker partials in worker order.
      Value acc;
      bool first = true;
      for (Value& partial : partials_) {
        if (partial.isNothing()) continue;  // worker had an empty range
        if (first) {
          acc = std::move(partial);
          first = false;
        } else {
          acc = combiner_(acc, partial);
        }
      }
      data_.clear();
      if (!first) data_.push_back(std::move(acc));
    }
  }
}

bool Parallel::failed() const { return failedFlag_.load(); }

const std::vector<Value>& Parallel::data() {
  wait();
  if (failedFlag_.load()) {
    throw Error("parallel operation failed: " + error_);
  }
  return data_;
}

std::vector<uint64_t> Parallel::itemsPerWorker() const {
  std::vector<uint64_t> out;
  out.reserve(perWorker_.size());
  for (const auto& counter : perWorker_) out.push_back(counter->load());
  return out;
}

uint64_t Parallel::virtualMakespan() const {
  uint64_t makespan = 0;
  for (const auto& counter : perWorker_) {
    makespan = std::max(makespan, counter->load());
  }
  return makespan;
}

}  // namespace psnap::workers
