#include "workers/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "support/fault.hpp"
#include "workers/stats.hpp"
#include "workers/worker_pool.hpp"

namespace psnap::workers {

using blocks::Value;

namespace {
constexpr size_t kDefaultWorkers = 4;  // the paper's Web Worker default

/// Bounded deterministic backoff before a chunk retry: 100us, 200us,
/// 400us, … capped at ~2ms. Fixed durations (no jitter) keep chaos runs
/// reproducible; the cap keeps a doomed chunk from stalling its group.
void retryBackoff(int attempt) {
  const int64_t micros =
      std::min<int64_t>(int64_t{100} << std::min(attempt - 1, 8), 2000);
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}
}  // namespace

Parallel::Parallel(blocks::ItemSpan data, ParallelOptions options)
    : workers_(options.maxWorkers == 0 ? kDefaultWorkers
                                       : options.maxWorkers),
      options_(options),
      stats_(&substrateStats()),
      perWorker_(options.maxWorkers == 0 ? kDefaultWorkers
                                         : options.maxWorkers) {
  if (options_.chunkSize == 0) options_.chunkSize = 1;
  if (options_.maxRetries < 0) options_.maxRetries = 0;
  cloneIn(data);
}

Parallel::Parallel(const blocks::ListPtr& list, ParallelOptions options)
    : Parallel(list ? list->items() : blocks::ItemSpan(), options) {}

Parallel::~Parallel() {
  // Chunk tasks capture `this`; they must finish before the object dies.
  if (group_) group_->wait();
}

void Parallel::cloneIn(blocks::ItemSpan source) {
  // Snapshot transfer: structuredClone is a scalar copy / refcount bump
  // per element (lists take an O(1) frozen buffer snapshot, text is
  // shared-immutable), so the seed's parallel clone pass — slice tasks
  // deep-copying on the pool — is gone entirely. Isolation is still
  // anchored at construction time: later mutation of the source detaches
  // at the COW gate and never reaches this job, and vice versa.
  fault::inject(fault::Point::TransferFailure);  // clone-in boundary
  data_.reserve(source.size());
  for (const Value& v : source) data_.push_back(v.structuredClone());
}

void Parallel::recordError(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(errorMutex_);
    if (!failedFlag_.load(std::memory_order_relaxed)) {
      errorPtr_ = error;
      errorClass_ = classifyError(error);
      try {
        std::rethrow_exception(error);
      } catch (const std::exception& e) {
        error_ = e.what();
      } catch (...) {
        error_ = "unknown worker error";
      }
      failedFlag_.store(true, std::memory_order_release);
    }
  }
  // Fail-fast: unstarted sibling chunks are skipped, not drained.
  if (group_) group_->cancel();
}

bool Parallel::keepGoing() const {
  if (failedFlag_.load(std::memory_order_acquire)) return false;
  return !(group_ && group_->cancelRequested());
}

uint64_t Parallel::processedItems() const {
  uint64_t total = 0;
  for (const CounterSlot& slot : perWorker_) {
    total += slot.items.load(std::memory_order_relaxed);
  }
  return total;
}

void Parallel::mapRange(const MapFn& fn, size_t begin, size_t end,
                        size_t w) {
  // The retry loop is exact: each element is written at most once, and a
  // throw from fn leaves data_[i] unwritten, so resuming at i re-applies
  // fn to the original input. Only the substrate class retries — a
  // TypeError from the user's ring is deterministic and rethrows
  // immediately with its original type.
  size_t i = begin;
  int attempt = 0;
  while (true) {
    try {
      fault::inject(fault::Point::TaskThrow);
      // Native chunk path: tried once, on a still-pristine range (batch_
      // writes all-or-nothing, so a false return or a later retry always
      // finds the original inputs). A true return means every element of
      // the range is already mapped.
      if (i == begin && batch_ && batch_(data_.data() + begin, end - begin)) {
        i = end;
      }
      for (; i < end; ++i) data_[i] = fn(data_[i]);
      perWorker_[w].items.fetch_add(end - begin, std::memory_order_relaxed);
      return;
    } catch (...) {
      std::exception_ptr error = std::current_exception();
      if (!isRetryableClass(classifyError(error)) ||
          attempt >= options_.maxRetries) {
        std::rethrow_exception(error);
      }
      ++attempt;
      stats_->bump(&SubstrateStats::retries);
      retryBackoff(attempt);
    }
  }
}

void Parallel::launch(std::function<void(size_t)> body, size_t taskCount) {
  if (launched_.exchange(true)) {
    throw Error("Parallel: an operation is already running on this object");
  }
  if (options_.deadlineSeconds > 0 || options_.cancel) {
    token_ = options_.deadlineSeconds > 0
                 ? CancelToken::withDeadline(options_.deadlineSeconds,
                                             options_.cancel)
                 : CancelToken::create(options_.cancel);
  }
  std::vector<TaskGroup::Task> tasks;
  tasks.reserve(taskCount);
  for (size_t w = 0; w < taskCount; ++w) {
    tasks.push_back([this, body](size_t index) {
      try {
        body(index);
      } catch (...) {
        recordError(std::current_exception());
      }
    });
  }
  group_ = std::make_shared<TaskGroup>(std::move(tasks), token_);
  {
    // Attach callbacks registered before launch. An empty group settled
    // in its constructor, so these may fire right here on the caller.
    std::vector<std::function<void()>> pending;
    {
      std::lock_guard<std::mutex> lock(errorMutex_);
      pending.swap(pendingCallbacks_);
    }
    for (auto& cb : pending) group_->onComplete(std::move(cb));
  }
  try {
    WorkerPool::shared().submit(group_);
  } catch (const SubstrateError&) {
    // The pool cannot take the launch (stopped or saturated). Degrade:
    // drain the chunk tasks synchronously on the caller — the sequential
    // rung of the ladder — rather than failing a correct script.
    if (!options_.allowDegrade) throw;
    degraded_.store(true, std::memory_order_relaxed);
    stats_->bump(&SubstrateStats::downgrades);
    group_->wait();
  }
}

void Parallel::map(MapFn fn, MapBatchFn batch) {
  batch_ = std::move(batch);
  const size_t n = data_.size();
  inputSize_ = n;
  switch (options_.distribution) {
    case Distribution::Dynamic: {
      const size_t chunk = options_.chunkSize;
      // Only as many chunk tasks as there are chunks to claim; idle
      // logical workers keep their zero itemsPerWorker slot.
      const size_t taskCount =
          std::min(workers_, (n + chunk - 1) / chunk);
      launch(
          [this, fn, n, chunk](size_t w) {
            while (keepGoing()) {
              size_t begin = cursor_.fetch_add(chunk);
              if (begin >= n) break;
              mapRange(fn, begin, std::min(begin + chunk, n), w);
            }
          },
          taskCount);
      break;
    }
    case Distribution::Contiguous: {
      const size_t per = (n + workers_ - 1) / workers_;
      const size_t taskCount = per == 0 ? 0 : (n + per - 1) / per;
      launch(
          [this, fn, n, per](size_t w) {
            if (!keepGoing()) return;
            size_t begin = w * per;
            mapRange(fn, begin, std::min(begin + per, n), w);
          },
          taskCount);
      break;
    }
    case Distribution::BlockCyclic: {
      const size_t chunk = options_.chunkSize;
      const size_t stride = chunk * workers_;
      const size_t taskCount =
          std::min(workers_, (n + chunk - 1) / chunk);
      launch(
          [this, fn, n, chunk, stride](size_t w) {
            for (size_t base = w * chunk; base < n && keepGoing();
                 base += stride) {
              mapRange(fn, base, std::min(base + chunk, n), w);
            }
          },
          taskCount);
      break;
    }
  }
}

void Parallel::reduce(ReduceFn fn) {
  isReduce_ = true;
  combiner_ = fn;
  const size_t n = data_.size();
  inputSize_ = n;
  partials_.assign(workers_, Value());
  const size_t per = (n + workers_ - 1) / workers_;
  const size_t taskCount = per == 0 ? 0 : (n + per - 1) / per;
  launch(
      [this, fn, n, per](size_t w) {
        size_t begin = w * per;
        size_t end = std::min(begin + per, n);
        if (begin >= end || !keepGoing()) return;
        // Same exact-resume retry structure as mapRange: a throw from fn
        // leaves acc at the last good fold, so the retry resumes at i.
        Value acc;
        size_t i = begin;
        bool started = false;
        int attempt = 0;
        while (true) {
          try {
            fault::inject(fault::Point::TaskThrow);
            if (!started) {
              acc = data_[begin];
              i = begin + 1;
              started = true;
            }
            for (; i < end; ++i) acc = fn(acc, data_[i]);
            break;
          } catch (...) {
            std::exception_ptr error = std::current_exception();
            if (!isRetryableClass(classifyError(error)) ||
                attempt >= options_.maxRetries) {
              std::rethrow_exception(error);
            }
            ++attempt;
            stats_->bump(&SubstrateStats::retries);
            retryBackoff(attempt);
          }
        }
        perWorker_[w].items.fetch_add(end - begin,
                                      std::memory_order_relaxed);
        partials_[w] = std::move(acc);
      },
      taskCount);
}

bool Parallel::resolved() const {
  return launched_.load() && group_ && group_->done();
}

void Parallel::onComplete(std::function<void()> cb) {
  {
    std::lock_guard<std::mutex> lock(errorMutex_);
    if (!group_) {
      pendingCallbacks_.push_back(std::move(cb));
      return;
    }
  }
  group_->onComplete(std::move(cb));
}

void Parallel::cancel(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(errorMutex_);
    cancelReason_ = reason;
  }
  if (token_) token_->cancel(reason);
  if (group_) group_->cancel();
}

void Parallel::wait() {
  if (!launched_.load()) return;
  if (joined_) return;
  group_->wait();
  joined_ = true;
  // A cancellation (explicit or deadline) that stopped work before every
  // item was processed becomes the operation's typed error. A deadline
  // that trips only after the last item completed is not a failure.
  if (!failedFlag_.load(std::memory_order_acquire) &&
      group_->cancelRequested() && processedItems() < inputSize_) {
    try {
      if (token_) token_->checkpoint();
      std::string reason;
      {
        std::lock_guard<std::mutex> lock(errorMutex_);
        reason = cancelReason_;
      }
      throw CancelledError(reason);
    } catch (...) {
      if (classifyError(std::current_exception()) == ErrorClass::Timeout) {
        stats_->bump(&SubstrateStats::timeouts);
      }
      recordError(std::current_exception());
    }
  }
  if (isReduce_ && !failedFlag_.load()) foldReducePartials();
}

void Parallel::foldReducePartials() {
  // Combine the per-worker partials in worker order.
  Value acc;
  bool first = true;
  for (Value& partial : partials_) {
    if (partial.isNothing()) continue;  // worker had an empty range
    if (first) {
      acc = std::move(partial);
      first = false;
    } else {
      acc = combiner_(acc, partial);
    }
  }
  data_.clear();
  if (!first) data_.push_back(std::move(acc));
}

bool Parallel::failed() const { return failedFlag_.load(); }

const std::vector<Value>& Parallel::data() {
  wait();
  if (failedFlag_.load()) {
    // Surface the original exception type (a TypeError stays a
    // TypeError), not a flattened base-class copy of its message.
    if (errorPtr_) std::rethrow_exception(errorPtr_);
    throw Error("parallel operation failed: " + error_);
  }
  return data_;
}

std::vector<Value> Parallel::takeData() {
  data();  // wait + error check (throws with the original type)
  fault::inject(fault::Point::TransferFailure);  // clone-out boundary
  return std::move(data_);
}

std::vector<uint64_t> Parallel::itemsPerWorker() const {
  std::vector<uint64_t> out;
  out.reserve(perWorker_.size());
  for (const CounterSlot& slot : perWorker_) {
    out.push_back(slot.items.load(std::memory_order_relaxed));
  }
  return out;
}

uint64_t Parallel::virtualMakespan() const {
  uint64_t makespan = 0;
  for (const CounterSlot& slot : perWorker_) {
    makespan =
        std::max(makespan, slot.items.load(std::memory_order_relaxed));
  }
  return makespan;
}

}  // namespace psnap::workers
