#include "workers/parallel.hpp"

#include <algorithm>
#include <mutex>

#include "support/error.hpp"
#include "workers/worker_pool.hpp"

namespace psnap::workers {

using blocks::Value;

namespace {
constexpr size_t kDefaultWorkers = 4;  // the paper's Web Worker default
}  // namespace

Parallel::Parallel(const std::vector<Value>& data, ParallelOptions options)
    : workers_(options.maxWorkers == 0 ? kDefaultWorkers
                                       : options.maxWorkers),
      options_(options),
      perWorker_(options.maxWorkers == 0 ? kDefaultWorkers
                                         : options.maxWorkers) {
  if (options_.chunkSize == 0) options_.chunkSize = 1;
  cloneIn(data);
}

Parallel::Parallel(const blocks::ListPtr& list, ParallelOptions options)
    : Parallel(list ? list->items() : std::vector<Value>{}, options) {}

Parallel::~Parallel() {
  // Chunk tasks capture `this`; they must finish before the object dies.
  if (group_) group_->wait();
}

void Parallel::cloneIn(const std::vector<Value>& source) {
  // Snapshot transfer: structuredClone is a scalar copy / refcount bump
  // per element (lists take an O(1) frozen buffer snapshot, text is
  // shared-immutable), so the seed's parallel clone pass — slice tasks
  // deep-copying on the pool — is gone entirely. Isolation is still
  // anchored at construction time: later mutation of the source detaches
  // at the COW gate and never reaches this job, and vice versa.
  data_.reserve(source.size());
  for (const Value& v : source) data_.push_back(v.structuredClone());
}

void Parallel::recordError(const std::string& message) {
  std::lock_guard<std::mutex> lock(errorMutex_);
  if (!failedFlag_.exchange(true)) error_ = message;
}

void Parallel::launch(std::function<void(size_t)> body, size_t taskCount) {
  if (launched_.exchange(true)) {
    throw Error("Parallel: an operation is already running on this object");
  }
  std::vector<TaskGroup::Task> tasks;
  tasks.reserve(taskCount);
  for (size_t w = 0; w < taskCount; ++w) {
    tasks.push_back([this, body](size_t index) {
      try {
        body(index);
      } catch (const std::exception& e) {
        recordError(e.what());
      } catch (...) {
        recordError("unknown worker error");
      }
    });
  }
  group_ = std::make_shared<TaskGroup>(std::move(tasks));
  WorkerPool::shared().submit(group_);
}

void Parallel::map(MapFn fn) {
  const size_t n = data_.size();
  switch (options_.distribution) {
    case Distribution::Dynamic: {
      const size_t chunk = options_.chunkSize;
      // Only as many chunk tasks as there are chunks to claim; idle
      // logical workers keep their zero itemsPerWorker slot.
      const size_t taskCount =
          std::min(workers_, (n + chunk - 1) / chunk);
      launch(
          [this, fn, n, chunk](size_t w) {
            while (true) {
              size_t begin = cursor_.fetch_add(chunk);
              if (begin >= n) break;
              size_t end = std::min(begin + chunk, n);
              uint64_t local = 0;
              for (size_t i = begin; i < end; ++i) {
                data_[i] = fn(data_[i]);
                ++local;
              }
              perWorker_[w].items.fetch_add(local,
                                            std::memory_order_relaxed);
            }
          },
          taskCount);
      break;
    }
    case Distribution::Contiguous: {
      const size_t per = (n + workers_ - 1) / workers_;
      const size_t taskCount = per == 0 ? 0 : (n + per - 1) / per;
      launch(
          [this, fn, n, per](size_t w) {
            size_t begin = w * per;
            size_t end = std::min(begin + per, n);
            uint64_t local = 0;
            for (size_t i = begin; i < end; ++i) {
              data_[i] = fn(data_[i]);
              ++local;
            }
            perWorker_[w].items.fetch_add(local, std::memory_order_relaxed);
          },
          taskCount);
      break;
    }
    case Distribution::BlockCyclic: {
      const size_t chunk = options_.chunkSize;
      const size_t stride = chunk * workers_;
      const size_t taskCount =
          std::min(workers_, (n + chunk - 1) / chunk);
      launch(
          [this, fn, n, chunk, stride](size_t w) {
            for (size_t base = w * chunk; base < n; base += stride) {
              size_t end = std::min(base + chunk, n);
              uint64_t local = 0;
              for (size_t i = base; i < end; ++i) {
                data_[i] = fn(data_[i]);
                ++local;
              }
              perWorker_[w].items.fetch_add(local,
                                            std::memory_order_relaxed);
            }
          },
          taskCount);
      break;
    }
  }
}

void Parallel::reduce(ReduceFn fn) {
  isReduce_ = true;
  combiner_ = fn;
  const size_t n = data_.size();
  partials_.assign(workers_, Value());
  const size_t per = (n + workers_ - 1) / workers_;
  const size_t taskCount = per == 0 ? 0 : (n + per - 1) / per;
  launch(
      [this, fn, n, per](size_t w) {
        size_t begin = w * per;
        size_t end = std::min(begin + per, n);
        if (begin >= end) return;
        Value acc = data_[begin];
        uint64_t local = 1;
        for (size_t i = begin + 1; i < end; ++i) {
          acc = fn(acc, data_[i]);
          ++local;
        }
        perWorker_[w].items.fetch_add(local, std::memory_order_relaxed);
        partials_[w] = std::move(acc);
      },
      taskCount);
}

bool Parallel::resolved() const {
  return launched_.load() && group_ && group_->done();
}

void Parallel::wait() {
  if (!launched_.load()) return;
  if (!joined_) {
    group_->wait();
    joined_ = true;
    if (isReduce_ && !failedFlag_.load()) {
      // Combine the per-worker partials in worker order.
      Value acc;
      bool first = true;
      for (Value& partial : partials_) {
        if (partial.isNothing()) continue;  // worker had an empty range
        if (first) {
          acc = std::move(partial);
          first = false;
        } else {
          acc = combiner_(acc, partial);
        }
      }
      data_.clear();
      if (!first) data_.push_back(std::move(acc));
    }
  }
}

bool Parallel::failed() const { return failedFlag_.load(); }

const std::vector<Value>& Parallel::data() {
  wait();
  if (failedFlag_.load()) {
    throw Error("parallel operation failed: " + error_);
  }
  return data_;
}

std::vector<Value> Parallel::takeData() {
  data();  // wait + error check
  return std::move(data_);
}

std::vector<uint64_t> Parallel::itemsPerWorker() const {
  std::vector<uint64_t> out;
  out.reserve(perWorker_.size());
  for (const CounterSlot& slot : perWorker_) {
    out.push_back(slot.items.load(std::memory_order_relaxed));
  }
  return out;
}

uint64_t Parallel::virtualMakespan() const {
  uint64_t makespan = 0;
  for (const CounterSlot& slot : perWorker_) {
    makespan =
        std::max(makespan, slot.items.load(std::memory_order_relaxed));
  }
  return makespan;
}

}  // namespace psnap::workers
