#include "workers/worker_pool.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/fault.hpp"

namespace psnap::workers {

namespace {
/// Shared availability gate for both submit overloads: real unavailability
/// (a stopped pool) and the injected pool-saturation fault surface the
/// same way, as a SubstrateError before anything is enqueued.
void checkAcceptsWork(bool stopped) {
  if (stopped) {
    throw SubstrateError("worker pool is stopped and accepts no work");
  }
  fault::inject(fault::Point::PoolSaturation);
}
}  // namespace

WorkerPool::WorkerPool(size_t width) {
  const size_t count = width == 0 ? 4 : width;
  slots_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  threads_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { workerMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(parkMutex_);
    stop_.store(true);
  }
  parkCv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  // Drain jobs submitted after the workers left (none in practice; the
  // queue must not leak closures holding resources).
  for (auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    slot->jobs.clear();
  }
}

void WorkerPool::push(size_t slot, std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(slots_[slot]->mutex);
    slots_[slot]->jobs.push_back(std::move(job));
  }
  queued_.fetch_add(1);  // seq_cst: pairs with the sleepers_ check below
  if (sleepers_.load() > 0) {
    // The empty critical section orders this notify against a worker
    // that is between its last queued_ check and cv wait.
    { std::lock_guard<std::mutex> lock(parkMutex_); }
    parkCv_.notify_one();
  }
}

void WorkerPool::submit(std::function<void()> job) {
  checkAcceptsWork(stop_.load(std::memory_order_relaxed));
  push(nextSlot_.fetch_add(1, std::memory_order_relaxed) % slots_.size(),
       std::move(job));
}

void WorkerPool::submit(const std::shared_ptr<TaskGroup>& group) {
  checkAcceptsWork(stop_.load(std::memory_order_relaxed));
  const size_t runners = std::min(group->size(), slots_.size());
  for (size_t i = 0; i < runners; ++i) {
    push(nextSlot_.fetch_add(1, std::memory_order_relaxed) % slots_.size(),
         [group] {
           while (group->runOne()) {
           }
         });
  }
}

std::vector<uint64_t> WorkerPool::jobsPerWorker() const {
  std::vector<uint64_t> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    out.push_back(slot->executed.load(std::memory_order_relaxed));
  }
  return out;
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool(
      std::max<size_t>(4, std::thread::hardware_concurrency()));
  return pool;
}

bool WorkerPool::tryRunOne(size_t self) {
  const size_t count = slots_.size();
  for (size_t k = 0; k < count; ++k) {
    const size_t victim = (self + k) % count;
    std::function<void()> job;
    {
      std::lock_guard<std::mutex> lock(slots_[victim]->mutex);
      if (slots_[victim]->jobs.empty()) continue;
      if (victim == self) {
        // Own deque: LIFO keeps the working set warm.
        job = std::move(slots_[victim]->jobs.back());
        slots_[victim]->jobs.pop_back();
      } else {
        // Steal the oldest job: FIFO order minimizes contention with the
        // victim's own LIFO end.
        job = std::move(slots_[victim]->jobs.front());
        slots_[victim]->jobs.pop_front();
      }
    }
    queued_.fetch_sub(1, std::memory_order_relaxed);
    inflight_.fetch_add(1, std::memory_order_relaxed);
    job();
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    slots_[self]->executed.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkerPool::workerMain(size_t index) {
  while (true) {
    // Chaos hook: a worker may go unresponsive here (sleep, never throw)
    // — the cooperative model's stand-in for a stalled Web Worker.
    fault::inject(fault::Point::WorkerStall);
    // Drain before honouring stop: Channel::close let pending messages
    // drain, and the pool keeps that contract.
    if (tryRunOne(index)) continue;
    if (stop_.load(std::memory_order_relaxed)) break;
    std::unique_lock<std::mutex> lock(parkMutex_);
    sleepers_.fetch_add(1);  // seq_cst: pairs with push()'s queued_ add
    parkCv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) || queued_.load() > 0;
    });
    sleepers_.fetch_sub(1);
  }
}

}  // namespace psnap::workers
