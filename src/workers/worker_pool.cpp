#include "workers/worker_pool.hpp"

namespace psnap::workers {

WorkerPool::WorkerPool(size_t width)
    : perWorker_(width == 0 ? 4 : width) {
  const size_t count = perWorker_.size();
  threads_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { workerMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  jobs_.close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::submit(std::function<void()> job) {
  jobs_.send(std::move(job));
}

std::vector<uint64_t> WorkerPool::jobsPerWorker() const {
  std::vector<uint64_t> out;
  out.reserve(perWorker_.size());
  for (const auto& counter : perWorker_) out.push_back(counter.load());
  return out;
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool(4);
  return pool;
}

void WorkerPool::workerMain(size_t index) {
  while (auto job = jobs_.receive()) {
    (*job)();
    perWorker_[index].fetch_add(1);
    completed_.fetch_add(1);
  }
}

}  // namespace psnap::workers
