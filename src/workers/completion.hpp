// One-shot completion latch: the substrate's callback registration point.
//
// Every asynchronous handle in the substrate (TaskGroup, Parallel, mr::Job)
// settles exactly once — when its last task finishes, when it degrades to an
// inline drain, or when its error is recorded. CompletionLatch captures that
// edge: callbacks registered before the edge run on the thread that settles
// the latch (normally the pool worker that finished the final task);
// callbacks registered after it run immediately on the registering thread.
// Either way a callback runs exactly once, and never under the latch's lock,
// so a callback may re-enter the substrate (submit work, wake a scheduler,
// register further callbacks elsewhere).
//
// Memory-order contract: settle() publishes with release semantics (the
// mutex) and callbacks observe with acquire, so everything the settling
// thread wrote before settle() — task outputs, the error slot, stats — is
// visible inside the callback and to any thread that observed settled().
// This is the contract the scheduler's parked-process wakeups rely on (see
// DESIGN.md "Completion model").
//
// The CompletionDrop fault point fires between swapping the callbacks out
// and marking the latch settled, widening the completion-vs-cancellation
// race window for the chaos suite. It is sleep-type by construction: a
// throw here would lose the wakeup forever.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "support/fault.hpp"

namespace psnap::workers {

class CompletionLatch {
 public:
  using Callback = std::function<void()>;

  /// Register a callback. Fires exactly once: from the settling thread if
  /// the latch is still open, immediately on the caller if already settled.
  void onSettle(Callback cb) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!settled_) {
        callbacks_.push_back(std::move(cb));
        return;
      }
    }
    cb();
  }

  /// Settle the latch. First call wins; later calls are no-ops (the
  /// degrade paths can race the pool's own completion). Callbacks run on
  /// the settling thread, outside the lock, in registration order.
  void settle() {
    std::vector<Callback> pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (settled_) return;
      pending.swap(callbacks_);
      // Delay point between claiming the settle and publishing it: a
      // parked waiter's cancel/deadline can now race ahead of the wakeup.
      fault::inject(fault::Point::CompletionDrop);
      settled_ = true;
      // Notify while still holding the lock: a destructor blocked in
      // wait() is free to destroy this latch the instant it observes
      // settled_, so the condvar must not be touched after the unlock.
      cv_.notify_all();
    }
    for (auto& cb : pending) cb();
  }

  bool settled() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return settled_;
  }

  /// Block until settled. Used by destructors and the synchronous join
  /// paths; scheduler code parks on a callback instead of waiting here.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return settled_; });
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool settled_ = false;
  std::vector<Callback> callbacks_;
};

}  // namespace psnap::workers
