#include "project/project.hpp"

#include "project/xml.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::project {

using blocks::Block;
using blocks::Input;
using blocks::InputKind;
using blocks::List;
using blocks::Script;
using blocks::ScriptPtr;
using blocks::Value;

namespace {

// --- value <-> xml ----------------------------------------------------------

XmlNode valueNode(const Value& value) {
  XmlNode node;
  switch (value.kind()) {
    case blocks::ValueKind::Nothing:
      node.tag = "l";
      node.attrs["t"] = "0";
      break;
    case blocks::ValueKind::Number:
      node.tag = "l";
      node.attrs["t"] = "n";
      node.text = strings::formatNumber(value.asNumber());
      break;
    case blocks::ValueKind::Boolean:
      node.tag = "l";
      node.attrs["t"] = "b";
      node.text = value.asBoolean() ? "true" : "false";
      break;
    case blocks::ValueKind::Text:
      node.tag = "l";
      node.attrs["t"] = "s";
      node.text = value.asText();
      break;
    case blocks::ValueKind::ListRef: {
      node.tag = "list";
      for (const Value& item : value.asList()->items()) {
        node.children.push_back(valueNode(item));
      }
      break;
    }
    case blocks::ValueKind::RingRef:
      throw ParseError("ring values cannot be saved as literals");
    case blocks::ValueKind::FutureRef:
      throw ParseError("future values cannot be saved as literals");
  }
  return node;
}

Value valueFromNode(const XmlNode& node) {
  if (node.tag == "list") {
    auto list = List::make();
    for (const XmlNode& child : node.children) {
      list->add(valueFromNode(child));
    }
    return Value(list);
  }
  if (node.tag != "l") throw ParseError("expected <l> literal");
  const std::string type = node.attr("t", "s");
  if (type == "0") return Value();
  if (type == "n") {
    double number = 0;
    if (!strings::parseNumber(node.text, number)) {
      throw ParseError("bad number literal: " + node.text);
    }
    return Value(number);
  }
  if (type == "b") return Value(node.text == "true");
  return Value(node.text);
}

// --- blocks <-> xml ---------------------------------------------------------

XmlNode scriptNode(const Script& script);

XmlNode blockNode(const Block& block) {
  XmlNode node;
  node.tag = "block";
  node.attrs["s"] = block.opcode();
  for (const Input& input : block.inputs()) {
    switch (input.kind()) {
      case InputKind::Literal:
        node.children.push_back(valueNode(input.literalValue()));
        break;
      case InputKind::BlockExpr:
        node.children.push_back(blockNode(*input.block()));
        break;
      case InputKind::ScriptSlot:
        node.children.push_back(scriptNode(*input.script()));
        break;
      case InputKind::Empty: {
        XmlNode empty;
        empty.tag = "empty";
        node.children.push_back(std::move(empty));
        break;
      }
      case InputKind::Collapsed: {
        XmlNode collapsed;
        collapsed.tag = "collapsed";
        node.children.push_back(std::move(collapsed));
        break;
      }
    }
  }
  return node;
}

XmlNode scriptNode(const Script& script) {
  XmlNode node;
  node.tag = "script";
  for (const blocks::BlockPtr& block : script.blocks()) {
    node.children.push_back(blockNode(*block));
  }
  return node;
}

blocks::ScriptPtr scriptFromNode(const XmlNode& node);

blocks::BlockPtr blockFromNode(const XmlNode& node) {
  if (node.tag != "block") throw ParseError("expected <block>");
  const std::string opcode = node.attr("s");
  if (opcode.empty()) throw ParseError("block without an opcode");
  std::vector<Input> inputs;
  for (const XmlNode& child : node.children) {
    if (child.tag == "block") {
      inputs.push_back(Input(blockFromNode(child)));
    } else if (child.tag == "script") {
      inputs.push_back(Input(scriptFromNode(child)));
    } else if (child.tag == "empty") {
      inputs.push_back(Input::empty());
    } else if (child.tag == "collapsed") {
      inputs.push_back(Input::collapsed());
    } else {
      inputs.push_back(Input(valueFromNode(child)));
    }
  }
  return Block::make(opcode, std::move(inputs));
}

blocks::ScriptPtr scriptFromNode(const XmlNode& node) {
  if (node.tag != "script") throw ParseError("expected <script>");
  std::vector<blocks::BlockPtr> out;
  for (const XmlNode& child : node.children) {
    out.push_back(blockFromNode(child));
  }
  return Script::make(std::move(out));
}

XmlNode variablesNode(
    const std::vector<std::pair<std::string, Value>>& variables) {
  XmlNode node;
  node.tag = "variables";
  for (const auto& [name, value] : variables) {
    XmlNode var;
    var.tag = "variable";
    var.attrs["name"] = name;
    var.children.push_back(valueNode(value));
    node.children.push_back(std::move(var));
  }
  return node;
}

std::vector<std::pair<std::string, Value>> variablesFromNode(
    const XmlNode* node) {
  std::vector<std::pair<std::string, Value>> out;
  if (!node) return out;
  for (const XmlNode* var : node->childrenNamed("variable")) {
    Value value;
    if (!var->children.empty()) value = valueFromNode(var->children[0]);
    out.push_back({var->attr("name"), std::move(value)});
  }
  return out;
}

XmlNode customBlocksNode(const std::vector<vm::CustomBlockDef>& defs) {
  XmlNode node;
  node.tag = "customBlocks";
  for (const vm::CustomBlockDef& def : defs) {
    XmlNode definition;
    definition.tag = "definition";
    definition.attrs["spec"] = def.spec;
    definition.attrs["type"] =
        def.type == blocks::BlockType::Reporter    ? "reporter"
        : def.type == blocks::BlockType::Predicate ? "predicate"
                                                   : "command";
    for (const std::string& formal : def.formals) {
      XmlNode f;
      f.tag = "formal";
      f.text = formal;
      definition.children.push_back(std::move(f));
    }
    definition.children.push_back(scriptNode(*def.body));
    node.children.push_back(std::move(definition));
  }
  return node;
}

std::vector<vm::CustomBlockDef> customBlocksFromNode(const XmlNode* node) {
  std::vector<vm::CustomBlockDef> out;
  if (!node) return out;
  for (const XmlNode* definition : node->childrenNamed("definition")) {
    vm::CustomBlockDef def;
    def.spec = definition->attr("spec");
    const std::string type = definition->attr("type", "command");
    def.type = type == "reporter"    ? blocks::BlockType::Reporter
               : type == "predicate" ? blocks::BlockType::Predicate
                                     : blocks::BlockType::Command;
    for (const XmlNode* formal : definition->childrenNamed("formal")) {
      def.formals.push_back(formal->text);
    }
    const XmlNode* body = definition->child("script");
    if (!body) throw ParseError("custom block without a body script");
    def.body = scriptFromNode(*body);
    out.push_back(std::move(def));
  }
  return out;
}

}  // namespace

void Project::registerCustomBlocks(blocks::BlockRegistry& registry,
                                   vm::PrimitiveTable& table,
                                   blocks::EnvPtr home) const {
  vm::CustomBlockLibrary library;
  for (vm::CustomBlockDef def : customBlocks) {
    def.home = home;
    library.define(std::move(def));
  }
  library.registerInto(registry, table);
}

void Project::instantiate(stage::Stage& stage) const {
  for (const auto& [name, value] : globals) {
    stage.globals()->declare(name, value);
  }
  for (const SpriteDef& def : sprites) {
    stage::Sprite& sprite = stage.addSprite(def.name);
    sprite.gotoXY(def.x, def.y);
    sprite.setHeading(def.heading);
    sprite.setCostume(def.costume);
    for (const auto& [name, value] : def.variables) {
      sprite.variables()->declare(name, value);
    }
    for (const ScriptPtr& script : def.scripts) {
      sprite.addScript(script);
    }
  }
}

std::string toXml(const Project& project) {
  XmlNode root;
  root.tag = "project";
  root.attrs["name"] = project.name;
  root.attrs["app"] = "psnap";
  root.children.push_back(variablesNode(project.globals));
  if (!project.customBlocks.empty()) {
    root.children.push_back(customBlocksNode(project.customBlocks));
  }
  XmlNode sprites;
  sprites.tag = "sprites";
  for (const SpriteDef& def : project.sprites) {
    XmlNode sprite;
    sprite.tag = "sprite";
    sprite.attrs["name"] = def.name;
    sprite.attrs["x"] = strings::formatNumber(def.x);
    sprite.attrs["y"] = strings::formatNumber(def.y);
    sprite.attrs["heading"] = strings::formatNumber(def.heading);
    sprite.attrs["costume"] = def.costume;
    sprite.children.push_back(variablesNode(def.variables));
    XmlNode scripts;
    scripts.tag = "scripts";
    for (const ScriptPtr& script : def.scripts) {
      scripts.children.push_back(scriptNode(*script));
    }
    sprite.children.push_back(std::move(scripts));
    sprites.children.push_back(std::move(sprite));
  }
  root.children.push_back(std::move(sprites));
  return writeXml(root);
}

Project fromXml(const std::string& text,
                const blocks::BlockRegistry& registry) {
  XmlNode root = parseXml(text);
  if (root.tag != "project") throw ParseError("expected <project> root");
  Project project;
  project.name = root.attr("name", "Untitled");
  project.globals = variablesFromNode(root.child("variables"));
  project.customBlocks = customBlocksFromNode(root.child("customBlocks"));
  // Scripts may invoke the project's own custom blocks: validate against
  // a registry copy that knows their specs.
  blocks::BlockRegistry effective = registry;
  for (const vm::CustomBlockDef& def : project.customBlocks) {
    blocks::BlockSpec spec;
    spec.opcode = vm::customOpcode(def.spec);
    spec.spec = def.spec;
    spec.category = "custom";
    spec.type = def.type;
    effective.add(spec);
  }
  for (const vm::CustomBlockDef& def : project.customBlocks) {
    effective.validate(*def.body);
  }
  if (const XmlNode* sprites = root.child("sprites")) {
    for (const XmlNode* spriteNode : sprites->childrenNamed("sprite")) {
      SpriteDef def;
      def.name = spriteNode->attr("name");
      def.x = std::stod(spriteNode->attr("x", "0"));
      def.y = std::stod(spriteNode->attr("y", "0"));
      def.heading = std::stod(spriteNode->attr("heading", "90"));
      def.costume = spriteNode->attr("costume", "default");
      def.variables = variablesFromNode(spriteNode->child("variables"));
      if (const XmlNode* scripts = spriteNode->child("scripts")) {
        for (const XmlNode* script : scripts->childrenNamed("script")) {
          ScriptPtr parsed = scriptFromNode(*script);
          effective.validate(*parsed);
          def.scripts.push_back(std::move(parsed));
        }
      }
      project.sprites.push_back(std::move(def));
    }
  }
  return project;
}

std::string scriptToXml(const Script& script) {
  return writeXml(scriptNode(script));
}

blocks::ScriptPtr scriptFromXml(const std::string& text,
                                const blocks::BlockRegistry& registry) {
  ScriptPtr parsed = scriptFromNode(parseXml(text));
  registry.validate(*parsed);
  return parsed;
}

}  // namespace psnap::project
