#include "project/xml.hpp"

#include <cctype>

#include "support/error.hpp"

namespace psnap::project {

const XmlNode* XmlNode::child(const std::string& tag) const {
  for (const XmlNode& node : children) {
    if (node.tag == tag) return &node;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::childrenNamed(
    const std::string& tag) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& node : children) {
    if (node.tag == tag) out.push_back(&node);
  }
  return out;
}

std::string XmlNode::attr(const std::string& name,
                          const std::string& fallback) const {
  auto it = attrs.find(name);
  return it == attrs.end() ? fallback : it->second;
}

std::string xmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += ch;
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  XmlNode parse() {
    skipProlog();
    XmlNode root = parseElement();
    skipSpace();
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw ParseError("XML at offset " + std::to_string(pos_) + ": " +
                     message);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char get() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }
  bool consume(const std::string& expected) {
    if (text_.compare(pos_, expected.size(), expected) == 0) {
      pos_ += expected.size();
      return true;
    }
    return false;
  }
  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  void skipProlog() {
    skipSpace();
    while (consume("<?")) {
      size_t end = text_.find("?>", pos_);
      if (end == std::string::npos) fail("unterminated declaration");
      pos_ = end + 2;
      skipSpace();
    }
    skipComments();
  }
  void skipComments() {
    skipSpace();
    while (consume("<!--")) {
      size_t end = text_.find("-->", pos_);
      if (end == std::string::npos) fail("unterminated comment");
      pos_ = end + 3;
      skipSpace();
    }
  }

  std::string parseName() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' ||
            text_[pos_] == ':')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a name");
    return text_.substr(start, pos_ - start);
  }

  std::string decodeEntities(const std::string& raw) {
    std::string out;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string::npos) fail("unterminated entity");
      std::string entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else fail("unknown entity &" + entity + ";");
      i = semi;
    }
    return out;
  }

  XmlNode parseElement() {
    if (get() != '<') fail("expected '<'");
    XmlNode node;
    node.tag = parseName();
    // attributes
    while (true) {
      skipSpace();
      char ch = peek();
      if (ch == '>' || ch == '/') break;
      std::string name = parseName();
      skipSpace();
      if (get() != '=') fail("expected '=' after attribute " + name);
      skipSpace();
      char quote = get();
      if (quote != '"' && quote != '\'') fail("expected quoted value");
      size_t end = text_.find(quote, pos_);
      if (end == std::string::npos) fail("unterminated attribute value");
      node.attrs[name] = decodeEntities(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    if (consume("/>")) return node;
    if (get() != '>') fail("expected '>'");

    // content
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated element <" + node.tag);
      if (consume("<!--")) {
        size_t end = text_.find("-->", pos_);
        if (end == std::string::npos) fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (text_.compare(pos_, 2, "</") == 0) {
        pos_ += 2;
        std::string closing = parseName();
        if (closing != node.tag) {
          fail("mismatched </" + closing + "> for <" + node.tag + ">");
        }
        skipSpace();
        if (get() != '>') fail("expected '>' in closing tag");
        return node;
      }
      if (peek() == '<') {
        node.children.push_back(parseElement());
        continue;
      }
      size_t next = text_.find('<', pos_);
      if (next == std::string::npos) fail("unterminated element content");
      node.text += decodeEntities(text_.substr(pos_, next - pos_));
      pos_ = next;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void writeNode(const XmlNode& node, int depth, std::string& out) {
  const std::string pad(static_cast<size_t>(depth) * 2, ' ');
  out += pad + "<" + node.tag;
  for (const auto& [name, value] : node.attrs) {
    out += " " + name + "=\"" + xmlEscape(value) + "\"";
  }
  if (node.children.empty() && node.text.empty()) {
    out += "/>\n";
    return;
  }
  out += ">";
  if (!node.text.empty()) out += xmlEscape(node.text);
  if (!node.children.empty()) {
    out += "\n";
    for (const XmlNode& child : node.children) {
      writeNode(child, depth + 1, out);
    }
    out += pad;
  }
  out += "</" + node.tag + ">\n";
}

}  // namespace

XmlNode parseXml(const std::string& text) { return Parser(text).parse(); }

std::string writeXml(const XmlNode& node) {
  std::string out;
  writeNode(node, 0, out);
  return out;
}

}  // namespace psnap::project
