// Binary project snapshots beside the XML format.
//
// XML round-trips the full block structure but pays a parse proportional
// to the data: a project whose variables hold million-element lists
// spends its whole load inside valueNode. The snapshot splits the two
// concerns: the *skeleton* (sprites, scripts, custom blocks — everything
// structural) stays XML, embedded verbatim in the snapshot file, while
// every variable value moves to the typed-block value plane, where flat
// lists are mmap'd back in O(pages touched) (persist/snapshot.hpp).
// Loading re-parses only the skeleton — script-sized, not data-sized —
// and re-attaches values by owner and name.
//
// Variable values that are rings are not persistable in either format
// (the XML writer rejects them too); saveProjectSnapshot raises
// PurityError before touching disk, like persist::saveValue.
#pragma once

#include <string>

#include "project/project.hpp"

namespace psnap::project {

/// Writes `project` as a binary snapshot. Atomic (temp + rename);
/// throws PurityError for ring/future/cyclic variable values and
/// SubstrateError for I/O failures.
void saveProjectSnapshot(const std::string& path, const Project& project);

/// Loads a snapshot: parses the embedded XML skeleton against
/// `registry`, then re-attaches variable values — list values alias the
/// mapping until first mutation. Throws SubstrateError for corrupt
/// files or a value table that does not match the skeleton.
Project loadProjectSnapshot(const std::string& path,
                            const blocks::BlockRegistry& registry =
                                blocks::BlockRegistry::standard());

}  // namespace psnap::project
