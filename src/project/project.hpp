// The serializable project model: what a Snap! "save project" produces.
//
// A Project is the static description — sprite definitions, variables,
// scripts — that can be (de)serialized to XML and instantiated onto a
// live Stage. Round-tripping a project through XML preserves the full
// block structure, including rings, empty slots, collapsed optional slots
// (the parallelForEach mode switch!), C-slots, and list literals.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "blocks/block.hpp"
#include "stage/stage.hpp"
#include "vm/custom_blocks.hpp"

namespace psnap::project {

struct SpriteDef {
  std::string name;
  double x = 0;
  double y = 0;
  double heading = 90;
  std::string costume = "default";
  std::vector<std::pair<std::string, blocks::Value>> variables;
  /// Each script starts with a hat block.
  std::vector<blocks::ScriptPtr> scripts;
};

struct Project {
  std::string name = "Untitled";
  std::vector<std::pair<std::string, blocks::Value>> globals;
  std::vector<SpriteDef> sprites;
  /// BYOB definitions saved with the project (their `home` environments
  /// are rebound to the stage globals at registration time).
  std::vector<vm::CustomBlockDef> customBlocks;

  /// Build the sprites, variables, and scripts onto a live stage.
  void instantiate(stage::Stage& stage) const;

  /// Register the project's custom blocks into a registry/table pair,
  /// binding their lexical home to `home` (pass the stage globals).
  void registerCustomBlocks(blocks::BlockRegistry& registry,
                            vm::PrimitiveTable& table,
                            blocks::EnvPtr home = nullptr) const;
};

/// Serialize a project to XML text.
std::string toXml(const Project& project);
/// Parse XML text back into a project; validates every block against the
/// registry. Throws ParseError / BlockError on malformed input.
Project fromXml(const std::string& text,
                const blocks::BlockRegistry& registry =
                    blocks::BlockRegistry::standard());

/// Serialize a single script (used for clipboard-style block exchange).
std::string scriptToXml(const blocks::Script& script);
blocks::ScriptPtr scriptFromXml(const std::string& text,
                                const blocks::BlockRegistry& registry =
                                    blocks::BlockRegistry::standard());

}  // namespace psnap::project
