// A minimal XML DOM — just enough for Snap!-style project files: elements
// with attributes, text content, nesting; entities for & < > " '.
// No namespaces, comments are skipped, declarations (<?xml…?>) tolerated.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace psnap::project {

struct XmlNode {
  std::string tag;
  std::map<std::string, std::string> attrs;
  std::vector<XmlNode> children;
  std::string text;  ///< concatenated character data

  /// First child with `tag`, or nullptr.
  const XmlNode* child(const std::string& tag) const;
  /// All children with `tag`.
  std::vector<const XmlNode*> childrenNamed(const std::string& tag) const;
  /// Attribute value or `fallback`.
  std::string attr(const std::string& name,
                   const std::string& fallback = "") const;
};

/// Parse one document; throws ParseError on malformed input.
XmlNode parseXml(const std::string& text);

/// Serialize with 2-space indentation.
std::string writeXml(const XmlNode& node);

/// Escape character data / attribute values.
std::string xmlEscape(const std::string& text);

}  // namespace psnap::project
