#include "project/snapshot.hpp"

#include <utility>

#include "persist/snapshot.hpp"
#include "support/error.hpp"

namespace psnap::project {

using blocks::Value;

void saveProjectSnapshot(const std::string& path, const Project& project) {
  // Skeleton: the project with every variable value blanked. Scripts and
  // custom blocks are shared pointers, so this copy is spine-only.
  Project skeleton = project;
  persist::ProjectImage image;
  for (auto& [name, value] : skeleton.globals) {
    image.vars.push_back({0, name, std::move(value)});
    value = Value();
  }
  for (size_t s = 0; s < skeleton.sprites.size(); ++s) {
    for (auto& [name, value] : skeleton.sprites[s].variables) {
      image.vars.push_back({s + 1, name, std::move(value)});
      value = Value();
    }
  }
  image.xml = toXml(skeleton);
  persist::saveProjectImage(path, image);
}

Project loadProjectSnapshot(const std::string& path,
                            const blocks::BlockRegistry& registry) {
  persist::ProjectImage image = persist::loadProjectImage(path);
  Project project;
  try {
    project = fromXml(image.xml, registry);
  } catch (const Error& error) {
    // A malformed skeleton inside a validated snapshot is corruption,
    // not a user parse error.
    throw SubstrateError("snapshot open (" + path +
                         "): corrupt XML skeleton: " + error.what());
  }
  for (persist::ProjectImage::Var& var : image.vars) {
    std::vector<std::pair<std::string, Value>>* scope = nullptr;
    if (var.owner == 0) {
      scope = &project.globals;
    } else if (var.owner <= project.sprites.size()) {
      scope = &project.sprites[var.owner - 1].variables;
    } else {
      throw SubstrateError("snapshot open (" + path +
                           "): corrupt variable table: owner " +
                           std::to_string(var.owner) + " out of range");
    }
    bool attached = false;
    for (auto& [name, value] : *scope) {
      if (name == var.name) {
        value = std::move(var.value);
        attached = true;
        break;
      }
    }
    if (!attached) {
      throw SubstrateError("snapshot open (" + path +
                           "): corrupt variable table: \"" + var.name +
                           "\" is not in the skeleton");
    }
  }
  return project;
}

}  // namespace psnap::project
