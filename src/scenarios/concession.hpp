// The concession-stand demo (paper Sec. 3.3, Figs. 7–10).
//
// A Pitcher sprite serves drinks to waiting Cup sprites; filling one glass
// takes `pourFrames` timesteps. In parallel mode the parallelForEach block
// spawns one Pitcher clone per cup and all glasses fill simultaneously
// (3 timesteps for 3 cups); in sequential mode (the collapsed "in
// parallel" slot) the single pitcher serves the cups one at a time
// (9 ideal timesteps, observed as 12 under the paper's browser
// interference — see InterferenceModel).
//
// The script instruments the pour window with the stage timer exactly the
// way the demo displays it: the first pour records the start timestep,
// every pour completion records the end, and the reported elapsed time is
// end − start + 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/thread_manager.hpp"

namespace psnap::scenarios {

struct ConcessionConfig {
  bool parallel = true;
  size_t cups = 3;
  int pourFrames = 3;  ///< timesteps to fill one glass
  /// Frames stolen by "other browser tasks". Disabled by default; use
  /// paperInterference() to reproduce the observed 12-timestep run.
  sched::InterferenceModel interference = sched::InterferenceModel::none();
  bool captureFrames = false;  ///< record renderFrame() per timestep
};

struct ConcessionResult {
  /// The timer readout: timesteps from first pour to last pour inclusive.
  uint64_t pourTimesteps = 0;
  /// Total scheduler frames until the project went idle.
  uint64_t totalFrames = 0;
  /// Cups whose costume ended as "full".
  size_t cupsFilled = 0;
  /// Optional per-frame textual renders of the stage.
  std::vector<std::string> frames;
  /// Scheduler errors, empty on success.
  std::vector<std::string> errors;
};

/// The interference phase that reproduces the paper's measurement for the
/// green-flag-activated concession project: the sequential run observes 12
/// timesteps (9 ideal + 3 stolen), the parallel run still observes 3.
/// (The scenario's pours start one frame later than a directly spawned
/// script, hence the offset differs from InterferenceModel::paperDefault.)
sched::InterferenceModel paperInterference();

/// Build and run the concession stand; returns the measured timesteps.
ConcessionResult runConcession(const ConcessionConfig& config);

}  // namespace psnap::scenarios
