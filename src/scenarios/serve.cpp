#include "scenarios/serve.hpp"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "blocks/builder.hpp"
#include "data/climate.hpp"
#include "data/corpus.hpp"
#include "stage/stage.hpp"

namespace psnap::scenarios {

using namespace psnap::build;
using blocks::Value;

serve::SessionWorkload serveConcessionWorkload(size_t cups) {
  serve::SessionWorkload workload;
  workload.label = "concession";
  workload.start = [cups](sched::ThreadManager& tm) -> std::shared_ptr<void> {
    auto stage = std::make_shared<stage::Stage>(&tm);
    stage->globals()->declare("pourStart", Value(""));
    stage->globals()->declare("pourEnd", Value(0));
    std::vector<In> cupNames;
    for (size_t i = 1; i <= cups; ++i) {
      const std::string name = "Cup" + std::to_string(i);
      stage::Sprite& cup = stage->addSprite(name);
      cup.setCostume("empty");
      cup.addScript(scriptOf(
          {whenIReceive("fill-" + name), switchCostume("full")}));
      cupNames.emplace_back(name);
    }
    auto pourBody = scriptOf({
        doIf(equals(getVar("pourStart"), ""),
             scriptOf({setVar("pourStart", timer())})),
        busyWork(1),
        setVar("pourEnd", timer()),
        broadcast(join({In("fill-"), In(getVar("cup"))})),
    });
    stage::Sprite& pitcher = stage->addSprite("Pitcher");
    pitcher.setCostume("pitcher");
    pitcher.addScript(scriptOf({
        whenGreenFlag(),
        parallelForEach("cup", listOf(cupNames), blank(), pourBody),
    }));
    stage->greenFlag();
    return stage;
  };
  workload.check = [cups](sched::ThreadManager&,
                          const std::shared_ptr<void>& opaque) {
    auto* stage = static_cast<stage::Stage*>(opaque.get());
    size_t filled = 0;
    for (stage::Sprite* sprite : stage->sprites()) {
      if (sprite->costume() == "full") ++filled;
    }
    return filled == cups;
  };
  return workload;
}

namespace {
struct WordCountState {
  std::string text;
  std::shared_ptr<const vm::ProcessStatus> status;
};
}  // namespace

serve::SessionWorkload serveWordCountWorkload(size_t words, uint64_t seed) {
  serve::SessionWorkload workload;
  workload.label = "wordcount";
  workload.start = [words,
                    seed](sched::ThreadManager& tm) -> std::shared_ptr<void> {
    auto state = std::make_shared<WordCountState>();
    state->text = data::generateText(words, 8, seed);
    state->status = tm.spawnExpression(
                          mapReduce(ring(In(1.0)), ring(lengthOf(empty())),
                                    splitText(state->text, "whitespace")),
                          blocks::Environment::make())
                        .status;
    return state;
  };
  workload.check = [](sched::ThreadManager&,
                      const std::shared_ptr<void>& opaque) {
    auto* state = static_cast<WordCountState*>(opaque.get());
    if (!state->status->done || state->status->errored) return false;
    const Value& result = state->status->result;
    if (!result.isList()) return false;
    const auto reference = data::referenceWordCount(state->text);
    if (result.asList()->length() != reference.size()) return false;
    for (const Value& pair : result.asList()->items()) {
      if (!pair.isList() || pair.asList()->length() != 2) return false;
      const std::string word = pair.asList()->item(1).asText();
      const auto expected = reference.find(word);
      if (expected == reference.end()) return false;
      if (size_t(pair.asList()->item(2).asNumber()) != expected->second) {
        return false;
      }
    }
    return true;
  };
  return workload;
}

namespace {
struct ClimateState {
  double referenceMean = 0;
  std::shared_ptr<const vm::ProcessStatus> status;
};
}  // namespace

serve::SessionWorkload serveClimateWorkload(int years, uint64_t seed) {
  serve::SessionWorkload workload;
  workload.label = "climate";
  workload.start = [years,
                    seed](sched::ThreadManager& tm) -> std::shared_ptr<void> {
    data::ClimateConfig config;
    config.stations = 1;
    config.firstYear = 2000;
    config.lastYear = 2000 + (years > 0 ? years - 1 : 0);
    config.seed = seed;
    const auto records = data::generateClimate(config);
    auto state = std::make_shared<ClimateState>();
    state->referenceMean = data::referenceMeanCelsius(records);
    // mean(celsius) = sum(parallelMap f→c over readings) / count
    auto fahrenheit = data::toFahrenheitList(records);
    const double count = double(fahrenheit->length());
    state->status =
        tm.spawnExpression(
              quotient(combineUsing(parallelMap(
                                        ring(quotient(
                                            product(difference(empty(),
                                                               In(32.0)),
                                                    In(5.0)),
                                            In(9.0))),
                                        In(Value(fahrenheit))),
                                    ring(sum(empty(), empty()))),
                       In(count)),
              blocks::Environment::make())
            .status;
    return state;
  };
  workload.check = [](sched::ThreadManager&,
                      const std::shared_ptr<void>& opaque) {
    auto* state = static_cast<ClimateState*>(opaque.get());
    if (!state->status->done || state->status->errored) return false;
    return std::abs(state->status->result.asNumber() -
                    state->referenceMean) < 1e-6;
  };
  return workload;
}

serve::SessionWorkload serveSpinWorkload() {
  serve::SessionWorkload workload;
  workload.label = "spin";
  workload.start = [](sched::ThreadManager& tm) -> std::shared_ptr<void> {
    tm.spawnScript(scriptOf({forever(scriptOf({busyWork(1)}))}),
                   blocks::Environment::make());
    return nullptr;
  };
  return workload;
}

serve::SessionWorkload serveMixedWorkload(size_t index) {
  switch (index % 3) {
    case 0:
      return serveConcessionWorkload(2);
    case 1:
      return serveWordCountWorkload(24, uint64_t(index) * 2 + 1);
    default:
      return serveClimateWorkload(1, uint64_t(index) * 2 + 1);
  }
}

}  // namespace psnap::scenarios
