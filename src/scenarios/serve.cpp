#include "scenarios/serve.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "blocks/builder.hpp"
#include "data/climate.hpp"
#include "data/corpus.hpp"
#include "stage/stage.hpp"

namespace psnap::scenarios {

using namespace psnap::build;
using blocks::Value;

namespace {

/// Split a parameter-encoded label ("wordcount:24:7") into its fields.
std::vector<std::string> labelFields(const std::string& label) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t colon = label.find(':', start);
    if (colon == std::string::npos) {
      fields.push_back(label.substr(start));
      return fields;
    }
    fields.push_back(label.substr(start, colon - start));
    start = colon + 1;
  }
}

/// The restart-from-scratch recovery model for idempotent workloads: the
/// recovered project carries no state worth keeping (the computation is
/// deterministic from its parameters, which live in the label), so
/// resume just re-runs start.
void makeIdempotentRecoverable(
    serve::SessionWorkload& workload,
    std::function<std::string(sched::ThreadManager&,
                              const std::shared_ptr<void>&)>
        output) {
  const std::string label = workload.label;
  workload.capture = [label](sched::ThreadManager&,
                             const std::shared_ptr<void>&) {
    project::Project project;
    project.name = label;
    return project;
  };
  workload.resume = [start = workload.start](
                        sched::ThreadManager& tm,
                        const project::Project&) { return start(tm); };
  workload.output = std::move(output);
}

}  // namespace

serve::SessionWorkload serveConcessionWorkload(size_t cups) {
  serve::SessionWorkload workload;
  workload.label = "concession:" + std::to_string(cups);
  workload.start = [cups](sched::ThreadManager& tm) -> std::shared_ptr<void> {
    auto stage = std::make_shared<stage::Stage>(&tm);
    stage->globals()->declare("pourStart", Value(""));
    stage->globals()->declare("pourEnd", Value(0));
    std::vector<In> cupNames;
    for (size_t i = 1; i <= cups; ++i) {
      const std::string name = "Cup" + std::to_string(i);
      stage::Sprite& cup = stage->addSprite(name);
      cup.setCostume("empty");
      cup.addScript(scriptOf(
          {whenIReceive("fill-" + name), switchCostume("full")}));
      cupNames.emplace_back(name);
    }
    auto pourBody = scriptOf({
        doIf(equals(getVar("pourStart"), ""),
             scriptOf({setVar("pourStart", timer())})),
        busyWork(1),
        setVar("pourEnd", timer()),
        broadcast(join({In("fill-"), In(getVar("cup"))})),
    });
    stage::Sprite& pitcher = stage->addSprite("Pitcher");
    pitcher.setCostume("pitcher");
    pitcher.addScript(scriptOf({
        whenGreenFlag(),
        parallelForEach("cup", listOf(cupNames), blank(), pourBody),
    }));
    stage->greenFlag();
    return stage;
  };
  workload.check = [cups](sched::ThreadManager&,
                          const std::shared_ptr<void>& opaque) {
    auto* stage = static_cast<stage::Stage*>(opaque.get());
    size_t filled = 0;
    for (stage::Sprite* sprite : stage->sprites()) {
      if (sprite->costume() == "full") ++filled;
    }
    return filled == cups;
  };
  makeIdempotentRecoverable(
      workload, [](sched::ThreadManager&, const std::shared_ptr<void>& opaque) {
        // Sprite insertion order is deterministic (Cup1..CupN, Pitcher).
        auto* stage = static_cast<stage::Stage*>(opaque.get());
        std::string out;
        for (stage::Sprite* sprite : stage->sprites()) {
          if (!out.empty()) out += ";";
          out += sprite->name() + "=" + sprite->costume();
        }
        return out;
      });
  return workload;
}

namespace {
struct WordCountState {
  std::string text;
  std::shared_ptr<const vm::ProcessStatus> status;
};
}  // namespace

serve::SessionWorkload serveWordCountWorkload(size_t words, uint64_t seed) {
  serve::SessionWorkload workload;
  workload.label =
      "wordcount:" + std::to_string(words) + ":" + std::to_string(seed);
  workload.start = [words,
                    seed](sched::ThreadManager& tm) -> std::shared_ptr<void> {
    auto state = std::make_shared<WordCountState>();
    state->text = data::generateText(words, 8, seed);
    state->status = tm.spawnExpression(
                          mapReduce(ring(In(1.0)), ring(lengthOf(empty())),
                                    splitText(state->text, "whitespace")),
                          blocks::Environment::make())
                        .status;
    return state;
  };
  workload.check = [](sched::ThreadManager&,
                      const std::shared_ptr<void>& opaque) {
    auto* state = static_cast<WordCountState*>(opaque.get());
    if (!state->status->done || state->status->errored) return false;
    const Value& result = state->status->result;
    if (!result.isList()) return false;
    const auto reference = data::referenceWordCount(state->text);
    if (result.asList()->length() != reference.size()) return false;
    for (const Value& pair : result.asList()->items()) {
      if (!pair.isList() || pair.asList()->length() != 2) return false;
      const std::string word = pair.asList()->item(1).asText();
      const auto expected = reference.find(word);
      if (expected == reference.end()) return false;
      if (size_t(pair.asList()->item(2).asNumber()) != expected->second) {
        return false;
      }
    }
    return true;
  };
  makeIdempotentRecoverable(
      workload, [](sched::ThreadManager&, const std::shared_ptr<void>& opaque) {
        // Sorted by word so the rendering is independent of whatever
        // order the reduce emitted pairs in.
        auto* state = static_cast<WordCountState*>(opaque.get());
        std::vector<std::pair<std::string, uint64_t>> pairs;
        if (state->status->done && !state->status->errored &&
            state->status->result.isList()) {
          for (const Value& pair : state->status->result.asList()->items()) {
            if (!pair.isList() || pair.asList()->length() != 2) continue;
            pairs.emplace_back(pair.asList()->item(1).asText(),
                               uint64_t(pair.asList()->item(2).asNumber()));
          }
        }
        std::sort(pairs.begin(), pairs.end());
        std::string out;
        for (const auto& [word, count] : pairs) {
          if (!out.empty()) out += ";";
          out += word + "=" + std::to_string(count);
        }
        return out;
      });
  return workload;
}

namespace {
struct ClimateState {
  double referenceMean = 0;
  std::shared_ptr<const vm::ProcessStatus> status;
};
}  // namespace

serve::SessionWorkload serveClimateWorkload(int years, uint64_t seed) {
  serve::SessionWorkload workload;
  workload.label =
      "climate:" + std::to_string(years) + ":" + std::to_string(seed);
  workload.start = [years,
                    seed](sched::ThreadManager& tm) -> std::shared_ptr<void> {
    data::ClimateConfig config;
    config.stations = 1;
    config.firstYear = 2000;
    config.lastYear = 2000 + (years > 0 ? years - 1 : 0);
    config.seed = seed;
    const auto records = data::generateClimate(config);
    auto state = std::make_shared<ClimateState>();
    state->referenceMean = data::referenceMeanCelsius(records);
    // mean(celsius) = sum(parallelMap f→c over readings) / count
    auto fahrenheit = data::toFahrenheitList(records);
    const double count = double(fahrenheit->length());
    state->status =
        tm.spawnExpression(
              quotient(combineUsing(parallelMap(
                                        ring(quotient(
                                            product(difference(empty(),
                                                               In(32.0)),
                                                    In(5.0)),
                                            In(9.0))),
                                        In(Value(fahrenheit))),
                                    ring(sum(empty(), empty()))),
                       In(count)),
              blocks::Environment::make())
            .status;
    return state;
  };
  workload.check = [](sched::ThreadManager&,
                      const std::shared_ptr<void>& opaque) {
    auto* state = static_cast<ClimateState*>(opaque.get());
    if (!state->status->done || state->status->errored) return false;
    return std::abs(state->status->result.asNumber() -
                    state->referenceMean) < 1e-6;
  };
  makeIdempotentRecoverable(
      workload, [](sched::ThreadManager&, const std::shared_ptr<void>& opaque) {
        auto* state = static_cast<ClimateState*>(opaque.get());
        if (!state->status->done || state->status->errored) return std::string();
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "mean=%.9f",
                      state->status->result.asNumber());
        return std::string(buffer);
      });
  return workload;
}

serve::SessionWorkload serveSpinWorkload() {
  serve::SessionWorkload workload;
  workload.label = "spin";
  workload.start = [](sched::ThreadManager& tm) -> std::shared_ptr<void> {
    tm.spawnScript(scriptOf({forever(scriptOf({busyWork(1)}))}),
                   blocks::Environment::make());
    return nullptr;
  };
  return workload;
}

namespace {
struct TickerState {
  blocks::EnvPtr env;
  size_t target = 0;
};

/// Spawn the counting script. The `repeat` count is evaluated once at
/// loop entry, so a resumed session with k elements already in the list
/// runs exactly target-k more iterations — each appending length+1.
void spawnTicker(sched::ThreadManager& tm, TickerState& state) {
  tm.spawnScript(
      scriptOf({repeat(
          difference(In(double(state.target)), lengthOf(getVar("ticks"))),
          scriptOf({busyWork(1),
                    addToList(sum(lengthOf(getVar("ticks")), In(1.0)),
                              getVar("ticks"))}))}),
      state.env);
}
}  // namespace

serve::SessionWorkload serveTickerWorkload(size_t target) {
  serve::SessionWorkload workload;
  workload.label = "ticker:" + std::to_string(target);
  workload.start = [target](sched::ThreadManager& tm) -> std::shared_ptr<void> {
    auto state = std::make_shared<TickerState>();
    state->target = target;
    state->env = blocks::Environment::make();
    state->env->declare("ticks", Value(blocks::List::make()));
    spawnTicker(tm, *state);
    return state;
  };
  workload.capture = [](sched::ThreadManager&,
                        const std::shared_ptr<void>& opaque) {
    auto* state = static_cast<TickerState*>(opaque.get());
    project::Project project;
    project.name = "ticker";
    // O(1) for this flat list: the clone shares the buffer and the
    // session's next append copies out (COW), never touching it.
    project.globals.emplace_back("ticks",
                                 state->env->get("ticks").structuredClone());
    return project;
  };
  workload.resume = [target](
                        sched::ThreadManager& tm,
                        const project::Project& project) -> std::shared_ptr<void> {
    auto state = std::make_shared<TickerState>();
    state->target = target;
    state->env = blocks::Environment::make();
    Value ticks(blocks::List::make());
    for (const auto& [name, value] : project.globals) {
      if (name == "ticks" && value.isList()) ticks = value.structuredClone();
    }
    state->env->declare("ticks", std::move(ticks));
    spawnTicker(tm, *state);
    return state;
  };
  workload.check = [target](sched::ThreadManager&,
                            const std::shared_ptr<void>& opaque) {
    auto* state = static_cast<TickerState*>(opaque.get());
    const Value& ticks = state->env->get("ticks");
    if (!ticks.isList() || ticks.asList()->length() != target) return false;
    for (size_t i = 1; i <= target; ++i) {
      if (size_t(ticks.asList()->item(i).asNumber()) != i) return false;
    }
    return true;
  };
  workload.output = [](sched::ThreadManager&,
                       const std::shared_ptr<void>& opaque) {
    auto* state = static_cast<TickerState*>(opaque.get());
    const Value& ticks = state->env->get("ticks");
    std::string out;
    if (!ticks.isList()) return out;
    for (const Value& item : ticks.asList()->items()) {
      if (!out.empty()) out += ",";
      out += std::to_string(int64_t(item.asNumber()));
    }
    return out;
  };
  return workload;
}

serve::SessionWorkload serveMixedWorkload(size_t index) {
  switch (index % 3) {
    case 0:
      return serveConcessionWorkload(2);
    case 1:
      return serveWordCountWorkload(24, uint64_t(index) * 2 + 1);
    default:
      return serveClimateWorkload(1, uint64_t(index) * 2 + 1);
  }
}

serve::SessionWorkload serveMixedRecoverableWorkload(size_t index) {
  switch (index % 4) {
    case 0:
      return serveTickerWorkload(12 + (index % 3) * 6);
    case 1:
      return serveConcessionWorkload(2);
    case 2:
      return serveWordCountWorkload(24, uint64_t(index) * 2 + 1);
    default:
      return serveClimateWorkload(1, uint64_t(index) * 2 + 1);
  }
}

serve::SessionWorkload serveRecoveryFactory(const serve::CheckpointMeta& meta) {
  const std::vector<std::string> fields = labelFields(meta.label);
  try {
    if (fields[0] == "ticker" && fields.size() == 2) {
      return serveTickerWorkload(std::stoul(fields[1]));
    }
    if (fields[0] == "concession" && fields.size() == 2) {
      return serveConcessionWorkload(std::stoul(fields[1]));
    }
    if (fields[0] == "wordcount" && fields.size() == 3) {
      return serveWordCountWorkload(std::stoul(fields[1]),
                                    std::stoull(fields[2]));
    }
    if (fields[0] == "climate" && fields.size() == 3) {
      return serveClimateWorkload(std::stoi(fields[1]),
                                  std::stoull(fields[2]));
    }
  } catch (const std::exception&) {
    // Malformed parameters fall through to the typed rejection.
  }
  throw SubstrateError("no recovery factory for workload label '" +
                       meta.label + "'");
}

}  // namespace psnap::scenarios
