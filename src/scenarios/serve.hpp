// Tenant workloads for the serving layer.
//
// Each factory returns a serve::SessionWorkload wrapping one of the
// paper's demo projects, sized small enough that a server can host
// thousands of them at once:
//
//   * concession — the Sec. 3.3 concession stand (stage + sprite clones,
//     pure cooperative scheduling, no worker-pool traffic);
//   * wordcount  — the Fig. 11 word count through the mapReduce block
//     (a pooled mr::Job per session);
//   * climate    — the Sec. 3.4 temperature mean through parallelMap
//     (a pooled Parallel op per session) reduced sequentially;
//   * spin       — a tenant that never finishes on its own (forever +
//     busy work): watchdog and shedding fodder;
//   * ticker     — an incremental counter that grows a global list by one
//     element per frame: the workload whose *mid-flight state* matters,
//     built to exercise checkpoint/resume (see below).
//
// Every workload self-verifies: `check` recomputes the expected output in
// plain C++ (reference word counts, reference mean Celsius, cup costumes)
// so multi-tenant tests can assert *correctness under faults*, not just
// completion.
//
// All workloads except spin are *recoverable* (capture/resume/output set):
// concession, wordcount, and climate are idempotent — their capture stores
// only the generator parameters and resume re-runs from the start, so the
// checkpoint is tiny and (being content-identical every interval) is
// written once and skipped thereafter. The ticker is genuinely
// incremental: capture snapshots the partially-built list (O(1) COW
// clone), resume continues from exactly that prefix, and the remaining
// `repeat` count is recomputed from the recovered length. Labels encode
// the generator parameters ("wordcount:24:7"), which is how
// serveRecoveryFactory maps a recovered checkpoint back to its workload.
#pragma once

#include <cstdint>
#include <cstddef>

#include "serve/session_server.hpp"

namespace psnap::scenarios {

/// The concession stand with `cups` cups poured by parallel clones.
serve::SessionWorkload serveConcessionWorkload(size_t cups = 2);

/// Word count over a `words`-word Zipf text (distinct vocabulary of 8),
/// via the mapReduce block; checked against data::referenceWordCount.
serve::SessionWorkload serveWordCountWorkload(size_t words = 24,
                                              uint64_t seed = 1);

/// Mean temperature in Celsius over one synthetic station-year
/// (12 monthly readings per `years`), Fahrenheit converted by a
/// parallelMap ring; checked against data::referenceMeanCelsius.
serve::SessionWorkload serveClimateWorkload(int years = 1,
                                            uint64_t seed = 1);

/// A tenant that loops forever (one busy-work frame per iteration).
/// Never completes on its own; exists to be watchdogged, shed, or
/// cancelled.
serve::SessionWorkload serveSpinWorkload();

/// The incremental counter: a global list grows by one element per frame
/// until it holds [1..target]; checked element-wise, output "1,2,…,target".
/// The canonical mid-state-resume workload — a session recovered at
/// length k appends exactly target-k more elements.
serve::SessionWorkload serveTickerWorkload(size_t target = 48);

/// The standard mixed-tenant stream: cycles concession / wordcount /
/// climate, with per-index seeds so no two sessions share inputs.
serve::SessionWorkload serveMixedWorkload(size_t index);

/// The recoverable mixed stream: cycles ticker / concession / wordcount /
/// climate (all with capture/resume/output hooks).
serve::SessionWorkload serveMixedRecoverableWorkload(size_t index);

/// Map a recovered checkpoint back to its workload by parsing the
/// parameter-encoded label the factories above write. Throws
/// SubstrateError for labels no factory produced.
serve::SessionWorkload serveRecoveryFactory(const serve::CheckpointMeta& meta);

}  // namespace psnap::scenarios
