#include "scenarios/concession.hpp"

#include "blocks/builder.hpp"
#include "core/parallel_blocks.hpp"
#include "stage/stage.hpp"

namespace psnap::scenarios {

using namespace psnap::build;
using blocks::BlockRegistry;
using blocks::Value;

sched::InterferenceModel paperInterference() { return {3, 5}; }

ConcessionResult runConcession(const ConcessionConfig& config) {
  static const vm::PrimitiveTable prims = core::fullPrimitiveTable();
  sched::ThreadManager tm(&BlockRegistry::standard(), &prims);
  tm.setInterference(config.interference);
  stage::Stage stage(&tm);

  // Globals instrumenting the pour window (the Fig. 7 timer readout).
  stage.globals()->declare("pourStart", Value(""));
  stage.globals()->declare("pourEnd", Value(0));

  // The waiting cups, each listening for its fill broadcast.
  std::vector<In> cupNames;
  for (size_t i = 1; i <= config.cups; ++i) {
    const std::string name = "Cup" + std::to_string(i);
    stage::Sprite& cup = stage.addSprite(name);
    cup.setCostume("empty");
    cup.gotoXY(40.0 * double(i), 0);
    cup.addScript(scriptOf({whenIReceive("fill-" + name),
                            switchCostume("full")}));
    cupNames.emplace_back(name);
  }

  // The pitcher: serve every cup, in parallel or sequentially depending on
  // the state of the "in parallel" slot (Fig. 8a vs 8b).
  auto pourBody = scriptOf({
      doIf(equals(getVar("pourStart"), ""),
           scriptOf({setVar("pourStart", timer())})),
      busyWork(config.pourFrames),
      setVar("pourEnd", timer()),
      broadcast(join({In("fill-"), In(getVar("cup"))})),
  });
  stage::Sprite& pitcher = stage.addSprite("Pitcher");
  pitcher.setCostume("pitcher");
  pitcher.addScript(scriptOf({
      whenGreenFlag(),
      parallelForEach("cup", listOf(cupNames),
                      config.parallel ? blank() : collapsed(), pourBody),
  }));

  stage.greenFlag();

  ConcessionResult result;
  if (config.captureFrames) {
    while (!tm.idle() && tm.frameCount() < 100000) {
      tm.runFrame();
      result.frames.push_back(stage.renderFrame());
    }
  } else {
    tm.runUntilIdle();
  }

  result.totalFrames = tm.frameCount();
  result.errors = tm.errors();
  for (stage::Sprite* sprite : stage.sprites()) {
    if (sprite->costume() == "full") ++result.cupsFilled;
  }
  const Value& start = stage.globals()->get("pourStart");
  const Value& end = stage.globals()->get("pourEnd");
  if (!start.isText() || !start.asText().empty()) {
    result.pourTimesteps = static_cast<uint64_t>(
        end.asNumber() - start.asNumber() + 1.0);
  }
  return result;
}

}  // namespace psnap::scenarios
