#include "survey/survey.hpp"

#include <algorithm>
#include <cstdio>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace psnap::survey {

namespace {

/// Apportion `n` into integer counts proportional to `percentages`
/// (largest remainder / Hamilton method).
std::vector<size_t> apportion(size_t n,
                              const std::vector<double>& percentages) {
  double total = 0;
  for (double p : percentages) total += p;
  if (total <= 0) throw Error("apportion: percentages must sum > 0");

  std::vector<size_t> counts(percentages.size(), 0);
  std::vector<std::pair<double, size_t>> remainders;
  size_t assigned = 0;
  for (size_t i = 0; i < percentages.size(); ++i) {
    double exact = static_cast<double>(n) * percentages[i] / total;
    counts[i] = static_cast<size_t>(exact);
    assigned += counts[i];
    remainders.push_back({exact - static_cast<double>(counts[i]), i});
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  for (size_t k = 0; assigned < n; ++k, ++assigned) {
    counts[remainders[k % remainders.size()].second] += 1;
  }
  return counts;
}

}  // namespace

std::vector<Response> generateCohort(size_t n, const Targets& targets,
                                     uint64_t seed) {
  if (n == 0) return {};
  Rng rng(seed);

  auto careerCounts = apportion(
      n, {targets.careerCs, targets.careerOther, targets.careerNoAnswer});
  std::vector<Response> cohort;
  cohort.reserve(n);
  for (size_t i = 0; i < careerCounts[0]; ++i) {
    cohort.push_back({Career::ComputerScience, false,
                      Impression::SameOrNoOpinion});
  }
  // The benefit question applies to the Other group.
  auto benefitCounts = apportion(
      careerCounts[1],
      {targets.benefitGivenOther, 100.0 - targets.benefitGivenOther});
  for (size_t i = 0; i < careerCounts[1]; ++i) {
    cohort.push_back(
        {Career::Other, i < benefitCounts[0], Impression::SameOrNoOpinion});
  }
  for (size_t i = 0; i < careerCounts[2]; ++i) {
    cohort.push_back({Career::NoAnswer, false,
                      Impression::SameOrNoOpinion});
  }

  // Impressions are distributed across the whole cohort.
  auto impressionCounts =
      apportion(n, {targets.impressionMore, targets.impressionLess,
                    targets.impressionSame});
  std::vector<Impression> impressions;
  impressions.reserve(n);
  for (size_t i = 0; i < impressionCounts[0]; ++i) {
    impressions.push_back(Impression::MoreFavorable);
  }
  for (size_t i = 0; i < impressionCounts[1]; ++i) {
    impressions.push_back(Impression::LessFavorable);
  }
  for (size_t i = 0; i < impressionCounts[2]; ++i) {
    impressions.push_back(Impression::SameOrNoOpinion);
  }
  // Deterministic Fisher–Yates over both columns so the sheets read like
  // individual respondents rather than sorted stacks.
  for (size_t i = n; i > 1; --i) {
    std::swap(impressions[i - 1], impressions[rng.below(i)]);
  }
  for (size_t i = 0; i < n; ++i) cohort[i].impression = impressions[i];
  for (size_t i = n; i > 1; --i) {
    std::swap(cohort[i - 1], cohort[rng.below(i)]);
  }
  return cohort;
}

Tally tally(const std::vector<Response>& responses) {
  Tally out;
  out.respondents = responses.size();
  if (responses.empty()) return out;
  size_t cs = 0, other = 0, none = 0, benefit = 0;
  size_t more = 0, less = 0, same = 0;
  for (const Response& r : responses) {
    switch (r.career) {
      case Career::ComputerScience: ++cs; break;
      case Career::Other:
        ++other;
        if (r.csWouldBenefit) ++benefit;
        break;
      case Career::NoAnswer: ++none; break;
    }
    switch (r.impression) {
      case Impression::MoreFavorable: ++more; break;
      case Impression::LessFavorable: ++less; break;
      case Impression::SameOrNoOpinion: ++same; break;
    }
  }
  const double n = static_cast<double>(responses.size());
  out.careerCs = 100.0 * static_cast<double>(cs) / n;
  out.careerOther = 100.0 * static_cast<double>(other) / n;
  out.careerNoAnswer = 100.0 * static_cast<double>(none) / n;
  out.benefitGivenOther =
      other == 0 ? 0
                 : 100.0 * static_cast<double>(benefit) /
                       static_cast<double>(other);
  out.impressionMore = 100.0 * static_cast<double>(more) / n;
  out.impressionLess = 100.0 * static_cast<double>(less) / n;
  out.impressionSame = 100.0 * static_cast<double>(same) / n;
  return out;
}

std::string comparisonTable(const Targets& paper, const Tally& measured) {
  char buf[256];
  std::string out;
  out += "question                         paper    measured (n=" +
         std::to_string(measured.respondents) + ")\n";
  auto row = [&](const char* label, double p, double m) {
    std::snprintf(buf, sizeof(buf), "%-30s %5.0f%%      %6.1f%%\n", label, p,
                  m);
    out += buf;
  };
  row("career: computer science", paper.careerCs, measured.careerCs);
  row("career: something else", paper.careerOther, measured.careerOther);
  row("career: no answer", paper.careerNoAnswer, measured.careerNoAnswer);
  row("CS benefits career (of other)", paper.benefitGivenOther,
      measured.benefitGivenOther);
  row("impression: more favorable", paper.impressionMore,
      measured.impressionMore);
  row("impression: less favorable", paper.impressionLess,
      measured.impressionLess);
  row("impression: same/no opinion", paper.impressionSame,
      measured.impressionSame);
  return out;
}

}  // namespace psnap::survey
