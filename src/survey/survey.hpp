// The Women in Computing Day survey (paper Sec. 5).
//
// The paper tallies a brief written survey of ~100 seventh-grade girls:
//   * 29% named computer science as a potential career, 54% something
//     else, 17% gave no answer;
//   * of those who did NOT pick CS, 57% said CS would benefit their
//     chosen career;
//   * 86% left with a more favorable impression of CS, 9% less
//     favorable, 6% the same / no opinion.
//
// A human study cannot be rerun, so this module *simulates* the cohort:
// it synthesizes individual response records whose aggregate matches a
// set of target marginals (largest-remainder apportionment, then seeded
// shuffling), and independently tallies those records back into
// percentages. The tally code path is exactly what would process real
// response sheets; only the records are synthetic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psnap::survey {

enum class Career { ComputerScience, Other, NoAnswer };
enum class Impression { MoreFavorable, LessFavorable, SameOrNoOpinion };

/// One respondent's answers. `csWouldBenefit` is only meaningful when the
/// career answer is Other (the paper's conditional question).
struct Response {
  Career career = Career::NoAnswer;
  bool csWouldBenefit = false;
  Impression impression = Impression::SameOrNoOpinion;
};

/// Target aggregate percentages (0–100).
struct Targets {
  double careerCs = 29;
  double careerOther = 54;
  double careerNoAnswer = 17;
  double benefitGivenOther = 57;
  double impressionMore = 86;
  double impressionLess = 9;
  double impressionSame = 6;  ///< paper rounds to ~6%

  /// The percentages published in the paper.
  static Targets paper2016() { return Targets{}; }
};

/// Aggregate percentages computed from records.
struct Tally {
  size_t respondents = 0;
  double careerCs = 0;
  double careerOther = 0;
  double careerNoAnswer = 0;
  double benefitGivenOther = 0;
  double impressionMore = 0;
  double impressionLess = 0;
  double impressionSame = 0;
};

/// Synthesize a cohort of `n` responses approximating `targets` (largest-
/// remainder rounding), shuffled deterministically by `seed`.
std::vector<Response> generateCohort(size_t n, const Targets& targets,
                                     uint64_t seed);

/// Count a stack of response sheets.
Tally tally(const std::vector<Response>& responses);

/// Render a paper-vs-measured comparison table (used by the Sec. 5 bench).
std::string comparisonTable(const Targets& paper, const Tally& measured);

}  // namespace psnap::survey
