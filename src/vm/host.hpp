// Abstract services the interpreter needs from its environment.
//
// The Process/interpreter layer is deliberately independent of the concrete
// scheduler, stage, and worker pool so each can be unit-tested alone:
//
//   * Host       — clock, timer, broadcasts, clone management, launching
//                  sibling processes (the ThreadManager implements this).
//   * SpriteApi  — the motion/looks surface of the sprite a process is
//                  bound to (stage::Sprite implements this).
//
// A NullHost/NullSprite pair is provided for headless evaluation of pure
// scripts in tests and in the code generator.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blocks/block.hpp"
#include "blocks/environment.hpp"

namespace psnap::vm {

/// The wake channel between completion callbacks (which run on pool
/// workers) and a scheduler sleeping because every process is parked.
/// notify() is cheap, lock-light, and safe from any thread; the stamp
/// makes waits race-free — a notify that lands between "decide to sleep"
/// and "actually sleep" is observed by the stamp check, never lost.
///
/// Wake functors capture only shared_ptrs to a per-park flag and this hub
/// — never a Process or scheduler pointer — so a late completion firing
/// after the process (or its whole ThreadManager) is gone touches nothing
/// but its own captures.
struct WakeHub {
  std::mutex mutex;
  std::condition_variable cv;
  uint64_t stamp = 0;  // guarded by mutex; bumped by every notify()

  void notify() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++stamp;
    }
    cv.notify_all();
  }

  /// Current stamp, to snapshot before re-checking wake flags.
  uint64_t snapshot() {
    std::lock_guard<std::mutex> lock(mutex);
    return stamp;
  }

  /// Wait until the stamp moves past `seen` or `maxSeconds` elapses.
  /// Returns true if woken by a notify, false on timeout.
  bool waitChanged(uint64_t seen, double maxSeconds) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock,
                       std::chrono::duration<double>(maxSeconds),
                       [&] { return stamp != seen; });
  }
};
using WakeHubPtr = std::shared_ptr<WakeHub>;

/// Completion status of a process launched through Host::launchScript.
/// The launching primitive polls `done` from its yield loop (the same
/// pattern paper Listing 2 uses for Web Worker jobs).
struct ProcessStatus {
  bool done = false;
  bool errored = false;
  std::string error;
  /// The process result (for expression processes), copied at completion.
  blocks::Value result;
};

/// The sprite surface a process manipulates (motion and looks blocks).
class SpriteApi {
 public:
  virtual ~SpriteApi() = default;

  virtual const std::string& name() const = 0;
  virtual bool isClone() const = 0;

  virtual double x() const = 0;
  virtual double y() const = 0;
  virtual double heading() const = 0;
  virtual void moveSteps(double steps) = 0;
  virtual void turnBy(double degrees) = 0;
  virtual void setHeading(double degrees) = 0;
  virtual void gotoXY(double x, double y) = 0;
  virtual void changeX(double dx) = 0;
  virtual void changeY(double dy) = 0;

  virtual void setCostume(const std::string& name) = 0;
  virtual const std::string& costume() const = 0;

  virtual void setVisible(bool visible) = 0;
  virtual bool visible() const = 0;

  /// True when this sprite overlaps the sprite named `name` (circle
  /// collision over sprite positions; clones of `name` count).
  virtual bool touching(const std::string& name) const = 0;

  virtual void sayBubble(const std::string& text) = 0;
  virtual void thinkBubble(const std::string& text) = 0;

  /// The sprite-local variable frame (globals are its parent).
  virtual const blocks::EnvPtr& variables() = 0;
};

/// Scheduler/stage services. All calls happen on the scheduler thread.
class Host {
 public:
  virtual ~Host() = default;

  /// The virtual clock in seconds. One scheduler frame advances it by one
  /// "timestep unit" by default, matching the paper's concession-stand
  /// timer readout.
  virtual double nowSeconds() const = 0;

  /// Stage timer (the readout in the upper-left of paper Fig. 7).
  virtual void resetTimer() = 0;
  virtual double timerSeconds() const = 0;

  /// Fire a broadcast; returns a token to poll for doBroadcastAndWait.
  virtual uint64_t broadcast(const std::string& message) = 0;
  virtual bool broadcastFinished(uint64_t token) const = 0;

  /// Create a clone of `original` (or of the sprite named `targetName`
  /// when non-empty), run its when-I-start-as-a-clone hats, and return it.
  /// Returns nullptr when there is no stage.
  virtual SpriteApi* makeClone(SpriteApi* original,
                               const std::string& targetName) = 0;

  /// Schedule a clone (and its running processes) for removal at the end
  /// of the current frame.
  virtual void removeClone(SpriteApi* clone) = 0;

  /// Launch a sibling process running `script` under `env`, bound to
  /// `sprite` (may be null). The returned status flips `done` when the
  /// process finishes or errors.
  virtual std::shared_ptr<const ProcessStatus> launchScript(
      blocks::ScriptPtr script, blocks::EnvPtr env, SpriteApi* sprite) = 0;

  /// Default worker-pool width (navigator.hardwareConcurrency analog).
  virtual size_t maxWorkers() const = 0;

  /// The host's wake hub, captured by parked processes' wake functors so
  /// a completion can rouse a sleeping scheduler. May be null (headless
  /// hosts): parking still works, the waker just has nobody to poke.
  virtual WakeHubPtr wakeHub() const { return nullptr; }
};

/// A do-nothing host for headless script evaluation: the clock is manually
/// advanced, broadcasts complete immediately, clones are unavailable, and
/// launchScript throws.
class NullHost : public Host {
 public:
  double nowSeconds() const override { return now_; }
  void advance(double seconds) { now_ += seconds; }
  void resetTimer() override { timerStart_ = now_; }
  double timerSeconds() const override { return now_ - timerStart_; }
  uint64_t broadcast(const std::string& message) override;
  bool broadcastFinished(uint64_t) const override { return true; }
  SpriteApi* makeClone(SpriteApi*, const std::string&) override {
    return nullptr;
  }
  void removeClone(SpriteApi*) override {}
  std::shared_ptr<const ProcessStatus> launchScript(blocks::ScriptPtr,
                                                    blocks::EnvPtr,
                                                    SpriteApi*) override;
  size_t maxWorkers() const override { return 4; }

  /// Messages broadcast so far (for assertions in tests).
  const std::vector<std::string>& messages() const { return messages_; }

 private:
  double now_ = 0;
  double timerStart_ = 0;
  std::vector<std::string> messages_;
};

}  // namespace psnap::vm
