// Custom blocks — BYOB ("Build Your Own Blocks", Snap!'s original name;
// paper Sec. 2: "Snap! allows users to define their own blocks using
// other blocks, something that Scratch does not support").
//
// A custom block is defined by a spec string whose % tokens name its
// formal parameters — e.g. "double %n" or "average of %values" — plus a
// body script (for reporters, the body reports via the `report` block).
// Definitions register a BlockSpec (so instances validate, serialize, and
// render like primitives) and a handler that calls the body like a ring,
// binding the formals lexically over the definition environment.
#pragma once

#include <string>
#include <vector>

#include "blocks/registry.hpp"
#include "vm/process.hpp"

namespace psnap::vm {

/// One custom block definition.
struct CustomBlockDef {
  /// Display spec; % tokens become formal parameters, e.g.
  /// "fibonacci of %n". The derived opcode is "custom:" + spec.
  std::string spec;
  blocks::BlockType type = blocks::BlockType::Reporter;
  /// Formal parameter names, one per % token in `spec` (the visible token
  /// text is cosmetic; these are the names the body reads).
  std::vector<std::string> formals;
  /// The body; reporters use `report` to deliver their value.
  blocks::ScriptPtr body;
  /// Lexical home of the definition (usually the stage globals); null
  /// falls back to the caller's environment.
  blocks::EnvPtr home;
};

/// The opcode an instance of `spec` uses.
std::string customOpcode(const std::string& spec);

/// A library of custom blocks that can be registered into a registry +
/// primitive-table pair. Definitions may call each other and recurse.
class CustomBlockLibrary {
 public:
  /// Add a definition; throws BlockError when the formal count does not
  /// match the spec's slot count or the spec is already defined.
  void define(CustomBlockDef def);

  bool has(const std::string& spec) const;
  const CustomBlockDef& get(const std::string& spec) const;
  std::vector<std::string> specs() const;

  /// Register every definition's BlockSpec and handler. Call once per
  /// (registry, table) pair, after the standard palette is present.
  void registerInto(blocks::BlockRegistry& registry,
                    PrimitiveTable& table) const;

  /// Convenience for building an invocation block of a defined spec.
  blocks::BlockPtr call(const std::string& spec,
                        std::vector<blocks::Input> args) const;

 private:
  std::vector<CustomBlockDef> defs_;
};

}  // namespace psnap::vm
