// The Process: Snap!'s interpreter as an explicit context-stack machine.
//
// Snap! implements concurrency as coroutines over an explicit stack of
// Context frames — a process runs until it *yields*, and the scheduler
// interleaves many processes within one frame. The paper's parallelMap
// primitive (Listing 2) depends on exactly this machinery: it stores its
// worker job in the current context's input array, pushes a 'doYield'
// context, and is re-invoked every frame to poll for completion. This
// class reproduces that machine:
//
//   * strict blocks get their inputs evaluated left to right by the
//     machine, one child context at a time;
//   * non-strict (control) blocks receive control with whatever inputs
//     have been evaluated so far and push their own children;
//   * any handler can push a yield marker, retry itself next frame, or
//     return a value to its parent context.
//
// A Process is single-threaded; true parallelism enters only through the
// worker pool used by the parallel blocks (src/workers, src/core).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "blocks/block.hpp"
#include "blocks/environment.hpp"
#include "blocks/registry.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "vm/host.hpp"

namespace psnap::blocks {
class Future;
}  // namespace psnap::blocks

namespace psnap::vm {

class Process;

/// One frame of the evaluation stack.
///
/// Exactly one of `block` / `script` / `isYieldMarker` describes the frame.
/// The scratch fields (`phase`, `counter`, `deadline`, `token`, `state`)
/// are owned by the handler of `block` across re-invocations — the same
/// role `context.inputs[3]` plays in the paper's Listing 2.
struct Context {
  const blocks::Block* block = nullptr;
  const blocks::Script* script = nullptr;
  size_t pc = 0;  ///< next block index when running a script

  /// Evaluated inputs; handlers may append scratch values past the block's
  /// declared arity (the Listing 2 idiom).
  std::vector<blocks::Value> inputs;
  /// Parallel to `inputs`: true where the input slot was collapsed.
  std::vector<uint8_t> collapsedFlags;

  blocks::EnvPtr env;

  int phase = 0;
  long long counter = 0;
  double deadline = 0;
  uint64_t token = 0;
  std::shared_ptr<void> state;

  bool isYieldMarker = false;
  /// doReport / stop-this-script unwind to the innermost boundary frame.
  bool callBoundary = false;
  /// This frame entered a warp; unwinding past it must exit the warp.
  bool ownsWarp = false;

  /// Keep-alive owners for synthetic AST nodes created at run time.
  blocks::BlockPtr blockOwner;
  blocks::ScriptPtr scriptOwner;

  /// Was the input at `index` a collapsed optional slot?
  bool isCollapsed(size_t index) const {
    return index < collapsedFlags.size() && collapsedFlags[index] != 0;
  }
};

/// A block handler. Invoked when the frame's block is on top of the stack
/// and (for strict blocks) all declared inputs are evaluated. Must make
/// progress: push children, return a value, finish, retry-after-yield, or
/// terminate.
using Handler = std::function<void(Process&, Context&)>;

/// Opcode → handler table. Separate from the BlockRegistry so extension
/// modules (parallel blocks, codegen blocks) can register additional
/// handlers without touching the interpreter. Internally a flat vector
/// indexed by interned OpcodeId: the hot-path lookup is a bounds check and
/// an array load, no string hashing.
class PrimitiveTable {
 public:
  void add(const std::string& opcode, Handler handler);
  const Handler* find(const std::string& opcode) const;

  /// Handler lookup by interned id (an empty slot means no handler).
  const Handler* findById(blocks::OpcodeId id) const {
    if (id >= byId_.size() || !byId_[id]) return nullptr;
    return &byId_[id];
  }

  /// Every id with a registered handler, ascending.
  std::vector<blocks::OpcodeId> registeredIds() const;

  /// Standard palette handlers (everything in registerStandardSpecs except
  /// the parallel and codegen blocks, which live in src/core and
  /// src/codegen).
  static PrimitiveTable standard();

 private:
  /// OpcodeId → handler; a default-constructed (empty) std::function marks
  /// an absent entry.
  std::vector<Handler> byId_;
};

void registerStandardPrimitives(PrimitiveTable& table);

/// Why a process is no longer runnable. Blocked is the parked state: the
/// process is alive but waiting on a completion callback — it consumes no
/// frames and is neither runnable nor finished until the callback
/// re-readies it (or cancellation fails it).
enum class ProcessState { Ready, Blocked, Done, Errored, Terminated };

/// How stepBlock resolves a block's spec and handler.
///
/// ById is the production path: the block's cached OpcodeId indexes
/// directly into the registry and primitive table, and consecutive
/// immediate inputs (literals, blanks, collapsed slots) are deposited in
/// one interpreter step. ByString preserves the pre-interning behaviour —
/// hash the opcode string twice per dispatch, one input per step — as a
/// live reference configuration for benchmarking and parity tests.
enum class DispatchMode { ById, ByString };

class Process {
 public:
  Process(const blocks::BlockRegistry* registry,
          const PrimitiveTable* primitives, Host* host,
          SpriteApi* sprite = nullptr);

  /// Begin running a command script (an activated Snap! script).
  void startScript(blocks::ScriptPtr script, blocks::EnvPtr env);
  /// Begin evaluating a reporter expression; result() holds the value when
  /// finished.
  void startExpression(blocks::BlockPtr expression, blocks::EnvPtr env);

  ProcessState state() const { return state_; }
  bool runnable() const { return state_ == ProcessState::Ready; }
  bool blocked() const { return state_ == ProcessState::Blocked; }
  bool finished() const {
    return state_ == ProcessState::Done || state_ == ProcessState::Errored ||
           state_ == ProcessState::Terminated;
  }
  bool errored() const { return state_ == ProcessState::Errored; }
  const std::string& error() const { return error_; }
  /// The error's class tag (None while clean; Timeout/Cancelled when a
  /// cancel token unwound the process). Meaningful once errored().
  ErrorClass errorClass() const { return errorClass_; }
  const blocks::Value& result() const { return result_; }

  /// Attach a cooperative cancellation token. The process checks it at
  /// its yield points — slice entry and warped yield consumption — and
  /// fails with the token's typed reason (timeout/cancelled) when it has
  /// tripped. Deadlines on the token give per-process wall-clock budgets.
  void setCancelToken(CancelTokenPtr token) {
    cancelToken_ = std::move(token);
  }
  const CancelTokenPtr& cancelToken() const { return cancelToken_; }

  /// Opcode of the root expression (or the root script's first block) —
  /// the scheduler's attribution label for this process's errors.
  std::string rootOpcode() const;

  /// Run until the process yields, finishes, or `maxSteps` interpreter
  /// steps elapse. Returns true if the process is still runnable.
  bool runSlice(size_t maxSteps = kDefaultSliceSteps);

  /// Drive to completion on the current thread (headless evaluation).
  /// Throws Error if the process errors, or if `maxTotalSteps` elapse
  /// (runaway-loop guard).
  const blocks::Value& runToCompletion(size_t maxTotalSteps = 100'000'000);

  /// Did the last runSlice end in a voluntary yield?
  bool yielded() const { return yielded_; }

  /// Select spec/handler resolution (default ById; ByString is the
  /// string-hashing reference path kept for benchmark comparison).
  void setDispatchMode(DispatchMode mode) { dispatchMode_ = mode; }
  DispatchMode dispatchMode() const { return dispatchMode_; }

  // --- services for handlers --------------------------------------------
  Host& host() { return *host_; }
  SpriteApi* sprite() { return sprite_; }
  const blocks::BlockRegistry& registry() const { return *registry_; }

  /// Evaluate input slot `index` of `ctx.block`: literals, empty slots and
  /// collapsed slots deposit immediately; nested blocks push a child frame.
  void evalInput(Context& ctx, size_t index);

  void pushScript(const blocks::Script* script, blocks::EnvPtr env,
                  bool boundary = false,
                  blocks::ScriptPtr owner = nullptr);
  void pushExpression(const blocks::Block* block, blocks::EnvPtr env,
                      bool boundary = false, blocks::BlockPtr owner = nullptr);
  void pushYield();

  /// Pop the current frame and hand `value` to the parent frame.
  void returnValue(blocks::Value value);
  /// Pop the current frame with no value (commands).
  void finishCommand();
  /// Keep the current frame, schedule a yield, and re-invoke the handler
  /// next slice (the Listing 2 polling idiom — retained for cooperative
  /// compute such as the sequential fallback slices, NOT for completion
  /// polling; async handlers park with parkOnCompletion instead).
  void retryAfterYield(Context& ctx);

  /// Park the process: keep the current frame (the handler is re-invoked
  /// on wake with its scratch state intact), move to Blocked, and return
  /// the wake functor to hand to an onComplete/onSettle registration.
  ///
  /// The functor is safe to call from any thread at any time — including
  /// inline during registration (operation already resolved) and after
  /// the process or its scheduler is destroyed: it captures only a
  /// per-park flag and the host's WakeHub, never `this`. The flag store
  /// is release, the scheduler's wakeReady() read is acquire, so task
  /// outputs published before the completion settle are visible to the
  /// re-invoked handler.
  std::function<void()> parkOnCompletion(Context& ctx);

  /// Has the parked process's wake functor fired?
  bool wakeReady() const {
    return state_ == ProcessState::Blocked && wakeFlag_ &&
           wakeFlag_->load(std::memory_order_acquire);
  }

  /// Blocked -> Ready (scheduler-side, after wakeReady()).
  void unpark();

  /// If the cancel token tripped, fail with its typed reason and return
  /// true. Works from Ready and Blocked — the scheduler uses this to fail
  /// a parked process whose deadline expired while it consumed no frames.
  bool failIfCancelled();
  /// doReport: unwind to the innermost call boundary, returning `value`.
  void unwindReport(blocks::Value value);
  /// stop this script: unwind to the innermost call boundary, no value.
  void stopThisScript();
  /// Kill the process outright.
  void terminate();

  /// Warp nesting (Snap!'s `warp` block): while > 0, yield markers are
  /// consumed without ending the slice, so the warped body runs to
  /// completion within one frame.
  void enterWarp() { ++warpDepth_; }
  void exitWarp() {
    if (warpDepth_ > 0) --warpDepth_;
  }
  bool warped() const { return warpDepth_ > 0; }

  /// Call a ring with arguments. Pushes a boundary frame; the ring body
  /// runs under a fresh environment frame binding formals (or implicit
  /// empty-slot arguments).
  void pushRingCall(const blocks::RingPtr& ring,
                    std::vector<blocks::Value> args,
                    const blocks::EnvPtr& callerEnv);

  /// Register a Future launched by this process. Cancellation of the
  /// owning process (terminate or failure) cancels every still-pending
  /// adopted future, propagating into the underlying operation.
  void adoptFuture(const std::shared_ptr<blocks::Future>& future);

  /// say/think output log (always appended, also forwarded to the sprite).
  std::vector<std::string>& sayLog() { return sayLog_; }

  /// Code-mapping target language selected by `map to language` (Sec. 6).
  std::string codegenLanguage = "C";

  uint64_t id() const { return id_; }

  static constexpr size_t kDefaultSliceSteps = 1'000'000;

 private:
  void step();
  void stepScript(Context& ctx);
  void stepBlock(Context& ctx);
  void fail(const std::string& message);
  /// If the cancel token tripped, fail with its typed reason and return
  /// true.
  bool checkCancelled();
  /// Cancel every adopted still-pending future (on terminate/fail).
  void cancelOwnedFutures(const std::string& reason);

  const blocks::BlockRegistry* registry_;
  const PrimitiveTable* primitives_;
  Host* host_;
  SpriteApi* sprite_;

  // A deque, not a vector: handlers keep Context& references into the
  // stack while pushing child frames, and deque push/pop at the back
  // never invalidates references to other elements.
  std::deque<Context> stack_;
  blocks::ScriptPtr rootScript_;
  blocks::BlockPtr rootExpression_;

  ProcessState state_ = ProcessState::Done;
  std::string error_;
  ErrorClass errorClass_ = ErrorClass::None;
  CancelTokenPtr cancelToken_;
  blocks::Value result_;
  bool yielded_ = false;
  bool progress_ = false;  ///< set by any stack mutation within step()
  /// Per-park wake flag; a fresh one per park so a stale functor from an
  /// earlier park (delayed by CompletionDrop) can never wake a later one.
  std::shared_ptr<std::atomic<bool>> wakeFlag_;
  /// Futures launched by this process, cancelled with it.
  std::vector<std::weak_ptr<blocks::Future>> ownedFutures_;

  std::vector<std::string> sayLog_;
  uint64_t id_;
  int warpDepth_ = 0;
  DispatchMode dispatchMode_ = DispatchMode::ById;
};

}  // namespace psnap::vm
