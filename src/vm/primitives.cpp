// Handlers for the standard block palette.
//
// Strict reporters receive their evaluated inputs in ctx.inputs. Control
// blocks are non-strict: they evaluate their own value inputs via
// Process::evalInput and push their C-slot scripts as child frames,
// yielding once per loop iteration exactly as Snap!'s scheduler does (this
// per-iteration yield is what makes the concession-stand timestep counts
// of paper Fig. 9/10 deterministic).

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "vm/process.hpp"

namespace psnap::vm {

using blocks::Block;
using blocks::InputKind;
using blocks::List;
using blocks::ListPtr;
using blocks::Ring;
using blocks::RingPtr;
using blocks::Value;

namespace {

constexpr double kPi = 3.14159265358979323846;

// ---------------------------------------------------------------------------
// registration helpers
// ---------------------------------------------------------------------------

/// Wrap a plain function over evaluated inputs as a handler.
template <typename F>
Handler reporter(F f) {
  return [f](Process& p, Context& c) { p.returnValue(f(c.inputs)); };
}

/// Wrap a side-effecting command over evaluated inputs.
template <typename F>
Handler command(F f) {
  return [f](Process& p, Context& c) {
    f(p, c.inputs);
    p.finishCommand();
  };
}

SpriteApi& requireSprite(Process& p, const char* opcode) {
  if (!p.sprite()) {
    throw Error(std::string(opcode) + " requires a sprite");
  }
  return *p.sprite();
}

// Snap! ordering: numeric when both sides look numeric, else
// case-insensitive text.
bool lessThanValues(const Value& a, const Value& b) {
  double an, bn;
  if (a.numericValue(an) && b.numericValue(bn)) return an < bn;
  std::string leftOwned, rightOwned;
  const std::string_view left =
      a.isText() ? a.textView() : std::string_view(leftOwned = a.display());
  const std::string_view right =
      b.isText() ? b.textView() : std::string_view(rightOwned = b.display());
  return strings::compareIgnoreCase(left, right) < 0;
}

// ---------------------------------------------------------------------------
// operators
// ---------------------------------------------------------------------------

void registerOperators(PrimitiveTable& t) {
  t.add("reportSum", reporter([](const std::vector<Value>& in) {
          return Value(in[0].asNumber() + in[1].asNumber());
        }));
  t.add("reportDifference", reporter([](const std::vector<Value>& in) {
          return Value(in[0].asNumber() - in[1].asNumber());
        }));
  t.add("reportProduct", reporter([](const std::vector<Value>& in) {
          return Value(in[0].asNumber() * in[1].asNumber());
        }));
  t.add("reportQuotient", reporter([](const std::vector<Value>& in) {
          double divisor = in[1].asNumber();
          if (divisor == 0) throw Error("division by zero");
          return Value(in[0].asNumber() / divisor);
        }));
  t.add("reportModulus", reporter([](const std::vector<Value>& in) {
          double divisor = in[1].asNumber();
          if (divisor == 0) throw Error("modulus by zero");
          double result = std::fmod(in[0].asNumber(), divisor);
          // Snap! mod result has the sign of the divisor.
          if (result != 0 && ((result < 0) != (divisor < 0))) {
            result += divisor;
          }
          return Value(result);
        }));
  t.add("reportPower", reporter([](const std::vector<Value>& in) {
          return Value(std::pow(in[0].asNumber(), in[1].asNumber()));
        }));
  t.add("reportRound", reporter([](const std::vector<Value>& in) {
          return Value(std::round(in[0].asNumber()));
        }));
  t.add("reportMonadic", reporter([](const std::vector<Value>& in) {
          const std::string fn = strings::toLower(in[0].asText());
          const double x = in[1].asNumber();
          if (fn == "sqrt") {
            if (x < 0) throw Error("sqrt of a negative number");
            return Value(std::sqrt(x));
          }
          if (fn == "abs") return Value(std::fabs(x));
          if (fn == "floor") return Value(std::floor(x));
          if (fn == "ceiling") return Value(std::ceil(x));
          if (fn == "sin") return Value(std::sin(x * kPi / 180.0));
          if (fn == "cos") return Value(std::cos(x * kPi / 180.0));
          if (fn == "tan") return Value(std::tan(x * kPi / 180.0));
          if (fn == "asin") return Value(std::asin(x) * 180.0 / kPi);
          if (fn == "acos") return Value(std::acos(x) * 180.0 / kPi);
          if (fn == "atan") return Value(std::atan(x) * 180.0 / kPi);
          if (fn == "ln") {
            if (x <= 0) throw Error("ln of a non-positive number");
            return Value(std::log(x));
          }
          if (fn == "log") {
            if (x <= 0) throw Error("log of a non-positive number");
            return Value(std::log10(x));
          }
          if (fn == "e^") return Value(std::exp(x));
          if (fn == "10^") return Value(std::pow(10.0, x));
          throw Error("unknown monadic function \"" + fn + "\"");
        }));
  t.add("reportRandom", [](Process& p, Context& c) {
    // Deterministic per-run RNG so tests and benches are reproducible.
    static thread_local Rng rng(0x5eedULL);
    double lo = c.inputs[0].asNumber();
    double hi = c.inputs[1].asNumber();
    if (lo > hi) std::swap(lo, hi);
    if (lo == std::floor(lo) && hi == std::floor(hi)) {
      p.returnValue(Value(static_cast<double>(rng.between(
          static_cast<int64_t>(lo), static_cast<int64_t>(hi)))));
    } else {
      p.returnValue(Value(rng.uniform(lo, hi)));
    }
  });
  t.add("reportEquals", reporter([](const std::vector<Value>& in) {
          return Value(in[0].equals(in[1]));
        }));
  t.add("reportLessThan", reporter([](const std::vector<Value>& in) {
          return Value(lessThanValues(in[0], in[1]));
        }));
  t.add("reportGreaterThan", reporter([](const std::vector<Value>& in) {
          return Value(lessThanValues(in[1], in[0]));
        }));
  t.add("reportAnd", reporter([](const std::vector<Value>& in) {
          return Value(in[0].asBoolean() && in[1].asBoolean());
        }));
  t.add("reportOr", reporter([](const std::vector<Value>& in) {
          return Value(in[0].asBoolean() || in[1].asBoolean());
        }));
  t.add("reportNot", reporter([](const std::vector<Value>& in) {
          return Value(!in[0].asBoolean());
        }));
  t.add("reportIfElse", reporter([](const std::vector<Value>& in) {
          return in[0].asBoolean() ? in[1] : in[2];
        }));
  t.add("reportJoinWords", reporter([](const std::vector<Value>& in) {
          std::string out;
          for (const Value& v : in) out += v.asText();
          return Value(out);
        }));
  t.add("reportLetter", reporter([](const std::vector<Value>& in) {
          const std::string text = in[1].asText();
          long long index = in[0].asInteger();
          if (index < 1 || static_cast<size_t>(index) > text.size()) {
            return Value(std::string());
          }
          return Value(std::string(1, text[static_cast<size_t>(index - 1)]));
        }));
  t.add("reportStringSize", reporter([](const std::vector<Value>& in) {
          return Value(in[0].asText().size());
        }));
  t.add("reportUnicode", reporter([](const std::vector<Value>& in) {
          const std::string text = in[0].asText();
          if (text.empty()) throw Error("unicode of empty text");
          return Value(static_cast<double>(
              static_cast<unsigned char>(text[0])));
        }));
  t.add("reportUnicodeAsLetter", reporter([](const std::vector<Value>& in) {
          return Value(std::string(
              1, static_cast<char>(in[0].asInteger() & 0xff)));
        }));
  t.add("reportSplit", reporter([](const std::vector<Value>& in) {
          const std::string text = in[0].asText();
          const std::string sep = in[1].asText();
          auto out = List::make();
          std::vector<std::string> parts;
          if (sep == "whitespace" || sep == "word") {
            parts = strings::splitWhitespace(text);
          } else if (sep == "letter") {
            for (char ch : text) parts.emplace_back(1, ch);
          } else if (sep == "line") {
            parts = strings::split(text, '\n');
          } else if (sep.size() == 1) {
            parts = strings::split(text, sep[0]);
          } else if (sep.empty()) {
            parts = strings::splitWhitespace(text);
          } else {
            // Multi-character delimiter.
            std::string rest = text;
            size_t pos;
            while ((pos = rest.find(sep)) != std::string::npos) {
              parts.push_back(rest.substr(0, pos));
              rest = rest.substr(pos + sep.size());
            }
            parts.push_back(rest);
          }
          for (std::string& part : parts) out->add(Value(std::move(part)));
          return Value(out);
        }));
  t.add("reportIsA", reporter([](const std::vector<Value>& in) {
          const std::string type = strings::toLower(in[1].asText());
          switch (in[0].kind()) {
            case blocks::ValueKind::Number:
              return Value(type == "number");
            case blocks::ValueKind::Text:
              return Value(type == "text");
            case blocks::ValueKind::Boolean:
              return Value(type == "boolean");
            case blocks::ValueKind::ListRef:
              return Value(type == "list");
            case blocks::ValueKind::RingRef:
              return Value(type == "ring");
            case blocks::ValueKind::FutureRef:
              return Value(type == "future");
            case blocks::ValueKind::Nothing:
              return Value(type == "nothing");
          }
          return Value(false);
        }));
  t.add("reportIdentity", reporter([](const std::vector<Value>& in) {
          return in[0];
        }));
}

// ---------------------------------------------------------------------------
// variables
// ---------------------------------------------------------------------------

void registerVariables(PrimitiveTable& t) {
  t.add("reportGetVar", [](Process& p, Context& c) {
    p.returnValue(c.env->get(c.inputs[0].asText()));
  });
  t.add("doSetVar", [](Process& p, Context& c) {
    c.env->set(c.inputs[0].asText(), c.inputs[1]);
    p.finishCommand();
  });
  t.add("doChangeVar", [](Process& p, Context& c) {
    const std::string name = c.inputs[0].asText();
    double current = c.env->get(name).asNumber();
    c.env->set(name, Value(current + c.inputs[1].asNumber()));
    p.finishCommand();
  });
  t.add("doDeclareVariables", [](Process& p, Context& c) {
    for (const Value& name : c.inputs) {
      c.env->declare(name.asText());
    }
    p.finishCommand();
  });
}

// ---------------------------------------------------------------------------
// lists
// ---------------------------------------------------------------------------

void registerLists(PrimitiveTable& t) {
  t.add("reportNewList", reporter([](const std::vector<Value>& in) {
          auto list = List::make();
          for (const Value& v : in) list->add(v);
          return Value(list);
        }));
  t.add("reportListItem", reporter([](const std::vector<Value>& in) {
          long long index = in[0].asInteger();
          const ListPtr& list = in[1].asList();
          if (index < 1) {
            throw IndexError("item " + std::to_string(index) + " of a list");
          }
          return list->item(static_cast<size_t>(index));
        }));
  t.add("reportListLength", reporter([](const std::vector<Value>& in) {
          return Value(in[0].asList()->length());
        }));
  t.add("reportListContainsItem", reporter([](const std::vector<Value>& in) {
          return Value(in[0].asList()->contains(in[1]));
        }));
  t.add("reportListIndex", reporter([](const std::vector<Value>& in) {
          const ListPtr& list = in[1].asList();
          for (size_t i = 1; i <= list->length(); ++i) {
            if (list->item(i).equals(in[0])) return Value(i);
          }
          return Value(0);
        }));
  t.add("reportCONS", reporter([](const std::vector<Value>& in) {
          auto out = List::make();
          out->add(in[0]);
          for (const Value& v : in[1].asList()->items()) out->add(v);
          return Value(out);
        }));
  t.add("reportCDR", reporter([](const std::vector<Value>& in) {
          const ListPtr& list = in[0].asList();
          if (list->empty()) throw IndexError("all but first of empty list");
          auto out = List::make();
          for (size_t i = 2; i <= list->length(); ++i) {
            out->add(list->item(i));
          }
          return Value(out);
        }));
  t.add("reportNumbers", reporter([](const std::vector<Value>& in) {
          long long lo = in[0].asInteger();
          long long hi = in[1].asInteger();
          auto out = List::make();
          if (lo <= hi) {
            for (long long v = lo; v <= hi; ++v) out->add(Value(v));
          } else {
            for (long long v = lo; v >= hi; --v) out->add(Value(v));
          }
          return Value(out);
        }));
  t.add("reportSorted", reporter([](const std::vector<Value>& in) {
          auto out = List::make(in[0].asList()->items());
          auto& items = out->mutableItems();
          std::stable_sort(items.begin(), items.end(), lessThanValues);
          return Value(out);
        }));
  t.add("doAddToList", command([](Process&, const std::vector<Value>& in) {
          in[1].asList()->add(in[0]);
        }));
  t.add("doDeleteFromList",
        command([](Process&, const std::vector<Value>& in) {
          in[1].asList()->removeAt(
              static_cast<size_t>(in[0].asInteger()));
        }));
  t.add("doInsertInList",
        command([](Process&, const std::vector<Value>& in) {
          in[2].asList()->insertAt(static_cast<size_t>(in[1].asInteger()),
                                   in[0]);
        }));
  t.add("doReplaceInList",
        command([](Process&, const std::vector<Value>& in) {
          in[1].asList()->replaceAt(static_cast<size_t>(in[0].asInteger()),
                                    in[2]);
        }));
}

// ---------------------------------------------------------------------------
// higher-order functions (sequential semantics, paper Sec. 3.1)
// ---------------------------------------------------------------------------

// Shared iteration pattern: call the ring once per element, collecting the
// child results that land past the block's declared arity.
void registerHofs(PrimitiveTable& t) {
  t.add("reportMap", [](Process& p, Context& c) {
    const size_t arity = c.block->arity();
    if (c.phase == 0) {
      c.phase = 1;
      c.counter = 0;
      c.state = std::make_shared<Value>(Value(List::make()));
    }
    auto result = std::static_pointer_cast<Value>(c.state);
    if (c.inputs.size() > arity) {
      result->asList()->add(c.inputs.back());
      c.inputs.pop_back();
      c.collapsedFlags.pop_back();
    }
    const ListPtr& list = c.inputs[1].asList();
    if (static_cast<size_t>(c.counter) < list->length()) {
      ++c.counter;
      p.pushRingCall(c.inputs[0].asRing(),
                     {list->item(static_cast<size_t>(c.counter))}, c.env);
      return;
    }
    p.returnValue(*result);
  });

  t.add("reportKeep", [](Process& p, Context& c) {
    const size_t arity = c.block->arity();
    if (c.phase == 0) {
      c.phase = 1;
      c.counter = 0;
      c.state = std::make_shared<Value>(Value(List::make()));
    }
    auto result = std::static_pointer_cast<Value>(c.state);
    const ListPtr& list = c.inputs[1].asList();
    if (c.inputs.size() > arity) {
      bool keep = c.inputs.back().asBoolean();
      c.inputs.pop_back();
      c.collapsedFlags.pop_back();
      if (keep) {
        result->asList()->add(list->item(static_cast<size_t>(c.counter)));
      }
    }
    if (static_cast<size_t>(c.counter) < list->length()) {
      ++c.counter;
      p.pushRingCall(c.inputs[0].asRing(),
                     {list->item(static_cast<size_t>(c.counter))}, c.env);
      return;
    }
    p.returnValue(*result);
  });

  t.add("reportCombine", [](Process& p, Context& c) {
    const size_t arity = c.block->arity();
    const ListPtr& list = c.inputs[0].asList();
    if (c.phase == 0) {
      c.phase = 1;
      if (list->empty()) {
        p.returnValue(Value(0));
        return;
      }
      c.counter = 1;
      c.state = std::make_shared<Value>(list->item(1));
    }
    auto acc = std::static_pointer_cast<Value>(c.state);
    if (c.inputs.size() > arity) {
      *acc = c.inputs.back();
      c.inputs.pop_back();
      c.collapsedFlags.pop_back();
    }
    if (static_cast<size_t>(c.counter) < list->length()) {
      ++c.counter;
      p.pushRingCall(c.inputs[1].asRing(),
                     {*acc, list->item(static_cast<size_t>(c.counter))},
                     c.env);
      return;
    }
    p.returnValue(*acc);
  });

  t.add("doForEach", [](Process& p, Context& c) {
    // Non-strict: evaluate the var name and list inputs ourselves.
    if (c.inputs.size() < 2) {
      p.evalInput(c, c.inputs.size());
      return;
    }
    // Yield *between* iterations (not before the first or after the last)
    // so a loop of N one-frame bodies occupies exactly N frames.
    const ListPtr& list = c.inputs[1].asList();
    if (static_cast<size_t>(c.counter) >= list->length()) {
      p.finishCommand();
      return;
    }
    if (c.phase == 1) {
      c.phase = 0;
      p.retryAfterYield(c);
      return;
    }
    ++c.counter;
    c.phase = 1;
    auto frame = blocks::Environment::make(c.env);
    frame->declare(c.inputs[0].asText(),
                   list->item(static_cast<size_t>(c.counter)));
    p.pushScript(c.block->input(2).script().get(), frame);
  });
}

// ---------------------------------------------------------------------------
// control
// ---------------------------------------------------------------------------

void registerControl(PrimitiveTable& t) {
  t.add("doForever", [](Process& p, Context& c) {
    // First iteration starts immediately; later iterations are separated
    // by one yield each, so the loop body runs once per frame.
    if (c.phase == 0) {
      c.phase = 1;
    } else {
      c.phase = 0;
      p.retryAfterYield(c);
      return;
    }
    p.pushScript(c.block->input(0).script().get(), c.env);
  });

  t.add("doRepeat", [](Process& p, Context& c) {
    if (c.inputs.empty()) {
      p.evalInput(c, 0);
      return;
    }
    if (c.phase == 0) {
      c.phase = 1;
      c.counter = c.inputs[0].asInteger();
    }
    if (c.counter <= 0) {
      p.finishCommand();
      return;
    }
    if (c.phase == 2) {
      // An iteration just finished and more remain: yield first.
      c.phase = 1;
      p.retryAfterYield(c);
      return;
    }
    --c.counter;
    c.phase = 2;
    p.pushScript(c.block->input(1).script().get(), c.env);
  });

  // Snap!'s counting for-loop: `for i = a to b { body }` — the block the
  // C mapping renders as Listing 5's `for (i = 1; i <= len; i++)`.
  t.add("doFor", [](Process& p, Context& c) {
    if (c.inputs.size() < 3) {
      p.evalInput(c, c.inputs.size());
      return;
    }
    if (c.phase == 0) {
      c.phase = 1;
      c.counter = c.inputs[1].asInteger();  // current value
      c.deadline = double(c.inputs[2].asInteger());  // end value
      c.state = std::make_shared<Value>(Value());    // marks init done
    }
    const long long last = static_cast<long long>(c.deadline);
    if (c.counter > last) {
      p.finishCommand();
      return;
    }
    if (c.phase == 2) {
      c.phase = 1;
      p.retryAfterYield(c);
      return;
    }
    auto frame = blocks::Environment::make(c.env);
    frame->declare(c.inputs[0].asText(), Value(c.counter));
    ++c.counter;
    c.phase = 2;
    p.pushScript(c.block->input(3).script().get(), frame);
  });

  t.add("doIf", [](Process& p, Context& c) {
    if (c.phase == 1) {
      p.finishCommand();
      return;
    }
    if (c.inputs.empty()) {
      p.evalInput(c, 0);
      return;
    }
    c.phase = 1;
    if (c.inputs[0].asBoolean()) {
      p.pushScript(c.block->input(1).script().get(), c.env);
    } else {
      p.finishCommand();
    }
  });

  t.add("doIfElse", [](Process& p, Context& c) {
    if (c.phase == 1) {
      p.finishCommand();
      return;
    }
    if (c.inputs.empty()) {
      p.evalInput(c, 0);
      return;
    }
    c.phase = 1;
    p.pushScript(c.inputs[0].asBoolean()
                     ? c.block->input(1).script().get()
                     : c.block->input(2).script().get(),
                 c.env);
  });

  t.add("doUntil", [](Process& p, Context& c) {
    if (c.phase == 1) {
      // An iteration just finished: yield, then re-evaluate the condition.
      c.phase = 0;
      p.retryAfterYield(c);
      return;
    }
    if (c.inputs.empty()) {
      p.evalInput(c, 0);
      return;
    }
    if (c.inputs[0].asBoolean()) {
      p.finishCommand();
      return;
    }
    c.inputs.clear();
    c.collapsedFlags.clear();
    c.phase = 1;
    p.pushScript(c.block->input(1).script().get(), c.env);
  });

  t.add("doWaitUntil", [](Process& p, Context& c) {
    if (c.inputs.empty()) {
      p.evalInput(c, 0);
      return;
    }
    if (c.inputs[0].asBoolean()) {
      p.finishCommand();
      return;
    }
    c.inputs.clear();
    c.collapsedFlags.clear();
    p.retryAfterYield(c);
  });

  t.add("doWait", [](Process& p, Context& c) {
    if (c.phase == 0) {
      c.phase = 1;
      c.deadline = p.host().nowSeconds() + c.inputs[0].asNumber();
      p.retryAfterYield(c);
      return;
    }
    if (p.host().nowSeconds() >= c.deadline) {
      p.finishCommand();
    } else {
      p.retryAfterYield(c);
    }
  });

  // Snap!'s warp: run the body without yielding between iterations, so
  // the whole C-slot completes within one scheduler frame.
  t.add("doWarp", [](Process& p, Context& c) {
    if (c.phase == 0) {
      c.phase = 1;
      c.ownsWarp = true;
      p.enterWarp();
      p.pushScript(c.block->input(0).script().get(), c.env);
      return;
    }
    c.ownsWarp = false;
    p.exitWarp();
    p.finishCommand();
  });

  t.add("doYield", [](Process& p, Context&) {
    p.finishCommand();
    p.pushYield();
  });

  // Our pedagogical CPU-frame block: occupies the process for exactly N
  // scheduler frames (the concession-stand pour animation uses 3). The
  // block completes *within* its final working frame so a busyWork(N)
  // occupies exactly N frames, no trailing completion frame.
  t.add("doBusyWork", [](Process& p, Context& c) {
    if (c.phase == 0) {
      c.phase = 1;
      c.counter = c.inputs[0].asInteger();
    }
    if (c.counter <= 0) {
      p.finishCommand();
      return;
    }
    --c.counter;
    if (c.counter == 0) {
      p.finishCommand();
    } else {
      p.retryAfterYield(c);
    }
  });

  t.add("doReport", [](Process& p, Context& c) {
    p.unwindReport(c.inputs[0]);
  });

  t.add("doStopThis", [](Process& p, Context&) { p.stopThisScript(); });

  t.add("doBroadcast", [](Process& p, Context& c) {
    p.host().broadcast(c.inputs[0].asText());
    p.finishCommand();
  });

  t.add("doBroadcastAndWait", [](Process& p, Context& c) {
    if (c.inputs.empty()) {
      p.evalInput(c, 0);
      return;
    }
    if (c.phase == 0) {
      c.phase = 1;
      c.token = p.host().broadcast(c.inputs[0].asText());
      p.retryAfterYield(c);
      return;
    }
    if (p.host().broadcastFinished(c.token)) {
      p.finishCommand();
    } else {
      p.retryAfterYield(c);
    }
  });

  t.add("evaluate", [](Process& p, Context& c) {
    if (c.phase == 0) {
      c.phase = 1;
      std::vector<Value> args(c.inputs.begin() + 1, c.inputs.end());
      p.pushRingCall(c.inputs[0].asRing(), std::move(args), c.env);
      return;
    }
    Value result = c.inputs.size() > c.block->arity() ? c.inputs.back()
                                                      : Value();
    p.returnValue(std::move(result));
  });

  t.add("doRun", [](Process& p, Context& c) {
    if (c.phase == 0) {
      c.phase = 1;
      std::vector<Value> args(c.inputs.begin() + 1, c.inputs.end());
      p.pushRingCall(c.inputs[0].asRing(), std::move(args), c.env);
      return;
    }
    p.finishCommand();
  });

  t.add("reifyReporter", [](Process& p, Context& c) {
    const Block& block = *c.block;
    blocks::BlockPtr expression;
    if (block.arity() == 0 || block.input(0).isEmpty()) {
      // An empty ring is the identity function.
      static const blocks::BlockPtr identityTemplate = blocks::Block::make(
          "reportIdentity", {blocks::Input::empty()});
      expression = identityTemplate;
    } else if (block.input(0).isLiteral()) {
      // A ring around a literal is a constant function.
      expression = blocks::Block::make(
          "reportIdentity", {blocks::Input(block.input(0).literalValue())});
    } else {
      expression = block.input(0).block();
    }
    std::vector<std::string> formals;
    for (size_t i = 1; i < block.arity(); ++i) {
      formals.push_back(block.input(i).literalValue().asText());
    }
    p.returnValue(
        Value(Ring::reporter(expression, std::move(formals), c.env)));
  });

  t.add("reifyScript", [](Process& p, Context& c) {
    const Block& block = *c.block;
    std::vector<std::string> formals;
    for (size_t i = 1; i < block.arity(); ++i) {
      formals.push_back(block.input(i).literalValue().asText());
    }
    p.returnValue(Value(Ring::command(block.input(0).script(),
                                      std::move(formals), c.env)));
  });

  t.add("createClone", [](Process& p, Context& c) {
    std::string target = c.inputs[0].asText();
    if (strings::toLower(target) == "myself") target.clear();
    p.host().makeClone(p.sprite(), target);
    p.finishCommand();
  });

  t.add("removeClone", [](Process& p, Context&) {
    SpriteApi* sprite = p.sprite();
    if (sprite && sprite->isClone()) {
      p.host().removeClone(sprite);
      p.terminate();
    } else {
      p.finishCommand();
    }
  });
}

// ---------------------------------------------------------------------------
// looks / motion / sensing
// ---------------------------------------------------------------------------

void registerLooksMotion(PrimitiveTable& t) {
  t.add("bubble", [](Process& p, Context& c) {
    const std::string text = c.inputs[0].display();
    p.sayLog().push_back(text);
    if (p.sprite()) p.sprite()->sayBubble(text);
    p.finishCommand();
  });

  t.add("doSayFor", [](Process& p, Context& c) {
    if (c.phase == 0) {
      c.phase = 1;
      const std::string text = c.inputs[0].display();
      p.sayLog().push_back(text);
      if (p.sprite()) p.sprite()->sayBubble(text);
      c.deadline = p.host().nowSeconds() + c.inputs[1].asNumber();
      p.retryAfterYield(c);
      return;
    }
    if (p.host().nowSeconds() >= c.deadline) {
      if (p.sprite()) p.sprite()->sayBubble("");
      p.finishCommand();
    } else {
      p.retryAfterYield(c);
    }
  });

  t.add("doThink", [](Process& p, Context& c) {
    const std::string text = c.inputs[0].display();
    p.sayLog().push_back(text);
    if (p.sprite()) p.sprite()->thinkBubble(text);
    p.finishCommand();
  });

  t.add("doSwitchToCostume", [](Process& p, Context& c) {
    requireSprite(p, "switch to costume").setCostume(c.inputs[0].asText());
    p.finishCommand();
  });
  t.add("show", [](Process& p, Context&) {
    requireSprite(p, "show").setVisible(true);
    p.finishCommand();
  });
  t.add("hide", [](Process& p, Context&) {
    requireSprite(p, "hide").setVisible(false);
    p.finishCommand();
  });
  t.add("reportTouchingSprite", [](Process& p, Context& c) {
    p.returnValue(Value(
        requireSprite(p, "touching").touching(c.inputs[0].asText())));
  });
  t.add("reportCostumeName", [](Process& p, Context& c) {
    (void)c;
    p.returnValue(Value(requireSprite(p, "costume name").costume()));
  });

  t.add("forward", [](Process& p, Context& c) {
    requireSprite(p, "move").moveSteps(c.inputs[0].asNumber());
    p.finishCommand();
  });
  t.add("turn", [](Process& p, Context& c) {
    requireSprite(p, "turn").turnBy(c.inputs[0].asNumber());
    p.finishCommand();
  });
  t.add("turnLeft", [](Process& p, Context& c) {
    requireSprite(p, "turn left").turnBy(-c.inputs[0].asNumber());
    p.finishCommand();
  });
  t.add("setHeading", [](Process& p, Context& c) {
    requireSprite(p, "point in direction").setHeading(c.inputs[0].asNumber());
    p.finishCommand();
  });
  t.add("gotoXY", [](Process& p, Context& c) {
    requireSprite(p, "go to").gotoXY(c.inputs[0].asNumber(),
                                     c.inputs[1].asNumber());
    p.finishCommand();
  });
  t.add("changeXPosition", [](Process& p, Context& c) {
    requireSprite(p, "change x").changeX(c.inputs[0].asNumber());
    p.finishCommand();
  });
  t.add("changeYPosition", [](Process& p, Context& c) {
    requireSprite(p, "change y").changeY(c.inputs[0].asNumber());
    p.finishCommand();
  });
  t.add("xPosition", [](Process& p, Context&) {
    p.returnValue(Value(requireSprite(p, "x position").x()));
  });
  t.add("yPosition", [](Process& p, Context&) {
    p.returnValue(Value(requireSprite(p, "y position").y()));
  });
  t.add("direction", [](Process& p, Context&) {
    p.returnValue(Value(requireSprite(p, "direction").heading()));
  });

  t.add("getTimer", [](Process& p, Context&) {
    p.returnValue(Value(p.host().timerSeconds()));
  });
  t.add("doResetTimer", [](Process& p, Context&) {
    p.host().resetTimer();
    p.finishCommand();
  });

  t.add("reportMaxWorkers", [](Process& p, Context&) {
    p.returnValue(Value(p.host().maxWorkers()));
  });
}

}  // namespace

void registerStandardPrimitives(PrimitiveTable& table) {
  registerOperators(table);
  registerVariables(table);
  registerLists(table);
  registerHofs(table);
  registerControl(table);
  registerLooksMotion(table);
}

}  // namespace psnap::vm
