#include "vm/process.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "blocks/future.hpp"
#include "support/error.hpp"

namespace psnap::vm {

using blocks::Block;
using blocks::BlockPtr;
using blocks::Environment;
using blocks::EnvPtr;
using blocks::Input;
using blocks::InputKind;
using blocks::Ring;
using blocks::RingKind;
using blocks::RingPtr;
using blocks::Script;
using blocks::ScriptPtr;
using blocks::Value;

void PrimitiveTable::add(const std::string& opcode, Handler handler) {
  const blocks::OpcodeId opId = blocks::internOpcode(opcode);
  if (opId < byId_.size() && byId_[opId]) {
    throw BlockError("duplicate handler for opcode " + opcode);
  }
  if (opId >= byId_.size()) byId_.resize(opId + 1);
  byId_[opId] = std::move(handler);
}

const Handler* PrimitiveTable::find(const std::string& opcode) const {
  return findById(blocks::lookupOpcode(opcode));
}

std::vector<blocks::OpcodeId> PrimitiveTable::registeredIds() const {
  std::vector<blocks::OpcodeId> ids;
  for (blocks::OpcodeId i = 0; i < byId_.size(); ++i) {
    if (byId_[i]) ids.push_back(i);
  }
  return ids;
}

PrimitiveTable PrimitiveTable::standard() {
  PrimitiveTable table;
  registerStandardPrimitives(table);
  return table;
}

namespace {
std::atomic<uint64_t> gNextProcessId{1};
}  // namespace

Process::Process(const blocks::BlockRegistry* registry,
                 const PrimitiveTable* primitives, Host* host,
                 SpriteApi* sprite)
    : registry_(registry),
      primitives_(primitives),
      host_(host),
      sprite_(sprite),
      id_(gNextProcessId.fetch_add(1)) {
  if (!registry_ || !primitives_ || !host_) {
    throw Error("Process requires a registry, primitive table, and host");
  }
}

void Process::startScript(ScriptPtr script, EnvPtr env) {
  rootScript_ = std::move(script);
  stack_.clear();
  state_ = ProcessState::Ready;
  error_.clear();
  errorClass_ = ErrorClass::None;
  result_ = Value();
  pushScript(rootScript_.get(), std::move(env), /*boundary=*/true);
}

void Process::startExpression(BlockPtr expression, EnvPtr env) {
  rootExpression_ = std::move(expression);
  stack_.clear();
  state_ = ProcessState::Ready;
  error_.clear();
  errorClass_ = ErrorClass::None;
  result_ = Value();
  pushExpression(rootExpression_.get(), std::move(env), /*boundary=*/true);
}

std::string Process::rootOpcode() const {
  if (rootExpression_) return rootExpression_->opcode();
  if (rootScript_ && rootScript_->size() > 0) {
    return rootScript_->at(0)->opcode();
  }
  return "<script>";
}

bool Process::checkCancelled() {
  if (!cancelToken_ || !cancelToken_->cancelled()) return false;
  try {
    cancelToken_->checkpoint();
  } catch (const Error& e) {
    errorClass_ = classifyError(std::current_exception());
    fail(e.what());
  }
  return true;
}

bool Process::failIfCancelled() {
  if (state_ != ProcessState::Ready && state_ != ProcessState::Blocked) {
    return false;
  }
  return checkCancelled();
}

std::function<void()> Process::parkOnCompletion(Context& ctx) {
  (void)ctx;  // the handler frame stays on top; re-invoked on wake
  state_ = ProcessState::Blocked;
  progress_ = true;  // parking is progress (like pushing a yield marker)
  wakeFlag_ = std::make_shared<std::atomic<bool>>(false);
  auto flag = wakeFlag_;
  WakeHubPtr hub = host_->wakeHub();
  // Captures only the flag and the hub: a completion that fires after
  // this process (or its whole scheduler) is destroyed touches nothing
  // else. The release store pairs with wakeReady()'s acquire load.
  return [flag, hub]() {
    flag->store(true, std::memory_order_release);
    if (hub) hub->notify();
  };
}

void Process::unpark() {
  if (state_ != ProcessState::Blocked) return;
  state_ = ProcessState::Ready;
  wakeFlag_.reset();
}

void Process::adoptFuture(const std::shared_ptr<blocks::Future>& future) {
  if (future) ownedFutures_.push_back(future);
}

void Process::cancelOwnedFutures(const std::string& reason) {
  for (auto& weak : ownedFutures_) {
    if (auto future = weak.lock()) future->cancel(reason);
  }
  ownedFutures_.clear();
}

bool Process::runSlice(size_t maxSteps) {
  if (!runnable()) return false;
  if (checkCancelled()) return false;
  yielded_ = false;
  size_t steps = 0;
  while (runnable() && !yielded_ && steps < maxSteps) {
    step();
    ++steps;
  }
  return runnable();
}

const Value& Process::runToCompletion(size_t maxTotalSteps) {
  size_t total = 0;
  while (runnable() || blocked()) {
    if (blocked()) {
      // Headless park: no scheduler frame loop, so wait for the wake
      // flag right here. The pool makes independent progress, so the
      // flag always arrives unless the operation hangs — in which case
      // the token's deadline (checked each lap) is the way out.
      if (wakeReady()) {
        unpark();
      } else if (failIfCancelled()) {
        break;
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      continue;
    }
    yielded_ = false;
    size_t budget = std::min<size_t>(kDefaultSliceSteps,
                                     maxTotalSteps - total);
    if (budget == 0) throw Error("process exceeded its step budget");
    size_t before = total;
    while (runnable() && !yielded_ && (total - before) < budget) {
      step();
      ++total;
    }
  }
  if (errored()) throw Error("process failed: " + error_);
  return result_;
}

void Process::step() {
  if (stack_.empty()) {
    state_ = ProcessState::Done;
    return;
  }
  progress_ = false;
  Context& top = stack_.back();
  if (top.isYieldMarker) {
    stack_.pop_back();
    // Inside a warp, yields are consumed without ending the slice — but
    // they remain cancellation points, so a deadline still unwinds a
    // warped loop that never ends its slice.
    if (warpDepth_ == 0) {
      yielded_ = true;
    } else if (cancelToken_ && checkCancelled()) {
      return;
    }
    if (stack_.empty()) state_ = ProcessState::Done;
    return;
  }
  try {
    if (top.script) {
      stepScript(top);
    } else {
      stepBlock(top);
    }
  } catch (const Error& e) {
    errorClass_ = classifyError(std::current_exception());
    fail(e.what());
    return;
  }
  if (!progress_) {
    fail("interpreter stall: handler for " +
         (stack_.empty() ? std::string("<root>")
                         : (stack_.back().block
                                ? stack_.back().block->opcode()
                                : std::string("<script>"))) +
         " made no progress");
  }
}

void Process::stepScript(Context& ctx) {
  if (ctx.pc >= ctx.script->size()) {
    finishCommand();
    return;
  }
  const Block* next = ctx.script->at(ctx.pc).get();
  ++ctx.pc;
  pushExpression(next, ctx.env);
}

void Process::stepBlock(Context& ctx) {
  const Block& block = *ctx.block;
  if (dispatchMode_ == DispatchMode::ByString) {
    // Reference path: the pre-interning machine, verbatim. Hashes the
    // opcode string for the spec and again for the handler, and deposits
    // one input per interpreter step.
    const blocks::BlockSpec& spec = registry_->get(block.opcode());
    if (spec.strict && ctx.inputs.size() < block.arity()) {
      evalInput(ctx, ctx.inputs.size());
      return;
    }
    const Handler* handler = primitives_->find(block.opcode());
    if (!handler) {
      throw BlockError("no handler registered for opcode " + block.opcode());
    }
    (*handler)(*this, ctx);
    return;
  }

  const blocks::OpcodeId opId = block.opcodeId();
  const blocks::BlockSpec* spec = registry_->specOf(opId);
  if (!spec) throw BlockError("unknown opcode " + block.opcode());
  if (spec->strict && ctx.inputs.size() < block.arity()) {
    if (ctx.inputs.empty()) {
      ctx.inputs.reserve(block.arity());
      ctx.collapsedFlags.reserve(block.arity());
    }
    // Deposit consecutive immediate inputs (literals, blanks, collapsed
    // slots) in this one step; a nested expression needs a child frame, so
    // stop there and resume after it returns its value. One exception: a
    // bare variable read (`reportGetVar` with a literal name) is evaluated
    // inline — its handler would only call env->get and return, so the
    // child frame is pure overhead on the hottest reporter there is.
    do {
      const size_t index = ctx.inputs.size();
      const Input& input = block.input(index);
      if (input.isBlock()) {
        const Block& nested = *input.block();
        if (nested.is(blocks::Op::reportGetVar) && nested.arity() == 1 &&
            nested.input(0).isLiteral() && ctx.env) {
          ctx.inputs.push_back(
              ctx.env->get(nested.input(0).literalValue().asText()));
          ctx.collapsedFlags.push_back(0);
          progress_ = true;
          continue;
        }
        pushExpression(&nested, ctx.env);
        return;
      }
      evalInput(ctx, index);
    } while (ctx.inputs.size() < block.arity());
  }
  const Handler* handler = primitives_->findById(opId);
  if (!handler) {
    throw BlockError("no handler registered for opcode " + block.opcode());
  }
  (*handler)(*this, ctx);
}

void Process::evalInput(Context& ctx, size_t index) {
  const Input& input = ctx.block->input(index);
  switch (input.kind()) {
    case InputKind::Literal:
      ctx.inputs.push_back(input.literalValue());
      ctx.collapsedFlags.push_back(0);
      progress_ = true;
      return;
    case InputKind::Collapsed:
      ctx.inputs.push_back(Value());
      ctx.collapsedFlags.push_back(1);
      progress_ = true;
      return;
    case InputKind::Empty: {
      // Implicit ring parameter: resolve the blank's static ordinal inside
      // the enclosing ring and read the corresponding argument.
      const Ring* ring = ctx.env ? ctx.env->owningRing() : nullptr;
      if (!ring) {
        throw Error("an empty slot was evaluated outside of a ring call");
      }
      size_t ordinal = blocks::emptySlotOrdinal(*ring, &input);
      ctx.inputs.push_back(ctx.env->implicitArg(ordinal));
      ctx.collapsedFlags.push_back(0);
      progress_ = true;
      return;
    }
    case InputKind::BlockExpr:
      pushExpression(input.block().get(), ctx.env);
      return;
    case InputKind::ScriptSlot:
      // Strict machinery never evaluates a C-slot; control handlers read
      // the script directly from the block.
      throw BlockError("C-slot input reached strict evaluation in " +
                       ctx.block->opcode());
  }
}

void Process::pushScript(const Script* script, EnvPtr env, bool boundary,
                         ScriptPtr owner) {
  Context ctx;
  ctx.script = script;
  ctx.env = std::move(env);
  ctx.callBoundary = boundary;
  ctx.scriptOwner = std::move(owner);
  stack_.push_back(std::move(ctx));
  progress_ = true;
}

void Process::pushExpression(const Block* block, EnvPtr env, bool boundary,
                             BlockPtr owner) {
  Context ctx;
  ctx.block = block;
  ctx.env = std::move(env);
  ctx.callBoundary = boundary;
  ctx.blockOwner = std::move(owner);
  stack_.push_back(std::move(ctx));
  progress_ = true;
}

void Process::pushYield() {
  Context ctx;
  ctx.isYieldMarker = true;
  stack_.push_back(std::move(ctx));
  progress_ = true;
}

void Process::returnValue(Value value) {
  stack_.pop_back();
  progress_ = true;
  if (stack_.empty()) {
    result_ = std::move(value);
    state_ = ProcessState::Done;
    return;
  }
  Context& parent = stack_.back();
  if (parent.block) {
    parent.inputs.push_back(std::move(value));
    parent.collapsedFlags.push_back(0);
  }
  // Script parents discard reporter values (a reporter used as a command).
}

void Process::finishCommand() {
  stack_.pop_back();
  progress_ = true;
  if (stack_.empty()) state_ = ProcessState::Done;
}

void Process::retryAfterYield(Context& ctx) {
  (void)ctx;
  pushYield();
}

void Process::unwindReport(Value value) {
  progress_ = true;
  while (!stack_.empty()) {
    bool boundary = stack_.back().callBoundary;
    if (stack_.back().ownsWarp) exitWarp();
    stack_.pop_back();
    if (boundary) break;
  }
  if (stack_.empty()) {
    result_ = std::move(value);
    state_ = ProcessState::Done;
    return;
  }
  Context& parent = stack_.back();
  if (parent.block) {
    parent.inputs.push_back(std::move(value));
    parent.collapsedFlags.push_back(0);
  }
}

void Process::stopThisScript() {
  progress_ = true;
  while (!stack_.empty()) {
    bool boundary = stack_.back().callBoundary;
    if (stack_.back().ownsWarp) exitWarp();
    stack_.pop_back();
    if (boundary) break;
  }
  if (stack_.empty()) state_ = ProcessState::Done;
}

void Process::terminate() {
  stack_.clear();
  warpDepth_ = 0;
  state_ = ProcessState::Terminated;
  progress_ = true;
  cancelOwnedFutures("owning process terminated");
}

void Process::pushRingCall(const RingPtr& ring, std::vector<Value> args,
                           const EnvPtr& callerEnv) {
  EnvPtr base = ring->captured() ? ring->captured() : callerEnv;
  EnvPtr frame = Environment::make(base);
  frame->setOwningRing(ring.get());
  const auto& formals = ring->formals();
  if (!formals.empty()) {
    for (size_t i = 0; i < formals.size(); ++i) {
      frame->declare(formals[i], i < args.size() ? args[i] : Value());
    }
  } else {
    frame->setImplicitArgs(std::move(args));
  }
  if (ring->kind() == RingKind::Reporter) {
    pushExpression(ring->expression().get(), frame, /*boundary=*/true);
  } else {
    pushScript(ring->script().get(), frame, /*boundary=*/true);
  }
}

void Process::fail(const std::string& message) {
  error_ = message;
  if (errorClass_ == ErrorClass::None) errorClass_ = ErrorClass::Generic;
  stack_.clear();
  warpDepth_ = 0;
  state_ = ProcessState::Errored;
  cancelOwnedFutures("owning process failed");
}

}  // namespace psnap::vm
