#include "vm/host.hpp"

#include "support/error.hpp"

namespace psnap::vm {

uint64_t NullHost::broadcast(const std::string& message) {
  messages_.push_back(message);
  return static_cast<uint64_t>(messages_.size());
}

std::shared_ptr<const ProcessStatus> NullHost::launchScript(blocks::ScriptPtr,
                                                            blocks::EnvPtr,
                                                            SpriteApi*) {
  throw Error("NullHost cannot launch processes; use a ThreadManager");
}

}  // namespace psnap::vm
