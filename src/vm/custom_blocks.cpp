#include "vm/custom_blocks.hpp"

#include "support/error.hpp"

namespace psnap::vm {

using blocks::Block;
using blocks::BlockPtr;
using blocks::BlockRegistry;
using blocks::BlockSpec;
using blocks::Input;
using blocks::Ring;
using blocks::RingPtr;
using blocks::Value;

std::string customOpcode(const std::string& spec) {
  return "custom:" + spec;
}

void CustomBlockLibrary::define(CustomBlockDef def) {
  if (!def.body) throw BlockError("custom block needs a body script");
  bool variadic = false;
  auto slots = blocks::parseSpecSlots(def.spec, variadic);
  if (variadic) {
    throw BlockError("custom blocks do not support variadic specs");
  }
  if (slots.size() != def.formals.size()) {
    throw BlockError("custom block \"" + def.spec + "\" declares " +
                     std::to_string(slots.size()) + " slots but " +
                     std::to_string(def.formals.size()) + " formals");
  }
  if (has(def.spec)) {
    throw BlockError("custom block \"" + def.spec + "\" already defined");
  }
  defs_.push_back(std::move(def));
}

bool CustomBlockLibrary::has(const std::string& spec) const {
  for (const CustomBlockDef& def : defs_) {
    if (def.spec == spec) return true;
  }
  return false;
}

const CustomBlockDef& CustomBlockLibrary::get(const std::string& spec) const {
  for (const CustomBlockDef& def : defs_) {
    if (def.spec == spec) return def;
  }
  throw BlockError("no custom block \"" + spec + "\"");
}

std::vector<std::string> CustomBlockLibrary::specs() const {
  std::vector<std::string> out;
  out.reserve(defs_.size());
  for (const CustomBlockDef& def : defs_) out.push_back(def.spec);
  return out;
}

void CustomBlockLibrary::registerInto(BlockRegistry& registry,
                                      PrimitiveTable& table) const {
  for (const CustomBlockDef& def : defs_) {
    BlockSpec spec;
    spec.opcode = customOpcode(def.spec);
    spec.spec = def.spec;
    spec.category = "custom";
    spec.type = def.type;
    spec.pure = false;   // bodies may have effects; worker shipping is
                         // done through rings, not custom calls
    spec.strict = true;  // arguments evaluate before the body runs
    registry.add(spec);

    // The body runs as a command-ring call: formals bound in a fresh
    // frame over the definition's home environment, report unwinds to
    // the call boundary.
    RingPtr bodyRing =
        Ring::command(def.body, def.formals, def.home);
    const bool isReporter = def.type == blocks::BlockType::Reporter ||
                            def.type == blocks::BlockType::Predicate;
    table.add(spec.opcode,
              [bodyRing, isReporter](Process& p, Context& c) {
                if (c.phase == 0) {
                  c.phase = 1;
                  std::vector<Value> args(c.inputs.begin(),
                                          c.inputs.end());
                  p.pushRingCall(bodyRing, std::move(args), c.env);
                  return;
                }
                if (isReporter) {
                  Value result = c.inputs.size() > c.block->arity()
                                     ? c.inputs.back()
                                     : Value();
                  p.returnValue(std::move(result));
                } else {
                  p.finishCommand();
                }
              });
  }
}

BlockPtr CustomBlockLibrary::call(const std::string& spec,
                                  std::vector<Input> args) const {
  (void)get(spec);  // validate existence
  return Block::make(customOpcode(spec), std::move(args));
}

}  // namespace psnap::vm
