#include "blocks/environment.hpp"

#include "support/error.hpp"

namespace psnap::blocks {

Environment::Slot* Environment::findLocal(const std::string& name) {
  if (locals_.size() <= kSmallFrame) {
    for (Slot& slot : locals_) {
      if (slot.name == name) return &slot;
    }
    return nullptr;
  }
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &locals_[it->second];
}

const Environment::Slot* Environment::findLocal(
    const std::string& name) const {
  return const_cast<Environment*>(this)->findLocal(name);
}

void Environment::declare(const std::string& name, Value initial) {
  if (Slot* slot = findLocal(name)) {
    slot->value = std::move(initial);
    return;
  }
  locals_.push_back(Slot{name, std::move(initial)});
  if (locals_.size() == kSmallFrame + 1) {
    // Crossed the linear-scan threshold: build the index for all slots.
    for (size_t i = 0; i < locals_.size(); ++i) index_[locals_[i].name] = i;
  } else if (locals_.size() > kSmallFrame + 1) {
    index_[name] = locals_.size() - 1;
  }
}

bool Environment::isDeclared(const std::string& name) const {
  if (findLocal(name)) return true;
  return parent_ && parent_->isDeclared(name);
}

const Value& Environment::get(const std::string& name) const {
  const Environment* frame = this;
  while (frame) {
    if (const Slot* slot = frame->findLocal(name)) return slot->value;
    frame = frame->parent_.get();
  }
  throw Error("a variable of name '" + name + "' does not exist");
}

void Environment::set(const std::string& name, Value value) {
  Environment* frame = this;
  while (true) {
    if (Slot* slot = frame->findLocal(name)) {
      slot->value = std::move(value);
      return;
    }
    if (!frame->parent_) {
      // Root frame: declare globally.
      frame->declare(name, std::move(value));
      return;
    }
    frame = frame->parent_.get();
  }
}

void Environment::setImplicitArgs(std::vector<Value> args) {
  implicitArgs_ = std::move(args);
}

bool Environment::hasImplicitArgs() const {
  if (implicitArgs_.has_value()) return true;
  return parent_ && parent_->hasImplicitArgs();
}

const Value& Environment::implicitArg(size_t ordinal) const {
  const Environment* frame = this;
  while (frame) {
    if (frame->implicitArgs_.has_value()) {
      const auto& args = *frame->implicitArgs_;
      if (args.empty()) {
        throw Error("empty slot evaluated with no implicit arguments");
      }
      // Exactly one argument fills every blank; otherwise blanks map
      // positionally.
      if (args.size() == 1) return args[0];
      if (ordinal >= args.size()) {
        throw Error("empty slot ordinal " + std::to_string(ordinal) +
                    " exceeds implicit argument count " +
                    std::to_string(args.size()));
      }
      return args[ordinal];
    }
    frame = frame->parent_.get();
  }
  throw Error("empty slot evaluated outside of a ring call");
}

std::vector<std::string> Environment::localNames() const {
  std::vector<std::string> names;
  names.reserve(locals_.size());
  for (const Slot& slot : locals_) names.push_back(slot.name);
  return names;
}

}  // namespace psnap::blocks
