#include "blocks/environment.hpp"

#include "support/error.hpp"

namespace psnap::blocks {

void Environment::declare(const std::string& name, Value initial) {
  vars_[name] = std::move(initial);
}

bool Environment::isDeclared(const std::string& name) const {
  if (vars_.count(name) != 0) return true;
  return parent_ && parent_->isDeclared(name);
}

const Value& Environment::get(const std::string& name) const {
  auto it = vars_.find(name);
  if (it != vars_.end()) return it->second;
  if (parent_) return parent_->get(name);
  throw Error("a variable of name '" + name + "' does not exist");
}

void Environment::set(const std::string& name, Value value) {
  Environment* frame = this;
  while (frame) {
    auto it = frame->vars_.find(name);
    if (it != frame->vars_.end()) {
      it->second = std::move(value);
      return;
    }
    if (!frame->parent_) {
      // Root frame: declare globally.
      frame->vars_[name] = std::move(value);
      return;
    }
    frame = frame->parent_.get();
  }
}

void Environment::setImplicitArgs(std::vector<Value> args) {
  implicitArgs_ = std::move(args);
}

bool Environment::hasImplicitArgs() const {
  if (implicitArgs_.has_value()) return true;
  return parent_ && parent_->hasImplicitArgs();
}

const Value& Environment::implicitArg(size_t ordinal) const {
  const Environment* frame = this;
  while (frame) {
    if (frame->implicitArgs_.has_value()) {
      const auto& args = *frame->implicitArgs_;
      if (args.empty()) {
        throw Error("empty slot evaluated with no implicit arguments");
      }
      // Exactly one argument fills every blank; otherwise blanks map
      // positionally.
      if (args.size() == 1) return args[0];
      if (ordinal >= args.size()) {
        throw Error("empty slot ordinal " + std::to_string(ordinal) +
                    " exceeds implicit argument count " +
                    std::to_string(args.size()));
      }
      return args[ordinal];
    }
    frame = frame->parent_.get();
  }
  throw Error("empty slot evaluated outside of a ring call");
}

std::vector<std::string> Environment::localNames() const {
  std::vector<std::string> names;
  names.reserve(vars_.size());
  for (const auto& [name, value] : vars_) names.push_back(name);
  return names;
}

}  // namespace psnap::blocks
