// The block IR: an immutable AST of blocks, input slots, and scripts.
//
// A Block is identified by its opcode (mirroring Snap!'s selector names,
// e.g. `reportSum`, `doSayFor`, `reportParallelMap`). Its inputs are slots
// that hold either a literal value, a nested reporter block, a nested
// command script (a C-slot), an *empty* slot (an implicit ring parameter,
// the grey blank of Fig. 4a in the paper), or a *collapsed* optional slot
// (the hidden "in parallel" input of the parallelForEach block, Fig. 8b).
//
// Blocks are immutable after construction and shared via shared_ptr, so a
// subtree can be safely referenced from rings, processes, clones, and the
// code generator at the same time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "blocks/opcodes.hpp"
#include "blocks/value.hpp"

namespace psnap::blocks {

class Input;

/// A straight-line sequence of command blocks.
class Script {
 public:
  Script() = default;
  explicit Script(std::vector<BlockPtr> blocks) : blocks_(std::move(blocks)) {}

  static ScriptPtr make(std::vector<BlockPtr> blocks = {}) {
    return std::make_shared<const Script>(std::move(blocks));
  }

  const std::vector<BlockPtr>& blocks() const { return blocks_; }
  size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  const BlockPtr& at(size_t index) const { return blocks_.at(index); }

  /// Debug rendering, one block per line.
  std::string display() const;

 private:
  std::vector<BlockPtr> blocks_;
};

/// What an input slot holds.
enum class InputKind {
  Literal,    ///< an immediate Value typed into the slot
  BlockExpr,  ///< a nested reporter block
  ScriptSlot, ///< a C-slot holding a command script
  Empty,      ///< an empty slot: implicit parameter inside a ring
  Collapsed,  ///< an optional slot the user has left collapsed (use default)
};

/// One input slot of a block.
class Input {
 public:
  /// Literal slot.
  explicit Input(Value literal)
      : kind_(InputKind::Literal), literal_(std::move(literal)) {}
  /// Nested reporter slot.
  explicit Input(BlockPtr block)
      : kind_(InputKind::BlockExpr), block_(std::move(block)) {}
  /// C-slot.
  explicit Input(ScriptPtr script)
      : kind_(InputKind::ScriptSlot), script_(std::move(script)) {}

  static Input literal(Value value) { return Input(std::move(value)); }
  static Input expr(BlockPtr block) { return Input(std::move(block)); }
  static Input cslot(ScriptPtr script) { return Input(std::move(script)); }
  static Input empty() { return Input(InputKind::Empty); }
  static Input collapsed() { return Input(InputKind::Collapsed); }

  InputKind kind() const { return kind_; }
  bool isLiteral() const { return kind_ == InputKind::Literal; }
  bool isBlock() const { return kind_ == InputKind::BlockExpr; }
  bool isScript() const { return kind_ == InputKind::ScriptSlot; }
  bool isEmpty() const { return kind_ == InputKind::Empty; }
  bool isCollapsed() const { return kind_ == InputKind::Collapsed; }

  /// Valid only for the matching kind; throws BlockError otherwise.
  const Value& literalValue() const;
  const BlockPtr& block() const;
  const ScriptPtr& script() const;

 private:
  explicit Input(InputKind kind) : kind_(kind) {}

  InputKind kind_;
  Value literal_;
  BlockPtr block_;
  ScriptPtr script_;
};

/// An immutable block instance: opcode plus filled input slots.
///
/// The opcode is interned at construction, so every later consumer — the
/// VM step loop, the pure evaluator, the translator — dispatches on the
/// cached dense id without hashing the opcode string again.
class Block {
 public:
  Block(std::string opcode, std::vector<Input> inputs)
      : opcode_(std::move(opcode)),
        opcodeId_(internOpcode(opcode_)),
        inputs_(std::move(inputs)) {}

  static BlockPtr make(std::string opcode, std::vector<Input> inputs = {}) {
    return std::make_shared<const Block>(std::move(opcode),
                                         std::move(inputs));
  }

  const std::string& opcode() const { return opcode_; }
  OpcodeId opcodeId() const { return opcodeId_; }
  /// Is this block the given builtin?
  bool is(Op op) const { return opcodeId_ == id(op); }
  const std::vector<Input>& inputs() const { return inputs_; }
  size_t arity() const { return inputs_.size(); }
  const Input& input(size_t index) const { return inputs_.at(index); }

  /// Debug rendering: `(opcode in1 in2 …)` with nested parens.
  std::string display() const;

 private:
  std::string opcode_;
  OpcodeId opcodeId_;
  std::vector<Input> inputs_;
};

/// Collect the empty slots of a reporter expression (or command script) in
/// pre-order. The position of an Input in this sequence is its static
/// implicit-parameter ordinal — Snap! fills the blanks of a ring body left
/// to right in exactly this order.
std::vector<const Input*> collectEmptySlots(const Block& root);
std::vector<const Input*> collectEmptySlots(const Script& root);

/// Number of empty slots (implicit parameters) of a ring body.
size_t countEmptySlots(const Ring& ring);

/// Resolve the static ordinal of `slot` within the body of `ring`.
/// Returns the pre-order index; throws BlockError if the slot is not part
/// of the ring body.
size_t emptySlotOrdinal(const Ring& ring, const Input* slot);

}  // namespace psnap::blocks
