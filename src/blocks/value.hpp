// The Snap! value model: numbers, text, booleans, first-class lists, and
// first-class ringed procedures.
//
// Two properties of Snap! values are load-bearing for the paper's parallel
// blocks and are preserved faithfully here:
//
//  * Lists are first-class objects with identity: passing a list passes a
//    reference, and `add ... to ...` mutates the shared object. They are
//    1-indexed.
//  * Procedures ("rings") are first-class closures over a reporter block or
//    a command script, with either named formal parameters or implicit
//    empty-slot parameters filled left to right.
//
// Value equality follows Snap!: values that look numeric compare
// numerically, and text comparison is case-insensitive.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

namespace psnap::blocks {

class List;
class Ring;
class Block;
class Script;
class Environment;
class Input;

using ListPtr = std::shared_ptr<List>;
using RingPtr = std::shared_ptr<Ring>;
using BlockPtr = std::shared_ptr<const Block>;
using ScriptPtr = std::shared_ptr<const Script>;
using EnvPtr = std::shared_ptr<Environment>;

/// Discriminator for Value's runtime type.
enum class ValueKind { Nothing, Number, Boolean, Text, ListRef, RingRef };

/// Human-readable name of a ValueKind (for error messages).
const char* valueKindName(ValueKind kind);

/// A dynamically typed Snap! value.
class Value {
 public:
  /// The "nothing" value reported by command blocks and empty slots.
  Value() = default;
  Value(double number) : v_(number) {}               // NOLINT(runtime/explicit)
  Value(int number) : v_(double(number)) {}          // NOLINT(runtime/explicit)
  Value(long number) : v_(double(number)) {}         // NOLINT(runtime/explicit)
  Value(long long n) : v_(double(n)) {}              // NOLINT(runtime/explicit)
  Value(size_t number) : v_(double(number)) {}       // NOLINT(runtime/explicit)
  Value(bool flag) : v_(flag) {}                     // NOLINT(runtime/explicit)
  Value(std::string text) : v_(std::move(text)) {}   // NOLINT(runtime/explicit)
  Value(const char* text) : v_(std::string(text)) {} // NOLINT(runtime/explicit)
  Value(ListPtr list) : v_(std::move(list)) {}       // NOLINT(runtime/explicit)
  Value(RingPtr ring) : v_(std::move(ring)) {}       // NOLINT(runtime/explicit)

  ValueKind kind() const;

  bool isNothing() const { return kind() == ValueKind::Nothing; }
  bool isNumber() const { return kind() == ValueKind::Number; }
  bool isBoolean() const { return kind() == ValueKind::Boolean; }
  bool isText() const { return kind() == ValueKind::Text; }
  bool isList() const { return kind() == ValueKind::ListRef; }
  bool isRing() const { return kind() == ValueKind::RingRef; }

  /// Number coercion per Snap!: numbers pass through, numeric-looking text
  /// parses, booleans are 1/0, everything else throws TypeError.
  double asNumber() const;

  /// Integer coercion: asNumber() rounded to nearest; throws on non-finite.
  long long asInteger() const;

  /// Text coercion: numbers render via strings::formatNumber, booleans as
  /// "true"/"false", nothing as "". Lists/rings throw TypeError.
  std::string asText() const;

  /// Boolean coercion: booleans pass through; the texts "true"/"false"
  /// coerce; everything else throws TypeError.
  bool asBoolean() const;

  /// List access without copying; throws TypeError for non-lists.
  const ListPtr& asList() const;

  /// Ring access; throws TypeError for non-rings.
  const RingPtr& asRing() const;

  /// Snap! `=` semantics: numeric when both sides coerce to numbers,
  /// case-insensitive text otherwise; lists compare element-wise (deep);
  /// rings compare by identity.
  bool equals(const Value& other) const;

  /// Display string as the Snap! UI would show it in a say-bubble or watcher;
  /// lists render as bracketed element lists.
  std::string display() const;

  /// True if the value can be sent to a worker (no rings; lists recursively
  /// cloneable). Mirrors the structured-clone restriction on Web Workers.
  bool isTransferable() const;

  /// Deep copy for transferring to/from a worker ("structured clone").
  /// Throws PurityError when !isTransferable().
  Value structuredClone() const;

 private:
  std::variant<std::monostate, double, bool, std::string, ListPtr, RingPtr>
      v_;
};

/// A first-class, 1-indexed Snap! list with reference semantics (share the
/// ListPtr to share the object).
class List {
 public:
  List() = default;
  explicit List(std::vector<Value> items) : items_(std::move(items)) {}

  static ListPtr make() { return std::make_shared<List>(); }
  static ListPtr make(std::vector<Value> items) {
    return std::make_shared<List>(std::move(items));
  }

  size_t length() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// 1-indexed access; throws IndexError when out of range.
  const Value& item(size_t index1) const;
  Value& item(size_t index1);

  void add(Value value) { items_.push_back(std::move(value)); }
  /// Insert at 1-indexed position (1 = front, length+1 = back).
  void insertAt(size_t index1, Value value);
  /// Replace the item at a 1-indexed position.
  void replaceAt(size_t index1, Value value);
  /// Remove at 1-indexed position.
  void removeAt(size_t index1);
  void clear() { items_.clear(); }

  /// True if any element `equals` the probe (Snap! `contains`).
  bool contains(const Value& probe) const;

  const std::vector<Value>& items() const { return items_; }
  std::vector<Value>& items() { return items_; }

  /// Deep structural equality (used by Value::equals).
  bool deepEquals(const List& other) const;

  /// Deep copy (shared sublists are duplicated).
  ListPtr deepCopy() const;

  std::string display() const;

 private:
  std::vector<Value> items_;
};

/// Whether a ring wraps a reporter expression or a command script.
enum class RingKind { Reporter, Command };

/// A first-class procedure: a closure over a reporter block or a command
/// script, its formal parameter names, and the environment captured when
/// the ring was evaluated (lexical scope).
class Ring {
 public:
  Ring(RingKind kind, BlockPtr expression, ScriptPtr script,
       std::vector<std::string> formals, EnvPtr captured);

  static RingPtr reporter(BlockPtr expression,
                          std::vector<std::string> formals = {},
                          EnvPtr captured = nullptr);
  static RingPtr command(ScriptPtr script,
                         std::vector<std::string> formals = {},
                         EnvPtr captured = nullptr);

  RingKind kind() const { return kind_; }
  /// Non-null for reporter rings.
  const BlockPtr& expression() const { return expression_; }
  /// Non-null for command rings.
  const ScriptPtr& script() const { return script_; }
  const std::vector<std::string>& formals() const { return formals_; }
  const EnvPtr& captured() const { return captured_; }

  /// The body's empty slots in pre-order — the implicit-parameter
  /// sequence. Computed once and cached: resolving a blank's ordinal is on
  /// the hot path of every empty-slot evaluation in the VM and the pure
  /// evaluator, and the body is immutable. Thread-safe (workers share
  /// rings).
  const std::vector<const Input*>& emptySlots() const;

 private:
  RingKind kind_;
  BlockPtr expression_;
  ScriptPtr script_;
  std::vector<std::string> formals_;
  EnvPtr captured_;
  mutable std::once_flag emptySlotsOnce_;
  mutable std::vector<const Input*> emptySlots_;
};

}  // namespace psnap::blocks
