// The Snap! value model: numbers, text, booleans, first-class lists, and
// first-class ringed procedures.
//
// Two properties of Snap! values are load-bearing for the paper's parallel
// blocks and are preserved faithfully here:
//
//  * Lists are first-class objects with identity: passing a list passes a
//    reference, and `add ... to ...` mutates the shared object. They are
//    1-indexed.
//  * Procedures ("rings") are first-class closures over a reporter block or
//    a command script, with either named formal parameters or implicit
//    empty-slot parameters filled left to right.
//
// Value equality follows Snap!: values that look numeric compare
// numerically, and text comparison is case-insensitive.
//
// Representation (the copy-on-write value plane; invariants in DESIGN.md,
// "Value plane"):
//
//  * Text is immutable. Short texts (<= 15 bytes) live inline in the
//    Value; longer texts are a `shared_ptr<const TextRep>` carrying the
//    string plus lazily computed caches (numeric parse, lowered hash), so
//    copying a text Value is a refcount bump and numeric coercion or
//    case-insensitive hashing never re-reads the bytes twice.
//  * A List owns a shared item buffer. `structuredClone` of a flat
//    (sublist-free) list is O(1): the clone is a new List sharing the
//    buffer. Every mutator funnels through a detach gate that copies the
//    buffer first when it is shared, so the deep copy is deferred to the
//    first mutation of either side and never observed semantically.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace psnap::blocks {

class List;
class Ring;
class Block;
class Script;
class Environment;
class Input;
class Future;

using ListPtr = std::shared_ptr<List>;
using RingPtr = std::shared_ptr<Ring>;
using BlockPtr = std::shared_ptr<const Block>;
using ScriptPtr = std::shared_ptr<const Script>;
using EnvPtr = std::shared_ptr<Environment>;
using FuturePtr = std::shared_ptr<Future>;

/// Discriminator for Value's runtime type.
enum class ValueKind {
  Nothing, Number, Boolean, Text, ListRef, RingRef, FutureRef
};

/// Human-readable name of a ValueKind (for error messages).
const char* valueKindName(ValueKind kind);

/// The shared, immutable payload of a long text value. The string never
/// changes after construction; the caches are computed lazily and are
/// thread-safe (snapshot transfer shares TextReps across workers).
class TextRep {
 public:
  /// How the text behaves in a numeric context (Snap! coercion rules).
  enum class Numeric : uint8_t {
    Unknown = 0,   ///< not classified yet
    Parsed = 1,    ///< numeric-looking; value() holds the parse
    BlankZero = 2, ///< empty/whitespace: 0 in arithmetic, non-numeric in =
    No = 3,        ///< coercion throws, comparison is textual
  };

  explicit TextRep(std::string text) : text_(std::move(text)) {}
  TextRep(const TextRep&) = delete;
  TextRep& operator=(const TextRep&) = delete;

  const std::string& text() const { return text_; }

  /// Classify (once) and return the cached numeric interpretation;
  /// `out` receives the parsed value for Parsed/BlankZero.
  Numeric numeric(double& out) const;

  /// Cached strings::hashLowered(text()).
  uint64_t loweredHash() const;

 private:
  std::string text_;
  mutable std::atomic<uint8_t> numericState_{0};
  mutable std::atomic<double> numericValue_{0};
  mutable std::atomic<uint8_t> hashState_{0};
  mutable std::atomic<uint64_t> loweredHash_{0};
};

using TextPtr = std::shared_ptr<const TextRep>;

/// A dynamically typed Snap! value.
class Value {
 public:
  /// The "nothing" value reported by command blocks and empty slots.
  Value() = default;
  Value(double number) : v_(number) {}               // NOLINT(runtime/explicit)
  Value(int number) : v_(double(number)) {}          // NOLINT(runtime/explicit)
  Value(long number) : v_(double(number)) {}         // NOLINT(runtime/explicit)
  Value(long long n) : v_(double(n)) {}              // NOLINT(runtime/explicit)
  Value(size_t number) : v_(double(number)) {}       // NOLINT(runtime/explicit)
  Value(bool flag) : v_(flag) {}                     // NOLINT(runtime/explicit)
  Value(std::string text);                           // NOLINT(runtime/explicit)
  Value(std::string_view text);                      // NOLINT(runtime/explicit)
  Value(const char* text) : Value(std::string_view(text)) {} // NOLINT
  Value(ListPtr list) : v_(std::move(list)) {}       // NOLINT(runtime/explicit)
  Value(RingPtr ring) : v_(std::move(ring)) {}       // NOLINT(runtime/explicit)
  Value(FuturePtr future) : v_(std::move(future)) {} // NOLINT(runtime/explicit)

  ValueKind kind() const;

  bool isNothing() const { return v_.index() == 0; }
  bool isNumber() const { return v_.index() == 1; }
  bool isBoolean() const { return v_.index() == 2; }
  bool isText() const { return v_.index() == 3 || v_.index() == 4; }
  bool isList() const { return v_.index() == 5; }
  bool isRing() const { return v_.index() == 6; }
  bool isFuture() const { return v_.index() == 7; }

  /// Number coercion per Snap!: numbers pass through, numeric-looking text
  /// parses, booleans are 1/0, everything else throws TypeError.
  double asNumber() const;

  /// Integer coercion: asNumber() rounded to nearest; throws on non-finite.
  long long asInteger() const;

  /// Text coercion: numbers render via strings::formatNumber, booleans as
  /// "true"/"false", nothing as "". Lists/rings throw TypeError.
  std::string asText() const;

  /// Zero-copy view of a Text value's bytes (valid while this Value is
  /// alive and unmodified). Throws TypeError for non-text values.
  std::string_view textView() const;

  /// Snap! "looks numeric" probe: true for numbers and numeric-looking
  /// text, with the parse delivered through `out` (cached for long text,
  /// so equality/coercion never parses the same payload twice).
  bool numericValue(double& out) const;

  /// Case-insensitive hash of a Text value (strings::hashLowered), cached
  /// for long text. Throws TypeError for non-text values.
  uint64_t loweredHash() const;

  /// Boolean coercion: booleans pass through; the texts "true"/"false"
  /// coerce; everything else throws TypeError.
  bool asBoolean() const;

  /// List access without copying; throws TypeError for non-lists.
  const ListPtr& asList() const;

  /// Ring access; throws TypeError for non-rings.
  const RingPtr& asRing() const;

  /// Future access; throws TypeError for non-futures.
  const FuturePtr& asFuture() const;

  /// Snap! `=` semantics: numeric when both sides coerce to numbers,
  /// case-insensitive text otherwise; lists compare element-wise (deep);
  /// rings compare by identity.
  bool equals(const Value& other) const;

  /// Display string as the Snap! UI would show it in a say-bubble or watcher;
  /// lists render as bracketed element lists.
  std::string display() const;

  /// True if the value can be sent to a worker (no rings, no cyclic
  /// lists). Mirrors the structured-clone restriction on Web Workers.
  bool isTransferable() const;

  /// Isolated copy for transferring to/from a worker ("structured
  /// clone"). Semantically a deep copy; physically an O(1) frozen
  /// snapshot for flat lists and shared-immutable text, with the real
  /// copy deferred to the first mutation of either side.
  /// Throws PurityError when !isTransferable().
  Value structuredClone() const;

 private:
  /// Inline storage for short text: copying it is a 16-byte move, and the
  /// common case (words, numbers-as-text, flags) never allocates.
  struct SmallText {
    char bytes[15];
    uint8_t size;
  };

  std::variant<std::monostate, double, bool, SmallText, TextPtr, ListPtr,
               RingPtr, FuturePtr>
      v_;
};

/// Read-only view of a list's item buffer. The view is valid while the
/// list is alive and unmodified (any mutator may detach and reallocate).
using ItemSpan = std::span<const Value>;

/// A first-class, 1-indexed Snap! list with reference semantics (share the
/// ListPtr to share the object).
///
/// COW core: the item buffer is held through a shared_ptr and may be
/// shared with snapshot clones ("frozen" by virtue of every mutator
/// detaching first). Invariant: a buffer is only ever shared between
/// List objects when it contains no ListRef elements (snapshotClone
/// rebuilds buffers that do), so a shallow buffer copy at detach time is
/// a complete deep copy. The version stamp increments on every mutation
/// and keys the cached transfer audit.
///
/// A buffer comes in two ownership modes: *owned* (a plain vector — every
/// list built at runtime) and *mapped* (an immutable view into externally
/// managed memory, e.g. an mmap'd snapshot file, pinned alive by a
/// type-erased region handle). Mapped buffers are never written through:
/// the detach gate treats them exactly like a buffer shared with a
/// snapshot and copies out on the first mutation, so every COW invariant
/// holds for them unchanged.
class List {
 public:
  List() = default;
  explicit List(std::vector<Value> items);

  static ListPtr make() { return std::make_shared<List>(); }
  static ListPtr make(std::vector<Value> items) {
    return std::make_shared<List>(std::move(items));
  }
  static ListPtr make(ItemSpan items) {
    return std::make_shared<List>(
        std::vector<Value>(items.begin(), items.end()));
  }

  /// A list whose buffer aliases `size` Value slots of externally managed
  /// immutable memory (a persisted snapshot mapping). `region` is held
  /// for the buffer's lifetime — including through O(1) snapshot shares —
  /// so the memory outlives every alias. Pass `flatShareable` only when
  /// the slots are known sublist- and ring-free (the dataset snapshot
  /// invariant); it pre-seeds the transfer audit so the first
  /// structuredClone never has to scan (and page in) the whole buffer.
  static ListPtr makeMapped(const Value* data, size_t size,
                            std::shared_ptr<const void> region,
                            bool flatShareable);

  size_t length() const { return buf_ ? buf_->size() : 0; }
  bool empty() const { return length() == 0; }

  /// 1-indexed access; throws IndexError when out of range.
  const Value& item(size_t index1) const;

  void add(Value value);
  /// Insert at 1-indexed position (1 = front, length+1 = back).
  void insertAt(size_t index1, Value value);
  /// Replace the item at a 1-indexed position.
  void replaceAt(size_t index1, Value value);
  /// Remove at 1-indexed position.
  void removeAt(size_t index1);
  void clear();
  void reserve(size_t capacity);

  /// True if any element `equals` the probe (Snap! `contains`).
  bool contains(const Value& probe) const;

  ItemSpan items() const {
    return buf_ ? ItemSpan(buf_->data(), buf_->size()) : ItemSpan();
  }

  /// Mutable access to the item buffer. Detaches any shared snapshot
  /// first and bumps the version stamp; the caller must be the only
  /// thread touching this List while holding the reference.
  std::vector<Value>& mutableItems();

  /// Deep structural equality (used by Value::equals). Throws TypeError
  /// on self-referential lists instead of recursing forever.
  bool deepEquals(const List& other) const;

  /// Deep copy (shared sublists are duplicated). Throws TypeError on
  /// self-referential lists.
  ListPtr deepCopy() const;

  std::string display() const;

  /// True when the whole tree is ring-free and acyclic.
  bool isTransferable() const;

  /// Structured clone by snapshot: flat lists share their buffer (O(1)),
  /// nested lists rebuild only the spine (fresh List nodes, shared leaf
  /// buffers and texts). Throws PurityError on rings or cycles.
  ListPtr snapshotClone() const;

  /// Mutation counter (monotonic). Test/diagnostic hook for the COW gate.
  uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

  /// True when this list and `other` currently share one item buffer
  /// (i.e. a pending snapshot has not detached yet). Test hook.
  bool sharesBufferWith(const List& other) const {
    return buf_ && buf_ == other.buf_;
  }

  /// True while the buffer aliases a mapped region (no mutation has
  /// detached it yet). Test/diagnostic hook.
  bool mappedBuffer() const { return buf_ && buf_->mapped(); }

 private:
  /// The COW item buffer: owned vector or immutable mapped view. Exactly
  /// one of the two representations is active (`region` discriminates).
  struct Buffer {
    Buffer() = default;
    explicit Buffer(std::vector<Value> items) : owned(std::move(items)) {}
    Buffer(const Value* data, size_t size, std::shared_ptr<const void> keep)
        : mappedData(data), mappedSize(size), region(std::move(keep)) {}

    bool mapped() const { return region != nullptr; }
    const Value* data() const { return mapped() ? mappedData : owned.data(); }
    size_t size() const { return mapped() ? mappedSize : owned.size(); }

    std::vector<Value> owned;
    const Value* mappedData = nullptr;
    size_t mappedSize = 0;
    /// Keeps the mapped memory alive (type-erased: the persist layer's
    /// region object). Null for owned buffers.
    std::shared_ptr<const void> region;
  };

  /// What one scan of the *own* buffer (not sublists) established; cached
  /// against the version stamp. Sound because a buffer's own element
  /// kinds can only change through this List's mutators.
  enum class FlatAudit : uint8_t {
    Unknown = 0,
    Shareable = 1,   ///< no sublists, no rings: buffer may be shared as-is
    HasSublists = 2, ///< recursion required (never cached deeper)
    HasRings = 3,    ///< not transferable
  };

  FlatAudit flatAudit() const;
  /// Copy the buffer out if a snapshot still shares it or it aliases a
  /// mapped region, then bump version.
  void detachForWrite();
  std::vector<Value>& writable();
  bool transferableGuarded(std::vector<const List*>& path) const;
  ListPtr snapshotCloneGuarded(std::vector<const List*>& path) const;
  bool deepEqualsGuarded(const List& other,
                         std::vector<const List*>& path) const;
  ListPtr deepCopyGuarded(std::vector<const List*>& path) const;
  void displayGuarded(std::string& out,
                      std::vector<const List*>& path) const;

  friend class Value;

  std::shared_ptr<Buffer> buf_;  // null means empty
  std::atomic<uint64_t> version_{0};
  /// Packed audit cache: ((version + 1) << 2) | FlatAudit; 0 = unset.
  mutable std::atomic<uint64_t> auditWord_{0};
};

/// Whether a ring wraps a reporter expression or a command script.
enum class RingKind { Reporter, Command };

/// A first-class procedure: a closure over a reporter block or a command
/// script, its formal parameter names, and the environment captured when
/// the ring was evaluated (lexical scope).
class Ring {
 public:
  Ring(RingKind kind, BlockPtr expression, ScriptPtr script,
       std::vector<std::string> formals, EnvPtr captured);

  static RingPtr reporter(BlockPtr expression,
                          std::vector<std::string> formals = {},
                          EnvPtr captured = nullptr);
  static RingPtr command(ScriptPtr script,
                         std::vector<std::string> formals = {},
                         EnvPtr captured = nullptr);

  RingKind kind() const { return kind_; }
  /// Non-null for reporter rings.
  const BlockPtr& expression() const { return expression_; }
  /// Non-null for command rings.
  const ScriptPtr& script() const { return script_; }
  const std::vector<std::string>& formals() const { return formals_; }
  const EnvPtr& captured() const { return captured_; }

  /// The body's empty slots in pre-order — the implicit-parameter
  /// sequence. Computed once and cached: resolving a blank's ordinal is on
  /// the hot path of every empty-slot evaluation in the VM and the pure
  /// evaluator, and the body is immutable. Thread-safe (workers share
  /// rings).
  const std::vector<const Input*>& emptySlots() const;

 private:
  RingKind kind_;
  BlockPtr expression_;
  ScriptPtr script_;
  std::vector<std::string> formals_;
  EnvPtr captured_;
  mutable std::once_flag emptySlotsOnce_;
  mutable std::vector<const Input*> emptySlots_;
};

}  // namespace psnap::blocks
