// Future: a first-class promise Value (the paper's "choose your own
// adventure" extended with deferred joins, in the style of Parsl's app
// futures).
//
// A Future is created pending by a launch block (`launch parallel map …`,
// `launch mapReduce …`), resolved or rejected exactly once by the
// substrate's completion callback, and joined by the `await` reporter.
// Scripts hold it by reference: copying the Value shares the same
// settlement, so double-join is idempotent — a second await returns the
// same value or rethrows the same typed error.
//
// Purity rules: a Future is identity-equal (like a ring), is NOT
// transferable across the worker boundary (structuredClone raises
// PurityError — a promise is a handle into this process's substrate, not
// data), and cancellation of the owning process cancels the future
// through its cancel hook.
//
// Threading: resolve/reject/cancel/onSettle may race (completion fires on
// a pool worker while the owning process awaits or dies on the scheduler
// thread). First settle wins; callbacks fire exactly once, outside the
// lock, on the settling thread — or immediately on the registering thread
// when already settled. The mutex publishes the settled value/error to
// whichever thread observes the settlement.
#pragma once

#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "blocks/value.hpp"
#include "support/error.hpp"

namespace psnap::blocks {

class Future {
 public:
  enum class State { Pending, Resolved, Failed };

  static FuturePtr make() { return std::make_shared<Future>(); }

  State state() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
  }
  bool settled() const { return state() != State::Pending; }

  /// Settle with a value. First settle wins; later calls are no-ops.
  void resolve(Value value) {
    std::vector<std::function<void()>> pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (state_ != State::Pending) return;
      value_ = std::move(value);
      state_ = State::Resolved;
      pending.swap(callbacks_);
      cancelHook_ = nullptr;  // break the hook's ownership cycle
    }
    for (auto& cb : pending) cb();
  }

  /// Settle with an error (keeps the original exception type). First
  /// settle wins.
  void reject(std::exception_ptr error) {
    std::vector<std::function<void()>> pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (state_ != State::Pending) return;
      error_ = std::move(error);
      state_ = State::Failed;
      pending.swap(callbacks_);
      cancelHook_ = nullptr;
    }
    for (auto& cb : pending) cb();
  }

  /// Register a settlement callback: fires exactly once, from the thread
  /// that settles the future, or immediately if already settled.
  void onSettle(std::function<void()> cb) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (state_ == State::Pending) {
        callbacks_.push_back(std::move(cb));
        return;
      }
    }
    cb();
  }

  /// The resolved value. Only meaningful once state() == Resolved.
  const Value& value() const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::Resolved) {
      throw Error("future value read before resolution");
    }
    return value_;
  }

  /// The rejection error. Only meaningful once state() == Failed.
  std::exception_ptr error() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return error_;
  }

  ErrorClass errorClass() const { return classifyError(error()); }

  /// Install the cancellation hook (the launch block wires this to the
  /// underlying operation's cancel). Cleared automatically on settle.
  void setCancelHook(std::function<void(const std::string&)> hook) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::Pending) cancelHook_ = std::move(hook);
  }

  /// Cancel the underlying operation if still pending. The future itself
  /// settles through the operation's completion path (typically with a
  /// CancelledError), keeping one settlement order for all observers.
  void cancel(const std::string& reason) {
    std::function<void(const std::string&)> hook;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (state_ != State::Pending) return;
      hook = std::move(cancelHook_);
      cancelHook_ = nullptr;
    }
    if (hook) hook(reason);
  }

  /// Watcher/say-bubble rendering.
  std::string display() const {
    switch (state()) {
      case State::Pending: return "(future: pending)";
      case State::Resolved: return "(future: resolved)";
      case State::Failed: return "(future: failed)";
    }
    return "(future)";
  }

 private:
  mutable std::mutex mutex_;
  State state_ = State::Pending;
  Value value_;
  std::exception_ptr error_;
  std::vector<std::function<void()>> callbacks_;
  std::function<void(const std::string&)> cancelHook_;
};

}  // namespace psnap::blocks
