// Opcode interning: the dense integer identity behind every opcode string.
//
// Every layer that used to key on opcode *strings* — the registry, the
// primitive handler table, the VM step loop, the worker-side pure
// evaluator, and the code-mapping tables — now keys on an OpcodeId, a
// small dense integer assigned by a process-wide interner. Strings remain
// the construction and serialization surface (builder DSL, XML projects);
// ids are the execution surface. A Block interns its opcode once at
// construction, so a validated script dispatches forever after with zero
// string hashing (the cost the paper's Listing 2 poll-and-yield loop
// multiplies by millions of interpreter steps).
//
// The standard palette is pre-interned in a fixed order, so builtin ids
// are compile-time constants (`Op::reportSum` …) and hot dispatchers can
// use a plain `switch` — a dense jump table — instead of chained string
// comparisons. Custom blocks and test-only opcodes intern on first use
// and get ids past `Op::BuiltinCount`.
//
// Thread-safety: worker threads construct blocks (e.g. the pure
// evaluator's reified identity wrappers), so interning takes a shared
// mutex; the overwhelmingly common case — an already-interned opcode — is
// a read-locked hash lookup, and dispatch itself never touches the
// interner at all.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace psnap::blocks {

/// Dense opcode identity. Stable for the lifetime of the process; ids are
/// never reused, and registry/table copies agree on them by construction.
using OpcodeId = uint32_t;

inline constexpr OpcodeId kInvalidOpcodeId = 0xffffffffu;

// The standard palette in registration order (registerStandardSpecs).
// X(enumerator, "opcode string") — the enumerator usually matches the
// string; `__foreachDriver` needs a distinct spelling because identifiers
// with leading double underscores are reserved.
#define PSNAP_FOR_EACH_BUILTIN_OPCODE(X)                   \
  /* operators */                                          \
  X(reportSum, "reportSum")                                \
  X(reportDifference, "reportDifference")                  \
  X(reportProduct, "reportProduct")                        \
  X(reportQuotient, "reportQuotient")                      \
  X(reportModulus, "reportModulus")                        \
  X(reportPower, "reportPower")                            \
  X(reportRound, "reportRound")                            \
  X(reportMonadic, "reportMonadic")                        \
  X(reportRandom, "reportRandom")                          \
  X(reportEquals, "reportEquals")                          \
  X(reportLessThan, "reportLessThan")                      \
  X(reportGreaterThan, "reportGreaterThan")                \
  X(reportAnd, "reportAnd")                                \
  X(reportOr, "reportOr")                                  \
  X(reportNot, "reportNot")                                \
  X(reportIfElse, "reportIfElse")                          \
  X(reportJoinWords, "reportJoinWords")                    \
  X(reportLetter, "reportLetter")                          \
  X(reportStringSize, "reportStringSize")                  \
  X(reportUnicode, "reportUnicode")                        \
  X(reportUnicodeAsLetter, "reportUnicodeAsLetter")        \
  X(reportSplit, "reportSplit")                            \
  X(reportIsA, "reportIsA")                                \
  X(reportIdentity, "reportIdentity")                      \
  /* rings */                                              \
  X(reifyReporter, "reifyReporter")                        \
  X(reifyScript, "reifyScript")                            \
  /* variables */                                          \
  X(reportGetVar, "reportGetVar")                          \
  X(doSetVar, "doSetVar")                                  \
  X(doChangeVar, "doChangeVar")                            \
  X(doDeclareVariables, "doDeclareVariables")              \
  /* lists */                                              \
  X(reportNewList, "reportNewList")                        \
  X(reportListItem, "reportListItem")                      \
  X(reportListLength, "reportListLength")                  \
  X(reportListContainsItem, "reportListContainsItem")      \
  X(reportListIndex, "reportListIndex")                    \
  X(reportCONS, "reportCONS")                              \
  X(reportCDR, "reportCDR")                                \
  X(reportNumbers, "reportNumbers")                        \
  X(reportSorted, "reportSorted")                          \
  X(doAddToList, "doAddToList")                            \
  X(doDeleteFromList, "doDeleteFromList")                  \
  X(doInsertInList, "doInsertInList")                      \
  X(doReplaceInList, "doReplaceInList")                    \
  /* higher-order functions */                             \
  X(reportMap, "reportMap")                                \
  X(reportKeep, "reportKeep")                              \
  X(reportCombine, "reportCombine")                        \
  X(doForEach, "doForEach")                                \
  /* control */                                            \
  X(doForever, "doForever")                                \
  X(doRepeat, "doRepeat")                                  \
  X(doFor, "doFor")                                        \
  X(doIf, "doIf")                                          \
  X(doIfElse, "doIfElse")                                  \
  X(doUntil, "doUntil")                                    \
  X(doWaitUntil, "doWaitUntil")                            \
  X(doWait, "doWait")                                      \
  X(doWarp, "doWarp")                                      \
  X(doYield, "doYield")                                    \
  X(doBusyWork, "doBusyWork")                              \
  X(doReport, "doReport")                                  \
  X(doStopThis, "doStopThis")                              \
  X(doBroadcast, "doBroadcast")                            \
  X(doBroadcastAndWait, "doBroadcastAndWait")              \
  X(evaluate, "evaluate")                                  \
  X(doRun, "doRun")                                        \
  X(receiveGo, "receiveGo")                                \
  X(receiveKey, "receiveKey")                              \
  X(receiveMessage, "receiveMessage")                      \
  X(receiveCloneStart, "receiveCloneStart")                \
  X(createClone, "createClone")                            \
  X(removeClone, "removeClone")                            \
  /* looks / motion / sensing */                           \
  X(bubble, "bubble")                                      \
  X(doSayFor, "doSayFor")                                  \
  X(doThink, "doThink")                                    \
  X(doSwitchToCostume, "doSwitchToCostume")                \
  X(show, "show")                                          \
  X(hide, "hide")                                          \
  X(reportTouchingSprite, "reportTouchingSprite")          \
  X(reportCostumeName, "reportCostumeName")                \
  X(forward, "forward")                                    \
  X(turn, "turn")                                          \
  X(turnLeft, "turnLeft")                                  \
  X(setHeading, "setHeading")                              \
  X(gotoXY, "gotoXY")                                      \
  X(changeXPosition, "changeXPosition")                    \
  X(changeYPosition, "changeYPosition")                    \
  X(xPosition, "xPosition")                                \
  X(yPosition, "yPosition")                                \
  X(direction, "direction")                                \
  X(getTimer, "getTimer")                                  \
  X(doResetTimer, "doResetTimer")                          \
  /* the paper's parallel blocks */                        \
  X(reportParallelMap, "reportParallelMap")                \
  X(doParallelForEach, "doParallelForEach")                \
  X(reportMapReduce, "reportMapReduce")                    \
  X(reportMaxWorkers, "reportMaxWorkers")                  \
  /* completion-driven async: launch returns a future */   \
  X(launchParallelMap, "launchParallelMap")                \
  X(launchMapReduce, "launchMapReduce")                    \
  X(reportAwait, "reportAwait")                            \
  X(foreachDriver, "__foreachDriver")                      \
  /* code mapping */                                       \
  X(doMapToCode, "doMapToCode")                            \
  X(reportMappedCode, "reportMappedCode")

/// Compile-time-constant ids for the standard palette. `BuiltinCount` is
/// the first id handed out to a dynamically interned opcode.
enum class Op : OpcodeId {
#define PSNAP_OPCODE_ENUMERATOR(name, str) name,
  PSNAP_FOR_EACH_BUILTIN_OPCODE(PSNAP_OPCODE_ENUMERATOR)
#undef PSNAP_OPCODE_ENUMERATOR
  BuiltinCount
};

constexpr OpcodeId id(Op op) { return static_cast<OpcodeId>(op); }
inline constexpr size_t kBuiltinOpcodeCount = id(Op::BuiltinCount);

/// Intern `opcode`, assigning a fresh id on first sight. Thread-safe.
OpcodeId internOpcode(std::string_view opcode);

/// Lookup without interning: kInvalidOpcodeId when never interned.
OpcodeId lookupOpcode(std::string_view opcode);

/// The string an id was interned from. Throws BlockError on a bad id.
const std::string& opcodeName(OpcodeId id);

/// Number of distinct opcodes interned so far (>= kBuiltinOpcodeCount).
size_t internedOpcodeCount();

}  // namespace psnap::blocks
